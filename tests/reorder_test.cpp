// Tests for the baseline ordering searches (brute force, sifting, window
// permutation, random restarts) and their relationship to the exact FS
// optimum.

#include <gtest/gtest.h>

#include <numeric>

#include "core/minimize.hpp"
#include "reorder/baselines.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {
namespace {

TEST(BruteForce, EvaluatesAllOrders) {
  const auto r = brute_force_minimize(tt::parity(4));
  EXPECT_EQ(r.orders_evaluated, 24u);
  EXPECT_EQ(r.internal_nodes, 7u);         // 2n - 1
  EXPECT_EQ(r.worst_internal_nodes, 7u);   // parity is order-insensitive
}

TEST(BruteForce, FindsTheFig1Gap) {
  const auto r = brute_force_minimize(tt::pair_sum(3));
  EXPECT_EQ(r.internal_nodes, 6u);
  EXPECT_EQ(r.worst_internal_nodes, 14u);  // 2^{m+1} - 2 at m = 3
}

TEST(BruteForce, GuardsLargeN) {
  EXPECT_THROW(brute_force_minimize(tt::TruthTable(11)), util::CheckError);
}

class BaselineVsExact : public ::testing::TestWithParam<int> {};

TEST_P(BaselineVsExact, BruteForceMatchesFs) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 997 + 3);
  const tt::TruthTable t = tt::random_function(5, rng);
  EXPECT_EQ(brute_force_minimize(t).internal_nodes,
            core::fs_minimize(t).min_internal_nodes);
}

TEST_P(BaselineVsExact, HeuristicsNeverBeatExact) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const tt::TruthTable t = tt::random_function(6, rng);
  const std::uint64_t opt = core::fs_minimize(t).min_internal_nodes;
  std::vector<int> id(6);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_GE(sift(t, id).internal_nodes, opt);
  EXPECT_GE(window_permute(t, id, 3).internal_nodes, opt);
  EXPECT_GE(random_restart(t, 10, rng).internal_nodes, opt);
}

TEST_P(BaselineVsExact, SiftingImprovesOrNeverWorsens) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7 + 11);
  const tt::TruthTable t = tt::random_function(6, rng);
  std::vector<int> id(6);
  std::iota(id.begin(), id.end(), 0);
  const std::uint64_t initial = core::diagram_size_for_order(t, id);
  const auto s = sift(t, id);
  EXPECT_LE(s.internal_nodes, initial);
  EXPECT_TRUE(util::is_permutation(s.order_root_first));
  EXPECT_EQ(core::diagram_size_for_order(t, s.order_root_first),
            s.internal_nodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineVsExact, ::testing::Range(0, 8));

TEST(Sifting, SolvesPairSumFromInterleaved) {
  // Sifting recovers the optimal 2m-node OBDD from the pessimal
  // interleaved start for the Fig. 1 function (it is a separable function,
  // the friendly case for sifting).
  const int m = 4;
  const tt::TruthTable f = tt::pair_sum(m);
  const auto s = sift(f, tt::pair_sum_interleaved_order(m));
  EXPECT_EQ(s.internal_nodes, static_cast<std::uint64_t>(2 * m));
}

TEST(Window, FixesLocalInversions) {
  // An order with one adjacent transposition from optimal is fixed by a
  // window-2 pass.
  const tt::TruthTable f = tt::pair_sum(3);
  std::vector<int> nearly{1, 0, 2, 3, 4, 5};
  const auto w = window_permute(f, nearly, 2);
  EXPECT_EQ(w.internal_nodes, 6u);
}

TEST(Window, ValidatesParameters) {
  const tt::TruthTable f = tt::parity(4);
  std::vector<int> id{0, 1, 2, 3};
  EXPECT_THROW(window_permute(f, id, 1), util::CheckError);
  EXPECT_THROW(window_permute(f, id, 6), util::CheckError);
  EXPECT_THROW(window_permute(f, {0, 1, 2}, 2), util::CheckError);
}

TEST(RandomRestart, FindsOptimumOfEasyFunction) {
  util::Xoshiro256 rng(4);
  // Parity: every order optimal, so one restart suffices.
  const auto r = random_restart(tt::parity(5), 1, rng);
  EXPECT_EQ(r.internal_nodes, 9u);
  EXPECT_EQ(r.orders_evaluated, 1u);
}

TEST(SizeOracle, MatchesBruteForceProfile) {
  // level_profile sums to the total size for several orders.
  util::Xoshiro256 rng(2);
  const tt::TruthTable t = tt::random_function(5, rng);
  for (const auto& order : util::all_permutations(5)) {
    const auto profile = core::level_profile_for_order(t, order);
    std::uint64_t sum = 0;
    for (const auto w : profile) sum += w;
    ASSERT_EQ(sum, core::diagram_size_for_order(t, order));
  }
}

}  // namespace
}  // namespace ovo::reorder
