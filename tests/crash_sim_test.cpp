// Torn-write crash simulation: run the checkpoint writers against
// rt::SimFs, cut the run at EVERY syscall boundary (including mid-write
// with a torn prefix), and prove the PR-7 crash-safety invariant
// mechanically —
//
//   (1) after any simulated crash the checkpoint path holds exactly one
//       valid snapshot image: the old one or the new one, never a torn
//       hybrid (a `.tmp` may survive, but it is ignorable garbage);
//   (2) a run resumed from whatever snapshot survived is byte-identical
//       to the uninterrupted run.
//
// Cutting *before* operation k for every k also covers crash-after
// operation k-1, so the enumeration includes crash-after-rename (both
// sides of the commit point).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "parallel/exec_policy.hpp"
#include "rt/checkpoint.hpp"
#include "rt/file_ops.hpp"
#include "rt/sim_fs.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::core {
namespace {

// ---------------------------------------------------------------------------
// Container layer: save_checkpoint over an existing checkpoint.

TEST(CrashSim, CutAtEverySyscallLeavesOldOrNewNeverTorn) {
  const std::string path = "/ckpt/state.bin";
  const std::vector<std::uint8_t> old_payload(64, 0xAA);
  std::vector<std::uint8_t> new_payload(100);
  for (std::size_t i = 0; i < new_payload.size(); ++i)
    new_payload[i] = static_cast<std::uint8_t>(i * 7 + 1);

  // Probe A: the on-disk image of the old checkpoint.
  rt::SimFs fs_old;
  {
    rt::ScopedFileOps install(fs_old);
    rt::save_checkpoint(path, 1, old_payload);
  }
  const std::vector<std::uint8_t> old_image = fs_old.get(path);

  // Probe B: overwrite with the new checkpoint, small write quanta so
  // the cut sweep can land inside the payload, and count the syscalls.
  rt::SimFs fs_new;
  fs_new.put(path, old_image);
  fs_new.set_max_write_bytes(5);
  std::uint64_t n_ops = 0;
  {
    rt::ScopedFileOps install(fs_new);
    rt::save_checkpoint(path, 1, new_payload);
    n_ops = fs_new.ops_seen();
  }
  const std::vector<std::uint8_t> new_image = fs_new.get(path);
  ASSERT_GE(n_ops, 25u);  // open + ~25 short writes + fsync/close/rename

  for (std::uint64_t cut = 1; cut <= n_ops; ++cut) {
    for (const std::size_t torn : {std::size_t{0}, std::size_t{3}}) {
      rt::SimFs sim(rt::SimFs::CutPlan{cut, torn});
      sim.put(path, old_image);
      sim.set_max_write_bytes(5);
      {
        rt::ScopedFileOps install(sim);
        EXPECT_THROW(rt::save_checkpoint(path, 1, new_payload),
                     rt::SimFs::CrashCut)
            << "cut=" << cut;
      }
      // Invariant (1): the real path is exactly the old image or exactly
      // the new image — never torn, never missing.
      ASSERT_TRUE(sim.exists(path)) << "cut=" << cut;
      const std::vector<std::uint8_t> image = sim.get(path);
      EXPECT_TRUE(image == old_image || image == new_image)
          << "torn state at cut=" << cut << " torn=" << torn;
      // And it is loadable: the resumed process sees one valid frame.
      sim.thaw();
      rt::ScopedFileOps install(sim);
      const rt::CheckpointData d = rt::load_checkpoint(path, 1, 1);
      EXPECT_TRUE(d.payload == old_payload || d.payload == new_payload);
    }
  }
}

// ---------------------------------------------------------------------------
// Full pipeline: the FS* DP writing fence snapshots, cut anywhere, then
// resumed from the surviving snapshot.

void expect_results_equal(const FsStarResult& a, const FsStarResult& b) {
  EXPECT_EQ(a.completed_layers, b.completed_layers);
  EXPECT_EQ(a.best_last, b.best_last);
  EXPECT_EQ(a.mincost, b.mincost);
  EXPECT_EQ(a.certified_lower_bound, b.certified_lower_bound);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (const auto& [mask, ta] : a.tables) {
    const auto it = b.tables.find(mask);
    ASSERT_NE(it, b.tables.end()) << "mask " << mask;
    EXPECT_EQ(ta.vars, it->second.vars);
    EXPECT_EQ(ta.next_id, it->second.next_id);
    EXPECT_EQ(ta.cells, it->second.cells) << "mask " << mask;
  }
}

TEST(CrashSim, FsStarResumeAfterAnyCutIsByteIdentical) {
  constexpr int kN = 6;
  util::Xoshiro256 rng(29);
  const tt::TruthTable t = tt::random_function(kN, rng);
  const util::Mask all = util::full_mask(kN);
  const std::string path = "/ckpt/fs_star.bin";

  // The uninterrupted reference run (no checkpointing at all).
  OpCounter straight_ops;
  const FsStarResult straight =
      fs_star(initial_table(t), all, kN, DiagramKind::kBdd, &straight_ops,
              {}, nullptr, 0, nullptr);

  // Probe: same run writing a snapshot at every fence into the
  // simulator; counts the total syscall budget for the cut sweep.
  std::uint64_t n_ops = 0;
  {
    rt::SimFs sim;
    rt::ScopedFileOps install(sim);
    FsCheckpointOptions ckpt;
    ckpt.path = path;
    ckpt.every = 1;
    OpCounter ops;
    const FsStarResult probed =
        fs_star(initial_table(t), all, kN, DiagramKind::kBdd, &ops, {},
                nullptr, 0, &ckpt);
    expect_results_equal(probed, straight);
    n_ops = sim.ops_seen();
  }
  ASSERT_GE(n_ops, 10u);

  std::uint64_t resumed_runs = 0;
  for (std::uint64_t cut = 1; cut <= n_ops; ++cut) {
    rt::SimFs sim(rt::SimFs::CutPlan{cut, /*torn_bytes=*/3});
    rt::ScopedFileOps install(sim);
    FsCheckpointOptions ckpt;
    ckpt.path = path;
    ckpt.every = 1;
    OpCounter ops;
    bool crashed = false;
    try {
      fs_star(initial_table(t), all, kN, DiagramKind::kBdd, &ops, {},
              nullptr, 0, &ckpt);
    } catch (const rt::SimFs::CrashCut&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "cut=" << cut << " never fired";
    sim.thaw();
    if (!sim.exists(path)) continue;  // crashed before the first commit
    // Invariant (1): whatever survived decodes and validates cleanly.
    const FsStarSnapshot snap = load_snapshot(path);
    // Invariant (2): resuming from it reproduces the straight run.
    FsCheckpointOptions resume;
    resume.path = path;
    resume.every = 1;
    resume.resume = &snap;
    OpCounter resumed_ops;
    const FsStarResult resumed =
        fs_star(initial_table(t), all, kN, DiagramKind::kBdd, &resumed_ops,
                {}, nullptr, 0, &resume);
    expect_results_equal(resumed, straight);
    ++resumed_runs;
  }
  // The sweep must actually have exercised resume (all but the first few
  // cuts leave a committed snapshot behind).
  EXPECT_GE(resumed_runs, n_ops / 2);
}

}  // namespace
}  // namespace ovo::core
