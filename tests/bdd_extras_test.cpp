// Tests for the apply-based builders, BDD query algorithms, and
// serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "bdd/algorithms.hpp"
#include "bdd/builder.hpp"
#include "bdd/serialize.hpp"
#include "tt/function_zoo.hpp"
#include "tt/pla.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ovo::bdd {
namespace {

TEST(Builder, ExprMatchesTabulation) {
  const char* formulas[] = {
      "x1 & x2 | x3 & x4",
      "(x1 ^ x2) & !(x3 | x4)",
      "x1 | 1",
      "!x1 & !x2 & !x3",
      "x1 ^ x2 ^ x3 ^ x4 ^ x5",
  };
  for (const char* s : formulas) {
    const tt::ExprPtr e = tt::parse_expr(s);
    const int n = std::max(1, tt::expr_num_vars(*e));
    Manager m(n);
    const NodeId built = build_from_expr(m, *e);
    const NodeId reference =
        m.from_truth_table(tt::expr_to_truth_table(*e, n));
    EXPECT_EQ(built, reference) << s;  // canonicity: identical ids
  }
}

TEST(Builder, DnfCnfMatchTabulation) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const tt::Dnf d = tt::random_dnf(6, 5, 3, rng);
    const tt::Cnf c = tt::random_cnf(6, 5, 3, rng);
    Manager m(6);
    EXPECT_EQ(build_from_dnf(m, d), m.from_truth_table(d.to_truth_table()));
    EXPECT_EQ(build_from_cnf(m, c), m.from_truth_table(c.to_truth_table()));
  }
}

TEST(Builder, CircuitSymbolicSimulation) {
  const tt::Circuit ckt = tt::Circuit::ripple_carry_out(4);
  Manager m(8);
  EXPECT_EQ(build_from_circuit(m, ckt),
            m.from_truth_table(ckt.to_truth_table()));
}

TEST(Builder, CircuitAllGateOps) {
  for (const tt::GateOp op :
       {tt::GateOp::kAnd, tt::GateOp::kOr, tt::GateOp::kXor,
        tt::GateOp::kNand, tt::GateOp::kNor, tt::GateOp::kXnor}) {
    tt::Circuit ckt(2);
    ckt.add_gate(op, 0, 1);
    Manager m(2);
    EXPECT_EQ(build_from_circuit(m, ckt),
              m.from_truth_table(ckt.to_truth_table()));
  }
  tt::Circuit inv(1);
  inv.add_gate(tt::GateOp::kNot, 0);
  Manager m1(1);
  EXPECT_EQ(build_from_circuit(m1, inv), m1.literal(0, false));
}

TEST(Builder, PlaMultiOutput) {
  const tt::Pla p = tt::parse_pla(
      ".i 3\n.o 2\n11- 10\n--1 01\n111 11\n.e\n");
  Manager m(3);
  const std::vector<NodeId> roots = build_from_pla(m, p);
  ASSERT_EQ(roots.size(), 2u);
  for (int o = 0; o < 2; ++o)
    EXPECT_EQ(m.to_truth_table(roots[static_cast<std::size_t>(o)]),
              p.output_table(o));
}

TEST(Builder, BuilderScalesPastTruthTableLimit) {
  // 40-variable conjunction: impossible as a truth table, trivial via apply.
  const int n = 40;
  Manager m(n);
  NodeId acc = kTrue;
  for (int v = 0; v < n; ++v) acc = m.apply_and(acc, m.var_node(v));
  EXPECT_EQ(m.size(acc), static_cast<std::uint64_t>(n));
  EXPECT_TRUE(m.eval(acc, util::full_mask(n)));
  EXPECT_FALSE(m.eval(acc, util::full_mask(n) ^ 1u));
}

// --- algorithms --------------------------------------------------------------

TEST(Algorithms, AllModelsMatchesTruthTable) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const tt::TruthTable t = tt::random_function(6, rng);
    Manager m(6);
    const NodeId f = m.from_truth_table(t);
    const auto models = all_models(m, f);
    std::set<std::uint64_t> expected;
    for (std::uint64_t a = 0; a < 64; ++a)
      if (t.get(a)) expected.insert(a);
    EXPECT_EQ(std::set<std::uint64_t>(models.begin(), models.end()),
              expected);
    // Ascending order.
    for (std::size_t i = 1; i < models.size(); ++i)
      EXPECT_LT(models[i - 1], models[i]);
  }
}

TEST(Algorithms, AllModelsHandlesFreeVariables) {
  Manager m(4);
  const NodeId f = m.var_node(2);  // 8 models
  EXPECT_EQ(all_models(m, f).size(), 8u);
  EXPECT_EQ(all_models(m, kTrue).size(), 16u);
  EXPECT_TRUE(all_models(m, kFalse).empty());
}

TEST(Algorithms, AllModelsLimitGuard) {
  Manager m(10);
  EXPECT_THROW(all_models(m, kTrue, 100), util::CheckError);
}

TEST(Algorithms, ForEachModelEarlyStop) {
  Manager m(4);
  int seen = 0;
  const std::uint64_t visited =
      for_each_model(m, kTrue, [&](std::uint64_t) { return ++seen < 5; });
  EXPECT_EQ(visited, 5u);
}

TEST(Algorithms, SampleModelIsUniformish) {
  util::Xoshiro256 rng(7);
  const tt::TruthTable t = tt::threshold(5, 4);  // 6 models
  Manager m(5);
  const NodeId f = m.from_truth_table(t);
  std::unordered_map<std::uint64_t, int> histo;
  const int shots = 6000;
  for (int i = 0; i < shots; ++i) {
    const auto s = sample_model(m, f, rng);
    ASSERT_TRUE(s.has_value());
    ASSERT_TRUE(t.get(*s));
    ++histo[*s];
  }
  EXPECT_EQ(histo.size(), 6u);
  for (const auto& [model, count] : histo)
    EXPECT_NEAR(count, shots / 6.0, shots * 0.05) << model;
  EXPECT_FALSE(sample_model(m, kFalse, rng).has_value());
}

TEST(Algorithms, MinWeightModel) {
  // f = (x0 | x1) & (x2 | x3), weights favor x1 and x3.
  Manager m(4);
  const NodeId f =
      m.apply_and(m.apply_or(m.var_node(0), m.var_node(1)),
                  m.apply_or(m.var_node(2), m.var_node(3)));
  const auto best = min_weight_model(m, f, {5.0, 1.0, 4.0, 2.0});
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->weight, 3.0);  // x1 + x3
  EXPECT_EQ(best->assignment, 0b1010u);
  EXPECT_TRUE(m.eval(f, best->assignment));
}

TEST(Algorithms, MinWeightModelNegativeWeights) {
  // Free variables with negative weight should be switched on.
  Manager m(3);
  const NodeId f = m.var_node(1);
  const auto best = min_weight_model(m, f, {-2.0, 3.0, -1.0});
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->weight, 0.0);  // -2 + 3 + -1
  EXPECT_EQ(best->assignment, 0b111u);
  EXPECT_FALSE(min_weight_model(m, kFalse, {0, 0, 0}).has_value());
}

TEST(Algorithms, MinWeightModelBruteForceSweep) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const tt::TruthTable t = tt::random_function(5, rng);
    if (t.count_ones() == 0) continue;
    std::vector<double> w(5);
    for (auto& x : w)
      x = static_cast<double>(rng.below(21)) - 10.0;
    Manager m(5);
    const auto best = min_weight_model(m, m.from_truth_table(t), w);
    ASSERT_TRUE(best.has_value());
    double expect = 1e18;
    for (std::uint64_t a = 0; a < 32; ++a) {
      if (!t.get(a)) continue;
      double s = 0;
      for (int v = 0; v < 5; ++v)
        if ((a >> v) & 1u) s += w[static_cast<std::size_t>(v)];
      expect = std::min(expect, s);
    }
    EXPECT_DOUBLE_EQ(best->weight, expect);
  }
}

TEST(Algorithms, Density) {
  Manager m(6);
  EXPECT_DOUBLE_EQ(density(m, kTrue), 1.0);
  EXPECT_DOUBLE_EQ(density(m, kFalse), 0.0);
  EXPECT_DOUBLE_EQ(density(m, m.var_node(3)), 0.5);
  const NodeId f = m.from_truth_table(tt::pair_sum(3));
  EXPECT_NEAR(density(m, f), 37.0 / 64.0, 1e-12);
}

TEST(Algorithms, ShortestCube) {
  // pair_sum: the shortest cube forcing true has 2 literals (one pair).
  Manager m(6);
  const NodeId f = m.from_truth_table(tt::pair_sum(3));
  const auto cube = shortest_cube(m, f);
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ(cube->literals(), 2);
  // Every completion of the cube satisfies f.
  for (std::uint64_t rest = 0; rest < 64; ++rest) {
    const std::uint64_t a = (rest & ~cube->care) | cube->values;
    EXPECT_TRUE(m.eval(f, a));
  }
  EXPECT_FALSE(shortest_cube(m, kFalse).has_value());
  EXPECT_EQ(shortest_cube(m, kTrue)->literals(), 0);
}

// --- serialization -----------------------------------------------------------

TEST(Serialize, RoundtripPreservesFunction) {
  util::Xoshiro256 rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    const tt::TruthTable t = tt::random_function(6, rng);
    std::vector<int> order{3, 1, 5, 0, 4, 2};
    Manager m(6, order);
    const NodeId f = m.from_truth_table(t);
    const std::string text = save_bdd(m, f);
    LoadedBdd loaded = load_bdd(text);
    EXPECT_EQ(loaded.manager.order(), order);
    EXPECT_EQ(loaded.manager.to_truth_table(loaded.root), t);
    EXPECT_EQ(loaded.manager.size(loaded.root), m.size(f));
    // Second round-trip is byte-identical (canonical numbering).
    EXPECT_EQ(save_bdd(loaded.manager, loaded.root), text);
  }
}

TEST(Serialize, Terminals) {
  Manager m(3);
  LoadedBdd t = load_bdd(save_bdd(m, kTrue));
  EXPECT_EQ(t.root, kTrue);
  LoadedBdd f = load_bdd(save_bdd(m, kFalse));
  EXPECT_EQ(f.root, kFalse);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(load_bdd(""), util::CheckError);
  EXPECT_THROW(load_bdd("ovo-bdd 2\nn 1\n"), util::CheckError);
  EXPECT_THROW(load_bdd("ovo-bdd 1\nn 2\norder 0 1\nnodes 1\n2 0 9 1\n"
                        "root 2\n"),
               util::CheckError);
  EXPECT_THROW(load_bdd("ovo-bdd 1\nn 2\norder 0 1\nnodes 0\nroot 7\n"),
               util::CheckError);
}

}  // namespace
}  // namespace ovo::bdd
