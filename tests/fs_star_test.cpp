// Tests for the composable FS* algorithm (Lemma 8): consistency with FS,
// composition across prefixes, and the divide-and-conquer identity of
// Lemma 9.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::core {
namespace {

TEST(FsStar, FullRunEqualsFs) {
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 6;
    const tt::TruthTable t = tt::random_function(n, rng);
    const MinimizeResult fs = fs_minimize(t);
    std::vector<int> order;
    const PrefixTable full = fs_star_full(initial_table(t),
                                          util::full_mask(n),
                                          DiagramKind::kBdd, nullptr, &order);
    EXPECT_EQ(full.mincost(), fs.min_internal_nodes);
    EXPECT_EQ(order.size(), static_cast<std::size_t>(n));
  }
}

TEST(FsStar, StopLayerProducesAllSubsets) {
  const tt::TruthTable t = tt::majority(5);
  const util::Mask all = util::full_mask(5);
  for (int k = 0; k <= 5; ++k) {
    const FsStarResult r =
        fs_star(initial_table(t), all, k, DiagramKind::kBdd);
    EXPECT_EQ(r.tables.size(), util::binomial_u64(5, k));
    for (const auto& [K, table] : r.tables) {
      EXPECT_EQ(util::popcount(K), k);
      EXPECT_EQ(table.vars, K);
      EXPECT_EQ(table.cells.size(), std::uint64_t{1} << (5 - k));
    }
  }
}

TEST(FsStar, RejectsOverlappingBlock) {
  PrefixTable p = initial_table(tt::parity(4));
  p = compact(p, 1, DiagramKind::kBdd, nullptr);
  EXPECT_THROW(fs_star(p, 0b0011, 2, DiagramKind::kBdd), util::CheckError);
}

// MINCOST computed by extending a fixed prefix must match a direct chain
// evaluation: FS(<I, J>) restricted minimum over orderings that place I at
// the bottom (in optimal arrangement) and J above.
TEST(FsStar, CompositionMatchesConstrainedBruteForce) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 6;
    const tt::TruthTable t = tt::random_function(n, rng);
    const util::Mask I = 0b000101;  // {0, 2}
    const util::Mask J = 0b011010;  // {1, 3, 4}
    // Best chain for I alone:
    const PrefixTable base = fs_star_full(initial_table(t), I,
                                          DiagramKind::kBdd);
    // FS* extension.
    const PrefixTable ext = fs_star_full(base, J, DiagramKind::kBdd);

    // Constrained brute force: min over orderings of I at the bottom and J
    // directly above (remaining variables on top, irrelevant to the count
    // of the bottom |I|+|J| levels). Evaluate via chains.
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    std::vector<int> i_vars = util::bits_of(I);
    std::sort(i_vars.begin(), i_vars.end());
    do {
      std::vector<int> j_vars = util::bits_of(J);
      std::sort(j_vars.begin(), j_vars.end());
      do {
        PrefixTable p = initial_table(t);
        for (const int v : i_vars) p = compact(p, v, DiagramKind::kBdd);
        for (const int v : j_vars) p = compact(p, v, DiagramKind::kBdd);
        best = std::min(best, p.mincost());
      } while (std::next_permutation(j_vars.begin(), j_vars.end()));
    } while (std::next_permutation(i_vars.begin(), i_vars.end()));
    EXPECT_EQ(ext.mincost(), best);
  }
}

// Lemma 9: MINCOST_[n] = min over K of size k of
//   MINCOST_K + MINCOST_{(K, [n]\K)}([n] \ K).
TEST(FsStar, Lemma9DivideAndConquerIdentity) {
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 3; ++trial) {
    const int n = 6;
    const tt::TruthTable t = tt::random_function(n, rng);
    const std::uint64_t direct = fs_minimize(t).min_internal_nodes;
    for (int k = 1; k < n; ++k) {
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      util::for_each_subset_of_size(n, k, [&](util::Mask K) {
        const PrefixTable bottom =
            fs_star_full(initial_table(t), K, DiagramKind::kBdd);
        const PrefixTable full = fs_star_full(
            bottom, util::full_mask(n) & ~K, DiagramKind::kBdd);
        best = std::min(best, full.mincost());
      });
      EXPECT_EQ(best, direct) << "k=" << k;
    }
  }
}

TEST(FsStar, ReconstructBlockOrderAchievesMincost) {
  util::Xoshiro256 rng(13);
  const int n = 6;
  const tt::TruthTable t = tt::random_function(n, rng);
  const util::Mask I = 0b001011;
  std::vector<int> order_bottom_up;
  const PrefixTable p = fs_star_full(initial_table(t), I, DiagramKind::kBdd,
                                     nullptr, &order_bottom_up);
  ASSERT_EQ(order_bottom_up.size(), 3u);
  // Re-run the chain in the reconstructed order; cost must match.
  PrefixTable q = initial_table(t);
  for (const int v : order_bottom_up) q = compact(q, v, DiagramKind::kBdd);
  EXPECT_EQ(q.mincost(), p.mincost());
}

TEST(FsStar, MincostMapIsMonotone) {
  // Adding variables to the prefix can only add levels: MINCOST_{I} >=
  // MINCOST_{I'} whenever I' ⊆ I... along the DP, mincost values grow with
  // layer for any fixed chain. Check the weaker property: MINCOST_I >=
  // max over i of MINCOST_{I\i}... actually Lemma 4 gives equality with an
  // added width >= 0, so MINCOST_I >= MINCOST_{I\i} for the argmin i and
  // >= min over i. Verify min-monotonicity.
  util::Xoshiro256 rng(17);
  const int n = 5;
  const tt::TruthTable t = tt::random_function(n, rng);
  const FsStarResult r =
      fs_star(initial_table(t), util::full_mask(n), n, DiagramKind::kBdd);
  for (const auto& [I, cost] : r.mincost) {
    if (I == 0) continue;
    std::uint64_t best_pred = std::numeric_limits<std::uint64_t>::max();
    util::for_each_bit(I, [&](int i) {
      best_pred =
          std::min(best_pred, r.mincost.at(I & ~(util::Mask{1} << i)));
    });
    EXPECT_GE(cost, best_pred);
  }
}

TEST(FsStar, ZddKindCompositionConsistent) {
  util::Xoshiro256 rng(23);
  const int n = 5;
  const tt::TruthTable t = tt::random_sparse_function(n, 6, rng);
  const std::uint64_t direct =
      fs_minimize(t, DiagramKind::kZdd).min_internal_nodes;
  const int k = 2;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  util::for_each_subset_of_size(n, k, [&](util::Mask K) {
    const PrefixTable bottom =
        fs_star_full(initial_table(t), K, DiagramKind::kZdd);
    const PrefixTable full =
        fs_star_full(bottom, util::full_mask(n) & ~K, DiagramKind::kZdd);
    best = std::min(best, full.mincost());
  });
  EXPECT_EQ(best, direct);
}

}  // namespace
}  // namespace ovo::core
