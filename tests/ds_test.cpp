// Unit tests for the shared ovo::ds node-store layer: open-addressed
// unique table, bounded computed cache, SoA node arena, and the hash
// mixers — including a collision-rate regression test against the weak
// shift-xor triple hash the layer replaced.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "ds/computed_cache.hpp"
#include "ds/hash.hpp"
#include "ds/node_arena.hpp"
#include "ds/unique_table.hpp"
#include "util/rng.hpp"

namespace ovo::ds {
namespace {

TEST(UniqueTable, FindOrInsertAssignsAndHits) {
  UniqueTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(pack_pair(3, 4)), nullptr);

  const auto [id1, ins1] = t.find_or_insert(pack_pair(3, 4), 10);
  EXPECT_TRUE(ins1);
  EXPECT_EQ(id1, 10u);
  const auto [id2, ins2] = t.find_or_insert(pack_pair(3, 4), 11);
  EXPECT_FALSE(ins2);
  EXPECT_EQ(id2, 10u);  // existing value wins
  ASSERT_NE(t.find(pack_pair(3, 4)), nullptr);
  EXPECT_EQ(*t.find(pack_pair(3, 4)), 10u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(UniqueTable, GrowsPastInitialCapacityAndKeepsEntries) {
  UniqueTable t;
  const int kN = 10000;
  for (std::uint32_t i = 0; i < kN; ++i)
    t.find_or_insert(pack_pair(i, i + 1), i);
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kN));
  for (std::uint32_t i = 0; i < kN; ++i) {
    const std::uint32_t* v = t.find(pack_pair(i, i + 1));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
  EXPECT_GT(t.stats().resizes, 0u);
  // Power-of-two capacity under the 0.7 max load factor.
  EXPECT_EQ(t.capacity() & (t.capacity() - 1), 0u);
  EXPECT_LE(t.size() * 10, t.capacity() * 7);
}

TEST(UniqueTable, ReserveAvoidsRehash) {
  UniqueTable t;
  t.reserve(10000);
  const std::uint64_t resizes_before = t.stats().resizes;
  for (std::uint32_t i = 0; i < 10000; ++i)
    t.find_or_insert(pack_pair(i, i), i);
  EXPECT_EQ(t.stats().resizes, resizes_before);
}

TEST(UniqueTable, ClearKeepsCapacity) {
  UniqueTable t;
  for (std::uint32_t i = 0; i < 1000; ++i) t.find_or_insert(i, i);
  const std::size_t cap = t.capacity();
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_EQ(t.find(0), nullptr);
  // Re-inserting after clear works and finds fresh values.
  t.find_or_insert(0, 42);
  ASSERT_NE(t.find(0), nullptr);
  EXPECT_EQ(*t.find(0), 42u);
}

TEST(UniqueTable, ZeroIsAValidValue) {
  UniqueTable t;
  t.find_or_insert(pack_pair(7, 8), 0);
  ASSERT_NE(t.find(pack_pair(7, 8)), nullptr);
  EXPECT_EQ(*t.find(pack_pair(7, 8)), 0u);
}

TEST(UniqueTable, CountersTrackLookupsAndHits) {
  UniqueTable t;
  t.find_or_insert(1, 1);   // miss + insert
  t.find_or_insert(1, 2);   // hit
  (void)t.find(1);          // hit
  (void)t.find(2);          // miss
  const TableStats& s = t.stats();
  EXPECT_EQ(s.lookups, 4u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_GE(s.probes, s.lookups);
  std::uint64_t hist_total = 0;
  for (const std::uint64_t b : s.probe_hist) hist_total += b;
  EXPECT_EQ(hist_total, s.lookups);
}

TEST(ComputedCache, StoreLookupRoundTrip) {
  ComputedCache c;
  EXPECT_FALSE(c.lookup(pack_pair(2, 3), 4).has_value());
  c.store(pack_pair(2, 3), 4, 77);
  const auto hit = c.lookup(pack_pair(2, 3), 4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 77u);
  // Different second word = different key.
  EXPECT_FALSE(c.lookup(pack_pair(2, 3), 5).has_value());
  EXPECT_EQ(c.live_entries(), 1u);
}

TEST(ComputedCache, InvalidateAllDropsEverything) {
  ComputedCache c;
  for (std::uint32_t i = 0; i < 100; ++i) c.store(i, i, i);
  EXPECT_GT(c.live_entries(), 0u);
  c.invalidate_all();
  EXPECT_EQ(c.live_entries(), 0u);
  for (std::uint32_t i = 0; i < 100; ++i)
    EXPECT_FALSE(c.lookup(i, i).has_value());
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(ComputedCache, StaysBoundedUnderChurn) {
  const std::size_t kMax = 1u << 8;
  ComputedCache c(1u << 4, kMax);
  for (std::uint32_t i = 0; i < 100000; ++i)
    c.store(i, i, i);
  EXPECT_LE(c.capacity(), kMax);
  EXPECT_GT(c.stats().evictions, 0u);
  EXPECT_GT(c.stats().resizes, 0u);
}

TEST(ComputedCache, OverwriteOnCollisionKeepsLatest) {
  // Force collisions with a single-slot max capacity.
  ComputedCache c(1, 1);
  EXPECT_EQ(c.capacity(), 0u);  // lazily allocated: nothing until a store
  c.store(1, 1, 10);
  EXPECT_EQ(c.capacity(), 16u);  // rounded up to the minimum
  c.store(2, 2, 20);
  // Whatever else happened, the most recent store must be retrievable.
  const auto hit = c.lookup(2, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 20u);
}

TEST(NodeArena, PushAndAccessors) {
  NodeArena a;
  EXPECT_EQ(a.size(), 0u);
  const std::uint32_t id0 = a.push(5, 0, 0);
  const std::uint32_t id1 = a.push(3, 0, 1);
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(a.level(1), 3);
  EXPECT_EQ(a.lo(1), 0u);
  EXPECT_EQ(a.hi(1), 1u);
  a.set_level(1, 2);
  a.set_children(1, 1, 0);
  EXPECT_EQ(a.level(1), 2);
  EXPECT_EQ(a.lo(1), 1u);
  EXPECT_EQ(a.hi(1), 0u);
}

// --- hash quality regression -------------------------------------------------

/// The seed's bdd::Manager ITE-cache hash: (f << 32) ^ (g << 16) ^ h.
/// The shifted operands overlap in the middle 32 bits, so structured
/// (f, g, h) triples collide in whole families.
std::uint64_t weak_triple_hash(std::uint32_t f, std::uint32_t g,
                               std::uint32_t h) {
  return (std::uint64_t{f} << 32) ^ (std::uint64_t{g} << 16) ^
         std::uint64_t{h};
}

TEST(HashQuality, WeakTripleHashCollidesOnStructuredTriples) {
  // Family 1: flipping the same bit in g and in h<<16 cancels in the xor.
  const std::uint32_t f = 12345, g = 0x40000, h = 3;
  for (std::uint32_t d = 1; d < 1u << 12; d <<= 1) {
    EXPECT_EQ(weak_triple_hash(f, g, h),
              weak_triple_hash(f, g ^ d, h ^ (d << 16)))
        << "expected collision for d=" << d;
  }
}

TEST(HashQuality, MixedTripleHashSeparatesStructuredTriples) {
  // The same structured families must not collide under hash_triple, and
  // random triples must spread: measure collisions into 2^16 buckets.
  const std::uint32_t f = 12345, g = 0x40000, h = 3;
  for (std::uint32_t d = 1; d < 1u << 12; d <<= 1)
    EXPECT_NE(hash_triple(f, g, h), hash_triple(f, g ^ d, h ^ (d << 16)));

  util::Xoshiro256 rng(17);
  const int kTriples = 1 << 14;
  const std::uint64_t kBuckets = 1 << 16;
  std::set<std::uint64_t> seen;
  int collisions = 0;
  for (int i = 0; i < kTriples; ++i) {
    // Structured ids (small, clustered) like a real node pool produces.
    const auto a = static_cast<std::uint32_t>(rng.below(1 << 18));
    const auto b = static_cast<std::uint32_t>(rng.below(1 << 12));
    const auto c = static_cast<std::uint32_t>(rng.below(1 << 6));
    if (!seen.insert(hash_triple(a, b, c) & (kBuckets - 1)).second)
      ++collisions;
  }
  // Birthday bound: ~ k^2 / (2m) = 2^28 / 2^17 = 2048 expected collisions;
  // allow 2x slack. The weak hash loses whole 16-bit ranges and lands far
  // above this.
  EXPECT_LT(collisions, 4096);

  std::set<std::uint64_t> weak_seen;
  int weak_collisions = 0;
  util::Xoshiro256 rng2(17);
  for (int i = 0; i < kTriples; ++i) {
    const auto a = static_cast<std::uint32_t>(rng2.below(1 << 18));
    const auto b = static_cast<std::uint32_t>(rng2.below(1 << 12));
    const auto c = static_cast<std::uint32_t>(rng2.below(1 << 6));
    if (!weak_seen.insert(weak_triple_hash(a, b, c) & (kBuckets - 1)).second)
      ++weak_collisions;
  }
  // Regression direction: the mixed hash must beat the weak one.
  EXPECT_LT(collisions, weak_collisions);
}

TEST(HashQuality, Mix64IsABijectionOnSamples) {
  // mix64 is invertible (murmur3 finalizer); distinct inputs must map to
  // distinct outputs.
  std::unordered_set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i)
    EXPECT_TRUE(outs.insert(mix64(i)).second);
}

}  // namespace
}  // namespace ovo::ds
