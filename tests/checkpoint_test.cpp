// Crash-safety tests for the checkpoint/resume subsystem: the rt framing
// container (magic/version/length/CRC, atomic replacement), the FS*
// snapshot payload codec, a corrupted-snapshot torture corpus (every
// failure mode must surface as a typed CheckpointError — never UB, which
// the asan/tsan presets enforce), and the resume-determinism
// differential: a run interrupted at any layer fence and resumed must be
// bit-identical to the uninterrupted run — orders, sizes, tie-breaks,
// and every ledger — in both engines and at every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "parallel/exec_policy.hpp"
#include "reorder/minimize_auto.hpp"
#include "rt/budget.hpp"
#include "rt/checkpoint.hpp"
#include "rt/fault.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::core {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_raw(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

/// Hand-builds a container frame from explicit header fields, so the
/// lying-header fixtures state *which* field lies (version, length, CRC)
/// instead of poking raw byte offsets of a saved file.
std::vector<std::uint8_t> build_frame(
    std::uint32_t version, std::uint64_t length_field, std::uint32_t crc,
    const std::vector<std::uint8_t>& payload) {
  static constexpr char kMagic[8] = {'O', 'V', 'O', 'C', 'K', 'P', 'T',
                                     '\0'};
  rt::ByteWriter w;
  w.bytes(kMagic, sizeof(kMagic));
  w.u32(version);
  w.u64(length_field);
  w.u32(crc);
  w.bytes(payload.data(), payload.size());
  return w.take();
}

/// A frame whose header tells the truth about `payload`.
std::vector<std::uint8_t> build_valid_frame(
    std::uint32_t version, const std::vector<std::uint8_t>& payload) {
  return build_frame(version, payload.size(),
                     rt::crc32(payload.data(), payload.size()), payload);
}

// ---------------------------------------------------------------------------
// rt framing container

TEST(RtCheckpoint, FramingRoundTrip) {
  const std::string path = temp_path("frame.bin");
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
  rt::save_checkpoint(path, 3, payload);
  const rt::CheckpointData d = rt::load_checkpoint(path, 1, 5);
  EXPECT_EQ(d.version, 3u);
  EXPECT_EQ(d.payload, payload);
}

TEST(RtCheckpoint, EmptyPayloadRoundTrip) {
  const std::string path = temp_path("frame_empty.bin");
  rt::save_checkpoint(path, 1, {});
  const rt::CheckpointData d = rt::load_checkpoint(path, 1, 1);
  EXPECT_TRUE(d.payload.empty());
}

TEST(RtCheckpoint, MissingFileIsIoError) {
  try {
    rt::load_checkpoint(temp_path("does_not_exist.bin"), 1, 1);
    FAIL() << "expected CheckpointError";
  } catch (const rt::CheckpointError& e) {
    EXPECT_EQ(e.kind(), rt::CheckpointErrorKind::kIo);
  }
}

TEST(RtCheckpoint, TruncationSweepIsAlwaysTyped) {
  const std::string path = temp_path("trunc.bin");
  const std::string cut = temp_path("trunc_cut.bin");
  std::vector<std::uint8_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 7);
  rt::save_checkpoint(path, 1, payload);
  const std::vector<std::uint8_t> framed = rt::read_file(path);
  for (std::size_t len = 0; len < framed.size(); ++len) {
    write_raw(cut, {framed.begin(),
                    framed.begin() + static_cast<std::ptrdiff_t>(len)});
    try {
      rt::load_checkpoint(cut, 1, 1);
      FAIL() << "truncation to " << len << " bytes loaded successfully";
    } catch (const rt::CheckpointError& e) {
      // Short header -> kTruncated; short payload -> kBadLength.  Either
      // way the failure is typed, and never reaches the decoder.
      EXPECT_TRUE(e.kind() == rt::CheckpointErrorKind::kTruncated ||
                  e.kind() == rt::CheckpointErrorKind::kBadLength)
          << "len=" << len;
    }
  }
}

TEST(RtCheckpoint, BitFlipSweepIsAlwaysTyped) {
  const std::string path = temp_path("flip.bin");
  const std::string bad = temp_path("flip_bad.bin");
  std::vector<std::uint8_t> payload(48);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i + 1);
  rt::save_checkpoint(path, 1, payload);
  std::vector<std::uint8_t> framed = rt::read_file(path);
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    std::vector<std::uint8_t> mutated = framed;
    mutated[byte] ^= 0x41;
    write_raw(bad, mutated);
    EXPECT_THROW(rt::load_checkpoint(bad, 1, 1), rt::CheckpointError)
        << "flip at byte " << byte;
  }
}

TEST(RtCheckpoint, VersionSkewIsTyped) {
  const std::string path = temp_path("skew.bin");
  // Honest frame, but its version sits outside the caller's [1, 8] window.
  write_raw(path, build_valid_frame(9, {5, 5, 5}));
  try {
    rt::load_checkpoint(path, 1, 8);
    FAIL() << "expected CheckpointError";
  } catch (const rt::CheckpointError& e) {
    EXPECT_EQ(e.kind(), rt::CheckpointErrorKind::kVersionSkew);
  }
}

TEST(RtCheckpoint, LengthFieldLiesAreTyped) {
  const std::string bad = temp_path("len_bad.bin");
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const std::uint32_t crc = rt::crc32(payload.data(), payload.size());
  // Zero-length field with payload bytes still present.
  write_raw(bad, build_frame(1, 0, crc, payload));
  try {
    rt::load_checkpoint(bad, 1, 1);
    FAIL() << "expected CheckpointError";
  } catch (const rt::CheckpointError& e) {
    EXPECT_EQ(e.kind(), rt::CheckpointErrorKind::kBadLength);
  }
  // Oversized length field (declares ~1 EiB; must be rejected before any
  // allocation is attempted).
  write_raw(bad, build_frame(1, 0x0FFFFFFFFFFFFFFFull, crc, payload));
  try {
    rt::load_checkpoint(bad, 1, 1);
    FAIL() << "expected CheckpointError";
  } catch (const rt::CheckpointError& e) {
    EXPECT_EQ(e.kind(), rt::CheckpointErrorKind::kBadLength);
  }
}

TEST(RtCheckpoint, AtomicWriterDiscardsWithoutCommit) {
  const std::string path = temp_path("artifact.json");
  std::remove(path.c_str());
  {
    rt::AtomicFileWriter w(path);
    std::fputs("{\"half\":", w.stream());
    // No commit: destructor must discard the temp file.
  }
  EXPECT_EQ(std::fopen(path.c_str(), "r"), nullptr);
  {
    rt::AtomicFileWriter w(path);
    std::fputs("{\"whole\":1}", w.stream());
    w.commit();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// FS* snapshot payload

/// Runs fs_star with a byte hook capturing every layer-fence snapshot
/// (cadence 1), returning the straight-through result and the payloads.
struct CapturedRun {
  FsStarResult result;
  OpCounter ops;
  std::vector<std::vector<std::uint8_t>> fences;
};

CapturedRun capture_run(const tt::TruthTable& t, par::PruneMode prune) {
  CapturedRun out;
  FsCheckpointOptions ckpt;
  ckpt.every = 1;
  ckpt.on_bytes = [&](const std::vector<std::uint8_t>& payload) {
    out.fences.push_back(payload);
  };
  par::ExecPolicy exec;
  exec.prune = prune;
  out.result =
      fs_star(initial_table(t), util::full_mask(t.num_vars()), t.num_vars(),
              DiagramKind::kBdd, &out.ops, exec, nullptr, 0, &ckpt);
  return out;
}

void expect_tables_equal(
    const std::unordered_map<util::Mask, PrefixTable>& a,
    const std::unordered_map<util::Mask, PrefixTable>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [mask, ta] : a) {
    const auto it = b.find(mask);
    ASSERT_NE(it, b.end()) << "mask " << mask;
    EXPECT_EQ(ta.vars, it->second.vars);
    EXPECT_EQ(ta.next_id, it->second.next_id);
    EXPECT_EQ(ta.cells, it->second.cells) << "mask " << mask;
  }
}

void expect_prune_equal(const PruneStats& a, const PruneStats& b) {
  EXPECT_EQ(a.upper_bound, b.upper_bound);
  EXPECT_EQ(a.states_generated, b.states_generated);
  EXPECT_EQ(a.states_pruned, b.states_pruned);
  EXPECT_EQ(a.states_dead, b.states_dead);
  EXPECT_EQ(a.states_surviving, b.states_surviving);
  EXPECT_EQ(a.dense_cells, b.dense_cells);
  EXPECT_EQ(a.sparse_cells, b.sparse_cells);
}

void expect_ops_equal(const OpCounter& a, const OpCounter& b) {
  EXPECT_EQ(a.table_cells, b.table_cells);
  EXPECT_EQ(a.compactions, b.compactions);
  EXPECT_EQ(a.peak_cells, b.peak_cells);
  EXPECT_EQ(a.dedup.lookups, b.dedup.lookups);
  EXPECT_EQ(a.dedup.hits, b.dedup.hits);
  EXPECT_EQ(a.dedup.inserts, b.dedup.inserts);
  EXPECT_EQ(a.dedup.probes, b.dedup.probes);
  expect_prune_equal(a.prune, b.prune);
}

void expect_results_equal(const FsStarResult& a, const FsStarResult& b) {
  EXPECT_EQ(a.completed_layers, b.completed_layers);
  EXPECT_EQ(a.best_last, b.best_last);
  EXPECT_EQ(a.mincost, b.mincost);
  EXPECT_EQ(a.certified_lower_bound, b.certified_lower_bound);
  expect_prune_equal(a.prune, b.prune);
  expect_tables_equal(a.tables, b.tables);
}

TEST(FsSnapshot, EncodeIsDeterministicAndRoundTrips) {
  util::Xoshiro256 rng(11);
  const tt::TruthTable t = tt::random_function(6, rng);
  for (const par::PruneMode prune :
       {par::PruneMode::kOff, par::PruneMode::kBounds}) {
    const CapturedRun run = capture_run(t, prune);
    ASSERT_EQ(run.fences.size(), static_cast<std::size_t>(t.num_vars()) - 1)
        << "fences at layers 1..n-1 (layer n is extraction, not a fence)";
    for (const auto& payload : run.fences) {
      const FsStarSnapshot s =
          decode_snapshot(payload.data(), payload.size());
      EXPECT_EQ(s.fingerprint.n, 6u);
      EXPECT_EQ(s.dense.size(), s.tables.size());
      // Decoded state re-encodes to the identical bytes: the codec has no
      // iteration-order or uninitialized-padding leaks.
      FsSnapshotView v;
      v.fingerprint = &s.fingerprint;
      v.num_terminals = s.num_terminals;
      v.layer = s.layer;
      v.dense = &s.dense;
      v.tables = &s.tables;
      std::unordered_map<util::Mask, int> bl(s.best_last.begin(),
                                             s.best_last.end());
      std::unordered_map<util::Mask, std::uint64_t> mc(s.mincost.begin(),
                                                       s.mincost.end());
      v.best_last = &bl;
      v.mincost = &mc;
      v.prune = &s.prune;
      v.certified_lower_bound = s.certified_lower_bound;
      v.ops = &s.ops;
      v.work_charged = s.work_charged;
      v.prune_upper_bound = s.prune_upper_bound;
      v.seed_order = &s.seed_order;
      v.rng_seed = s.rng_seed;
      v.seed_name = &s.seed_name;
      v.seed_stats = &s.seed_stats;
      EXPECT_EQ(encode_snapshot(v), payload);
    }
  }
}

TEST(FsSnapshot, PayloadTortureNeverCrashes) {
  util::Xoshiro256 rng(12);
  const tt::TruthTable t = tt::random_function(5, rng);
  const CapturedRun run = capture_run(t, par::PruneMode::kBounds);
  ASSERT_FALSE(run.fences.empty());
  const std::vector<std::uint8_t>& payload = run.fences.back();
  // Truncation at every byte boundary must throw a typed error.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(decode_snapshot(payload.data(), len), rt::CheckpointError)
        << "truncated to " << len;
  }
  // Single-byte corruption at every offset: the CRC layer normally
  // catches these, so the decoder sees them only when the container was
  // bypassed — it must still either reject with a typed error or produce
  // a (semantically validated) snapshot, and never touch memory out of
  // bounds.  The asan preset is the oracle for the latter.
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    std::vector<std::uint8_t> mutated = payload;
    mutated[byte] ^= 0xFF;
    try {
      const FsStarSnapshot s =
          decode_snapshot(mutated.data(), mutated.size());
      EXPECT_LE(s.dense.size(), std::size_t{1} << 5);
    } catch (const rt::CheckpointError&) {
      // Typed rejection is the expected outcome for most offsets.
    }
  }
}

TEST(FsSnapshot, WrongInstanceIsTyped) {
  util::Xoshiro256 rng(13);
  const tt::TruthTable t = tt::random_function(5, rng);
  const tt::TruthTable other = tt::random_function(5, rng);
  const CapturedRun run = capture_run(t, par::PruneMode::kOff);
  ASSERT_FALSE(run.fences.empty());
  const FsStarSnapshot snap =
      decode_snapshot(run.fences.back().data(), run.fences.back().size());
  FsCheckpointOptions resume;
  resume.resume = &snap;
  const util::Mask all = util::full_mask(5);
  // Different function, same shape.
  try {
    fs_star(initial_table(other), all, 5, DiagramKind::kBdd, nullptr, {},
            nullptr, 0, &resume);
    FAIL() << "expected kWrongInstance";
  } catch (const rt::CheckpointError& e) {
    EXPECT_EQ(e.kind(), rt::CheckpointErrorKind::kWrongInstance);
  }
  // Same function, different diagram kind.
  EXPECT_THROW(fs_star(initial_table(t), all, 5, DiagramKind::kZdd, nullptr,
                       {}, nullptr, 0, &resume),
               rt::CheckpointError);
  // Same function, different prune mode.
  par::ExecPolicy pruned;
  pruned.prune = par::PruneMode::kBounds;
  EXPECT_THROW(fs_star(initial_table(t), all, 5, DiagramKind::kBdd, nullptr,
                       pruned, nullptr, 0, &resume),
               rt::CheckpointError);
}

// ---------------------------------------------------------------------------
// Resume determinism differential

// Interrupt at every layer fence, resume, and require the resumed run to
// reproduce the straight-through run exactly: tables, back-pointers,
// mincosts, prune ledger, certified bound, and the merged OpCounter —
// in both engines, at several thread counts.
TEST(FsResume, EveryFenceBitIdentical) {
  util::Xoshiro256 rng(21);
  for (const int n : {6, 8}) {
    const tt::TruthTable t = tt::random_function(n, rng);
    const util::Mask all = util::full_mask(n);
    for (const par::PruneMode prune :
         {par::PruneMode::kOff, par::PruneMode::kBounds}) {
      const CapturedRun straight = capture_run(t, prune);
      for (const auto& payload : straight.fences) {
        const FsStarSnapshot snap =
            decode_snapshot(payload.data(), payload.size());
        for (const int threads : {1, 2, 4, 8}) {
          for (const bool pipeline : {false, true}) {
            par::ExecPolicy exec;
            exec.num_threads = threads;
            exec.pipeline = pipeline;
            exec.prune = prune;
            FsCheckpointOptions resume;
            resume.resume = &snap;
            OpCounter ops;
            const FsStarResult r =
                fs_star(initial_table(t), all, n, DiagramKind::kBdd, &ops,
                        exec, nullptr, 0, &resume);
            SCOPED_TRACE("n=" + std::to_string(n) + " layer=" +
                         std::to_string(snap.layer) + " threads=" +
                         std::to_string(threads) +
                         (pipeline ? " pipelined" : " barrier") +
                         (prune == par::PruneMode::kBounds ? " pruned" : ""));
            expect_results_equal(r, straight.result);
            expect_ops_equal(ops, straight.ops);
          }
        }
      }
    }
  }
}

// Resuming at the final fence (layer n-1) and at a mid fence must also
// reproduce the reconstructed order, not just the maps.
TEST(FsResume, ReconstructedOrderMatches) {
  util::Xoshiro256 rng(22);
  const int n = 7;
  const tt::TruthTable t = tt::random_function(n, rng);
  const util::Mask all = util::full_mask(n);
  const CapturedRun straight = capture_run(t, par::PruneMode::kOff);
  const std::vector<int> want = reconstruct_block_order(straight.result, all);
  for (const auto& payload : straight.fences) {
    const FsStarSnapshot snap =
        decode_snapshot(payload.data(), payload.size());
    FsCheckpointOptions resume;
    resume.resume = &snap;
    const FsStarResult r = fs_star(initial_table(t), all, n,
                                   DiagramKind::kBdd, nullptr, {}, nullptr,
                                   0, &resume);
    EXPECT_EQ(reconstruct_block_order(r, all), want);
  }
}

// Cadence: every=2 writes only even-layer fences (plus the completion
// semantics stay untouched).
TEST(FsResume, CadenceSkipsOddFences) {
  util::Xoshiro256 rng(23);
  const tt::TruthTable t = tt::random_function(6, rng);
  std::vector<int> layers;
  FsCheckpointOptions ckpt;
  ckpt.every = 2;
  ckpt.on_bytes = [&](const std::vector<std::uint8_t>& payload) {
    layers.push_back(decode_snapshot(payload.data(), payload.size()).layer);
  };
  fs_star(initial_table(t), util::full_mask(6), 6, DiagramKind::kBdd,
          nullptr, {}, nullptr, 0, &ckpt);
  EXPECT_EQ(layers, (std::vector<int>{2, 4}));
}

// A budget trip emits a final snapshot of the deepest completed layer;
// resuming it with the remaining budget replays the uninterrupted
// governed run exactly, including the work ledger.
TEST(FsResume, TripSnapshotResumesWithLedgerContinuity) {
  util::Xoshiro256 rng(24);
  const int n = 7;
  const tt::TruthTable t = tt::random_function(n, rng);
  const util::Mask all = util::full_mask(n);

  // Straight governed run (unlimited budget, so it completes).
  rt::Governor straight_gov((rt::Budget()));
  OpCounter straight_ops;
  const FsStarResult straight =
      fs_star(initial_table(t), all, n, DiagramKind::kBdd, &straight_ops, {},
              &straight_gov, 0, nullptr);
  ASSERT_EQ(straight.completed_layers, n);

  // Budgeted run that trips mid-DP and snapshots on the trip.
  std::vector<std::uint8_t> last;
  FsCheckpointOptions ckpt;
  ckpt.every = 1;
  ckpt.on_bytes = [&](const std::vector<std::uint8_t>& p) { last = p; };
  rt::Budget small;
  small.work_limit = straight_gov.stats().work_units / 3;
  rt::Governor tripped_gov(small);
  OpCounter tripped_ops;
  const FsStarResult tripped =
      fs_star(initial_table(t), all, n, DiagramKind::kBdd, &tripped_ops, {},
              &tripped_gov, 0, &ckpt);
  ASSERT_LT(tripped.completed_layers, n);
  ASSERT_FALSE(last.empty());

  // Resume under an unlimited budget: identical results, and the resumed
  // governor's total equals the straight run's (ledger continuity).
  const FsStarSnapshot snap = decode_snapshot(last.data(), last.size());
  FsCheckpointOptions resume;
  resume.resume = &snap;
  rt::Governor resumed_gov((rt::Budget()));
  OpCounter resumed_ops;
  const FsStarResult resumed =
      fs_star(initial_table(t), all, n, DiagramKind::kBdd, &resumed_ops, {},
              &resumed_gov, 0, &resume);
  expect_results_equal(resumed, straight);
  expect_ops_equal(resumed_ops, straight_ops);
  EXPECT_EQ(resumed_gov.stats().work_units, straight_gov.stats().work_units);
}

// File-based round trip through save_snapshot/load_snapshot, plus the
// dd-a-byte corruption the verify script exercises.
TEST(FsResume, FileRoundTripAndCorruption) {
  util::Xoshiro256 rng(25);
  const int n = 6;
  const tt::TruthTable t = tt::random_function(n, rng);
  const util::Mask all = util::full_mask(n);
  const std::string path = temp_path("fs_snapshot.bin");

  FsCheckpointOptions ckpt;
  ckpt.path = path;
  ckpt.every = 1;
  OpCounter straight_ops;
  const FsStarResult straight =
      fs_star(initial_table(t), all, n, DiagramKind::kBdd, &straight_ops, {},
              nullptr, 0, &ckpt);

  // The file holds the last fence (layer n-1); resuming completes the run.
  const FsStarSnapshot snap = load_snapshot(path);
  EXPECT_EQ(snap.layer, n - 1);
  FsCheckpointOptions resume;
  resume.resume = &snap;
  OpCounter resumed_ops;
  const FsStarResult resumed =
      fs_star(initial_table(t), all, n, DiagramKind::kBdd, &resumed_ops, {},
              nullptr, 0, &resume);
  expect_results_equal(resumed, straight);
  expect_ops_equal(resumed_ops, straight_ops);

  // Corrupt one payload byte on disk: load must reject with CRC.
  std::vector<std::uint8_t> framed = rt::read_file(path);
  framed[framed.size() / 2] ^= 0x10;
  write_raw(path, framed);
  try {
    load_snapshot(path);
    FAIL() << "expected CheckpointError";
  } catch (const rt::CheckpointError& e) {
    EXPECT_EQ(e.kind(), rt::CheckpointErrorKind::kCrcMismatch);
  }
}

// A snapshot written by an older encoder (container version below
// kFsSnapshotVersion) must be refused as version skew, not misparsed —
// the v2 payload grew a trailing ledger section that v1 files lack.
TEST(FsResume, OldSnapshotVersionIsTyped) {
  util::Xoshiro256 rng(26);
  const tt::TruthTable t = tt::random_function(5, rng);
  const CapturedRun run = capture_run(t, par::PruneMode::kOff);
  ASSERT_FALSE(run.fences.empty());

  const std::string path = temp_path("fs_snapshot_old.bin");
  // Honest frame (correct length and CRC) carrying a current payload, but
  // stamped with the previous container version.
  write_raw(path, build_valid_frame(kFsSnapshotVersion - 1, run.fences.back()));
  try {
    load_snapshot(path);
    FAIL() << "expected CheckpointError";
  } catch (const rt::CheckpointError& e) {
    EXPECT_EQ(e.kind(), rt::CheckpointErrorKind::kVersionSkew);
  }
}

// ---------------------------------------------------------------------------
// The governed ladder

// A minimize_auto run cancelled mid-DP (deterministically, via fault
// injection standing in for SIGINT) persists a trip snapshot; resuming
// skips the seed stage yet reproduces the uninterrupted run's order,
// size, optimality, and full ledger (oracle counters included, via the
// snapshot's seed-stage provenance).
TEST(MinimizeAutoResume, CancelledRunResumesBitIdentical) {
  util::Xoshiro256 rng(31);
  const tt::TruthTable t = tt::random_function(8, rng);

  reorder::AutoMinimizeOptions opt;
  opt.exec.prune = par::PruneMode::kBounds;
  const rt::Result<reorder::AutoMinimizeResult> straight =
      reorder::minimize_auto(t, rt::Budget(), opt);
  ASSERT_TRUE(straight.value.optimal);

  // Count the run's governor checkpoints with a plan that never fires, so
  // the injected cancellation can be aimed *inside the DP stage* — past
  // the seed heuristic (a trip during seeding snapshots the partial
  // seed's incumbent, a different run) and before completion.
  std::uint64_t total_checkpoints = 0;
  {
    rt::FaultPlan probe;
    rt::ScopedFaultPlan scoped(probe);
    reorder::minimize_auto(t, rt::Budget(), opt);
    total_checkpoints = scoped.checkpoints_seen();
  }
  ASSERT_GT(total_checkpoints, 0u);

  std::vector<std::uint8_t> last;
  rt::Result<reorder::AutoMinimizeResult> tripped;
  bool found_trip = false;
  for (const int pct : {50, 62, 75, 87}) {
    last.clear();
    reorder::AutoMinimizeOptions copt = opt;
    copt.ckpt.every = 1;
    copt.ckpt.on_bytes = [&](const std::vector<std::uint8_t>& p) {
      last = p;
    };
    rt::CancelToken cancel;
    rt::FaultPlan plan;
    plan.cancel_at_checkpoint =
        std::max<std::uint64_t>(1, total_checkpoints * pct / 100);
    plan.cancel = &cancel;
    rt::Budget budget;
    budget.cancel = &cancel;
    rt::ScopedFaultPlan scoped(plan);
    tripped = reorder::minimize_auto(t, budget, copt);
    if (tripped.outcome == rt::Outcome::kCancelled &&
        tripped.value.dp_layers_completed >= 1 && !last.empty()) {
      found_trip = true;
      break;
    }
  }
  ASSERT_TRUE(found_trip) << "no injection point tripped mid-DP";
  ASSERT_FALSE(tripped.value.optimal);
  // Even the cancelled run returns a valid order and a certified bound.
  EXPECT_EQ(tripped.value.order_root_first.size(), 8u);
  EXPECT_GT(tripped.value.lower_bound, 0u);
  EXPECT_LE(tripped.value.lower_bound, straight.value.internal_nodes);

  const FsStarSnapshot snap = decode_snapshot(last.data(), last.size());
  reorder::AutoMinimizeOptions ropt = opt;
  ropt.ckpt.resume = &snap;
  for (const int threads : {1, 2, 4, 8}) {
    reorder::AutoMinimizeOptions topt = ropt;
    topt.exec.num_threads = threads;
    const rt::Result<reorder::AutoMinimizeResult> resumed =
        reorder::minimize_auto(t, rt::Budget(), topt);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(resumed.outcome, rt::Outcome::kComplete);
    EXPECT_TRUE(resumed.value.optimal);
    EXPECT_EQ(resumed.value.order_root_first,
              straight.value.order_root_first);
    EXPECT_EQ(resumed.value.internal_nodes, straight.value.internal_nodes);
    EXPECT_EQ(resumed.value.lower_bound, straight.value.lower_bound);
    // Ledger continuity: DP ops, oracle counters (seed stage restored
    // from the snapshot), and governor work all equal the straight run.
    expect_ops_equal(resumed.value.ops, straight.value.ops);
    EXPECT_EQ(resumed.value.oracle.queries, straight.value.oracle.queries);
    EXPECT_EQ(resumed.value.oracle.evals, straight.value.oracle.evals);
    EXPECT_EQ(resumed.value.oracle.memo_hits,
              straight.value.oracle.memo_hits);
    EXPECT_EQ(resumed.value.oracle.ops.table_cells,
              straight.value.oracle.ops.table_cells);
    EXPECT_EQ(resumed.stats.work_units, straight.stats.work_units);
  }
}

// fs_minimize plumbs checkpoints end to end (the non-ladder entry).
TEST(MinimizeResume, FsMinimizeRoundTrip) {
  util::Xoshiro256 rng(32);
  const tt::TruthTable t = tt::random_function(7, rng);
  const std::string path = temp_path("fs_min.bin");
  FsCheckpointOptions ckpt;
  ckpt.path = path;
  ckpt.every = 1;
  const MinimizeResult straight =
      fs_minimize(t, DiagramKind::kBdd, {}, 0, &ckpt);
  const FsStarSnapshot snap = load_snapshot(path);
  FsCheckpointOptions resume;
  resume.resume = &snap;
  const MinimizeResult resumed =
      fs_minimize(t, DiagramKind::kBdd, {}, 0, &resume);
  EXPECT_EQ(resumed.min_internal_nodes, straight.min_internal_nodes);
  EXPECT_EQ(resumed.order_root_first, straight.order_root_first);
}

}  // namespace
}  // namespace ovo::core
