// Tests for the BLIF netlist reader and its integration with the
// ordering pipeline.

#include <gtest/gtest.h>

#include "core/minimize.hpp"
#include "core/multi_output.hpp"
#include "tt/blif.hpp"
#include "tt/function_zoo.hpp"
#include "tt/parse_error.hpp"
#include "util/check.hpp"

namespace ovo::tt {
namespace {

const char* kFullAdder = R"(# full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b axb
01 1
10 1
.names axb cin sum
01 1
10 1
.names a b ab
11 1
.names axb cin p
11 1
.names ab p cout
1- 1
-1 1
.end
)";

TEST(Blif, FullAdderSemantics) {
  const BlifModel m = parse_blif(kFullAdder);
  EXPECT_EQ(m.name, "fa");
  EXPECT_EQ(m.inputs.size(), 3u);
  EXPECT_EQ(m.outputs, (std::vector<std::string>{"sum", "cout"}));
  for (std::uint64_t a = 0; a < 8; ++a) {
    const int bits = static_cast<int>((a & 1) + ((a >> 1) & 1) + ((a >> 2) & 1));
    EXPECT_EQ(m.eval("sum", a), (bits & 1) != 0) << a;
    EXPECT_EQ(m.eval("cout", a), bits >= 2) << a;
  }
}

TEST(Blif, OutputTables) {
  const BlifModel m = parse_blif(kFullAdder);
  const auto tables = m.output_tables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0], parity(3));       // sum
  EXPECT_EQ(tables[1], majority(3));     // carry of 3 = majority
}

TEST(Blif, OffSetCover) {
  // NOR via OFF-set rows: output 0 when any input is 1.
  const BlifModel m = parse_blif(
      ".inputs a b\n.outputs f\n.names a b f\n1- 0\n-1 0\n.end\n");
  EXPECT_TRUE(m.eval("f", 0b00));
  EXPECT_FALSE(m.eval("f", 0b01));
  EXPECT_FALSE(m.eval("f", 0b11));
}

TEST(Blif, Constants) {
  const BlifModel m = parse_blif(
      ".inputs a\n.outputs t z g\n.names t\n1\n.names z\n"
      "\n.names a t g\n11 1\n.end\n");
  EXPECT_TRUE(m.eval("t", 0));
  EXPECT_FALSE(m.eval("z", 0));  // empty cover = constant 0
  EXPECT_TRUE(m.eval("g", 1));
  EXPECT_FALSE(m.eval("g", 0));
}

TEST(Blif, OutOfOrderDefinitionsWork) {
  // g defined before its fanin h.
  const BlifModel m = parse_blif(
      ".inputs a\n.outputs g\n.names h g\n1 1\n.names a h\n0 1\n.end\n");
  EXPECT_TRUE(m.eval("g", 0));
  EXPECT_FALSE(m.eval("g", 1));
}

TEST(Blif, LineContinuation) {
  const BlifModel m = parse_blif(
      ".inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n");
  EXPECT_EQ(m.inputs.size(), 2u);
  EXPECT_TRUE(m.eval("f", 0b11));
}

TEST(Blif, Errors) {
  EXPECT_THROW(parse_blif(""), util::CheckError);
  EXPECT_THROW(parse_blif(".inputs a\n.names a f\n1 1\n"),
               util::CheckError);  // no outputs
  EXPECT_THROW(parse_blif(".inputs a\n.outputs f\n.latch a f\n.end\n"),
               util::CheckError);
  EXPECT_THROW(parse_blif(".inputs a\n.outputs f\n11 1\n.end\n"),
               util::CheckError);  // row outside .names
  EXPECT_THROW(parse_blif(".inputs a\n.outputs f\n.names a f\n1x 1\n.end\n"),
               util::CheckError);
  EXPECT_THROW(
      parse_blif(".inputs a b\n.outputs f\n.names a b f\n11 1\n1- 0\n.end\n"),
      util::CheckError);  // mixed output column
  const BlifModel undef = parse_blif(
      ".inputs a\n.outputs f\n.names q f\n1 1\n.end\n");
  EXPECT_THROW(undef.eval("f", 0), util::CheckError);
  const BlifModel cyc = parse_blif(
      ".inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n");
  EXPECT_THROW(cyc.eval("f", 0), util::CheckError);
}

// Malformed netlists must raise the typed ParseError (a subclass of
// util::CheckError, so the expectations above keep holding too).
TEST(Blif, MalformedFilesThrowTypedError) {
  // Truncated: no .end terminator.
  EXPECT_THROW(
      parse_blif(".inputs a\n.outputs f\n.names a f\n1 1\n"), ParseError);
  // Truncated: the file ends in the middle of a continuation line.
  EXPECT_THROW(parse_blif(".inputs a\n.outputs f\n.names a f \\"),
               ParseError);
  // Two covers driving the same signal: the evaluator would silently use
  // the first and ignore the second.
  EXPECT_THROW(parse_blif(".inputs a b\n.outputs f\n.names a f\n1 1\n"
                          ".names b f\n1 1\n.end\n"),
               ParseError);
}

TEST(Blif, ParseErrorIsACheckError) {
  try {
    parse_blif(".inputs a\n.outputs f\n.gate and2 f\n.end\n");
    FAIL() << "expected ParseError";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("BLIF line 3"), std::string::npos);
  }
}

TEST(Blif, PipelineToOptimalOrdering) {
  const BlifModel m = parse_blif(kFullAdder);
  const auto shared = core::fs_minimize_shared(m.output_tables());
  EXPECT_GT(shared.min_internal_nodes, 0u);
  EXPECT_EQ(core::shared_size_for_order(m.output_tables(),
                                        shared.order_root_first),
            shared.min_internal_nodes);
}

}  // namespace
}  // namespace ovo::tt
