// Tests for the simulated quantum OptOBDD algorithms (Theorems 10 and 13):
// with an error-free minimum finder the result must equal FS exactly; with
// failure injection the output must still be a valid ordering (Theorem 1's
// validity guarantee); boundaries and cost ledger behave sanely.

#include <gtest/gtest.h>

#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "quantum/analysis.hpp"
#include "quantum/opt_obdd.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"
#include "zdd/manager.hpp"

namespace ovo::quantum {
namespace {

TEST(Boundaries, RealizedFromAlphas) {
  EXPECT_EQ(realize_boundaries({0.25}, 8), (std::vector<int>{2}));
  EXPECT_EQ(realize_boundaries({0.25, 0.5}, 8), (std::vector<int>{2, 4}));
  // Clamping keeps boundaries below the block size and monotone.
  EXPECT_EQ(realize_boundaries({0.9, 0.95}, 4), (std::vector<int>{3, 3}));
  EXPECT_THROW(realize_boundaries({}, 4), util::CheckError);
  EXPECT_THROW(realize_boundaries({1.5}, 4), util::CheckError);
  EXPECT_THROW(realize_boundaries({0.5, 0.4}, 8), util::CheckError);
}

class OptObddMatchesFs
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OptObddMatchesFs, SingleDivisionPoint) {
  const auto [n, seed] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  const tt::TruthTable t = tt::random_function(n, rng);
  const core::MinimizeResult fs = core::fs_minimize(t);

  AccountingMinimumFinder finder(static_cast<double>(n));
  OptObddOptions opt;
  opt.alphas = {0.27};
  opt.finder = &finder;
  const OptObddResult q = opt_obdd_minimize(t, opt);
  EXPECT_EQ(q.min_internal_nodes, fs.min_internal_nodes);
  EXPECT_TRUE(util::is_permutation(q.order_root_first));
  EXPECT_EQ(core::diagram_size_for_order(t, q.order_root_first),
            fs.min_internal_nodes);
  EXPECT_GT(q.quantum.quantum_queries, 0.0);
  EXPECT_EQ(q.quantum.min_find_failures, 0);
}

TEST_P(OptObddMatchesFs, TwoDivisionPoints) {
  const auto [n, seed] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 733 + 1);
  const tt::TruthTable t = tt::random_function(n, rng);
  const core::MinimizeResult fs = core::fs_minimize(t);

  AccountingMinimumFinder finder(static_cast<double>(n));
  OptObddOptions opt;
  opt.alphas = {0.19, 0.33};
  opt.finder = &finder;
  const OptObddResult q = opt_obdd_minimize(t, opt);
  EXPECT_EQ(q.min_internal_nodes, fs.min_internal_nodes);
  EXPECT_EQ(core::diagram_size_for_order(t, q.order_root_first),
            fs.min_internal_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptObddMatchesFs,
    ::testing::Combine(::testing::Values(4, 5, 6, 7),
                       ::testing::Range(0, 4)));

TEST(OptObdd, PaperAlphaVectorOnSmallInstance) {
  // Theorem 10's k = 6 alpha vector, scaled down to a small n: boundaries
  // mostly coincide, which the implementation must tolerate.
  const tt::TruthTable t = tt::pair_sum(4);  // n = 8
  AccountingMinimumFinder finder(8.0);
  OptObddOptions opt;
  opt.alphas = {0.183791, 0.183802, 0.183974, 0.186131, 0.206480, 0.343573};
  opt.finder = &finder;
  const OptObddResult q = opt_obdd_minimize(t, opt);
  EXPECT_EQ(q.min_internal_nodes, core::fs_minimize(t).min_internal_nodes);
}

TEST(OptObdd, ZddKind) {
  util::Xoshiro256 rng(3);
  const tt::TruthTable t = tt::random_sparse_function(6, 7, rng);
  AccountingMinimumFinder finder(6.0);
  OptObddOptions opt;
  opt.kind = core::DiagramKind::kZdd;
  opt.alphas = {0.3};
  opt.finder = &finder;
  const OptObddResult q = opt_obdd_minimize(t, opt);
  EXPECT_EQ(q.min_internal_nodes,
            core::fs_minimize(t, core::DiagramKind::kZdd).min_internal_nodes);
  zdd::Manager m(6, q.order_root_first);
  EXPECT_EQ(m.size(m.from_truth_table(t)), q.min_internal_nodes);
}

TEST(OptObdd, GroverFinderEndToEnd) {
  // With the amplitude-level Dürr–Høyer finder the algorithm is fully
  // "quantum" (simulated); repetitions make failure negligible here.
  const tt::TruthTable t = tt::pair_sum(3);
  GroverMinimumFinder finder(5, 11);
  OptObddOptions opt;
  opt.alphas = {0.3};
  opt.finder = &finder;
  const OptObddResult q = opt_obdd_minimize(t, opt);
  EXPECT_EQ(q.min_internal_nodes, 6u);
  EXPECT_GT(q.quantum.quantum_queries, 0.0);
}

// Theorem 1's validity guarantee: even when minimum finding fails, the
// produced ordering is a real permutation and the reported size is the
// true size of the OBDD under that ordering (a valid, possibly
// non-minimum OBDD).
TEST(OptObdd, FailureInjectionStillYieldsValidObdd) {
  util::Xoshiro256 rng(5);
  int suboptimal = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const tt::TruthTable t = tt::random_function(6, rng);
    AccountingMinimumFinder finder(6.0, /*failure_rate=*/0.7,
                                   /*seed=*/trial + 1);
    OptObddOptions opt;
    opt.alphas = {0.3};
    opt.finder = &finder;
    const OptObddResult q = opt_obdd_minimize(t, opt);
    ASSERT_TRUE(util::is_permutation(q.order_root_first));
    // The reported size is the true size under the returned order...
    EXPECT_EQ(core::diagram_size_for_order(t, q.order_root_first),
              q.min_internal_nodes);
    // ...and a rebuild represents f exactly.
    bdd::Manager m(6, q.order_root_first);
    const bdd::NodeId root = m.from_truth_table(t);
    EXPECT_EQ(m.to_truth_table(root), t);
    const std::uint64_t optimum = core::fs_minimize(t).min_internal_nodes;
    EXPECT_GE(q.min_internal_nodes, optimum);
    if (q.min_internal_nodes > optimum) ++suboptimal;
  }
  // With failure rate 0.7 some runs must actually be suboptimal, proving
  // the injection is live.
  EXPECT_GE(suboptimal, 1);
}

TEST(OptObdd, NoPreprocessAblationStillExact) {
  // Sec. 3.1 gamma_0 regime: disabling the classical preprocess changes
  // the cost profile, never the answer.
  util::Xoshiro256 rng(21);
  for (int trial = 0; trial < 4; ++trial) {
    const tt::TruthTable t = tt::random_function(6, rng);
    AccountingMinimumFinder finder(6.0);
    OptObddOptions opt;
    opt.alphas = {0.3};
    opt.finder = &finder;
    opt.use_preprocess = false;
    const OptObddResult q = opt_obdd_minimize(t, opt);
    EXPECT_EQ(q.min_internal_nodes,
              core::fs_minimize(t).min_internal_nodes);
    EXPECT_EQ(core::diagram_size_for_order(t, q.order_root_first),
              q.min_internal_nodes);
  }
}

TEST(OptObdd, PreprocessReducesChargedWork) {
  const tt::TruthTable t = tt::hidden_weighted_bit(8);
  AccountingMinimumFinder f1(8.0), f2(8.0);
  OptObddOptions with, without;
  with.alphas = without.alphas = {0.27};
  with.finder = &f1;
  without.finder = &f2;
  without.use_preprocess = false;
  const OptObddResult a = opt_obdd_minimize(t, with);
  const OptObddResult b = opt_obdd_minimize(t, without);
  EXPECT_EQ(a.min_internal_nodes, b.min_internal_nodes);
  EXPECT_LT(a.quantum.quantum_charged_cells,
            b.quantum.quantum_charged_cells);
}

TEST(OptObdd, TowerMatchesFsOnTinyInstances) {
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 3; ++trial) {
    const tt::TruthTable t = tt::random_function(5, rng);
    AccountingMinimumFinder finder(5.0);
    TowerOptions opt;
    opt.alpha_levels = {{0.4}, {0.4}};  // Gamma_1 inside Gamma_2
    opt.finder = &finder;
    const OptObddResult q = tower_minimize(t, opt);
    EXPECT_EQ(q.min_internal_nodes,
              core::fs_minimize(t).min_internal_nodes);
    EXPECT_EQ(core::diagram_size_for_order(t, q.order_root_first),
              q.min_internal_nodes);
  }
}

TEST(OptObdd, LedgerChargesLessThanClassicalSimulation) {
  // The whole point: the charged quantum work must undercut the classical
  // exhaustive evaluation performed by the simulation at the top stage.
  const tt::TruthTable t = tt::multiplier_middle_bit(8);
  AccountingMinimumFinder finder(1.0);
  OptObddOptions opt;
  opt.alphas = {0.3};
  opt.finder = &finder;
  const OptObddResult q = opt_obdd_minimize(t, opt);
  EXPECT_GT(q.quantum.quantum_charged_cells, 0.0);
  EXPECT_LT(q.quantum.quantum_charged_cells,
            static_cast<double>(q.classical_ops.table_cells));
}

TEST(Analysis, PeakSpaceMatchesClosedForm) {
  // Remark 1: the DP's resident table cells peak exactly at the
  // two-adjacent-layers maximum.
  util::Xoshiro256 rng(3);
  for (int n = 3; n <= 9; ++n) {
    const core::MinimizeResult r =
        core::fs_minimize(tt::random_function(n, rng));
    EXPECT_DOUBLE_EQ(static_cast<double>(r.ops.peak_cells),
                     fs_peak_cells(n))
        << "n=" << n;
  }
}

TEST(Analysis, RecurrencesAreConsistent) {
  // FS cells grow like 3^n.
  const double ratio = fs_total_cells(15) / fs_total_cells(14);
  EXPECT_NEAR(ratio, 3.0, 0.35);
  // Brute force dwarfs FS quickly.
  EXPECT_GT(brute_force_total_cells(12), fs_total_cells(12));
  // FS* on the whole space equals FS.
  EXPECT_DOUBLE_EQ(fs_star_cells(10, 0, 10), fs_total_cells(10));
  // Predicted OptOBDD cost sits below FS for large n with the paper's
  // boundaries.
  const int n = 40;
  const auto boundaries = realize_boundaries(
      {0.183791, 0.183802, 0.183974, 0.186131, 0.206480, 0.343573}, n);
  const PredictedCost pc = opt_obdd_predicted_cells(n, boundaries);
  EXPECT_LT(pc.total, fs_total_cells(n));
}

}  // namespace
}  // namespace ovo::quantum
