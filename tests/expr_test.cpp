// Tests for the Boolean expression representation and its parser
// (one of the Corollary 2 input forms).

#include <gtest/gtest.h>

#include "tt/expr.hpp"
#include "tt/function_zoo.hpp"
#include "util/check.hpp"

namespace ovo::tt {
namespace {

TEST(ExprBuild, Constructors) {
  const ExprPtr v = make_var(2);
  EXPECT_EQ(v->op, ExprOp::kVar);
  EXPECT_EQ(v->var, 2);
  const ExprPtr c = make_const(true);
  EXPECT_TRUE(c->value);
  const ExprPtr n = make_not(v);
  EXPECT_EQ(n->op, ExprOp::kNot);
  EXPECT_THROW(make_var(-1), util::CheckError);
  EXPECT_THROW(make_not(nullptr), util::CheckError);
}

TEST(ExprEval, BasicOperators) {
  const ExprPtr e = make_xor(make_and(make_var(0), make_var(1)),
                             make_or(make_var(2), make_const(false)));
  // (x0 & x1) ^ x2
  for (std::uint64_t a = 0; a < 8; ++a) {
    const bool expected = (((a & 1) && (a & 2)) != ((a & 4) != 0));
    EXPECT_EQ(eval_expr(*e, a), expected);
  }
}

TEST(ExprParse, Simple) {
  const ExprPtr e = parse_expr("x1 & x2");
  EXPECT_TRUE(eval_expr(*e, 0b11));
  EXPECT_FALSE(eval_expr(*e, 0b01));
}

TEST(ExprParse, Precedence) {
  // & binds tighter than ^, which binds tighter than |.
  const ExprPtr e = parse_expr("x1 | x2 & x3");
  EXPECT_TRUE(eval_expr(*e, 0b001));   // x1
  EXPECT_FALSE(eval_expr(*e, 0b010));  // x2 alone
  EXPECT_TRUE(eval_expr(*e, 0b110));   // x2 & x3

  const ExprPtr x = parse_expr("x1 ^ x2 & x3");
  EXPECT_TRUE(eval_expr(*x, 0b001));
  EXPECT_TRUE(eval_expr(*x, 0b110));
  EXPECT_FALSE(eval_expr(*x, 0b111));
}

TEST(ExprParse, ParensAndNot) {
  const ExprPtr e = parse_expr("!(x1 | x2) & x3");
  EXPECT_TRUE(eval_expr(*e, 0b100));
  EXPECT_FALSE(eval_expr(*e, 0b101));
  const ExprPtr d = parse_expr("!!x1");
  EXPECT_TRUE(eval_expr(*d, 1));
}

TEST(ExprParse, Constants) {
  EXPECT_TRUE(eval_expr(*parse_expr("1"), 0));
  EXPECT_FALSE(eval_expr(*parse_expr("0 | 0"), 0));
  EXPECT_TRUE(eval_expr(*parse_expr("0 ^ 1"), 0));
}

TEST(ExprParse, Whitespace) {
  const ExprPtr e = parse_expr("  x1   &\n x2\t| x3 ");
  EXPECT_TRUE(eval_expr(*e, 0b100));
}

TEST(ExprParse, Errors) {
  EXPECT_THROW(parse_expr(""), util::CheckError);
  EXPECT_THROW(parse_expr("x"), util::CheckError);
  EXPECT_THROW(parse_expr("x0"), util::CheckError);  // 1-based
  EXPECT_THROW(parse_expr("x1 &"), util::CheckError);
  EXPECT_THROW(parse_expr("(x1"), util::CheckError);
  EXPECT_THROW(parse_expr("x1 x2"), util::CheckError);
  EXPECT_THROW(parse_expr("y1"), util::CheckError);
}

TEST(ExprMeta, NumVarsAndSize) {
  const ExprPtr e = parse_expr("x1 & x5 | !x3");
  EXPECT_EQ(expr_num_vars(*e), 5);
  EXPECT_EQ(expr_size(*e), 6u);  // 3 vars + not + and + or
  EXPECT_EQ(expr_num_vars(*parse_expr("1")), 0);
}

TEST(ExprRoundtrip, ToStringParsesBack) {
  const char* samples[] = {
      "x1 & x2 | x3 ^ !x4",
      "!(x1 | !(x2 & x3))",
      "x1 ^ x2 ^ x3 ^ x4",
      "(x1 | x2) & (x3 | x4) & 1",
  };
  for (const char* s : samples) {
    const ExprPtr e = parse_expr(s);
    const ExprPtr r = parse_expr(expr_to_string(*e));
    const int n = expr_num_vars(*e);
    EXPECT_EQ(expr_to_truth_table(*e, n), expr_to_truth_table(*r, n)) << s;
  }
}

TEST(ExprTabulate, MatchesZoo) {
  // The paper's Fig. 1 function as an expression.
  const ExprPtr e = parse_expr("x1 & x2 | x3 & x4 | x5 & x6");
  EXPECT_EQ(expr_to_truth_table(*e, 6), pair_sum(3));
}

TEST(ExprTabulate, PadsExtraVariables) {
  const ExprPtr e = parse_expr("x1");
  const TruthTable t = expr_to_truth_table(*e, 3);
  EXPECT_EQ(t.num_vars(), 3);
  EXPECT_FALSE(t.depends_on(1));
  EXPECT_THROW(expr_to_truth_table(*parse_expr("x4"), 2), util::CheckError);
}

}  // namespace
}  // namespace ovo::tt
