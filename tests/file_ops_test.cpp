// Tests for the rt::FileOps seam and the hardened atomic writers: every
// filesystem operation the checkpoint layer performs goes through one
// injectable backend, every primary-path operation is a fault site, and
// — the temp-file-leak regression — every failure path of
// write_file_atomic and AtomicFileWriter unlinks its `.tmp`, so a failed
// or interrupted write leaves the real path's old content and nothing
// else.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "rt/checkpoint.hpp"
#include "rt/fault.hpp"
#include "rt/file_ops.hpp"
#include "rt/sim_fs.hpp"
#include "util/check.hpp"

namespace ovo::rt {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

bool on_disk(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::uint8_t> bytes(const char* s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  return std::vector<std::uint8_t>(p, p + std::char_traits<char>::length(s));
}

TEST(FileOps, RealBackendRoundTrips) {
  const std::string path = temp_path("fileops_roundtrip.bin");
  const std::vector<std::uint8_t> data = bytes("hello, durable world");
  write_file_atomic(path, data.data(), data.size());
  EXPECT_EQ(read_file(path), data);
  EXPECT_FALSE(on_disk(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FileOps, ScopedInstallRedirectsEverySyscall) {
  SimFs sim;
  const std::vector<std::uint8_t> data = bytes("simulated");
  const std::string path = temp_path("fileops_should_not_exist.bin");
  {
    ScopedFileOps install(sim);
    write_file_atomic(path, data.data(), data.size());
  }
  // The bytes landed in the simulator, not on the real filesystem.
  EXPECT_EQ(sim.get(path), data);
  EXPECT_FALSE(on_disk(path));
  EXPECT_GE(sim.ops_seen(), 5u);  // open, write, fsync, close, rename, ...
}

TEST(FileOps, ScopedInstallDoesNotNest) {
  SimFs a, b;
  ScopedFileOps outer(a);
  EXPECT_THROW(ScopedFileOps inner(b), util::CheckError);
}

// --- the temp-file-leak satellite -----------------------------------------

/// Every failing primary-path file operation must leave (a) the old
/// contents of the destination untouched and (b) no `.tmp` behind.
TEST(FileOps, EveryFailurePathUnlinksTheTempFile) {
  const FaultSite sites[] = {FaultSite::kFileOpen, FaultSite::kFileWrite,
                             FaultSite::kFileFsync, FaultSite::kFileRename,
                             FaultSite::kFileClose};
  const std::vector<std::uint8_t> old_data = bytes("old snapshot");
  const std::vector<std::uint8_t> new_data = bytes("new snapshot, longer");
  for (const FaultSite site : sites) {
    for (std::uint64_t nth = 1; nth <= 2; ++nth) {
      SimFs sim;
      const std::string path = "/ckpt/state.bin";
      sim.put(path, old_data);
      ScopedFileOps install(sim);
      FaultSchedule schedule;
      schedule.fail_nth(site, nth);
      ScopedFaultPlan plan(schedule);
      bool failed = false;
      try {
        write_file_atomic(path, new_data.data(), new_data.size());
      } catch (const CheckpointError& e) {
        EXPECT_EQ(e.kind(), CheckpointErrorKind::kIo);
        failed = true;
      }
      if (plan.injected(site) == 0) {
        // The site saw fewer than `nth` events (e.g. only one fsync in
        // this path): the write must simply have succeeded.
        EXPECT_FALSE(failed) << fault_site_name(site) << " nth=" << nth;
        continue;
      }
      // The final fsync (directory durability) is deliberately
      // non-fatal; every other injection must surface as kIo.
      if (failed) {
        EXPECT_EQ(sim.get(path), old_data)
            << fault_site_name(site) << " nth=" << nth;
      } else {
        EXPECT_EQ(sim.get(path), new_data)
            << fault_site_name(site) << " nth=" << nth;
      }
      EXPECT_FALSE(sim.exists(path + ".tmp"))
          << "temp file leaked: " << fault_site_name(site) << " nth=" << nth;
    }
  }
}

TEST(AtomicFileWriter, UncommittedWriterLeavesNothingOnDisk) {
  const std::string path = temp_path("afw_uncommitted.json");
  {
    AtomicFileWriter writer(path);
    std::fprintf(writer.stream(), "{\"partial\": true");
    // destroyed without commit()
  }
  EXPECT_FALSE(on_disk(path));
  EXPECT_FALSE(on_disk(path + ".tmp"));
}

TEST(AtomicFileWriter, CommitIsAtomicAndCleansUp) {
  const std::string path = temp_path("afw_commit.json");
  {
    AtomicFileWriter writer(path);
    std::fprintf(writer.stream(), "{\"x\": %d}", 42);
    writer.commit();
  }
  EXPECT_EQ(read_file(path), bytes("{\"x\": 42}"));
  EXPECT_FALSE(on_disk(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFileWriter, FailedCommitUnlinksTempAndPreservesOld) {
  const FaultSite sites[] = {FaultSite::kFileOpen, FaultSite::kFileWrite,
                             FaultSite::kFileFsync, FaultSite::kFileRename,
                             FaultSite::kFileClose};
  for (const FaultSite site : sites) {
    SimFs sim;
    const std::string path = "/artifacts/report.json";
    sim.put(path, bytes("old report"));
    ScopedFileOps install(sim);
    FaultSchedule schedule;
    schedule.fail_nth(site, 1);
    ScopedFaultPlan plan(schedule);
    AtomicFileWriter writer(path);
    std::fprintf(writer.stream(), "new report body");
    EXPECT_THROW(writer.commit(), CheckpointError) << fault_site_name(site);
    EXPECT_EQ(sim.get(path), bytes("old report")) << fault_site_name(site);
    EXPECT_FALSE(sim.exists(path + ".tmp"))
        << "temp file leaked: " << fault_site_name(site);
  }
}

}  // namespace
}  // namespace ovo::rt
