// Tests for reorder::minimize_auto — the graceful-degradation ladder:
// exact DP under budget, salvage + sift + restarts on a trip.  The key
// contracts: the returned order is always valid with its exact size, the
// Outcome says why the run degraded, and a fixed work-unit budget gives
// bit-identical results for every thread count.

#include <gtest/gtest.h>

#include "core/minimize.hpp"
#include "reorder/minimize_auto.hpp"
#include "rt/budget.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {
namespace {

void expect_valid(const tt::TruthTable& f,
                  const rt::Result<AutoMinimizeResult>& r) {
  ASSERT_TRUE(util::is_permutation(r.value.order_root_first));
  ASSERT_EQ(r.value.order_root_first.size(),
            static_cast<std::size_t>(f.num_vars()));
  EXPECT_EQ(core::diagram_size_for_order(f, r.value.order_root_first,
                                         core::DiagramKind::kBdd),
            r.value.internal_nodes);
  EXPECT_LE(r.value.lower_bound, r.value.internal_nodes);
}

TEST(MinimizeAuto, UnlimitedBudgetIsExact) {
  const tt::TruthTable f = tt::hidden_weighted_bit(8);
  const auto r = minimize_auto(f, rt::Budget{});
  expect_valid(f, r);
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(r.value.optimal);
  EXPECT_EQ(r.value.dp_layers_completed, 8);
  EXPECT_EQ(r.value.internal_nodes,
            core::fs_minimize(f).min_internal_nodes);
  EXPECT_EQ(r.value.lower_bound, r.value.internal_nodes);
}

TEST(MinimizeAuto, TinyWorkBudgetStillReturnsAValidOrder) {
  const tt::TruthTable f = tt::hidden_weighted_bit(9);
  const auto r = minimize_auto(f, rt::Budget::with_work_limit(1));
  expect_valid(f, r);
  EXPECT_FALSE(r.value.optimal);
  EXPECT_EQ(r.outcome, rt::Outcome::kDeadline);
  EXPECT_LT(r.value.dp_layers_completed, 9);
}

TEST(MinimizeAuto, PartialDpTightensTheLowerBound) {
  const tt::TruthTable f = tt::hidden_weighted_bit(9);
  // Enough budget for a few DP layers but not all of them.
  const auto exact = minimize_auto(f, rt::Budget{});
  const auto partial = minimize_auto(f, rt::Budget::with_work_limit(20'000));
  expect_valid(f, partial);
  if (!partial.value.optimal) {
    EXPECT_LT(partial.value.dp_layers_completed, 9);
    EXPECT_LE(partial.value.lower_bound, exact.value.internal_nodes);
    EXPECT_GE(partial.value.internal_nodes, exact.value.internal_nodes);
  }
}

TEST(MinimizeAuto, NodeLimitTripReportsNodeLimit) {
  const tt::TruthTable f = tt::hidden_weighted_bit(9);
  rt::Budget b;
  b.node_limit = 8;  // below even the first DP layer's footprint
  const auto r = minimize_auto(f, b);
  expect_valid(f, r);
  EXPECT_FALSE(r.value.optimal);
  EXPECT_EQ(r.value.dp_layers_completed, 0);
  EXPECT_EQ(r.outcome, rt::Outcome::kNodeLimit);
}

TEST(MinimizeAuto, MemLimitTripReportsMemLimit) {
  const tt::TruthTable f = tt::hidden_weighted_bit(9);
  rt::Budget b;
  b.bytes_limit = 64;
  const auto r = minimize_auto(f, b);
  expect_valid(f, r);
  EXPECT_FALSE(r.value.optimal);
  EXPECT_EQ(r.outcome, rt::Outcome::kMemLimit);
}

TEST(MinimizeAuto, CancellationIsReported) {
  const tt::TruthTable f = tt::hidden_weighted_bit(8);
  rt::CancelToken token;
  token.cancel();  // cancelled before the run even starts
  rt::Budget b;
  b.cancel = &token;
  const auto r = minimize_auto(f, b);
  expect_valid(f, r);
  EXPECT_EQ(r.outcome, rt::Outcome::kCancelled);
}

// The determinism contract: for a fixed work-unit budget every thread
// count returns the same order, size, outcome, and charged work — only
// wall-clock and cancellation trips may vary between runs.
TEST(MinimizeAuto, WorkBudgetIsDeterministicAcrossThreadCounts) {
  util::Xoshiro256 rng(7);
  const tt::TruthTable f = tt::random_function(9, rng);
  for (const std::uint64_t limit :
       {std::uint64_t{500}, std::uint64_t{20'000}, std::uint64_t{200'000}}) {
    AutoMinimizeOptions base;
    base.exec.num_threads = 1;
    const auto serial =
        minimize_auto(f, rt::Budget::with_work_limit(limit), base);
    expect_valid(f, serial);
    for (const int threads : {2, 4}) {
      AutoMinimizeOptions opt;
      opt.exec.num_threads = threads;
      const auto r =
          minimize_auto(f, rt::Budget::with_work_limit(limit), opt);
      EXPECT_EQ(r.value.order_root_first, serial.value.order_root_first)
          << "limit=" << limit << " threads=" << threads;
      EXPECT_EQ(r.value.internal_nodes, serial.value.internal_nodes);
      EXPECT_EQ(r.value.dp_layers_completed,
                serial.value.dp_layers_completed);
      EXPECT_EQ(r.value.lower_bound, serial.value.lower_bound);
      EXPECT_EQ(r.outcome, serial.outcome);
      EXPECT_EQ(r.stats.work_units, serial.stats.work_units);
    }
  }
}

// A generous budget must not change the answer relative to the exact DP.
TEST(MinimizeAuto, LargeBudgetMatchesUnbudgetedResult) {
  const tt::TruthTable f = tt::multiplier_middle_bit(4);
  const auto governed =
      minimize_auto(f, rt::Budget::with_work_limit(std::uint64_t{1} << 40));
  EXPECT_TRUE(governed.complete());
  EXPECT_TRUE(governed.value.optimal);
  EXPECT_EQ(governed.value.internal_nodes,
            core::fs_minimize(f).min_internal_nodes);
}

}  // namespace
}  // namespace ovo::reorder
