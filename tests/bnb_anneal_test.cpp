// Tests for branch-and-bound exact ordering (cross-checked against FS)
// and the simulated-annealing baseline.

#include <gtest/gtest.h>

#include <numeric>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "reorder/annealing.hpp"
#include "reorder/baselines.hpp"
#include "reorder/branch_and_bound.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {
namespace {

TEST(LowerBound, ZeroAtCompletion) {
  core::PrefixTable t = core::initial_table(tt::parity(3));
  for (const int v : {0, 1, 2})
    t = core::compact(t, v, core::DiagramKind::kBdd);
  EXPECT_EQ(bnb_lower_bound(t, core::DiagramKind::kBdd), 0u);
}

TEST(LowerBound, IsAdmissibleAtTheRoot) {
  // At the empty prefix the bound must not exceed the true optimum.
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const tt::TruthTable f = tt::random_function(5, rng);
    const std::uint64_t opt = core::fs_minimize(f).min_internal_nodes;
    const core::PrefixTable root = core::initial_table(f);
    EXPECT_LE(bnb_lower_bound(root, core::DiagramKind::kBdd), opt);
  }
}

TEST(LowerBound, CompletionRespectsBoundEverywhere) {
  // Stronger admissibility check: for random chains, the nodes added by
  // the *best* completion of the prefix is >= the bound.
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const tt::TruthTable f = tt::random_function(5, rng);
    core::PrefixTable t = core::initial_table(f);
    std::vector<int> free{0, 1, 2, 3, 4};
    for (int step = 0; step < 3; ++step) {
      const std::size_t pick = rng.below(free.size());
      t = core::compact(t, free[pick], core::DiagramKind::kBdd);
      free.erase(free.begin() + static_cast<std::ptrdiff_t>(pick));
      // Optimal completion cost via FS* on the remaining block.
      const core::PrefixTable done = core::fs_star_full(
          t, util::mask_of(free), core::DiagramKind::kBdd);
      const std::uint64_t added = done.mincost() - t.mincost();
      EXPECT_GE(added, bnb_lower_bound(t, core::DiagramKind::kBdd));
    }
  }
}

class BnbVsFs : public ::testing::TestWithParam<int> {};

TEST_P(BnbVsFs, ExactOnRandomFunctions) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  const tt::TruthTable f = tt::random_function(6, rng);
  const std::uint64_t opt = core::fs_minimize(f).min_internal_nodes;
  const BnbResult cold = branch_and_bound_minimize(f);
  EXPECT_EQ(cold.internal_nodes, opt);
  EXPECT_EQ(core::diagram_size_for_order(f, cold.order_root_first), opt);
}

TEST_P(BnbVsFs, WarmStartFromSifting) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 2);
  const tt::TruthTable f = tt::random_function(6, rng);
  std::vector<int> id(6);
  std::iota(id.begin(), id.end(), 0);
  const std::uint64_t incumbent = sift(f, id).internal_nodes;
  const BnbResult warm = branch_and_bound_minimize(
      f, core::DiagramKind::kBdd, incumbent);
  EXPECT_EQ(warm.internal_nodes, core::fs_minimize(f).min_internal_nodes);
  const BnbResult cold = branch_and_bound_minimize(f);
  EXPECT_LE(warm.states_expanded, cold.states_expanded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbVsFs, ::testing::Range(0, 8));

TEST(Bnb, ZddKindExact) {
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const tt::TruthTable f = tt::random_sparse_function(5, 6, rng);
    EXPECT_EQ(
        branch_and_bound_minimize(f, core::DiagramKind::kZdd).internal_nodes,
        core::fs_minimize(f, core::DiagramKind::kZdd).min_internal_nodes);
  }
}

TEST(Bnb, PruningIsEffectiveOnStructuredFunctions) {
  // pair_sum has huge order spread; B&B should expand far fewer states
  // than the full prefix lattice (3^n chains / 2^n subsets).
  const tt::TruthTable f = tt::pair_sum(4);  // n = 8
  const BnbResult r = branch_and_bound_minimize(f);
  EXPECT_EQ(r.internal_nodes, 8u);
  EXPECT_GT(r.states_pruned_bound + r.states_pruned_dominance, 0u);
  EXPECT_LT(r.states_expanded, 6561u);  // lattice has 2^8=256 subsets but
                                        // many chains; stay well below 3^8
}

TEST(Bnb, SingleVariable) {
  const auto t =
      tt::TruthTable::tabulate(1, [](std::uint64_t a) { return a == 1; });
  const BnbResult r = branch_and_bound_minimize(t);
  EXPECT_EQ(r.internal_nodes, 1u);
  EXPECT_EQ(r.order_root_first, (std::vector<int>{0}));
}

// --- annealing ---------------------------------------------------------------

TEST(Annealing, NeverWorseThanStart) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const tt::TruthTable f = tt::random_function(6, rng);
    std::vector<int> id(6);
    std::iota(id.begin(), id.end(), 0);
    const std::uint64_t start = core::diagram_size_for_order(f, id);
    const AnnealResult r = simulated_annealing(f, id, AnnealOptions{}, rng);
    EXPECT_LE(r.internal_nodes, start);
    EXPECT_TRUE(util::is_permutation(r.order_root_first));
    EXPECT_EQ(core::diagram_size_for_order(f, r.order_root_first),
              r.internal_nodes);
    EXPECT_GE(r.internal_nodes,
              core::fs_minimize(f).min_internal_nodes);
  }
}

TEST(Annealing, SolvesPairSumFromPessimalOrder) {
  util::Xoshiro256 rng(13);
  const tt::TruthTable f = tt::pair_sum(3);
  AnnealOptions opt;
  opt.epochs = 80;
  const AnnealResult r = simulated_annealing(
      f, tt::pair_sum_interleaved_order(3), opt, rng);
  EXPECT_EQ(r.internal_nodes, 6u);
}

TEST(Annealing, ValidatesInputs) {
  util::Xoshiro256 rng(1);
  EXPECT_THROW(simulated_annealing(tt::parity(3), {0, 1}, AnnealOptions{},
                                   rng),
               util::CheckError);
  AnnealOptions bad;
  bad.cooling = 1.5;
  EXPECT_THROW(simulated_annealing(tt::parity(3), {0, 1, 2}, bad, rng),
               util::CheckError);
}

}  // namespace
}  // namespace ovo::reorder
