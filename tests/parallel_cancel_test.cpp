// Tests for the thread pool's cooperative-cancellation and exception
// paths: a stop flag drains regions at chunk boundaries without
// deadlocking, exceptions propagate exactly once while other regions are
// mid-flight, and the combination behaves under the tsan preset.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"

namespace ovo::par {
namespace {

TEST(Cancellation, NullStopFlagRunsEverything) {
  ThreadPool& pool = ThreadPool::shared();
  std::atomic<std::uint64_t> ran{0};
  pool.parallel_for(std::uint64_t{0}, std::uint64_t{1000}, 16, 4, nullptr,
                    [&](std::uint64_t, int) {
                      ran.fetch_add(1, std::memory_order_relaxed);
                    });
  EXPECT_EQ(ran.load(), 1000u);
}

TEST(Cancellation, PreTrippedFlagRunsNothingParallel) {
  ThreadPool& pool = ThreadPool::shared();
  std::atomic<bool> stop{true};
  std::atomic<std::uint64_t> ran{0};
  pool.parallel_for(std::uint64_t{0}, std::uint64_t{1000}, 16, 4, &stop,
                    [&](std::uint64_t, int) {
                      ran.fetch_add(1, std::memory_order_relaxed);
                    });
  EXPECT_EQ(ran.load(), 0u);
}

TEST(Cancellation, SerialPathHonoursChunkGranularity) {
  ThreadPool& pool = ThreadPool::shared();
  std::atomic<bool> stop{false};
  std::uint64_t ran = 0;
  pool.parallel_for(std::uint64_t{0}, std::uint64_t{1000}, 10, 1, &stop,
                    [&](std::uint64_t i, int) {
                      ++ran;
                      if (i == 99) stop.store(true);
                    });
  // The chunk containing index 99 finishes (chunks are never cut mid-way);
  // nothing after that chunk boundary starts.
  EXPECT_EQ(ran, 100u);
}

TEST(Cancellation, MidFlightTripDrainsWithoutDeadlock) {
  ThreadPool& pool = ThreadPool::shared();
  int drained_early = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ran{0};
    pool.parallel_for(std::uint64_t{0}, std::uint64_t{100'000}, 64, 4, &stop,
                      [&](std::uint64_t i, int) {
                        ran.fetch_add(1, std::memory_order_relaxed);
                        if (i == 5'000) stop.store(true);
                      });
    EXPECT_GT(ran.load(), 0u);
    EXPECT_LE(ran.load(), 100'000u);
    if (ran.load() < 100'000u) ++drained_early;
  }
  // Scheduling could in principle let a single round finish everything
  // before the flag is seen, but across 50 rounds the drain must show.
  EXPECT_GT(drained_early, 0);
}

TEST(Cancellation, StoppedReduceIsDiscardable) {
  ThreadPool& pool = ThreadPool::shared();
  std::atomic<bool> stop{true};
  // With the flag pre-tripped, the serial path returns init untouched.
  const std::uint64_t r = pool.parallel_reduce(
      std::uint64_t{0}, std::uint64_t{1000}, 16, 1, &stop, std::uint64_t{0},
      [](std::uint64_t lo, std::uint64_t hi) { return hi - lo; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(r, 0u);
}

// --- exception paths -------------------------------------------------------

TEST(PoolExceptions, ExactlyOneExceptionFromAThrowingRegion) {
  ThreadPool& pool = ThreadPool::shared();
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> caught{0};
    try {
      pool.parallel_for(std::uint64_t{0}, std::uint64_t{10'000}, 8, 4,
                        [&](std::uint64_t i, int) {
                          if (i == 4'321) throw std::runtime_error("boom");
                        });
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
      caught.fetch_add(1);
    }
    EXPECT_EQ(caught.load(), 1);
  }
}

// Two concurrent regions from different threads, one of which throws
// while the other is mid-flight: the healthy region completes every
// index, the throwing region surfaces exactly one exception, and nothing
// deadlocks.
TEST(PoolExceptions, ThrowInOneRegionWhileAnotherIsMidFlight) {
  ThreadPool& pool = ThreadPool::shared();
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::uint64_t> healthy_ran{0};
    std::atomic<int> caught{0};
    std::thread healthy([&] {
      pool.parallel_for(std::uint64_t{0}, std::uint64_t{200'000}, 64, 3,
                        [&](std::uint64_t, int) {
                          healthy_ran.fetch_add(1,
                                                std::memory_order_relaxed);
                        });
    });
    std::thread thrower([&] {
      try {
        pool.parallel_for(std::uint64_t{0}, std::uint64_t{200'000}, 64, 3,
                          [&](std::uint64_t i, int) {
                            if (i == 10'000)
                              throw std::runtime_error("mid-flight");
                          });
      } catch (const std::runtime_error&) {
        caught.fetch_add(1);
      }
    });
    healthy.join();
    thrower.join();
    EXPECT_EQ(healthy_ran.load(), 200'000u);
    EXPECT_EQ(caught.load(), 1);
  }
}

// A region issued from inside a pool worker must serialize (nested
// fan-out is forbidden by design), including its exception path.
TEST(PoolExceptions, NestedRegionsSerializeAndPropagate) {
  ThreadPool& pool = ThreadPool::shared();
  std::atomic<std::uint64_t> inner_total{0};
  pool.parallel_for(std::uint64_t{0}, std::uint64_t{64}, 1, 4,
                    [&](std::uint64_t, int) {
                      pool.parallel_for(std::uint64_t{0}, std::uint64_t{100},
                                        8, 4, [&](std::uint64_t, int) {
                                          inner_total.fetch_add(
                                              1, std::memory_order_relaxed);
                                        });
                    });
  EXPECT_EQ(inner_total.load(), 64u * 100u);

  std::atomic<int> caught{0};
  try {
    pool.parallel_for(std::uint64_t{0}, std::uint64_t{64}, 1, 4,
                      [&](std::uint64_t outer, int) {
                        pool.parallel_for(
                            std::uint64_t{0}, std::uint64_t{100}, 8, 4,
                            [&](std::uint64_t inner, int) {
                              if (outer == 7 && inner == 50)
                                throw std::runtime_error("nested");
                            });
                      });
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "nested");
    caught.fetch_add(1);
  }
  EXPECT_EQ(caught.load(), 1);
}

// --- task-graph drain ------------------------------------------------------

// Cancellation of a dependency DAG is a drain, not a loop exit: the stop
// flag is polled before every chunk, in-flight chunks complete, and
// unstarted nodes are abandoned.  Repeated rounds make the mid-flight
// interleavings show up under the tsan preset.
TEST(Cancellation, MidDagTripDrainsTheGraphWithoutDeadlock) {
  int drained_early = 0;
  for (int round = 0; round < 30; ++round) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ran{0};
    TaskGraph g;
    TaskGraph::TaskId prev = 0;
    for (int layer = 0; layer < 4; ++layer) {
      const TaskGraph::TaskId id = g.add_range(
          std::uint64_t{0}, std::uint64_t{5'000}, 32,
          [&](std::uint64_t i, int) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 1'000) stop.store(true);
          });
      if (layer > 0) g.add_edge(prev, id);
      prev = id;
    }
    g.run(4, &stop);
    EXPECT_GT(ran.load(), 0u);
    EXPECT_LE(ran.load(), 20'000u);
    if (ran.load() < 20'000u) ++drained_early;
  }
  EXPECT_GT(drained_early, 0);
}

// A stop and a task exception racing inside one DAG: either outcome
// (drain or throw) is legal; returning is the assertion.
TEST(Cancellation, DagThrowAndCancelRacingDoNotDeadlock) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<bool> stop{false};
    bool threw = false;
    TaskGraph g;
    const TaskGraph::TaskId a = g.add_range(
        std::uint64_t{0}, std::uint64_t{10'000}, 16,
        [&](std::uint64_t i, int) {
          // Different chunks (grain 16), so the stop poll before the
          // throwing chunk races the other worker claiming it.
          if (i == 500) stop.store(true);
          if (i == 520) throw std::runtime_error("race");
        });
    const TaskGraph::TaskId b =
        g.add([](int) {});  // dependent, abandoned either way
    g.add_edge(a, b);
    try {
      g.run(4, &stop);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    (void)threw;
  }
}

// Exception in one chunk and a stop flag tripped by another: whichever
// wins, the call returns (drain or throw) without hanging.
TEST(PoolExceptions, ThrowAndCancelRacingDoNotDeadlock) {
  ThreadPool& pool = ThreadPool::shared();
  for (int round = 0; round < 20; ++round) {
    std::atomic<bool> stop{false};
    bool threw = false;
    try {
      pool.parallel_for(std::uint64_t{0}, std::uint64_t{50'000}, 16, 4,
                        &stop, [&](std::uint64_t i, int) {
                          if (i == 1'000) stop.store(true);
                          if (i == 1'001) throw std::runtime_error("race");
                        });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    // Either outcome is legal; reaching this line is the assertion.
    (void)threw;
  }
}

}  // namespace
}  // namespace ovo::par
