// The central correctness suite for the paper's algorithm FS:
//   * compaction canonicity against the quasi-reduced subfunction counter;
//   * Lemma 3 (level width depends only on the prefix *set*);
//   * Lemma 4 (the DP recurrence);
//   * FS minimum == brute-force minimum over all n! orders, for BDD, ZDD
//     and MTBDD kinds;
//   * the returned order achieves the minimum when the diagram is rebuilt
//     with the corresponding manager;
//   * Fig. 1's exact sizes (2m+2 vs 2^{m+1}).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "bdd/manager.hpp"
#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "mtbdd/manager.hpp"
#include "reorder/baselines.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"
#include "zdd/manager.hpp"

namespace ovo::core {
namespace {

// --- compaction primitive ---------------------------------------------------

TEST(PrefixTable, InitialTableIsTruthTable) {
  const tt::TruthTable t = tt::parity(3);
  const PrefixTable p = initial_table(t);
  EXPECT_EQ(p.n, 3);
  EXPECT_EQ(p.vars, 0u);
  EXPECT_EQ(p.mincost(), 0u);
  ASSERT_EQ(p.cells.size(), 8u);
  for (std::uint64_t a = 0; a < 8; ++a)
    EXPECT_EQ(p.cells[a], t.get(a) ? 1u : 0u);
}

TEST(PrefixTable, CompactParityStep) {
  // Compacting parity w.r.t. any variable creates exactly 2 nodes
  // (parity and its complement as subfunctions of the remaining vars).
  const PrefixTable p = initial_table(tt::parity(4));
  for (int v = 0; v < 4; ++v) {
    OpCounter ops;
    const PrefixTable q = compact(p, v, DiagramKind::kBdd, &ops);
    // Both x_v and !x_v occur as bottom subfunctions: cell pairs (0,1) and
    // (1,0) each create one node.
    EXPECT_EQ(q.mincost(), 2u);
    EXPECT_EQ(ops.table_cells, 16u);
    EXPECT_EQ(ops.compactions, 1u);
  }
}

TEST(PrefixTable, CompactCountsMatchSubfunctionCounter) {
  // After compacting a set I (any chain), mincost equals the number of
  // distinct subfunctions over I that depend on their top variable —
  // equivalently sum over the chain of created widths. Cross-check the
  // *table cells* against count_distinct_subfunctions: the number of
  // distinct cell values equals the number of distinct subfunctions
  // (including constants reachable).
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const tt::TruthTable t = tt::random_function(6, rng);
    PrefixTable p = initial_table(t);
    util::Mask I = 0;
    for (const int v : {1, 4, 2}) {
      p = compact(p, v, DiagramKind::kBdd, nullptr);
      I |= util::Mask{1} << v;
      std::set<std::uint32_t> distinct(p.cells.begin(), p.cells.end());
      EXPECT_EQ(distinct.size(), t.count_distinct_subfunctions(I))
          << "prefix mask " << I;
    }
  }
}

TEST(PrefixTable, CompactRejectsRepeatedVariable) {
  PrefixTable p = initial_table(tt::parity(3));
  p = compact(p, 1, DiagramKind::kBdd, nullptr);
  EXPECT_THROW(compact(p, 1, DiagramKind::kBdd, nullptr), util::CheckError);
}

TEST(PrefixTable, CompactionWidthAgreesWithCompact) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const tt::TruthTable t = tt::random_function(5, rng);
    const PrefixTable p = initial_table(t);
    for (int v = 0; v < 5; ++v) {
      const PrefixTable q = compact(p, v, DiagramKind::kBdd, nullptr);
      EXPECT_EQ(compaction_width(p, v, DiagramKind::kBdd, nullptr),
                q.mincost() - p.mincost());
    }
  }
}

TEST(PrefixTable, MtbddInitialTableInternsValues) {
  std::vector<std::int64_t> vals{5, 5, -1, 7, 5, -1, 7, 7};
  std::vector<std::int64_t> terms;
  const PrefixTable p = initial_table_values(vals, 3, &terms);
  EXPECT_EQ(p.num_terminals, 3u);
  EXPECT_EQ(terms, (std::vector<std::int64_t>{5, -1, 7}));
  EXPECT_EQ(p.cells[0], 0u);
  EXPECT_EQ(p.cells[2], 1u);
  EXPECT_EQ(p.cells[3], 2u);
}

// --- Lemma 3: width depends only on the prefix set --------------------------

class Lemma3Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma3Property, WidthInvariantUnderPrefixReordering) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
  const int n = 6;
  const tt::TruthTable t = tt::random_function(n, rng);
  // Pick a prefix set I of size 3 and a distinguished i in I.
  const util::Mask I = 0b101100;  // vars {2,3,5}
  const int i = 3;
  // All chains that insert I\{i} in some order, then i: the width added by
  // i must be identical (Lemma 3).
  const std::vector<int> others{2, 5};
  std::vector<std::uint64_t> widths;
  std::vector<std::vector<int>> arrangements{{2, 5}, {5, 2}};
  for (const auto& arr : arrangements) {
    PrefixTable p = initial_table(t);
    for (const int v : arr) p = compact(p, v, DiagramKind::kBdd, nullptr);
    const PrefixTable q = compact(p, i, DiagramKind::kBdd, nullptr);
    widths.push_back(q.mincost() - p.mincost());
  }
  EXPECT_EQ(widths[0], widths[1]);
  (void)I;
  (void)others;
}

TEST_P(Lemma3Property, WidthInvariantExhaustive) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 101 + 11);
  const int n = 5;
  const tt::TruthTable t = tt::random_function(n, rng);
  // For every prefix set I of size 3 and every i in I: the width of i on
  // top of I\{i} is the same for all orderings of I\{i}.
  util::for_each_subset_of_size(n, 3, [&](util::Mask I) {
    util::for_each_bit(I, [&](int i) {
      const std::vector<int> rest = util::bits_of(I & ~(util::Mask{1} << i));
      std::vector<int> arr = rest;
      std::uint64_t first_width = 0;
      bool first = true;
      do {
        PrefixTable p = initial_table(t);
        for (const int v : arr) p = compact(p, v, DiagramKind::kBdd, nullptr);
        const std::uint64_t w =
            compaction_width(p, i, DiagramKind::kBdd, nullptr);
        if (first) {
          first_width = w;
          first = false;
        } else {
          ASSERT_EQ(w, first_width) << "I=" << I << " i=" << i;
        }
      } while (std::next_permutation(arr.begin(), arr.end()));
    });
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma3Property, ::testing::Range(0, 5));

// --- Lemma 4: the DP recurrence ---------------------------------------------

TEST(Lemma4, RecurrenceHoldsOnDpTable) {
  util::Xoshiro256 rng(19);
  const int n = 5;
  const tt::TruthTable t = tt::random_function(n, rng);
  const FsStarResult r =
      fs_star(initial_table(t), util::full_mask(n), n, DiagramKind::kBdd);
  // MINCOST_I = min_{k in I} (MINCOST_{I\k} + Cost_k(pi_{(I\k, k)})).
  for (const auto& [I, cost] : r.mincost) {
    if (I == 0) continue;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    util::for_each_bit(I, [&](int k) {
      // Rebuild the width of k over I\k from scratch.
      PrefixTable p = initial_table(t);
      util::for_each_bit(I & ~(util::Mask{1} << k), [&](int v) {
        p = compact(p, v, DiagramKind::kBdd, nullptr);
      });
      const std::uint64_t w =
          compaction_width(p, k, DiagramKind::kBdd, nullptr);
      best = std::min(best, r.mincost.at(I & ~(util::Mask{1} << k)) + w);
    });
    EXPECT_EQ(cost, best) << "I=" << I;
  }
}

// --- FS vs brute force -------------------------------------------------------

struct FsCase {
  const char* name;
  tt::TruthTable table;
};

std::vector<FsCase> fs_cases() {
  util::Xoshiro256 rng(4242);
  std::vector<FsCase> cases;
  cases.push_back({"pair_sum2", tt::pair_sum(2)});
  cases.push_back({"pair_sum3", tt::pair_sum(3)});
  cases.push_back({"parity5", tt::parity(5)});
  cases.push_back({"majority5", tt::majority(5)});
  cases.push_back({"hwb5", tt::hidden_weighted_bit(5)});
  cases.push_back({"hwb6", tt::hidden_weighted_bit(6)});
  cases.push_back({"mult6", tt::multiplier_middle_bit(6)});
  cases.push_back({"adder6", tt::adder_carry(6)});
  cases.push_back({"isa6", tt::indirect_storage_access(6)});
  cases.push_back({"threshold6", tt::threshold(6, 2)});
  for (int i = 0; i < 6; ++i)
    cases.push_back({"random6", tt::random_function(6, rng)});
  for (int i = 0; i < 4; ++i)
    cases.push_back({"random5", tt::random_function(5, rng)});
  for (int i = 0; i < 3; ++i)
    cases.push_back({"sparse6", tt::random_sparse_function(6, 5, rng)});
  for (int i = 0; i < 3; ++i)
    cases.push_back({"readonce6", tt::random_read_once(6, rng)});
  cases.push_back({"const0", tt::TruthTable(4)});
  cases.push_back({"const1", ~tt::TruthTable(4)});
  return cases;
}

class FsVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(FsVsBruteForce, BddMinimumMatches) {
  const FsCase c = fs_cases()[static_cast<std::size_t>(GetParam())];
  const MinimizeResult fs = fs_minimize(c.table, DiagramKind::kBdd);
  const reorder::OrderSearchResult bf =
      reorder::brute_force_minimize(c.table, DiagramKind::kBdd);
  EXPECT_EQ(fs.min_internal_nodes, bf.internal_nodes) << c.name;
  // The FS order must achieve the claimed size.
  EXPECT_EQ(diagram_size_for_order(c.table, fs.order_root_first,
                                   DiagramKind::kBdd),
            fs.min_internal_nodes);
  // And a real BDD manager rebuild agrees.
  bdd::Manager m(c.table.num_vars(), fs.order_root_first);
  EXPECT_EQ(m.size(m.from_truth_table(c.table)), fs.min_internal_nodes);
}

TEST_P(FsVsBruteForce, ZddMinimumMatches) {
  const FsCase c = fs_cases()[static_cast<std::size_t>(GetParam())];
  const MinimizeResult fs = fs_minimize(c.table, DiagramKind::kZdd);
  const reorder::OrderSearchResult bf =
      reorder::brute_force_minimize(c.table, DiagramKind::kZdd);
  EXPECT_EQ(fs.min_internal_nodes, bf.internal_nodes) << c.name;
  zdd::Manager m(c.table.num_vars(), fs.order_root_first);
  EXPECT_EQ(m.size(m.from_truth_table(c.table)), fs.min_internal_nodes);
}

INSTANTIATE_TEST_SUITE_P(Cases, FsVsBruteForce,
                         ::testing::Range(0, 28));

TEST(FsMtbdd, MinimumMatchesBruteForce) {
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 5;
    std::vector<std::int64_t> values(32);
    for (auto& v : values) v = static_cast<std::int64_t>(rng.below(3));
    const MinimizeResult fs = fs_minimize_mtbdd(values, n);
    // Brute force with the MTBDD size oracle.
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    std::vector<int> order{0, 1, 2, 3, 4};
    do {
      best = std::min(best,
                      diagram_size_for_order_values(values, n, order));
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_EQ(fs.min_internal_nodes, best);
    // Rebuild with the MTBDD manager under the FS order.
    mtbdd::Manager m(n, fs.order_root_first);
    EXPECT_EQ(m.size(m.from_value_table(values)), fs.min_internal_nodes);
  }
}

// --- Fig. 1 ------------------------------------------------------------------

TEST(Fig1, PairSumSizesMatchPaper) {
  for (int m = 2; m <= 4; ++m) {
    const tt::TruthTable f = tt::pair_sum(m);
    // Natural order: 2m internal nodes (2m + 2 with terminals).
    EXPECT_EQ(diagram_size_for_order(f, tt::pair_sum_natural_order(m)),
              static_cast<std::uint64_t>(2 * m));
    // Interleaved order: 2^{m+1} - 2 internal nodes (2^{m+1} with
    // terminals... the paper counts 2^{m+1} total including terminals).
    EXPECT_EQ(diagram_size_for_order(f, tt::pair_sum_interleaved_order(m)),
              (std::uint64_t{1} << (m + 1)) - 2);
    // And the optimum equals the natural order's size.
    EXPECT_EQ(fs_minimize(f).min_internal_nodes,
              static_cast<std::uint64_t>(2 * m));
  }
}

TEST(Fig1, Fig1ExactCase) {
  // The figure's concrete instance: m = 3 (six variables), sizes 8 and 16
  // including the two terminals.
  const tt::TruthTable f = tt::pair_sum(3);
  EXPECT_EQ(diagram_size_for_order(f, tt::pair_sum_natural_order(3)) + 2, 8u);
  EXPECT_EQ(
      diagram_size_for_order(f, tt::pair_sum_interleaved_order(3)) + 2, 16u);
}

// --- misc --------------------------------------------------------------------

TEST(FsMisc, ParityIsOrderInsensitive) {
  const tt::TruthTable p = tt::parity(6);
  const MinimizeResult fs = fs_minimize(p);
  EXPECT_EQ(fs.min_internal_nodes, 11u);  // 2n - 1
  // Every order achieves it.
  for (const auto& order : util::all_permutations(6))
    ASSERT_EQ(diagram_size_for_order(p, order), 11u);
}

TEST(FsMisc, OpsCountIsPositiveAndBounded) {
  const tt::TruthTable t = tt::majority(6);
  const MinimizeResult fs = fs_minimize(t);
  EXPECT_GT(fs.ops.table_cells, 0u);
  // Theorem 5: up to a polynomial factor the work is 3^n; the raw cell
  // count is at most n * 3^n for sure.
  EXPECT_LE(fs.ops.table_cells,
            6.0 * std::pow(3.0, 6) * 2.0 + 4096.0);
}

TEST(FsMisc, OrderIsAlwaysAPermutation) {
  util::Xoshiro256 rng(6);
  for (int n = 1; n <= 7; ++n) {
    const MinimizeResult fs = fs_minimize(tt::random_function(n, rng));
    EXPECT_EQ(static_cast<int>(fs.order_root_first.size()), n);
    EXPECT_TRUE(util::is_permutation(fs.order_root_first));
  }
}

// Relabeling inputs permutes the optimal order but cannot change the
// minimum size — a strong end-to-end consistency property of the DP.
TEST(FsMisc, InputPermutationInvariance) {
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 6;
    const tt::TruthTable t = tt::random_function(n, rng);
    std::vector<int> sigma(static_cast<std::size_t>(n));
    std::iota(sigma.begin(), sigma.end(), 0);
    for (int i = n - 1; i > 0; --i)
      std::swap(sigma[static_cast<std::size_t>(i)],
                sigma[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    const tt::TruthTable permuted = t.permute_inputs(sigma);
    EXPECT_EQ(fs_minimize(t).min_internal_nodes,
              fs_minimize(permuted).min_internal_nodes);
    EXPECT_EQ(fs_minimize(t, DiagramKind::kZdd).min_internal_nodes,
              fs_minimize(permuted, DiagramKind::kZdd).min_internal_nodes);
  }
}

TEST(FsMisc, ZddOfSparseBeatsItsBdd) {
  util::Xoshiro256 rng(8);
  const tt::TruthTable t = tt::random_sparse_function(8, 4, rng);
  const MinimizeResult z = fs_minimize(t, DiagramKind::kZdd);
  const MinimizeResult b = fs_minimize(t, DiagramKind::kBdd);
  EXPECT_LE(z.min_internal_nodes, b.min_internal_nodes);
}

}  // namespace
}  // namespace ovo::core
