// Tests for the numerical parameter optimization — the reproduction of the
// paper's Tables 1 and 2 and its named constants (gamma_0 = 2.98581,
// gamma_1 = 2.97625, gamma_2 = 2.85690, gamma_6 = 2.83728, and the tower's
// 2.77286 fixpoint).

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/params.hpp"
#include "util/check.hpp"

namespace ovo::quantum {
namespace {

constexpr double kTol = 2e-4;        // paper prints 6 digits; we allow ~1e-4
constexpr double kAlphaTol = 5e-4;

TEST(BalanceFunctions, MatchDefinitions) {
  const double c = std::log2(3.0);
  EXPECT_DOUBLE_EQ(balance_g(0.2, 0.5, c), 0.5 + 0.3 * c);
  // f(x,y) = y/2 * H(x/y) + g(x,y); H(0.4) = 0.970950...
  EXPECT_NEAR(balance_f(0.2, 0.5, c), 0.25 * 0.9709505944546686 +
                                          balance_g(0.2, 0.5, c),
              1e-12);
}

TEST(Gamma0, MatchesPaperSection31) {
  EXPECT_NEAR(gamma_no_preprocess(), 2.98581, kTol);
}

// Table 1 of the paper: gamma_k and alpha vectors for k = 1..6.
struct Table1Row {
  int k;
  double gamma;
  std::vector<double> alphas;
};

const Table1Row kTable1[] = {
    {1, 2.97625, {0.274862}},
    {2, 2.85690, {0.192754, 0.334571}},
    {3, 2.83925, {0.184664, 0.205128, 0.342677}},
    {4, 2.83744, {0.183859, 0.186017, 0.206375, 0.343503}},
    {5, 2.83729, {0.183795, 0.183967, 0.186125, 0.206474, 0.343569}},
    {6,
     2.83728,
     {0.183791, 0.183802, 0.183974, 0.186131, 0.206480, 0.343573}},
};

class Table1 : public ::testing::TestWithParam<int> {};

TEST_P(Table1, RowMatchesPaper) {
  const Table1Row& row = kTable1[static_cast<std::size_t>(GetParam())];
  const ChainSolution s = solve_alphas(row.k, 3.0);
  EXPECT_NEAR(s.gamma, row.gamma, kTol) << "k=" << row.k;
  ASSERT_EQ(s.alphas.size(), row.alphas.size());
  for (std::size_t i = 0; i < row.alphas.size(); ++i)
    EXPECT_NEAR(s.alphas[i], row.alphas[i], kAlphaTol)
        << "k=" << row.k << " alpha_" << (i + 1);
}

INSTANTIATE_TEST_SUITE_P(Rows, Table1, ::testing::Range(0, 6));

TEST(Table1Property, GammaDecreasesInK) {
  double prev = 10.0;
  for (int k = 1; k <= 6; ++k) {
    const double g = solve_alphas(k, 3.0).gamma;
    EXPECT_LT(g, prev + 1e-9) << "k=" << k;
    prev = g;
  }
}

TEST(Table1Property, AlphasAreIncreasingAndBelowOneThird) {
  for (int k = 1; k <= 6; ++k) {
    const ChainSolution s = solve_alphas(k, 3.0);
    EXPECT_LT(s.alphas.front(), 1.0 / 3.0);
    for (std::size_t i = 1; i < s.alphas.size(); ++i)
      EXPECT_GE(s.alphas[i], s.alphas[i - 1] - 1e-9);
    EXPECT_LT(s.alphas.back(), 1.0);
  }
}

// Table 2: the composition tower's beta_6 column.
TEST(Table2, TowerSequenceMatchesPaper) {
  const double expected[] = {2.83728, 2.79364, 2.77981, 2.77521, 2.77366,
                             2.77313, 2.77295, 2.77289, 2.77287, 2.77286};
  const auto rows = composition_tower(6, 10);
  ASSERT_EQ(rows.size(), 10u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_NEAR(rows[i].gamma, expected[i], kTol) << "iteration " << i;
}

TEST(Table2, FirstIterationAlphasMatchTable1K6) {
  const auto rows = composition_tower(6, 1);
  const ChainSolution direct = solve_alphas(6, 3.0);
  ASSERT_EQ(rows[0].alphas.size(), direct.alphas.size());
  for (std::size_t i = 0; i < direct.alphas.size(); ++i)
    EXPECT_NEAR(rows[0].alphas[i], direct.alphas[i], 1e-9);
}

TEST(Table2, SecondRowAlphasMatchPaper) {
  // Paper Table 2, gamma = 2.83728 row.
  const double expected[] = {0.165753, 0.165759, 0.165857,
                             0.167339, 0.183883, 0.312741};
  const auto rows = composition_tower(6, 2);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(rows[1].alphas[i], expected[i], kAlphaTol);
}

TEST(Table2, ConvergesToFixpoint) {
  const auto rows = composition_tower(6, 14);
  const double last = rows.back().gamma;
  const double prev = rows[rows.size() - 2].gamma;
  EXPECT_NEAR(last, prev, 5e-5);
  EXPECT_LT(last, 2.77287);
  EXPECT_GT(last, 2.77);
}

TEST(Headline, Theorem13Constant) {
  // The headline claim: some gamma <= 2.77286 is reached by the tenth
  // composition.
  const auto rows = composition_tower(6, 10);
  EXPECT_LE(rows.back().gamma, 2.77286 + kTol);
}

TEST(Solver, RejectsBadArguments) {
  EXPECT_THROW(solve_alphas(0, 3.0), util::CheckError);
  EXPECT_THROW(solve_alphas(3, 1.5), util::CheckError);
  EXPECT_THROW(composition_tower(6, 0), util::CheckError);
}

TEST(Solver, WorksForOtherSubroutineBases) {
  // Using a weaker subroutine (larger gamma_sub) must give a weaker bound.
  const double strong = solve_alphas(3, 2.9).gamma;
  const double weak = solve_alphas(3, 3.2).gamma;
  EXPECT_LT(strong, weak);
}

}  // namespace
}  // namespace ovo::quantum
