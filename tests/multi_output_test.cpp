// Tests for shared (multi-rooted) OBDD minimization — the multi-output
// extension of the FS dynamic program.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "core/multi_output.hpp"
#include "quantum/min_find.hpp"
#include "quantum/opt_obdd.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::core {
namespace {

// Independent shared-size oracle: build all roots in one bdd::Manager and
// count the union of reachable non-terminal nodes.
std::uint64_t manager_shared_size(const std::vector<tt::TruthTable>& outs,
                                  const std::vector<int>& order) {
  bdd::Manager m(outs.front().num_vars(), order);
  std::set<bdd::NodeId> reachable;
  for (const tt::TruthTable& t : outs) {
    std::vector<bdd::NodeId> stack{m.from_truth_table(t)};
    while (!stack.empty()) {
      const bdd::NodeId u = stack.back();
      stack.pop_back();
      if (m.is_terminal(u) || !reachable.insert(u).second) continue;
      stack.push_back(m.node(u).lo);
      stack.push_back(m.node(u).hi);
    }
  }
  return reachable.size();
}

TEST(SharedOracle, MatchesManagerUnionCount) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 5;
    std::vector<tt::TruthTable> outs;
    for (int i = 0; i < 3; ++i) outs.push_back(tt::random_function(n, rng));
    for (const auto& order : {std::vector<int>{0, 1, 2, 3, 4},
                              std::vector<int>{4, 2, 0, 3, 1}}) {
      EXPECT_EQ(shared_size_for_order(outs, order),
                manager_shared_size(outs, order));
    }
  }
}

TEST(SharedMinimize, SingleOutputReducesToFs) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const tt::TruthTable t = tt::random_function(6, rng);
    const auto shared = fs_minimize_shared({t});
    const auto single = fs_minimize(t);
    EXPECT_EQ(shared.min_internal_nodes, single.min_internal_nodes);
  }
}

TEST(SharedMinimize, MatchesBruteForce) {
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 5;
    std::vector<tt::TruthTable> outs;
    for (int i = 0; i < 3; ++i) outs.push_back(tt::random_function(n, rng));
    const auto shared = fs_minimize_shared(outs);
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    do {
      best = std::min(best, shared_size_for_order(outs, order));
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_EQ(shared.min_internal_nodes, best);
    EXPECT_EQ(shared_size_for_order(outs, shared.order_root_first), best);
  }
}

TEST(SharedMinimize, AdderAllCarryBits) {
  // All carry bits of a 3-bit adder share structure; the shared optimum
  // must be at most the sum of individual optima.
  const int bits = 3;
  const int n = 2 * bits;
  std::vector<tt::TruthTable> outs;
  for (int b = 1; b <= bits; ++b) {
    outs.push_back(tt::TruthTable::tabulate(n, [=](std::uint64_t a) {
      std::uint64_t u = 0, v = 0;
      for (int i = 0; i < bits; ++i) {
        u |= ((a >> (2 * i)) & 1u) << i;
        v |= ((a >> (2 * i + 1)) & 1u) << i;
      }
      return ((u + v) >> b) & 1u;
    }));
  }
  const auto shared = fs_minimize_shared(outs);
  std::uint64_t sum_individual = 0;
  for (const auto& t : outs)
    sum_individual += fs_minimize(t).min_internal_nodes;
  EXPECT_LE(shared.min_internal_nodes, sum_individual);
  EXPECT_GT(shared.min_internal_nodes, 0u);
}

TEST(SharedMinimize, ZddKind) {
  util::Xoshiro256 rng(9);
  const int n = 5;
  std::vector<tt::TruthTable> outs;
  for (int i = 0; i < 2; ++i)
    outs.push_back(tt::random_sparse_function(n, 4, rng));
  const auto shared = fs_minimize_shared(outs, DiagramKind::kZdd);
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  do {
    best = std::min(best,
                    shared_size_for_order(outs, order, DiagramKind::kZdd));
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(shared.min_internal_nodes, best);
}

TEST(SharedMinimize, QuantumEngineAgrees) {
  util::Xoshiro256 rng(13);
  for (int trial = 0; trial < 3; ++trial) {
    const int n = 5;
    std::vector<tt::TruthTable> outs;
    for (int i = 0; i < 3; ++i) outs.push_back(tt::random_function(n, rng));
    const auto exact = fs_minimize_shared(outs);
    quantum::AccountingMinimumFinder finder(static_cast<double>(n));
    quantum::OptObddOptions opt;
    opt.alphas = {0.3};
    opt.finder = &finder;
    const auto q = quantum::opt_obdd_minimize_shared(outs, opt);
    EXPECT_EQ(q.min_internal_nodes, exact.min_internal_nodes);
    EXPECT_EQ(shared_size_for_order(outs, q.order_root_first),
              exact.min_internal_nodes);
    EXPECT_GT(q.quantum.quantum_queries, 0.0);
  }
}

TEST(SharedMinimize, ValidatesInputs) {
  EXPECT_THROW(fs_minimize_shared({}), util::CheckError);
  EXPECT_THROW(fs_minimize_shared({tt::parity(3), tt::parity(4)}),
               util::CheckError);
}

TEST(SharedMinimize, NonPowerOfTwoOutputCount) {
  util::Xoshiro256 rng(11);
  const int n = 4;
  std::vector<tt::TruthTable> outs;
  for (int i = 0; i < 3; ++i) outs.push_back(tt::random_function(n, rng));
  const auto shared = fs_minimize_shared(outs);
  EXPECT_EQ(shared_size_for_order(outs, shared.order_root_first),
            shared.min_internal_nodes);
  EXPECT_EQ(shared.min_internal_nodes,
            manager_shared_size(outs, shared.order_root_first));
}

}  // namespace
}  // namespace ovo::core
