// ovo::obs unit tests: the counter/ledger registry's merge algebra (the
// property every legacy stats struct's operator+= now inherits), shard-
// order invariance, bit-identical run ledgers across thread counts, the
// shared JSON serializer's pinned keys, and the trace-span exporter's
// Chrome trace-event output.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/fs_star.hpp"
#include "core/prefix_table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/exec_policy.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"

namespace ovo::obs {
namespace {

// ---------------------------------------------------------------------------
// Ledger merge algebra

/// A deterministic ledger touching every aggregation policy: sums, peaks,
/// and float sums (integer-valued, so double addition is exact and the
/// associativity checks compare bits, not epsilons).
Ledger sample_ledger(std::uint64_t seed) {
  Ledger l;
  l.record(Metric::kFsTableCells, 100 * seed + 7);
  l.record(Metric::kDsUniqueLookups, 13 * seed);
  l.record(Metric::kFsPeakCells, 50 * ((seed * 7919) % 11));  // kMax
  l.record(Metric::kRtPeakNodes, seed % 3 == 0 ? 900 : 12);   // kMax
  l.record(Metric::kSchedBarrierWaitNs, seed * seed);
  l.set_f64(Metric::kQuantumQueries, static_cast<double>(64 * seed));
  l.set_f64(Metric::kOracleMinFindQueries, static_cast<double>(seed % 5));
  return l;
}

TEST(ObsLedger, RecordFollowsDeclaredPolicy) {
  Ledger l;
  ASSERT_EQ(agg(Metric::kFsTableCells), Agg::kSum);
  l.record(Metric::kFsTableCells, 3);
  l.record(Metric::kFsTableCells, 4);
  EXPECT_EQ(l.get(Metric::kFsTableCells), 7u);

  ASSERT_EQ(agg(Metric::kFsPeakCells), Agg::kMax);
  l.record(Metric::kFsPeakCells, 9);
  l.record(Metric::kFsPeakCells, 5);
  EXPECT_EQ(l.get(Metric::kFsPeakCells), 9u);

  ASSERT_EQ(agg(Metric::kQuantumQueries), Agg::kSumF64);
  l.record(Metric::kQuantumQueries, 2);
  l.add_f64(Metric::kQuantumQueries, 0.5);
  EXPECT_DOUBLE_EQ(l.get_f64(Metric::kQuantumQueries), 2.5);
}

TEST(ObsLedger, ZeroLedgerIsMergeIdentity) {
  const Ledger a = sample_ledger(3);
  Ledger left = a;
  left.merge(Ledger{});
  EXPECT_EQ(left, a);
  Ledger right;
  right.merge(a);
  EXPECT_EQ(right, a);
}

TEST(ObsLedger, MergeIsCommutative) {
  const Ledger a = sample_ledger(2), b = sample_ledger(9);
  Ledger ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(ObsLedger, MergeIsAssociative) {
  const Ledger a = sample_ledger(1), b = sample_ledger(4),
               c = sample_ledger(8);
  Ledger left = a;
  {
    Ledger bc = b;
    bc.merge(c);
    left.merge(bc);
  }
  Ledger right = a;
  right.merge(b);
  right.merge(c);
  EXPECT_EQ(left, right);
}

TEST(ObsLedger, ShardedFoldMatchesAnyShardOrder) {
  constexpr int kShards = 8;
  ShardedLedger sharded(kShards);
  for (int s = 0; s < kShards; ++s)
    sharded.shard(s) = sample_ledger(static_cast<std::uint64_t>(s + 1));
  const Ledger ascending = sharded.merged();

  // Fold in descending and in an interleaved order: same bits.
  Ledger descending, interleaved;
  for (int s = kShards - 1; s >= 0; --s) descending.merge(sharded.shard(s));
  for (int s = 0; s < kShards; s += 2) interleaved.merge(sharded.shard(s));
  for (int s = 1; s < kShards; s += 2) interleaved.merge(sharded.shard(s));
  EXPECT_EQ(ascending, descending);
  EXPECT_EQ(ascending, interleaved);
}

TEST(ObsLedger, LegacyViewRoundTripsThroughLedger) {
  // OpCounter's operator+= is defined as a ledger round trip; spot-check
  // the view projection both ways, prune and dedup included.
  core::OpCounter a;
  a.table_cells = 10;
  a.compactions = 2;
  a.peak_cells = 40;
  a.dedup.lookups = 5;
  a.prune.states_pruned = 3;
  a.prune.upper_bound = 17;
  core::OpCounter b;
  b.table_cells = 1;
  b.peak_cells = 90;
  b.prune.upper_bound = 11;
  a += b;
  EXPECT_EQ(a.table_cells, 11u);
  EXPECT_EQ(a.compactions, 2u);
  EXPECT_EQ(a.peak_cells, 90u);  // kMax
  EXPECT_EQ(a.dedup.lookups, 5u);
  EXPECT_EQ(a.prune.states_pruned, 3u);
  EXPECT_EQ(a.prune.upper_bound, 17u);  // kMax
}

// ---------------------------------------------------------------------------
// Registry

TEST(ObsRegistry, RecordAndSnapshotFollowPolicies) {
  Registry reg;  // local instance; global() shares this implementation
  reg.record(Metric::kFsTableCells, 5);
  reg.record(Metric::kFsTableCells, 6);
  reg.record(Metric::kFsPeakCells, 8);
  reg.record(Metric::kFsPeakCells, 3);
  reg.record_f64(Metric::kQuantumQueries, 1.25);
  reg.record_f64(Metric::kQuantumQueries, 0.75);
  const Ledger snap = reg.snapshot();
  EXPECT_EQ(snap.get(Metric::kFsTableCells), 11u);
  EXPECT_EQ(snap.get(Metric::kFsPeakCells), 8u);
  EXPECT_DOUBLE_EQ(snap.get_f64(Metric::kQuantumQueries), 2.0);
}

TEST(ObsRegistry, MergeFoldsWholeLedger) {
  Registry reg;
  reg.merge(sample_ledger(2));
  reg.merge(sample_ledger(5));
  Ledger expect = sample_ledger(2);
  expect.merge(sample_ledger(5));
  EXPECT_EQ(reg.snapshot(), expect);
}

TEST(ObsRegistry, ConcurrentRecordsSumExactly) {
  Registry reg;
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.record(Metric::kDsUniqueLookups, 1);
        reg.record(Metric::kFsPeakCells, static_cast<std::uint64_t>(i));
        reg.record_f64(Metric::kQuantumQueries, 1.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const Ledger snap = reg.snapshot();
  EXPECT_EQ(snap.get(Metric::kDsUniqueLookups),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.get(Metric::kFsPeakCells),
            static_cast<std::uint64_t>(kPerThread - 1));
  EXPECT_DOUBLE_EQ(snap.get_f64(Metric::kQuantumQueries),
                   static_cast<double>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// Bit-identical run ledgers across thread counts

/// The acceptance pin: one fs_star run's merged counter ledger (DP cells,
/// dedup shards, prune ledger) must be the same bits at 1, 2, 4, and 8
/// threads — shard merges are policy-pure, so thread count cannot leak
/// into the totals.
TEST(ObsLedger, FsRunLedgerBitIdenticalAcrossThreadCounts) {
  util::Xoshiro256 rng(17);
  const tt::TruthTable t = tt::random_function(7, rng);
  const util::Mask all = util::full_mask(t.num_vars());

  Ledger baseline;
  bool have_baseline = false;
  for (int threads : {1, 2, 4, 8}) {
    par::ExecPolicy exec;
    exec.num_threads = threads;
    exec.prune = par::PruneMode::kBounds;
    core::OpCounter ops;
    const core::FsStarResult r =
        core::fs_star(core::initial_table(t), all, t.num_vars(),
                      core::DiagramKind::kBdd, &ops, exec);
    ASSERT_FALSE(r.mincost.empty());
    Ledger l;
    ops.to_ledger(l);
    ASSERT_GT(l.get(Metric::kFsTableCells), 0u);
    if (!have_baseline) {
      baseline = l;
      have_baseline = true;
    } else {
      EXPECT_EQ(l, baseline) << "ledger drift at " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Shared JSON serializer

TEST(ObsJson, KeysArePinnedInTheRegistry) {
  // The drift the refactor fixed: CLI said "oracle_table_cells" while the
  // benches said "table_cells".  The registry owns the name now.
  EXPECT_STREQ(json_key(Metric::kFsTableCells), "table_cells");
  EXPECT_STREQ(json_key(Metric::kOracleMemoHits), "oracle_memo_hits");
  EXPECT_STREQ(json_key(Metric::kRtWorkCharged), "work_units");
  EXPECT_STREQ(json_key(Metric::kSchedBarrierWaitNs),
               "sched_barrier_wait_ns");
  EXPECT_STREQ(metric_name(Metric::kFsPrunePruned), "fs.prune.pruned");
}

TEST(ObsJson, CounterBlockUsesRegistryKeys) {
  Ledger l;
  l.record(Metric::kOracleQueries, 3);
  l.record(Metric::kOracleEvals, 2);
  l.record(Metric::kOracleMemoHits, 1);
  l.record(Metric::kFsTableCells, 77);
  std::string s;
  append_counters_json(s, l);
  EXPECT_NE(s.find("\"oracle_queries\":3"), std::string::npos) << s;
  EXPECT_NE(s.find("\"table_cells\":77"), std::string::npos) << s;
  EXPECT_EQ(s.find("oracle_table_cells"), std::string::npos) << s;
  // Prune ledger untouched: no prune block.
  EXPECT_EQ(s.find("prune"), std::string::npos) << s;

  // Light up the prune ledger: block appears, ratio included.
  l.record(Metric::kFsPruneGenerated, 10);
  l.record(Metric::kFsPrunePruned, 4);
  std::string p;
  append_counters_json(p, l);
  EXPECT_NE(p.find("\"states_generated\":10"), std::string::npos) << p;
  EXPECT_NE(p.find("\"states_pruned\":4"), std::string::npos) << p;
  EXPECT_NE(p.find("\"prune_ratio\":"), std::string::npos) << p;
}

TEST(ObsJson, RunInfoBlockCarriesProvenance) {
  std::string s;
  append_run_info_json(s, 4);
  EXPECT_NE(s.find("\"schema_version\":1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"git\":\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"build\":\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"threads\":4"), std::string::npos) << s;
  EXPECT_NE(build_git_describe(), nullptr);
  EXPECT_NE(build_type(), nullptr);
}

// ---------------------------------------------------------------------------
// Trace spans + Chrome trace-event export

#if OVO_TRACE_ENABLED

/// Scans a {"traceEvents":[...]} document event by event, checking that
/// every event is a complete ("ph":"X") event and that ts values are
/// monotone non-decreasing within each tid in file order (the exporter
/// sorts by (tid, ts)).  Returns the number of events seen.
std::size_t check_trace_json(const std::string& json) {
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 80);
  EXPECT_EQ(json.find("]}"), json.size() - 3)  // trailing newline
      << json.substr(json.size() > 80 ? json.size() - 80 : 0);
  std::size_t events = 0;
  long long last_tid = -1;
  unsigned long long last_ts = 0;
  for (std::size_t pos = json.find("{\"name\":"); pos != std::string::npos;
       pos = json.find("{\"name\":", pos + 1)) {
    ++events;
    const std::size_t end = json.find('}', pos);
    EXPECT_NE(end, std::string::npos);
    const std::string ev = json.substr(pos, end - pos + 1);
    EXPECT_NE(ev.find("\"ph\":\"X\""), std::string::npos) << ev;
    EXPECT_NE(ev.find("\"pid\":"), std::string::npos) << ev;
    long long tid = -999;
    unsigned long long ts = 0;
    EXPECT_EQ(std::sscanf(ev.c_str() + ev.find("\"tid\":"), "\"tid\":%lld",
                          &tid),
              1)
        << ev;
    EXPECT_EQ(std::sscanf(ev.c_str() + ev.find("\"ts\":"), "\"ts\":%llu",
                          &ts),
              1)
        << ev;
    if (tid == last_tid) {
      EXPECT_GE(ts, last_ts) << "non-monotone ts within tid " << tid;
    } else {
      EXPECT_GT(tid, last_tid) << "events not grouped by tid";
      last_tid = tid;
    }
    last_ts = ts;
  }
  return events;
}

TEST(ObsTrace, ExportIsWellFormedAndPerThreadMonotone) {
  trace::enable(4);
  {
    OVO_TRACE_SPAN("outer", "test", -1);
    { OVO_TRACE_SPAN_ARGS("inner", "test", -1, "layer", 3, "chunk", 9); }
  }
  // Spans from real worker threads on distinct slots.
  std::vector<std::thread> workers;
  for (int slot = 0; slot < 3; ++slot) {
    workers.emplace_back([slot] {
      for (int i = 0; i < 4; ++i) {
        OVO_TRACE_SPAN_ARGS("work", "test", slot, "iter", i, "slot", slot);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  trace::disable();

  EXPECT_EQ(trace::event_count(), 14u);  // 2 serial + 3*4 worker spans
  const std::string json = trace::to_json();
  EXPECT_EQ(check_trace_json(json), 14u);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"layer\":3"), std::string::npos);
  EXPECT_NE(json.find("\"chunk\":9"), std::string::npos);

  // write_json lands the same document on disk, atomically.
  const char* tmp = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/ovo_obs_trace.json";
  ASSERT_TRUE(trace::write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string disk(json.size(), '\0');
  const std::size_t got = std::fread(disk.data(), 1, disk.size(), f);
  EXPECT_EQ(std::fgetc(f), EOF);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(got, json.size());
  EXPECT_EQ(disk, json);
}

TEST(ObsTrace, DisabledSpansCostNothingAndRecordNothing) {
  trace::enable(2);
  trace::disable();
  { OVO_TRACE_SPAN("ghost", "test", 0); }
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_FALSE(trace::enabled());

  // enable() clears any previous session's events.
  trace::enable(2);
  { OVO_TRACE_SPAN("one", "test", 0); }
  trace::disable();
  EXPECT_EQ(trace::event_count(), 1u);
  trace::enable(2);
  trace::disable();
  EXPECT_EQ(trace::event_count(), 0u);
}

#endif  // OVO_TRACE_ENABLED

}  // namespace
}  // namespace ovo::obs
