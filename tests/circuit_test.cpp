// Tests for the gate-level circuit representation (Corollary 2 input form).

#include <gtest/gtest.h>

#include "tt/circuit.hpp"
#include "util/check.hpp"

namespace ovo::tt {
namespace {

TEST(Circuit, SingleGateOps) {
  struct Case {
    GateOp op;
    bool expected[4];  // indexed by (b<<1)|a
  };
  const Case cases[] = {
      {GateOp::kAnd, {false, false, false, true}},
      {GateOp::kOr, {false, true, true, true}},
      {GateOp::kXor, {false, true, true, false}},
      {GateOp::kNand, {true, true, true, false}},
      {GateOp::kNor, {true, false, false, false}},
      {GateOp::kXnor, {true, false, false, true}},
  };
  for (const Case& c : cases) {
    Circuit ckt(2);
    ckt.add_gate(c.op, 0, 1);
    for (std::uint64_t a = 0; a < 4; ++a)
      EXPECT_EQ(ckt.eval(a), c.expected[a]) << static_cast<int>(c.op);
  }
}

TEST(Circuit, UnaryGates) {
  Circuit ckt(1);
  ckt.add_gate(GateOp::kNot, 0);
  EXPECT_TRUE(ckt.eval(0));
  EXPECT_FALSE(ckt.eval(1));

  Circuit buf(1);
  buf.add_gate(GateOp::kBuf, 0);
  EXPECT_FALSE(buf.eval(0));
  EXPECT_TRUE(buf.eval(1));
}

TEST(Circuit, FaninValidation) {
  Circuit ckt(2);
  EXPECT_THROW(ckt.add_gate(GateOp::kAnd, 0, 5), util::CheckError);
  EXPECT_THROW(ckt.add_gate(GateOp::kAnd, -1, 0), util::CheckError);
  EXPECT_THROW(ckt.add_gate(GateOp::kNot, 0, 1), util::CheckError);
  const int g = ckt.add_gate(GateOp::kAnd, 0, 1);
  EXPECT_EQ(g, 2);
  // Gates can feed later gates.
  EXPECT_EQ(ckt.add_gate(GateOp::kOr, g, 0), 3);
}

TEST(Circuit, OutputSelection) {
  Circuit ckt(2);
  const int a = ckt.add_gate(GateOp::kAnd, 0, 1);
  ckt.add_gate(GateOp::kOr, 0, 1);
  // Default output is the last gate (the OR).
  EXPECT_TRUE(ckt.eval(0b01));
  ckt.set_output(a);
  EXPECT_FALSE(ckt.eval(0b01));
  EXPECT_THROW(ckt.set_output(9), util::CheckError);
}

TEST(Circuit, NoOutputThrows) {
  const Circuit ckt(2);
  EXPECT_THROW(ckt.eval(0), util::CheckError);
}

TEST(Circuit, RippleCarryOutMatchesArithmetic) {
  for (int bits = 1; bits <= 5; ++bits) {
    const Circuit ckt = Circuit::ripple_carry_out(bits);
    const std::uint64_t lim = std::uint64_t{1} << bits;
    for (std::uint64_t u = 0; u < lim; ++u)
      for (std::uint64_t v = 0; v < lim; ++v)
        EXPECT_EQ(ckt.eval(u | (v << bits)), ((u + v) >> bits) & 1u)
            << "bits=" << bits << " u=" << u << " v=" << v;
  }
}

TEST(Circuit, ComparatorEq) {
  const Circuit ckt = Circuit::comparator_eq(3);
  for (std::uint64_t u = 0; u < 8; ++u)
    for (std::uint64_t v = 0; v < 8; ++v)
      EXPECT_EQ(ckt.eval(u | (v << 3)), u == v);
}

TEST(Circuit, TabulateMatchesEval) {
  const Circuit ckt = Circuit::ripple_carry_out(3);
  const TruthTable t = ckt.to_truth_table();
  EXPECT_EQ(t.num_vars(), 6);
  for (std::uint64_t a = 0; a < t.size(); ++a)
    EXPECT_EQ(t.get(a), ckt.eval(a));
}

}  // namespace
}  // namespace ovo::tt
