// Tests for DNF/CNF representations (Corollary 2 input forms).

#include <gtest/gtest.h>

#include "tt/function_zoo.hpp"
#include "tt/normal_forms.hpp"
#include "util/rng.hpp"

namespace ovo::tt {
namespace {

TEST(Dnf, EmptyIsFalse) {
  Dnf d;
  d.num_vars = 3;
  EXPECT_EQ(d.to_truth_table().count_ones(), 0u);
}

TEST(Cnf, EmptyIsTrue) {
  Cnf c;
  c.num_vars = 3;
  EXPECT_EQ(c.to_truth_table().count_ones(), 8u);
}

TEST(Dnf, EvalBasic) {
  // x0 & !x1  |  x2
  Dnf d;
  d.num_vars = 3;
  d.terms = {{Literal{0, true}, Literal{1, false}}, {Literal{2, true}}};
  EXPECT_TRUE(d.eval(0b001));
  EXPECT_FALSE(d.eval(0b011));
  EXPECT_TRUE(d.eval(0b100));
  EXPECT_FALSE(d.eval(0b010));
}

TEST(Cnf, EvalBasic) {
  // (x0 | x1) & (!x0 | x2)
  Cnf c;
  c.num_vars = 3;
  c.clauses = {{Literal{0, true}, Literal{1, true}},
               {Literal{0, false}, Literal{2, true}}};
  EXPECT_FALSE(c.eval(0b000));
  EXPECT_TRUE(c.eval(0b010));
  EXPECT_FALSE(c.eval(0b001));
  EXPECT_TRUE(c.eval(0b101));
}

class NormalFormRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(NormalFormRoundtrip, MintermDnfReproducesFunction) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const TruthTable t = random_function(5, rng);
  EXPECT_EQ(minterm_dnf(t).to_truth_table(), t);
}

TEST_P(NormalFormRoundtrip, MaxtermCnfReproducesFunction) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const TruthTable t = random_function(5, rng);
  EXPECT_EQ(maxterm_cnf(t).to_truth_table(), t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormRoundtrip,
                         ::testing::Range(0, 25));

TEST(NormalForms, CanonicalFormsOfZooFunctions) {
  for (const TruthTable& t :
       {pair_sum(2), parity(4), majority(5), hidden_weighted_bit(4)}) {
    EXPECT_EQ(minterm_dnf(t).to_truth_table(), t);
    EXPECT_EQ(maxterm_cnf(t).to_truth_table(), t);
  }
}

TEST(NormalForms, RandomDnfShape) {
  util::Xoshiro256 rng(7);
  const Dnf d = random_dnf(8, 10, 3, rng);
  EXPECT_EQ(d.terms.size(), 10u);
  for (const Clause& c : d.terms) {
    EXPECT_EQ(c.size(), 3u);
    // Distinct variables within a term.
    for (std::size_t i = 0; i < c.size(); ++i)
      for (std::size_t j = i + 1; j < c.size(); ++j)
        EXPECT_NE(c[i].var, c[j].var);
  }
}

TEST(NormalForms, RandomCnfTabulates) {
  util::Xoshiro256 rng(8);
  const Cnf c = random_cnf(6, 8, 3, rng);
  const TruthTable t = c.to_truth_table();
  for (std::uint64_t a = 0; a < t.size(); ++a)
    EXPECT_EQ(t.get(a), c.eval(a));
}

TEST(NormalForms, ToString) {
  Dnf d;
  d.num_vars = 3;
  d.terms = {{Literal{0, true}, Literal{1, false}}};
  EXPECT_EQ(to_string(d), "x1 & !x2");
  Cnf c;
  c.num_vars = 2;
  c.clauses = {{Literal{0, true}, Literal{1, true}}};
  EXPECT_EQ(to_string(c), "(x1 | x2)");
  EXPECT_EQ(to_string(Dnf{}), "0");
  EXPECT_EQ(to_string(Cnf{}), "1");
}

}  // namespace
}  // namespace ovo::tt
