// One test per numbered claim of the paper, as executable documentation.
// (Several claims also have deeper coverage in the per-module suites;
// this file is the index that maps paper statements to code.)

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "bdd/manager.hpp"
#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "quantum/analysis.hpp"
#include "quantum/min_find.hpp"
#include "quantum/opt_obdd.hpp"
#include "quantum/params.hpp"
#include "reorder/baselines.hpp"
#include "tt/expr.hpp"
#include "tt/function_zoo.hpp"
#include "tt/normal_forms.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo {
namespace {

// Theorem 1 / Theorem 13: minimum OBDD + ordering, valid output even under
// minimum-finder failure.
TEST(PaperClaims, Theorem1MinimumObddWithOrdering) {
  util::Xoshiro256 rng(1);
  const tt::TruthTable f = tt::random_function(6, rng);
  quantum::AccountingMinimumFinder finder(6.0);
  quantum::OptObddOptions opt;
  opt.alphas = {0.27};
  opt.finder = &finder;
  const auto q = quantum::opt_obdd_minimize(f, opt);
  EXPECT_EQ(q.min_internal_nodes,
            reorder::brute_force_minimize(f).internal_nodes);
  bdd::Manager m(6, q.order_root_first);
  EXPECT_EQ(m.to_truth_table(m.from_truth_table(f)), f);
}

// Corollary 2: any poly-evaluable representation suffices.
TEST(PaperClaims, Corollary2AnyRepresentation) {
  const tt::ExprPtr e = tt::parse_expr("x1 & x2 | x3 & x4 | x5 & x6");
  const tt::TruthTable via_expr = tt::expr_to_truth_table(*e, 6);
  const tt::TruthTable direct = tt::pair_sum(3);
  EXPECT_EQ(via_expr, direct);
  EXPECT_EQ(core::fs_minimize(via_expr).min_internal_nodes,
            core::fs_minimize(direct).min_internal_nodes);
}

// Sec. 1.1 / Fig. 1: the exponential ordering gap of the pair-sum family.
TEST(PaperClaims, Fig1ExponentialGap) {
  for (int m = 2; m <= 6; ++m) {
    const tt::TruthTable f = tt::pair_sum(m);
    EXPECT_EQ(core::diagram_size_for_order(
                  f, tt::pair_sum_natural_order(m)) + 2,
              static_cast<std::uint64_t>(2 * m + 2));
    EXPECT_EQ(core::diagram_size_for_order(
                  f, tt::pair_sum_interleaved_order(m)) + 2,
              std::uint64_t{1} << (m + 1));
  }
}

// Lemma 3: Cost_i depends only on the partition (prefix set, i, rest).
TEST(PaperClaims, Lemma3WidthSetInvariance) {
  util::Xoshiro256 rng(3);
  const tt::TruthTable f = tt::random_function(6, rng);
  const util::Mask I = 0b011010;  // {1, 3, 4}
  const int i = 3;
  std::vector<std::uint64_t> widths;
  std::vector<int> rest{1, 4};
  do {
    core::PrefixTable p = core::initial_table(f);
    for (const int v : rest)
      p = core::compact(p, v, core::DiagramKind::kBdd);
    widths.push_back(
        core::compaction_width(p, i, core::DiagramKind::kBdd));
  } while (std::next_permutation(rest.begin(), rest.end()));
  for (const auto w : widths) EXPECT_EQ(w, widths.front());
  (void)I;
}

// Lemma 4: MINCOST recurrence (spot-checked here; exhaustively in
// core_fs_test).
TEST(PaperClaims, Lemma4Recurrence) {
  util::Xoshiro256 rng(4);
  const tt::TruthTable f = tt::random_function(5, rng);
  const core::FsStarResult r = core::fs_star(
      core::initial_table(f), util::full_mask(5), 5,
      core::DiagramKind::kBdd);
  const util::Mask I = 0b10110;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  util::for_each_bit(I, [&](int k) {
    core::PrefixTable p = core::initial_table(f);
    util::for_each_bit(I & ~(util::Mask{1} << k), [&](int v) {
      p = core::compact(p, v, core::DiagramKind::kBdd);
    });
    best = std::min(best,
                    r.mincost.at(I & ~(util::Mask{1} << k)) +
                        core::compaction_width(p, k,
                                               core::DiagramKind::kBdd));
  });
  EXPECT_EQ(r.mincost.at(I), best);
}

// Theorem 5: O*(3^n) — exact operation counts match the closed form.
TEST(PaperClaims, Theorem5OperationCount) {
  util::Xoshiro256 rng(5);
  for (int n = 3; n <= 8; ++n) {
    const auto r = core::fs_minimize(tt::random_function(n, rng));
    EXPECT_DOUBLE_EQ(static_cast<double>(r.ops.table_cells),
                     quantum::fs_total_cells(n));
  }
}

// Lemma 6: sqrt(N) quantum queries for minimum finding (accounting model
// by construction; Dürr–Høyer statistics in quantum_primitives_test).
TEST(PaperClaims, Lemma6QueryModel) {
  quantum::AccountingMinimumFinder finder(3.0);
  std::vector<std::int64_t> values(100);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<std::int64_t>((i * 37) % 101);
  const auto out = finder.find_min(values);
  EXPECT_EQ(values[out.best_index],
            *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(out.quantum_queries, 10.0 * 3.0);
}

// Lemma 7: the FS recurrence holds with a fixed prefix I below the block.
TEST(PaperClaims, Lemma7PrefixedRecurrence) {
  util::Xoshiro256 rng(7);
  const tt::TruthTable f = tt::random_function(6, rng);
  // Fix I = {0, 5} (optimally arranged), J = {1, 2, 4}.
  const util::Mask I = 0b100001;
  const util::Mask J = 0b010110;
  const core::PrefixTable base =
      core::fs_star_full(core::initial_table(f), I,
                         core::DiagramKind::kBdd);
  const core::FsStarResult r =
      core::fs_star(base, J, 3, core::DiagramKind::kBdd);
  // For K = J: MINCOST_{<I,J>} = min_k MINCOST_{<I,J\k>} + Cost_k.
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  util::for_each_bit(J, [&](int k) {
    core::PrefixTable p = base;
    util::for_each_bit(J & ~(util::Mask{1} << k), [&](int v) {
      p = core::compact(p, v, core::DiagramKind::kBdd);
    });
    best = std::min(best,
                    r.mincost.at(J & ~(util::Mask{1} << k)) +
                        core::compaction_width(p, k,
                                               core::DiagramKind::kBdd));
  });
  EXPECT_EQ(r.mincost.at(J), best);
}

// Lemma 8: FS* composes — FS(<I,J>) from FS(I) — at the claimed cost
// (cost form verified in bench_fs_star; composition in fs_star_test).
TEST(PaperClaims, Lemma8Composition) {
  util::Xoshiro256 rng(8);
  const tt::TruthTable f = tt::random_function(6, rng);
  const util::Mask I = 0b000011;
  const core::PrefixTable base = core::fs_star_full(
      core::initial_table(f), I, core::DiagramKind::kBdd);
  const core::PrefixTable whole = core::fs_star_full(
      base, util::full_mask(6) & ~I, core::DiagramKind::kBdd);
  // The composed optimum is a valid upper bound on the global optimum and
  // is achieved by some order with I at the bottom.
  EXPECT_GE(whole.mincost(), core::fs_minimize(f).min_internal_nodes);
}

// Lemma 9: divide and conquer at every split point (exhaustive form in
// fs_star_test; single split here).
TEST(PaperClaims, Lemma9Split) {
  util::Xoshiro256 rng(9);
  const tt::TruthTable f = tt::random_function(6, rng);
  const std::uint64_t direct = core::fs_minimize(f).min_internal_nodes;
  const int k = 2;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  util::for_each_subset_of_size(6, k, [&](util::Mask K) {
    const core::PrefixTable bottom = core::fs_star_full(
        core::initial_table(f), K, core::DiagramKind::kBdd);
    best = std::min(best, core::fs_star_full(
                              bottom, util::full_mask(6) & ~K,
                              core::DiagramKind::kBdd)
                              .mincost());
  });
  EXPECT_EQ(best, direct);
}

// Theorem 10: gamma_6 <= 2.83728 with the printed alpha vector.
TEST(PaperClaims, Theorem10Gamma6) {
  const quantum::ChainSolution s = quantum::solve_alphas(6, 3.0);
  EXPECT_LE(s.gamma, 2.83728 + 2e-4);
  EXPECT_NEAR(s.alphas.back(), 0.343573, 5e-4);
}

// Theorem 13: the tower reaches 2.77286 at the tenth composition.
TEST(PaperClaims, Theorem13TowerConstant) {
  const auto rows = quantum::composition_tower(6, 10);
  EXPECT_LE(rows.back().gamma, 2.77286 + 2e-4);
}

// Remark 1: space of the same order as time.
TEST(PaperClaims, Remark1SpaceOrder) {
  util::Xoshiro256 rng(11);
  const auto r = core::fs_minimize(tt::random_function(8, rng));
  EXPECT_DOUBLE_EQ(static_cast<double>(r.ops.peak_cells),
                   quantum::fs_peak_cells(8));
  // Both time and space are within a polynomial factor of 3^n.
  const double three_n = std::pow(3.0, 8);
  EXPECT_LE(static_cast<double>(r.ops.peak_cells), 8 * three_n);
  EXPECT_GE(static_cast<double>(r.ops.peak_cells), three_n / 8);
}

// Remark 2: multi-valued (MTBDD) and ZDD variants minimize exactly.
TEST(PaperClaims, Remark2Variants) {
  util::Xoshiro256 rng(12);
  const tt::TruthTable f = tt::random_sparse_function(5, 6, rng);
  EXPECT_EQ(core::fs_minimize(f, core::DiagramKind::kZdd)
                .min_internal_nodes,
            reorder::brute_force_minimize(f, core::DiagramKind::kZdd)
                .internal_nodes);
  std::vector<std::int64_t> values(32);
  for (auto& v : values) v = static_cast<std::int64_t>(rng.below(3));
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  std::vector<int> order{0, 1, 2, 3, 4};
  do {
    best = std::min(best,
                    core::diagram_size_for_order_values(values, 5, order));
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(core::fs_minimize_mtbdd(values, 5).min_internal_nodes, best);
}

// Sec. 3.1: gamma_0 (no preprocess) and gamma_1 (with) constants.
TEST(PaperClaims, Section31Constants) {
  EXPECT_NEAR(quantum::gamma_no_preprocess(), 2.98581, 2e-4);
  EXPECT_NEAR(quantum::solve_alphas(1, 3.0).gamma, 2.97625, 2e-4);
}

// Appendix B: the two-parameter case.
TEST(PaperClaims, AppendixBTwoParameters) {
  const quantum::ChainSolution s = quantum::solve_alphas(2, 3.0);
  EXPECT_NEAR(s.gamma, 2.85690, 2e-4);
  EXPECT_NEAR(s.alphas[0], 0.192755, 5e-4);
  EXPECT_NEAR(s.alphas[1], 0.334571, 5e-4);
}

}  // namespace
}  // namespace ovo
