// Tests for the bound-pruned sparse FS* DP (ExecPolicy.prune = kBounds):
// bit-identity with the dense engines over exhaustive small-n sweeps and
// randomized larger functions at every thread count and both pipeline
// settings, ledger consistency, the certified lower bound, the small-n
// serial fallback, governed engine routing, and fault injection
// (cancellation and allocation failure) on the sparse path.  Run under
// the asan/tsan presets by tools/ci.sh.

#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <vector>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "ds/sparse_index.hpp"
#include "parallel/exec_policy.hpp"
#include "parallel/task_graph.hpp"
#include "reorder/minimize_auto.hpp"
#include "rt/budget.hpp"
#include "rt/fault.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo {
namespace {

par::ExecPolicy policy(int threads, bool pipeline = true,
                       par::PruneMode prune = par::PruneMode::kOff) {
  par::ExecPolicy exec;
  exec.num_threads = threads;
  exec.pipeline = pipeline;
  exec.prune = prune;
  return exec;
}

/// The dense ledger identities every pruned run must satisfy.
void expect_consistent_ledger(const core::PruneStats& p) {
  EXPECT_EQ(p.states_generated, p.states_pruned + p.states_surviving);
  EXPECT_EQ(p.states_enumerated(), p.states_generated + p.states_dead);
  EXPECT_LE(p.sparse_cells, p.dense_cells);
}

// ------------------------------------------------------------ SparseIndex --

TEST(SparseIndex, RankContainsAndNpos) {
  const std::vector<std::uint64_t> keys = {0b001, 0b100, 0b110, 0b1011};
  const ds::SparseIndex idx(keys);
  EXPECT_EQ(idx.size(), 4u);
  EXPECT_FALSE(idx.empty());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(idx.rank(keys[i]), i);
    EXPECT_TRUE(idx.contains(keys[i]));
  }
  for (const std::uint64_t missing : {0ull, 0b010ull, 0b111ull, ~0ull}) {
    EXPECT_EQ(idx.rank(missing), ds::SparseIndex::npos);
    EXPECT_FALSE(idx.contains(missing));
  }
  const std::vector<std::uint64_t> none;
  EXPECT_TRUE(ds::SparseIndex(none).empty());
}

// ----------------------------------------------------- differential sweeps --

// Every Boolean function on 3 variables, serial: the pruned DP must
// return the dense optimum, order, and tie-breaks for all of them.
TEST(FsPruneDifferential, ExhaustiveN3AllFunctions) {
  for (std::uint32_t bits = 0; bits < 256; ++bits) {
    const tt::TruthTable f = tt::TruthTable::tabulate(
        3, [&](std::uint64_t a) { return (bits >> a) & 1u; });
    const core::MinimizeResult dense = core::fs_minimize(f);
    const core::MinimizeResult pruned = core::fs_minimize(
        f, core::DiagramKind::kBdd,
        policy(1, true, par::PruneMode::kBounds));
    ASSERT_EQ(pruned.min_internal_nodes, dense.min_internal_nodes)
        << "bits=" << bits;
    ASSERT_EQ(pruned.order_root_first, dense.order_root_first)
        << "bits=" << bits;
    expect_consistent_ledger(pruned.ops.prune);
  }
}

// Every Boolean function on 4 variables, serial (65536 functions; each
// DP is a few hundred cells, so the sweep stays cheap).
TEST(FsPruneDifferential, ExhaustiveN4AllFunctions) {
  for (std::uint64_t bits = 0; bits < 65536; ++bits) {
    const tt::TruthTable f = tt::TruthTable::tabulate(
        4, [&](std::uint64_t a) { return (bits >> a) & 1u; });
    const core::MinimizeResult dense = core::fs_minimize(f);
    const core::MinimizeResult pruned = core::fs_minimize(
        f, core::DiagramKind::kBdd,
        policy(1, true, par::PruneMode::kBounds));
    ASSERT_EQ(pruned.min_internal_nodes, dense.min_internal_nodes)
        << "bits=" << bits;
    ASSERT_EQ(pruned.order_root_first, dense.order_root_first)
        << "bits=" << bits;
  }
}

// Random functions up to n = 10 across thread counts and both pipeline
// settings; n >= 7 clears the serial-fallback threshold, so threads > 1
// genuinely exercises the pruned barrier AND pruned pipelined engines.
TEST(FsPruneDifferential, RandomizedAcrossThreadsAndPipelines) {
  util::Xoshiro256 rng(0xbead);
  for (const int n : {5, 6, 7, 8, 10}) {
    const tt::TruthTable f = tt::random_function(n, rng);
    const core::MinimizeResult dense = core::fs_minimize(f);
    for (const int threads : {1, 2, 4, 8}) {
      for (const bool pipeline : {false, true}) {
        const core::MinimizeResult pruned = core::fs_minimize(
            f, core::DiagramKind::kBdd,
            policy(threads, pipeline, par::PruneMode::kBounds));
        ASSERT_EQ(pruned.min_internal_nodes, dense.min_internal_nodes)
            << "n=" << n << " threads=" << threads
            << " pipeline=" << pipeline;
        ASSERT_EQ(pruned.order_root_first, dense.order_root_first)
            << "n=" << n << " threads=" << threads
            << " pipeline=" << pipeline;
        expect_consistent_ledger(pruned.ops.prune);
      }
    }
  }
}

// ZDD kind goes through the same pruned kernels.
TEST(FsPruneDifferential, ZddKindMatchesDense) {
  util::Xoshiro256 rng(0x5eed);
  const tt::TruthTable f = tt::random_sparse_function(7, 11, rng);
  const core::MinimizeResult dense =
      core::fs_minimize(f, core::DiagramKind::kZdd);
  for (const int threads : {1, 4}) {
    const core::MinimizeResult pruned = core::fs_minimize(
        f, core::DiagramKind::kZdd,
        policy(threads, true, par::PruneMode::kBounds));
    EXPECT_EQ(pruned.min_internal_nodes, dense.min_internal_nodes);
    EXPECT_EQ(pruned.order_root_first, dense.order_root_first);
  }
}

// The tightest admissible incumbent — the exact optimum — must keep the
// optimal chain alive (pruning cuts strictly-greater bounds only).
TEST(FsPruneDifferential, TightUpperBoundKeepsTheOptimum) {
  util::Xoshiro256 rng(0x7137);
  for (int trial = 0; trial < 3; ++trial) {
    const tt::TruthTable f = tt::random_function(8, rng);
    const core::MinimizeResult dense = core::fs_minimize(f);
    for (const int threads : {1, 4}) {
      const core::MinimizeResult pruned = core::fs_minimize(
          f, core::DiagramKind::kBdd,
          policy(threads, true, par::PruneMode::kBounds),
          dense.min_internal_nodes);
      EXPECT_EQ(pruned.min_internal_nodes, dense.min_internal_nodes);
      EXPECT_EQ(pruned.order_root_first, dense.order_root_first);
      EXPECT_EQ(pruned.ops.prune.upper_bound, dense.min_internal_nodes);
    }
  }
}

// ------------------------------------------------------- ledger and bound --

TEST(FsPruneLedger, CountsCoverTheSubsetLatticeAndBoundIsExact) {
  util::Xoshiro256 rng(0xcafe);
  const int n = 8;
  const tt::TruthTable f = tt::random_function(n, rng);
  core::OpCounter ops;
  const core::FsStarResult r = core::fs_star(
      core::initial_table(f), util::full_mask(n), n, core::DiagramKind::kBdd,
      &ops, policy(1, true, par::PruneMode::kBounds));
  expect_consistent_ledger(r.prune);
  // Enumerated states cover every non-empty subset of the lattice.
  std::uint64_t lattice = 0;
  for (int k = 1; k <= n; ++k) lattice += util::binomial_u64(n, k);
  EXPECT_EQ(r.prune.states_enumerated(), lattice);
  EXPECT_GT(r.prune.states_surviving, 0u);
  // A completed pruned run's certified bound IS the optimum, and the
  // engine's ledger reaches the caller through the OpCounter.
  EXPECT_EQ(r.certified_lower_bound, r.tables.at(util::full_mask(n)).mincost());
  EXPECT_EQ(ops.prune.states_generated, r.prune.states_generated);
  // The self-seeded incumbent is a real chain cost: optimum <= ub.
  EXPECT_GE(r.prune.upper_bound, r.certified_lower_bound);
}

TEST(FsPruneLedger, DenseModeLeavesLedgerUntouched) {
  util::Xoshiro256 rng(0xd00d);
  const tt::TruthTable f = tt::random_function(6, rng);
  const core::MinimizeResult dense = core::fs_minimize(f);
  EXPECT_EQ(dense.ops.prune.states_enumerated(), 0u);
  EXPECT_EQ(dense.ops.prune.upper_bound, 0u);
  // kOff is the default: an explicit kOff policy is the same engine.
  const core::MinimizeResult off = core::fs_minimize(
      f, core::DiagramKind::kBdd, policy(1, true, par::PruneMode::kOff));
  EXPECT_EQ(off.min_internal_nodes, dense.min_internal_nodes);
  EXPECT_EQ(off.order_root_first, dense.order_root_first);
  EXPECT_EQ(off.ops.table_cells, dense.ops.table_cells);
}

// Stop-early runs must keep the dense all-subsets contract even when the
// policy asks for pruning (partition searches read every stop-layer
// subset).
TEST(FsPruneLedger, StopEarlyRunsIgnoreThePruneFlag) {
  const tt::TruthTable f = tt::majority(5);
  const util::Mask all = util::full_mask(5);
  for (int k = 1; k < 5; ++k) {
    const core::FsStarResult r =
        core::fs_star(core::initial_table(f), all, k, core::DiagramKind::kBdd,
                      nullptr, policy(1, true, par::PruneMode::kBounds));
    EXPECT_EQ(r.tables.size(), util::binomial_u64(5, k)) << "k=" << k;
    EXPECT_EQ(r.prune.states_enumerated(), 0u) << "k=" << k;
  }
}

// --------------------------------------------------- fallback and routing --

// Below the serial-fallback work threshold a threads=4 run must not
// touch the scheduler at all: zero graphs, zero chunks.
TEST(FsPruneRouting, SmallInstancesFallBackToSerial) {
  util::Xoshiro256 rng(0xfa11);
  const tt::TruthTable small = tt::random_function(6, rng);
  const par::SchedStats before = par::sched_stats();
  const core::MinimizeResult r =
      core::fs_minimize(small, core::DiagramKind::kBdd, policy(4));
  const par::SchedStats delta = par::sched_stats() - before;
  EXPECT_EQ(delta.graphs, 0u);
  EXPECT_EQ(delta.chunks, 0u);
  EXPECT_EQ(r.min_internal_nodes, core::fs_minimize(small).min_internal_nodes);

  // One variable more clears the threshold: the pipelined engine runs
  // the whole DP as one graph.
  const tt::TruthTable big = tt::random_function(7, rng);
  const par::SchedStats before2 = par::sched_stats();
  core::fs_minimize(big, core::DiagramKind::kBdd, policy(4));
  const par::SchedStats delta2 = par::sched_stats() - before2;
  EXPECT_EQ(delta2.graphs, 1u);
  EXPECT_GT(delta2.chunks, 0u);
}

// A pruned run under deterministic budget limits must take the barrier
// engine (one parallel_for graph per fanned-out layer) even when the
// policy asks to pipeline; without such limits it pipelines as one
// graph.
TEST(FsPruneRouting, DeterministicLimitsForceTheBarrierEngine) {
  util::Xoshiro256 rng(0xbead);
  const tt::TruthTable f = tt::random_function(7, rng);
  const par::ExecPolicy exec = policy(4, true, par::PruneMode::kBounds);

  const par::SchedStats before = par::sched_stats();
  core::OpCounter ops;
  rt::Governor roomy(rt::Budget::with_work_limit(~std::uint64_t{0} >> 1));
  const core::FsStarResult governed =
      core::fs_star(core::initial_table(f), util::full_mask(7), 7,
                    core::DiagramKind::kBdd, &ops, exec, &roomy);
  const par::SchedStats delta = par::sched_stats() - before;
  EXPECT_GT(delta.graphs, 1u);  // one region per parallel layer

  const par::SchedStats before2 = par::sched_stats();
  const core::FsStarResult free_run =
      core::fs_star(core::initial_table(f), util::full_mask(7), 7,
                    core::DiagramKind::kBdd, nullptr, exec);
  const par::SchedStats delta2 = par::sched_stats() - before2;
  EXPECT_EQ(delta2.graphs, 1u);  // the whole DP is one task graph

  EXPECT_EQ(governed.tables.at(util::full_mask(7)).mincost(),
            free_run.tables.at(util::full_mask(7)).mincost());
  EXPECT_EQ(core::reconstruct_block_order(governed, util::full_mask(7)),
            core::reconstruct_block_order(free_run, util::full_mask(7)));
}

// ------------------------------------------------------- governed pruning --

// A deterministic work-limit trip mid-DP must return the same partial
// ledger, certified bound, and salvaged order at every thread count.
TEST(FsPruneGoverned, WorkLimitTripIsThreadCountInvariant) {
  util::Xoshiro256 rng(0x90b0);
  const tt::TruthTable f = tt::random_function(9, rng);
  const std::uint64_t optimal = core::fs_minimize(f).min_internal_nodes;

  rt::Budget b;
  b.work_limit = 30000;  // trips a few layers into the n=9 pruned DP
  reorder::AutoMinimizeOptions opt;
  opt.exec = policy(1, true, par::PruneMode::kBounds);

  const auto reference = reorder::minimize_auto(f, b, opt);
  EXPECT_EQ(reference.outcome, rt::Outcome::kDeadline);
  EXPECT_FALSE(reference.value.optimal);
  EXPECT_LE(reference.value.lower_bound, optimal);
  EXPECT_GE(reference.value.internal_nodes, optimal);
  expect_consistent_ledger(reference.value.ops.prune);

  for (const int threads : {2, 4, 8}) {
    reorder::AutoMinimizeOptions t_opt;
    t_opt.exec = policy(threads, true, par::PruneMode::kBounds);
    const auto r = reorder::minimize_auto(f, b, t_opt);
    EXPECT_EQ(r.outcome, reference.outcome) << "threads=" << threads;
    EXPECT_EQ(r.value.order_root_first, reference.value.order_root_first)
        << "threads=" << threads;
    EXPECT_EQ(r.value.internal_nodes, reference.value.internal_nodes)
        << "threads=" << threads;
    EXPECT_EQ(r.value.lower_bound, reference.value.lower_bound)
        << "threads=" << threads;
    EXPECT_EQ(r.value.dp_layers_completed,
              reference.value.dp_layers_completed)
        << "threads=" << threads;
    EXPECT_EQ(r.value.ops.prune.states_surviving,
              reference.value.ops.prune.states_surviving)
        << "threads=" << threads;
  }
}

// The governed ladder with pruning on and a roomy budget completes and
// proves optimality, with the prune ledger in the result.
TEST(FsPruneGoverned, RoomyBudgetCompletesOptimally) {
  util::Xoshiro256 rng(0x600d);
  const tt::TruthTable f = tt::random_function(8, rng);
  const std::uint64_t optimal = core::fs_minimize(f).min_internal_nodes;
  reorder::AutoMinimizeOptions opt;
  opt.exec = policy(4, true, par::PruneMode::kBounds);
  const auto r = reorder::minimize_auto(f, rt::Budget{}, opt);
  EXPECT_EQ(r.outcome, rt::Outcome::kComplete);
  EXPECT_TRUE(r.value.optimal);
  EXPECT_EQ(r.value.internal_nodes, optimal);
  EXPECT_EQ(r.value.lower_bound, optimal);
  expect_consistent_ledger(r.value.ops.prune);
  EXPECT_GT(r.value.ops.prune.states_surviving, 0u);
}

// ---------------------------------------------------------------- faults --

// Cancellation mid-DP on the pruned pipelined path: the DAG drains, the
// ladder salvages a valid order, the prune ledger stays consistent, and
// the interrupted run still reports a certified lower bound.
TEST(FsPruneFaults, CancelMidDagKeepsLedgerAndBoundConsistent) {
  const tt::TruthTable f = tt::hidden_weighted_bit(10);
  const std::uint64_t optimal = core::fs_minimize(f).min_internal_nodes;

  rt::CancelToken token;
  rt::FaultPlan plan;
  plan.cancel_at_checkpoint = 100;  // lands inside the pruned DP
  plan.cancel = &token;
  rt::ScopedFaultPlan scoped(plan);

  rt::Budget b;
  b.cancel = &token;
  reorder::AutoMinimizeOptions opt;
  opt.exec = policy(4, true, par::PruneMode::kBounds);
  opt.prune_seed = "none";  // keep every checkpoint inside the DP
  const auto r = reorder::minimize_auto(f, b, opt);
  EXPECT_EQ(r.outcome, rt::Outcome::kCancelled);
  EXPECT_FALSE(r.value.optimal);
  EXPECT_LT(r.value.dp_layers_completed, 10);
  ASSERT_TRUE(util::is_permutation(r.value.order_root_first));
  EXPECT_EQ(core::diagram_size_for_order(f, r.value.order_root_first),
            r.value.internal_nodes);
  expect_consistent_ledger(r.value.ops.prune);
  EXPECT_GT(r.value.lower_bound, 0u);
  EXPECT_LE(r.value.lower_bound, optimal);
  EXPECT_GE(scoped.checkpoints_seen(), 100u);
}

// Allocation faults injected under the pruned pipelined DP: the
// bad_alloc drains the DAG, propagates exactly once, and a rerun with
// the plan gone is bit-identical to the dense serial reference.
TEST(FsPruneFaults, AllocFaultDrainsAndLeavesNoCorruption) {
  util::Xoshiro256 rng(0xa110c);
  const tt::TruthTable f = tt::random_function(8, rng);
  const core::MinimizeResult serial = core::fs_minimize(f);
  const par::ExecPolicy exec = policy(4, true, par::PruneMode::kBounds);

  std::uint64_t events = 0;
  {
    rt::ScopedFaultPlan probe(rt::FaultPlan{});
    const core::MinimizeResult r =
        core::fs_minimize(f, core::DiagramKind::kBdd, exec);
    EXPECT_EQ(r.min_internal_nodes, serial.min_internal_nodes);
    events = probe.allocations_seen();
  }
  ASSERT_GT(events, 0u);

  for (const std::uint64_t k : {std::uint64_t{1}, events / 2, events}) {
    rt::FaultPlan plan;
    plan.fail_alloc_at = k;
    rt::ScopedFaultPlan scoped(plan);
    try {
      core::fs_minimize(f, core::DiagramKind::kBdd, exec);
      FAIL() << "allocation " << k << " did not fail";
    } catch (const std::bad_alloc&) {
      // expected
    }
  }

  const core::MinimizeResult again =
      core::fs_minimize(f, core::DiagramKind::kBdd, exec);
  EXPECT_EQ(again.min_internal_nodes, serial.min_internal_nodes);
  EXPECT_EQ(again.order_root_first, serial.order_root_first);
}

}  // namespace
}  // namespace ovo
