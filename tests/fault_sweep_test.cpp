// Exhaustive fault sweeps (rt::fault_sweep): the acceptance test for the
// fault-site framework.  First the driver's own mechanics (probe counts,
// stride, even-cap resampling, typed absorption), then the headline
// sweep — the full n=10 minimize_auto pipeline (governed exact DP with
// fence checkpointing into SimFs, salvage, sift, restarts) survives a
// fault injected at EVERY site: each run either completes with a typed
// rt::Outcome or fails with the site's typed error, leaves no temp file
// and no torn snapshot, and the process stays reusable.  ASan/TSan runs
// of this test add the no-leak / no-deadlock halves of the claim.

#include <gtest/gtest.h>

#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fs_checkpoint.hpp"
#include "reorder/minimize_auto.hpp"
#include "rt/budget.hpp"
#include "rt/checkpoint.hpp"
#include "rt/fault.hpp"
#include "rt/fault_sweep.hpp"
#include "rt/file_ops.hpp"
#include "rt/sim_fs.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"

namespace ovo::rt {
namespace {

std::uint64_t events_at(const SweepReport& r, FaultSite s) {
  return r.events[static_cast<std::size_t>(s)];
}

// --- driver mechanics ------------------------------------------------------

TEST(FaultSweep, ProbesCountsAndFailsEveryEvent) {
  const std::vector<FaultSite> sites{FaultSite::kAlloc,
                                     FaultSite::kTaskDispatch};
  const auto scenario = [] {
    for (int i = 0; i < 5; ++i) fault_alloc_hook();
    for (int i = 0; i < 3; ++i) fault_dispatch_hook();
  };
  const SweepReport r = fault_sweep(sites, scenario);
  EXPECT_EQ(events_at(r, FaultSite::kAlloc), 5u);
  EXPECT_EQ(events_at(r, FaultSite::kTaskDispatch), 3u);
  // 5 + 3 injected runs, each aborted by its typed exception.
  EXPECT_EQ(r.runs, 8u);
  EXPECT_EQ(r.typed_failures, 8u);
  EXPECT_EQ(r.completions, 0u);
  for (const SweepOutcome& o : r.outcomes) {
    EXPECT_TRUE(o.injected) << fault_site_name(o.site) << " nth=" << o.nth;
    EXPECT_FALSE(o.completed);
    EXPECT_FALSE(o.error.empty());
  }
}

TEST(FaultSweep, AbsorbedInjectionCountsAsCompletion) {
  // A fileop-site injection that the scenario tolerates (the hook just
  // returns true; nothing acts on it) must be reported as a completion
  // with injected=true — the "failure was absorbed" arm of the contract.
  const std::vector<FaultSite> sites{FaultSite::kFileFsync};
  const auto scenario = [] {
    for (int i = 0; i < 4; ++i) (void)fault_fileop_hook(FaultSite::kFileFsync);
  };
  const SweepReport r = fault_sweep(sites, scenario);
  EXPECT_EQ(r.runs, 4u);
  EXPECT_EQ(r.completions, 4u);
  EXPECT_EQ(r.typed_failures, 0u);
  for (const SweepOutcome& o : r.outcomes) EXPECT_TRUE(o.injected);
}

TEST(FaultSweep, CapResamplesEvenlyInsteadOfTruncating) {
  const std::vector<FaultSite> sites{FaultSite::kAlloc};
  const auto scenario = [] {
    for (int i = 0; i < 100; ++i) fault_alloc_hook();
  };
  SweepOptions options;
  options.max_runs_per_site = 5;
  const SweepReport r = fault_sweep(sites, scenario, options);
  ASSERT_EQ(r.runs, 5u);
  // The picked indices span [1, 100] rather than clustering at the
  // front, so the tail of the scenario stays covered.
  EXPECT_EQ(r.outcomes.front().nth, 1u);
  EXPECT_EQ(r.outcomes.back().nth, 100u);
  for (std::size_t i = 1; i < r.outcomes.size(); ++i)
    EXPECT_GT(r.outcomes[i].nth, r.outcomes[i - 1].nth);
}

TEST(FaultSweep, StrideSkipsEvents) {
  const std::vector<FaultSite> sites{FaultSite::kAlloc};
  const auto scenario = [] {
    for (int i = 0; i < 10; ++i) fault_alloc_hook();
  };
  SweepOptions options;
  options.stride = 4;
  const SweepReport r = fault_sweep(sites, scenario, options);
  ASSERT_EQ(r.runs, 3u);  // nth = 1, 5, 9
  EXPECT_EQ(r.outcomes[0].nth, 1u);
  EXPECT_EQ(r.outcomes[1].nth, 5u);
  EXPECT_EQ(r.outcomes[2].nth, 9u);
}

TEST(FaultSweep, UntypedEscapeIsNotAbsorbed) {
  // The driver only absorbs the typed failure set; a scenario throwing
  // anything else (here: from the probe run) escapes and fails the test
  // that ran the sweep — by design.
  const std::vector<FaultSite> sites{FaultSite::kAlloc};
  const auto broken = [] { throw std::logic_error("broken scenario"); };
  EXPECT_THROW(fault_sweep(sites, broken), std::logic_error);
}

// --- the acceptance sweep --------------------------------------------------

/// Every site the n=10 pipeline can hit.  kFileRead/kFileUnlink are
/// load-path / cleanup-path sites; the write-side pipeline observes zero
/// events there and the driver skips them (asserted below).
const std::vector<FaultSite> kPipelineSites{
    FaultSite::kAlloc,      FaultSite::kGovPoll,   FaultSite::kTaskDispatch,
    FaultSite::kFileOpen,   FaultSite::kFileRead,  FaultSite::kFileWrite,
    FaultSite::kFileFsync,  FaultSite::kFileRename, FaultSite::kFileClose};

TEST(FaultSweep, MinimizeAutoPipelineSurvivesEveryFaultSite) {
  const tt::TruthTable f = tt::hidden_weighted_bit(10);
  const std::string path = "/sweep/ckpt.bin";

  const auto scenario = [&] {
    SimFs sim;
    // Post-run invariants, checked on BOTH exits (return and typed
    // unwind): no temp file survives any failure path, and whatever
    // snapshot is on disk is a whole committed frame, never torn.
    struct Guard {
      SimFs* sim;
      const std::string* path;
      ~Guard() {
        EXPECT_FALSE(sim->exists(*path + ".tmp")) << "temp file leaked";
        if (sim->exists(*path)) {
          const std::vector<std::uint8_t> image = sim->get(*path);
          EXPECT_NO_THROW((void)parse_checkpoint(
              image.data(), image.size(), core::kFsSnapshotVersion,
              core::kFsSnapshotVersion))
              << "torn snapshot left on disk";
        }
      }
    } guard{&sim, &path};
    ScopedFileOps install(sim);

    reorder::AutoMinimizeOptions opt;
    opt.exec.num_threads = 2;  // populate the task-dispatch site
    opt.ckpt.path = path;
    opt.ckpt.every = 1;  // a fence snapshot per DP layer
    // A ceiling-high work limit keeps the governor (and its poll site)
    // in the loop without ever tripping on its own.
    const rt::Result<reorder::AutoMinimizeResult> r = reorder::minimize_auto(
        f, Budget::with_work_limit(~std::uint64_t{0} / 2), opt);
    // Completion under injection must still be *typed*: a clean Outcome
    // and a valid order (the kGovPoll contract — an injected poll is a
    // cancellation, and the ladder degrades instead of corrupting).
    EXPECT_TRUE(r.outcome == Outcome::kComplete ||
                r.outcome == Outcome::kCancelled)
        << outcome_name(r.outcome);
    EXPECT_TRUE(util::is_permutation(r.value.order_root_first));
    EXPECT_EQ(r.value.order_root_first.size(), 10u);
  };

  SweepOptions options;
  // Bound the big sites (alloc events number in the thousands for n=10);
  // the even resampling keeps every phase of the run covered.
  options.max_runs_per_site = 8;
  const SweepReport report = fault_sweep(kPipelineSites, scenario, options);

  // The probe must actually have exercised every write-side site...
  for (const FaultSite site :
       {FaultSite::kAlloc, FaultSite::kGovPoll, FaultSite::kTaskDispatch,
        FaultSite::kFileOpen, FaultSite::kFileWrite, FaultSite::kFileFsync,
        FaultSite::kFileRename, FaultSite::kFileClose}) {
    EXPECT_GT(events_at(report, site), 0u) << fault_site_name(site);
  }
  // ...while the read-side site never fires on a pure write pipeline.
  EXPECT_EQ(events_at(report, FaultSite::kFileRead), 0u);

  // Every injected run ended in one of the two allowed ways — the driver
  // absorbed a typed failure or the scenario completed; anything else
  // would have escaped fault_sweep and failed this test already.  Check
  // the bookkeeping agrees, and that the injections actually landed.
  EXPECT_EQ(report.completions + report.typed_failures, report.runs);
  std::uint64_t injected_runs = 0;
  for (const SweepOutcome& o : report.outcomes) {
    if (o.injected) ++injected_runs;
    if (!o.completed) {
      EXPECT_TRUE(o.injected)
          << fault_site_name(o.site) << " nth=" << o.nth
          << " failed without an injection: " << o.error;
      EXPECT_FALSE(o.error.empty());
    }
  }
  EXPECT_GT(injected_runs, 0u);
  EXPECT_GE(report.runs, 20u);  // 8 active sites, capped at 8 runs each

  // The sweep must leave the process reusable: no plan installed, and a
  // fault-free rerun of the same pipeline is exact.
  {
    SimFs sim;
    ScopedFileOps install(sim);
    reorder::AutoMinimizeOptions opt;
    opt.ckpt.path = path;
    const auto clean = reorder::minimize_auto(f, Budget{}, opt);
    EXPECT_TRUE(clean.complete());
    EXPECT_TRUE(clean.value.optimal);
  }
}

}  // namespace
}  // namespace ovo::rt
