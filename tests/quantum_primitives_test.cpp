// Tests for the quantum substrate: statevector unitarity, Grover search
// statistics, Dürr–Høyer minimum finding, and the accounting finder's
// query model (Lemma 6).

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/grover.hpp"
#include "quantum/min_find.hpp"
#include "quantum/statevector.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ovo::quantum {
namespace {

TEST(Statevector, UniformInitialization) {
  Statevector psi(4);
  EXPECT_EQ(psi.dimension(), 16u);
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-12);
  for (const auto& a : psi.amplitudes())
    EXPECT_NEAR(std::abs(a), 0.25, 1e-12);
}

TEST(Statevector, OperatorsPreserveNorm) {
  Statevector psi(6);
  for (int i = 0; i < 50; ++i) {
    psi.apply_phase_oracle([](std::uint64_t x) { return x % 5 == 2; });
    psi.apply_diffusion();
    ASSERT_NEAR(psi.norm_squared(), 1.0, 1e-9);
  }
}

TEST(Statevector, GroverAmplifiesMarkedState) {
  // One marked item among 64: after ~pi/4*8 = 6 iterations the marked
  // probability should be near 1.
  Statevector psi(6);
  const std::uint64_t target = 37;
  for (int i = 0; i < 6; ++i) {
    psi.apply_phase_oracle([&](std::uint64_t x) { return x == target; });
    psi.apply_diffusion();
  }
  EXPECT_GT(psi.probability_of([&](std::uint64_t x) { return x == target; }),
            0.99);
}

TEST(Statevector, MeasurementFollowsAmplitudes) {
  Statevector psi(3);
  // Amplify state 5 strongly, then measure many times.
  for (int i = 0; i < 2; ++i) {
    psi.apply_phase_oracle([](std::uint64_t x) { return x == 5; });
    psi.apply_diffusion();
  }
  const double p5 =
      psi.probability_of([](std::uint64_t x) { return x == 5; });
  util::Xoshiro256 rng(77);
  int hits = 0;
  const int shots = 2000;
  for (int i = 0; i < shots; ++i) hits += (psi.measure(rng) == 5) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / shots, p5, 0.05);
}

TEST(Statevector, RejectsHugeQubitCounts) {
  EXPECT_THROW(Statevector(30), util::CheckError);
}

TEST(Grover, FindsUniqueSolutionWithHighProbability) {
  util::Xoshiro256 rng(11);
  int found = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t target = rng.below(50);
    const auto hit = grover_search(
        50, [&](std::uint64_t x) { return x == target; }, rng);
    if (hit.has_value() && *hit == target) ++found;
  }
  EXPECT_GE(found, trials - 2);
}

TEST(Grover, ReportsNoSolution) {
  util::Xoshiro256 rng(13);
  GroverStats stats;
  const auto hit = grover_search(
      32, [](std::uint64_t) { return false; }, rng, &stats);
  EXPECT_FALSE(hit.has_value());
  EXPECT_GT(stats.oracle_queries, 0u);
}

TEST(Grover, QueryCountScalesAsSqrtN) {
  util::Xoshiro256 rng(17);
  // Average queries for a unique solution at N and 16N should grow by
  // roughly 4x (allowing generous slack for the randomized schedule).
  const auto avg_queries = [&](std::uint64_t space, int trials) {
    std::uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
      GroverStats stats;
      const std::uint64_t target = rng.below(space);
      (void)grover_search(
          space, [&](std::uint64_t x) { return x == target; }, rng, &stats);
      total += stats.oracle_queries;
    }
    return static_cast<double>(total) / trials;
  };
  const double q_small = avg_queries(64, 40);
  const double q_big = avg_queries(1024, 40);
  const double ratio = q_big / q_small;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 11.0);
}

TEST(DurrHoyer, FindsMinimumMostOfTheTime) {
  util::Xoshiro256 rng(19);
  int exact = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::int64_t> values(60);
    for (auto& v : values) v = static_cast<std::int64_t>(rng.below(1000));
    values[rng.below(60)] = -5;  // unique minimum
    const MinFindResult r = durr_hoyer_min(values, rng, 3);
    if (values[r.best_index] == -5) ++exact;
    EXPECT_GT(r.oracle_queries, 0u);
  }
  EXPECT_GE(exact, trials - 2);
}

TEST(DurrHoyer, HandlesDuplicatesAndTinyArrays) {
  util::Xoshiro256 rng(23);
  const MinFindResult one = durr_hoyer_min({42}, rng);
  EXPECT_EQ(one.best_index, 0u);
  const MinFindResult dup = durr_hoyer_min({7, 7, 7, 7}, rng);
  EXPECT_EQ(dup.best_index < 4, true);
  std::vector<std::int64_t> values{3, 1, 1, 9};
  const MinFindResult r = durr_hoyer_min(values, rng, 2);
  EXPECT_EQ(values[r.best_index], 1);
}

TEST(AccountingFinder, ExactArgminAndQueryModel) {
  AccountingMinimumFinder finder(/*log_inv_eps=*/6.0);
  std::vector<std::int64_t> values{9, 2, 7, 2, 11};
  const MinOutcome out = finder.find_min(values);
  EXPECT_EQ(values[out.best_index], 2);
  EXPECT_FALSE(out.failed);
  EXPECT_NEAR(out.quantum_queries, std::sqrt(5.0) * 6.0, 1e-12);
}

TEST(AccountingFinder, FailureInjectionReturnsNonMinimum) {
  AccountingMinimumFinder finder(1.0, /*failure_rate=*/0.999, /*seed=*/3);
  std::vector<std::int64_t> values{5, 1, 8, 3};
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    const MinOutcome out = finder.find_min(values);
    if (out.failed) {
      ++failures;
      EXPECT_NE(values[out.best_index], 1);
    }
  }
  EXPECT_GE(failures, 45);
}

TEST(AccountingFinder, SingleElementNeverFails) {
  AccountingMinimumFinder finder(1.0, 0.99, 5);
  const MinOutcome out = finder.find_min({123});
  EXPECT_EQ(out.best_index, 0u);
  EXPECT_FALSE(out.failed);
}

TEST(GroverFinder, AgreesWithAccountingOnSmallArrays) {
  GroverMinimumFinder grover(4, 31);
  std::vector<std::int64_t> values{10, 3, 5, 8, 3, 12, 20, 9};
  int exact = 0;
  for (int t = 0; t < 10; ++t) {
    const MinOutcome out = grover.find_min(values);
    if (values[out.best_index] == 3) ++exact;
  }
  EXPECT_GE(exact, 9);
}

TEST(Finders, RejectEmptyInput) {
  AccountingMinimumFinder a;
  GroverMinimumFinder g;
  EXPECT_THROW(a.find_min({}), util::CheckError);
  EXPECT_THROW(g.find_min({}), util::CheckError);
}

}  // namespace
}  // namespace ovo::quantum
