// Determinism suite for the ovo::par layer and everything built on it:
// the thread pool primitives themselves, the rank-indexed Friedman–Supowit
// DP, the baseline searches, branch and bound, and the statevector sweeps.
// The contract under test: for integer-valued results, every thread count
// produces exactly the serial answer (including merged OpCounter totals);
// for floating-point reductions, all thread counts > 1 are bit-identical
// to each other (chunk-ordered folds with a fixed grain) and agree with
// the serial single-chunk fold to tight tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <complex>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "core/multi_output.hpp"
#include "parallel/exec_policy.hpp"
#include "parallel/thread_pool.hpp"
#include "quantum/grover.hpp"
#include "quantum/min_find.hpp"
#include "quantum/statevector.hpp"
#include "reorder/baselines.hpp"
#include "reorder/branch_and_bound.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"

namespace ovo {
namespace {

par::ExecPolicy policy(int threads) {
  par::ExecPolicy exec;
  exec.num_threads = threads;
  return exec;
}

// The PR 2 per-layer barrier engine, kept as the A/B reference: the
// determinism contract requires it to match the pipelined default
// bit-for-bit at every thread count.
par::ExecPolicy barrier_policy(int threads) {
  par::ExecPolicy exec = policy(threads);
  exec.pipeline = false;
  return exec;
}

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  par::ThreadPool& pool = par::ThreadPool::shared();
  for (const int threads : {1, 2, 4, 8}) {
    for (const std::uint64_t grain : {std::uint64_t{1}, std::uint64_t{3},
                                      std::uint64_t{16},
                                      std::uint64_t{1000}}) {
      std::vector<std::atomic<int>> counts(1000);
      pool.parallel_for(std::uint64_t{0}, counts.size(), grain, threads,
                        [&](std::uint64_t i, int slot) {
                          EXPECT_GE(slot, 0);
                          EXPECT_LT(slot, threads);
                          counts[i].fetch_add(1, std::memory_order_relaxed);
                        });
      for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
    }
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoop) {
  int calls = 0;
  par::ThreadPool::shared().parallel_for(
      std::uint64_t{5}, std::uint64_t{5}, 1, 8,
      [&](std::uint64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ExceptionInBodyPropagatesToCaller) {
  EXPECT_THROW(par::ThreadPool::shared().parallel_for(
                   std::uint64_t{0}, std::uint64_t{100}, 1, 4,
                   [](std::uint64_t i, int) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ReduceMatchesClosedFormForEveryThreadCount) {
  const std::uint64_t n = 10000;
  const std::uint64_t expected = n * (n - 1) / 2;
  for (const int threads : {1, 2, 4, 8}) {
    const std::uint64_t sum = par::ThreadPool::shared().parallel_reduce(
        std::uint64_t{0}, n, std::uint64_t{64}, threads, std::uint64_t{0},
        [](std::uint64_t lo, std::uint64_t hi) {
          std::uint64_t s = 0;
          for (std::uint64_t i = lo; i < hi; ++i) s += i;
          return s;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, expected) << "threads=" << threads;
  }
}

// Non-commutative combine exposes the fold order: concatenating chunk
// labels must yield the ascending-chunk string for every thread count > 1.
TEST(ThreadPool, ReduceFoldsPartialsInChunkOrder) {
  const auto run = [](int threads) {
    return par::ThreadPool::shared().parallel_reduce(
        std::uint64_t{0}, std::uint64_t{100}, std::uint64_t{7}, threads,
        std::string{},
        [](std::uint64_t lo, std::uint64_t hi) {
          return "[" + std::to_string(lo) + "," + std::to_string(hi) + ")";
        },
        [](std::string a, std::string b) { return a + b; });
  };
  const std::string two = run(2);
  EXPECT_EQ(two, run(4));
  EXPECT_EQ(two, run(8));
  std::string expected;
  for (std::uint64_t lo = 0; lo < 100; lo += 7)
    expected += "[" + std::to_string(lo) + "," +
                std::to_string(std::min<std::uint64_t>(lo + 7, 100)) + ")";
  EXPECT_EQ(two, expected);
}

TEST(ThreadPool, NestedRegionsRunSeriallyWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  par::ThreadPool::shared().parallel_for(
      std::uint64_t{0}, std::uint64_t{8}, 1, 4, [&](std::uint64_t, int) {
        par::ThreadPool::shared().parallel_for(
            std::uint64_t{0}, std::uint64_t{10}, 1, 4,
            [&](std::uint64_t, int inner_slot) {
              EXPECT_EQ(inner_slot, 0);  // inner region must not fan out
              inner_total.fetch_add(1, std::memory_order_relaxed);
            });
      });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ExecPolicy, SerialDefaultsAndAutoDetect) {
  const par::ExecPolicy serial;
  EXPECT_TRUE(serial.serial());
  EXPECT_EQ(serial.resolved_threads(), 1);
  const par::ExecPolicy auto_policy = par::ExecPolicy::auto_detect();
  EXPECT_GE(auto_policy.resolved_threads(), 1);
}

// ------------------------------------------------------------------ DP --

void expect_same_minimize(const core::MinimizeResult& a,
                          const core::MinimizeResult& b, int threads) {
  EXPECT_EQ(a.min_internal_nodes, b.min_internal_nodes)
      << "threads=" << threads;
  EXPECT_EQ(a.order_root_first, b.order_root_first) << "threads=" << threads;
  EXPECT_EQ(a.ops.table_cells, b.ops.table_cells) << "threads=" << threads;
  EXPECT_EQ(a.ops.compactions, b.ops.compactions) << "threads=" << threads;
  EXPECT_EQ(a.ops.peak_cells, b.ops.peak_cells) << "threads=" << threads;
  EXPECT_EQ(a.ops.dedup.lookups, b.ops.dedup.lookups)
      << "threads=" << threads;
}

TEST(FsDeterminism, BddIdenticalAcrossThreadCountsUpToN13) {
  util::Xoshiro256 rng(99);
  for (const int n : {5, 9, 13}) {
    const tt::TruthTable f = tt::random_function(n, rng);
    const core::MinimizeResult serial = core::fs_minimize(f);
    for (const int threads : {2, 4, 8}) {
      const core::MinimizeResult par_r =
          core::fs_minimize(f, core::DiagramKind::kBdd, policy(threads));
      expect_same_minimize(serial, par_r, threads);
      const core::MinimizeResult barrier_r = core::fs_minimize(
          f, core::DiagramKind::kBdd, barrier_policy(threads));
      expect_same_minimize(serial, barrier_r, threads);
    }
  }
}

TEST(FsDeterminism, ZddIdenticalAcrossThreadCounts) {
  util::Xoshiro256 rng(7);
  const tt::TruthTable f = tt::random_function(10, rng);
  const core::MinimizeResult serial = core::fs_minimize_zdd(f);
  for (const int threads : {2, 4, 8}) {
    expect_same_minimize(serial, core::fs_minimize_zdd(f, policy(threads)),
                         threads);
    expect_same_minimize(
        serial, core::fs_minimize_zdd(f, barrier_policy(threads)), threads);
  }
}

TEST(FsDeterminism, MtbddIdenticalAcrossThreadCounts) {
  util::Xoshiro256 rng(21);
  const int n = 9;
  std::vector<std::int64_t> values(std::uint64_t{1} << n);
  for (auto& v : values) v = static_cast<std::int64_t>(rng.below(5));
  const core::MinimizeResult serial = core::fs_minimize_mtbdd(values, n);
  for (const int threads : {2, 4, 8}) {
    expect_same_minimize(
        serial, core::fs_minimize_mtbdd(values, n, policy(threads)), threads);
    expect_same_minimize(
        serial, core::fs_minimize_mtbdd(values, n, barrier_policy(threads)),
        threads);
  }
}

TEST(FsDeterminism, SharedDiagramIdenticalAcrossThreadCounts) {
  util::Xoshiro256 rng(33);
  std::vector<tt::TruthTable> outputs;
  for (int i = 0; i < 3; ++i) outputs.push_back(tt::random_function(7, rng));
  const core::MultiMinimizeResult serial = core::fs_minimize_shared(outputs);
  for (const int threads : {2, 8}) {
    const core::MultiMinimizeResult par_r = core::fs_minimize_shared(
        outputs, core::DiagramKind::kBdd, policy(threads));
    EXPECT_EQ(serial.min_internal_nodes, par_r.min_internal_nodes);
    EXPECT_EQ(serial.order_root_first, par_r.order_root_first);
    EXPECT_EQ(serial.ops.table_cells, par_r.ops.table_cells);
  }
}

// The stop-early form returns one table per k-subset; every cell of every
// table (and every back-pointer) must be bit-identical to the serial run,
// for the pipelined default AND the pipeline=false barrier engine.
TEST(FsDeterminism, FsStarLayerTablesBitIdentical) {
  util::Xoshiro256 rng(4242);
  const tt::TruthTable f = tt::random_function(9, rng);
  const core::PrefixTable base = core::initial_table(f);
  const util::Mask J = util::full_mask(9);
  const core::FsStarResult serial =
      core::fs_star(base, J, /*stop_k=*/5, core::DiagramKind::kBdd);
  const auto expect_same = [&](const core::FsStarResult& par_r, int threads,
                               const char* engine) {
    EXPECT_EQ(par_r.best_last, serial.best_last)
        << engine << " threads=" << threads;
    EXPECT_EQ(par_r.mincost, serial.mincost)
        << engine << " threads=" << threads;
    ASSERT_EQ(par_r.tables.size(), serial.tables.size());
    for (const auto& [mask, table] : serial.tables) {
      const auto it = par_r.tables.find(mask);
      ASSERT_NE(it, par_r.tables.end());
      EXPECT_EQ(it->second.cells, table.cells);
      EXPECT_EQ(it->second.next_id, table.next_id);
      EXPECT_EQ(it->second.vars, table.vars);
    }
  };
  for (const int threads : {2, 4, 8}) {
    expect_same(core::fs_star(base, J, 5, core::DiagramKind::kBdd, nullptr,
                              policy(threads)),
                threads, "pipelined");
    expect_same(core::fs_star(base, J, 5, core::DiagramKind::kBdd, nullptr,
                              barrier_policy(threads)),
                threads, "barrier");
  }
}

// ----------------------------------------------------------- baselines --

TEST(BaselineDeterminism, BruteForceIdenticalAcrossThreadCounts) {
  util::Xoshiro256 rng(11);
  const tt::TruthTable f = tt::random_function(6, rng);
  const reorder::OrderSearchResult serial = reorder::brute_force_minimize(f);
  for (const int threads : {2, 4, 8}) {
    const reorder::OrderSearchResult par_r = reorder::brute_force_minimize(
        f, core::DiagramKind::kBdd, policy(threads));
    EXPECT_EQ(par_r.order_root_first, serial.order_root_first);
    EXPECT_EQ(par_r.internal_nodes, serial.internal_nodes);
    EXPECT_EQ(par_r.worst_internal_nodes, serial.worst_internal_nodes);
    EXPECT_EQ(par_r.orders_evaluated, serial.orders_evaluated);
  }
}

TEST(BaselineDeterminism, SiftAndWindowIdenticalAcrossThreadCounts) {
  util::Xoshiro256 rng(12);
  const tt::TruthTable f = tt::random_function(8, rng);
  std::vector<int> id(8);
  std::iota(id.begin(), id.end(), 0);
  const reorder::OrderSearchResult sift_serial = reorder::sift(f, id);
  const reorder::OrderSearchResult window_serial =
      reorder::window_permute(f, id, 3);
  for (const int threads : {2, 8}) {
    const reorder::OrderSearchResult sift_par =
        reorder::sift(f, id, core::DiagramKind::kBdd, 8, policy(threads));
    EXPECT_EQ(sift_par.order_root_first, sift_serial.order_root_first);
    EXPECT_EQ(sift_par.internal_nodes, sift_serial.internal_nodes);
    EXPECT_EQ(sift_par.orders_evaluated, sift_serial.orders_evaluated);
    const reorder::OrderSearchResult window_par = reorder::window_permute(
        f, id, 3, core::DiagramKind::kBdd, 8, policy(threads));
    EXPECT_EQ(window_par.order_root_first, window_serial.order_root_first);
    EXPECT_EQ(window_par.internal_nodes, window_serial.internal_nodes);
    EXPECT_EQ(window_par.orders_evaluated, window_serial.orders_evaluated);
  }
}

TEST(BaselineDeterminism, RandomRestartSameRngStreamAndResult) {
  util::Xoshiro256 rng_serial(13), rng_par(13);
  const tt::TruthTable f = tt::random_function(8, rng_serial);
  util::Xoshiro256 rng_par_f(13);
  const tt::TruthTable f2 = tt::random_function(8, rng_par_f);
  const reorder::OrderSearchResult serial =
      reorder::random_restart(f, 20, rng_serial);
  const reorder::OrderSearchResult par_r = reorder::random_restart(
      f2, 20, rng_par_f, core::DiagramKind::kBdd, policy(4));
  EXPECT_EQ(par_r.order_root_first, serial.order_root_first);
  EXPECT_EQ(par_r.internal_nodes, serial.internal_nodes);
  // The RNG streams must end in the same state (same draws in order).
  EXPECT_EQ(rng_serial.below(std::uint64_t{1} << 30),
            rng_par_f.below(std::uint64_t{1} << 30));
}

TEST(BaselineDeterminism, BranchAndBoundStatsIdenticalAcrossThreadCounts) {
  util::Xoshiro256 rng(14);
  const tt::TruthTable f = tt::random_function(8, rng);
  const reorder::BnbResult serial = reorder::branch_and_bound_minimize(f);
  for (const int threads : {2, 8}) {
    const reorder::BnbResult par_r = reorder::branch_and_bound_minimize(
        f, core::DiagramKind::kBdd, ~std::uint64_t{0}, policy(threads));
    EXPECT_EQ(par_r.order_root_first, serial.order_root_first);
    EXPECT_EQ(par_r.internal_nodes, serial.internal_nodes);
    EXPECT_EQ(par_r.states_expanded, serial.states_expanded);
    EXPECT_EQ(par_r.states_pruned_bound, serial.states_pruned_bound);
    EXPECT_EQ(par_r.states_pruned_dominance, serial.states_pruned_dominance);
  }
}

// ---------------------------------------------------------- statevector --

// Thread counts > 1 share fixed chunk boundaries and a chunk-ordered fold,
// so their amplitudes are bit-identical; the serial path folds the range
// as one chunk, differing only by FP association (tolerance 1e-12).
TEST(StatevectorDeterminism, SweepsBitIdenticalForAllParallelThreadCounts) {
  const int qubits = 14;  // 16384 amplitudes = 4 chunks of kAmpGrain
  const auto evolve = [&](int threads) {
    quantum::Statevector psi(qubits);
    psi.set_exec_policy(policy(threads));
    for (int iter = 0; iter < 3; ++iter) {
      psi.apply_phase_oracle([](std::uint64_t x) { return x % 7 == 3; });
      psi.apply_diffusion();
    }
    return psi;
  };
  const quantum::Statevector serial = evolve(1);
  const quantum::Statevector two = evolve(2);
  for (const int threads : {4, 8}) {
    const quantum::Statevector par_psi = evolve(threads);
    ASSERT_EQ(par_psi.amplitudes().size(), two.amplitudes().size());
    for (std::size_t x = 0; x < two.amplitudes().size(); ++x)
      EXPECT_EQ(par_psi.amplitudes()[x], two.amplitudes()[x])
          << "threads=" << threads << " x=" << x;
  }
  for (std::size_t x = 0; x < two.amplitudes().size(); ++x)
    EXPECT_NEAR(std::abs(two.amplitudes()[x] - serial.amplitudes()[x]), 0.0,
                1e-12);
  EXPECT_EQ(two.norm_squared(), evolve(4).norm_squared());
  EXPECT_NEAR(two.norm_squared(), serial.norm_squared(), 1e-12);
  const auto parity = [](std::uint64_t x) {
    return (util::popcount(x) & 1) == 0;
  };
  EXPECT_NEAR(two.probability_of(parity), serial.probability_of(parity),
              1e-12);
}

TEST(StatevectorDeterminism, GroverMinFinderIdenticalBetweenThreadCounts) {
  std::vector<std::int64_t> values(500);
  util::Xoshiro256 rng(77);
  for (auto& v : values) v = static_cast<std::int64_t>(rng.below(1000));
  values[137] = -5;  // unique minimum
  quantum::GroverMinimumFinder two(/*rounds=*/2, /*seed=*/5, policy(2));
  quantum::GroverMinimumFinder eight(/*rounds=*/2, /*seed=*/5, policy(8));
  const quantum::MinOutcome a = two.find_min(values);
  const quantum::MinOutcome b = eight.find_min(values);
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_EQ(a.quantum_queries, b.quantum_queries);
  EXPECT_EQ(a.failed, b.failed);
}

}  // namespace
}  // namespace ovo
