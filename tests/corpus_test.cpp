// Regression corpus replay: every file under tests/data/corpus/ goes
// through the exact harness bodies the fuzz targets use (fuzz_one.hpp).
// The corpus is the fuzzer's memory — each file encodes a malformed-input
// class (truncated frames, CRC flips, oversized counts, deep nesting,
// dangling references) that the decoders must reject with a *typed*
// error, never a crash, an OOM, or an untyped exception.  This test runs
// in tier-1 on every build; the coverage-guided fuzzers (OVO_FUZZ) only
// ever *add* files here.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "fuzz_one.hpp"

namespace ovo {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// Replays every file in corpus subdirectory `category` through `one`.
/// The harness body absorbs the typed rejections; anything escaping here
/// is a finding and fails the test with the offending file named.
void replay_category(
    const std::string& category,
    const std::function<int(const std::uint8_t*, std::size_t)>& one) {
  const fs::path dir = fs::path(OVO_CORPUS_DIR) / category;
  ASSERT_TRUE(fs::is_directory(dir)) << dir << " missing";
  std::size_t replayed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::vector<std::uint8_t> data = slurp(entry.path());
    try {
      one(data.data(), data.size());
    } catch (const std::exception& e) {
      FAIL() << "untyped escape replaying " << entry.path() << ": "
             << e.what();
    }
    ++replayed;
  }
  // An empty category would silently test nothing — that is a test bug.
  EXPECT_GE(replayed, 4u) << "corpus category '" << category
                          << "' is suspiciously small";
}

TEST(Corpus, Blif) { replay_category("blif", fuzz::one_blif); }
TEST(Corpus, Pla) { replay_category("pla", fuzz::one_pla); }
TEST(Corpus, Expr) { replay_category("expr", fuzz::one_expr); }
TEST(Corpus, Snapshot) { replay_category("snapshot", fuzz::one_snapshot); }
TEST(Corpus, Diagram) { replay_category("diagram", fuzz::one_diagram); }

// The corpus' valid exemplars must actually be valid — a corpus where
// even the well-formed files fail to parse would still "pass" replay, so
// pin the positive paths explicitly.
TEST(Corpus, ValidExemplarsParse) {
  const fs::path dir(OVO_CORPUS_DIR);
  {
    const auto data = slurp(dir / "diagram" / "valid_bdd.txt");
    const bdd::LoadedBdd loaded =
        bdd::load_bdd(std::string(data.begin(), data.end()));
    EXPECT_EQ(loaded.manager.num_vars(), 2);
  }
  {
    const auto data = slurp(dir / "diagram" / "valid_bdd.bin");
    const bdd::LoadedBdd loaded =
        bdd::load_bdd_binary(data.data(), data.size());
    EXPECT_EQ(loaded.manager.num_vars(), 2);
  }
  {
    const auto data = slurp(dir / "diagram" / "valid_zdd.bin");
    const zdd::LoadedZdd loaded =
        zdd::load_zdd_binary(data.data(), data.size());
    EXPECT_EQ(loaded.manager.num_vars(), 2);
  }
  {
    const auto data = slurp(dir / "pla" / "valid_small.pla");
    const tt::Pla pla = tt::parse_pla(std::string(data.begin(), data.end()));
    EXPECT_EQ(pla.num_inputs, 3);
  }
  {
    const auto data = slurp(dir / "blif" / "valid_small.blif");
    const tt::BlifModel m =
        tt::parse_blif(std::string(data.begin(), data.end()));
    EXPECT_EQ(m.inputs.size(), 2u);
  }
  {
    const auto data = slurp(dir / "expr" / "valid_small.expr");
    EXPECT_NE(tt::parse_expr(std::string(data.begin(), data.end())), nullptr);
  }
  {
    // The CRC-valid frame with a garbage payload must pass the container
    // layer and fail *semantic* validation, proving the decode layers
    // compose (framing cannot vouch for payload structure).
    const auto data = slurp(dir / "snapshot" / "garbage_payload_valid_crc.bin");
    const rt::CheckpointData d =
        rt::parse_checkpoint(data.data(), data.size(), 0, ~std::uint32_t{0});
    EXPECT_THROW(core::decode_snapshot(d.payload.data(), d.payload.size()),
                 rt::CheckpointError);
  }
}

}  // namespace
}  // namespace ovo
