// Unit and property tests for ovo::util — bit manipulation, combinatorics,
// RNG determinism, and exponent fitting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"
#include "util/fit.hpp"
#include "util/rng.hpp"

namespace ovo::util {
namespace {

TEST(Bits, FullMask) {
  EXPECT_EQ(full_mask(0), 0u);
  EXPECT_EQ(full_mask(1), 1u);
  EXPECT_EQ(full_mask(6), 0x3Fu);
  EXPECT_EQ(full_mask(64), ~Mask{0});
}

TEST(Bits, PopcountAndLowestBit) {
  EXPECT_EQ(popcount(0b1011u), 3);
  EXPECT_EQ(lowest_bit(0b1000u), 3);
  EXPECT_EQ(lowest_bit(1u), 0);
}

TEST(Bits, IsSubset) {
  EXPECT_TRUE(is_subset(0b0101, 0b1101));
  EXPECT_FALSE(is_subset(0b0101, 0b1001));
  EXPECT_TRUE(is_subset(0, 0));
  EXPECT_TRUE(is_subset(0, 0b111));
}

TEST(Bits, GosperEnumeratesAllKSubsets) {
  for (int n = 0; n <= 10; ++n) {
    for (int k = 0; k <= n; ++k) {
      std::set<Mask> seen;
      for_each_subset_of_size(n, k, [&](Mask m) {
        EXPECT_EQ(popcount(m), k);
        EXPECT_TRUE(is_subset(m, full_mask(n)));
        EXPECT_TRUE(seen.insert(m).second) << "duplicate mask";
      });
      EXPECT_EQ(seen.size(), binomial_u64(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Bits, SubsetOfEnumeration) {
  const Mask super = 0b10110;
  std::set<Mask> seen;
  for_each_subset_of(super, [&](Mask s) {
    EXPECT_TRUE(is_subset(s, super));
    EXPECT_TRUE(seen.insert(s).second);
  });
  EXPECT_EQ(seen.size(), 8u);  // 2^3 subsets of a 3-element set
}

TEST(Bits, BitsOfMaskOfRoundtrip) {
  const Mask m = 0b1010011;
  EXPECT_EQ(mask_of(bits_of(m)), m);
  EXPECT_EQ(bits_of(m), (std::vector<int>{0, 1, 4, 6}));
}

TEST(Bits, ScatterGatherRoundtrip) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Mask mask = rng() & full_mask(20);
    const int k = popcount(mask);
    const std::uint64_t value = rng() & full_mask(k);
    const std::uint64_t scattered = scatter_bits(value, mask);
    EXPECT_TRUE(is_subset(scattered, mask));
    EXPECT_EQ(gather_bits(scattered, mask), value);
  }
}

TEST(Bits, ScatterConcrete) {
  // Place bits 0b101 into positions {1, 3, 6}: bit0->1, bit1->3, bit2->6.
  EXPECT_EQ(scatter_bits(0b101, 0b1001010), (1u << 1) | (1u << 6));
}

TEST(Combinatorics, BinomialMatchesPascal) {
  for (int n = 0; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      const std::uint64_t expected =
          (k == 0 || k == n)
              ? 1
              : binomial_u64(n - 1, k - 1) + binomial_u64(n - 1, k);
      EXPECT_EQ(binomial_u64(n, k), expected);
      EXPECT_NEAR(binomial(n, k), static_cast<double>(expected),
                  1e-6 * static_cast<double>(expected) + 1e-9);
    }
  }
}

TEST(Combinatorics, BinomialEdges) {
  EXPECT_EQ(binomial_u64(5, -1), 0u);
  EXPECT_EQ(binomial_u64(5, 6), 0u);
  EXPECT_EQ(binomial_u64(0, 0), 1u);
}

// Regression: the 64-bit-guarded implementation spuriously threw on
// binom(62, 31) — the running product momentarily exceeds 64 bits even
// though every binomial coefficient along the way (and the result) fits.
// The 128-bit intermediates must return every representable value exactly
// and throw only when the result itself does not fit.
TEST(Combinatorics, BinomialNearOverflowBoundary) {
  EXPECT_EQ(binomial_u64(62, 31), 465428353255261088ull);
  EXPECT_EQ(binomial_u64(64, 32), 1832624140942590534ull);
  EXPECT_EQ(binomial_u64(66, 33), 7219428434016265740ull);
  // The largest central coefficient that fits in 64 bits.
  EXPECT_EQ(binomial_u64(67, 33), 14226520737620288370ull);
  EXPECT_EQ(binomial_u64(67, 34), 14226520737620288370ull);
  // binom(68, 34) ~ 2.8e19 > 2^64 - 1: a true overflow.
  EXPECT_THROW(binomial_u64(68, 34), CheckError);
  // Far off-center coefficients of huge n still fit and must not throw.
  EXPECT_EQ(binomial_u64(500, 2), 124750u);
  EXPECT_EQ(binomial_u64(200, 5), 2535650040ull);
}

// choose() must hard-throw (not silently read out of bounds in NDEBUG
// builds) when n exceeds the table.
TEST(Combinatorics, BinomialTableRejectsOutOfRangeN) {
  const BinomialTable& table = BinomialTable::instance();
  EXPECT_EQ(table.choose(BinomialTable::kMaxN, 1),
            static_cast<std::uint64_t>(BinomialTable::kMaxN));
  EXPECT_THROW(table.choose(BinomialTable::kMaxN + 1, 1), CheckError);
  EXPECT_THROW(table.choose(-1, 0), CheckError);
}

TEST(Combinatorics, EntropyBasics) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_NEAR(binary_entropy(0.25), 0.811278, 1e-6);
  EXPECT_THROW(binary_entropy(-0.1), CheckError);
}

// The paper's Sec. 2.1 bound: binom(n, k) <= 2^{n H(k/n)}.
TEST(Combinatorics, EntropyBoundDominatesBinomial) {
  for (int n = 1; n <= 40; ++n)
    for (int k = 0; k <= n; ++k)
      EXPECT_LE(binomial(n, k), entropy_bound(n, k) * (1.0 + 1e-12))
          << "n=" << n << " k=" << k;
}

TEST(Combinatorics, CombinationRankUnrankRoundtrip) {
  for (int n = 1; n <= 12; ++n) {
    for (int k = 0; k <= n; ++k) {
      std::uint64_t expected_rank = 0;
      for_each_subset_of_size(n, k, [&](Mask m) {
        EXPECT_EQ(combination_rank(m), expected_rank);
        EXPECT_EQ(combination_unrank(n, k, expected_rank), m);
        ++expected_rank;
      });
    }
  }
}

TEST(Combinatorics, UnrankOutOfRangeThrows) {
  EXPECT_THROW(combination_unrank(5, 2, binomial_u64(5, 2)), CheckError);
}

TEST(Combinatorics, BinomialTableMatchesBinomialU64) {
  const BinomialTable& table = BinomialTable::instance();
  for (int n = 0; n <= 32; ++n)
    for (int k = -1; k <= n + 1; ++k)
      EXPECT_EQ(table.choose(n, k), binomial_u64(n, k))
          << "n=" << n << " k=" << k;
}

// The property the rank-indexed DP layers rely on: Gosper enumeration of
// k-subsets visits exactly ranks 0, 1, 2, ... (colex order), and the
// table-driven rank/unrank agree with combination_rank/unrank on every
// subset of every size, n <= 16.
TEST(Combinatorics, BinomialTableRankUnrankRoundtripAllSubsets) {
  const BinomialTable& table = BinomialTable::instance();
  for (int n = 1; n <= 16; ++n) {
    for (int k = 0; k <= n; ++k) {
      std::uint64_t expected_rank = 0;
      for_each_subset_of_size(n, k, [&](Mask m) {
        EXPECT_EQ(table.rank(m), expected_rank);
        EXPECT_EQ(table.rank(m), combination_rank(m));
        EXPECT_EQ(table.unrank(n, k, expected_rank), m);
        ++expected_rank;
      });
      EXPECT_EQ(expected_rank, table.choose(n, k));
    }
  }
}

TEST(Combinatorics, FactorialValues) {
  EXPECT_DOUBLE_EQ(factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(factorial(10), 3628800.0);
}

TEST(Combinatorics, AllPermutationsCountAndUniqueness) {
  const auto perms = all_permutations(4);
  EXPECT_EQ(perms.size(), 24u);
  std::set<std::vector<int>> unique(perms.begin(), perms.end());
  EXPECT_EQ(unique.size(), 24u);
  for (const auto& p : perms) EXPECT_TRUE(is_permutation(p));
}

TEST(Combinatorics, PermutationUnrankLexOrder) {
  const auto perms = all_permutations(5);
  for (std::uint64_t r = 0; r < perms.size(); ++r)
    EXPECT_EQ(permutation_unrank(5, r), perms[r]);
  EXPECT_THROW(permutation_unrank(3, 6), CheckError);
}

TEST(Combinatorics, InversePermutation) {
  const std::vector<int> p{2, 0, 3, 1};
  const std::vector<int> inv = inverse_permutation(p);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_EQ(inv[static_cast<std::size_t>(p[i])], static_cast<int>(i));
}

TEST(Combinatorics, IsPermutationRejectsBadInputs) {
  EXPECT_TRUE(is_permutation({0, 1, 2}));
  EXPECT_FALSE(is_permutation({0, 0, 2}));
  EXPECT_FALSE(is_permutation({0, 1, 3}));
  EXPECT_FALSE(is_permutation({-1, 0, 1}));
  EXPECT_TRUE(is_permutation({}));
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowRespectsBound) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(2);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Fit, RecoversExactExponential) {
  std::vector<int> n;
  std::vector<double> y;
  for (int i = 4; i <= 14; ++i) {
    n.push_back(i);
    y.push_back(7.5 * std::pow(3.0, i));
  }
  const ExponentFit fit = fit_exponent(n, y);
  EXPECT_NEAR(fit.base, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, std::log2(7.5), 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Fit, RejectsDegenerateInputs) {
  EXPECT_THROW(fit_exponent({1}, {2.0}), CheckError);
  EXPECT_THROW(fit_exponent({1, 2}, {1.0, -1.0}), CheckError);
  EXPECT_THROW(fit_exponent({3, 3}, {1.0, 2.0}), CheckError);
}

TEST(Check, MacrosThrowWithContext) {
  try {
    OVO_CHECK_MSG(false, "custom context");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ovo::util
