// End-to-end flows: every Corollary 2 input representation -> tabulation ->
// exact minimization -> rebuild & verify, plus cross-module consistency.

#include <gtest/gtest.h>

#include <numeric>

#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "quantum/min_find.hpp"
#include "quantum/opt_obdd.hpp"
#include "reorder/baselines.hpp"
#include "tt/circuit.hpp"
#include "tt/expr.hpp"
#include "tt/function_zoo.hpp"
#include "tt/normal_forms.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"
#include "zdd/manager.hpp"

namespace ovo {
namespace {

// Pipeline helper: minimize a truth table and verify the result end to end.
void check_minimize_pipeline(const tt::TruthTable& t) {
  const core::MinimizeResult r = core::fs_minimize(t);
  ASSERT_TRUE(util::is_permutation(r.order_root_first));
  bdd::Manager m(t.num_vars(), r.order_root_first);
  const bdd::NodeId root = m.from_truth_table(t);
  EXPECT_EQ(m.size(root), r.min_internal_nodes);
  EXPECT_EQ(m.to_truth_table(root), t);
}

TEST(Integration, FromExpression) {
  const tt::ExprPtr e =
      tt::parse_expr("(x1 & x2) | (x3 & x4) | (x5 & x6)");
  const tt::TruthTable t = tt::expr_to_truth_table(*e, 6);
  const core::MinimizeResult r = core::fs_minimize(t);
  EXPECT_EQ(r.min_internal_nodes, 6u);  // Fig. 1
  check_minimize_pipeline(t);
}

TEST(Integration, FromDnf) {
  util::Xoshiro256 rng(1);
  const tt::Dnf d = tt::random_dnf(6, 6, 2, rng);
  check_minimize_pipeline(d.to_truth_table());
}

TEST(Integration, FromCnf) {
  util::Xoshiro256 rng(2);
  const tt::Cnf c = tt::random_cnf(6, 6, 3, rng);
  check_minimize_pipeline(c.to_truth_table());
}

TEST(Integration, FromCircuit) {
  const tt::Circuit ckt = tt::Circuit::ripple_carry_out(3);
  const tt::TruthTable t = ckt.to_truth_table();
  check_minimize_pipeline(t);
  // The carry function's blocked-operand ordering is poor; the optimum
  // should beat or match the identity ordering.
  std::vector<int> id(6);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_LE(core::fs_minimize(t).min_internal_nodes,
            core::diagram_size_for_order(t, id));
}

TEST(Integration, FromExistingObddRepresentation) {
  // Corollary 2 with R(f) = an OBDD under a *bad* ordering: rebuild the
  // truth table by evaluating the BDD, then find the optimal ordering.
  const tt::TruthTable t = tt::pair_sum(3);
  bdd::Manager bad(6, tt::pair_sum_interleaved_order(3));
  const bdd::NodeId bad_root = bad.from_truth_table(t);
  EXPECT_EQ(bad.size(bad_root), 14u);
  // Tabulate from the OBDD (the paper's O*(2^n) preparation).
  const tt::TruthTable recovered = bad.to_truth_table(bad_root);
  const core::MinimizeResult r = core::fs_minimize(recovered);
  EXPECT_EQ(r.min_internal_nodes, 6u);
}

TEST(Integration, AllEnginesAgreeOnOptimum) {
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    const tt::TruthTable t = tt::random_function(6, rng);
    const std::uint64_t fs = core::fs_minimize(t).min_internal_nodes;
    const std::uint64_t bf =
        reorder::brute_force_minimize(t).internal_nodes;
    quantum::AccountingMinimumFinder finder(6.0);
    quantum::OptObddOptions opt;
    opt.alphas = {0.27};
    opt.finder = &finder;
    const std::uint64_t q =
        quantum::opt_obdd_minimize(t, opt).min_internal_nodes;
    EXPECT_EQ(fs, bf);
    EXPECT_EQ(fs, q);
  }
}

TEST(Integration, ZddAndBddMinimaRelateSanely) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    const tt::TruthTable t = tt::random_function(5, rng);
    const auto b = core::fs_minimize(t, core::DiagramKind::kBdd);
    const auto z = core::fs_minimize(t, core::DiagramKind::kZdd);
    // Both orders must reproduce f through their managers.
    bdd::Manager bm(5, b.order_root_first);
    EXPECT_EQ(bm.to_truth_table(bm.from_truth_table(t)), t);
    zdd::Manager zm(5, z.order_root_first);
    EXPECT_EQ(zm.to_truth_table(zm.from_truth_table(t)), t);
  }
}

TEST(Integration, MtbddPipeline) {
  // A 2-bit adder as a multi-valued function: f(a) = u + v over 4 vars.
  const int n = 4;
  std::vector<std::int64_t> values(16);
  for (std::uint64_t a = 0; a < 16; ++a)
    values[a] = static_cast<std::int64_t>((a & 3u) + ((a >> 2) & 3u));
  const core::MinimizeResult r = core::fs_minimize_mtbdd(values, n);
  EXPECT_TRUE(util::is_permutation(r.order_root_first));
  EXPECT_EQ(core::diagram_size_for_order_values(values, n,
                                                r.order_root_first),
            r.min_internal_nodes);
}

TEST(Integration, EquivalenceCheckingViaCanonicity) {
  // Two structurally different implementations of the same function have
  // identical BDD roots in one manager (the classic verification flow).
  const tt::Circuit impl1 = tt::Circuit::ripple_carry_out(3);
  const tt::TruthTable spec = tt::adder_carry(6);
  // impl1 uses blocked operands; the spec zoo function uses interleaved
  // ones. Re-map: blocked var i must read the role of interleaved var 2i
  // (u_i) and blocked var 3+i that of 2i+1 (v_i), i.e. perm[i] = 2i,
  // perm[3+i] = 2i+1 in permute_inputs's convention.
  const tt::TruthTable spec_blocked =
      spec.permute_inputs({0, 2, 4, 1, 3, 5});
  bdd::Manager m(6);
  EXPECT_EQ(m.from_truth_table(impl1.to_truth_table()),
            m.from_truth_table(spec_blocked));
}

TEST(Integration, OrderingQualityReportAcrossMethods) {
  // For a structured function, exact <= sifting <= worst; all consistent.
  const tt::TruthTable t = tt::indirect_storage_access(7);
  const std::uint64_t opt = core::fs_minimize(t).min_internal_nodes;
  std::vector<int> id(7);
  std::iota(id.begin(), id.end(), 0);
  const auto sifted = reorder::sift(t, id);
  EXPECT_LE(opt, sifted.internal_nodes);
  util::Xoshiro256 rng(3);
  const auto rnd = reorder::random_restart(t, 20, rng);
  EXPECT_LE(opt, rnd.internal_nodes);
}

}  // namespace
}  // namespace ovo
