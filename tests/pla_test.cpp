// Tests for the Berkeley PLA reader/writer and its integration with the
// minimization pipeline.

#include <gtest/gtest.h>

#include "core/minimize.hpp"
#include "core/multi_output.hpp"
#include "tt/function_zoo.hpp"
#include "tt/parse_error.hpp"
#include "tt/pla.hpp"
#include "util/check.hpp"

namespace ovo::tt {
namespace {

const char* kXorPla = R"(# 2-input xor
.i 2
.o 1
.p 2
01 1
10 1
.e
)";

TEST(PlaParse, XorExample) {
  const Pla p = parse_pla(kXorPla);
  EXPECT_EQ(p.num_inputs, 2);
  EXPECT_EQ(p.num_outputs, 1);
  ASSERT_EQ(p.cubes.size(), 2u);
  EXPECT_EQ(p.output_table(0), parity(2));
}

TEST(PlaParse, DontCaresInCubes) {
  const Pla p = parse_pla(".i 3\n.o 1\n1-0 1\n.e\n");
  // Covers assignments with x0=1, x2=0, any x1.
  const TruthTable t = p.output_table(0);
  EXPECT_EQ(t.count_ones(), 2u);
  EXPECT_TRUE(t.get(0b001));
  EXPECT_TRUE(t.get(0b011));
  EXPECT_FALSE(t.get(0b101));
}

TEST(PlaParse, MultiOutput) {
  const Pla p = parse_pla(
      ".i 2\n.o 2\n.ilb a b\n.ob f g\n11 10\n01 01\n10 01\n.e\n");
  EXPECT_EQ(p.input_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(p.output_names, (std::vector<std::string>{"f", "g"}));
  EXPECT_EQ(p.output_table(0), conjunction(2));  // f = a & b
  EXPECT_EQ(p.output_table(1), parity(2));       // g = a ^ b
  EXPECT_EQ(p.output_tables().size(), 2u);
}

TEST(PlaParse, OutputDnfMatchesTable) {
  const Pla p = parse_pla(".i 3\n.o 1\n.p 2\n1-1 1\n010 1\n.e\n");
  EXPECT_EQ(p.output_dnf(0).to_truth_table(), p.output_table(0));
}

TEST(PlaParse, Errors) {
  EXPECT_THROW(parse_pla(""), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n01 1\n.e\n"), util::CheckError);  // no .o
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n011 1\n.e\n"), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n0x 1\n.e\n"), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n01 2\n.e\n"), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.p 3\n01 1\n.e\n"),
               util::CheckError);  // .p mismatch
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.e\n01 1\n"), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.ilb a\n01 1\n.e\n"),
               util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.type fd\n01 1\n.e\n"),
               util::CheckError);
}

// Every malformed input must surface as the typed ParseError (which is-a
// util::CheckError, so the legacy expectations above also hold).
TEST(PlaParse, MalformedFilesThrowTypedError) {
  // Truncated: header only, no .e.
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n01 1\n"), ParseError);
  // Truncated mid-product: cube cut short by the missing tail.
  EXPECT_THROW(parse_pla(".i 4\n.o 1\n01"), ParseError);
  // Non-numeric and junk-suffixed header fields (std::stoi would have
  // thrown std::invalid_argument instead of a parse error).
  EXPECT_THROW(parse_pla(".i x\n.o 1\n.e\n"), ParseError);
  EXPECT_THROW(parse_pla(".i 2z\n.o 1\n01 1\n.e\n"), ParseError);
  EXPECT_THROW(parse_pla(".i -2\n.o 1\n01 1\n.e\n"), ParseError);
  // Out-of-range counts (std::stoi would have thrown std::out_of_range).
  EXPECT_THROW(parse_pla(".i 99999999999999999999\n.o 1\n.e\n"), ParseError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.p 99999999999999999999\n01 1\n.e\n"),
               ParseError);
  // Input count beyond the tabulation limit.
  EXPECT_THROW(parse_pla(".i 1000\n.o 1\n.e\n"), ParseError);
}

TEST(PlaParse, ParseErrorIsACheckError) {
  try {
    parse_pla(".i nope\n.o 1\n.e\n");
    FAIL() << "expected ParseError";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("PLA line 1"), std::string::npos);
  }
}

TEST(PlaRoundtrip, WriteParseWrite) {
  const Pla p = parse_pla(kXorPla);
  const std::string text = to_pla(p);
  const Pla q = parse_pla(text);
  EXPECT_EQ(to_pla(q), text);
  EXPECT_EQ(q.output_table(0), p.output_table(0));
}

TEST(PlaIntegration, MinimizeSingleOutput) {
  // The Fig. 1 function as a PLA.
  const Pla p = parse_pla(
      ".i 6\n.o 1\n11---- 1\n--11-- 1\n----11 1\n.e\n");
  EXPECT_EQ(p.output_table(0), pair_sum(3));
  EXPECT_EQ(core::fs_minimize(p.output_table(0)).min_internal_nodes, 6u);
}

TEST(PlaIntegration, SharedMinimizationOfMultiOutputPla) {
  const Pla p = parse_pla(
      ".i 4\n.o 2\n11-- 10\n--11 10\n1-1- 01\n-1-1 01\n.e\n");
  const auto shared = core::fs_minimize_shared(p.output_tables());
  EXPECT_GT(shared.min_internal_nodes, 0u);
  EXPECT_EQ(core::shared_size_for_order(p.output_tables(),
                                        shared.order_root_first),
            shared.min_internal_nodes);
}

}  // namespace
}  // namespace ovo::tt
