// Tests for the Berkeley PLA reader/writer and its integration with the
// minimization pipeline.

#include <gtest/gtest.h>

#include "core/minimize.hpp"
#include "core/multi_output.hpp"
#include "tt/function_zoo.hpp"
#include "tt/pla.hpp"
#include "util/check.hpp"

namespace ovo::tt {
namespace {

const char* kXorPla = R"(# 2-input xor
.i 2
.o 1
.p 2
01 1
10 1
.e
)";

TEST(PlaParse, XorExample) {
  const Pla p = parse_pla(kXorPla);
  EXPECT_EQ(p.num_inputs, 2);
  EXPECT_EQ(p.num_outputs, 1);
  ASSERT_EQ(p.cubes.size(), 2u);
  EXPECT_EQ(p.output_table(0), parity(2));
}

TEST(PlaParse, DontCaresInCubes) {
  const Pla p = parse_pla(".i 3\n.o 1\n1-0 1\n.e\n");
  // Covers assignments with x0=1, x2=0, any x1.
  const TruthTable t = p.output_table(0);
  EXPECT_EQ(t.count_ones(), 2u);
  EXPECT_TRUE(t.get(0b001));
  EXPECT_TRUE(t.get(0b011));
  EXPECT_FALSE(t.get(0b101));
}

TEST(PlaParse, MultiOutput) {
  const Pla p = parse_pla(
      ".i 2\n.o 2\n.ilb a b\n.ob f g\n11 10\n01 01\n10 01\n.e\n");
  EXPECT_EQ(p.input_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(p.output_names, (std::vector<std::string>{"f", "g"}));
  EXPECT_EQ(p.output_table(0), conjunction(2));  // f = a & b
  EXPECT_EQ(p.output_table(1), parity(2));       // g = a ^ b
  EXPECT_EQ(p.output_tables().size(), 2u);
}

TEST(PlaParse, OutputDnfMatchesTable) {
  const Pla p = parse_pla(".i 3\n.o 1\n.p 2\n1-1 1\n010 1\n.e\n");
  EXPECT_EQ(p.output_dnf(0).to_truth_table(), p.output_table(0));
}

TEST(PlaParse, Errors) {
  EXPECT_THROW(parse_pla(""), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n01 1\n.e\n"), util::CheckError);  // no .o
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n011 1\n.e\n"), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n0x 1\n.e\n"), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n01 2\n.e\n"), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.p 3\n01 1\n.e\n"),
               util::CheckError);  // .p mismatch
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.e\n01 1\n"), util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.ilb a\n01 1\n.e\n"),
               util::CheckError);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.type fd\n01 1\n.e\n"),
               util::CheckError);
}

TEST(PlaRoundtrip, WriteParseWrite) {
  const Pla p = parse_pla(kXorPla);
  const std::string text = to_pla(p);
  const Pla q = parse_pla(text);
  EXPECT_EQ(to_pla(q), text);
  EXPECT_EQ(q.output_table(0), p.output_table(0));
}

TEST(PlaIntegration, MinimizeSingleOutput) {
  // The Fig. 1 function as a PLA.
  const Pla p = parse_pla(
      ".i 6\n.o 1\n11---- 1\n--11-- 1\n----11 1\n.e\n");
  EXPECT_EQ(p.output_table(0), pair_sum(3));
  EXPECT_EQ(core::fs_minimize(p.output_table(0)).min_internal_nodes, 6u);
}

TEST(PlaIntegration, SharedMinimizationOfMultiOutputPla) {
  const Pla p = parse_pla(
      ".i 4\n.o 2\n11-- 10\n--11 10\n1-1- 01\n-1-1 01\n.e\n");
  const auto shared = core::fs_minimize_shared(p.output_tables());
  EXPECT_GT(shared.min_internal_nodes, 0u);
  EXPECT_EQ(core::shared_size_for_order(p.output_tables(),
                                        shared.order_root_first),
            shared.min_internal_nodes);
}

}  // namespace
}  // namespace ovo::tt
