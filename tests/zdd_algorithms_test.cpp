// Tests for Minato's extended ZDD family algebra, verified against
// explicit set computations on random families.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "zdd/algorithms.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ovo::zdd {
namespace {

using SetFamily = std::set<util::Mask>;

SetFamily random_family(int n, int count, util::Xoshiro256& rng) {
  SetFamily f;
  for (int i = 0; i < count; ++i)
    f.insert(rng.below(std::uint64_t{1} << n));
  return f;
}

NodeId build(Manager& m, const SetFamily& f) {
  return m.from_family({f.begin(), f.end()});
}

SetFamily extract(const Manager& m, NodeId p) {
  const auto v = m.enumerate(p);
  return {v.begin(), v.end()};
}

class FamilyAlgebra : public ::testing::TestWithParam<int> {
 protected:
  util::Xoshiro256 rng_{static_cast<std::uint64_t>(GetParam()) * 7919 + 3};
};

TEST_P(FamilyAlgebra, JoinMatchesCrossUnion) {
  Manager m(6);
  const SetFamily fp = random_family(6, 8, rng_);
  const SetFamily fq = random_family(6, 8, rng_);
  SetFamily expect;
  for (const auto a : fp)
    for (const auto b : fq) expect.insert(a | b);
  EXPECT_EQ(extract(m, family_join(m, build(m, fp), build(m, fq))), expect);
}

TEST_P(FamilyAlgebra, MeetMatchesCrossIntersection) {
  Manager m(6);
  const SetFamily fp = random_family(6, 8, rng_);
  const SetFamily fq = random_family(6, 8, rng_);
  SetFamily expect;
  for (const auto a : fp)
    for (const auto b : fq) expect.insert(a & b);
  EXPECT_EQ(extract(m, family_meet(m, build(m, fp), build(m, fq))), expect);
}

TEST_P(FamilyAlgebra, MaximalSets) {
  Manager m(6);
  const SetFamily fp = random_family(6, 12, rng_);
  SetFamily expect;
  for (const auto a : fp) {
    bool dominated = false;
    for (const auto b : fp)
      dominated |= (a != b && (a & b) == a);  // a ⊂ b
    if (!dominated) expect.insert(a);
  }
  EXPECT_EQ(extract(m, maximal_sets(m, build(m, fp))), expect);
}

TEST_P(FamilyAlgebra, MinimalSets) {
  Manager m(6);
  const SetFamily fp = random_family(6, 12, rng_);
  SetFamily expect;
  for (const auto a : fp) {
    bool dominates = false;
    for (const auto b : fp)
      dominates |= (a != b && (a & b) == b);  // b ⊂ a
    if (!dominates) expect.insert(a);
  }
  EXPECT_EQ(extract(m, minimal_sets(m, build(m, fp))), expect);
}

TEST_P(FamilyAlgebra, Nonsupersets) {
  Manager m(6);
  const SetFamily fp = random_family(6, 10, rng_);
  const SetFamily fq = random_family(6, 4, rng_);
  SetFamily expect;
  for (const auto a : fp) {
    bool hit = false;
    for (const auto b : fq) hit |= ((a & b) == b);  // b ⊆ a
    if (!hit) expect.insert(a);
  }
  EXPECT_EQ(extract(m, nonsupersets(m, build(m, fp), build(m, fq))),
            expect);
}

TEST_P(FamilyAlgebra, Nonsubsets) {
  Manager m(6);
  const SetFamily fp = random_family(6, 10, rng_);
  const SetFamily fq = random_family(6, 4, rng_);
  SetFamily expect;
  for (const auto a : fp) {
    bool hit = false;
    for (const auto b : fq) hit |= ((a & b) == a);  // a ⊆ b
    if (!hit) expect.insert(a);
  }
  EXPECT_EQ(extract(m, nonsubsets(m, build(m, fp), build(m, fq))), expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FamilyAlgebra, ::testing::Range(0, 10));

TEST(FamilyAlgebraEdge, TerminalCases) {
  Manager m(4);
  const NodeId some = m.from_family({0b0011, 0b0100});
  EXPECT_EQ(family_join(m, kEmpty, some), kEmpty);
  EXPECT_EQ(family_join(m, kUnit, some), some);
  EXPECT_EQ(family_meet(m, kUnit, some), kUnit);
  EXPECT_EQ(family_meet(m, kEmpty, some), kEmpty);
  EXPECT_EQ(maximal_sets(m, kEmpty), kEmpty);
  EXPECT_EQ(maximal_sets(m, kUnit), kUnit);
  EXPECT_EQ(minimal_sets(m, kUnit), kUnit);
  // {∅} ∈ q knocks out everything in nonsupersets.
  EXPECT_EQ(nonsupersets(m, some, kUnit), kEmpty);
  EXPECT_EQ(nonsubsets(m, kUnit, some), kEmpty);
  EXPECT_EQ(nonsubsets(m, some, kEmpty), some);
}

TEST(FamilyAlgebraEdge, EmptySetMemberHandling) {
  Manager m(3);
  // p = {∅, {0}}, q = {{1}}: ∅ is not a superset of {1}; {0} isn't either.
  const NodeId p = m.from_family({0b000, 0b001});
  const NodeId q = m.from_family({0b010});
  EXPECT_EQ(extract(m, nonsupersets(m, p, q)),
            (SetFamily{0b000, 0b001}));
  // ∅ ⊆ {1}: nonsubsets drops ∅; {0} ⊄ {1} stays.
  EXPECT_EQ(extract(m, nonsubsets(m, p, q)), (SetFamily{0b001}));
}

TEST(MinWeightSet, MatchesBruteForce) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Manager m(6);
    const SetFamily fp = random_family(6, 10, rng);
    std::vector<double> w(6);
    for (auto& x : w) x = static_cast<double>(rng.below(19)) - 9.0;
    const auto got = min_weight_set(m, build(m, fp), w);
    ASSERT_TRUE(got.has_value());
    double expect = 1e18;
    for (const auto a : fp) {
      double s = 0;
      util::for_each_bit(a, [&](int v) { s += w[static_cast<std::size_t>(v)]; });
      expect = std::min(expect, s);
    }
    EXPECT_DOUBLE_EQ(got->weight, expect);
    EXPECT_TRUE(fp.count(got->set));
  }
  Manager m(3);
  EXPECT_FALSE(min_weight_set(m, kEmpty, {0, 0, 0}).has_value());
}

TEST(MinWeightSet, KnapsackStyleSelection) {
  // Vertex covers of a path graph 0-1-2: {1}, {0,2}, supersets...
  // Weighted minimum cover via minimal_sets + min_weight_set.
  Manager m(3);
  // All vertex covers of edges (0,1), (1,2).
  std::vector<util::Mask> covers;
  for (util::Mask s = 0; s < 8; ++s)
    if (((s & 0b001) || (s & 0b010)) && ((s & 0b010) || (s & 0b100)))
      covers.push_back(s);
  const NodeId all = m.from_family(covers);
  const NodeId minimal = minimal_sets(m, all);
  EXPECT_EQ(extract(m, minimal), (SetFamily{0b010, 0b101}));
  const auto cheapest = min_weight_set(m, minimal, {1.0, 5.0, 1.0});
  ASSERT_TRUE(cheapest.has_value());
  EXPECT_EQ(cheapest->set, 0b101u);
  EXPECT_DOUBLE_EQ(cheapest->weight, 2.0);
}

}  // namespace
}  // namespace ovo::zdd
