// Tests for the gate-level circuit layer: elementary gate semantics,
// agreement of the compiled diffusion with the operator-level one, and a
// full gate-built Grover run.

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/circuit.hpp"
#include "quantum/statevector.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ovo::quantum {
namespace {

TEST(Gates, HadamardInvolution) {
  Statevector psi(3);
  psi.set_basis_state(0b101);
  psi.apply_h(1);
  psi.apply_h(1);
  EXPECT_NEAR(psi.probability_of([](std::uint64_t x) { return x == 0b101; }),
              1.0, 1e-12);
}

TEST(Gates, HadamardCreatesUniformFromZero) {
  Statevector psi(4);
  psi.set_basis_state(0);
  for (int q = 0; q < 4; ++q) psi.apply_h(q);
  for (const auto& a : psi.amplitudes())
    EXPECT_NEAR(std::abs(a), 0.25, 1e-12);
}

TEST(Gates, PauliX) {
  Statevector psi(2);
  psi.set_basis_state(0b00);
  psi.apply_x(1);
  EXPECT_NEAR(psi.probability_of([](std::uint64_t x) { return x == 0b10; }),
              1.0, 1e-12);
}

TEST(Gates, PauliZPhase) {
  Statevector psi(1);
  psi.set_basis_state(0);
  psi.apply_h(0);   // (|0> + |1>)/sqrt2
  psi.apply_z(0);   // (|0> - |1>)/sqrt2
  psi.apply_h(0);   // |1>
  EXPECT_NEAR(psi.probability_of([](std::uint64_t x) { return x == 1; }),
              1.0, 1e-12);
}

TEST(Gates, CzIsSymmetricAndConditional) {
  Statevector a(2), b(2);
  a.set_basis_state(0b11);
  b.set_basis_state(0b11);
  a.apply_cz(0, 1);
  b.apply_cz(1, 0);
  EXPECT_NEAR(a.overlap_magnitude(b), 1.0, 1e-12);
  // CZ on |01> does nothing.
  Statevector c(2);
  c.set_basis_state(0b01);
  Statevector d = c;
  c.apply_cz(0, 1);
  EXPECT_NEAR(c.overlap_magnitude(d), 1.0, 1e-12);
}

TEST(Gates, MczValidation) {
  Statevector psi(3);
  EXPECT_THROW(psi.apply_mcz(0), util::CheckError);
  EXPECT_THROW(psi.apply_mcz(0b11111), util::CheckError);
}

TEST(Gates, NormPreservedByRandomGateStrings) {
  util::Xoshiro256 rng(5);
  Statevector psi(5);
  for (int i = 0; i < 200; ++i) {
    const int q = static_cast<int>(rng.below(5));
    switch (rng.below(4)) {
      case 0: psi.apply_h(q); break;
      case 1: psi.apply_x(q); break;
      case 2: psi.apply_z(q); break;
      default: psi.apply_cz(q, (q + 1) % 5); break;
    }
    ASSERT_NEAR(psi.norm_squared(), 1.0, 1e-9);
  }
}

TEST(Circuit, CompiledDiffusionMatchesOperator) {
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    // Random-ish state: uniform then a few gates.
    Statevector a(4);
    a.apply_phase_oracle([&](std::uint64_t x) { return (x * 2654435761u) & 8; });
    a.apply_h(2);
    Statevector b = a;

    a.apply_diffusion();  // operator level
    QCircuit diff(4);
    diff.grover_diffusion();
    diff.run(b);          // gate level

    // Equal up to global phase.
    EXPECT_NEAR(a.overlap_magnitude(b), 1.0, 1e-9);
  }
}

TEST(Circuit, GateBuiltGroverAmplifies) {
  const int qubits = 6;
  const std::uint64_t target = 45;
  const auto marked = [target](std::uint64_t x) { return x == target; };
  // ~pi/4 * sqrt(64) = 6 iterations.
  QCircuit grover(qubits);
  grover.grover_rounds(marked, 6);
  Statevector psi(qubits);  // uniform start
  const std::uint64_t queries = grover.run(psi);
  EXPECT_EQ(queries, 6u);
  EXPECT_GT(psi.probability_of(marked), 0.99);
}

TEST(Circuit, GateBuiltGroverMatchesOperatorLevel) {
  const int qubits = 5;
  const auto marked = [](std::uint64_t x) { return x % 7 == 3; };
  Statevector op(qubits);
  for (int i = 0; i < 3; ++i) {
    op.apply_phase_oracle(marked);
    op.apply_diffusion();
  }
  QCircuit c(qubits);
  c.grover_rounds(marked, 3);
  Statevector gate(qubits);
  c.run(gate);
  EXPECT_NEAR(op.overlap_magnitude(gate), 1.0, 1e-9);
}

TEST(Circuit, Validation) {
  EXPECT_THROW(QCircuit(0), util::CheckError);
  QCircuit c(2);
  EXPECT_THROW(c.h(5), util::CheckError);
  EXPECT_THROW(c.cz(0, 0), util::CheckError);
  EXPECT_THROW(c.oracle(nullptr), util::CheckError);
  Statevector psi(3);
  EXPECT_THROW(c.run(psi), util::CheckError);
}

TEST(Circuit, FluentCompositionCounts) {
  QCircuit c(3);
  c.h(0).x(1).z(2).cz(0, 1).mcz(0b111);
  EXPECT_EQ(c.size(), 5u);
  Statevector psi(3);
  EXPECT_EQ(c.run(psi), 0u);  // no oracle gates
}

}  // namespace
}  // namespace ovo::quantum
