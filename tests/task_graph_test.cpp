// Tests for par::TaskGraph — the dependency-counting scheduler under
// every parallel region.  Contracts under test: dependency edges are
// respected at every thread count, every chunk runs exactly once, the
// pre-assigned-slot publish protocol makes results thread-count
// invariant, fences see their whole epoch and serialize, tasks added
// after a fence pipeline past it, exceptions and mid-DAG stops drain the
// graph without deadlock, nested runs execute inline, and the pipelined
// FS* DP built on all of this survives cancellation and allocation
// faults injected mid-flight (run under the asan/tsan presets by
// tools/ci.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/minimize.hpp"
#include "parallel/exec_policy.hpp"
#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"
#include "reorder/minimize_auto.hpp"
#include "rt/budget.hpp"
#include "rt/fault.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo {
namespace {

par::ExecPolicy policy(int threads) {
  par::ExecPolicy exec;
  exec.num_threads = threads;
  return exec;
}

// ------------------------------------------------------------- structure --

TEST(TaskGraph, DiamondRespectsDependencyOrderAtEveryThreadCount) {
  for (const int threads : {1, 2, 4, 8}) {
    std::atomic<int> clock{0};
    int at_a = -1, at_b = -1, at_c = -1, at_d = -1;
    par::TaskGraph g;
    const auto a = g.add([&](int) { at_a = clock.fetch_add(1); });
    const auto b = g.add([&](int) { at_b = clock.fetch_add(1); });
    const auto c = g.add([&](int) { at_c = clock.fetch_add(1); });
    const auto d = g.add([&](int) { at_d = clock.fetch_add(1); });
    g.add_edge(a, b);
    g.add_edge(a, c);
    g.add_edge(b, d);
    g.add_edge(c, d);
    g.run(threads);
    EXPECT_LT(at_a, at_b) << "threads=" << threads;
    EXPECT_LT(at_a, at_c) << "threads=" << threads;
    EXPECT_LT(at_b, at_d) << "threads=" << threads;
    EXPECT_LT(at_c, at_d) << "threads=" << threads;
    EXPECT_EQ(g.last_run().tasks, 4u);
  }
}

TEST(TaskGraph, EveryIndexOfEveryRangeNodeRunsExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    const std::uint64_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    par::TaskGraph g;
    // Four chained range nodes over the same index space.
    par::TaskGraph::TaskId prev = 0;
    for (int node = 0; node < 4; ++node) {
      const par::TaskGraph::TaskId id =
          g.add_range(std::uint64_t{0}, n, 7, [&](std::uint64_t i, int slot) {
            EXPECT_GE(slot, 0);
            EXPECT_LT(slot, threads);
            counts[i].fetch_add(1, std::memory_order_relaxed);
          });
      if (node > 0) g.add_edge(prev, id);
      prev = id;
    }
    g.run(threads);
    for (const auto& c : counts) EXPECT_EQ(c.load(), 4);
  }
}

// The publish protocol: every task writes into its pre-assigned slot, so
// the output is identical for every thread count by construction.
TEST(TaskGraph, PublishProtocolMakesResultsThreadCountInvariant) {
  const std::uint64_t n = 64;
  const std::uint64_t group = 16;
  const auto run = [&](int threads) {
    std::vector<std::uint64_t> layer1(n), layer2(n);
    par::TaskGraph g;
    std::vector<par::TaskGraph::TaskId> l1_nodes;
    for (std::uint64_t lo = 0; lo < n; lo += group)
      l1_nodes.push_back(g.add_range(
          lo, lo + group, 4,
          [&](std::uint64_t i, int) { layer1[i] = i * i + 1; }));
    for (std::uint64_t lo = 0; lo < n; lo += group) {
      const auto id = g.add_range(lo, lo + group, 4,
                                  [&](std::uint64_t i, int) {
                                    layer2[i] =
                                        layer1[i] + layer1[(i + 1) % n];
                                  });
      g.add_edge(l1_nodes[lo / group], id);
      g.add_edge(l1_nodes[((lo + group) % n) / group], id);
    }
    g.run(threads);
    return layer2;
  };
  const std::vector<std::uint64_t> serial = run(1);
  for (const int threads : {2, 4, 8}) EXPECT_EQ(run(threads), serial);
}

// --------------------------------------------------------------- fences --

TEST(TaskGraph, FenceSeesItsWholeEpochAndFenceBodiesSerialize) {
  for (const int threads : {1, 2, 4, 8}) {
    std::atomic<int> epoch1{0}, epoch2{0};
    int fence_hits = 0;  // mutated lock-free: fences are serialized
    int seen1 = -1, seen2 = -1;
    par::TaskGraph g;
    for (int t = 0; t < 6; ++t)
      g.add([&](int) { epoch1.fetch_add(1, std::memory_order_relaxed); });
    g.seq_epoch([&](int) {
      seen1 = epoch1.load(std::memory_order_relaxed);
      ++fence_hits;
    });
    for (int t = 0; t < 4; ++t)
      g.add([&](int) { epoch2.fetch_add(1, std::memory_order_relaxed); });
    g.seq_epoch([&](int) {
      seen2 = epoch2.load(std::memory_order_relaxed);
      ++fence_hits;
    });
    g.run(threads);
    EXPECT_EQ(seen1, 6) << "threads=" << threads;
    EXPECT_EQ(seen2, 4) << "threads=" << threads;
    EXPECT_EQ(fence_hits, 2);
  }
}

// A task added after a fence does not depend on it: wired only to one
// layer-1 task, it becomes ready the moment that task completes, which
// is always before the fence (which needs ALL layer-1 tasks) can have
// completed — the scheduler must count it as cross-layer overlap.
TEST(TaskGraph, TasksAfterAFencePipelinePastIt) {
  for (const int threads : {2, 4}) {
    std::atomic<int> ran{0};
    par::TaskGraph g;
    const auto a1 = g.add([&](int) { ran.fetch_add(1); });
    g.add([&](int) { ran.fetch_add(1); });  // a2, fence input only
    g.seq_epoch([&](int) {});
    const auto b1 = g.add([&](int) { ran.fetch_add(1); });
    g.add_edge(a1, b1);
    g.run(threads);
    EXPECT_EQ(ran.load(), 3);
    EXPECT_GE(g.last_run().overlap_tasks, 1u) << "threads=" << threads;
  }
}

TEST(TaskGraph, RunAccumulatesIntoProcessWideStats) {
  const par::SchedStats before = par::sched_stats();
  par::TaskGraph g;
  g.add_range(std::uint64_t{0}, std::uint64_t{100}, 10,
              [](std::uint64_t, int) {});
  g.run(4);
  const par::SchedStats d = par::sched_stats() - before;
  EXPECT_EQ(d.graphs, 1u);
  EXPECT_EQ(d.tasks, g.last_run().tasks);
  EXPECT_EQ(d.chunks, g.last_run().chunks);
  EXPECT_EQ(g.last_run().chunks, 10u);
}

// ------------------------------------------------- exceptions and stops --

TEST(TaskGraph, ExceptionPropagatesOnceAndAbandonsDependents) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<bool> d_ran{false};
    par::TaskGraph g;
    g.add_range(std::uint64_t{0}, std::uint64_t{1000}, 8,
                [](std::uint64_t, int) {});
    const auto b = g.add_range(std::uint64_t{0}, std::uint64_t{1000}, 8,
                               [](std::uint64_t i, int) {
                                 if (i == 500)
                                   throw std::runtime_error("boom");
                               });
    const auto d = g.add([&](int) { d_ran.store(true); });
    g.add_edge(b, d);
    int caught = 0;
    try {
      g.run(4);
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
      ++caught;
    }
    EXPECT_EQ(caught, 1);
    EXPECT_FALSE(d_ran.load());  // its predecessor never completed
  }
}

TEST(TaskGraph, PreTrippedStopRunsNothing) {
  std::atomic<bool> stop{true};
  std::atomic<int> ran{0};
  for (const int threads : {1, 4}) {
    par::TaskGraph g;
    g.add_range(std::uint64_t{0}, std::uint64_t{100}, 1,
                [&](std::uint64_t, int) { ran.fetch_add(1); });
    g.run(threads, &stop);
    EXPECT_EQ(ran.load(), 0);
  }
}

// A stop tripped mid-DAG drains: run() returns, in-flight chunks finish,
// and every fence that DID run observed its complete epoch — the
// "partial layers are discarded, completed fences are trustworthy"
// contract the pipelined DP relies on.
TEST(TaskGraph, MidDagStopDrainsToAConsistentFenceFrontier) {
  for (const int threads : {1, 2, 4}) {
    for (int round = 0; round < 10; ++round) {
      std::atomic<bool> stop{false};
      constexpr int kLayers = 5;
      constexpr std::uint64_t kLayerSize = 400;
      std::vector<std::atomic<std::uint64_t>> done(kLayers);
      std::vector<std::uint64_t> at_fence(kLayers, ~std::uint64_t{0});
      par::TaskGraph g;
      for (int layer = 0; layer < kLayers; ++layer) {
        g.add_range(std::uint64_t{0}, kLayerSize, 16,
                    [&, layer](std::uint64_t i, int) {
                      if (layer == 2 && i == 100) stop.store(true);
                      done[layer].fetch_add(1, std::memory_order_relaxed);
                    });
        g.seq_epoch([&, layer](int) {
          at_fence[layer] = done[layer].load(std::memory_order_relaxed);
        });
      }
      g.run(threads, &stop);
      for (int layer = 0; layer < kLayers; ++layer) {
        if (at_fence[layer] == ~std::uint64_t{0}) continue;  // never ran
        EXPECT_EQ(at_fence[layer], kLayerSize)
            << "threads=" << threads << " layer=" << layer;
      }
      // The tripping layer's work started, and the final fence cannot
      // have run (its epoch was cut short after the trip at the latest).
      EXPECT_GT(done[2].load(), 0u);
    }
  }
}

// ------------------------------------------------------------- nesting --

TEST(TaskGraph, NestedRunInsideAGraphRegionExecutesInline) {
  std::atomic<int> inner_total{0};
  par::TaskGraph outer;
  outer.add_range(std::uint64_t{0}, std::uint64_t{8}, 1,
                  [&](std::uint64_t, int) {
                    par::TaskGraph inner;
                    inner.add_range(std::uint64_t{0}, std::uint64_t{10}, 1,
                                    [&](std::uint64_t, int slot) {
                                      EXPECT_EQ(slot, 0);
                                      inner_total.fetch_add(
                                          1, std::memory_order_relaxed);
                                    });
                    inner.run(4);
                    // parallel_for routes through the same scheduler and
                    // must also stay inline here.
                    par::ThreadPool::shared().parallel_for(
                        std::uint64_t{0}, std::uint64_t{10}, 1, 4,
                        [&](std::uint64_t, int slot) {
                          EXPECT_EQ(slot, 0);
                          inner_total.fetch_add(1,
                                                std::memory_order_relaxed);
                        });
                  });
  outer.run(4);
  EXPECT_EQ(inner_total.load(), 160);
}

// ------------------------------------- faults under the pipelined FS* --

// Cancellation tripped at a governor checkpoint *inside* the pipelined
// DP's task bodies: the DAG drains, the ladder salvages, and the result
// is a valid order with its exact size and Outcome::kCancelled.
TEST(PipelinedDpFaults, CancelMidDagSalvagesAConsistentOutcome) {
  const tt::TruthTable f = tt::hidden_weighted_bit(10);
  rt::CancelToken token;
  rt::FaultPlan plan;
  plan.cancel_at_checkpoint = 100;  // mid layer ~3 of the DP
  plan.cancel = &token;
  rt::ScopedFaultPlan scoped(plan);

  rt::Budget b;
  b.cancel = &token;
  reorder::AutoMinimizeOptions opt;
  opt.exec = policy(4);
  const auto r = reorder::minimize_auto(f, b, opt);
  EXPECT_EQ(r.outcome, rt::Outcome::kCancelled);
  EXPECT_FALSE(r.value.optimal);
  EXPECT_LT(r.value.dp_layers_completed, 10);
  ASSERT_TRUE(util::is_permutation(r.value.order_root_first));
  ASSERT_EQ(r.value.order_root_first.size(), 10u);
  EXPECT_EQ(core::diagram_size_for_order(f, r.value.order_root_first),
            r.value.internal_nodes);
  EXPECT_GE(scoped.checkpoints_seen(), 100u);
}

// ds-layer allocation faults injected under the pipelined DP: the
// bad_alloc thrown inside a task body must drain the DAG, propagate
// exactly once, corrupt nothing (the rerun matches serial), and leak
// nothing under the asan preset.
TEST(PipelinedDpFaults, AllocFaultDrainsAndLeavesNoCorruption) {
  util::Xoshiro256 rng(4242);
  const tt::TruthTable f = tt::random_function(8, rng);
  const core::MinimizeResult serial = core::fs_minimize(f);

  std::uint64_t events = 0;
  {
    rt::ScopedFaultPlan probe(rt::FaultPlan{});
    const core::MinimizeResult r =
        core::fs_minimize(f, core::DiagramKind::kBdd, policy(4));
    EXPECT_EQ(r.min_internal_nodes, serial.min_internal_nodes);
    events = probe.allocations_seen();
  }
  ASSERT_GT(events, 0u);

  // Probe the first, a middle, and the last allocation event (which
  // chunk hits event k varies with scheduling; clean unwind must not).
  for (const std::uint64_t k : {std::uint64_t{1}, events / 2, events}) {
    rt::FaultPlan plan;
    plan.fail_alloc_at = k;
    rt::ScopedFaultPlan scoped(plan);
    try {
      core::fs_minimize(f, core::DiagramKind::kBdd, policy(4));
      FAIL() << "allocation " << k << " did not fail";
    } catch (const std::bad_alloc&) {
      // expected
    }
  }

  // With the plan gone, the same pipelined run succeeds bit-identically.
  const core::MinimizeResult again =
      core::fs_minimize(f, core::DiagramKind::kBdd, policy(4));
  EXPECT_EQ(again.min_internal_nodes, serial.min_internal_nodes);
  EXPECT_EQ(again.order_root_first, serial.order_root_first);
  EXPECT_EQ(again.ops.table_cells, serial.ops.table_cells);
}

}  // namespace
}  // namespace ovo
