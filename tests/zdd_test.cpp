// Tests for the ZDD package: zero-suppression canonicity, family algebra,
// counting/enumeration, and the sparse-representation advantage over BDDs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bdd/manager.hpp"
#include "tt/function_zoo.hpp"
#include "zdd/manager.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::zdd {
namespace {

TEST(ZddManager, Terminals) {
  Manager m(3);
  EXPECT_EQ(m.count(kEmpty), 0u);
  EXPECT_EQ(m.count(kUnit), 1u);
  EXPECT_EQ(m.enumerate(kUnit), (std::vector<util::Mask>{0}));
}

TEST(ZddManager, ZeroSuppressionRule) {
  Manager m(2);
  // A node whose 1-edge is empty must vanish.
  EXPECT_EQ(m.make(0, kUnit, kEmpty), kUnit);
  // But equal children do NOT collapse (unlike BDDs).
  const NodeId u = m.make(1, kUnit, kUnit);
  EXPECT_NE(u, kUnit);
}

TEST(ZddManager, SingleSet) {
  Manager m(4);
  const NodeId f = m.single_set(0b1010);
  EXPECT_EQ(m.count(f), 1u);
  EXPECT_EQ(m.enumerate(f), (std::vector<util::Mask>{0b1010}));
  EXPECT_TRUE(m.eval(f, 0b1010));
  EXPECT_FALSE(m.eval(f, 0b1000));
  EXPECT_FALSE(m.eval(f, 0b1011));
}

TEST(ZddManager, FromFamilyRoundtrip) {
  Manager m(4);
  const std::vector<util::Mask> family{0b0000, 0b0011, 0b1010, 0b1111};
  const NodeId f = m.from_family(family);
  EXPECT_EQ(m.count(f), family.size());
  EXPECT_EQ(m.enumerate(f), family);  // already sorted
}

class ZddRoundtrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ZddRoundtrip, FromTruthTableEvaluatesBack) {
  const auto [n, seed] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
  const tt::TruthTable t = tt::random_function(n, rng);
  Manager m(n);
  const NodeId f = m.from_truth_table(t);
  EXPECT_EQ(m.to_truth_table(f), t);
  EXPECT_EQ(m.count(f), t.count_ones());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZddRoundtrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Range(0, 5)));

TEST(ZddRoundtripOrders, NonIdentityOrder) {
  util::Xoshiro256 rng(99);
  const tt::TruthTable t = tt::random_function(5, rng);
  for (const auto& order : util::all_permutations(5)) {
    Manager m(5, order);
    const NodeId f = m.from_truth_table(t);
    ASSERT_EQ(m.to_truth_table(f), t);
  }
}

class ZddFamilyAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(ZddFamilyAlgebra, MatchesSetAlgebra) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 31);
  const int n = 6;
  // Two random families over 6 elements.
  std::set<util::Mask> sa, sb;
  for (int i = 0; i < 12; ++i) sa.insert(rng.below(64));
  for (int i = 0; i < 12; ++i) sb.insert(rng.below(64));
  Manager m(n);
  const NodeId a = m.from_family({sa.begin(), sa.end()});
  const NodeId b = m.from_family({sb.begin(), sb.end()});

  std::set<util::Mask> expect_union = sa;
  expect_union.insert(sb.begin(), sb.end());
  std::set<util::Mask> expect_inter, expect_diff;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(expect_inter, expect_inter.begin()));
  std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                      std::inserter(expect_diff, expect_diff.begin()));

  const auto as_vec = [](const std::set<util::Mask>& s) {
    return std::vector<util::Mask>{s.begin(), s.end()};
  };
  EXPECT_EQ(m.enumerate(m.family_union(a, b)), as_vec(expect_union));
  EXPECT_EQ(m.enumerate(m.family_intersection(a, b)), as_vec(expect_inter));
  EXPECT_EQ(m.enumerate(m.family_difference(a, b)), as_vec(expect_diff));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZddFamilyAlgebra, ::testing::Range(0, 8));

TEST(ZddFamilyOps, Subset0Subset1Change) {
  Manager m(3);
  // Family {{}, {0}, {0,2}, {1}}.
  const NodeId f = m.from_family({0b000, 0b001, 0b101, 0b010});
  // subset1(var 0): sets containing 0, with 0 factored out (Minato).
  EXPECT_EQ(m.count(m.subset1(f, 0)), 2u);
  EXPECT_EQ(m.enumerate(m.subset1(f, 0)),
            (std::vector<util::Mask>{0b000, 0b100}));
  // subset0(var 0): sets not containing 0.
  const NodeId s0 = m.subset0(f, 0);
  EXPECT_EQ(m.enumerate(s0), (std::vector<util::Mask>{0b000, 0b010}));
  // change(var 1): toggle membership of 1 in every set.
  const NodeId ch = m.change(f, 1);
  EXPECT_EQ(m.enumerate(ch),
            (std::vector<util::Mask>{0b000, 0b010, 0b011, 0b111}));
}

TEST(ZddFamilyOps, UnionIdempotentAndCommutative) {
  util::Xoshiro256 rng(77);
  Manager m(5);
  const NodeId a = m.from_truth_table(tt::random_function(5, rng));
  const NodeId b = m.from_truth_table(tt::random_function(5, rng));
  EXPECT_EQ(m.family_union(a, a), a);
  EXPECT_EQ(m.family_union(a, b), m.family_union(b, a));
  EXPECT_EQ(m.family_intersection(a, m.family_union(a, b)), a);
  EXPECT_EQ(m.family_difference(a, a), kEmpty);
}

TEST(ZddInvariant, NoNodeHasEmptyHighChild) {
  util::Xoshiro256 rng(13);
  Manager m(7);
  m.from_truth_table(tt::random_function(7, rng));
  for (NodeId id = 2; id < m.pool_size(); ++id)
    EXPECT_NE(m.node(id).hi, kEmpty) << "node " << id;
}

TEST(ZddVsBdd, SparseFamiliesAreSmallerAsZdd) {
  // Characteristic function of a few scattered singletons: ZDDs shine.
  util::Xoshiro256 rng(55);
  const int n = 10;
  const tt::TruthTable t = tt::random_sparse_function(n, 6, rng);
  Manager zm(n);
  bdd::Manager bm(n);
  const std::uint64_t zs = zm.size(zm.from_truth_table(t));
  const std::uint64_t bs = bm.size(bm.from_truth_table(t));
  EXPECT_LT(zs, bs);
}

TEST(ZddQueries, LevelWidthsSumToSize) {
  util::Xoshiro256 rng(21);
  Manager m(6);
  const NodeId f = m.from_truth_table(tt::random_function(6, rng));
  const auto widths = m.level_widths(f);
  std::uint64_t sum = 0;
  for (const auto w : widths) sum += w;
  EXPECT_EQ(sum, m.size(f));
}

TEST(ZddQueries, DotOutput) {
  Manager m(2);
  const NodeId f = m.from_family({0b01, 0b10});
  const std::string dot = m.to_dot(f);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
}

}  // namespace
}  // namespace ovo::zdd
