// Randomized differential testing: every seed builds random functions and
// checks that all independent construction/evaluation paths in the
// library agree — truth tables, apply-based builders, canonical DNF/CNF,
// serialization round-trips, order transfer, dynamic swaps, and the three
// exact ordering engines.

#include <gtest/gtest.h>

#include <numeric>

#include "bdd/algorithms.hpp"
#include "bdd/builder.hpp"
#include "bdd/dynamic_reorder.hpp"
#include "bdd/serialize.hpp"
#include "bdd/transfer.hpp"
#include "core/minimize.hpp"
#include "quantum/min_find.hpp"
#include "quantum/opt_obdd.hpp"
#include "reorder/branch_and_bound.hpp"
#include "tt/expr.hpp"
#include "tt/function_zoo.hpp"
#include "tt/normal_forms.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"
#include "zdd/manager.hpp"

namespace ovo {
namespace {

/// Random expression tree over n variables with the given node budget.
tt::ExprPtr random_expr(int n, int budget, util::Xoshiro256& rng) {
  if (budget <= 1) {
    if (rng.below(8) == 0) return tt::make_const(rng.coin());
    return tt::make_var(static_cast<int>(rng.below(n)));
  }
  switch (rng.below(4)) {
    case 0:
      return tt::make_not(random_expr(n, budget - 1, rng));
    case 1:
      return tt::make_and(random_expr(n, budget / 2, rng),
                          random_expr(n, budget - budget / 2, rng));
    case 2:
      return tt::make_or(random_expr(n, budget / 2, rng),
                         random_expr(n, budget - budget / 2, rng));
    default:
      return tt::make_xor(random_expr(n, budget / 2, rng),
                          random_expr(n, budget - budget / 2, rng));
  }
}

class Differential : public ::testing::TestWithParam<int> {
 protected:
  util::Xoshiro256 rng_{static_cast<std::uint64_t>(GetParam()) * 6364136 +
                        1442695};
};

TEST_P(Differential, AllConstructionPathsAgree) {
  const int n = 5 + static_cast<int>(rng_.below(3));
  const tt::ExprPtr e = random_expr(n, 24, rng_);
  const tt::TruthTable t = tt::expr_to_truth_table(*e, n);

  bdd::Manager m(n);
  const bdd::NodeId via_tt = m.from_truth_table(t);
  const bdd::NodeId via_expr = bdd::build_from_expr(m, *e);
  const bdd::NodeId via_dnf = bdd::build_from_dnf(m, tt::minterm_dnf(t));
  const bdd::NodeId via_cnf = bdd::build_from_cnf(m, tt::maxterm_cnf(t));
  EXPECT_EQ(via_tt, via_expr);
  EXPECT_EQ(via_tt, via_dnf);
  EXPECT_EQ(via_tt, via_cnf);

  // Round-trip through text.
  bdd::LoadedBdd loaded = bdd::load_bdd(bdd::save_bdd(m, via_tt));
  EXPECT_EQ(loaded.manager.to_truth_table(loaded.root), t);
}

TEST_P(Differential, OrderChangesPreserveSemantics) {
  const int n = 6;
  const tt::TruthTable t = tt::random_function(n, rng_);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int i = n - 1; i > 0; --i)
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng_.below(static_cast<std::uint64_t>(i) + 1)]);

  // Path A: build directly under `order`.
  bdd::Manager direct(n, order);
  const bdd::NodeId a = direct.from_truth_table(t);
  // Path B: build under identity, transfer.
  bdd::Manager ident(n);
  bdd::Manager dst(n, order);
  const bdd::NodeId b =
      bdd::transfer(ident, ident.from_truth_table(t), dst);
  EXPECT_EQ(direct.size(a), dst.size(b));
  EXPECT_TRUE(structurally_equal(direct, a, dst, b));
  // Path C: build under identity, swap levels until the orders match is
  // hard to steer; instead do random swaps and verify semantics only.
  bdd::Manager swapped(n);
  const bdd::NodeId c = swapped.from_truth_table(t);
  for (int i = 0; i < 6; ++i)
    swapped.swap_adjacent_levels(
        static_cast<int>(rng_.below(n - 1)));
  EXPECT_EQ(swapped.to_truth_table(c), t);
  // Sizes after swaps match a fresh build under the resulting order.
  bdd::Manager fresh(n, swapped.order());
  EXPECT_EQ(swapped.size(c), fresh.size(fresh.from_truth_table(t)));
}

TEST_P(Differential, ExactEnginesAgree) {
  const int n = 5;
  const tt::TruthTable t = tt::random_function(n, rng_);
  const std::uint64_t fs = core::fs_minimize(t).min_internal_nodes;
  const std::uint64_t bnb =
      reorder::branch_and_bound_minimize(t).internal_nodes;
  quantum::AccountingMinimumFinder finder(static_cast<double>(n));
  quantum::OptObddOptions opt;
  opt.alphas = {0.3};
  opt.finder = &finder;
  const std::uint64_t q =
      quantum::opt_obdd_minimize(t, opt).min_internal_nodes;
  EXPECT_EQ(fs, bnb);
  EXPECT_EQ(fs, q);
}

TEST_P(Differential, BddAndZddCountsAgreeWithTruthTable) {
  const int n = 6;
  const tt::TruthTable t = tt::random_function(n, rng_);
  bdd::Manager bm(n);
  zdd::Manager zm(n);
  const bdd::NodeId bf = bm.from_truth_table(t);
  const zdd::NodeId zf = zm.from_truth_table(t);
  EXPECT_EQ(bm.satcount(bf), t.count_ones());
  EXPECT_EQ(zm.count(zf), t.count_ones());
  EXPECT_EQ(bm.to_truth_table(bf), zm.to_truth_table(zf));
  // Model enumeration agrees with ZDD set enumeration.
  const auto models = bdd::all_models(bm, bf);
  const auto sets = zm.enumerate(zf);
  EXPECT_EQ(models, sets);
}

TEST_P(Differential, QuantifierAlgebra) {
  // exists distributes over or; forall over and; de Morgan between them.
  const int n = 5;
  const tt::TruthTable ta = tt::random_function(n, rng_);
  const tt::TruthTable tb = tt::random_function(n, rng_);
  bdd::Manager m(n);
  const bdd::NodeId a = m.from_truth_table(ta);
  const bdd::NodeId b = m.from_truth_table(tb);
  const int v = static_cast<int>(rng_.below(n));
  EXPECT_EQ(m.exists(m.apply_or(a, b), v),
            m.apply_or(m.exists(a, v), m.exists(b, v)));
  EXPECT_EQ(m.forall(m.apply_and(a, b), v),
            m.apply_and(m.forall(a, v), m.forall(b, v)));
  EXPECT_EQ(m.apply_not(m.exists(a, v)), m.forall(m.apply_not(a), v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(0, 12));

}  // namespace
}  // namespace ovo
