// Tests for in-place dynamic reordering: adjacent swaps preserve every
// root's function with stable ids, and DAG sifting matches the quality of
// the oracle-based sifting baseline.

#include <gtest/gtest.h>

#include <numeric>

#include "bdd/dynamic_reorder.hpp"
#include "core/minimize.hpp"
#include "reorder/baselines.hpp"
#include "tt/function_zoo.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::bdd {
namespace {

class SwapProperty : public ::testing::TestWithParam<int> {};

TEST_P(SwapProperty, EverySwapPreservesFunctionsAndIds) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 8191 + 17);
  const int n = 6;
  const tt::TruthTable ta = tt::random_function(n, rng);
  const tt::TruthTable tb = tt::random_function(n, rng);
  Manager m(n);
  const NodeId a = m.from_truth_table(ta);
  const NodeId b = m.from_truth_table(tb);
  const NodeId c = m.apply_xor(a, b);
  for (int round = 0; round < 20; ++round) {
    const int level = static_cast<int>(rng.below(n - 1));
    m.swap_adjacent_levels(level);
    ASSERT_EQ(m.to_truth_table(a), ta) << "round " << round;
    ASSERT_EQ(m.to_truth_table(b), tb);
    ASSERT_EQ(m.to_truth_table(c), ta ^ tb);
    ASSERT_TRUE(util::is_permutation(m.order()));
  }
}

TEST_P(SwapProperty, DoubleSwapRestoresOrderAndSizes) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const int n = 6;
  const tt::TruthTable t = tt::random_function(n, rng);
  Manager m(n);
  const NodeId f = m.from_truth_table(t);
  const std::vector<int> order_before = m.order();
  const std::uint64_t size_before = m.size(f);
  for (int level = 0; level + 1 < n; ++level) {
    m.swap_adjacent_levels(level);
    m.swap_adjacent_levels(level);
    EXPECT_EQ(m.order(), order_before);
    EXPECT_EQ(m.size(f), size_before);
    EXPECT_EQ(m.to_truth_table(f), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapProperty, ::testing::Range(0, 6));

TEST(Swap, SizeAfterSwapMatchesFreshBuild) {
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 6;
    const tt::TruthTable t = tt::random_function(n, rng);
    Manager m(n);
    const NodeId f = m.from_truth_table(t);
    const int level = static_cast<int>(rng.below(n - 1));
    m.swap_adjacent_levels(level);
    // A fresh manager with the swapped order must agree on the size.
    Manager fresh(n, m.order());
    EXPECT_EQ(m.size(f), fresh.size(fresh.from_truth_table(t)));
  }
}

TEST(Swap, OperationsStayConsistentAfterSwaps) {
  // The ITE cache is invalidated by swaps; new operations must be correct.
  util::Xoshiro256 rng(11);
  const int n = 5;
  const tt::TruthTable ta = tt::random_function(n, rng);
  const tt::TruthTable tb = tt::random_function(n, rng);
  Manager m(n);
  const NodeId a = m.from_truth_table(ta);
  const NodeId b = m.from_truth_table(tb);
  (void)m.apply_and(a, b);  // warm the cache
  m.swap_adjacent_levels(1);
  m.swap_adjacent_levels(3);
  EXPECT_EQ(m.to_truth_table(m.apply_and(a, b)), ta & tb);
  EXPECT_EQ(m.to_truth_table(m.apply_or(a, b)), ta | tb);
  EXPECT_EQ(m.satcount(a), ta.count_ones());
}

TEST(Swap, Validation) {
  Manager m(3);
  EXPECT_THROW(m.swap_adjacent_levels(-1), util::CheckError);
  EXPECT_THROW(m.swap_adjacent_levels(2), util::CheckError);
}

TEST(MoveLevel, ArbitraryRelocation) {
  util::Xoshiro256 rng(13);
  const int n = 6;
  const tt::TruthTable t = tt::random_function(n, rng);
  Manager m(n);
  const NodeId f = m.from_truth_table(t);
  const int var = m.var_at_level(0);
  move_level(m, 0, 4);
  EXPECT_EQ(m.level_of_var(var), 4);
  EXPECT_EQ(m.to_truth_table(f), t);
  move_level(m, 4, 2);
  EXPECT_EQ(m.level_of_var(var), 2);
  EXPECT_EQ(m.to_truth_table(f), t);
}

TEST(SiftInPlace, ReducesPairSumFromPessimalOrder) {
  const int pairs = 3;
  const tt::TruthTable f = tt::pair_sum(pairs);
  Manager m(2 * pairs, tt::pair_sum_interleaved_order(pairs));
  const NodeId root = m.from_truth_table(f);
  EXPECT_EQ(m.size(root), 14u);
  const SiftResult r = sift_in_place(m, {root});
  EXPECT_EQ(r.initial_nodes, 14u);
  EXPECT_EQ(r.final_nodes, 6u);  // sifting solves separable functions
  EXPECT_EQ(m.to_truth_table(root), f);
  EXPECT_EQ(m.size(root), 6u);
}

TEST(SiftInPlace, NeverBelowExactOptimumNeverAboveStart) {
  util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 7;
    const tt::TruthTable t = tt::random_function(n, rng);
    Manager m(n);
    const NodeId root = m.from_truth_table(t);
    const std::uint64_t opt = core::fs_minimize(t).min_internal_nodes;
    const SiftResult r = sift_in_place(m, {root});
    EXPECT_LE(r.final_nodes, r.initial_nodes);
    EXPECT_GE(r.final_nodes, opt);
    EXPECT_EQ(m.to_truth_table(root), t);
    // Sizes reported match a fresh rebuild under the final order.
    Manager fresh(n, m.order());
    EXPECT_EQ(fresh.size(fresh.from_truth_table(t)), r.final_nodes);
  }
}

TEST(SiftInPlace, MultiRootSharing) {
  util::Xoshiro256 rng(19);
  const int n = 6;
  const tt::TruthTable ta = tt::random_function(n, rng);
  const tt::TruthTable tb = tt::random_function(n, rng);
  Manager m(n);
  const NodeId a = m.from_truth_table(ta);
  const NodeId b = m.from_truth_table(tb);
  const SiftResult r = sift_in_place(m, {a, b});
  EXPECT_LE(r.final_nodes, r.initial_nodes);
  EXPECT_EQ(m.to_truth_table(a), ta);
  EXPECT_EQ(m.to_truth_table(b), tb);
  EXPECT_EQ(shared_reachable_size(m, {a, b}), r.final_nodes);
}

TEST(GarbageCollection, ReclaimsSwapDebris) {
  util::Xoshiro256 rng(29);
  const int n = 7;
  const tt::TruthTable ta = tt::random_function(n, rng);
  const tt::TruthTable tb = tt::random_function(n, rng);
  Manager m(n);
  std::vector<NodeId> roots{m.from_truth_table(ta),
                            m.from_truth_table(tb)};
  const SiftResult s = sift_in_place(m, roots);
  const std::size_t bloated = m.stats().pool_nodes;
  const std::size_t dropped = m.collect_garbage(&roots);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(m.stats().pool_nodes, bloated - dropped);
  // Functions survive under the new ids.
  EXPECT_EQ(m.to_truth_table(roots[0]), ta);
  EXPECT_EQ(m.to_truth_table(roots[1]), tb);
  EXPECT_EQ(shared_reachable_size(m, roots), s.final_nodes);
  // The compacted pool is exactly terminals + live nodes.
  EXPECT_EQ(m.stats().pool_nodes, 2 + s.final_nodes);
  // The manager is still fully operational afterwards.
  EXPECT_EQ(m.to_truth_table(m.apply_and(roots[0], roots[1])), ta & tb);
  m.swap_adjacent_levels(0);
  EXPECT_EQ(m.to_truth_table(roots[0]), ta);
}

TEST(GarbageCollection, NoGarbageNoOp) {
  Manager m(4);
  std::vector<NodeId> roots{m.from_truth_table(tt::parity(4))};
  const NodeId before = roots[0];
  EXPECT_EQ(m.collect_garbage(&roots), 0u);
  EXPECT_EQ(roots[0], before);  // dense construction keeps ids
}

TEST(ManagerStats, TracksTablesAndCache) {
  Manager m(5);
  const NodeId f = m.from_truth_table(tt::majority(5));
  const auto s1 = m.stats();
  EXPECT_EQ(s1.pool_nodes, m.pool_size());
  EXPECT_EQ(s1.unique_entries, s1.pool_nodes - 2);
  EXPECT_EQ(s1.cache_entries, 0u);
  (void)m.apply_not(f);
  EXPECT_GT(m.stats().cache_entries, 0u);
}

TEST(GarbageCollection, MidSiftPreservesSemanticsAndStructure) {
  // GC in the middle of a sifting sweep: collect between swaps, then keep
  // swapping. Functions must survive, and the final diagram must be
  // structurally identical to a fresh build under the final order.
  util::Xoshiro256 rng(31);
  const int n = 7;
  const tt::TruthTable ta = tt::random_function(n, rng);
  const tt::TruthTable tb = tt::random_function(n, rng);
  Manager m(n);
  std::vector<NodeId> roots{m.from_truth_table(ta),
                            m.from_truth_table(tb)};
  roots.push_back(m.apply_xor(roots[0], roots[1]));

  for (int round = 0; round < 12; ++round) {
    const int level = static_cast<int>(rng.below(n - 1));
    m.swap_adjacent_levels(level);
    if (round % 3 == 2) {
      m.collect_garbage(&roots);
      // Post-GC the pool is exactly terminals + live shared nodes.
      EXPECT_EQ(m.stats().pool_nodes,
                2 + shared_reachable_size(m, roots));
    }
    ASSERT_EQ(m.to_truth_table(roots[0]), ta) << "round " << round;
    ASSERT_EQ(m.to_truth_table(roots[1]), tb);
    ASSERT_EQ(m.to_truth_table(roots[2]), ta ^ tb);
  }

  // Fresh rebuild under the final order must be isomorphic root by root.
  Manager fresh(n, m.order());
  EXPECT_TRUE(structurally_equal(m, roots[0], fresh,
                                 fresh.from_truth_table(ta)));
  EXPECT_TRUE(structurally_equal(m, roots[1], fresh,
                                 fresh.from_truth_table(tb)));
  EXPECT_TRUE(structurally_equal(m, roots[2], fresh,
                                 fresh.from_truth_table(ta ^ tb)));
}

TEST(GarbageCollection, SiftAfterGcMatchesSiftWithoutGc) {
  // Run the same sift twice — once on a freshly collected manager, once on
  // the bloated one — and verify both land on the same size and order.
  util::Xoshiro256 rng(37);
  const int n = 6;
  const tt::TruthTable t = tt::random_function(n, rng);

  Manager bloated(n);
  std::vector<NodeId> roots_b{bloated.from_truth_table(t)};
  for (int level = 0; level + 1 < n; ++level)
    bloated.swap_adjacent_levels(level);  // manufacture debris
  for (int level = n - 2; level >= 0; --level)
    bloated.swap_adjacent_levels(level);  // ...and return to the start order

  Manager collected(n);
  std::vector<NodeId> roots_c{collected.from_truth_table(t)};
  for (int level = 0; level + 1 < n; ++level)
    collected.swap_adjacent_levels(level);
  for (int level = n - 2; level >= 0; --level)
    collected.swap_adjacent_levels(level);
  collected.collect_garbage(&roots_c);

  ASSERT_EQ(bloated.order(), collected.order());
  const SiftResult rb = sift_in_place(bloated, roots_b);
  const SiftResult rc = sift_in_place(collected, roots_c);
  EXPECT_EQ(rb.final_nodes, rc.final_nodes);
  EXPECT_EQ(bloated.order(), collected.order());
  EXPECT_EQ(bloated.to_truth_table(roots_b[0]), t);
  EXPECT_EQ(collected.to_truth_table(roots_c[0]), t);
  EXPECT_TRUE(structurally_equal(bloated, roots_b[0], collected, roots_c[0]));
}

TEST(SiftInPlace, QualityComparableToOracleSifting) {
  // Same greedy neighborhood, different tie-breaking: the two sifting
  // variants should land within a small factor of each other (and both
  // within a factor of the exact optimum).
  util::Xoshiro256 rng(23);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 6;
    const tt::TruthTable t = tt::random_function(n, rng);
    Manager m(n);
    const NodeId root = m.from_truth_table(t);
    const SiftResult dag = sift_in_place(m, {root});
    std::vector<int> id(n);
    std::iota(id.begin(), id.end(), 0);
    const auto oracle = reorder::sift(t, id);
    EXPECT_LE(static_cast<double>(dag.final_nodes),
              1.35 * static_cast<double>(oracle.internal_nodes));
    EXPECT_LE(static_cast<double>(oracle.internal_nodes),
              1.35 * static_cast<double>(dag.final_nodes));
  }
}

}  // namespace
}  // namespace ovo::bdd
