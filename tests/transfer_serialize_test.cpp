// Tests for cross-manager transfer (order migration) and ZDD
// serialization.

#include <gtest/gtest.h>

#include "bdd/serialize.hpp"
#include "bdd/transfer.hpp"
#include "core/minimize.hpp"
#include "rt/checkpoint.hpp"
#include "tt/function_zoo.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "zdd/serialize.hpp"

namespace ovo {
namespace {

TEST(Transfer, PreservesFunctionAcrossOrders) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const tt::TruthTable t = tt::random_function(7, rng);
    bdd::Manager src(7);
    const bdd::NodeId f = src.from_truth_table(t);
    std::vector<int> order{6, 2, 4, 0, 5, 1, 3};
    bdd::Manager dst(7, order);
    const bdd::NodeId g = bdd::transfer(src, f, dst);
    EXPECT_EQ(dst.to_truth_table(g), t);
    // Canonicity in dst: direct construction gives the same id.
    EXPECT_EQ(g, dst.from_truth_table(t));
  }
}

TEST(Transfer, MigrationToOptimalOrderShrinks) {
  const tt::TruthTable f = tt::pair_sum(4);
  bdd::Manager bad(8, tt::pair_sum_interleaved_order(4));
  const bdd::NodeId worst = bad.from_truth_table(f);
  EXPECT_EQ(bad.size(worst), 30u);  // 2^{m+1} - 2
  const auto opt = core::fs_minimize(f);
  bdd::Manager good(8, opt.order_root_first);
  const bdd::NodeId best = bdd::transfer(bad, worst, good);
  EXPECT_EQ(good.size(best), 8u);
}

TEST(Transfer, TerminalsAndMismatches) {
  bdd::Manager a(3), b(3), c(4);
  EXPECT_EQ(bdd::transfer(a, bdd::kTrue, b), bdd::kTrue);
  EXPECT_EQ(bdd::transfer(a, bdd::kFalse, b), bdd::kFalse);
  EXPECT_THROW(bdd::transfer(a, bdd::kTrue, c), util::CheckError);
}

TEST(Transfer, SameOrderIsStructurePreserving) {
  util::Xoshiro256 rng(9);
  const tt::TruthTable t = tt::random_function(6, rng);
  bdd::Manager src(6), dst(6);
  const bdd::NodeId f = src.from_truth_table(t);
  const bdd::NodeId g = bdd::transfer(src, f, dst);
  EXPECT_EQ(src.size(f), dst.size(g));
}

TEST(ZddSerialize, RoundtripPreservesFamily) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const tt::TruthTable t = tt::random_sparse_function(6, 9, rng);
    zdd::Manager m(6, {5, 0, 3, 1, 4, 2});
    const zdd::NodeId f = m.from_truth_table(t);
    const std::string text = zdd::save_zdd(m, f);
    zdd::LoadedZdd loaded = zdd::load_zdd(text);
    EXPECT_EQ(loaded.manager.to_truth_table(loaded.root), t);
    EXPECT_EQ(loaded.manager.size(loaded.root), m.size(f));
    EXPECT_EQ(zdd::save_zdd(loaded.manager, loaded.root), text);
  }
}

TEST(ZddSerialize, TerminalsAndErrors) {
  zdd::Manager m(2);
  EXPECT_EQ(zdd::load_zdd(zdd::save_zdd(m, zdd::kUnit)).root, zdd::kUnit);
  EXPECT_THROW(zdd::load_zdd("ovo-bdd 1\nn 1\n"), util::CheckError);
  EXPECT_THROW(zdd::load_zdd(""), util::CheckError);
}

// --- binary forms ----------------------------------------------------------

TEST(BddSerializeBinary, RoundtripPreservesFunction) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    const tt::TruthTable t = tt::random_function(7, rng);
    bdd::Manager m(7, {3, 6, 0, 5, 1, 4, 2});
    const bdd::NodeId f = m.from_truth_table(t);
    const std::vector<std::uint8_t> bytes = bdd::save_bdd_binary(m, f);
    bdd::LoadedBdd loaded = bdd::load_bdd_binary(bytes.data(), bytes.size());
    EXPECT_EQ(loaded.manager.to_truth_table(loaded.root), t);
    EXPECT_EQ(loaded.manager.size(loaded.root), m.size(f));
    // Canonical: re-saving the loaded diagram is byte-identical.
    EXPECT_EQ(bdd::save_bdd_binary(loaded.manager, loaded.root), bytes);
  }
}

TEST(BddSerializeBinary, Terminals) {
  bdd::Manager m(3);
  const auto bytes = bdd::save_bdd_binary(m, bdd::kTrue);
  EXPECT_EQ(bdd::load_bdd_binary(bytes.data(), bytes.size()).root,
            bdd::kTrue);
}

TEST(ZddSerializeBinary, RoundtripPreservesFamily) {
  util::Xoshiro256 rng(13);
  const tt::TruthTable t = tt::random_sparse_function(6, 9, rng);
  zdd::Manager m(6, {5, 0, 3, 1, 4, 2});
  const zdd::NodeId f = m.from_truth_table(t);
  const std::vector<std::uint8_t> bytes = zdd::save_zdd_binary(m, f);
  zdd::LoadedZdd loaded = zdd::load_zdd_binary(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.manager.to_truth_table(loaded.root), t);
  EXPECT_EQ(zdd::save_zdd_binary(loaded.manager, loaded.root), bytes);
}

/// The decoders must reject malformed bytes with a *typed* error —
/// rt::CheckpointError(kMalformed) for structural violations — never
/// crash or read out of bounds (the fuzz/corpus harnesses lean on this).
TEST(BddSerializeBinary, MalformedBytesAreRejectedTyped) {
  bdd::Manager m(4);
  const bdd::NodeId f = m.from_truth_table(tt::parity(4));
  std::vector<std::uint8_t> bytes = bdd::save_bdd_binary(m, f);

  // Truncation at every prefix length.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(bdd::load_bdd_binary(bytes.data(), len),
                 rt::CheckpointError)
        << "prefix " << len;
  }
  // Wrong tag ('Z' bytes fed to the BDD loader and vice versa).
  {
    zdd::Manager zm(2);
    const std::vector<std::uint8_t> z = zdd::save_zdd_binary(zm, zdd::kUnit);
    EXPECT_THROW(bdd::load_bdd_binary(z.data(), z.size()),
                 rt::CheckpointError);
    EXPECT_THROW(zdd::load_zdd_binary(bytes.data(), bytes.size()),
                 rt::CheckpointError);
  }
  // Trailing garbage after a valid image.
  {
    std::vector<std::uint8_t> longer = bytes;
    longer.push_back(0);
    EXPECT_THROW(bdd::load_bdd_binary(longer.data(), longer.size()),
                 rt::CheckpointError);
  }
  // A corrupted order byte breaks the permutation check.
  {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[6] = corrupt[7];  // duplicate one order entry
    EXPECT_THROW(bdd::load_bdd_binary(corrupt.data(), corrupt.size()),
                 rt::CheckpointError);
  }
}

}  // namespace
}  // namespace ovo
