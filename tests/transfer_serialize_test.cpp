// Tests for cross-manager transfer (order migration) and ZDD
// serialization.

#include <gtest/gtest.h>

#include "bdd/transfer.hpp"
#include "core/minimize.hpp"
#include "tt/function_zoo.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "zdd/serialize.hpp"

namespace ovo {
namespace {

TEST(Transfer, PreservesFunctionAcrossOrders) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const tt::TruthTable t = tt::random_function(7, rng);
    bdd::Manager src(7);
    const bdd::NodeId f = src.from_truth_table(t);
    std::vector<int> order{6, 2, 4, 0, 5, 1, 3};
    bdd::Manager dst(7, order);
    const bdd::NodeId g = bdd::transfer(src, f, dst);
    EXPECT_EQ(dst.to_truth_table(g), t);
    // Canonicity in dst: direct construction gives the same id.
    EXPECT_EQ(g, dst.from_truth_table(t));
  }
}

TEST(Transfer, MigrationToOptimalOrderShrinks) {
  const tt::TruthTable f = tt::pair_sum(4);
  bdd::Manager bad(8, tt::pair_sum_interleaved_order(4));
  const bdd::NodeId worst = bad.from_truth_table(f);
  EXPECT_EQ(bad.size(worst), 30u);  // 2^{m+1} - 2
  const auto opt = core::fs_minimize(f);
  bdd::Manager good(8, opt.order_root_first);
  const bdd::NodeId best = bdd::transfer(bad, worst, good);
  EXPECT_EQ(good.size(best), 8u);
}

TEST(Transfer, TerminalsAndMismatches) {
  bdd::Manager a(3), b(3), c(4);
  EXPECT_EQ(bdd::transfer(a, bdd::kTrue, b), bdd::kTrue);
  EXPECT_EQ(bdd::transfer(a, bdd::kFalse, b), bdd::kFalse);
  EXPECT_THROW(bdd::transfer(a, bdd::kTrue, c), util::CheckError);
}

TEST(Transfer, SameOrderIsStructurePreserving) {
  util::Xoshiro256 rng(9);
  const tt::TruthTable t = tt::random_function(6, rng);
  bdd::Manager src(6), dst(6);
  const bdd::NodeId f = src.from_truth_table(t);
  const bdd::NodeId g = bdd::transfer(src, f, dst);
  EXPECT_EQ(src.size(f), dst.size(g));
}

TEST(ZddSerialize, RoundtripPreservesFamily) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const tt::TruthTable t = tt::random_sparse_function(6, 9, rng);
    zdd::Manager m(6, {5, 0, 3, 1, 4, 2});
    const zdd::NodeId f = m.from_truth_table(t);
    const std::string text = zdd::save_zdd(m, f);
    zdd::LoadedZdd loaded = zdd::load_zdd(text);
    EXPECT_EQ(loaded.manager.to_truth_table(loaded.root), t);
    EXPECT_EQ(loaded.manager.size(loaded.root), m.size(f));
    EXPECT_EQ(zdd::save_zdd(loaded.manager, loaded.root), text);
  }
}

TEST(ZddSerialize, TerminalsAndErrors) {
  zdd::Manager m(2);
  EXPECT_EQ(zdd::load_zdd(zdd::save_zdd(m, zdd::kUnit)).root, zdd::kUnit);
  EXPECT_THROW(zdd::load_zdd("ovo-bdd 1\nn 1\n"), util::CheckError);
  EXPECT_THROW(zdd::load_zdd(""), util::CheckError);
}

}  // namespace
}  // namespace ovo
