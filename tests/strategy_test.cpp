// Migration pins and registry tests for the unified reorder cost-oracle
// and strategy layer.
//
// The pins hard-code the results every algorithm produced *before* the
// CostOracle refactor (same function, same seeds), at thread counts 1
// and 4: the refactor's contract is bit-identical orders, sizes, and
// tie-breaks, with memoization changing only how much work runs, never
// what comes out.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "bdd/dynamic_reorder.hpp"
#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "quantum/min_find.hpp"
#include "quantum/opt_obdd.hpp"
#include "reorder/annealing.hpp"
#include "reorder/baselines.hpp"
#include "reorder/branch_and_bound.hpp"
#include "reorder/exact_window.hpp"
#include "reorder/minimize_auto.hpp"
#include "reorder/oracle.hpp"
#include "reorder/strategy.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {
namespace {

/// The fixed 7-variable function every pin below was measured on.
tt::TruthTable pin_function() {
  util::Xoshiro256 rng(99);
  return tt::random_function(7, rng);
}

std::vector<int> identity(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

using Order = std::vector<int>;

class MigrationPins : public ::testing::TestWithParam<int> {
 protected:
  par::ExecPolicy exec() const {
    par::ExecPolicy e;
    e.num_threads = GetParam();
    return e;
  }
};

TEST_P(MigrationPins, Sift) {
  const tt::TruthTable f = pin_function();
  const auto r = sift(f, identity(7), core::DiagramKind::kBdd, 8, exec());
  EXPECT_EQ(r.internal_nodes, 38u);
  EXPECT_EQ(r.order_root_first, (Order{1, 2, 3, 0, 5, 4, 6}));
  EXPECT_EQ(r.orders_evaluated, 99u);
}

TEST_P(MigrationPins, WindowPermute) {
  const tt::TruthTable f = pin_function();
  const auto r =
      window_permute(f, identity(7), 3, core::DiagramKind::kBdd, 8, exec());
  EXPECT_EQ(r.internal_nodes, 39u);
  EXPECT_EQ(r.order_root_first, (Order{0, 1, 2, 3, 5, 4, 6}));
}

TEST_P(MigrationPins, BruteForce) {
  const tt::TruthTable f = pin_function();
  const auto r = brute_force_minimize(f, core::DiagramKind::kBdd, exec());
  EXPECT_EQ(r.internal_nodes, 36u);
  EXPECT_EQ(r.order_root_first, (Order{1, 3, 5, 4, 6, 0, 2}));
  EXPECT_EQ(r.orders_evaluated, 5040u);
}

TEST_P(MigrationPins, Annealing) {
  const tt::TruthTable f = pin_function();
  util::Xoshiro256 rng(42);
  // The legacy entry has no exec parameter (candidates are sequential by
  // nature); run it at every MigrationPins instantiation anyway so the
  // suite shape stays uniform.
  const auto r = simulated_annealing(f, identity(7), AnnealOptions{}, rng);
  EXPECT_EQ(r.internal_nodes, 36u);
  EXPECT_EQ(r.order_root_first, (Order{5, 3, 1, 4, 6, 0, 2}));
  EXPECT_EQ(r.orders_evaluated, 1201u);
  EXPECT_EQ(r.moves_accepted, 656u);
}

TEST_P(MigrationPins, RandomRestart) {
  const tt::TruthTable f = pin_function();
  util::Xoshiro256 rng(42);
  const auto r =
      random_restart(f, 16, rng, core::DiagramKind::kBdd, exec());
  EXPECT_EQ(r.internal_nodes, 38u);
  EXPECT_EQ(r.order_root_first, (Order{3, 1, 5, 4, 2, 6, 0}));
}

TEST_P(MigrationPins, BranchAndBound) {
  const tt::TruthTable f = pin_function();
  const auto r = branch_and_bound_minimize(f, core::DiagramKind::kBdd,
                                           ~std::uint64_t{0}, exec());
  EXPECT_EQ(r.internal_nodes, 36u);
  EXPECT_EQ(r.order_root_first, (Order{5, 3, 1, 4, 6, 0, 2}));
  EXPECT_EQ(r.states_expanded, 61u);
  EXPECT_TRUE(r.complete);
}

TEST_P(MigrationPins, FsAndExactWindow) {
  const tt::TruthTable f = pin_function();
  const auto fs = core::fs_minimize(f, core::DiagramKind::kBdd, exec());
  EXPECT_EQ(fs.min_internal_nodes, 36u);
  EXPECT_EQ(fs.order_root_first, (Order{1, 3, 5, 4, 6, 0, 2}));
  const auto ew = exact_window(f, identity(7), 3);
  EXPECT_EQ(ew.internal_nodes, 39u);
  EXPECT_EQ(ew.order_root_first, (Order{0, 1, 2, 3, 5, 4, 6}));
}

TEST_P(MigrationPins, MinimizeAutoUnbudgeted) {
  const tt::TruthTable f = pin_function();
  AutoMinimizeOptions opt;
  opt.exec = exec();
  const auto r = minimize_auto(f, rt::Budget{}, opt);
  EXPECT_EQ(r.outcome, rt::Outcome::kComplete);
  EXPECT_TRUE(r.value.optimal);
  EXPECT_EQ(r.value.internal_nodes, 36u);
  EXPECT_EQ(r.value.order_root_first, (Order{1, 3, 5, 4, 6, 0, 2}));
}

TEST_P(MigrationPins, MinimizeAutoBudgeted) {
  const tt::TruthTable f = pin_function();
  AutoMinimizeOptions opt;
  opt.exec = exec();
  const auto r =
      minimize_auto(f, rt::Budget::with_work_limit(3000), opt);
  EXPECT_EQ(r.outcome, rt::Outcome::kDeadline);
  EXPECT_EQ(r.value.internal_nodes, 38u);
  EXPECT_EQ(r.value.order_root_first, (Order{6, 5, 4, 2, 3, 0, 1}));
  EXPECT_EQ(r.value.dp_layers_completed, 1);
  EXPECT_EQ(r.value.lower_bound, 2u);
  EXPECT_EQ(r.stats.work_units, 2928u);
}

TEST_P(MigrationPins, DynamicSift) {
  const tt::TruthTable f = pin_function();
  bdd::Manager m(7);
  const bdd::NodeId root = m.from_truth_table(f);
  const auto r = bdd::sift_in_place(m, {root});
  EXPECT_EQ(r.final_nodes, 38u);
  EXPECT_EQ(r.swaps, 172u);
  EXPECT_EQ(r.passes, 2);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(m.order(), (Order{1, 2, 3, 0, 5, 4, 6}));
}

TEST_P(MigrationPins, QuantumOptObdd) {
  const tt::TruthTable f = pin_function();
  quantum::AccountingMinimumFinder finder(7.0);
  quantum::OptObddOptions opt;
  opt.alphas = {0.27};
  opt.finder = &finder;
  opt.exec = exec();
  const auto r = quantum::opt_obdd_minimize(f, opt);
  EXPECT_EQ(r.min_internal_nodes, 36u);
  EXPECT_EQ(r.order_root_first, (Order{1, 3, 5, 4, 6, 0, 2}));
  EXPECT_EQ(r.quantum.candidates_evaluated, 21u);
  EXPECT_NEAR(r.quantum.quantum_queries, 32.078, 0.01);
  EXPECT_EQ(r.classical_ops.table_cells, 20594u);
}

INSTANTIATE_TEST_SUITE_P(Threads, MigrationPins, ::testing::Values(1, 4));

// ---------------------------------------------------------------------------

TEST(StrategyRegistry, HasElevenEntriesAndRejectsUnknown) {
  EXPECT_EQ(strategies().size(), 11u);
  EXPECT_EQ(find_strategy("no-such-strategy"), nullptr);
  for (const Strategy& s : strategies()) {
    const Strategy* found = find_strategy(s.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &s);
  }
}

TEST(StrategyRegistry, EveryStrategyMatchesItsDirectCall) {
  const tt::TruthTable f = pin_function();
  const StrategyOptions opt;  // window 3, max_passes 8, 16 restarts, seed 42
  const EvalContext ctx;

  const auto run = [&](const char* name) {
    const Strategy* s = find_strategy(name);
    EXPECT_NE(s, nullptr) << name;
    return s->run(f, opt, ctx);
  };

  // Exact engines agree with each other and the registry.
  for (const char* exact : {"fs", "auto", "bnb", "brute", "quantum"}) {
    const StrategyResult r = run(exact);
    EXPECT_EQ(r.internal_nodes, 36u) << exact;
    EXPECT_TRUE(r.optimal) << exact;
    EXPECT_EQ(r.outcome, rt::Outcome::kComplete) << exact;
  }
  EXPECT_EQ(run("fs").order_root_first, (Order{1, 3, 5, 4, 6, 0, 2}));
  EXPECT_EQ(run("bnb").order_root_first, (Order{5, 3, 1, 4, 6, 0, 2}));

  // Heuristics reproduce their direct-call pins.
  EXPECT_EQ(run("sift").internal_nodes, 38u);
  EXPECT_EQ(run("sift").order_root_first, (Order{1, 2, 3, 0, 5, 4, 6}));
  EXPECT_EQ(run("window").internal_nodes, 39u);
  EXPECT_EQ(run("exact-window").internal_nodes, 39u);
  EXPECT_EQ(run("anneal").internal_nodes, 36u);
  EXPECT_EQ(run("anneal").order_root_first, (Order{5, 3, 1, 4, 6, 0, 2}));
  EXPECT_EQ(run("restarts").internal_nodes, 38u);
  EXPECT_EQ(run("restarts").order_root_first, (Order{3, 1, 5, 4, 2, 6, 0}));
  EXPECT_EQ(run("dynamic").internal_nodes, 38u);
  EXPECT_EQ(run("dynamic").order_root_first, (Order{1, 2, 3, 0, 5, 4, 6}));

  // Every strategy reports through the unified counters, and the
  // invariant queries == evals + memo_hits holds wherever queries flow.
  for (const Strategy& s : strategies()) {
    const StrategyResult r = s.run(f, opt, ctx);
    EXPECT_EQ(r.oracle.queries, r.oracle.evals + r.oracle.memo_hits)
        << s.name;
    EXPECT_FALSE(r.order_root_first.empty()) << s.name;
  }
}

TEST(CostOracle, MemoDeterminismAcrossThreadCounts) {
  const tt::TruthTable f = pin_function();
  Order ref_order;
  std::uint64_t ref_nodes = 0, ref_q = 0, ref_e = 0, ref_h = 0;
  for (const int threads : {1, 2, 4, 8}) {
    CostOracle oracle(f, core::DiagramKind::kBdd);
    EvalContext ctx;
    ctx.exec.num_threads = threads;
    const auto r = sift(oracle, identity(7), 8, ctx);
    const OracleStats& st = oracle.stats();
    EXPECT_EQ(st.queries, st.evals + st.memo_hits);
    if (threads == 1) {
      ref_order = r.order_root_first;
      ref_nodes = r.internal_nodes;
      ref_q = st.queries;
      ref_e = st.evals;
      ref_h = st.memo_hits;
      EXPECT_GT(st.memo_hits, 0u);  // sift revisits neighboring orders
    } else {
      EXPECT_EQ(r.order_root_first, ref_order) << threads;
      EXPECT_EQ(r.internal_nodes, ref_nodes) << threads;
      EXPECT_EQ(st.queries, ref_q) << threads;
      EXPECT_EQ(st.evals, ref_e) << threads;
      EXPECT_EQ(st.memo_hits, ref_h) << threads;
    }
  }
}

TEST(CostOracle, MemoNeverLies) {
  // Every memoized answer must equal a fresh evaluation.
  const tt::TruthTable f = pin_function();
  CostOracle memoized(f, core::DiagramKind::kBdd);
  std::vector<Order> orders;
  Order o = identity(7);
  for (int i = 0; i < 50; ++i) {  // successive permutations: all distinct
    orders.push_back(o);
    std::next_permutation(o.begin(), o.end());
  }
  for (int round = 0; round < 2; ++round)  // second round is all hits
    for (const Order& o : orders)
      EXPECT_EQ(memoized.size_for_order(o),
                core::diagram_size_for_order(f, o));
  EXPECT_EQ(memoized.stats().evals, memoized.stats().queries / 2);
  EXPECT_GE(memoized.stats().memo_hits, 50u);
}

TEST(LadderMemoization, SharedOracleSavesChainEvals) {
  // The budgeted ladder runs sifting then restarts on one oracle: some
  // orders recur, so strictly fewer chains run than queries are made,
  // and the memo hits are observable in the result.
  const tt::TruthTable f = pin_function();
  const auto r = minimize_auto(f, rt::Budget::with_work_limit(3000));
  EXPECT_GT(r.value.oracle.memo_hits, 0u);
  EXPECT_LT(r.value.oracle.evals, r.value.oracle.queries);
  EXPECT_EQ(r.value.oracle.evals + r.value.oracle.memo_hits,
            r.value.oracle.queries);
}

TEST(DynamicSiftGoverned, HonorsWorkLimitDeterministically) {
  const tt::TruthTable f = pin_function();
  // Reference: ungoverned result.
  bdd::Manager ref(7);
  const bdd::NodeId ref_root = ref.from_truth_table(f);
  const auto full = bdd::sift_in_place(ref, {ref_root});
  EXPECT_TRUE(full.complete);

  // A tiny work limit trips between variable sweeps; the result is
  // still a consistent manager and is identical at 1 and 4 threads.
  bdd::SiftResult tripped[2];
  Order orders[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    bdd::Manager m(7);
    const bdd::NodeId root = m.from_truth_table(f);
    rt::Governor gov(rt::Budget::with_work_limit(2000));
    EvalContext ctx;
    ctx.exec.num_threads = threads[i];
    ctx.gov = &gov;
    tripped[i] = bdd::sift_in_place(m, {root}, 4, ctx);
    orders[i] = m.order();
    EXPECT_FALSE(tripped[i].complete);
    EXPECT_LT(tripped[i].swaps, full.swaps);
    EXPECT_EQ(bdd::shared_reachable_size(m, {root}),
              tripped[i].final_nodes);
  }
  EXPECT_EQ(orders[0], orders[1]);
  EXPECT_EQ(tripped[0].final_nodes, tripped[1].final_nodes);
  EXPECT_EQ(tripped[0].swaps, tripped[1].swaps);
}

TEST(ParallelReachableSize, MatchesSerialOnLargeDag) {
  // Force the parallel BFS path (threshold is on the arena size) and
  // check it against the serial scan.
  util::Xoshiro256 rng(5);
  const tt::TruthTable f = tt::random_function(18, rng);
  bdd::Manager m(18);
  const bdd::NodeId root = m.from_truth_table(f);
  ASSERT_GE(m.pool_size(), std::size_t{1} << 14);
  par::ExecPolicy exec;
  exec.num_threads = 4;
  EXPECT_EQ(bdd::shared_reachable_size(m, {root}, exec),
            bdd::shared_reachable_size(m, {root}));
}

}  // namespace
}  // namespace ovo::reorder
