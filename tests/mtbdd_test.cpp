// Tests for the multi-terminal BDD package (Remark 2's diagram kind).

#include <gtest/gtest.h>

#include "mtbdd/manager.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ovo::mtbdd {
namespace {

std::vector<Value> popcount_table(int n) {
  std::vector<Value> v(std::uint64_t{1} << n);
  for (std::uint64_t a = 0; a < v.size(); ++a)
    v[a] = static_cast<Value>(__builtin_popcountll(a));
  return v;
}

TEST(Mtbdd, TerminalsInterned) {
  Manager m(2);
  const NodeId a = m.terminal(7);
  const NodeId b = m.terminal(7);
  const NodeId c = m.terminal(-3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(m.num_terminals(), 2u);
}

TEST(Mtbdd, FromValueTableRoundtrip) {
  const int n = 4;
  Manager m(n);
  const auto values = popcount_table(n);
  const NodeId f = m.from_value_table(values);
  EXPECT_EQ(m.to_value_table(f), values);
  EXPECT_EQ(m.num_terminals(), 5u);  // popcounts 0..4
}

TEST(Mtbdd, FromValueTableWrongSizeThrows) {
  Manager m(3);
  EXPECT_THROW(m.from_value_table(std::vector<Value>(7)), util::CheckError);
}

TEST(Mtbdd, RandomRoundtripUnderRandomOrder) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5;
    std::vector<Value> values(32);
    for (auto& v : values) v = static_cast<Value>(rng.below(4));
    std::vector<int> order{0, 1, 2, 3, 4};
    for (int i = 4; i > 0; --i)
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    Manager m(n, order);
    EXPECT_EQ(m.to_value_table(m.from_value_table(values)), values);
  }
}

TEST(Mtbdd, ReductionCollapsesConstantTables) {
  Manager m(4);
  const NodeId f = m.from_value_table(std::vector<Value>(16, 42));
  EXPECT_TRUE(m.is_terminal(f));
  EXPECT_EQ(m.eval(f, 9), 42);
  EXPECT_EQ(m.size(f), 0u);
}

TEST(Mtbdd, ApplyPointwiseArithmetic) {
  const int n = 4;
  Manager m(n);
  const NodeId f = m.from_value_table(popcount_table(n));
  std::vector<Value> twos(16, 2);
  const NodeId g = m.from_value_table(twos);
  const NodeId sum = m.apply(f, g, [](Value a, Value b) { return a + b; });
  const NodeId prod = m.apply(f, g, [](Value a, Value b) { return a * b; });
  for (std::uint64_t a = 0; a < 16; ++a) {
    EXPECT_EQ(m.eval(sum, a), __builtin_popcountll(a) + 2);
    EXPECT_EQ(m.eval(prod, a), 2 * __builtin_popcountll(a));
  }
}

TEST(Mtbdd, ApplyMinIsCanonical) {
  util::Xoshiro256 rng(9);
  const int n = 5;
  Manager m(n);
  std::vector<Value> va(32), vb(32);
  for (auto& v : va) v = static_cast<Value>(rng.below(10));
  for (auto& v : vb) v = static_cast<Value>(rng.below(10));
  const NodeId a = m.from_value_table(va);
  const NodeId b = m.from_value_table(vb);
  const NodeId mn = m.apply(a, b, [](Value x, Value y) {
    return x < y ? x : y;
  });
  std::vector<Value> expect(32);
  for (std::size_t i = 0; i < 32; ++i)
    expect[i] = std::min(va[i], vb[i]);
  // Canonicity: building the expected table directly gives the same id.
  EXPECT_EQ(mn, m.from_value_table(expect));
}

TEST(Mtbdd, SizeAndWidths) {
  const int n = 4;
  Manager m(n);
  const NodeId f = m.from_value_table(popcount_table(n));
  // Popcount MTBDD is the classic "counter" structure: level i has i+1
  // nodes under the identity order.
  EXPECT_EQ(m.level_widths(f),
            (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(m.size(f), 10u);
}

TEST(Mtbdd, DotOutputShowsValues) {
  Manager m(2);
  const NodeId f = m.from_value_table({0, 1, 2, 3});
  const std::string dot = m.to_dot(f);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
}

}  // namespace
}  // namespace ovo::mtbdd
