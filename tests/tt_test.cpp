// Tests for the truth-table representation and the benchmark function zoo.

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "tt/function_zoo.hpp"
#include "tt/truth_table.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ovo::tt {
namespace {

TEST(TruthTable, ConstructsFalse) {
  const TruthTable t(4);
  EXPECT_EQ(t.num_vars(), 4);
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.count_ones(), 0u);
  EXPECT_TRUE(t.is_constant());
}

TEST(TruthTable, SetGetRoundtrip) {
  TruthTable t(5);
  t.set(7, true);
  t.set(31, true);
  t.set(7, false);
  EXPECT_FALSE(t.get(7));
  EXPECT_TRUE(t.get(31));
  EXPECT_EQ(t.count_ones(), 1u);
}

TEST(TruthTable, TabulateMatchesPredicate) {
  const auto t = TruthTable::tabulate(
      6, [](std::uint64_t a) { return std::popcount(a) % 3 == 0; });
  for (std::uint64_t a = 0; a < 64; ++a)
    EXPECT_EQ(t.get(a), std::popcount(a) % 3 == 0);
}

TEST(TruthTable, FromBitsRoundtrip) {
  const std::string bits = "0110100110010110";  // 4-var parity-ish pattern
  const TruthTable t = TruthTable::from_bits(4, bits);
  EXPECT_EQ(t.to_bit_string(), bits);
  EXPECT_THROW(TruthTable::from_bits(4, "01"), util::CheckError);
  EXPECT_THROW(TruthTable::from_bits(1, "0x"), util::CheckError);
}

TEST(TruthTable, ZeroVariableTables) {
  TruthTable t(0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.is_constant());
  t.set(0, true);
  EXPECT_EQ(t.count_ones(), 1u);
}

TEST(TruthTable, DependsOnAndSupport) {
  // f = x0 & x2 on 4 variables.
  const auto t = TruthTable::tabulate(4, [](std::uint64_t a) {
    return (a & 1u) && ((a >> 2) & 1u);
  });
  EXPECT_TRUE(t.depends_on(0));
  EXPECT_FALSE(t.depends_on(1));
  EXPECT_TRUE(t.depends_on(2));
  EXPECT_FALSE(t.depends_on(3));
  EXPECT_EQ(t.support(), 0b0101u);
}

TEST(TruthTable, RestrictVar) {
  const auto t = TruthTable::tabulate(3, [](std::uint64_t a) {
    return ((a & 1u) != 0) != (((a >> 1) & 1u) != 0);  // x0 xor x1
  });
  const TruthTable r0 = t.restrict_var(0, false);  // = x1
  const TruthTable r1 = t.restrict_var(0, true);   // = !x1
  for (std::uint64_t a = 0; a < 8; ++a) {
    EXPECT_EQ(r0.get(a), ((a >> 1) & 1u) != 0);
    EXPECT_EQ(r1.get(a), ((a >> 1) & 1u) == 0);
  }
  EXPECT_FALSE(r0.depends_on(0));
}

TEST(TruthTable, CofactorShrinksArity) {
  const auto t = TruthTable::tabulate(3, [](std::uint64_t a) {
    return std::popcount(a) >= 2;  // majority of 3
  });
  const TruthTable c1 = t.cofactor(1, true);  // maj with x1=1: x0 | x2
  EXPECT_EQ(c1.num_vars(), 2);
  for (std::uint64_t a = 0; a < 4; ++a)
    EXPECT_EQ(c1.get(a), a != 0);
}

TEST(TruthTable, CofactorConsistentWithRestrict) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const TruthTable t = random_function(5, rng);
    for (int v = 0; v < 5; ++v) {
      for (const bool val : {false, true}) {
        const TruthTable full = t.restrict_var(v, val);
        const TruthTable small = t.cofactor(v, val);
        // Re-expand: small over remaining vars == full with v dropped.
        for (std::uint64_t a = 0; a < small.size(); ++a) {
          const util::Mask low = util::full_mask(v);
          const std::uint64_t expanded =
              ((a & ~low) << 1) | (a & low) |
              (val ? (std::uint64_t{1} << v) : 0);
          EXPECT_EQ(small.get(a), full.get(expanded));
        }
      }
    }
  }
}

TEST(TruthTable, PermuteInputsIsGroupAction) {
  util::Xoshiro256 rng(3);
  const TruthTable t = random_function(4, rng);
  const std::vector<int> p{2, 0, 3, 1};
  const std::vector<int> inv{1, 3, 0, 2};
  EXPECT_EQ(t.permute_inputs(p).permute_inputs(inv), t);
  // Identity permutation is a no-op.
  EXPECT_EQ(t.permute_inputs({0, 1, 2, 3}), t);
}

TEST(TruthTable, PermuteInputsSemantics) {
  // f = x0 (projection). After permute with perm[0] = 2, the new variable 0
  // reads the old variable 2's role: result(a) = f(b), bit2 of b = bit0 of a.
  const auto f = TruthTable::tabulate(3, [](std::uint64_t a) {
    return (a & 1u) != 0;
  });
  const TruthTable g = f.permute_inputs({2, 0, 1});
  // g(a) = f(b) with b2 = a0, b0 = a1, b1 = a2 => g = [a1]
  for (std::uint64_t a = 0; a < 8; ++a)
    EXPECT_EQ(g.get(a), ((a >> 1) & 1u) != 0);
}

TEST(TruthTable, LogicOperators) {
  util::Xoshiro256 rng(5);
  const TruthTable a = random_function(5, rng);
  const TruthTable b = random_function(5, rng);
  const TruthTable conj = a & b;
  const TruthTable disj = a | b;
  const TruthTable exor = a ^ b;
  const TruthTable nega = ~a;
  for (std::uint64_t x = 0; x < 32; ++x) {
    EXPECT_EQ(conj.get(x), a.get(x) && b.get(x));
    EXPECT_EQ(disj.get(x), a.get(x) || b.get(x));
    EXPECT_EQ(exor.get(x), a.get(x) != b.get(x));
    EXPECT_EQ(nega.get(x), !a.get(x));
  }
}

TEST(TruthTable, HashDistinguishesAndMatches) {
  util::Xoshiro256 rng(9);
  const TruthTable a = random_function(6, rng);
  TruthTable b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.set(13, !b.get(13));
  EXPECT_NE(a.hash(), b.hash());
}

TEST(TruthTable, CountDistinctSubfunctions) {
  // Parity: every prefix restriction gives parity or its complement => for
  // any bottom set of size k, exactly 2 distinct subfunctions.
  const TruthTable p = parity(5);
  EXPECT_EQ(p.count_distinct_subfunctions(0b00111), 2u);
  EXPECT_EQ(p.count_distinct_subfunctions(0b10101), 2u);
  // Full bottom set: one subfunction (f itself).
  EXPECT_EQ(p.count_distinct_subfunctions(0b11111), 1u);
  // Empty bottom set: restrictions are the 2 constants.
  EXPECT_EQ(p.count_distinct_subfunctions(0), 2u);
}

// --- function zoo -----------------------------------------------------------

TEST(Zoo, PairSumDefinition) {
  const TruthTable f = pair_sum(3);
  EXPECT_EQ(f.num_vars(), 6);
  for (std::uint64_t a = 0; a < 64; ++a) {
    const bool expected = ((a & 1) && (a & 2)) || ((a & 4) && (a & 8)) ||
                          ((a & 16) && (a & 32));
    EXPECT_EQ(f.get(a), expected);
  }
}

TEST(Zoo, PairSumOrders) {
  EXPECT_EQ(pair_sum_natural_order(3), (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(pair_sum_interleaved_order(3),
            (std::vector<int>{0, 2, 4, 1, 3, 5}));
}

TEST(Zoo, ParityCountsHalf) {
  for (int n = 1; n <= 8; ++n)
    EXPECT_EQ(parity(n).count_ones(), std::uint64_t{1} << (n - 1));
}

TEST(Zoo, ConjunctionDisjunction) {
  EXPECT_EQ(conjunction(5).count_ones(), 1u);
  EXPECT_EQ(disjunction(5).count_ones(), 31u);
}

TEST(Zoo, MajorityThresholdConsistency) {
  for (int n = 1; n <= 7; ++n) {
    const TruthTable maj = majority(n);
    const TruthTable thr = threshold(n, n / 2 + 1);
    EXPECT_EQ(maj, thr) << "n=" << n;
  }
}

TEST(Zoo, ThresholdMonotoneInK) {
  const int n = 6;
  for (int k = 1; k <= n; ++k) {
    const TruthTable hi = threshold(n, k);
    const TruthTable lo = threshold(n, k - 1);
    // Raising k can only shrink the onset.
    EXPECT_EQ((hi & lo), hi);
  }
  EXPECT_EQ(threshold(n, 0).count_ones(), 64u);
}

TEST(Zoo, HiddenWeightedBitDefinition) {
  const TruthTable h = hidden_weighted_bit(4);
  EXPECT_FALSE(h.get(0));  // weight 0 => false
  // a = 0b0010: weight 1, selects x1 (1-based), bit 0 of a = 0 => false.
  EXPECT_FALSE(h.get(0b0010));
  // a = 0b0011: weight 2, selects bit 1 of a = 1 => true.
  EXPECT_TRUE(h.get(0b0011));
  // a = 0b1111: weight 4, selects bit 3 = 1 => true.
  EXPECT_TRUE(h.get(0b1111));
}

TEST(Zoo, MultiplierBitMatchesArithmetic) {
  const int n = 6;  // 3x3 multiplier
  for (int bit = 0; bit < n; ++bit) {
    const TruthTable f = multiplier_bit(n, bit);
    for (std::uint64_t a = 0; a < 64; ++a) {
      const std::uint64_t u = a & 7u;
      const std::uint64_t v = (a >> 3) & 7u;
      EXPECT_EQ(f.get(a), ((u * v) >> bit) & 1u);
    }
  }
  EXPECT_THROW(multiplier_bit(5, 0), util::CheckError);
}

TEST(Zoo, AdderCarryMatchesArithmetic) {
  const TruthTable f = adder_carry(6);  // 3-bit operands, interleaved
  for (std::uint64_t a = 0; a < 64; ++a) {
    std::uint64_t u = 0, v = 0;
    for (int i = 0; i < 3; ++i) {
      u |= ((a >> (2 * i)) & 1u) << i;
      v |= ((a >> (2 * i + 1)) & 1u) << i;
    }
    EXPECT_EQ(f.get(a), ((u + v) >> 3) & 1u);
  }
}

TEST(Zoo, IndirectStorageAccess) {
  // n = 6: 2 selector bits, 4 data bits.
  const TruthTable f = indirect_storage_access(6);
  for (std::uint64_t a = 0; a < 64; ++a) {
    const std::uint64_t idx = a & 3u;
    EXPECT_EQ(f.get(a), ((a >> (2 + idx)) & 1u) != 0);
  }
}

TEST(Zoo, RandomSparseHasExactOnes) {
  util::Xoshiro256 rng(17);
  for (const std::uint64_t ones : {0ull, 1ull, 5ull, 32ull, 64ull}) {
    const TruthTable t = random_sparse_function(6, ones, rng);
    EXPECT_EQ(t.count_ones(), ones);
  }
  EXPECT_THROW(random_sparse_function(3, 9, rng), util::CheckError);
}

TEST(Zoo, RandomReadOnceIsNonConstantUsually) {
  util::Xoshiro256 rng(23);
  int non_constant = 0;
  for (int i = 0; i < 20; ++i)
    non_constant += random_read_once(6, rng).is_constant() ? 0 : 1;
  EXPECT_GE(non_constant, 15);
}

}  // namespace
}  // namespace ovo::tt
