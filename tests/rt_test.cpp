// Tests for the ovo::rt resource governor: budget accounting, the
// soft-refusal / hard-stop split, deterministic batch admission, and the
// fault-injection hooks wired into the node stores.

#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "rt/budget.hpp"
#include "rt/fault.hpp"
#include "tt/function_zoo.hpp"
#include "util/check.hpp"

namespace ovo::rt {
namespace {

TEST(Governor, UnlimitedBudgetAdmitsEverything) {
  Governor gov(Budget{});
  EXPECT_TRUE(gov.budget().unlimited());
  EXPECT_TRUE(gov.admit_work(~std::uint64_t{0} / 2));
  EXPECT_TRUE(gov.admit_nodes(1u << 30));
  EXPECT_TRUE(gov.admit_bytes(std::uint64_t{1} << 40));
  EXPECT_TRUE(gov.charge(12345));
  EXPECT_FALSE(gov.stopped());
  EXPECT_EQ(gov.outcome(), Outcome::kComplete);
  EXPECT_EQ(gov.stats().work_units, 12345u);
}

TEST(Governor, WorkRefusalIsSoftNotHard) {
  Governor gov(Budget::with_work_limit(100));
  EXPECT_TRUE(gov.admit_work(100));
  gov.charge(100);
  // The budget is now exhausted: further admissions are refused...
  EXPECT_FALSE(gov.admit_work(1));
  EXPECT_EQ(gov.outcome(), Outcome::kDeadline);
  // ...but the refusal must NOT hard-stop — later ladder stages may
  // still observe a clear stop flag and spend a *different* budget
  // dimension, and zero-cost admissions still pass.
  EXPECT_FALSE(gov.stopped());
  EXPECT_TRUE(gov.admit_work(0));
}

TEST(Governor, BatchAdmissionTruncatesDeterministically) {
  Governor gov(Budget::with_work_limit(35));
  // 10 candidates at 10 units each: only 3 fit.
  EXPECT_EQ(gov.admit_charge_batch(10, 10), 3u);
  EXPECT_EQ(gov.stats().work_units, 30u);
  // 5 units remain; nothing at 10 units fits any more.
  EXPECT_EQ(gov.admit_charge_batch(10, 4), 0u);
  // A cheaper batch still gets its share of the remainder.
  EXPECT_EQ(gov.admit_charge_batch(5, 7), 1u);
  EXPECT_EQ(gov.stats().work_units, 35u);
  EXPECT_EQ(gov.outcome(), Outcome::kDeadline);
  EXPECT_FALSE(gov.stopped());
}

TEST(Governor, NodeAndByteLimits) {
  Budget b;
  b.node_limit = 1000;
  b.bytes_limit = 1u << 20;
  Governor gov(b);
  EXPECT_TRUE(gov.admit_nodes(1000));
  EXPECT_FALSE(gov.admit_nodes(1001));
  EXPECT_TRUE(gov.admit_bytes(1u << 20));
  EXPECT_FALSE(gov.admit_bytes((1u << 20) + 1));
  // First soft refusal wins the outcome report.
  EXPECT_EQ(gov.outcome(), Outcome::kNodeLimit);
  EXPECT_EQ(gov.stats().peak_nodes, 1001u);
  EXPECT_FALSE(gov.stopped());
}

TEST(Governor, CancelTokenIsAHardStop) {
  CancelToken token;
  Budget b;
  b.cancel = &token;
  Governor gov(b);
  EXPECT_FALSE(gov.poll());
  token.cancel();
  EXPECT_TRUE(gov.poll());
  EXPECT_TRUE(gov.stopped());
  EXPECT_TRUE(gov.stop_flag()->load());
  EXPECT_EQ(gov.outcome(), Outcome::kCancelled);
  // Hard stops refuse everything, including zero-cost admissions.
  EXPECT_FALSE(gov.admit_work(0));
  EXPECT_EQ(gov.admit_charge_batch(1, 10), 0u);
}

TEST(Governor, HardReasonBeatsSoftAndFirstHardWins) {
  Governor gov(Budget::with_work_limit(1));
  EXPECT_FALSE(gov.admit_work(2));  // soft kDeadline
  gov.stop(Outcome::kCancelled);
  gov.stop(Outcome::kNodeLimit);  // second hard reason is ignored
  EXPECT_EQ(gov.outcome(), Outcome::kCancelled);
}

TEST(Governor, WallDeadlineTripsEventually) {
  Budget b;
  b.deadline_ms = 1;
  b.check_interval = 1;  // read the clock at every checkpoint
  Governor gov(b);
  bool stopped = false;
  for (int i = 0; i < 1'000'000 && !stopped; ++i) stopped = gov.poll();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(gov.outcome(), Outcome::kDeadline);
}

TEST(Outcome, Names) {
  EXPECT_STREQ(outcome_name(Outcome::kComplete), "complete");
  EXPECT_STREQ(outcome_name(Outcome::kCancelled), "cancelled");
}

// --- fault injection -------------------------------------------------------

TEST(FaultInjection, NthAllocationFailsAndManagersUnwindCleanly) {
  const tt::TruthTable f = tt::parity(10);
  // Fault-free construction works and records how many allocation events
  // a build needs.
  std::uint64_t events = 0;
  {
    ScopedFaultPlan probe(FaultPlan{});
    bdd::Manager m(10);
    m.from_truth_table(f);
    events = probe.allocations_seen();
  }
  ASSERT_GT(events, 0u);
  // Failing each allocation event in turn must surface as std::bad_alloc
  // and leave the manager consistent (strong guarantee: the hooks fire
  // before any state changes).  ASan verifies nothing leaks on the way.
  for (std::uint64_t k = 1; k <= events; ++k) {
    FaultPlan plan;
    plan.fail_alloc_at = k;
    ScopedFaultPlan scoped(plan);
    try {
      bdd::Manager m(10);
      m.from_truth_table(f);
      FAIL() << "allocation " << k << " did not fail";
    } catch (const std::bad_alloc&) {
      // expected
    }
  }
  // With the plan gone, the same build succeeds again.
  bdd::Manager m(10);
  EXPECT_GT(m.from_truth_table(f), bdd::kTrue);
}

TEST(FaultInjection, CancelAtNthCheckpoint) {
  CancelToken token;
  FaultPlan plan;
  plan.cancel_at_checkpoint = 3;
  plan.cancel = &token;
  ScopedFaultPlan scoped(plan);

  Budget b;
  b.cancel = &token;
  Governor gov(b);
  EXPECT_FALSE(gov.poll());
  EXPECT_FALSE(gov.poll());
  EXPECT_TRUE(gov.poll());  // third checkpoint trips the plan
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(gov.stopped());
  EXPECT_EQ(gov.outcome(), Outcome::kCancelled);
  EXPECT_GE(scoped.checkpoints_seen(), 3u);
}

TEST(FaultInjection, OnePlanAtATime) {
  ScopedFaultPlan first(FaultPlan{});
  // Nesting is a hard typed error — and it still derives from
  // util::CheckError so legacy catch sites keep working.
  EXPECT_THROW(ScopedFaultPlan second(FaultPlan{}), FaultNestingError);
  EXPECT_THROW(ScopedFaultPlan third(FaultPlan{}), util::CheckError);
  // The failed installs must not have clobbered the active plan.
  fault_alloc_hook();
  EXPECT_EQ(first.allocations_seen(), 1u);
}

TEST(FaultSites, NamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    FaultSite parsed = FaultSite::kCount;
    ASSERT_TRUE(parse_fault_site(fault_site_name(site), &parsed))
        << fault_site_name(site);
    EXPECT_EQ(parsed, site);
  }
  FaultSite parsed = FaultSite::kCount;
  EXPECT_FALSE(parse_fault_site("not_a_site", &parsed));
}

TEST(FaultSites, FailNthIsOneShotPerSite) {
  FaultSchedule schedule;
  schedule.fail_nth(FaultSite::kFileWrite, 2);
  ScopedFaultPlan plan(schedule);
  EXPECT_FALSE(fault_fileop_hook(FaultSite::kFileWrite));  // event 1
  EXPECT_FALSE(fault_fileop_hook(FaultSite::kFileRename));  // other site
  EXPECT_TRUE(fault_fileop_hook(FaultSite::kFileWrite));   // event 2 fails
  EXPECT_FALSE(fault_fileop_hook(FaultSite::kFileWrite));  // one-shot
  EXPECT_EQ(plan.events_seen(FaultSite::kFileWrite), 3u);
  EXPECT_EQ(plan.events_seen(FaultSite::kFileRename), 1u);
  EXPECT_EQ(plan.injected(FaultSite::kFileWrite), 1u);
  EXPECT_EQ(plan.injected(FaultSite::kFileRename), 0u);
  EXPECT_EQ(plan.total_events(), 4u);
  EXPECT_EQ(plan.total_injected(), 1u);
}

TEST(FaultSites, DispatchInjectionThrowsTyped) {
  FaultSchedule schedule;
  schedule.fail_nth(FaultSite::kTaskDispatch, 1);
  ScopedFaultPlan plan(schedule);
  try {
    fault_dispatch_hook();
    FAIL() << "dispatch fault did not fire";
  } catch (const FaultInjected& e) {
    EXPECT_EQ(e.site(), FaultSite::kTaskDispatch);
  }
}

TEST(FaultSites, PollInjectionTripsTheToken) {
  CancelToken token;
  FaultSchedule schedule;
  schedule.fail_nth(FaultSite::kGovPoll, 2);
  schedule.cancel = &token;
  ScopedFaultPlan plan(schedule);
  Budget b;
  b.cancel = &token;
  Governor gov(b);
  EXPECT_FALSE(gov.poll());
  EXPECT_TRUE(gov.poll());  // injected: hard stop, token tripped
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(gov.outcome(), Outcome::kCancelled);
  // Sticky at the governor even though the site itself is one-shot.
  EXPECT_TRUE(gov.poll());
}

TEST(FaultSites, ProbabilisticInjectionIsSeedDeterministic) {
  const auto injected_pattern = [](std::uint64_t seed) {
    FaultSchedule schedule;
    schedule.probability = 0.5;
    schedule.seed = seed;
    schedule.prob_mask = FaultSchedule::site_bit(FaultSite::kFileWrite);
    ScopedFaultPlan plan(schedule);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(fault_fileop_hook(FaultSite::kFileWrite));
    return fired;
  };
  const std::vector<bool> a = injected_pattern(42);
  const std::vector<bool> b = injected_pattern(42);
  const std::vector<bool> c = injected_pattern(43);
  // Same seed -> bit-identical injection pattern; different seed -> a
  // different pattern (64 fair coin flips colliding is 2^-64).
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // And p=0.5 over 64 events fires at least once for any sane hash.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  // Sites outside prob_mask are untouched.
  FaultSchedule masked;
  masked.probability = 1.0;
  masked.prob_mask = FaultSchedule::site_bit(FaultSite::kFileWrite);
  ScopedFaultPlan plan(masked);
  EXPECT_FALSE(fault_fileop_hook(FaultSite::kFileFsync));
  EXPECT_TRUE(fault_fileop_hook(FaultSite::kFileWrite));
}

}  // namespace
}  // namespace ovo::rt
