// Tests for the hybrid exact-window reordering (FS* inside a sliding
// window — the [MT98, Sec 9.2.2] use case the paper motivates).

#include <gtest/gtest.h>

#include <numeric>

#include "core/minimize.hpp"
#include "reorder/baselines.hpp"
#include "reorder/exact_window.hpp"
#include "tt/function_zoo.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {
namespace {

TEST(ExactWindow, ReportedSizeIsTrueSize) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const tt::TruthTable f = tt::random_function(7, rng);
    std::vector<int> id(7);
    std::iota(id.begin(), id.end(), 0);
    const ExactWindowResult r = exact_window(f, id, 3);
    EXPECT_TRUE(util::is_permutation(r.order_root_first));
    EXPECT_EQ(core::diagram_size_for_order(f, r.order_root_first),
              r.internal_nodes);
  }
}

TEST(ExactWindow, NeverWorseNeverBelowOptimum) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const tt::TruthTable f = tt::random_function(6, rng);
    std::vector<int> id(6);
    std::iota(id.begin(), id.end(), 0);
    const std::uint64_t start = core::diagram_size_for_order(f, id);
    const std::uint64_t opt = core::fs_minimize(f).min_internal_nodes;
    const ExactWindowResult r = exact_window(f, id, 3);
    EXPECT_LE(r.internal_nodes, start);
    EXPECT_GE(r.internal_nodes, opt);
  }
}

TEST(ExactWindow, MatchesFactorialWindowPermutation) {
  // Exact windows must be at least as good as next_permutation windows of
  // the same width (they search the same neighborhoods exactly).
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const tt::TruthTable f = tt::random_function(6, rng);
    std::vector<int> id(6);
    std::iota(id.begin(), id.end(), 0);
    const ExactWindowResult ew = exact_window(f, id, 3);
    const OrderSearchResult wp = window_permute(f, id, 3);
    EXPECT_LE(ew.internal_nodes, wp.internal_nodes);
  }
}

TEST(ExactWindow, FullWidthWindowIsGloballyExact) {
  // window == n degenerates to one FS* run over everything: the global
  // optimum in a single window.
  util::Xoshiro256 rng(9);
  const tt::TruthTable f = tt::random_function(6, rng);
  std::vector<int> id(6);
  std::iota(id.begin(), id.end(), 0);
  const ExactWindowResult r = exact_window(f, id, 6);
  EXPECT_EQ(r.internal_nodes, core::fs_minimize(f).min_internal_nodes);
}

TEST(ExactWindow, SolvesPairSumWithModestWindow) {
  // Interleaved pair_sum needs long-range moves; window 4 suffices for
  // m = 3 after a few passes.
  const tt::TruthTable f = tt::pair_sum(3);
  const ExactWindowResult r =
      exact_window(f, tt::pair_sum_interleaved_order(3), 4);
  EXPECT_EQ(r.internal_nodes, 6u);
  EXPECT_GE(r.windows_optimized, 1u);
}

TEST(ExactWindow, ZddKind) {
  util::Xoshiro256 rng(11);
  const tt::TruthTable f = tt::random_sparse_function(6, 8, rng);
  std::vector<int> id(6);
  std::iota(id.begin(), id.end(), 0);
  const ExactWindowResult r =
      exact_window(f, id, 3, core::DiagramKind::kZdd);
  EXPECT_EQ(core::diagram_size_for_order(f, r.order_root_first,
                                         core::DiagramKind::kZdd),
            r.internal_nodes);
}

TEST(ExactWindow, Validation) {
  const tt::TruthTable f = tt::parity(4);
  EXPECT_THROW(exact_window(f, {0, 1, 2}, 3), util::CheckError);
  EXPECT_THROW(exact_window(f, {0, 1, 2, 3}, 1), util::CheckError);
  EXPECT_THROW(exact_window(f, {0, 0, 2, 3}, 3), util::CheckError);
}

}  // namespace
}  // namespace ovo::reorder
