// Tests for the ROBDD package: canonicity, construction, Boolean
// operations, quantification, and the level-width (Cost) profile.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>

#include "bdd/manager.hpp"
#include "tt/function_zoo.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::bdd {
namespace {

TEST(BddManager, Construction) {
  Manager m(4);
  EXPECT_EQ(m.num_vars(), 4);
  EXPECT_EQ(m.order(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(m.level_of_var(2), 2);
  EXPECT_THROW(Manager(3, {0, 0, 1}), util::CheckError);
  EXPECT_THROW(Manager(3, {0, 1}), util::CheckError);
}

TEST(BddManager, CustomOrder) {
  Manager m(3, {2, 0, 1});
  EXPECT_EQ(m.var_at_level(0), 2);
  EXPECT_EQ(m.level_of_var(2), 0);
  EXPECT_EQ(m.level_of_var(1), 2);
}

TEST(BddManager, TerminalsAndLiterals) {
  Manager m(2);
  EXPECT_EQ(m.constant(false), kFalse);
  EXPECT_EQ(m.constant(true), kTrue);
  const NodeId x0 = m.var_node(0);
  EXPECT_TRUE(m.eval(x0, 0b01));
  EXPECT_FALSE(m.eval(x0, 0b10));
  const NodeId nx0 = m.literal(0, false);
  EXPECT_FALSE(m.eval(nx0, 0b01));
  EXPECT_TRUE(m.eval(nx0, 0b00));
}

TEST(BddManager, MakeAppliesReductionRules) {
  Manager m(2);
  const NodeId x1 = m.var_node(1);
  // Rule (a): equal children collapse.
  EXPECT_EQ(m.make(0, x1, x1), x1);
  // Rule (b): hash consing gives identical ids.
  const NodeId a = m.make(0, kFalse, x1);
  const NodeId b = m.make(0, kFalse, x1);
  EXPECT_EQ(a, b);
}

TEST(BddManager, CanonicityAcrossConstructionPaths) {
  // Build pair_sum(2) once from its truth table and once via ITE ops; in
  // one manager the roots must be the *same id*.
  Manager m(4);
  const NodeId from_tt = m.from_truth_table(tt::pair_sum(2));
  const NodeId ops = m.apply_or(m.apply_and(m.var_node(0), m.var_node(1)),
                                m.apply_and(m.var_node(2), m.var_node(3)));
  EXPECT_EQ(from_tt, ops);
}

class BddRoundtrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BddRoundtrip, FromTruthTableEvaluatesBack) {
  const auto [n, seed] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const tt::TruthTable t = tt::random_function(n, rng);
  // Random ordering as well.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int i = n - 1; i > 0; --i)
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.below(static_cast<std::uint64_t>(i) + 1)]);
  Manager m(n, order);
  const NodeId f = m.from_truth_table(t);
  EXPECT_EQ(m.to_truth_table(f), t);
  EXPECT_EQ(m.satcount(f), t.count_ones());
  EXPECT_EQ(m.support(f), t.support());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BddRoundtrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Range(0, 5)));

class BddAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(BddAlgebra, OperationsMatchTruthTables) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 101);
  const int n = 6;
  const tt::TruthTable ta = tt::random_function(n, rng);
  const tt::TruthTable tb = tt::random_function(n, rng);
  Manager m(n);
  const NodeId a = m.from_truth_table(ta);
  const NodeId b = m.from_truth_table(tb);
  EXPECT_EQ(m.to_truth_table(m.apply_and(a, b)), ta & tb);
  EXPECT_EQ(m.to_truth_table(m.apply_or(a, b)), ta | tb);
  EXPECT_EQ(m.to_truth_table(m.apply_xor(a, b)), ta ^ tb);
  EXPECT_EQ(m.to_truth_table(m.apply_not(a)), ~ta);
  EXPECT_EQ(m.to_truth_table(m.apply_xnor(a, b)), ~(ta ^ tb));
  EXPECT_EQ(m.to_truth_table(m.apply_implies(a, b)), ~ta | tb);
}

TEST_P(BddAlgebra, IteMatchesMux) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const int n = 5;
  const tt::TruthTable tf = tt::random_function(n, rng);
  const tt::TruthTable tg = tt::random_function(n, rng);
  const tt::TruthTable th = tt::random_function(n, rng);
  Manager m(n);
  const NodeId r = m.ite(m.from_truth_table(tf), m.from_truth_table(tg),
                         m.from_truth_table(th));
  EXPECT_EQ(m.to_truth_table(r), (tf & tg) | (~tf & th));
}

TEST_P(BddAlgebra, RestrictAndQuantifiers) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 900);
  const int n = 5;
  const tt::TruthTable t = tt::random_function(n, rng);
  Manager m(n);
  const NodeId f = m.from_truth_table(t);
  for (int v = 0; v < n; ++v) {
    const tt::TruthTable t0 = t.restrict_var(v, false);
    const tt::TruthTable t1 = t.restrict_var(v, true);
    EXPECT_EQ(m.to_truth_table(m.restrict_var(f, v, false)), t0);
    EXPECT_EQ(m.to_truth_table(m.restrict_var(f, v, true)), t1);
    EXPECT_EQ(m.to_truth_table(m.exists(f, v)), t0 | t1);
    EXPECT_EQ(m.to_truth_table(m.forall(f, v)), t0 & t1);
  }
}

TEST_P(BddAlgebra, ComposeMatchesSubstitution) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1300);
  const int n = 5;
  const tt::TruthTable tf = tt::random_function(n, rng);
  const tt::TruthTable tg = tt::random_function(n, rng);
  Manager m(n);
  const NodeId f = m.from_truth_table(tf);
  const NodeId g = m.from_truth_table(tg);
  const int v = 2;
  const NodeId composed = m.compose(f, v, g);
  // Shannon: f[v <- g] = (g & f|v=1) | (!g & f|v=0).
  const tt::TruthTable expected = (tg & tf.restrict_var(v, true)) |
                                  (~tg & tf.restrict_var(v, false));
  EXPECT_EQ(m.to_truth_table(composed), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddAlgebra, ::testing::Range(0, 8));

TEST(BddQueries, SizeAndLevelWidths) {
  Manager m(6);
  const NodeId f = m.from_truth_table(tt::pair_sum(3));
  // Fig. 1 left: 6 internal nodes under the natural ordering.
  EXPECT_EQ(m.size(f), 6u);
  const auto widths = m.level_widths(f);
  EXPECT_EQ(std::accumulate(widths.begin(), widths.end(), std::uint64_t{0}),
            6u);
  // Two nodes per pair except the last level of each pair shares: profile
  // is 1,1,1,1,1,1 for the chain structure of x1x2 + x3x4 + x5x6.
  EXPECT_EQ(widths, (std::vector<std::uint64_t>{1, 1, 1, 1, 1, 1}));
}

TEST(BddQueries, ParityHasLinearSizeUnderAllOrders) {
  const tt::TruthTable p = tt::parity(5);
  for (const auto& order : util::all_permutations(5)) {
    Manager m(5, order);
    EXPECT_EQ(m.size(m.from_truth_table(p)), 2u * 5 - 1);
  }
}

TEST(BddQueries, SatcountOfConstants) {
  Manager m(4);
  EXPECT_EQ(m.satcount(kFalse), 0u);
  EXPECT_EQ(m.satcount(kTrue), 16u);
  EXPECT_EQ(m.satcount(m.var_node(3)), 8u);
}

TEST(BddQueries, FindSatAssignment) {
  Manager m(4);
  const NodeId f = m.from_truth_table(tt::conjunction(4));
  std::uint64_t a = 0;
  ASSERT_TRUE(m.find_sat_assignment(f, &a));
  EXPECT_EQ(a, 0b1111u);
  EXPECT_FALSE(m.find_sat_assignment(kFalse, &a));
}

TEST(BddQueries, DotOutputMentionsVariables) {
  Manager m(2);
  const NodeId f = m.apply_and(m.var_node(0), m.var_node(1));
  const std::string dot = m.to_dot(f);
  EXPECT_NE(dot.find("x1"), std::string::npos);
  EXPECT_NE(dot.find("x2"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(BddStructural, EqualAcrossManagersSameOrder) {
  const tt::TruthTable t = tt::majority(5);
  Manager a(5), b(5);
  EXPECT_TRUE(structurally_equal(a, a.from_truth_table(t), b,
                                 b.from_truth_table(t)));
}

TEST(BddStructural, DifferentFunctionsDiffer) {
  Manager a(3), b(3);
  EXPECT_FALSE(structurally_equal(a, a.from_truth_table(tt::parity(3)), b,
                                  b.from_truth_table(tt::majority(3))));
}

TEST(BddStructural, SameFunctionDifferentOrderLabelsMatter) {
  // structurally_equal compares labeled DAGs. x0 & x1 under (x0,x1) has
  // root labeled x0; under (x1,x0) the root is labeled x1 — different
  // labeled DAGs even though the function is the same.
  const tt::TruthTable conj = tt::conjunction(2);
  Manager a(2, {0, 1}), b(2, {1, 0});
  EXPECT_FALSE(structurally_equal(a, a.from_truth_table(conj), b,
                                  b.from_truth_table(conj)));
  // The projection x0 is a single node labeled x0 at *some* level under
  // either order: identical labeled DAGs.
  const auto proj =
      tt::TruthTable::tabulate(2, [](std::uint64_t x) { return (x & 1) != 0; });
  EXPECT_TRUE(structurally_equal(a, a.from_truth_table(proj), b,
                                 b.from_truth_table(proj)));
}

// The node count of the ROBDD equals the number of distinct non-constant
// subfunctions that depend on their top variable — cross-checked against
// the quasi-reduced distinct-subfunction counter.
TEST(BddInvariant, WidthEqualsDependentSubfunctionCount) {
  util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 6;
    const tt::TruthTable t = tt::random_function(n, rng);
    Manager m(n);
    const NodeId f = m.from_truth_table(t);
    const auto widths = m.level_widths(f);
    for (int level = 0; level < n; ++level) {
      // Bottom set: variables at levels > level (identity order).
      util::Mask bottom = 0;
      for (int l = level + 1; l < n; ++l) bottom |= util::Mask{1} << l;
      const util::Mask with_this = bottom | (util::Mask{1} << level);
      // Count distinct subfunctions over with_this that depend on x_level.
      std::uint64_t depend_count = 0;
      std::set<std::string> seen;
      const util::Mask top = util::full_mask(n) & ~with_this;
      for (std::uint64_t a = 0;
           a < (std::uint64_t{1} << util::popcount(top)); ++a) {
        const std::uint64_t top_assign = util::scatter_bits(a, top);
        std::string sig;
        bool depends = false;
        for (std::uint64_t b = 0;
             b < (std::uint64_t{1} << util::popcount(with_this)); ++b) {
          const std::uint64_t full =
              top_assign | util::scatter_bits(b, with_this);
          sig.push_back(t.get(full) ? '1' : '0');
        }
        // Depends on x_level iff flipping that bit changes the signature.
        const int pos = 0;  // x_level is the lowest bit of with_this
        const std::uint64_t cells = std::uint64_t{1}
                                    << util::popcount(with_this);
        for (std::uint64_t b = 0; b < cells; ++b) {
          if (((b >> pos) & 1u) == 0 &&
              sig[b] != sig[b | (std::uint64_t{1} << pos)]) {
            depends = true;
            break;
          }
        }
        if (depends && seen.insert(sig).second) ++depend_count;
      }
      EXPECT_EQ(widths[static_cast<std::size_t>(level)], depend_count)
          << "level " << level;
    }
  }
}

}  // namespace
}  // namespace ovo::bdd
