#pragma once
// Bounded computed table (operation cache) with generation-based eviction —
// replaces the unbounded std::unordered_map ITE/op caches.
//
// The cache is direct-mapped over a power-of-two slot array: a store
// overwrites whatever lives in the slot (entries are memoized results of
// canonical operations, so losing one only costs recomputation, never
// correctness).  Invalidation — needed after an adjacent-level swap or a
// GC renumbering, when cached node ids go stale — bumps a generation
// counter in O(1) instead of clearing the array; slots from older
// generations read as misses.
//
// Capacity grows geometrically (dropping contents, which need no rehash)
// while the store rate indicates heavy eviction, up to a fixed cap, so the
// table stays bounded regardless of workload.  See docs/INTERNALS.md.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "ds/hash.hpp"
#include "obs/metrics.hpp"

namespace ovo::ds {

/// View over the obs registry's ds.cache.* metrics (see TableStats for
/// the pattern: fields stay, merging is the ledger's).
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;      ///< stores that displaced a live entry
  std::uint64_t resizes = 0;        ///< capacity growths
  std::uint64_t invalidations = 0;  ///< generation bumps

  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kDsCacheLookups, lookups);
    l.record(obs::Metric::kDsCacheHits, hits);
    l.record(obs::Metric::kDsCacheStores, stores);
    l.record(obs::Metric::kDsCacheEvictions, evictions);
    l.record(obs::Metric::kDsCacheResizes, resizes);
    l.record(obs::Metric::kDsCacheInvalidations, invalidations);
  }
  void from_ledger(const obs::Ledger& l) {
    lookups = l.get(obs::Metric::kDsCacheLookups);
    hits = l.get(obs::Metric::kDsCacheHits);
    stores = l.get(obs::Metric::kDsCacheStores);
    evictions = l.get(obs::Metric::kDsCacheEvictions);
    resizes = l.get(obs::Metric::kDsCacheResizes);
    invalidations = l.get(obs::Metric::kDsCacheInvalidations);
  }

  CacheStats& operator+=(const CacheStats& o) {
    obs::Ledger mine, theirs;
    to_ledger(mine);
    o.to_ledger(theirs);
    from_ledger(mine.merge(theirs));
    return *this;
  }

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Keys are a 64-bit word plus a 32-bit word: the BDD ITE cache packs
/// (f, g) into `a` and h into `b`; the ZDD op cache packs (p, q) into `a`
/// and the operation tag into `b`.
class ComputedCache {
 public:
  /// The slot array is allocated lazily on the first store, so managers
  /// that never reach the cached operation pay nothing for the cache.
  explicit ComputedCache(std::size_t initial_slots = 1u << 12,
                         std::size_t max_slots = 1u << 20)
      : initial_slots_(round_pow2(initial_slots)), max_slots_(max_slots) {}

  std::size_t capacity() const { return slots_.size(); }
  const CacheStats& stats() const { return stats_; }

  std::optional<std::uint32_t> lookup(std::uint64_t a, std::uint32_t b) {
    ++stats_.lookups;
    if (slots_.empty()) return std::nullopt;
    const Entry& e = slots_[index(a, b)];
    if (e.gen == gen_ && e.a == a && e.b == b) {
      ++stats_.hits;
      return e.val;
    }
    return std::nullopt;
  }

  void store(std::uint64_t a, std::uint32_t b, std::uint32_t val) {
    if (slots_.empty())
      slots_.resize(initial_slots_);
    else
      maybe_grow();
    Entry& e = slots_[index(a, b)];
    if (e.gen == gen_ && (e.a != a || e.b != b)) ++stats_.evictions;
    e = Entry{a, b, val, gen_};
    ++stats_.stores;
    ++stores_since_resize_;
  }

  /// O(1) full invalidation: stale-generation entries read as misses.
  void invalidate_all() {
    ++stats_.invalidations;
    if (++gen_ == 0) {  // generation wrap: physically reset once per 2^32
      slots_.assign(slots_.size(), Entry{});
      gen_ = 1;
    }
  }

  /// Live entries under the current generation (O(capacity); stats only).
  std::size_t live_entries() const {
    std::size_t n = 0;
    for (const Entry& e : slots_)
      if (e.gen == gen_) ++n;
    return n;
  }

 private:
  struct Entry {
    std::uint64_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t val = 0;
    std::uint32_t gen = 0;  ///< valid iff == current generation (>= 1)
  };

  static std::size_t round_pow2(std::size_t n) {
    std::size_t p = 16;
    while (p < n) p *= 2;
    return p;
  }

  std::size_t index(std::uint64_t a, std::uint32_t b) const {
    return static_cast<std::size_t>(mix64(a ^ mix64(
               std::uint64_t{b} * 0x9e3779b97f4a7c15ull))) &
           (slots_.size() - 1);
  }

  /// More stores than slots since the last resize implies heavy eviction:
  /// double (contents are recomputable, so growth just drops them).
  void maybe_grow() {
    if (slots_.size() >= max_slots_ || stores_since_resize_ <= slots_.size())
      return;
    slots_.assign(slots_.size() * 2, Entry{});
    gen_ = 1;
    stores_since_resize_ = 0;
    ++stats_.resizes;
  }

  std::vector<Entry> slots_;
  std::size_t initial_slots_;
  std::size_t max_slots_;
  std::size_t stores_since_resize_ = 0;
  std::uint32_t gen_ = 1;
  CacheStats stats_;
};

}  // namespace ovo::ds
