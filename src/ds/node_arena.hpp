#pragma once
// Struct-of-arrays node arena: (level, lo, hi) in three parallel flat
// vectors, indexed by dense 32-bit node ids.
//
// The SoA split keeps traversals that touch only one field (eval walks
// levels + one child array; level_widths sweeps levels) from dragging the
// other fields through cache, while make()'s (level, lo, hi) writes stay
// three adjacent appends.  Managers with extra per-node payload (the MTBDD
// terminal values) keep their own parallel vector.  Ids are never freed
// individually; garbage collection rebuilds the arena densely.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rt/fault.hpp"
#include "util/check.hpp"

namespace ovo::ds {

class NodeArena {
 public:
  std::size_t size() const { return level_.size(); }

  void reserve(std::size_t nodes) {
    level_.reserve(nodes);
    lo_.reserve(nodes);
    hi_.reserve(nodes);
  }

  std::uint32_t push(std::int32_t level, std::uint32_t lo, std::uint32_t hi) {
    // Fault-injection point at buffer-growth granularity; throwing here
    // (before any append) keeps the three arrays the same length.
    if (level_.size() == level_.capacity()) rt::fault_alloc_hook();
    const std::uint32_t id = static_cast<std::uint32_t>(level_.size());
    level_.push_back(level);
    lo_.push_back(lo);
    hi_.push_back(hi);
    return id;
  }

  std::int32_t level(std::uint32_t id) const {
    OVO_DCHECK(id < size());
    return level_[id];
  }
  std::uint32_t lo(std::uint32_t id) const {
    OVO_DCHECK(id < size());
    return lo_[id];
  }
  std::uint32_t hi(std::uint32_t id) const {
    OVO_DCHECK(id < size());
    return hi_[id];
  }

  void set_level(std::uint32_t id, std::int32_t level) {
    OVO_DCHECK(id < size());
    level_[id] = level;
  }
  void set_children(std::uint32_t id, std::uint32_t lo, std::uint32_t hi) {
    OVO_DCHECK(id < size());
    lo_[id] = lo;
    hi_[id] = hi;
  }

 private:
  std::vector<std::int32_t> level_;
  std::vector<std::uint32_t> lo_;
  std::vector<std::uint32_t> hi_;
};

}  // namespace ovo::ds
