#pragma once
// CRTP base for the three diagram managers (bdd/zdd/mtbdd): owns the node
// arena, the per-level open-addressed unique tables, the variable-order
// bookkeeping, garbage-collection renumbering, and the always-on table
// counters.  A derived manager contributes only its reduction-rule
// semantics and caches:
//
//   - `static bool reduce_edge(NodeId lo, NodeId hi, NodeId* out)` —
//     the kind's reduction rule (BDD/MTBDD rule (a): lo == hi; ZDD
//     zero-suppression: hi == empty).  Returning true short-circuits
//     make() with *out and creates no node.
//   - `bool is_terminal(NodeId) const` — used by the shared traversals.
//   - optional `void on_node_created(NodeId)` — parallel-payload hook
//     (MTBDD value column).
//   - optional `void on_garbage_collected()` — cache invalidation hook.
//
// The unique tables are conceptually keyed (level, lo, hi): the level
// selects the table, (lo, hi) packs into the 64-bit key.  Node ids are
// dense arena indices assigned in creation order, which keeps every id
// sequence bit-identical to the pre-ovo::ds std::unordered_map
// implementation (the differential tests rely on this).
// See docs/INTERNALS.md for the full layer description.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ds/node_arena.hpp"
#include "ds/unique_table.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::ds {

/// Aggregated view of the store owned by the base (pool + unique tables).
struct StoreStats {
  std::size_t pool_nodes = 0;      ///< arena size incl. terminals
  std::size_t unique_entries = 0;  ///< hash-consing entries across levels
  TableStats unique;               ///< merged unique-table counters
};

template <typename Derived>
class DiagramStoreBase {
 public:
  using NodeId = std::uint32_t;

  int num_vars() const { return n_; }
  const std::vector<int>& order() const { return order_; }

  /// Level of variable v in this manager's ordering.
  int level_of_var(int var) const {
    OVO_CHECK(var >= 0 && var < n_);
    return var_to_level_[static_cast<std::size_t>(var)];
  }
  /// Variable at level l.
  int var_at_level(int level) const {
    OVO_CHECK(level >= 0 && level < n_);
    return order_[static_cast<std::size_t>(level)];
  }

  /// Total nodes ever created (including terminals).
  std::size_t pool_size() const { return arena_.size(); }

  /// Pre-sizes the arena and per-level unique tables for a bottom-up
  /// truth/value-table build over `table_cells` = 2^n cells.  Per level l
  /// the build performs 2^l make() calls, and the FS width bound caps the
  /// distinct nodes by min(2^l, 2^{2^{n-l}}); reservations are clamped so
  /// pathological n cannot pre-commit unbounded memory.
  void reserve_for_table_build(std::uint64_t table_cells) {
    constexpr std::uint64_t kLevelCap = std::uint64_t{1} << 18;
    std::uint64_t total = 0;
    for (int l = 0; l < n_; ++l) {
      const int below = n_ - l;  // free variables under this level
      std::uint64_t bound = std::uint64_t{1} << std::min(l, 62);
      if (below <= 5)  // 2^{2^below} fits: the double-exponential bound bites
        bound = std::min(bound,
                         std::uint64_t{1} << (std::uint64_t{1} << below));
      bound = std::min({bound, table_cells, kLevelCap});
      unique_[static_cast<std::size_t>(l)].reserve(
          static_cast<std::size_t>(bound));
      total += bound;
    }
    arena_.reserve(arena_.size() +
                   static_cast<std::size_t>(
                       std::min(total, std::uint64_t{1} << 20)));
  }

  StoreStats store_stats() const {
    StoreStats s;
    s.pool_nodes = arena_.size();
    for (const UniqueTable& t : unique_) {
      s.unique_entries += t.size();
      s.unique += t.stats();
    }
    return s;
  }

  /// Non-terminal nodes reachable from f.
  std::uint64_t size(NodeId f) const {
    std::uint64_t total = 0;
    for (const std::uint64_t w : level_widths(f)) total += w;
    return total;
  }

  /// Nodes per level reachable from f — the paper's Cost profile, indexed
  /// top-down by level.
  std::vector<std::uint64_t> level_widths(NodeId f) const {
    std::vector<std::uint64_t> widths(static_cast<std::size_t>(n_), 0);
    std::vector<std::uint8_t> seen(arena_.size(), 0);
    std::vector<NodeId> stack;
    if (!derived().is_terminal(f)) stack.push_back(f);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      if (seen[u]) continue;
      seen[u] = 1;
      ++widths[static_cast<std::size_t>(arena_.level(u))];
      const NodeId lo = arena_.lo(u);
      const NodeId hi = arena_.hi(u);
      if (!derived().is_terminal(lo)) stack.push_back(lo);
      if (!derived().is_terminal(hi)) stack.push_back(hi);
    }
    return widths;
  }

 protected:
  DiagramStoreBase(int num_vars, std::vector<int> order, int max_vars,
                   const char* kind)
      : n_(num_vars), order_(std::move(order)) {
    const std::string k(kind);
    OVO_CHECK_MSG(num_vars >= 0 && num_vars <= max_vars,
                  k + ": num_vars out of range");
    OVO_CHECK_MSG(static_cast<int>(order_.size()) == n_,
                  k + ": order length mismatch");
    OVO_CHECK_MSG(util::is_permutation(order_), k + ": order not a permutation");
    var_to_level_ = util::inverse_permutation(order_);
    unique_.resize(static_cast<std::size_t>(n_));
  }

  Derived& derived() { return static_cast<Derived&>(*this); }
  const Derived& derived() const { return static_cast<const Derived&>(*this); }

  /// Reduced unique node: applies the derived reduction rule, then hash
  /// consing through the level's table.  Children must live at strictly
  /// greater levels.
  NodeId make_node(int level, NodeId lo, NodeId hi) {
    OVO_CHECK(level >= 0 && level < n_);
    OVO_DCHECK(lo < arena_.size() && hi < arena_.size());
    OVO_DCHECK(arena_.level(lo) > level && arena_.level(hi) > level);
    NodeId reduced;
    if (Derived::reduce_edge(lo, hi, &reduced)) return reduced;
    const auto [id, inserted] =
        unique_[static_cast<std::size_t>(level)].find_or_insert(
            pack_pair(lo, hi), static_cast<NodeId>(arena_.size()));
    if (inserted) {
      arena_.push(level, lo, hi);
      derived().on_node_created(id);
    }
    return id;
  }

  /// Garbage collection for stores whose terminals are the fixed ids 0
  /// and 1 (BDD/ZDD): drops every node unreachable from `roots`, renumbers
  /// survivors densely in DFS post-order (children before parents, roots
  /// in order), rebuilds the unique tables, and rewrites each root to its
  /// new id.  Returns the number of nodes discarded.
  std::size_t gc_two_terminals(std::vector<NodeId>* roots) {
    OVO_CHECK(roots != nullptr);
    constexpr NodeId kUnmapped = 0xffffffffu;
    const std::size_t old_size = arena_.size();
    NodeArena fresh;
    std::vector<UniqueTable> fresh_unique(static_cast<std::size_t>(n_));
    fresh.push(arena_.level(0), arena_.lo(0), arena_.hi(0));
    fresh.push(arena_.level(1), arena_.lo(1), arena_.hi(1));
    std::vector<NodeId> remap(old_size, kUnmapped);
    remap[0] = 0;
    remap[1] = 1;
    // Children chains descend strictly in level, so depth is at most n.
    auto rec = [&](auto&& self, NodeId u) -> NodeId {
      if (remap[u] != kUnmapped) return remap[u];
      const NodeId lo = self(self, arena_.lo(u));
      const NodeId hi = self(self, arena_.hi(u));
      const std::int32_t level = arena_.level(u);
      const NodeId id = fresh.push(level, lo, hi);
      fresh_unique[static_cast<std::size_t>(level)].insert(pack_pair(lo, hi),
                                                           id);
      remap[u] = id;
      return id;
    };
    for (NodeId& root : *roots) root = rec(rec, root);
    const std::size_t dropped = old_size - fresh.size();
    arena_ = std::move(fresh);
    unique_ = std::move(fresh_unique);
    derived().on_garbage_collected();
    return dropped;
  }

  /// Default hooks (derived classes shadow as needed).
  void on_node_created(NodeId) {}
  void on_garbage_collected() {}

  int n_;
  std::vector<int> order_;
  std::vector<int> var_to_level_;
  NodeArena arena_;
  /// Per-level unique tables; key = pack_pair(lo, hi).
  std::vector<UniqueTable> unique_;
};

}  // namespace ovo::ds
