#pragma once
// Open-addressed, power-of-two, linear-probing hash map from 64-bit keys
// to 32-bit ids — the unique-table / dedup kernel under all three diagram
// managers and the Friedman–Supowit COMPACT primitive.
//
// Layout is two parallel flat arrays (keys, values); a slot is empty iff
// its value is kEmptySlot, so values must stay below 0xffffffff (node ids
// are dense arena indices, far below that).  There is no per-entry
// deletion — managers clear whole level tables (adjacent-level swap) or
// rebuild them (garbage collection), both of which map to clear()/insert.
//
// Always-on counters (lookups, hits, probe-length histogram, resizes) are
// cheap relative to the probe itself and are surfaced through each
// manager's Stats; see docs/INTERNALS.md.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ds/hash.hpp"
#include "obs/metrics.hpp"
#include "rt/fault.hpp"
#include "util/check.hpp"

namespace ovo::ds {

/// Always-on instrumentation for one table (mergeable across tables).
/// A view over the obs registry's ds.unique.* metrics: the fields keep
/// their zero-cost hot-path increments, but merging is defined by the
/// registry's per-metric policy via the ledger round-trip below.
struct TableStats {
  std::uint64_t lookups = 0;  ///< find + find_or_insert calls
  std::uint64_t hits = 0;     ///< lookups that found the key
  std::uint64_t inserts = 0;  ///< new entries created
  std::uint64_t resizes = 0;  ///< growth rehashes
  std::uint64_t probes = 0;   ///< total slots inspected by lookups
  /// Probe-length histogram: 1, 2, 3, 4, 5-8, 9-16, 17-32, >32 slots.
  std::uint64_t probe_hist[8] = {};

  /// Accumulates this struct into `l` under the ds.unique.* metric IDs.
  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kDsUniqueLookups, lookups);
    l.record(obs::Metric::kDsUniqueHits, hits);
    l.record(obs::Metric::kDsUniqueInserts, inserts);
    l.record(obs::Metric::kDsUniqueResizes, resizes);
    l.record(obs::Metric::kDsUniqueProbes, probes);
    for (int i = 0; i < 8; ++i)  // ds.unique.probe_hist.* are contiguous
      l.record(static_cast<obs::Metric>(
                   static_cast<int>(obs::Metric::kDsUniqueProbeHist0) + i),
               probe_hist[i]);
  }
  /// Overwrites this struct from `l`'s ds.unique.* slots.
  void from_ledger(const obs::Ledger& l) {
    lookups = l.get(obs::Metric::kDsUniqueLookups);
    hits = l.get(obs::Metric::kDsUniqueHits);
    inserts = l.get(obs::Metric::kDsUniqueInserts);
    resizes = l.get(obs::Metric::kDsUniqueResizes);
    probes = l.get(obs::Metric::kDsUniqueProbes);
    for (int i = 0; i < 8; ++i)
      probe_hist[i] = l.get(static_cast<obs::Metric>(
          static_cast<int>(obs::Metric::kDsUniqueProbeHist0) + i));
  }

  /// Shard merge, defined by the registry's aggregation policies.
  TableStats& operator+=(const TableStats& o) {
    obs::Ledger mine, theirs;
    to_ledger(mine);
    o.to_ledger(theirs);
    from_ledger(mine.merge(theirs));
    return *this;
  }

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  double avg_probe_length() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(probes) /
                              static_cast<double>(lookups);
  }
};

class UniqueTable {
 public:
  /// Reserved value marking an empty slot; never store it.
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  UniqueTable() = default;
  explicit UniqueTable(std::size_t expected_entries) {
    reserve(expected_entries);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return keys_.size(); }
  const TableStats& stats() const { return stats_; }

  /// Grows capacity so `expected_entries` fit without rehashing.
  void reserve(std::size_t expected_entries) {
    const std::size_t wanted = slots_for(expected_entries);
    if (wanted > keys_.size()) rehash(wanted);
  }

  /// Drops all entries, keeping capacity (and counters).
  void clear() {
    vals_.assign(vals_.size(), kEmptySlot);
    size_ = 0;
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  const std::uint32_t* find(std::uint64_t key) const {
    ++stats_.lookups;
    if (keys_.empty()) {
      record_probes(1);
      return nullptr;
    }
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix64(key) & mask;
    std::uint64_t probes = 1;
    while (vals_[i] != kEmptySlot) {
      if (keys_[i] == key) {
        ++stats_.hits;
        record_probes(probes);
        return &vals_[i];
      }
      i = (i + 1) & mask;
      ++probes;
    }
    record_probes(probes);
    return nullptr;
  }

  /// Returns the existing value for `key`, or inserts `value` and returns
  /// it; the bool is true iff the entry was inserted.
  std::pair<std::uint32_t, bool> find_or_insert(std::uint64_t key,
                                                std::uint32_t value) {
    OVO_DCHECK(value != kEmptySlot);
    if (keys_.empty() || (size_ + 1) * 10 > keys_.size() * 7)
      rehash(keys_.empty() ? kMinSlots : keys_.size() * 2);
    ++stats_.lookups;
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix64(key) & mask;
    std::uint64_t probes = 1;
    while (vals_[i] != kEmptySlot) {
      if (keys_[i] == key) {
        ++stats_.hits;
        record_probes(probes);
        return {vals_[i], false};
      }
      i = (i + 1) & mask;
      ++probes;
    }
    record_probes(probes);
    keys_[i] = key;
    vals_[i] = value;
    ++size_;
    ++stats_.inserts;
    return {value, true};
  }

  /// Inserts a key the caller guarantees absent (e.g. re-registering
  /// canonical nodes after a level swap or GC rebuild).
  void insert(std::uint64_t key, std::uint32_t value) {
    const auto [stored, inserted] = find_or_insert(key, value);
    OVO_DCHECK(inserted && stored == value);
    (void)stored;
    (void)inserted;
  }

 private:
  static constexpr std::size_t kMinSlots = 16;

  /// Smallest power-of-two slot count keeping load factor under 0.7.
  static std::size_t slots_for(std::size_t entries) {
    std::size_t slots = kMinSlots;
    while (entries * 10 > slots * 7) slots *= 2;
    return slots;
  }

  void record_probes(std::uint64_t probes) const {
    stats_.probes += probes;
    const int bucket = probes <= 4    ? static_cast<int>(probes) - 1
                       : probes <= 8  ? 4
                       : probes <= 16 ? 5
                       : probes <= 32 ? 6
                                      : 7;
    ++stats_.probe_hist[bucket];
  }

  void rehash(std::size_t new_slots) {
    // Fault-injection point: growth is the only allocation this table
    // performs, and the hook throws before any state changes, so a
    // simulated allocation failure leaves the table untouched.
    rt::fault_alloc_hook();
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    keys_.assign(new_slots, 0);
    vals_.assign(new_slots, kEmptySlot);
    if (size_ != 0) ++stats_.resizes;
    const std::size_t mask = new_slots - 1;
    for (std::size_t j = 0; j < old_vals.size(); ++j) {
      if (old_vals[j] == kEmptySlot) continue;
      std::size_t i = mix64(old_keys[j]) & mask;
      while (vals_[i] != kEmptySlot) i = (i + 1) & mask;
      keys_[i] = old_keys[j];
      vals_[i] = old_vals[j];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t size_ = 0;
  mutable TableStats stats_;
};

}  // namespace ovo::ds
