#pragma once
// Shared 64-bit key packing and mixing for the ovo::ds open-addressed
// tables (docs/INTERNALS.md, "The ovo::ds node-store layer").
//
// Every table in the layer hashes a full 64-bit key through mix64 (the
// murmur3/splitmix finalizer), so nearby node ids — the common case, since
// ids are dense arena indices — spread over the whole table.  hash_triple
// mixes all three ids at full width; the previous scheme
// (f << 32) ^ (g << 16) ^ h overlapped g's low bits with h's high bits and
// produced systematic ITE-cache collisions (see ds_test.cpp regression).

#include <cstdint>

namespace ovo::ds {

/// Murmur3-style 64-bit finalizer: bijective, avalanching mix.
inline constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Lossless (a, b) -> 64-bit key; the unique tables' (lo, hi) keying.
inline constexpr std::uint64_t pack_pair(std::uint32_t a, std::uint32_t b) {
  return (std::uint64_t{a} << 32) | b;
}

inline constexpr std::uint64_t hash_pair(std::uint32_t a, std::uint32_t b) {
  return mix64(pack_pair(a, b));
}

/// Full 64-bit mixing of three 32-bit ids (ITE computed-table keying).
inline constexpr std::uint64_t hash_triple(std::uint32_t a, std::uint32_t b,
                                           std::uint32_t c) {
  return mix64(pack_pair(a, b) ^
               mix64(std::uint64_t{c} * 0x9e3779b97f4a7c15ull));
}

}  // namespace ovo::ds
