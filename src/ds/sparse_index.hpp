#pragma once
// Sparse rank index over a sorted key set — the storage primitive behind
// the bound-pruned FS* DP's sparse layers.
//
// A dense DP layer stores one payload per colexicographic rank; when
// pruning removes most states, the layer instead keeps a strictly
// ascending vector of surviving keys plus a packed payload vector in the
// same order.  SparseIndex is the lookup half of that pair: a
// non-owning view of the sorted key vector that maps a key to its packed
// position (or npos) by binary search.  For equal-popcount subset masks
// colexicographic order IS numeric order, so the DP's survivor masks are
// already sorted by construction and need no side table.
//
// O(log s) per lookup over s survivors; the dense layers' O(k) rank
// computation is cheaper per probe, but only sparse storage makes pruned
// states cost zero bytes — which is the point (memory, not arithmetic,
// caps the largest solvable n; see docs/INTERNALS.md).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ovo::ds {

class SparseIndex {
 public:
  static constexpr std::size_t npos = ~std::size_t{0};

  SparseIndex() = default;

  /// Views `keys`, which must be strictly ascending and must outlive the
  /// index (the DP keeps each layer's mask vector alive alongside it).
  explicit SparseIndex(const std::vector<std::uint64_t>& keys)
      : keys_(keys.data()), size_(keys.size()) {
#ifndef NDEBUG
    for (std::size_t i = 1; i < size_; ++i)
      OVO_DCHECK(keys_[i - 1] < keys_[i]);
#endif
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Packed position of `key`, or npos if it was pruned from the layer.
  std::size_t rank(std::uint64_t key) const {
    const std::uint64_t* end = keys_ + size_;
    const std::uint64_t* it = std::lower_bound(keys_, end, key);
    if (it == end || *it != key) return npos;
    return static_cast<std::size_t>(it - keys_);
  }

  bool contains(std::uint64_t key) const { return rank(key) != npos; }

 private:
  const std::uint64_t* keys_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ovo::ds
