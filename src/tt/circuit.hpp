#pragma once
// Gate-level combinational circuits (netlists) — the remaining Corollary 2
// input representation.  Signals are numbered 0..num_inputs-1 for primary
// inputs, then one id per gate in topological order.

#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace ovo::tt {

enum class GateOp { kAnd, kOr, kXor, kNand, kNor, kXnor, kNot, kBuf };

struct Gate {
  GateOp op = GateOp::kAnd;
  int a = -1;  ///< first fanin signal id
  int b = -1;  ///< second fanin signal id (-1 for kNot/kBuf)
};

/// A single-output combinational circuit.
class Circuit {
 public:
  explicit Circuit(int num_inputs);

  int num_inputs() const { return num_inputs_; }
  int num_gates() const { return static_cast<int>(gates_.size()); }

  /// Gate feeding signal id `num_inputs() + index`.
  const Gate& gate(int index) const {
    OVO_CHECK(index >= 0 && index < num_gates());
    return gates_[static_cast<std::size_t>(index)];
  }

  /// Adds a gate; fanins must reference existing signals. Returns the new
  /// signal id.
  int add_gate(GateOp op, int a, int b = -1);

  /// Marks the output signal (defaults to the last added gate).
  void set_output(int signal);
  int output() const;

  /// Evaluate under an input assignment (bit i = input i).
  bool eval(std::uint64_t assignment) const;

  /// O*(2^n) tabulation (Corollary 2).
  TruthTable to_truth_table() const;

  /// Builds a ripple-carry adder comparison circuit: true iff
  /// u + v == w for (bits)-bit operands packed u | v<<bits | w<<(2*bits+1)?
  /// See the factory functions below for concrete layouts.

  /// Factory: (half n)-bit ripple-carry adder carry-out, blocked operands.
  static Circuit ripple_carry_out(int operand_bits);

  /// Factory: equality comparator u == v on operand_bits-bit operands.
  static Circuit comparator_eq(int operand_bits);

 private:
  int num_inputs_;
  std::vector<Gate> gates_;
  int output_ = -1;
};

}  // namespace ovo::tt
