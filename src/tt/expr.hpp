#pragma once
// Boolean expression trees with a small parser — one of the alternative
// input representations covered by Corollary 2 of the paper (any
// representation evaluable in poly(n) per assignment can be tabulated in
// O*(2^n) and then minimized).
//
// Grammar (precedence low to high):
//   expr   := xorexp ('|' xorexp)*
//   xorexp := term ('^' term)*
//   term   := factor ('&' factor)*
//   factor := '!' factor | '(' expr ')' | '0' | '1' | var
//   var    := 'x' digits        (1-based, paper style: x1 is variable 0)

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace ovo::tt {

enum class ExprOp { kVar, kConst, kNot, kAnd, kOr, kXor };

/// Immutable expression node. Children are shared so common subexpressions
/// can be reused when building formulas programmatically.
struct Expr {
  ExprOp op = ExprOp::kConst;
  int var = -1;        ///< for kVar: 0-based variable index
  bool value = false;  ///< for kConst
  std::shared_ptr<const Expr> lhs;
  std::shared_ptr<const Expr> rhs;  ///< unused for kNot
};

using ExprPtr = std::shared_ptr<const Expr>;

ExprPtr make_var(int var);
ExprPtr make_const(bool value);
ExprPtr make_not(ExprPtr a);
ExprPtr make_and(ExprPtr a, ExprPtr b);
ExprPtr make_or(ExprPtr a, ExprPtr b);
ExprPtr make_xor(ExprPtr a, ExprPtr b);

/// Parses the grammar above. Throws util::CheckError on syntax errors.
ExprPtr parse_expr(const std::string& text);

/// Evaluate under assignment (bit i = variable i).
bool eval_expr(const Expr& e, std::uint64_t assignment);

/// Highest variable index used, plus one (0 for constant expressions).
int expr_num_vars(const Expr& e);

/// Number of nodes in the expression tree.
std::size_t expr_size(const Expr& e);

/// Render back to the parser's syntax.
std::string expr_to_string(const Expr& e);

/// Tabulate on n variables (n >= expr_num_vars).
TruthTable expr_to_truth_table(const Expr& e, int n);

}  // namespace ovo::tt
