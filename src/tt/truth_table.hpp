#pragma once
// Packed truth-table representation of Boolean functions f: {0,1}^n -> {0,1}.
//
// This is the paper's input representation (Theorem 1): cell index a encodes
// the assignment where bit i of a (0-based) is the value of variable x_{i+1}
// in the paper's 1-based numbering.  The library uses 0-based variable
// indices throughout; the mapping to the paper is var i  <->  x_{i+1}.

#include <cstdint>
#include <string>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ovo::tt {

class TruthTable {
 public:
  /// Maximum supported variable count (2^26 bits = 8 MiB per table).
  static constexpr int kMaxVars = 26;

  /// The constant-false function on n variables.
  explicit TruthTable(int n) : n_(n) {
    OVO_CHECK_MSG(n >= 0 && n <= kMaxVars, "TruthTable: n out of range");
    words_.assign(word_count(n), 0);
  }

  /// Tabulates `eval(assignment)` over all 2^n assignments (Corollary 2 of
  /// the paper: any poly-time-evaluable representation -> truth table in
  /// O*(2^n)).
  template <typename Eval>
  static TruthTable tabulate(int n, Eval&& eval) {
    TruthTable t(n);
    const std::uint64_t cells = t.size();
    for (std::uint64_t a = 0; a < cells; ++a) t.set(a, eval(a));
    return t;
  }

  /// Parses a bitstring like "0110..." of length 2^n, cell 0 first.
  static TruthTable from_bits(int n, const std::string& bits);

  int num_vars() const { return n_; }

  /// Number of cells, 2^n.
  std::uint64_t size() const { return std::uint64_t{1} << n_; }

  bool get(std::uint64_t a) const {
    OVO_DCHECK(a < size());
    return (words_[a >> 6] >> (a & 63)) & 1u;
  }

  void set(std::uint64_t a, bool v) {
    OVO_DCHECK(a < size());
    const std::uint64_t bit = std::uint64_t{1} << (a & 63);
    if (v)
      words_[a >> 6] |= bit;
    else
      words_[a >> 6] &= ~bit;
  }

  /// Evaluate under an assignment given as a bit mask (bit i = var i).
  bool operator()(std::uint64_t assignment) const { return get(assignment); }

  /// Number of satisfying assignments.
  std::uint64_t count_ones() const;

  bool is_constant() const;

  /// True if f depends on variable `var` (some pair of adjacent-in-var cells
  /// differs).
  bool depends_on(int var) const;

  /// The set of variables f depends on, as a mask.
  util::Mask support() const;

  /// f with variable `var` fixed to `val`; result still has n variables but
  /// no longer depends on `var` (both cofactor cells hold the same value).
  TruthTable restrict_var(int var, bool val) const;

  /// Project away variable `var` after restriction: an (n-1)-variable table
  /// over the remaining variables in ascending order.
  TruthTable cofactor(int var, bool val) const;

  /// Relabel inputs: result(a) = this(b) where bit perm[i] of b = bit i of a.
  /// I.e. variable i of the result is variable perm[i] of the original.
  TruthTable permute_inputs(const std::vector<int>& perm) const;

  /// Number of distinct subfunctions over the variable set `bottom`
  /// (a mask) obtained by assigning all variables outside `bottom`; this is
  /// the node count of the quasi-reduced bottom |bottom| layers plus
  /// constants. Used by tests as an independent cross-check of DP widths.
  std::uint64_t count_distinct_subfunctions(util::Mask bottom) const;

  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;

  bool operator==(const TruthTable& o) const {
    return n_ == o.n_ && words_ == o.words_;
  }
  bool operator!=(const TruthTable& o) const { return !(*this == o); }

  /// FNV-style content hash (for dedup in tests).
  std::uint64_t hash() const;

  /// "0110..." cell 0 first.
  std::string to_bit_string() const;

 private:
  static std::size_t word_count(int n) {
    return n <= 6 ? 1 : (std::size_t{1} << (n - 6));
  }
  void check_same_shape(const TruthTable& o) const {
    OVO_CHECK_MSG(n_ == o.n_, "TruthTable: arity mismatch");
  }

  int n_;
  std::vector<std::uint64_t> words_;
};

}  // namespace ovo::tt
