#include "tt/blif.hpp"

#include <sstream>
#include <unordered_set>

#include "tt/parse_error.hpp"
#include "util/check.hpp"

namespace ovo::tt {

namespace {

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw ParseError("BLIF line " + std::to_string(line_no) + ": " + msg);
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Evaluation context: memoized recursive evaluation with cycle detection.
class Evaluator {
 public:
  Evaluator(const BlifModel& model, std::uint64_t assignment)
      : model_(model), assignment_(assignment) {
    for (std::size_t i = 0; i < model.inputs.size(); ++i)
      input_index_.emplace(model.inputs[i], static_cast<int>(i));
    for (const BlifCover& c : model.covers)
      cover_of_.emplace(c.output, &c);
  }

  bool eval(const std::string& signal) {
    if (const auto it = input_index_.find(signal);
        it != input_index_.end())
      return ((assignment_ >> it->second) & 1u) != 0;
    if (const auto it = value_.find(signal); it != value_.end())
      return it->second;
    const auto cit = cover_of_.find(signal);
    OVO_CHECK_MSG(cit != cover_of_.end(),
                  "BLIF: undefined signal '" + signal + "'");
    OVO_CHECK_MSG(in_progress_.insert(signal).second,
                  "BLIF: combinational cycle through '" + signal + "'");
    const BlifCover& cover = *cit->second;
    bool covered = false;
    for (const std::string& cube : cover.cubes) {
      bool hit = true;
      for (std::size_t i = 0; i < cover.fanins.size(); ++i) {
        const char c = cube[i];
        if (c == '-') continue;
        if (eval(cover.fanins[i]) != (c == '1')) {
          hit = false;
          break;
        }
      }
      if (hit) {
        covered = true;
        break;
      }
    }
    const bool v = cover.out_value == '1' ? covered : !covered;
    in_progress_.erase(signal);
    value_.emplace(signal, v);
    return v;
  }

 private:
  const BlifModel& model_;
  std::uint64_t assignment_;
  std::unordered_map<std::string, int> input_index_;
  std::unordered_map<std::string, const BlifCover*> cover_of_;
  std::unordered_map<std::string, bool> value_;
  std::unordered_set<std::string> in_progress_;
};

}  // namespace

bool BlifModel::eval(const std::string& signal,
                     std::uint64_t assignment) const {
  Evaluator ev(*this, assignment);
  return ev.eval(signal);
}

TruthTable BlifModel::output_table(const std::string& output) const {
  OVO_CHECK_MSG(static_cast<int>(inputs.size()) <= TruthTable::kMaxVars,
                "BLIF: too many primary inputs to tabulate");
  return TruthTable::tabulate(
      static_cast<int>(inputs.size()),
      [&](std::uint64_t a) { return eval(output, a); });
}

std::vector<TruthTable> BlifModel::output_tables() const {
  std::vector<TruthTable> out;
  out.reserve(outputs.size());
  for (const std::string& o : outputs) out.push_back(output_table(o));
  return out;
}

BlifModel parse_blif(const std::string& text) {
  BlifModel model;
  bool ended = false;
  BlifCover* current = nullptr;
  std::unordered_set<std::string> cover_outputs;

  // Pre-join continuation lines.
  std::vector<std::pair<int, std::string>> lines;
  {
    std::istringstream is(text);
    std::string raw;
    int line_no = 0;
    std::string pending;
    int pending_line = 0;
    while (std::getline(is, raw)) {
      ++line_no;
      const std::size_t hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      if (!raw.empty() && raw.back() == '\\') {
        raw.pop_back();
        if (pending.empty()) pending_line = line_no;
        pending += raw + ' ';
        continue;
      }
      if (!pending.empty()) {
        lines.emplace_back(pending_line, pending + raw);
        pending.clear();
      } else {
        lines.emplace_back(line_no, raw);
      }
    }
    if (!pending.empty())
      fail(pending_line, "truncated file: line continuation at end of file");
  }

  for (const auto& [line_no, line] : lines) {
    const std::vector<std::string> tok = split_ws(line);
    if (tok.empty()) continue;
    if (ended) fail(line_no, "content after .end");

    if (tok[0] == ".model") {
      if (tok.size() >= 2) model.name = tok[1];
      current = nullptr;
    } else if (tok[0] == ".inputs") {
      model.inputs.insert(model.inputs.end(), tok.begin() + 1, tok.end());
      current = nullptr;
    } else if (tok[0] == ".outputs") {
      model.outputs.insert(model.outputs.end(), tok.begin() + 1, tok.end());
      current = nullptr;
    } else if (tok[0] == ".names") {
      if (tok.size() < 2) fail(line_no, ".names needs an output signal");
      if (!cover_outputs.insert(tok.back()).second)
        fail(line_no, "duplicate .names for '" + tok.back() +
                          "' (the evaluator would silently use the first)");
      BlifCover cover;
      cover.fanins.assign(tok.begin() + 1, tok.end() - 1);
      cover.output = tok.back();
      model.covers.push_back(std::move(cover));
      current = &model.covers.back();
    } else if (tok[0] == ".end") {
      ended = true;
      current = nullptr;
    } else if (tok[0] == ".latch" || tok[0] == ".subckt" ||
               tok[0] == ".gate") {
      fail(line_no, "sequential/hierarchical BLIF is not supported");
    } else if (tok[0][0] == '.') {
      fail(line_no, "unsupported directive '" + tok[0] + "'");
    } else {
      // Cover row.
      if (current == nullptr) fail(line_no, "cover row outside .names");
      std::string plane;
      char out_char;
      if (current->fanins.empty()) {
        if (tok.size() != 1 || tok[0].size() != 1)
          fail(line_no, "constant cover row must be a single 0/1");
        plane = "";
        out_char = tok[0][0];
      } else {
        if (tok.size() != 2)
          fail(line_no, "cover row needs <plane> <output>");
        plane = tok[0];
        if (tok[1].size() != 1) fail(line_no, "output column must be 0/1");
        out_char = tok[1][0];
      }
      if (out_char != '0' && out_char != '1')
        fail(line_no, "output column must be 0/1");
      if (plane.size() != current->fanins.size())
        fail(line_no, "cover row width disagrees with .names fanins");
      for (const char c : plane)
        if (c != '0' && c != '1' && c != '-')
          fail(line_no, "invalid cover character");
      if (current->cubes.empty()) {
        current->out_value = out_char;
      } else if (current->out_value != out_char) {
        fail(line_no, "mixed output values in one cover");
      }
      current->cubes.push_back(plane);
    }
  }
  if (model.inputs.empty()) throw ParseError("BLIF: no .inputs");
  if (model.outputs.empty()) throw ParseError("BLIF: no .outputs");
  if (!ended) throw ParseError("BLIF: truncated file: missing .end");
  return model;
}

}  // namespace ovo::tt
