#pragma once
// Typed error for malformed input files (PLA, BLIF).
//
// Derives from util::CheckError so existing call sites that treat any
// checked failure uniformly keep working; catch ParseError specifically
// to distinguish bad *input data* (user-supplied files) from violated
// internal invariants.

#include <string>

#include "util/check.hpp"

namespace ovo::tt {

class ParseError : public util::CheckError {
 public:
  explicit ParseError(const std::string& what) : util::CheckError(what) {}
};

}  // namespace ovo::tt
