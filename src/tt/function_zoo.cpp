#include "tt/function_zoo.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace ovo::tt {

TruthTable pair_sum(int pairs) {
  OVO_CHECK(pairs >= 1);
  const int n = 2 * pairs;
  return TruthTable::tabulate(n, [&](std::uint64_t a) {
    for (int p = 0; p < pairs; ++p) {
      const bool x = (a >> (2 * p)) & 1u;
      const bool y = (a >> (2 * p + 1)) & 1u;
      if (x && y) return true;
    }
    return false;
  });
}

std::vector<int> pair_sum_interleaved_order(int pairs) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(2 * pairs));
  for (int p = 0; p < pairs; ++p) order.push_back(2 * p);      // x1,x3,x5...
  for (int p = 0; p < pairs; ++p) order.push_back(2 * p + 1);  // x2,x4,x6...
  return order;
}

std::vector<int> pair_sum_natural_order(int pairs) {
  std::vector<int> order(static_cast<std::size_t>(2 * pairs));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TruthTable parity(int n) {
  return TruthTable::tabulate(n, [](std::uint64_t a) {
    return (std::popcount(a) & 1) != 0;
  });
}

TruthTable conjunction(int n) {
  const std::uint64_t all = util::full_mask(n);
  return TruthTable::tabulate(n,
                              [all](std::uint64_t a) { return a == all; });
}

TruthTable disjunction(int n) {
  return TruthTable::tabulate(n, [](std::uint64_t a) { return a != 0; });
}

TruthTable majority(int n) {
  return TruthTable::tabulate(n, [n](std::uint64_t a) {
    return 2 * std::popcount(a) > n;
  });
}

TruthTable threshold(int n, int k) {
  return TruthTable::tabulate(n, [k](std::uint64_t a) {
    return std::popcount(a) >= k;
  });
}

TruthTable hidden_weighted_bit(int n) {
  return TruthTable::tabulate(n, [](std::uint64_t a) {
    const int w = std::popcount(a);
    if (w == 0) return false;
    return ((a >> (w - 1)) & 1u) != 0;
  });
}

TruthTable multiplier_bit(int n, int out_bit) {
  OVO_CHECK_MSG(n % 2 == 0, "multiplier_bit: n must be even");
  const int half = n / 2;
  OVO_CHECK(out_bit >= 0 && out_bit < n);
  const std::uint64_t lo_mask = util::full_mask(half);
  return TruthTable::tabulate(n, [=](std::uint64_t a) {
    const std::uint64_t u = a & lo_mask;
    const std::uint64_t v = (a >> half) & lo_mask;
    return ((u * v) >> out_bit) & 1u;
  });
}

TruthTable multiplier_middle_bit(int n) {
  return multiplier_bit(n, n / 2 - 1);
}

TruthTable adder_carry(int n) {
  OVO_CHECK_MSG(n % 2 == 0, "adder_carry: n must be even");
  const int half = n / 2;
  return TruthTable::tabulate(n, [=](std::uint64_t a) {
    // Interleaved operands: even bits -> u, odd bits -> v.
    std::uint64_t u = 0, v = 0;
    for (int i = 0; i < half; ++i) {
      u |= ((a >> (2 * i)) & 1u) << i;
      v |= ((a >> (2 * i + 1)) & 1u) << i;
    }
    return ((u + v) >> half) & 1u;
  });
}

TruthTable indirect_storage_access(int n) {
  int sel = 0;
  while ((1 << sel) < n - sel) ++sel;
  OVO_CHECK_MSG(sel >= 1 && sel < n, "indirect_storage_access: n too small");
  const int data = n - sel;
  return TruthTable::tabulate(n, [=](std::uint64_t a) {
    const std::uint64_t idx = a & util::full_mask(sel);
    if (idx >= static_cast<std::uint64_t>(data)) return false;
    return ((a >> (sel + idx)) & 1u) != 0;
  });
}

TruthTable random_function(int n, util::Xoshiro256& rng) {
  return TruthTable::tabulate(
      n, [&rng](std::uint64_t) { return rng.coin(); });
}

TruthTable random_sparse_function(int n, std::uint64_t ones,
                                  util::Xoshiro256& rng) {
  TruthTable t(n);
  const std::uint64_t cells = t.size();
  OVO_CHECK_MSG(ones <= cells, "random_sparse_function: too many ones");
  // Floyd's sampling: uniform `ones`-subset of cells.
  std::vector<std::uint64_t> chosen;
  chosen.reserve(ones);
  for (std::uint64_t j = cells - ones; j < cells; ++j) {
    const std::uint64_t t_cand = rng.below(j + 1);
    const bool hit =
        std::find(chosen.begin(), chosen.end(), t_cand) != chosen.end();
    chosen.push_back(hit ? j : t_cand);
  }
  for (std::uint64_t c : chosen) t.set(c, true);
  return t;
}

TruthTable random_read_once(int n, util::Xoshiro256& rng) {
  std::vector<int> vars(static_cast<std::size_t>(n));
  std::iota(vars.begin(), vars.end(), 0);
  for (int i = n - 1; i > 0; --i)
    std::swap(vars[static_cast<std::size_t>(i)], vars[rng.below(
        static_cast<std::uint64_t>(i) + 1)]);
  // Fold a random AND/OR tree over the shuffled variables.
  std::vector<bool> ops;  // true = AND
  for (int i = 0; i + 1 < n; ++i) ops.push_back(rng.coin());
  return TruthTable::tabulate(n, [&](std::uint64_t a) {
    bool acc = ((a >> vars[0]) & 1u) != 0;
    for (int i = 1; i < n; ++i) {
      const bool x = ((a >> vars[static_cast<std::size_t>(i)]) & 1u) != 0;
      acc = ops[static_cast<std::size_t>(i - 1)] ? (acc && x) : (acc || x);
    }
    return acc;
  });
}

}  // namespace ovo::tt
