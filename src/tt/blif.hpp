#pragma once
// BLIF (Berkeley Logic Interchange Format) reader — the standard format
// for multi-level logic benchmarks (MCNC/ISCAS nets).  Supported subset:
// `.model`, `.inputs`, `.outputs`, `.names` single-output covers with
// {0,1,-} input plane and a uniform {0,1} output column, constants
// (`.names f` with a `1` row or no rows), comments (`#`), line
// continuation (`\`), `.end`.  Latches and subcircuits are rejected.

#include <string>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"

namespace ovo::tt {

struct BlifCover {
  std::vector<std::string> fanins;  ///< signal names, in .names order
  std::string output;
  std::vector<std::string> cubes;   ///< input planes, chars in {0,1,-}
  char out_value = '1';             ///< '1': cubes are the ON-set;
                                    ///< '0': cubes are the OFF-set
};

struct BlifModel {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<BlifCover> covers;

  /// Evaluate signal `signal` under an assignment to the primary inputs
  /// (bit i = inputs[i]). Throws on undefined or cyclic signals.
  bool eval(const std::string& signal, std::uint64_t assignment) const;

  /// Truth table of one primary output over the primary inputs.
  TruthTable output_table(const std::string& output) const;

  /// All primary-output tables, in .outputs order.
  std::vector<TruthTable> output_tables() const;
};

/// Parses BLIF text. Throws util::CheckError with a line number on
/// malformed input.
BlifModel parse_blif(const std::string& text);

}  // namespace ovo::tt
