#include "tt/circuit.hpp"

#include "util/check.hpp"

namespace ovo::tt {

Circuit::Circuit(int num_inputs) : num_inputs_(num_inputs) {
  OVO_CHECK(num_inputs >= 0 && num_inputs <= TruthTable::kMaxVars);
}

int Circuit::add_gate(GateOp op, int a, int b) {
  const int limit = num_inputs_ + num_gates();
  OVO_CHECK_MSG(a >= 0 && a < limit, "add_gate: bad fanin a");
  const bool unary = (op == GateOp::kNot || op == GateOp::kBuf);
  if (unary) {
    OVO_CHECK_MSG(b == -1, "add_gate: unary gate takes one fanin");
  } else {
    OVO_CHECK_MSG(b >= 0 && b < limit, "add_gate: bad fanin b");
  }
  gates_.push_back(Gate{op, a, b});
  output_ = limit;  // default output tracks the last gate
  return limit;
}

void Circuit::set_output(int signal) {
  OVO_CHECK(signal >= 0 && signal < num_inputs_ + num_gates());
  output_ = signal;
}

int Circuit::output() const {
  OVO_CHECK_MSG(output_ >= 0, "Circuit: no output set");
  return output_;
}

bool Circuit::eval(std::uint64_t assignment) const {
  OVO_CHECK_MSG(output_ >= 0, "Circuit: no output set");
  std::vector<bool> value(static_cast<std::size_t>(num_inputs_) +
                          gates_.size());
  for (int i = 0; i < num_inputs_; ++i)
    value[static_cast<std::size_t>(i)] = ((assignment >> i) & 1u) != 0;
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    const bool a = value[static_cast<std::size_t>(gate.a)];
    const bool b = gate.b >= 0 && value[static_cast<std::size_t>(gate.b)];
    bool out = false;
    switch (gate.op) {
      case GateOp::kAnd:  out = a && b; break;
      case GateOp::kOr:   out = a || b; break;
      case GateOp::kXor:  out = a != b; break;
      case GateOp::kNand: out = !(a && b); break;
      case GateOp::kNor:  out = !(a || b); break;
      case GateOp::kXnor: out = a == b; break;
      case GateOp::kNot:  out = !a; break;
      case GateOp::kBuf:  out = a; break;
    }
    value[static_cast<std::size_t>(num_inputs_) + g] = out;
  }
  return value[static_cast<std::size_t>(output_)];
}

TruthTable Circuit::to_truth_table() const {
  return TruthTable::tabulate(
      num_inputs_, [this](std::uint64_t a) { return eval(a); });
}

Circuit Circuit::ripple_carry_out(int operand_bits) {
  OVO_CHECK(operand_bits >= 1);
  // Inputs: u_0..u_{k-1} at signals 0..k-1, v bits at k..2k-1.
  Circuit c(2 * operand_bits);
  int carry = -1;
  for (int i = 0; i < operand_bits; ++i) {
    const int u = i;
    const int v = operand_bits + i;
    if (carry < 0) {
      carry = c.add_gate(GateOp::kAnd, u, v);
    } else {
      const int uv = c.add_gate(GateOp::kAnd, u, v);
      const int uxv = c.add_gate(GateOp::kXor, u, v);
      const int prop = c.add_gate(GateOp::kAnd, uxv, carry);
      carry = c.add_gate(GateOp::kOr, uv, prop);
    }
  }
  c.set_output(carry);
  return c;
}

Circuit Circuit::comparator_eq(int operand_bits) {
  OVO_CHECK(operand_bits >= 1);
  Circuit c(2 * operand_bits);
  int acc = -1;
  for (int i = 0; i < operand_bits; ++i) {
    const int eq = c.add_gate(GateOp::kXnor, i, operand_bits + i);
    acc = acc < 0 ? eq : c.add_gate(GateOp::kAnd, acc, eq);
  }
  c.set_output(acc);
  return c;
}

}  // namespace ovo::tt
