#pragma once
// A zoo of benchmark Boolean functions with known ordering behaviour,
// including the paper's running example (Fig. 1) and classic
// ordering-sensitive functions from the OBDD literature.

#include <cstdint>

#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace ovo::tt {

/// The paper's Fig. 1 function family:
///   f(x_1..x_{2m}) = x_1 x_2 + x_3 x_4 + ... + x_{2m-1} x_{2m}.
/// Optimal ordering (x_1, x_2, ..., x_{2m}) gives a (2m+2)-node OBDD;
/// the interleaved ordering (x_1, x_3, ..., x_2, x_4, ...) gives 2^{m+1}.
TruthTable pair_sum(int pairs);

/// The interleaved (pessimal) reading order for pair_sum, as a permutation
/// suitable for bdd::Manager: position -> variable read at that position,
/// root-first: (x_1, x_3, ..., x_{2m-1}, x_2, x_4, ..., x_{2m}) in 0-based
/// variable indices.
std::vector<int> pair_sum_interleaved_order(int pairs);

/// The natural (optimal) order (x_1, ..., x_{2m}), 0-based.
std::vector<int> pair_sum_natural_order(int pairs);

/// XOR of all n variables (ordering-insensitive: size n+2 for every order).
TruthTable parity(int n);

/// AND of all n variables.
TruthTable conjunction(int n);

/// OR of all n variables.
TruthTable disjunction(int n);

/// Majority: 1 iff more than n/2 inputs are 1.
TruthTable majority(int n);

/// Threshold-k: 1 iff at least k inputs are 1.
TruthTable threshold(int n, int k);

/// Hidden weighted bit: HWB(x) = x_{wt(x)} (and 0 when wt(x)=0), a classic
/// function whose OBDD is exponential for every ordering.
TruthTable hidden_weighted_bit(int n);

/// Bit `out_bit` (0-based, from LSB) of the product of two (n/2)-bit
/// integers packed as (low half = first operand). n must be even.
/// The middle bit is the classic exponential-for-all-orderings function.
TruthTable multiplier_bit(int n, int out_bit);

/// Middle output bit of an n/2 x n/2 multiplier.
TruthTable multiplier_middle_bit(int n);

/// Carry-out of an (n/2)-bit ripple adder over interleaved operands.
TruthTable adder_carry(int n);

/// Indirect storage access (ISA): the first ceil(log2 n) variables select
/// one of the remaining variables to output. Ordering-sensitive.
TruthTable indirect_storage_access(int n);

/// Uniformly random function on n variables.
TruthTable random_function(int n, util::Xoshiro256& rng);

/// Random function with exactly `ones` satisfying assignments (sparse
/// characteristic functions, the ZDD-friendly regime).
TruthTable random_sparse_function(int n, std::uint64_t ones,
                                  util::Xoshiro256& rng);

/// Random read-once formula (AND/OR alternating over a random shuffle of
/// variables) — these always have small optimal OBDDs, good stress input
/// for the gap between optimal and pessimal orderings.
TruthTable random_read_once(int n, util::Xoshiro256& rng);

}  // namespace ovo::tt
