#pragma once
// DNF / CNF representations (Corollary 2 input forms) with evaluation,
// tabulation, random generation, and extraction from truth tables.

#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace ovo::tt {

/// A literal: 0-based variable index plus polarity (true = positive).
struct Literal {
  int var = 0;
  bool positive = true;

  bool operator==(const Literal&) const = default;
};

/// A clause is a set of literals; interpretation depends on the form
/// (conjunction of literals in DNF terms, disjunction in CNF clauses).
using Clause = std::vector<Literal>;

struct Dnf {
  int num_vars = 0;
  std::vector<Clause> terms;  ///< OR of ANDs; empty => constant false

  bool eval(std::uint64_t assignment) const;
  TruthTable to_truth_table() const;
};

struct Cnf {
  int num_vars = 0;
  std::vector<Clause> clauses;  ///< AND of ORs; empty => constant true

  bool eval(std::uint64_t assignment) const;
  TruthTable to_truth_table() const;
};

/// Canonical (minterm) DNF of a truth table — one term per satisfying
/// assignment.
Dnf minterm_dnf(const TruthTable& t);

/// Canonical (maxterm) CNF of a truth table.
Cnf maxterm_cnf(const TruthTable& t);

/// Random k-DNF with `terms` random width-k terms.
Dnf random_dnf(int n, int terms, int k, util::Xoshiro256& rng);

/// Random k-CNF with `clauses` random width-k clauses.
Cnf random_cnf(int n, int clauses, int k, util::Xoshiro256& rng);

/// Human-readable rendering, e.g. "x1 & !x2 | x3".
std::string to_string(const Dnf& d);
std::string to_string(const Cnf& c);

}  // namespace ovo::tt
