#include "tt/expr.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ovo::tt {

namespace {

ExprPtr node(Expr e) { return std::make_shared<const Expr>(std::move(e)); }

}  // namespace

ExprPtr make_var(int var) {
  OVO_CHECK(var >= 0);
  Expr e;
  e.op = ExprOp::kVar;
  e.var = var;
  return node(std::move(e));
}

ExprPtr make_const(bool value) {
  Expr e;
  e.op = ExprOp::kConst;
  e.value = value;
  return node(std::move(e));
}

ExprPtr make_not(ExprPtr a) {
  OVO_CHECK(a != nullptr);
  Expr e;
  e.op = ExprOp::kNot;
  e.lhs = std::move(a);
  return node(std::move(e));
}

namespace {
ExprPtr binary(ExprOp op, ExprPtr a, ExprPtr b) {
  OVO_CHECK(a != nullptr && b != nullptr);
  Expr e;
  e.op = op;
  e.lhs = std::move(a);
  e.rhs = std::move(b);
  return node(std::move(e));
}
}  // namespace

ExprPtr make_and(ExprPtr a, ExprPtr b) {
  return binary(ExprOp::kAnd, std::move(a), std::move(b));
}
ExprPtr make_or(ExprPtr a, ExprPtr b) {
  return binary(ExprOp::kOr, std::move(a), std::move(b));
}
ExprPtr make_xor(ExprPtr a, ExprPtr b) {
  return binary(ExprOp::kXor, std::move(a), std::move(b));
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ExprPtr parse() {
    ExprPtr e = parse_or();
    skip_ws();
    OVO_CHECK_MSG(pos_ == text_.size(), "parse_expr: trailing input");
    return e;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n'))
      ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ExprPtr parse_or() {
    ExprPtr e = parse_xor();
    while (eat('|')) e = make_or(std::move(e), parse_xor());
    return e;
  }

  ExprPtr parse_xor() {
    ExprPtr e = parse_and();
    while (eat('^')) e = make_xor(std::move(e), parse_and());
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_factor();
    while (eat('&')) e = make_and(std::move(e), parse_factor());
    return e;
  }

  ExprPtr parse_factor() {
    // Recursive descent: each '(' and '!' adds a stack frame, so an
    // adversarial "((((..." must hit a typed error before it hits the
    // process stack guard.  The cap also bounds the recursion depth of
    // the eventual shared_ptr destruction chain.
    OVO_CHECK_MSG(depth_ < kMaxDepth, "parse_expr: nesting too deep");
    ++depth_;
    ExprPtr e = parse_factor_inner();
    --depth_;
    return e;
  }

  ExprPtr parse_factor_inner() {
    skip_ws();
    OVO_CHECK_MSG(pos_ < text_.size(), "parse_expr: unexpected end of input");
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      return make_not(parse_factor());
    }
    if (c == '(') {
      ++pos_;
      ExprPtr e = parse_or();
      OVO_CHECK_MSG(eat(')'), "parse_expr: expected ')'");
      return e;
    }
    if (c == '0' || c == '1') {
      ++pos_;
      return make_const(c == '1');
    }
    if (c == 'x') {
      ++pos_;
      std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      OVO_CHECK_MSG(pos_ > start, "parse_expr: expected variable number");
      // Bound the digit count before std::stoi so an oversized index is
      // a typed error, not std::out_of_range (6 digits >> 64 variables).
      OVO_CHECK_MSG(pos_ - start <= 6,
                    "parse_expr: variable number out of range");
      const int idx = std::stoi(text_.substr(start, pos_ - start));
      OVO_CHECK_MSG(idx >= 1, "parse_expr: variables are 1-based (x1, x2, ...)");
      return make_var(idx - 1);
    }
    OVO_CHECK_MSG(false, std::string("parse_expr: unexpected character '") +
                             c + "'");
    return nullptr;  // unreachable
  }

  static constexpr int kMaxDepth = 2000;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

ExprPtr parse_expr(const std::string& text) { return Parser(text).parse(); }

bool eval_expr(const Expr& e, std::uint64_t assignment) {
  switch (e.op) {
    case ExprOp::kVar:
      return ((assignment >> e.var) & 1u) != 0;
    case ExprOp::kConst:
      return e.value;
    case ExprOp::kNot:
      return !eval_expr(*e.lhs, assignment);
    case ExprOp::kAnd:
      return eval_expr(*e.lhs, assignment) && eval_expr(*e.rhs, assignment);
    case ExprOp::kOr:
      return eval_expr(*e.lhs, assignment) || eval_expr(*e.rhs, assignment);
    case ExprOp::kXor:
      return eval_expr(*e.lhs, assignment) != eval_expr(*e.rhs, assignment);
  }
  OVO_CHECK(false);
  return false;
}

int expr_num_vars(const Expr& e) {
  switch (e.op) {
    case ExprOp::kVar:
      return e.var + 1;
    case ExprOp::kConst:
      return 0;
    case ExprOp::kNot:
      return expr_num_vars(*e.lhs);
    default:
      return std::max(expr_num_vars(*e.lhs), expr_num_vars(*e.rhs));
  }
}

std::size_t expr_size(const Expr& e) {
  switch (e.op) {
    case ExprOp::kVar:
    case ExprOp::kConst:
      return 1;
    case ExprOp::kNot:
      return 1 + expr_size(*e.lhs);
    default:
      return 1 + expr_size(*e.lhs) + expr_size(*e.rhs);
  }
}

std::string expr_to_string(const Expr& e) {
  switch (e.op) {
    case ExprOp::kVar:
      return "x" + std::to_string(e.var + 1);
    case ExprOp::kConst:
      return e.value ? "1" : "0";
    case ExprOp::kNot:
      return "!(" + expr_to_string(*e.lhs) + ")";
    case ExprOp::kAnd:
      return "(" + expr_to_string(*e.lhs) + " & " + expr_to_string(*e.rhs) +
             ")";
    case ExprOp::kOr:
      return "(" + expr_to_string(*e.lhs) + " | " + expr_to_string(*e.rhs) +
             ")";
    case ExprOp::kXor:
      return "(" + expr_to_string(*e.lhs) + " ^ " + expr_to_string(*e.rhs) +
             ")";
  }
  OVO_CHECK(false);
  return {};
}

TruthTable expr_to_truth_table(const Expr& e, int n) {
  OVO_CHECK_MSG(n >= expr_num_vars(e),
                "expr_to_truth_table: n smaller than expression support");
  return TruthTable::tabulate(
      n, [&e](std::uint64_t a) { return eval_expr(e, a); });
}

}  // namespace ovo::tt
