#include "tt/truth_table.hpp"

#include <bit>
#include <unordered_set>

namespace ovo::tt {

TruthTable TruthTable::from_bits(int n, const std::string& bits) {
  TruthTable t(n);
  OVO_CHECK_MSG(bits.size() == t.size(), "from_bits: wrong length");
  for (std::uint64_t a = 0; a < t.size(); ++a) {
    const char c = bits[a];
    OVO_CHECK_MSG(c == '0' || c == '1', "from_bits: invalid character");
    t.set(a, c == '1');
  }
  return t;
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t total = 0;
  const std::uint64_t cells = size();
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    if (n_ < 6 && w == 0) word &= util::full_mask(static_cast<int>(cells));
    total += static_cast<std::uint64_t>(std::popcount(word));
  }
  return total;
}

bool TruthTable::is_constant() const {
  const std::uint64_t ones = count_ones();
  return ones == 0 || ones == size();
}

bool TruthTable::depends_on(int var) const {
  OVO_CHECK(var >= 0 && var < n_);
  const std::uint64_t step = std::uint64_t{1} << var;
  for (std::uint64_t a = 0; a < size(); ++a) {
    if ((a & step) != 0) continue;
    if (get(a) != get(a | step)) return true;
  }
  return false;
}

util::Mask TruthTable::support() const {
  util::Mask m = 0;
  for (int v = 0; v < n_; ++v)
    if (depends_on(v)) m |= util::Mask{1} << v;
  return m;
}

TruthTable TruthTable::restrict_var(int var, bool val) const {
  OVO_CHECK(var >= 0 && var < n_);
  TruthTable out(n_);
  const std::uint64_t step = std::uint64_t{1} << var;
  for (std::uint64_t a = 0; a < size(); ++a) {
    const std::uint64_t src = val ? (a | step) : (a & ~step);
    out.set(a, get(src));
  }
  return out;
}

TruthTable TruthTable::cofactor(int var, bool val) const {
  OVO_CHECK(var >= 0 && var < n_);
  OVO_CHECK_MSG(n_ >= 1, "cofactor of 0-ary function");
  TruthTable out(n_ - 1);
  const util::Mask low = util::full_mask(var);
  for (std::uint64_t a = 0; a < out.size(); ++a) {
    // Insert `val` at position `var` in assignment a.
    const std::uint64_t hi = (a & ~low) << 1;
    const std::uint64_t src =
        hi | (a & low) | (val ? (std::uint64_t{1} << var) : 0);
    out.set(a, get(src));
  }
  return out;
}

TruthTable TruthTable::permute_inputs(const std::vector<int>& perm) const {
  OVO_CHECK_MSG(static_cast<int>(perm.size()) == n_,
                "permute_inputs: arity mismatch");
  TruthTable out(n_);
  for (std::uint64_t a = 0; a < size(); ++a) {
    std::uint64_t b = 0;
    for (int i = 0; i < n_; ++i) {
      const int p = perm[static_cast<std::size_t>(i)];
      OVO_DCHECK(p >= 0 && p < n_);
      b |= ((a >> i) & 1u) << p;
    }
    out.set(a, get(b));
  }
  return out;
}

std::uint64_t TruthTable::count_distinct_subfunctions(util::Mask bottom) const {
  OVO_CHECK(util::is_subset(bottom, util::full_mask(n_)));
  const util::Mask top = util::full_mask(n_) & ~bottom;
  const int top_bits = util::popcount(top);
  const int bot_bits = util::popcount(bottom);
  std::unordered_set<std::string> seen;
  for (std::uint64_t t = 0; t < (std::uint64_t{1} << top_bits); ++t) {
    const std::uint64_t top_assign = util::scatter_bits(t, top);
    std::string sub;
    sub.reserve(std::uint64_t{1} << bot_bits);
    for (std::uint64_t b = 0; b < (std::uint64_t{1} << bot_bits); ++b) {
      const std::uint64_t a = top_assign | util::scatter_bits(b, bottom);
      sub.push_back(get(a) ? '1' : '0');
    }
    seen.insert(std::move(sub));
  }
  return seen.size();
}

TruthTable TruthTable::operator~() const {
  TruthTable out(n_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = ~words_[w];
  return out;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  check_same_shape(o);
  TruthTable out(n_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    out.words_[w] = words_[w] & o.words_[w];
  return out;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  check_same_shape(o);
  TruthTable out(n_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    out.words_[w] = words_[w] | o.words_[w];
  return out;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  check_same_shape(o);
  TruthTable out(n_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    out.words_[w] = words_[w] ^ o.words_[w];
  return out;
}

std::uint64_t TruthTable::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull ^ static_cast<std::uint64_t>(n_);
  const std::uint64_t cells = size();
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    if (n_ < 6 && w == 0) word &= util::full_mask(static_cast<int>(cells));
    h ^= word;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  }
  return h;
}

std::string TruthTable::to_bit_string() const {
  std::string s;
  s.reserve(size());
  for (std::uint64_t a = 0; a < size(); ++a) s.push_back(get(a) ? '1' : '0');
  return s;
}

}  // namespace ovo::tt
