#include "tt/pla.hpp"

#include <charconv>
#include <sstream>

#include "tt/parse_error.hpp"
#include "util/check.hpp"

namespace ovo::tt {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw ParseError("PLA line " + std::to_string(line_no) + ": " + msg);
}

/// Strict decimal parse: the whole token, no sign, no trailing junk, and
/// in-range for long.  std::stoi would throw untyped std exceptions on
/// "12x" / "999...9" and silently accept "12 " — a header field must be a
/// clean number or a ParseError.
long parse_count(int line_no, const std::string& tok,
                 const std::string& what) {
  long v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size() || v < 0)
    fail(line_no, what + " is not a valid count: '" + tok + "'");
  return v;
}

}  // namespace

bool Pla::cube_covers(std::size_t product, std::uint64_t assignment) const {
  OVO_DCHECK(product < cubes.size());
  const std::string& cube = cubes[product];
  for (int i = 0; i < num_inputs; ++i) {
    const char c = cube[static_cast<std::size_t>(i)];
    if (c == '-') continue;
    const bool bit = ((assignment >> i) & 1u) != 0;
    if (bit != (c == '1')) return false;
  }
  return true;
}

TruthTable Pla::output_table(int output) const {
  OVO_CHECK(output >= 0 && output < num_outputs);
  return TruthTable::tabulate(num_inputs, [&](std::uint64_t a) {
    for (std::size_t p = 0; p < cubes.size(); ++p)
      if (outputs[p][static_cast<std::size_t>(output)] && cube_covers(p, a))
        return true;
    return false;
  });
}

std::vector<TruthTable> Pla::output_tables() const {
  std::vector<TruthTable> out;
  out.reserve(static_cast<std::size_t>(num_outputs));
  for (int o = 0; o < num_outputs; ++o) out.push_back(output_table(o));
  return out;
}

Dnf Pla::output_dnf(int output) const {
  OVO_CHECK(output >= 0 && output < num_outputs);
  Dnf d;
  d.num_vars = num_inputs;
  for (std::size_t p = 0; p < cubes.size(); ++p) {
    if (!outputs[p][static_cast<std::size_t>(output)]) continue;
    Clause term;
    for (int i = 0; i < num_inputs; ++i) {
      const char c = cubes[p][static_cast<std::size_t>(i)];
      if (c == '-') continue;
      term.push_back(Literal{i, c == '1'});
    }
    d.terms.push_back(std::move(term));
  }
  return d;
}

Pla parse_pla(const std::string& text) {
  Pla pla;
  bool saw_i = false, saw_o = false, ended = false;
  long declared_products = -1;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tok = split_ws(line);
    if (tok.empty()) continue;
    if (ended) fail(line_no, "content after .e/.end");

    if (tok[0] == ".i") {
      if (tok.size() != 2) fail(line_no, ".i needs one argument");
      const long v = parse_count(line_no, tok[1], ".i");
      if (v < 1 || v > TruthTable::kMaxVars)
        fail(line_no, "unsupported input count");
      pla.num_inputs = static_cast<int>(v);
      saw_i = true;
    } else if (tok[0] == ".o") {
      if (tok.size() != 2) fail(line_no, ".o needs one argument");
      const long v = parse_count(line_no, tok[1], ".o");
      if (v < 1 || v > 1'000'000) fail(line_no, "unsupported output count");
      pla.num_outputs = static_cast<int>(v);
      saw_o = true;
    } else if (tok[0] == ".p") {
      if (tok.size() != 2) fail(line_no, ".p needs one argument");
      declared_products = parse_count(line_no, tok[1], ".p");
    } else if (tok[0] == ".ilb") {
      pla.input_names.assign(tok.begin() + 1, tok.end());
    } else if (tok[0] == ".ob") {
      pla.output_names.assign(tok.begin() + 1, tok.end());
    } else if (tok[0] == ".e" || tok[0] == ".end") {
      ended = true;
    } else if (tok[0][0] == '.') {
      fail(line_no, "unsupported directive '" + tok[0] + "'");
    } else {
      // Product line.
      if (!saw_i || !saw_o) fail(line_no, "product before .i/.o header");
      if (tok.size() != 2)
        fail(line_no, "product line needs <inputs> <outputs>");
      const std::string& cube = tok[0];
      const std::string& outs = tok[1];
      if (static_cast<int>(cube.size()) != pla.num_inputs)
        fail(line_no, "input cube has wrong width");
      if (static_cast<int>(outs.size()) != pla.num_outputs)
        fail(line_no, "output part has wrong width");
      for (const char c : cube)
        if (c != '0' && c != '1' && c != '-')
          fail(line_no, "invalid input cube character");
      std::vector<bool> on(static_cast<std::size_t>(pla.num_outputs));
      for (int o = 0; o < pla.num_outputs; ++o) {
        const char c = outs[static_cast<std::size_t>(o)];
        if (c != '0' && c != '1' && c != '-' && c != '~')
          fail(line_no, "invalid output character");
        on[static_cast<std::size_t>(o)] = (c == '1');
      }
      pla.cubes.push_back(cube);
      pla.outputs.push_back(std::move(on));
    }
  }
  if (!saw_i || !saw_o) fail(line_no, "missing .i/.o header");
  if (!ended) fail(line_no, "truncated file: missing .e/.end");
  if (declared_products >= 0 &&
      declared_products != static_cast<long>(pla.cubes.size()))
    fail(line_no, ".p count disagrees with product lines");
  if (!pla.input_names.empty() &&
      static_cast<int>(pla.input_names.size()) != pla.num_inputs)
    fail(line_no, ".ilb count disagrees with .i");
  if (!pla.output_names.empty() &&
      static_cast<int>(pla.output_names.size()) != pla.num_outputs)
    fail(line_no, ".ob count disagrees with .o");
  return pla;
}

std::string to_pla(const Pla& pla) {
  std::ostringstream os;
  os << ".i " << pla.num_inputs << "\n";
  os << ".o " << pla.num_outputs << "\n";
  if (!pla.input_names.empty()) {
    os << ".ilb";
    for (const std::string& n : pla.input_names) os << ' ' << n;
    os << "\n";
  }
  if (!pla.output_names.empty()) {
    os << ".ob";
    for (const std::string& n : pla.output_names) os << ' ' << n;
    os << "\n";
  }
  os << ".p " << pla.cubes.size() << "\n";
  for (std::size_t p = 0; p < pla.cubes.size(); ++p) {
    os << pla.cubes[p] << ' ';
    for (const bool b : pla.outputs[p]) os << (b ? '1' : '0');
    os << "\n";
  }
  os << ".e\n";
  return os.str();
}

}  // namespace ovo::tt
