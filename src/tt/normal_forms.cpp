#include "tt/normal_forms.hpp"

#include "util/check.hpp"

namespace ovo::tt {

namespace {

bool literal_holds(const Literal& lit, std::uint64_t assignment) {
  const bool v = ((assignment >> lit.var) & 1u) != 0;
  return v == lit.positive;
}

Clause random_clause(int n, int k, util::Xoshiro256& rng) {
  OVO_CHECK(k >= 1 && k <= n);
  // Sample k distinct variables.
  std::vector<int> vars;
  vars.reserve(static_cast<std::size_t>(k));
  while (static_cast<int>(vars.size()) < k) {
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    bool dup = false;
    for (int u : vars) dup |= (u == v);
    if (!dup) vars.push_back(v);
  }
  Clause c;
  c.reserve(vars.size());
  for (int v : vars) c.push_back(Literal{v, rng.coin()});
  return c;
}

}  // namespace

bool Dnf::eval(std::uint64_t assignment) const {
  for (const Clause& term : terms) {
    bool all = true;
    for (const Literal& lit : term) all = all && literal_holds(lit, assignment);
    if (all) return true;
  }
  return false;
}

TruthTable Dnf::to_truth_table() const {
  return TruthTable::tabulate(
      num_vars, [this](std::uint64_t a) { return eval(a); });
}

bool Cnf::eval(std::uint64_t assignment) const {
  for (const Clause& clause : clauses) {
    bool any = false;
    for (const Literal& lit : clause) any = any || literal_holds(lit, assignment);
    if (!any) return false;
  }
  return true;
}

TruthTable Cnf::to_truth_table() const {
  return TruthTable::tabulate(
      num_vars, [this](std::uint64_t a) { return eval(a); });
}

Dnf minterm_dnf(const TruthTable& t) {
  Dnf d;
  d.num_vars = t.num_vars();
  for (std::uint64_t a = 0; a < t.size(); ++a) {
    if (!t.get(a)) continue;
    Clause term;
    term.reserve(static_cast<std::size_t>(t.num_vars()));
    for (int v = 0; v < t.num_vars(); ++v)
      term.push_back(Literal{v, ((a >> v) & 1u) != 0});
    d.terms.push_back(std::move(term));
  }
  return d;
}

Cnf maxterm_cnf(const TruthTable& t) {
  Cnf c;
  c.num_vars = t.num_vars();
  for (std::uint64_t a = 0; a < t.size(); ++a) {
    if (t.get(a)) continue;
    Clause clause;
    clause.reserve(static_cast<std::size_t>(t.num_vars()));
    // Exclude assignment a: the clause is violated exactly at a.
    for (int v = 0; v < t.num_vars(); ++v)
      clause.push_back(Literal{v, ((a >> v) & 1u) == 0});
    c.clauses.push_back(std::move(clause));
  }
  return c;
}

Dnf random_dnf(int n, int terms, int k, util::Xoshiro256& rng) {
  Dnf d;
  d.num_vars = n;
  d.terms.reserve(static_cast<std::size_t>(terms));
  for (int i = 0; i < terms; ++i) d.terms.push_back(random_clause(n, k, rng));
  return d;
}

Cnf random_cnf(int n, int clauses, int k, util::Xoshiro256& rng) {
  Cnf c;
  c.num_vars = n;
  c.clauses.reserve(static_cast<std::size_t>(clauses));
  for (int i = 0; i < clauses; ++i)
    c.clauses.push_back(random_clause(n, k, rng));
  return c;
}

namespace {
std::string clause_string(const Clause& c, const char* joiner) {
  std::string s;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i > 0) s += joiner;
    if (!c[i].positive) s += '!';
    s += 'x';
    s += std::to_string(c[i].var + 1);
  }
  return s;
}
}  // namespace

std::string to_string(const Dnf& d) {
  if (d.terms.empty()) return "0";
  std::string s;
  for (std::size_t i = 0; i < d.terms.size(); ++i) {
    if (i > 0) s += " | ";
    s += clause_string(d.terms[i], " & ");
  }
  return s;
}

std::string to_string(const Cnf& c) {
  if (c.clauses.empty()) return "1";
  std::string s;
  for (std::size_t i = 0; i < c.clauses.size(); ++i) {
    if (i > 0) s += " & ";
    s += "(" + clause_string(c.clauses[i], " | ") + ")";
  }
  return s;
}

}  // namespace ovo::tt
