#pragma once
// Berkeley PLA (espresso) format reader/writer — the interchange format
// real two-level EDA tools speak, and a realistic source of multi-output
// functions for ordering experiments.
//
// Supported subset: `.i N`, `.o M`, `.p P` (optional), `.ilb`/`.ob`
// (names, stored verbatim), `.e`/`.end`, comment lines (`#`), and product
// lines of the form `<input-cube> <output-part>` where the input cube is
// over {0, 1, -} and the output part over {0, 1, ~, -} (1 = in ON-set;
// everything else treated as "not in ON-set" — we materialize the ON-set
// semantics of espresso's default type fr as: output bit is 1 iff some
// product with a '1' in that column covers the input).

#include <string>
#include <vector>

#include "tt/normal_forms.hpp"
#include "tt/truth_table.hpp"

namespace ovo::tt {

struct Pla {
  int num_inputs = 0;
  int num_outputs = 0;
  std::vector<std::string> input_names;   ///< empty if not given
  std::vector<std::string> output_names;  ///< empty if not given
  /// cubes[p] = input cube of product p, characters in {'0','1','-'}.
  std::vector<std::string> cubes;
  /// outputs[p][o] = true iff product p asserts output o.
  std::vector<std::vector<bool>> outputs;

  /// True if the cube covers the assignment (bit i of a = input i; the
  /// cube's leftmost character is input 0).
  bool cube_covers(std::size_t product, std::uint64_t assignment) const;

  /// ON-set truth table of one output.
  TruthTable output_table(int output) const;

  /// All output tables.
  std::vector<TruthTable> output_tables() const;

  /// Single-output convenience: the DNF of output `output`.
  Dnf output_dnf(int output) const;
};

/// Parses PLA text. Throws util::CheckError with a line-numbered message
/// on malformed input.
Pla parse_pla(const std::string& text);

/// Serializes back to PLA text (canonical ordering of the header).
std::string to_pla(const Pla& pla);

}  // namespace ovo::tt
