#pragma once
// Durable FS*/FS DP snapshots (the payload inside rt's checkpoint
// container) — layer-fence state of the Friedman–Supowit dynamic program,
// complete enough to resume a run bit-identically.
//
// A snapshot is taken only at a *layer fence*: every layer up to `layer`
// is fully published, nothing deeper exists.  That is the one program
// point where the DP's state is a pure value — the layer's tables (dense:
// all C(|J|,k) of them; pruned: the packed survivors), the accumulated
// back-pointer/mincost maps, the prune ledger and certified lower bound,
// the merged OpCounter at the fence, and the governor work charged so
// far.  Resuming re-seeds an engine with exactly that state, so the
// remaining layers — and every tie-break, ledger total, and budget-trip
// decision after them — replay as if the run had never stopped, at any
// thread count and in either engine (see docs/INTERNALS.md, "Checkpoint
// format & resume protocol").
//
// The fingerprint binds a snapshot to its instance: a content hash of the
// base table plus every input that shapes the DP (J, stop layer, diagram
// kind, prune mode).  Threads / grain / pipeline are deliberately *not*
// fingerprinted — the determinism contract makes results identical across
// them, so resuming under a different execution policy is legal.
// Resuming against a non-matching fingerprint is a typed
// CheckpointError(kWrongInstance), never silent corruption.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/prefix_table.hpp"
#include "obs/metrics.hpp"
#include "parallel/exec_policy.hpp"
#include "rt/checkpoint.hpp"
#include "util/bits.hpp"

namespace ovo::core {

/// Payload format version (the rt container carries it).  v2 appends the
/// unified obs ledger section (see encode_snapshot) after the DP maps.
inline constexpr std::uint32_t kFsSnapshotVersion = 2;

/// Identity of the DP instance a snapshot belongs to.
struct FsFingerprint {
  std::uint64_t base_hash = 0;  ///< FNV-1a over the base table's content
  std::uint32_t n = 0;          ///< variable universe size
  util::Mask prefix_vars = 0;   ///< the base's prefix set I
  util::Mask block = 0;         ///< the DP block J
  std::uint32_t stop_k = 0;     ///< requested stop layer
  std::uint8_t kind = 0;        ///< DiagramKind
  std::uint8_t prune = 0;       ///< par::PruneMode

  bool operator==(const FsFingerprint&) const = default;
};

/// Fingerprint of a run about to start (or to resume).
FsFingerprint fs_fingerprint(const PrefixTable& base, util::Mask J,
                             int stop_k, DiagramKind kind,
                             par::PruneMode prune);

/// Oracle-side counters of the heuristic stage that seeded the pruning
/// incumbent (stage 0 of the governed ladder).  Recorded into snapshots
/// so a resumed run — which skips that stage — still reports the
/// uninterrupted run's ledger totals.
struct FsSeedStats {
  std::uint64_t queries = 0;    ///< size queries the seed stage answered
  std::uint64_t evals = 0;      ///< chain evaluations it performed
  std::uint64_t memo_hits = 0;  ///< queries served from its memo
  OpCounter ops;                ///< its chain-evaluation work ledger

  /// Accumulates the seed-stage counters into `l` under fs.seed.*.  Only
  /// the headline table-cell total of `ops` is projected (fs.seed.
  /// table_cells); its dedup shards stay seed-local so they never mix
  /// with the DP's own ds.unique.* totals.
  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kFsSeedQueries, queries);
    l.record(obs::Metric::kFsSeedEvals, evals);
    l.record(obs::Metric::kFsSeedMemoHits, memo_hits);
    l.record(obs::Metric::kFsSeedTableCells, ops.table_cells);
  }
  void from_ledger(const obs::Ledger& l) {
    queries = l.get(obs::Metric::kFsSeedQueries);
    evals = l.get(obs::Metric::kFsSeedEvals);
    memo_hits = l.get(obs::Metric::kFsSeedMemoHits);
    ops.table_cells = l.get(obs::Metric::kFsSeedTableCells);
  }
};

/// One decoded layer-fence snapshot.  `dense` holds the layer's subsets
/// as dense masks over J's bit positions in colex (== ascending numeric)
/// order; `tables[i]` is the table at `dense[i]`.  In dense mode the
/// vectors cover the whole layer; in pruned mode they hold the packed
/// survivors.
struct FsStarSnapshot {
  FsFingerprint fingerprint;
  std::uint32_t num_terminals = 2;
  int layer = 0;  ///< deepest completed layer at the fence

  std::vector<util::Mask> dense;
  std::vector<PrefixTable> tables;

  /// Accumulated DP maps through `layer`, sorted by variable mask.
  std::vector<std::pair<util::Mask, int>> best_last;
  std::vector<std::pair<util::Mask, std::uint64_t>> mincost;

  PruneStats prune;
  std::uint64_t certified_lower_bound = 0;

  /// Merged OpCounter at the fence (zeros when the run tracked none).
  OpCounter ops;
  /// Governor work charged through the fence; restored on resume so
  /// later admit decisions replay the uninterrupted run's.
  std::uint64_t work_charged = 0;

  /// The *effective* pruning incumbent (after self-seeding), so a resume
  /// prunes against the identical bound without re-running the seed.
  std::uint64_t prune_upper_bound = 0;

  /// Provenance: the heuristic order that seeded the incumbent (root
  /// first; empty in dense mode), its RNG seed, and the seed strategy
  /// name.  Lets a resumed ladder skip its seeding stage yet keep the
  /// seed order as a salvage candidate.
  std::vector<int> seed_order;
  std::uint64_t rng_seed = 0;
  std::string seed_name;
  /// The seed stage's oracle counters, restored into the resumed run's
  /// reported ledger.
  FsSeedStats seed_stats;

  /// The unified obs ledger at the fence (payload v2 section).  Always
  /// derivable from the legacy fields above — decode_snapshot verifies
  /// that equivalence, so a loaded snapshot's ledger is trustworthy.
  obs::Ledger ledger;
};

/// Borrowed view of fence state for zero-copy encoding: the engines point
/// it at their live layer vectors instead of materializing an
/// FsStarSnapshot.  Map entries are sorted by mask during encoding, so
/// identical state always encodes to identical bytes.
struct FsSnapshotView {
  const FsFingerprint* fingerprint = nullptr;
  std::uint32_t num_terminals = 2;
  int layer = 0;
  const std::vector<util::Mask>* dense = nullptr;
  const std::vector<PrefixTable>* tables = nullptr;
  const std::unordered_map<util::Mask, int>* best_last = nullptr;
  const std::unordered_map<util::Mask, std::uint64_t>* mincost = nullptr;
  const PruneStats* prune = nullptr;
  std::uint64_t certified_lower_bound = 0;
  const OpCounter* ops = nullptr;  ///< null encodes as zeros
  std::uint64_t work_charged = 0;
  std::uint64_t prune_upper_bound = 0;
  const std::vector<int>* seed_order = nullptr;  ///< null encodes empty
  std::uint64_t rng_seed = 0;
  const std::string* seed_name = nullptr;      ///< null encodes empty
  const FsSeedStats* seed_stats = nullptr;     ///< null encodes zeros
};

/// Serializes a fence view to payload bytes (deterministic).
std::vector<std::uint8_t> encode_snapshot(const FsSnapshotView& view);

/// Parses and *semantically validates* payload bytes: every structural
/// inconsistency the CRC cannot catch (mask order, layer cardinality,
/// cell ids out of range, table sizes that disagree with the fingerprint)
/// throws a typed CheckpointError — a decoded snapshot is safe to resume
/// from without further bounds checks.
FsStarSnapshot decode_snapshot(const std::uint8_t* data, std::size_t len);

/// Frames `payload` (see rt::save_checkpoint) and writes it atomically.
void save_snapshot(const std::string& path,
                   const std::vector<std::uint8_t>& payload);

/// Loads, CRC-verifies, decodes, and validates a snapshot file.
FsStarSnapshot load_snapshot(const std::string& path);

/// Checkpoint/resume configuration threaded into fs_star (and from there
/// into the engines).  Writing requires a fence-consistent merged ledger,
/// so snapshot-writing runs always take the barrier engines; resume-only
/// runs may take any engine (see fs_star.cpp dispatch).
struct FsCheckpointOptions {
  /// Non-empty: write a snapshot here (atomically) at qualifying fences.
  std::string path;
  /// Snapshot at fences where layer is a multiple of `every` (and always
  /// on a trip).
  int every = 1;
  /// Also snapshot when the governor trips, so a budgeted run persists
  /// its salvage state.
  bool on_trip = true;
  /// Resume from this decoded snapshot (fingerprint-checked in fs_star).
  const FsStarSnapshot* resume = nullptr;
  /// Test/observer hook: receives every emitted payload (encoded bytes).
  std::function<void(const std::vector<std::uint8_t>&)> on_bytes;
  /// Provenance recorded verbatim into written snapshots.
  std::vector<int> seed_order;
  std::uint64_t rng_seed = 0;
  std::string seed_name;
  FsSeedStats seed_stats;

  bool writes() const {
    return !path.empty() || static_cast<bool>(on_bytes);
  }
  bool active() const { return resume != nullptr || writes(); }
};

}  // namespace ovo::core
