#pragma once
// Exact ordering for shared (multi-rooted) OBDDs — the multi-output
// circuit setting from the paper's VLSI motivation (and the object whose
// ordering NP-hardness [THY96] the related-work section discusses).
//
// A shared OBDD for f_1..f_m over common variables x_1..x_n stores, per
// level, the distinct subfunctions arising across *all* outputs.  This
// reduces cleanly to the single-function DP: introduce s = ceil(log2 m)
// selector variables and define F(sel, x) = f_{sel}(x); the distinct
// subfunctions of F over a bottom set B ⊆ {x vars} are exactly the union
// of the outputs' subfunctions over B, so running FS* with block J
// restricted to the x variables (selectors pinned to the free/top part)
// minimizes the shared diagram's total width.

#include <cstdint>
#include <vector>

#include "core/prefix_table.hpp"
#include "parallel/exec_policy.hpp"
#include "tt/truth_table.hpp"

namespace ovo::core {

struct MultiMinimizeResult {
  /// Optimal reading order over the *function* variables, root first.
  std::vector<int> order_root_first;
  /// Internal node count of the minimum shared diagram (all roots).
  std::uint64_t min_internal_nodes = 0;
  OpCounter ops;
};

/// Exact minimum shared-OBDD ordering for outputs[0..m-1], all over the
/// same n variables. O*(3^n) time (the selector variables only scale the
/// table width by m, a constant factor).
MultiMinimizeResult fs_minimize_shared(
    const std::vector<tt::TruthTable>& outputs,
    DiagramKind kind = DiagramKind::kBdd,
    const par::ExecPolicy& exec = {});

/// Shared-diagram size under a fixed reading order (root first) — the
/// multi-output counterpart of diagram_size_for_order.
std::uint64_t shared_size_for_order(const std::vector<tt::TruthTable>& outputs,
                                    const std::vector<int>& order_root_first,
                                    DiagramKind kind = DiagramKind::kBdd);

/// The selector-extended initial table underlying the reduction: a
/// PrefixTable over n + ceil(log2 m) variables whose low n variables are
/// the function variables (the compactable block) and whose top selector
/// variables choose the output. `num_x_vars` receives n. Exposed so other
/// engines (e.g. the quantum divide-and-conquer) can run on shared
/// diagrams too.
PrefixTable shared_initial_table(const std::vector<tt::TruthTable>& outputs,
                                 int* num_x_vars);

}  // namespace ovo::core
