#pragma once
// The Friedman–Supowit dynamic-programming state and the table-compaction
// primitive (paper Sec. 2.3.1/2.3.2 and Appendix D's COMPACT).
//
// A PrefixTable is the paper's (TABLE_I, MINCOST_I) pair for a prefix set I
// of variables — the variables occupying the *bottom* |I| levels of the
// OBDD.  TABLE_I has one cell per assignment to the free variables
// [n] \ I (packed densely, ascending variable index), holding the id of
// the node representing the corresponding subfunction f|_{x_{[n]\I}=b}.
//
// Node ids are the paper's scheme: ids < num_terminals are terminals
// (0 = false, 1 = true for BDD/ZDD; interned value indices for MTBDD) and
// each created node takes the next free integer, so MINCOST_I equals
// next_id - num_terminals.  Within one chain of compactions the ids are
// canonical: two cells hold the same id iff their subfunctions are equal.
//
// NODE_I note: the paper stores the set NODE_I of all created triples and
// membership-tests (u0, u1) against the whole set.  Node equivalence
// (Sec. 2.2 rule (b)) requires var(u) = var(v), and a compaction with
// respect to x_k can never collide with a triple created for another
// variable (no triple with var = k exists before the compaction, and ids
// are canonical), so the membership test reduces to a map local to the
// current compaction.  We exploit that: the local map replaces NODE_I,
// which keeps the same O*(2^{n-|I|}) complexity with a much smaller
// constant.  (A literal whole-set (u0,u1) lookup ignoring var(u) would
// actually be incorrect: e.g. f = (x1 xor x2 plugged at x4=0) and
// (x1 xor x3 at x4=1) makes the pair (id(x1), id(!x1)) appear under both
// x2 and x3 — distinct functions that must not be merged.)

#include <cstdint>
#include <vector>

#include "ds/unique_table.hpp"
#include "obs/metrics.hpp"
#include "rt/budget.hpp"
#include "tt/truth_table.hpp"
#include "util/bits.hpp"

namespace ovo::core {

/// Which reduction rule the compaction applies (paper Sec. 2.3.2 for BDDs,
/// Appendix D's two-line modification for ZDDs, Remark 2 for MTBDDs).
enum class DiagramKind { kBdd, kZdd, kMtbdd };

/// Ledger of the bound-pruned FS* execution mode (all zero when pruning
/// is off).  A DP state is *dead* when every predecessor was pruned (it
/// is skipped without computing its table), *generated* when its table
/// was computed, and then either *pruned* (its admissible lower bound
/// exceeded the incumbent upper bound; the table is freed immediately)
/// or *surviving* (published into the layer).  Cell counts compare the
/// cells the dense engine would have materialized for the same layers
/// against what the sparse layers actually held; the difference times
/// sizeof(cell) is the bytes pruning saved.
struct PruneStats {
  std::uint64_t upper_bound = 0;       ///< incumbent the DP pruned against
  std::uint64_t states_generated = 0;  ///< tables computed (pruned + surviving)
  std::uint64_t states_pruned = 0;     ///< generated, then cut by the bound
  std::uint64_t states_dead = 0;       ///< skipped: no surviving predecessor
  std::uint64_t states_surviving = 0;  ///< published into sparse layers
  std::uint64_t dense_cells = 0;       ///< cells a dense run would have held
  std::uint64_t sparse_cells = 0;      ///< cells actually materialized

  /// All states a dense run would have expanded for the same layers.
  std::uint64_t states_enumerated() const {
    return states_generated + states_dead;
  }
  /// Fraction of enumerated states that never reached a layer (dead or
  /// bound-pruned); 0 when pruning never ran.
  double prune_ratio() const {
    const std::uint64_t total = states_enumerated();
    return total == 0 ? 0.0
                      : static_cast<double>(states_pruned + states_dead) /
                            static_cast<double>(total);
  }

  /// Accumulates this struct into `l` under the fs.prune.* metric IDs
  /// (upper_bound is a kMax metric, the counts are kSum).
  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kFsPruneUpperBound, upper_bound);
    l.record(obs::Metric::kFsPruneGenerated, states_generated);
    l.record(obs::Metric::kFsPrunePruned, states_pruned);
    l.record(obs::Metric::kFsPruneDead, states_dead);
    l.record(obs::Metric::kFsPruneSurviving, states_surviving);
    l.record(obs::Metric::kFsPruneDenseCells, dense_cells);
    l.record(obs::Metric::kFsPruneSparseCells, sparse_cells);
  }
  void from_ledger(const obs::Ledger& l) {
    upper_bound = l.get(obs::Metric::kFsPruneUpperBound);
    states_generated = l.get(obs::Metric::kFsPruneGenerated);
    states_pruned = l.get(obs::Metric::kFsPrunePruned);
    states_dead = l.get(obs::Metric::kFsPruneDead);
    states_surviving = l.get(obs::Metric::kFsPruneSurviving);
    dense_cells = l.get(obs::Metric::kFsPruneDenseCells);
    sparse_cells = l.get(obs::Metric::kFsPruneSparseCells);
  }

  /// Merge across runs, defined by the registry's policies: counts add,
  /// the incumbent keeps the loosest (largest) bound seen.
  PruneStats& operator+=(const PruneStats& o) {
    obs::Ledger mine, theirs;
    to_ledger(mine);
    o.to_ledger(theirs);
    from_ledger(mine.merge(theirs));
    return *this;
  }
};

/// Work accounting: the paper measures time as table cells processed (each
/// compaction is linear in the table size up to log factors), and Remark 1
/// observes that space is of the same order — peak_cells tracks the
/// largest number of table cells simultaneously alive in the DP.
struct OpCounter {
  std::uint64_t table_cells = 0;  ///< cells read by compactions
  std::uint64_t compactions = 0;  ///< number of COMPACT invocations
  std::uint64_t peak_cells = 0;   ///< max cells resident at once (Remark 1)
  ds::TableStats dedup;           ///< merged COMPACT dedup-table counters
  PruneStats prune;               ///< bound-pruned DP ledger (see above)

  void observe_resident(std::uint64_t cells) {
    if (cells > peak_cells) peak_cells = cells;
  }
  void reset() { *this = OpCounter{}; }

  /// Accumulates this counter — including its dedup and prune ledgers —
  /// into `l` under fs.* / ds.unique.* / fs.prune.*.
  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kFsTableCells, table_cells);
    l.record(obs::Metric::kFsCompactions, compactions);
    l.record(obs::Metric::kFsPeakCells, peak_cells);
    dedup.to_ledger(l);
    prune.to_ledger(l);
  }
  void from_ledger(const obs::Ledger& l) {
    table_cells = l.get(obs::Metric::kFsTableCells);
    compactions = l.get(obs::Metric::kFsCompactions);
    peak_cells = l.get(obs::Metric::kFsPeakCells);
    dedup.from_ledger(l);
    prune.from_ledger(l);
  }

  /// Merges a shard (e.g. a per-thread counter from a parallel DP layer)
  /// into this counter under the registry's policies: sums are added,
  /// peaks maxed.  All fields commute, so merged totals are exact and
  /// independent of which thread did what.
  OpCounter& operator+=(const OpCounter& o) {
    obs::Ledger mine, theirs;
    to_ledger(mine);
    o.to_ledger(theirs);
    from_ledger(mine.merge(theirs));
    return *this;
  }
};

struct PrefixTable {
  int n = 0;                         ///< total number of variables
  util::Mask vars = 0;               ///< the prefix set I
  std::uint32_t num_terminals = 2;   ///< ids below this are terminals
  std::uint32_t next_id = 2;         ///< next fresh node id
  std::vector<std::uint32_t> cells;  ///< TABLE_I, size 2^{n - |I|}

  /// MINCOST_I along this chain: number of nodes created so far.
  std::uint64_t mincost() const { return next_id - num_terminals; }

  int free_count() const { return n - util::popcount(vars); }
  util::Mask free_mask() const { return util::full_mask(n) & ~vars; }
};

/// TABLE_{emptyset}: the truth table itself (paper Sec. 2.3.1).
PrefixTable initial_table(const tt::TruthTable& f);

/// MTBDD variant: TABLE_{emptyset} over a value table of size 2^n; distinct
/// values are interned as terminal ids 0..t-1 in order of first appearance.
/// `terminal_values` (optional out) receives the interned values.
PrefixTable initial_table_values(const std::vector<std::int64_t>& values,
                                 int n,
                                 std::vector<std::int64_t>* terminal_values =
                                     nullptr);

/// The paper's COMPACT: produces (TABLE_{(I,k)}, MINCOST_{(I,k)}) from
/// (TABLE_I, MINCOST_I) by compacting with respect to variable `var`
/// (which must be free in `t`).  Linear in |TABLE_I|.
///
/// A non-null `gov` charges |TABLE_I| work units (one per cell read —
/// the paper's own work measure) before the sweep.  The compaction
/// always runs to completion either way; governed callers check the
/// governor *between* compactions, so a finished table is never left
/// half-built.  Callers that pre-admit whole batches (the DP layers,
/// the candidate evaluators) pass gov = nullptr here and charge the
/// closed-form batch total instead.
PrefixTable compact(const PrefixTable& t, int var, DiagramKind kind,
                    OpCounter* ops = nullptr, rt::Governor* gov = nullptr);

/// compact() writing into `out`, reusing out's cells buffer (no
/// allocation once out's capacity covers |TABLE_I| / 2).  The workhorse
/// of the DP inner loop and the chain evaluator, where a fresh table per
/// compaction would churn the allocator.  `out` must not alias `t`.
void compact_into(PrefixTable& out, const PrefixTable& t, int var,
                  DiagramKind kind, OpCounter* ops = nullptr,
                  rt::Governor* gov = nullptr);

/// The width Cost_var(f, pi_{(I,var)}) this compaction would add, without
/// materializing the new table (same cost; used when only the size matters).
std::uint64_t compaction_width(const PrefixTable& t, int var,
                               DiagramKind kind, OpCounter* ops = nullptr);

}  // namespace ovo::core
