#include "core/multi_output.hpp"

#include "core/fs_star.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::core {

// Cells indexed by (sel, x) with sel occupying the TOP bit positions so
// that the x variables form the low, compactable block. Outputs are padded
// to a power of two by repeating output 0 (duplicates add no distinct
// subfunctions).
PrefixTable shared_initial_table(const std::vector<tt::TruthTable>& outputs,
                                 int* num_x_vars) {
  OVO_CHECK_MSG(!outputs.empty(), "fs_minimize_shared: no outputs");
  const int n = outputs.front().num_vars();
  for (const tt::TruthTable& t : outputs)
    OVO_CHECK_MSG(t.num_vars() == n,
                  "fs_minimize_shared: outputs must share the variable set");
  int sel = 0;
  while ((std::size_t{1} << sel) < outputs.size()) ++sel;
  OVO_CHECK_MSG(n + sel <= tt::TruthTable::kMaxVars,
                "fs_minimize_shared: too many variables + outputs");

  PrefixTable t;
  t.n = n + sel;
  t.vars = 0;
  t.num_terminals = 2;
  t.next_id = 2;
  t.cells.resize(std::uint64_t{1} << (n + sel));
  const std::uint64_t x_cells = std::uint64_t{1} << n;
  for (std::uint64_t s = 0; s < (std::uint64_t{1} << sel); ++s) {
    const tt::TruthTable& out =
        outputs[s < outputs.size() ? s : 0];
    for (std::uint64_t a = 0; a < x_cells; ++a)
      t.cells[(s << n) | a] = out.get(a) ? 1u : 0u;
  }
  *num_x_vars = n;
  return t;
}

MultiMinimizeResult fs_minimize_shared(
    const std::vector<tt::TruthTable>& outputs, DiagramKind kind,
    const par::ExecPolicy& exec) {
  MultiMinimizeResult r;
  int n = 0;
  const PrefixTable base = shared_initial_table(outputs, &n);
  std::vector<int> bottom_up;
  const PrefixTable final_table = fs_star_full(
      base, util::full_mask(n), kind, &r.ops, &bottom_up, exec);
  r.min_internal_nodes = final_table.mincost();
  r.order_root_first.assign(bottom_up.rbegin(), bottom_up.rend());
  return r;
}

std::uint64_t shared_size_for_order(const std::vector<tt::TruthTable>& outputs,
                                    const std::vector<int>& order_root_first,
                                    DiagramKind kind) {
  int n = 0;
  PrefixTable t = shared_initial_table(outputs, &n);
  OVO_CHECK_MSG(static_cast<int>(order_root_first.size()) == n,
                "shared_size_for_order: order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order_root_first),
                "shared_size_for_order: order not a permutation");
  for (std::size_t j = order_root_first.size(); j-- > 0;)
    t = compact(t, order_root_first[j], kind);
  return t.mincost();
}

}  // namespace ovo::core
