#include "core/prefix_table.hpp"

#include <algorithm>

#include "ds/hash.hpp"
#include "util/check.hpp"

namespace ovo::core {

namespace {

/// Dedup tables are sized for the incoming pair count but clamped so one
/// compaction never pre-commits more than ~64K entries up front (the table
/// still grows on demand past the clamp).
std::size_t dedup_reserve(std::uint64_t pairs) {
  constexpr std::uint64_t kCap = std::uint64_t{1} << 16;
  return static_cast<std::size_t>(std::min(pairs, kCap));
}

/// Shared cell sweep for compact() / compaction_width(). Emit receives
/// (dense cell index in the new table, u0, u1) for every new-table cell.
template <typename Emit>
void sweep_pairs(const PrefixTable& t, int var, Emit&& emit) {
  OVO_CHECK(var >= 0 && var < t.n);
  const util::Mask bit = util::Mask{1} << var;
  OVO_CHECK_MSG((t.vars & bit) == 0, "compact: variable already in prefix");
  const util::Mask free = t.free_mask();
  // Rank of `var` among the free variables (ascending index) = its bit
  // position within the dense cell index.
  const int pos = util::popcount(free & (bit - 1));
  const std::uint64_t low = (std::uint64_t{1} << pos) - 1;
  const std::uint64_t half = t.cells.size() >> 1;
  for (std::uint64_t b = 0; b < half; ++b) {
    const std::uint64_t idx0 = ((b & ~low) << 1) | (b & low);
    const std::uint64_t idx1 = idx0 | (std::uint64_t{1} << pos);
    emit(b, t.cells[idx0], t.cells[idx1]);
  }
}

bool cell_passes_through(DiagramKind kind, std::uint32_t u0,
                         std::uint32_t u1) {
  // BDD/MTBDD reduction rule (a): equal children — no node.
  // ZDD zero-suppression: 1-child is the false terminal (id 0) — no node.
  return kind == DiagramKind::kZdd ? (u1 == 0) : (u0 == u1);
}

}  // namespace

PrefixTable initial_table(const tt::TruthTable& f) {
  PrefixTable t;
  t.n = f.num_vars();
  t.vars = 0;
  t.num_terminals = 2;
  t.next_id = 2;
  t.cells.resize(f.size());
  for (std::uint64_t a = 0; a < f.size(); ++a)
    t.cells[a] = f.get(a) ? 1u : 0u;
  return t;
}

PrefixTable initial_table_values(const std::vector<std::int64_t>& values,
                                 int n,
                                 std::vector<std::int64_t>* terminal_values) {
  OVO_CHECK_MSG(n >= 0 && n <= tt::TruthTable::kMaxVars,
                "initial_table_values: n out of range");
  OVO_CHECK_MSG(values.size() == (std::uint64_t{1} << n),
                "initial_table_values: size must be 2^n");
  PrefixTable t;
  t.n = n;
  t.vars = 0;
  t.cells.resize(values.size());
  // Interns values in first-appearance order; key = the value's bit pattern.
  ds::UniqueTable intern(dedup_reserve(values.size()));
  std::vector<std::int64_t> interned;
  for (std::uint64_t a = 0; a < values.size(); ++a) {
    const auto [id, inserted] = intern.find_or_insert(
        static_cast<std::uint64_t>(values[a]),
        static_cast<std::uint32_t>(intern.size()));
    if (inserted) interned.push_back(values[a]);
    t.cells[a] = id;
  }
  t.num_terminals = static_cast<std::uint32_t>(intern.size());
  t.next_id = t.num_terminals;
  if (terminal_values != nullptr) *terminal_values = std::move(interned);
  return t;
}

PrefixTable compact(const PrefixTable& t, int var, DiagramKind kind,
                    OpCounter* ops, rt::Governor* gov) {
  PrefixTable out;
  compact_into(out, t, var, kind, ops, gov);
  return out;
}

void compact_into(PrefixTable& out, const PrefixTable& t, int var,
                  DiagramKind kind, OpCounter* ops, rt::Governor* gov) {
  OVO_DCHECK(&out != &t);
  if (gov != nullptr) gov->charge(t.cells.size());
  out.n = t.n;
  out.vars = t.vars | (util::Mask{1} << var);
  out.num_terminals = t.num_terminals;
  out.next_id = t.next_id;
  out.cells.resize(t.cells.size() >> 1);
  ds::UniqueTable dedup(dedup_reserve(t.cells.size() >> 1));
  sweep_pairs(t, var, [&](std::uint64_t b, std::uint32_t u0,
                          std::uint32_t u1) {
    if (cell_passes_through(kind, u0, u1)) {
      out.cells[b] = u0;
      return;
    }
    const auto [id, inserted] =
        dedup.find_or_insert(ds::pack_pair(u0, u1), out.next_id);
    if (inserted) ++out.next_id;
    out.cells[b] = id;
  });
  if (ops != nullptr) {
    ops->table_cells += t.cells.size();
    ++ops->compactions;
    ops->dedup += dedup.stats();
  }
}

std::uint64_t compaction_width(const PrefixTable& t, int var,
                               DiagramKind kind, OpCounter* ops) {
  ds::UniqueTable dedup(dedup_reserve(t.cells.size() >> 1));
  sweep_pairs(t, var,
              [&](std::uint64_t, std::uint32_t u0, std::uint32_t u1) {
                if (cell_passes_through(kind, u0, u1)) return;
                dedup.find_or_insert(ds::pack_pair(u0, u1),
                                     static_cast<std::uint32_t>(dedup.size()));
              });
  if (ops != nullptr) {
    ops->table_cells += t.cells.size();
    ++ops->compactions;
    ops->dedup += dedup.stats();
  }
  return dedup.size();
}

}  // namespace ovo::core
