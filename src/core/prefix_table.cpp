#include "core/prefix_table.hpp"

#include "util/check.hpp"

namespace ovo::core {

namespace {

struct PairHash {
  std::size_t operator()(std::uint64_t k) const {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }
};

/// Shared cell sweep for compact() / compaction_width(). Emit receives
/// (dense cell index in the new table, u0, u1) for every new-table cell.
template <typename Emit>
void sweep_pairs(const PrefixTable& t, int var, Emit&& emit) {
  OVO_CHECK(var >= 0 && var < t.n);
  const util::Mask bit = util::Mask{1} << var;
  OVO_CHECK_MSG((t.vars & bit) == 0, "compact: variable already in prefix");
  const util::Mask free = t.free_mask();
  // Rank of `var` among the free variables (ascending index) = its bit
  // position within the dense cell index.
  const int pos = util::popcount(free & (bit - 1));
  const std::uint64_t low = (std::uint64_t{1} << pos) - 1;
  const std::uint64_t half = t.cells.size() >> 1;
  for (std::uint64_t b = 0; b < half; ++b) {
    const std::uint64_t idx0 = ((b & ~low) << 1) | (b & low);
    const std::uint64_t idx1 = idx0 | (std::uint64_t{1} << pos);
    emit(b, t.cells[idx0], t.cells[idx1]);
  }
}

bool cell_passes_through(DiagramKind kind, std::uint32_t u0,
                         std::uint32_t u1) {
  // BDD/MTBDD reduction rule (a): equal children — no node.
  // ZDD zero-suppression: 1-child is the false terminal (id 0) — no node.
  return kind == DiagramKind::kZdd ? (u1 == 0) : (u0 == u1);
}

}  // namespace

PrefixTable initial_table(const tt::TruthTable& f) {
  PrefixTable t;
  t.n = f.num_vars();
  t.vars = 0;
  t.num_terminals = 2;
  t.next_id = 2;
  t.cells.resize(f.size());
  for (std::uint64_t a = 0; a < f.size(); ++a)
    t.cells[a] = f.get(a) ? 1u : 0u;
  return t;
}

PrefixTable initial_table_values(const std::vector<std::int64_t>& values,
                                 int n,
                                 std::vector<std::int64_t>* terminal_values) {
  OVO_CHECK_MSG(n >= 0 && n <= tt::TruthTable::kMaxVars,
                "initial_table_values: n out of range");
  OVO_CHECK_MSG(values.size() == (std::uint64_t{1} << n),
                "initial_table_values: size must be 2^n");
  PrefixTable t;
  t.n = n;
  t.vars = 0;
  t.cells.resize(values.size());
  std::unordered_map<std::int64_t, std::uint32_t> intern;
  std::vector<std::int64_t> interned;
  for (std::uint64_t a = 0; a < values.size(); ++a) {
    const auto [it, inserted] =
        intern.emplace(values[a], static_cast<std::uint32_t>(intern.size()));
    if (inserted) interned.push_back(values[a]);
    t.cells[a] = it->second;
  }
  t.num_terminals = static_cast<std::uint32_t>(intern.size());
  t.next_id = t.num_terminals;
  if (terminal_values != nullptr) *terminal_values = std::move(interned);
  return t;
}

PrefixTable compact(const PrefixTable& t, int var, DiagramKind kind,
                    OpCounter* ops) {
  PrefixTable out;
  out.n = t.n;
  out.vars = t.vars | (util::Mask{1} << var);
  out.num_terminals = t.num_terminals;
  out.next_id = t.next_id;
  out.cells.resize(t.cells.size() >> 1);
  std::unordered_map<std::uint64_t, std::uint32_t, PairHash> dedup;
  sweep_pairs(t, var, [&](std::uint64_t b, std::uint32_t u0,
                          std::uint32_t u1) {
    if (cell_passes_through(kind, u0, u1)) {
      out.cells[b] = u0;
      return;
    }
    const std::uint64_t key = (std::uint64_t{u0} << 32) | u1;
    const auto [it, inserted] = dedup.emplace(key, out.next_id);
    if (inserted) ++out.next_id;
    out.cells[b] = it->second;
  });
  if (ops != nullptr) {
    ops->table_cells += t.cells.size();
    ++ops->compactions;
  }
  return out;
}

std::uint64_t compaction_width(const PrefixTable& t, int var,
                               DiagramKind kind, OpCounter* ops) {
  std::unordered_map<std::uint64_t, std::uint32_t, PairHash> dedup;
  sweep_pairs(t, var,
              [&](std::uint64_t, std::uint32_t u0, std::uint32_t u1) {
                if (cell_passes_through(kind, u0, u1)) return;
                dedup.emplace((std::uint64_t{u0} << 32) | u1, 0u);
              });
  if (ops != nullptr) {
    ops->table_cells += t.cells.size();
    ++ops->compactions;
  }
  return dedup.size();
}

}  // namespace ovo::core
