#pragma once
// Algorithm FS* (paper Lemma 8 / Appendix D): the composable form of the
// Friedman–Supowit dynamic program.  Starting from FS(I) (a PrefixTable for
// prefix set I), it computes FS(<I, K>) for all K ⊆ J of a given
// cardinality — or FS(<I, J>) when run to completion.  Algorithm FS itself
// (Theorem 5) is the special case I = ∅, J = [n], run to completion; see
// minimize.hpp for that entry point.
//
// Layer storage is rank-indexed: within a layer the C(|J|, k) subsets are
// stored in a dense vector indexed by the colexicographic rank of the
// subset (over J's bit positions), so predecessor lookup in the inner loop
// is an O(k) rank computation against the previous layer's vector instead
// of a hash probe.  Subsets within a layer only read the previous layer,
// so the per-subset best-last-variable searches are independent, and a
// layer-(k+1) subset depends on exactly its k+1 one-element-removed
// predecessors in layer k.
//
// Two engines share one per-subset kernel:
//  * Barrier engine (serial, or ExecPolicy{.pipeline = false}): one
//    parallel_for per layer with an implicit barrier and a serial
//    publish epilogue — the PR 2 structure, kept as the bit-identity
//    reference and the serial path.
//  * Pipelined engine (pipeline = true and threads > 1): the whole
//    admitted DP is one ovo::par::TaskGraph.  Subset groups become nodes
//    whose dependency counters track incomplete predecessor groups, so
//    layer k+1 compactions start while layer k is still draining; a
//    seq_epoch fence per layer publishes results in rank order.  Every
//    subset writes to its own colex-rank slot, so orders, sizes,
//    tie-breaks, and merged OpCounter totals are bit-identical across
//    engines and thread counts (governor admits are decided serially up
//    front, preserving deterministic budget trips; see fs_star.cpp).
// The default policy is serial and bit-identical to the original
// single-threaded implementation.
//
// Bound-pruned mode (ExecPolicy.prune = PruneMode::kBounds): full-block
// runs (stop_k == |J|) additionally compute an admissible per-state
// lower bound — cost so far plus a completion bound from the table's
// distinct-subfunction count and the block variables the function still
// depends on — and skip every state whose bound exceeds a seeded upper
// bound (callers pass one from a cheap heuristic; 0 self-seeds from one
// ascending chain over J).  Layers are stored sparsely: only surviving
// states hold cells, so pruned states cost zero bytes.  Because the
// incumbent is fixed before the DP starts and every state's bound is
// local, the surviving set — and therefore the optimal order, size, and
// every tie-break — is bit-identical to the dense engines at every
// thread count (see docs/INTERNALS.md for the admissibility and
// determinism arguments).  Stop-early runs (stop_k < |J|) ignore the
// prune flag: their contract is one table per subset at the stop layer.
// The default mode is kOff: dense engines, untouched.

#include <unordered_map>
#include <vector>

#include "core/fs_checkpoint.hpp"
#include "core/prefix_table.hpp"
#include "parallel/exec_policy.hpp"
#include "rt/budget.hpp"

namespace ovo::core {

struct FsStarResult {
  /// Tables at the stop layer: one entry per K ⊆ J with |K| = stop_k
  /// (a single entry with key J when run to completion). Keys are variable
  /// masks; each table's chain cost is table.mincost().
  std::unordered_map<util::Mask, PrefixTable> tables;

  /// For every K ⊆ J with 1 <= |K| <= stop_k: the variable placed at the
  /// top level of the block, i.e. pi_{<I,K>}[|I|+|K|] (Lemma 7's argmin).
  std::unordered_map<util::Mask, int> best_last;

  /// MINCOST_{<I,K>} (chain totals, including the base's mincost) for every
  /// K ⊆ J with |K| <= stop_k.
  std::unordered_map<util::Mask, std::uint64_t> mincost;

  /// Deepest fully built layer.  Equals the requested stop_k when the run
  /// completed; smaller iff a governor tripped, in which case `tables`
  /// holds the last *completed* layer (partial layers are discarded).
  int completed_layers = 0;

  /// Bound-pruned runs only (all-zero otherwise).  In pruned mode,
  /// `tables`/`best_last`/`mincost` hold the *surviving* states of each
  /// layer; every chain the dense engine would reconstruct survives, so
  /// reconstruct_block_order works unchanged.
  PruneStats prune;

  /// Certified lower bound on MINCOST_{<I,J>}: the minimum, over the
  /// deepest completed layer's surviving states, of cost-so-far plus the
  /// admissible completion bound.  Valid even when a budget interrupted
  /// the run (the optimal chain's bottom-k state always survives); equals
  /// the optimal mincost when the pruned DP completed.  0 in dense mode —
  /// dense callers derive bounds from the tables themselves.
  std::uint64_t certified_lower_bound = 0;
};

/// Runs the FS* DP from `base` over block J (disjoint from base.vars),
/// stopping after layer `stop_k` (0 <= stop_k <= |J|).  `exec` controls
/// the per-layer fan-out over subsets; the default is serial.  Results
/// and merged OpCounter totals are identical for every thread count.
///
/// When `gov` is non-null the run is budgeted: each layer's work
/// (C(|J|,k) subsets × k compactions × predecessor cells) and projected
/// residency are admitted *before* the layer is built — a deterministic
/// decision independent of thread count — and cancellation/deadline are
/// polled per subset, discarding any partially built layer.  In pruned
/// mode the admission estimate uses the *running sparse counts* (actual
/// surviving predecessors and candidate states) instead of the dense
/// closed form; sparse counts are only known layer by layer, so a pruned
/// run with deterministic limits always takes the serially-admitting
/// barrier engine, regardless of `exec.pipeline`.  On a trip the result
/// holds every layer up to `completed_layers` and remains fully
/// consistent (valid tables, back-pointers, and mincosts for all
/// published subsets) and — in pruned mode — still carries a consistent
/// prune ledger and a certified lower bound.
///
/// `prune_upper_bound` is the pruning incumbent: the exact size of some
/// real completion of the block (chain totals, including base.mincost()),
/// typically seeded from a cheap heuristic by the reorder layer.  0 means
/// "self-seed" (one ascending-order chain over J).  Ignored in dense
/// mode.  Passing a bound below the true optimum is a contract violation
/// (every state could be pruned) and is caught by an OVO_CHECK.
///
/// `ckpt` (optional) turns on durable checkpoint/resume (see
/// fs_checkpoint.hpp): with a path (or byte hook), a snapshot of the full
/// fence state is emitted at each qualifying layer fence and on a
/// governor trip; with a resume snapshot, the DP restarts from that fence
/// and replays the remaining layers bit-identically — same order, sizes,
/// tie-breaks, ledgers (`*ops` gains the snapshot's fence totals, `gov`
/// is credited the snapshot's charged work), at any thread count.
/// Snapshot-writing runs take the barrier engines, whose fences hold a
/// merged ledger; resume works on every engine.  A snapshot whose
/// fingerprint does not match (base, J, stop_k, kind, effective prune
/// mode) throws rt::CheckpointError(kWrongInstance).
FsStarResult fs_star(const PrefixTable& base, util::Mask J, int stop_k,
                     DiagramKind kind, OpCounter* ops = nullptr,
                     const par::ExecPolicy& exec = {},
                     rt::Governor* gov = nullptr,
                     std::uint64_t prune_upper_bound = 0,
                     const FsCheckpointOptions* ckpt = nullptr);

/// Convenience: run to completion and return the single FS(<I, J>) table.
PrefixTable fs_star_full(const PrefixTable& base, util::Mask J,
                         DiagramKind kind, OpCounter* ops = nullptr,
                         std::vector<int>* block_order_bottom_up = nullptr,
                         const par::ExecPolicy& exec = {},
                         std::uint64_t prune_upper_bound = 0,
                         const FsCheckpointOptions* ckpt = nullptr);

/// Recovers the optimal within-block variable order of J from the DP
/// back-pointers: result[0] is the variable at the lowest level of the
/// block, result[|J|-1] the one at its top (the paper's pi restricted to
/// the block, bottom-up).
std::vector<int> reconstruct_block_order(const FsStarResult& r, util::Mask J);

}  // namespace ovo::core
