#include "core/fs_star.hpp"

#include <limits>

#include "util/check.hpp"

namespace ovo::core {

FsStarResult fs_star(const PrefixTable& base, util::Mask J, int stop_k,
                     DiagramKind kind, OpCounter* ops) {
  OVO_CHECK_MSG((base.vars & J) == 0, "fs_star: J overlaps prefix I");
  OVO_CHECK_MSG(util::is_subset(J, util::full_mask(base.n)),
                "fs_star: J outside variable universe");
  const int j_size = util::popcount(J);
  OVO_CHECK_MSG(stop_k >= 0 && stop_k <= j_size, "fs_star: bad stop layer");

  const std::vector<int> j_vars = util::bits_of(J);

  FsStarResult result;
  result.mincost.emplace(util::Mask{0}, base.mincost());

  std::unordered_map<util::Mask, PrefixTable> prev;
  prev.emplace(util::Mask{0}, base);

  std::uint64_t prev_resident = base.cells.size();
  for (int layer = 1; layer <= stop_k; ++layer) {
    std::unordered_map<util::Mask, PrefixTable> cur;
    std::uint64_t cur_resident = 0;
    // Enumerate K ⊆ J with |K| = layer via dense combinations of J's bits.
    util::for_each_subset_of_size(j_size, layer, [&](util::Mask dense) {
      util::Mask K = 0;
      util::for_each_bit(dense, [&](int b) {
        K |= util::Mask{1} << j_vars[static_cast<std::size_t>(b)];
      });
      PrefixTable best;
      std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
      int best_var = -1;
      util::for_each_bit(K, [&](int k) {
        const auto it = prev.find(K & ~(util::Mask{1} << k));
        OVO_CHECK_MSG(it != prev.end(), "fs_star: missing predecessor table");
        PrefixTable cand = compact(it->second, k, kind, ops);
        const std::uint64_t cost = cand.mincost();
        if (cost < best_cost) {
          best_cost = cost;
          best_var = k;
          best = std::move(cand);
        }
      });
      OVO_CHECK(best_var >= 0);
      result.best_last.emplace(K, best_var);
      result.mincost.emplace(K, best_cost);
      cur_resident += best.cells.size();
      cur.emplace(K, std::move(best));
    });
    // Remark 1: both layers are resident while the next one is built.
    if (ops != nullptr) ops->observe_resident(prev_resident + cur_resident);
    prev_resident = cur_resident;
    prev = std::move(cur);
  }

  result.tables = std::move(prev);
  return result;
}

PrefixTable fs_star_full(const PrefixTable& base, util::Mask J,
                         DiagramKind kind, OpCounter* ops,
                         std::vector<int>* block_order_bottom_up) {
  FsStarResult r = fs_star(base, J, util::popcount(J), kind, ops);
  if (block_order_bottom_up != nullptr)
    *block_order_bottom_up = reconstruct_block_order(r, J);
  auto it = r.tables.find(J);
  OVO_CHECK(it != r.tables.end());
  return std::move(it->second);
}

std::vector<int> reconstruct_block_order(const FsStarResult& r,
                                         util::Mask J) {
  std::vector<int> top_down;
  util::Mask K = J;
  while (K != 0) {
    const auto it = r.best_last.find(K);
    OVO_CHECK_MSG(it != r.best_last.end(),
                  "reconstruct_block_order: missing back-pointer");
    top_down.push_back(it->second);
    K &= ~(util::Mask{1} << it->second);
  }
  return {top_down.rbegin(), top_down.rend()};  // bottom-up
}

}  // namespace ovo::core
