#include "core/fs_star.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <utility>

#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::core {

namespace {

/// Expands a dense subset of J's bit positions into a variable mask.
util::Mask spread_mask(util::Mask dense, const std::vector<int>& j_vars) {
  util::Mask K = 0;
  util::for_each_bit(dense, [&](int b) {
    K |= util::Mask{1} << j_vars[static_cast<std::size_t>(b)];
  });
  return K;
}

/// Shared per-subset kernel of both engines: finds the best last variable
/// for dense subset `d` by compacting each predecessor table, writing the
/// winner into `best` (Lemma 7's argmin; first-candidate-wins tie-break,
/// identical in every engine because candidates are visited in ascending
/// bit order).
void best_last_for_subset(util::Mask d, const std::vector<PrefixTable>& prev,
                          const std::vector<util::Mask>& prev_dense,
                          const std::vector<int>& j_vars, DiagramKind kind,
                          const util::BinomialTable& binom, OpCounter* shard,
                          PrefixTable& cand, PrefixTable& best,
                          int* best_var_out, std::uint64_t* best_cost_out) {
  std::uint64_t bc = std::numeric_limits<std::uint64_t>::max();
  int bv = -1;
  util::for_each_bit(d, [&](int b) {
    // Predecessor = this subset minus one element, found at its colex
    // rank in the previous layer — an O(layer) table-driven computation
    // in place of the seed's hash find.
    const util::Mask pd = d & ~(util::Mask{1} << b);
    const std::uint64_t pred = binom.rank(pd);
    OVO_DCHECK(pred < prev.size() &&
               prev_dense[static_cast<std::size_t>(pred)] == pd);
    compact_into(cand, prev[static_cast<std::size_t>(pred)],
                 j_vars[static_cast<std::size_t>(b)], kind, shard);
    const std::uint64_t cost = cand.mincost();
    if (cost < bc) {
      bc = cost;
      bv = j_vars[static_cast<std::size_t>(b)];
      std::swap(best, cand);
    }
  });
  *best_var_out = bv;
  *best_cost_out = bc;
}

std::uint64_t engine_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The PR 2 engine: one parallel_for per layer with an implicit barrier.
/// Kept as the serial path and the pipeline=false A/B reference — its
/// published results are identical to the pipelined engine's.
///
/// Barrier-wait accounting (symmetric with the pipelined engine):
/// charged time is the *layer-boundary serialization each engine's
/// design imposes* — here, the per-layer publish epilogue after every
/// fanned-out region plus the final extraction, each costing
/// (threads - 1) x its duration in parked participants.  The pipelined
/// engine overlaps those epilogues with the next layer's chunk work
/// (they run inside fences), so this is exactly the stall pipelining
/// removes.  Serial work BOTH engines pay identically before any fan-out
/// (admission, enumeration, allocation; the pipelined engine's graph
/// build) is excluded on both sides: it is setup overhead, visible in
/// wall clock, not barrier stall.
FsStarResult fs_star_barrier(const PrefixTable& base, util::Mask J,
                             int stop_k, DiagramKind kind, OpCounter* ops,
                             int threads, std::uint64_t grain,
                             rt::Governor* gov) {
  const int j_size = util::popcount(J);
  const std::vector<int> j_vars = util::bits_of(J);
  const auto& binom = util::BinomialTable::instance();
  par::ThreadPool& pool = par::ThreadPool::shared();

  FsStarResult result;
  result.mincost.emplace(util::Mask{0}, base.mincost());

  // Layer k holds one PrefixTable per k-subset of J, at the subset's
  // colex rank (over dense positions into j_vars).  Layer 0 is the base.
  std::vector<PrefixTable> prev;
  prev.push_back(base);
  std::vector<util::Mask> prev_dense{util::Mask{0}};

  // Per-thread-slot state: scratch tables so the inner loop's candidate
  // compaction reuses one buffer per thread, and OpCounter shards merged
  // after each layer (exact: all fields commute).
  std::vector<PrefixTable> scratch(static_cast<std::size_t>(threads));
  std::vector<OpCounter> shards(static_cast<std::size_t>(threads));

  const std::atomic<bool>* stop_flag =
      gov != nullptr ? gov->stop_flag() : nullptr;
  std::uint64_t prev_resident = base.cells.size();
  std::uint64_t layer_work = 0;
  std::uint64_t serial_ns = 0;
  for (int layer = 1; layer <= stop_k; ++layer) {
    const std::uint64_t layer_size = binom.choose(j_size, layer);
    if (gov != nullptr) {
      // Deterministic pre-admission: the whole layer's cost is known in
      // closed form, so the trip decision is independent of thread count
      // and made before any allocation.  Both layers are resident while
      // the next one is built (Remark 1).
      const std::uint64_t pred_cells =
          static_cast<std::uint64_t>(base.cells.size()) >> (layer - 1);
      layer_work =
          layer_size * static_cast<std::uint64_t>(layer) * pred_cells;
      const std::uint64_t resident =
          prev_resident + layer_size * (pred_cells >> 1);
      if (!gov->admit_nodes(resident) ||
          !gov->admit_bytes(resident * sizeof(base.cells[0])) ||
          !gov->admit_work(layer_work))
        break;
    }
    // Gosper enumeration yields masks in increasing numeric order, which
    // for fixed popcount IS colex rank order; the one-time size check
    // below replaces the seed's per-(subset, variable) hash-find checks.
    std::vector<util::Mask> dense;
    dense.reserve(static_cast<std::size_t>(layer_size));
    util::for_each_subset_of_size(j_size, layer, [&](util::Mask m) {
      dense.push_back(m);
    });
    OVO_CHECK_MSG(dense.size() == layer_size,
                  "fs_star: layer enumeration incomplete");

    std::vector<PrefixTable> cur(static_cast<std::size_t>(layer_size));
    std::vector<int> best_var(static_cast<std::size_t>(layer_size), -1);
    std::vector<std::uint64_t> best_cost(
        static_cast<std::size_t>(layer_size));

    // A layer of <= grain subsets takes parallel_for's serial fast path;
    // its epilogue is not a fan-out seam, so it is not charged.
    const bool fans_out = threads > 1 && layer_size > grain;
    pool.parallel_for(0, layer_size, grain, threads, stop_flag,
                      [&](std::uint64_t rank, int slot) {
      if (gov != nullptr) gov->poll();  // cancel/deadline responsiveness
      OpCounter* shard =
          ops != nullptr ? &shards[static_cast<std::size_t>(slot)] : nullptr;
      best_last_for_subset(dense[static_cast<std::size_t>(rank)], prev,
                           prev_dense, j_vars, kind, binom, shard,
                           scratch[static_cast<std::size_t>(slot)],
                           cur[static_cast<std::size_t>(rank)],
                           &best_var[static_cast<std::size_t>(rank)],
                           &best_cost[static_cast<std::size_t>(rank)]);
    });
    const std::uint64_t epilogue_t0 = fans_out ? engine_now_ns() : 0;
    if (gov != nullptr && gov->stopped()) break;  // discard partial layer

    // Serial epilogue per layer: publish back-pointers/costs in rank
    // order (identical to the seed's enumeration order) and account for
    // residency.  Remark 1: both layers are resident while the next one
    // is built.
    std::uint64_t cur_resident = 0;
    for (std::uint64_t r = 0; r < layer_size; ++r) {
      OVO_CHECK(best_var[static_cast<std::size_t>(r)] >= 0);
      const util::Mask K =
          spread_mask(dense[static_cast<std::size_t>(r)], j_vars);
      result.best_last.emplace(K, best_var[static_cast<std::size_t>(r)]);
      result.mincost.emplace(K, best_cost[static_cast<std::size_t>(r)]);
      cur_resident += cur[static_cast<std::size_t>(r)].cells.size();
    }
    if (ops != nullptr) {
      for (OpCounter& shard : shards) {
        *ops += shard;
        shard.reset();
      }
      ops->observe_resident(prev_resident + cur_resident);
    }
    prev_resident = cur_resident;
    prev = std::move(cur);
    prev_dense = std::move(dense);
    result.completed_layers = layer;
    if (gov != nullptr) gov->charge(layer_work);
    if (fans_out) serial_ns += engine_now_ns() - epilogue_t0;
  }

  const std::uint64_t extract_t0 = threads > 1 ? engine_now_ns() : 0;
  for (std::size_t r = 0; r < prev.size(); ++r)
    result.tables.emplace(spread_mask(prev_dense[r], j_vars),
                          std::move(prev[r]));
  if (threads > 1) {
    serial_ns += engine_now_ns() - extract_t0;
    par::charge_barrier_wait(static_cast<std::uint64_t>(threads - 1) *
                             serial_ns);
  }
  return result;
}

/// Ceiling on subset-group task nodes per DP layer: big layers are cut
/// into at most this many graph nodes (each still work-chunked at the
/// subset grain internally), bounding graph size at O(layers × 512)
/// while keeping dependency edges sparse enough to pipeline.
constexpr std::uint64_t kMaxGroupsPerLayer = 512;

/// The tentpole engine: the whole admitted DP is built as ONE TaskGraph.
/// Each layer's subsets are grouped into up to kMaxGroupsPerLayer range
/// nodes; a layer-(k+1) group depends only on the layer-k groups that
/// hold its predecessors (dependency count = number of incomplete
/// predecessor groups), so compaction of layer k+1 starts while layer k
/// is still draining — the per-layer barrier is gone from the hot path.
/// A seq_epoch fence per layer publishes back-pointers/costs in rank
/// order, accounts residency, charges the governor, and frees layer k-1;
/// fences are serialized by the fence chain, so they run the exact
/// serial-epilogue code of the barrier engine.
///
/// Determinism: every subset writes its table/best-var/best-cost into
/// its own colex-rank slot and the candidate loop is identical code, so
/// published results are bit-identical to the barrier engine at every
/// thread count.  Governor interaction is kept deterministic by doing
/// ALL admit decisions serially up front: admit_work(cum + w_k) with
/// nothing charged yet tests the same predicate work0 + w_1 + … + w_k <=
/// limit the interleaved admit/charge sequence does (closed-form layer
/// costs are exact — compaction halves cells), and each fence then
/// charges its layer exactly where the barrier engine would.
///
/// Residency under pipelining: reported peak_cells stays the Remark-1
/// two-layer model (fences observe prev+cur, identical values to the
/// barrier engine); the true transient footprint can briefly hold parts
/// of three layers, since layer k-1 is freed only when fence k runs.
FsStarResult fs_star_pipelined(const PrefixTable& base, util::Mask J,
                               int stop_k, DiagramKind kind, OpCounter* ops,
                               int threads, std::uint64_t grain,
                               rt::Governor* gov) {
  const int j_size = util::popcount(J);
  const std::vector<int> j_vars = util::bits_of(J);
  const auto& binom = util::BinomialTable::instance();

  FsStarResult result;
  result.mincost.emplace(util::Mask{0}, base.mincost());

  // --- Serial pre-admission (see function comment). ---
  int last_layer = 0;
  std::vector<std::uint64_t> layer_work(
      static_cast<std::size_t>(stop_k) + 1, 0);
  {
    std::uint64_t cum = 0;
    std::uint64_t prev_res = base.cells.size();
    for (int layer = 1; layer <= stop_k; ++layer) {
      const std::uint64_t layer_size = binom.choose(j_size, layer);
      const std::uint64_t pred_cells =
          static_cast<std::uint64_t>(base.cells.size()) >> (layer - 1);
      const std::uint64_t w =
          layer_size * static_cast<std::uint64_t>(layer) * pred_cells;
      if (gov != nullptr) {
        const std::uint64_t resident =
            prev_res + layer_size * (pred_cells >> 1);
        if (!gov->admit_nodes(resident) ||
            !gov->admit_bytes(resident * sizeof(base.cells[0])) ||
            !gov->admit_work(cum + w))
          break;
      }
      cum += w;
      layer_work[static_cast<std::size_t>(layer)] = w;
      prev_res = layer_size * (pred_cells >> 1);
      last_layer = layer;
    }
  }

  struct Layer {
    std::vector<util::Mask> dense;
    std::vector<PrefixTable> tables;
    std::vector<int> best_var;
    std::vector<std::uint64_t> best_cost;
    std::uint64_t group_size = 1;
    std::uint64_t n_groups = 0;
    par::TaskGraph::TaskId first_group = 0;
  };
  std::vector<Layer> layers(static_cast<std::size_t>(last_layer) + 1);
  layers[0].dense.push_back(util::Mask{0});
  layers[0].tables.push_back(base);

  if (last_layer == 0) {
    result.tables.emplace(util::Mask{0}, std::move(layers[0].tables[0]));
    return result;
  }

  std::vector<PrefixTable> scratch(static_cast<std::size_t>(threads));
  std::vector<OpCounter> shards(static_cast<std::size_t>(threads));

  // Chained fence state: fences are serialized, so plain variables.
  std::uint64_t fence_prev_resident = base.cells.size();

  par::TaskGraph graph;
  for (int layer = 1; layer <= last_layer; ++layer) {
    Layer& L = layers[static_cast<std::size_t>(layer)];
    Layer& P = layers[static_cast<std::size_t>(layer) - 1];
    const std::uint64_t layer_size = binom.choose(j_size, layer);
    L.dense.reserve(static_cast<std::size_t>(layer_size));
    util::for_each_subset_of_size(j_size, layer, [&](util::Mask m) {
      L.dense.push_back(m);
    });
    OVO_CHECK_MSG(L.dense.size() == layer_size,
                  "fs_star: layer enumeration incomplete");
    L.tables.resize(static_cast<std::size_t>(layer_size));
    L.best_var.assign(static_cast<std::size_t>(layer_size), -1);
    L.best_cost.resize(static_cast<std::size_t>(layer_size));

    std::uint64_t group = (layer_size + kMaxGroupsPerLayer - 1) /
                          kMaxGroupsPerLayer;
    if (group < grain) group = grain;
    group = (group + grain - 1) / grain * grain;  // align chunk boundaries
    L.group_size = group;
    L.n_groups = (layer_size + group - 1) / group;

    auto body = [&layers, &scratch, &shards, &j_vars, &binom, layer, kind,
                 ops, gov](std::uint64_t rank, int slot) {
      if (gov != nullptr) gov->poll();  // cancel/deadline responsiveness
      Layer& cur = layers[static_cast<std::size_t>(layer)];
      Layer& pre = layers[static_cast<std::size_t>(layer) - 1];
      OpCounter* shard =
          ops != nullptr ? &shards[static_cast<std::size_t>(slot)] : nullptr;
      best_last_for_subset(cur.dense[static_cast<std::size_t>(rank)],
                           pre.tables, pre.dense, j_vars, kind, binom, shard,
                           scratch[static_cast<std::size_t>(slot)],
                           cur.tables[static_cast<std::size_t>(rank)],
                           &cur.best_var[static_cast<std::size_t>(rank)],
                           &cur.best_cost[static_cast<std::size_t>(rank)]);
    };

    // One range node per group; dependency edges to exactly the previous
    // layer's groups that hold this group's predecessors, deduplicated
    // with a stamp array.  Layer 1's only predecessor is the base, which
    // is not a task — its groups seed the ready queue.
    std::vector<std::uint32_t> stamp(
        layer >= 2 ? static_cast<std::size_t>(P.n_groups) : 0,
        std::numeric_limits<std::uint32_t>::max());
    for (std::uint64_t g = 0; g < L.n_groups; ++g) {
      const std::uint64_t lo = g * group;
      const std::uint64_t hi =
          lo + group < layer_size ? lo + group : layer_size;
      const par::TaskGraph::TaskId id = graph.add_range(lo, hi, grain, body);
      if (g == 0) L.first_group = id;
      if (layer < 2) continue;
      for (std::uint64_t r = lo; r < hi; ++r) {
        util::for_each_bit(L.dense[static_cast<std::size_t>(r)], [&](int b) {
          const util::Mask pd =
              L.dense[static_cast<std::size_t>(r)] & ~(util::Mask{1} << b);
          const std::uint64_t pg = binom.rank(pd) / P.group_size;
          if (stamp[static_cast<std::size_t>(pg)] !=
              static_cast<std::uint32_t>(g)) {
            stamp[static_cast<std::size_t>(pg)] =
                static_cast<std::uint32_t>(g);
            graph.add_edge(
                P.first_group + static_cast<par::TaskGraph::TaskId>(pg), id);
          }
        });
      }
    }

    // The layer fence: the one consumer that truly needs every subset of
    // the layer.  Runs the barrier engine's serial epilogue verbatim —
    // publish in rank order, account residency, charge, free layer-1.
    graph.seq_epoch([&result, &layers, &layer_work, &fence_prev_resident,
                     &j_vars, layer, layer_size, ops, gov](int) {
      Layer& cur = layers[static_cast<std::size_t>(layer)];
      std::uint64_t cur_resident = 0;
      for (std::uint64_t r = 0; r < layer_size; ++r) {
        OVO_CHECK(cur.best_var[static_cast<std::size_t>(r)] >= 0);
        const util::Mask K =
            spread_mask(cur.dense[static_cast<std::size_t>(r)], j_vars);
        result.best_last.emplace(K,
                                 cur.best_var[static_cast<std::size_t>(r)]);
        result.mincost.emplace(K,
                               cur.best_cost[static_cast<std::size_t>(r)]);
        cur_resident += cur.tables[static_cast<std::size_t>(r)].cells.size();
      }
      if (ops != nullptr)
        ops->observe_resident(fence_prev_resident + cur_resident);
      fence_prev_resident = cur_resident;
      result.completed_layers = layer;
      if (gov != nullptr)
        gov->charge(layer_work[static_cast<std::size_t>(layer)]);
      // Every reader of layer-1 (this layer's subsets) has completed.
      std::vector<PrefixTable>().swap(
          layers[static_cast<std::size_t>(layer) - 1].tables);
    });
  }

  graph.run(threads, gov != nullptr ? gov->stop_flag() : nullptr);
  // Barrier-wait accounting: the only layer-boundary serialization this
  // engine retains is the final extraction (per-layer epilogues run
  // inside fences, overlapped with the next layer's chunks; in-graph
  // no-work bubbles are counted by the scheduler itself).  Setup cost —
  // pre-admission, enumeration, graph build — is excluded on both sides
  // of the A/B; see fs_star_barrier.
  const std::uint64_t extract_t0 = engine_now_ns();

  // Shards merge once, after the drain (fences overlap layer k+1 chunk
  // work, so per-layer merges would race).  All fields commute, so
  // completed-run totals equal the barrier engine's; a hard-stopped run
  // additionally counts work from its discarded partial layer.
  if (ops != nullptr)
    for (OpCounter& shard : shards) *ops += shard;

  Layer& last = layers[static_cast<std::size_t>(result.completed_layers)];
  for (std::size_t r = 0; r < last.tables.size(); ++r)
    result.tables.emplace(spread_mask(last.dense[r], j_vars),
                          std::move(last.tables[r]));
  par::charge_barrier_wait(static_cast<std::uint64_t>(threads - 1) *
                           (engine_now_ns() - extract_t0));
  return result;
}

}  // namespace

FsStarResult fs_star(const PrefixTable& base, util::Mask J, int stop_k,
                     DiagramKind kind, OpCounter* ops,
                     const par::ExecPolicy& exec, rt::Governor* gov) {
  OVO_CHECK_MSG((base.vars & J) == 0, "fs_star: J overlaps prefix I");
  OVO_CHECK_MSG(util::is_subset(J, util::full_mask(base.n)),
                "fs_star: J outside variable universe");
  const int j_size = util::popcount(J);
  OVO_CHECK_MSG(stop_k >= 0 && stop_k <= j_size, "fs_star: bad stop layer");

  const int threads =
      par::ThreadPool::clamp_threads(exec.resolved_threads());
  // Per-subset work is exponential in the free-variable count, so the
  // default chunk is a single subset.
  const std::uint64_t grain = exec.grain != 0 ? exec.grain : 1;

  if (exec.pipeline && threads > 1 && stop_k > 0)
    return fs_star_pipelined(base, J, stop_k, kind, ops, threads, grain,
                             gov);
  return fs_star_barrier(base, J, stop_k, kind, ops, threads, grain, gov);
}

PrefixTable fs_star_full(const PrefixTable& base, util::Mask J,
                         DiagramKind kind, OpCounter* ops,
                         std::vector<int>* block_order_bottom_up,
                         const par::ExecPolicy& exec) {
  FsStarResult r = fs_star(base, J, util::popcount(J), kind, ops, exec);
  if (block_order_bottom_up != nullptr)
    *block_order_bottom_up = reconstruct_block_order(r, J);
  auto it = r.tables.find(J);
  OVO_CHECK(it != r.tables.end());
  return std::move(it->second);
}

std::vector<int> reconstruct_block_order(const FsStarResult& r,
                                         util::Mask J) {
  std::vector<int> top_down;
  util::Mask K = J;
  while (K != 0) {
    const auto it = r.best_last.find(K);
    OVO_CHECK_MSG(it != r.best_last.end(),
                  "reconstruct_block_order: missing back-pointer");
    top_down.push_back(it->second);
    K &= ~(util::Mask{1} << it->second);
  }
  return {top_down.rbegin(), top_down.rend()};  // bottom-up
}

}  // namespace ovo::core
