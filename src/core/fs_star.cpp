#include "core/fs_star.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <utility>

#include "ds/sparse_index.hpp"
#include "obs/trace.hpp"
#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::core {

namespace {

/// Expands a dense subset of J's bit positions into a variable mask.
util::Mask spread_mask(util::Mask dense, const std::vector<int>& j_vars) {
  util::Mask K = 0;
  util::for_each_bit(dense, [&](int b) {
    K |= util::Mask{1} << j_vars[static_cast<std::size_t>(b)];
  });
  return K;
}

/// Shared per-subset kernel of both engines: finds the best last variable
/// for dense subset `d` by compacting each predecessor table, writing the
/// winner into `best` (Lemma 7's argmin; first-candidate-wins tie-break,
/// identical in every engine because candidates are visited in ascending
/// bit order).
void best_last_for_subset(util::Mask d, const std::vector<PrefixTable>& prev,
                          const std::vector<util::Mask>& prev_dense,
                          const std::vector<int>& j_vars, DiagramKind kind,
                          const util::BinomialTable& binom, OpCounter* shard,
                          PrefixTable& cand, PrefixTable& best,
                          int* best_var_out, std::uint64_t* best_cost_out) {
  std::uint64_t bc = std::numeric_limits<std::uint64_t>::max();
  int bv = -1;
  util::for_each_bit(d, [&](int b) {
    // Predecessor = this subset minus one element, found at its colex
    // rank in the previous layer — an O(layer) table-driven computation
    // in place of the seed's hash find.
    const util::Mask pd = d & ~(util::Mask{1} << b);
    const std::uint64_t pred = binom.rank(pd);
    OVO_DCHECK(pred < prev.size() &&
               prev_dense[static_cast<std::size_t>(pred)] == pd);
    compact_into(cand, prev[static_cast<std::size_t>(pred)],
                 j_vars[static_cast<std::size_t>(b)], kind, shard);
    const std::uint64_t cost = cand.mincost();
    if (cost < bc) {
      bc = cost;
      bv = j_vars[static_cast<std::size_t>(b)];
      std::swap(best, cand);
    }
  });
  *best_var_out = bv;
  *best_cost_out = bc;
}

std::uint64_t engine_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Checkpoint/resume plumbing (see fs_checkpoint.hpp for the contract).

/// Dispatch-resolved checkpoint plan handed to the engines: the caller's
/// options plus the run's fingerprint and the effective pruning incumbent
/// (recorded into every written snapshot so a resume prunes against the
/// identical bound).
struct CkptPlan {
  const FsCheckpointOptions* opts = nullptr;
  FsFingerprint fp;
  std::uint32_t num_terminals = 2;
  std::uint64_t prune_ub = 0;  ///< effective incumbent; 0 in dense mode

  bool writes() const { return opts != nullptr && opts->writes(); }
  const FsStarSnapshot* resume() const {
    return opts != nullptr ? opts->resume : nullptr;
  }
};

/// Emits one layer-fence snapshot from live engine state.  Only called at
/// a fence of a barrier engine (dispatch forces barrier for writing
/// runs), where `dense`/`tables` hold the completed layer, the result
/// maps are published through it, and `ops`/`gov` hold merged totals.
void emit_fence_snapshot(const CkptPlan& plan, int layer,
                         const std::vector<util::Mask>& dense,
                         const std::vector<PrefixTable>& tables,
                         const FsStarResult& result, const OpCounter* ops,
                         const rt::Governor* gov) {
  OVO_TRACE_SPAN_ARGS("fs.checkpoint", "rt", 0, "layer",
                      static_cast<std::uint64_t>(layer), nullptr, 0);
  FsSnapshotView v;
  v.fingerprint = &plan.fp;
  v.num_terminals = plan.num_terminals;
  v.layer = layer;
  v.dense = &dense;
  v.tables = &tables;
  v.best_last = &result.best_last;
  v.mincost = &result.mincost;
  v.prune = &result.prune;
  v.certified_lower_bound = result.certified_lower_bound;
  v.ops = ops;
  v.work_charged = gov != nullptr ? gov->stats().work_units : 0;
  v.prune_upper_bound = plan.prune_ub;
  v.seed_order = &plan.opts->seed_order;
  v.rng_seed = plan.opts->rng_seed;
  v.seed_name = &plan.opts->seed_name;
  v.seed_stats = &plan.opts->seed_stats;
  const std::vector<std::uint8_t> payload = encode_snapshot(v);
  if (plan.opts->on_bytes) plan.opts->on_bytes(payload);
  if (!plan.opts->path.empty()) save_snapshot(plan.opts->path, payload);
}

/// True at a fence that should persist: the cadence hit (or a trip, which
/// the engines handle separately).
bool fence_due(const CkptPlan& plan, int layer, int stop_k) {
  return plan.writes() && layer < stop_k && plan.opts->every > 0 &&
         layer % plan.opts->every == 0;
}

/// Seeds a result with a snapshot's accumulated maps and ledgers.  The
/// engine then replays layers `snapshot.layer + 1 ..` exactly as the
/// uninterrupted run would have.
void apply_resume(FsStarResult& result, const FsStarSnapshot& s) {
  for (const auto& [mask, var] : s.best_last)
    result.best_last.emplace(mask, var);
  for (const auto& [mask, cost] : s.mincost)
    result.mincost.emplace(mask, cost);
  result.prune = s.prune;
  result.certified_lower_bound = s.certified_lower_bound;
  result.completed_layers = s.layer;
}

// ---------------------------------------------------------------------------
// Bound-pruned mode: admissible per-state lower bounds and sparse layers.

/// Free variables of `t` whose assignment can change a cell id.  Because
/// ids are canonical per table, v is in the support iff two cells
/// differing only in v's coordinate differ — i.e. some pair of
/// subfunctions over the placed variables differs, a property invariant
/// under compacting *other* variables.  So the support computed once on
/// the base table is each DP state's exact remaining-dependence set.
util::Mask table_support(const PrefixTable& t) {
  util::Mask support = 0;
  const std::vector<int> free_vars = util::bits_of(t.free_mask());
  for (std::size_t p = 0; p < free_vars.size(); ++p) {
    const std::size_t stride = std::size_t{1} << p;
    bool depends = false;
    for (std::size_t lo = 0; lo < t.cells.size() && !depends;
         lo += 2 * stride) {
      for (std::size_t i = lo; i < lo + stride; ++i) {
        if (t.cells[i] != t.cells[i + stride]) {
          depends = true;
          break;
        }
      }
    }
    if (depends) support |= util::Mask{1} << free_vars[p];
  }
  return support;
}

/// Per-slot scratch for the distinct-id count: a generation-stamped array
/// over node ids — O(|cells|) per count, no clearing between states.
struct BoundScratch {
  std::vector<std::uint32_t> stamp;
  std::uint32_t gen = 0;
};

/// Number of distinct ids among t.cells — the distinct subfunctions any
/// completion of the block must still reach.
std::uint64_t distinct_cell_count(const PrefixTable& t, BoundScratch& bs) {
  if (bs.stamp.size() < t.next_id)
    bs.stamp.resize(static_cast<std::size_t>(t.next_id), 0);
  if (++bs.gen == 0) {  // generation wrap: clear once, restart at 1
    std::fill(bs.stamp.begin(), bs.stamp.end(), 0);
    bs.gen = 1;
  }
  std::uint64_t d = 0;
  for (std::uint32_t id : t.cells) {
    if (bs.stamp[static_cast<std::size_t>(id)] != bs.gen) {
      bs.stamp[static_cast<std::size_t>(id)] = bs.gen;
      ++d;
    }
  }
  return d;
}

/// Admissible completion bound: nodes ANY placement of the remaining
/// block variables must still create from a state with table `t`.
///  * Sink bound: the q nodes the completed block adds carry 2q outgoing
///    pointers, the finished block's table contributes `final_cells`
///    root pointers, and each of the q nodes plus each of t's d distinct
///    cell ids needs at least one incoming pointer — so 2q + final_cells
///    >= q + d, i.e. q >= d - final_cells.
///  * Dependence bound: every remaining block variable in the function's
///    support labels at least one created node (support is placement-
///    invariant, see table_support).
/// Both hold for every completion order, so their max is admissible.
std::uint64_t completion_bound(const PrefixTable& t, util::Mask remaining,
                               util::Mask base_support,
                               std::uint64_t final_cells, BoundScratch& bs) {
  const std::uint64_t d = distinct_cell_count(t, bs);
  const std::uint64_t sinks = d > final_cells ? d - final_cells : 0;
  const std::uint64_t dep =
      static_cast<std::uint64_t>(util::popcount(base_support & remaining));
  return sinks > dep ? sinks : dep;
}

/// best_last_for_subset against a *sparse* previous layer (packed
/// survivors + sorted-mask index).  A missing predecessor was pruned:
/// every chain through it already exceeds the incumbent, so skipping it
/// never changes the argmin on a surviving state.  Surviving candidates
/// are visited in the same ascending bit order as the dense kernel, so
/// the winner — and every tie-break — coincides with the dense engine
/// along any chain of surviving states.
void best_last_for_subset_sparse(util::Mask d,
                                 const std::vector<PrefixTable>& prev,
                                 const ds::SparseIndex& prev_index,
                                 const std::vector<int>& j_vars,
                                 DiagramKind kind, OpCounter* shard,
                                 PrefixTable& cand, PrefixTable& best,
                                 int* best_var_out,
                                 std::uint64_t* best_cost_out) {
  std::uint64_t bc = std::numeric_limits<std::uint64_t>::max();
  int bv = -1;
  util::for_each_bit(d, [&](int b) {
    const util::Mask pd = d & ~(util::Mask{1} << b);
    const std::size_t pred = prev_index.rank(pd);
    if (pred == ds::SparseIndex::npos) return;  // predecessor pruned
    compact_into(cand, prev[pred], j_vars[static_cast<std::size_t>(b)], kind,
                 shard);
    const std::uint64_t cost = cand.mincost();
    if (cost < bc) {
      bc = cost;
      bv = j_vars[static_cast<std::size_t>(b)];
      std::swap(best, cand);
    }
  });
  *best_var_out = bv;
  *best_cost_out = bc;
}

/// DP state fates in the pruned pipelined engine's rank-indexed slots.
enum : std::uint8_t { kStateDead = 0, kStatePruned = 1, kStateAlive = 2 };

/// best_last_for_subset against a *status-gated* dense previous layer
/// (the pruned pipelined engine keeps rank-indexed slots; pruned/dead
/// slots hold no cells and are skipped).  Returns best_var -1 when every
/// predecessor is gone — the caller marks the state dead.
void best_last_for_subset_gated(
    util::Mask d, const std::vector<PrefixTable>& prev,
    const std::vector<std::uint8_t>& prev_status,
    const std::vector<int>& j_vars, DiagramKind kind,
    const util::BinomialTable& binom, OpCounter* shard, PrefixTable& cand,
    PrefixTable& best, int* best_var_out, std::uint64_t* best_cost_out) {
  std::uint64_t bc = std::numeric_limits<std::uint64_t>::max();
  int bv = -1;
  util::for_each_bit(d, [&](int b) {
    const util::Mask pd = d & ~(util::Mask{1} << b);
    const std::uint64_t pred = binom.rank(pd);
    OVO_DCHECK(pred < prev.size());
    if (prev_status[static_cast<std::size_t>(pred)] != kStateAlive) return;
    compact_into(cand, prev[static_cast<std::size_t>(pred)],
                 j_vars[static_cast<std::size_t>(b)], kind, shard);
    const std::uint64_t cost = cand.mincost();
    if (cost < bc) {
      bc = cost;
      bv = j_vars[static_cast<std::size_t>(b)];
      std::swap(best, cand);
    }
  });
  *best_var_out = bv;
  *best_cost_out = bc;
}

/// The PR 2 engine: one parallel_for per layer with an implicit barrier.
/// Kept as the serial path and the pipeline=false A/B reference — its
/// published results are identical to the pipelined engine's.
///
/// Barrier-wait accounting (symmetric with the pipelined engine):
/// charged time is the *layer-boundary serialization each engine's
/// design imposes* — here, the per-layer publish epilogue after every
/// fanned-out region plus the final extraction, each costing
/// (threads - 1) x its duration in parked participants.  The pipelined
/// engine overlaps those epilogues with the next layer's chunk work
/// (they run inside fences), so this is exactly the stall pipelining
/// removes.  Serial work BOTH engines pay identically before any fan-out
/// (admission, enumeration, allocation; the pipelined engine's graph
/// build) is excluded on both sides: it is setup overhead, visible in
/// wall clock, not barrier stall.
FsStarResult fs_star_barrier(const PrefixTable& base, util::Mask J,
                             int stop_k, DiagramKind kind, OpCounter* ops,
                             int threads, std::uint64_t grain,
                             rt::Governor* gov, const CkptPlan& plan) {
  const int j_size = util::popcount(J);
  const std::vector<int> j_vars = util::bits_of(J);
  const auto& binom = util::BinomialTable::instance();
  par::ThreadPool& pool = par::ThreadPool::shared();

  FsStarResult result;
  result.mincost.emplace(util::Mask{0}, base.mincost());

  // Layer k holds one PrefixTable per k-subset of J, at the subset's
  // colex rank (over dense positions into j_vars).  Layer 0 is the base.
  // A resume snapshot stands in for layers 0..snapshot.layer.
  const FsStarSnapshot* resume = plan.resume();
  const int start_layer = resume != nullptr ? resume->layer : 0;
  std::vector<PrefixTable> prev;
  std::vector<util::Mask> prev_dense;
  if (resume != nullptr) {
    apply_resume(result, *resume);
    prev = resume->tables;  // copies: one snapshot may seed many runs
    prev_dense = resume->dense;
  } else {
    prev.push_back(base);
    prev_dense.push_back(util::Mask{0});
  }

  // Per-thread-slot state: scratch tables so the inner loop's candidate
  // compaction reuses one buffer per thread, and OpCounter shards merged
  // after each layer (exact: all fields commute).
  std::vector<PrefixTable> scratch(static_cast<std::size_t>(threads));
  std::vector<OpCounter> shards(static_cast<std::size_t>(threads));

  const std::atomic<bool>* stop_flag =
      gov != nullptr ? gov->stop_flag() : nullptr;
  std::uint64_t prev_resident = 0;
  for (const PrefixTable& t : prev) prev_resident += t.cells.size();
  std::uint64_t layer_work = 0;
  std::uint64_t serial_ns = 0;
  int last_snapshot_layer = -1;
  for (int layer = start_layer + 1; layer <= stop_k; ++layer) {
    const std::uint64_t layer_size = binom.choose(j_size, layer);
    if (gov != nullptr) {
      // Deterministic pre-admission: the whole layer's cost is known in
      // closed form, so the trip decision is independent of thread count
      // and made before any allocation.  Both layers are resident while
      // the next one is built (Remark 1).
      const std::uint64_t pred_cells =
          static_cast<std::uint64_t>(base.cells.size()) >> (layer - 1);
      layer_work =
          layer_size * static_cast<std::uint64_t>(layer) * pred_cells;
      const std::uint64_t resident =
          prev_resident + layer_size * (pred_cells >> 1);
      if (!gov->admit_nodes(resident) ||
          !gov->admit_bytes(resident * sizeof(base.cells[0])) ||
          !gov->admit_work(layer_work))
        break;
    }
    // Gosper enumeration yields masks in increasing numeric order, which
    // for fixed popcount IS colex rank order; the one-time size check
    // below replaces the seed's per-(subset, variable) hash-find checks.
    std::vector<util::Mask> dense;
    dense.reserve(static_cast<std::size_t>(layer_size));
    util::for_each_subset_of_size(j_size, layer, [&](util::Mask m) {
      dense.push_back(m);
    });
    OVO_CHECK_MSG(dense.size() == layer_size,
                  "fs_star: layer enumeration incomplete");

    std::vector<PrefixTable> cur(static_cast<std::size_t>(layer_size));
    std::vector<int> best_var(static_cast<std::size_t>(layer_size), -1);
    std::vector<std::uint64_t> best_cost(
        static_cast<std::size_t>(layer_size));

    // A layer of <= grain subsets takes parallel_for's serial fast path;
    // its epilogue is not a fan-out seam, so it is not charged.
    const bool fans_out = threads > 1 && layer_size > grain;
    pool.parallel_for(0, layer_size, grain, threads, stop_flag,
                      [&](std::uint64_t rank, int slot) {
      if (gov != nullptr) gov->poll();  // cancel/deadline responsiveness
      OpCounter* shard =
          ops != nullptr ? &shards[static_cast<std::size_t>(slot)] : nullptr;
      best_last_for_subset(dense[static_cast<std::size_t>(rank)], prev,
                           prev_dense, j_vars, kind, binom, shard,
                           scratch[static_cast<std::size_t>(slot)],
                           cur[static_cast<std::size_t>(rank)],
                           &best_var[static_cast<std::size_t>(rank)],
                           &best_cost[static_cast<std::size_t>(rank)]);
    });
    const std::uint64_t epilogue_t0 = fans_out ? engine_now_ns() : 0;
    if (gov != nullptr && gov->stopped()) break;  // discard partial layer

    // Serial epilogue per layer: publish back-pointers/costs in rank
    // order (identical to the seed's enumeration order) and account for
    // residency.  Remark 1: both layers are resident while the next one
    // is built.
    std::uint64_t cur_resident = 0;
    for (std::uint64_t r = 0; r < layer_size; ++r) {
      OVO_CHECK(best_var[static_cast<std::size_t>(r)] >= 0);
      const util::Mask K =
          spread_mask(dense[static_cast<std::size_t>(r)], j_vars);
      result.best_last.emplace(K, best_var[static_cast<std::size_t>(r)]);
      result.mincost.emplace(K, best_cost[static_cast<std::size_t>(r)]);
      cur_resident += cur[static_cast<std::size_t>(r)].cells.size();
    }
    if (ops != nullptr) {
      for (OpCounter& shard : shards) {
        *ops += shard;
        shard.reset();
      }
      ops->observe_resident(prev_resident + cur_resident);
    }
    prev_resident = cur_resident;
    prev = std::move(cur);
    prev_dense = std::move(dense);
    result.completed_layers = layer;
    if (gov != nullptr) gov->charge(layer_work);
    if (fans_out) serial_ns += engine_now_ns() - epilogue_t0;
    // Snapshot IO happens after charging, so a resumed run's first
    // admit decision sees exactly the work total recorded here.
    if (fence_due(plan, layer, stop_k)) {
      emit_fence_snapshot(plan, layer, prev_dense, prev, result, ops, gov);
      last_snapshot_layer = layer;
    }
  }

  // Trip snapshot: persist the deepest completed layer even off-cadence,
  // so a budget/cancel trip never loses fence state.  Must run before
  // extraction moves the tables out.
  if (plan.writes() && plan.opts->on_trip &&
      result.completed_layers < stop_k &&
      result.completed_layers != last_snapshot_layer)
    emit_fence_snapshot(plan, result.completed_layers, prev_dense, prev,
                        result, ops, gov);

  const std::uint64_t extract_t0 = threads > 1 ? engine_now_ns() : 0;
  for (std::size_t r = 0; r < prev.size(); ++r)
    result.tables.emplace(spread_mask(prev_dense[r], j_vars),
                          std::move(prev[r]));
  if (threads > 1) {
    serial_ns += engine_now_ns() - extract_t0;
    par::charge_barrier_wait(static_cast<std::uint64_t>(threads - 1) *
                             serial_ns);
  }
  return result;
}

/// Ceiling on subset-group task nodes per DP layer: big layers are cut
/// into at most this many graph nodes (each still work-chunked at the
/// subset grain internally), bounding graph size at O(layers × 512)
/// while keeping dependency edges sparse enough to pipeline.
constexpr std::uint64_t kMaxGroupsPerLayer = 512;

/// The tentpole engine: the whole admitted DP is built as ONE TaskGraph.
/// Each layer's subsets are grouped into up to kMaxGroupsPerLayer range
/// nodes; a layer-(k+1) group depends only on the layer-k groups that
/// hold its predecessors (dependency count = number of incomplete
/// predecessor groups), so compaction of layer k+1 starts while layer k
/// is still draining — the per-layer barrier is gone from the hot path.
/// A seq_epoch fence per layer publishes back-pointers/costs in rank
/// order, accounts residency, charges the governor, and frees layer k-1;
/// fences are serialized by the fence chain, so they run the exact
/// serial-epilogue code of the barrier engine.
///
/// Determinism: every subset writes its table/best-var/best-cost into
/// its own colex-rank slot and the candidate loop is identical code, so
/// published results are bit-identical to the barrier engine at every
/// thread count.  Governor interaction is kept deterministic by doing
/// ALL admit decisions serially up front: admit_work(cum + w_k) with
/// nothing charged yet tests the same predicate work0 + w_1 + … + w_k <=
/// limit the interleaved admit/charge sequence does (closed-form layer
/// costs are exact — compaction halves cells), and each fence then
/// charges its layer exactly where the barrier engine would.
///
/// Residency under pipelining: reported peak_cells stays the Remark-1
/// two-layer model (fences observe prev+cur, identical values to the
/// barrier engine); the true transient footprint can briefly hold parts
/// of three layers, since layer k-1 is freed only when fence k runs.
FsStarResult fs_star_pipelined(const PrefixTable& base, util::Mask J,
                               int stop_k, DiagramKind kind, OpCounter* ops,
                               int threads, std::uint64_t grain,
                               rt::Governor* gov, const CkptPlan& plan) {
  const int j_size = util::popcount(J);
  const std::vector<int> j_vars = util::bits_of(J);
  const auto& binom = util::BinomialTable::instance();

  FsStarResult result;
  result.mincost.emplace(util::Mask{0}, base.mincost());

  // Resume-only here: snapshot-writing runs take the barrier engine
  // (fs_star dispatch), since this engine's ledger merges only after the
  // DAG drains.  The snapshot's layer becomes the graph's seed layer.
  const FsStarSnapshot* resume = plan.resume();
  const int start_layer = resume != nullptr ? resume->layer : 0;
  if (resume != nullptr) apply_resume(result, *resume);
  std::uint64_t seed_resident = 0;
  if (resume != nullptr)
    for (const PrefixTable& t : resume->tables)
      seed_resident += t.cells.size();
  else
    seed_resident = base.cells.size();

  // --- Serial pre-admission (see function comment). ---
  int last_layer = start_layer;
  std::vector<std::uint64_t> layer_work(
      static_cast<std::size_t>(stop_k) + 1, 0);
  {
    std::uint64_t cum = 0;
    std::uint64_t prev_res = seed_resident;
    for (int layer = start_layer + 1; layer <= stop_k; ++layer) {
      const std::uint64_t layer_size = binom.choose(j_size, layer);
      const std::uint64_t pred_cells =
          static_cast<std::uint64_t>(base.cells.size()) >> (layer - 1);
      const std::uint64_t w =
          layer_size * static_cast<std::uint64_t>(layer) * pred_cells;
      if (gov != nullptr) {
        const std::uint64_t resident =
            prev_res + layer_size * (pred_cells >> 1);
        if (!gov->admit_nodes(resident) ||
            !gov->admit_bytes(resident * sizeof(base.cells[0])) ||
            !gov->admit_work(cum + w))
          break;
      }
      cum += w;
      layer_work[static_cast<std::size_t>(layer)] = w;
      prev_res = layer_size * (pred_cells >> 1);
      last_layer = layer;
    }
  }

  struct Layer {
    std::vector<util::Mask> dense;
    std::vector<PrefixTable> tables;
    std::vector<int> best_var;
    std::vector<std::uint64_t> best_cost;
    std::uint64_t group_size = 1;
    std::uint64_t n_groups = 0;
    par::TaskGraph::TaskId first_group = 0;
  };
  std::vector<Layer> layers(static_cast<std::size_t>(last_layer) + 1);
  Layer& seed = layers[static_cast<std::size_t>(start_layer)];
  if (resume != nullptr) {
    seed.dense = resume->dense;
    seed.tables = resume->tables;  // copies, as in the barrier engine
  } else {
    seed.dense.push_back(util::Mask{0});
    seed.tables.push_back(base);
  }

  if (last_layer == start_layer) {
    for (std::size_t r = 0; r < seed.tables.size(); ++r)
      result.tables.emplace(spread_mask(seed.dense[r], j_vars),
                            std::move(seed.tables[r]));
    return result;
  }

  std::vector<PrefixTable> scratch(static_cast<std::size_t>(threads));
  std::vector<OpCounter> shards(static_cast<std::size_t>(threads));

  // Chained fence state: fences are serialized, so plain variables.
  std::uint64_t fence_prev_resident = seed_resident;

  par::TaskGraph graph;
  for (int layer = start_layer + 1; layer <= last_layer; ++layer) {
    Layer& L = layers[static_cast<std::size_t>(layer)];
    Layer& P = layers[static_cast<std::size_t>(layer) - 1];
    const std::uint64_t layer_size = binom.choose(j_size, layer);
    L.dense.reserve(static_cast<std::size_t>(layer_size));
    util::for_each_subset_of_size(j_size, layer, [&](util::Mask m) {
      L.dense.push_back(m);
    });
    OVO_CHECK_MSG(L.dense.size() == layer_size,
                  "fs_star: layer enumeration incomplete");
    L.tables.resize(static_cast<std::size_t>(layer_size));
    L.best_var.assign(static_cast<std::size_t>(layer_size), -1);
    L.best_cost.resize(static_cast<std::size_t>(layer_size));

    std::uint64_t group = (layer_size + kMaxGroupsPerLayer - 1) /
                          kMaxGroupsPerLayer;
    if (group < grain) group = grain;
    group = (group + grain - 1) / grain * grain;  // align chunk boundaries
    L.group_size = group;
    L.n_groups = (layer_size + group - 1) / group;

    auto body = [&layers, &scratch, &shards, &j_vars, &binom, layer, kind,
                 ops, gov](std::uint64_t rank, int slot) {
      if (gov != nullptr) gov->poll();  // cancel/deadline responsiveness
      Layer& cur = layers[static_cast<std::size_t>(layer)];
      Layer& pre = layers[static_cast<std::size_t>(layer) - 1];
      OpCounter* shard =
          ops != nullptr ? &shards[static_cast<std::size_t>(slot)] : nullptr;
      best_last_for_subset(cur.dense[static_cast<std::size_t>(rank)],
                           pre.tables, pre.dense, j_vars, kind, binom, shard,
                           scratch[static_cast<std::size_t>(slot)],
                           cur.tables[static_cast<std::size_t>(rank)],
                           &cur.best_var[static_cast<std::size_t>(rank)],
                           &cur.best_cost[static_cast<std::size_t>(rank)]);
    };

    // One range node per group; dependency edges to exactly the previous
    // layer's groups that hold this group's predecessors, deduplicated
    // with a stamp array.  The first built layer's only predecessor is
    // the seed (base or resume snapshot), which is not a task — its
    // groups seed the ready queue.
    std::vector<std::uint32_t> stamp(
        layer >= start_layer + 2 ? static_cast<std::size_t>(P.n_groups) : 0,
        std::numeric_limits<std::uint32_t>::max());
    for (std::uint64_t g = 0; g < L.n_groups; ++g) {
      const std::uint64_t lo = g * group;
      const std::uint64_t hi =
          lo + group < layer_size ? lo + group : layer_size;
      const par::TaskGraph::TaskId id = graph.add_range(lo, hi, grain, body);
      graph.set_label(id, "fs.group", "layer",
                      static_cast<std::uint64_t>(layer), "group", g);
      if (g == 0) L.first_group = id;
      if (layer < start_layer + 2) continue;
      for (std::uint64_t r = lo; r < hi; ++r) {
        util::for_each_bit(L.dense[static_cast<std::size_t>(r)], [&](int b) {
          const util::Mask pd =
              L.dense[static_cast<std::size_t>(r)] & ~(util::Mask{1} << b);
          const std::uint64_t pg = binom.rank(pd) / P.group_size;
          if (stamp[static_cast<std::size_t>(pg)] !=
              static_cast<std::uint32_t>(g)) {
            stamp[static_cast<std::size_t>(pg)] =
                static_cast<std::uint32_t>(g);
            graph.add_edge(
                P.first_group + static_cast<par::TaskGraph::TaskId>(pg), id);
          }
        });
      }
    }

    // The layer fence: the one consumer that truly needs every subset of
    // the layer.  Runs the barrier engine's serial epilogue verbatim —
    // publish in rank order, account residency, charge, free layer-1.
    const par::TaskGraph::TaskId fence_id = graph.seq_epoch(
        [&result, &layers, &layer_work, &fence_prev_resident,
                     &j_vars, layer, layer_size, ops, gov](int) {
      Layer& cur = layers[static_cast<std::size_t>(layer)];
      std::uint64_t cur_resident = 0;
      for (std::uint64_t r = 0; r < layer_size; ++r) {
        OVO_CHECK(cur.best_var[static_cast<std::size_t>(r)] >= 0);
        const util::Mask K =
            spread_mask(cur.dense[static_cast<std::size_t>(r)], j_vars);
        result.best_last.emplace(K,
                                 cur.best_var[static_cast<std::size_t>(r)]);
        result.mincost.emplace(K,
                               cur.best_cost[static_cast<std::size_t>(r)]);
        cur_resident += cur.tables[static_cast<std::size_t>(r)].cells.size();
      }
      if (ops != nullptr)
        ops->observe_resident(fence_prev_resident + cur_resident);
      fence_prev_resident = cur_resident;
      result.completed_layers = layer;
      if (gov != nullptr)
        gov->charge(layer_work[static_cast<std::size_t>(layer)]);
      // Every reader of layer-1 (this layer's subsets) has completed.
      std::vector<PrefixTable>().swap(
          layers[static_cast<std::size_t>(layer) - 1].tables);
    });
    graph.set_label(fence_id, "fs.fence", "layer",
                    static_cast<std::uint64_t>(layer));
  }

  graph.run(threads, gov != nullptr ? gov->stop_flag() : nullptr);
  // Barrier-wait accounting: the only layer-boundary serialization this
  // engine retains is the final extraction (per-layer epilogues run
  // inside fences, overlapped with the next layer's chunks; in-graph
  // no-work bubbles are counted by the scheduler itself).  Setup cost —
  // pre-admission, enumeration, graph build — is excluded on both sides
  // of the A/B; see fs_star_barrier.
  const std::uint64_t extract_t0 = engine_now_ns();

  // Shards merge once, after the drain (fences overlap layer k+1 chunk
  // work, so per-layer merges would race).  All fields commute, so
  // completed-run totals equal the barrier engine's; a hard-stopped run
  // additionally counts work from its discarded partial layer.
  if (ops != nullptr)
    for (OpCounter& shard : shards) *ops += shard;

  Layer& last = layers[static_cast<std::size_t>(result.completed_layers)];
  for (std::size_t r = 0; r < last.tables.size(); ++r)
    result.tables.emplace(spread_mask(last.dense[r], j_vars),
                          std::move(last.tables[r]));
  par::charge_barrier_wait(static_cast<std::uint64_t>(threads - 1) *
                           (engine_now_ns() - extract_t0));
  return result;
}

/// Bound-pruned barrier engine: sparse layers (packed survivors plus a
/// sorted-mask ds::SparseIndex), per-state admissible bounds against the
/// fixed incumbent `ub`, and the serial per-layer publish epilogue of
/// the dense barrier engine.  Serves the serial path, pipeline=false,
/// and every governed pruned run with deterministic limits: its
/// admission uses the *running sparse counts* (surviving predecessors,
/// live candidates) that are only known at a serial layer boundary.
///
/// Determinism: the incumbent never moves during the DP and each state's
/// bound depends only on its own table, so the surviving set is a pure
/// function of (base, J, ub) — identical at every thread count.  Along
/// any chain of surviving states the candidate sweep sees exactly the
/// dense engine's candidates in the same order, so the optimal order,
/// size, and every tie-break match the dense engines bit for bit.
FsStarResult fs_star_pruned_barrier(const PrefixTable& base, util::Mask J,
                                    int stop_k, DiagramKind kind,
                                    OpCounter* ops, int threads,
                                    std::uint64_t grain, rt::Governor* gov,
                                    std::uint64_t ub, const CkptPlan& plan) {
  const int j_size = util::popcount(J);
  const std::vector<int> j_vars = util::bits_of(J);
  const auto& binom = util::BinomialTable::instance();
  par::ThreadPool& pool = par::ThreadPool::shared();

  FsStarResult result;
  result.prune.upper_bound = ub;
  result.mincost.emplace(util::Mask{0}, base.mincost());

  // Placement-invariant bound inputs, computed once per run.
  const util::Mask base_support = table_support(base) & J;
  const std::uint64_t final_cells =
      static_cast<std::uint64_t>(base.cells.size()) >> j_size;

  // A resume snapshot's packed survivors stand in for layers
  // 0..snapshot.layer; its ledger (including the restored layer-fence
  // lower bound) replaces the layer-0 certification below.
  const FsStarSnapshot* resume = plan.resume();
  const int start_layer = resume != nullptr ? resume->layer : 0;
  std::vector<PrefixTable> prev;
  std::vector<util::Mask> prev_dense;

  std::vector<PrefixTable> scratch(static_cast<std::size_t>(threads));
  std::vector<OpCounter> shards(static_cast<std::size_t>(threads));
  std::vector<BoundScratch> bounds(static_cast<std::size_t>(threads));

  if (resume != nullptr) {
    apply_resume(result, *resume);
    prev = resume->tables;  // copies: one snapshot may seed many runs
    prev_dense = resume->dense;
  } else {
    prev.push_back(base);
    prev_dense.push_back(util::Mask{0});
    // The run may trip before layer 1: layer 0's bound is still
    // certified.
    result.certified_lower_bound =
        base.mincost() +
        completion_bound(base, J, base_support, final_cells, bounds[0]);
  }

  const std::atomic<bool>* stop_flag =
      gov != nullptr ? gov->stop_flag() : nullptr;
  std::uint64_t prev_resident = 0;
  for (const PrefixTable& t : prev) prev_resident += t.cells.size();
  std::uint64_t serial_ns = 0;
  int last_snapshot_layer = -1;
  for (int layer = start_layer + 1; layer <= stop_k; ++layer) {
    const std::uint64_t layer_size = binom.choose(j_size, layer);
    const std::uint64_t pred_cells =
        static_cast<std::uint64_t>(base.cells.size()) >> (layer - 1);

    // Serial candidate enumeration: states with at least one surviving
    // predecessor.  O(C(|J|,k)·k·log s) mask work — noise next to the
    // compactions it skips — and the surviving-predecessor total IS the
    // layer's exact compaction work.
    const ds::SparseIndex prev_index(prev_dense);
    std::vector<util::Mask> cand;
    std::uint64_t n_dead = 0;
    std::uint64_t n_comp = 0;
    util::for_each_subset_of_size(j_size, layer, [&](util::Mask m) {
      int live = 0;
      util::for_each_bit(m, [&](int b) {
        if (prev_index.contains(m & ~(util::Mask{1} << b))) ++live;
      });
      if (live > 0) {
        cand.push_back(m);
        n_comp += static_cast<std::uint64_t>(live);
      } else {
        ++n_dead;
      }
    });

    const std::uint64_t layer_work = n_comp * pred_cells;
    if (gov != nullptr) {
      // Running-sparse-count admission: live candidates stand in for the
      // dense closed form, so a pruned run fits budgets a dense run of
      // the same n would trip.
      const std::uint64_t resident =
          prev_resident +
          static_cast<std::uint64_t>(cand.size()) * (pred_cells >> 1);
      if (!gov->admit_nodes(resident) ||
          !gov->admit_bytes(resident * sizeof(base.cells[0])) ||
          !gov->admit_work(layer_work))
        break;
    }

    std::vector<PrefixTable> cur(cand.size());
    std::vector<int> best_var(cand.size(), -1);
    std::vector<std::uint64_t> best_cost(cand.size());
    std::vector<std::uint64_t> bound(cand.size());
    std::vector<std::uint8_t> keep(cand.size(), 0);

    const bool fans_out = threads > 1 && cand.size() > grain;
    pool.parallel_for(
        0, cand.size(), grain, threads, stop_flag,
        [&](std::uint64_t i, int slot) {
          if (gov != nullptr) gov->poll();
          OpCounter* shard =
              ops != nullptr ? &shards[static_cast<std::size_t>(slot)]
                             : nullptr;
          const std::size_t s = static_cast<std::size_t>(i);
          best_last_for_subset_sparse(cand[s], prev, prev_index, j_vars,
                                      kind, shard,
                                      scratch[static_cast<std::size_t>(slot)],
                                      cur[s], &best_var[s], &best_cost[s]);
          // The prune decision is state-local and the incumbent is
          // fixed, so deciding it inside the parallel body is safe and
          // deterministic; a pruned state's cells are freed on the spot.
          const util::Mask rest = J & ~spread_mask(cand[s], j_vars);
          bound[s] = best_cost[s] +
                     completion_bound(cur[s], rest, base_support, final_cells,
                                      bounds[static_cast<std::size_t>(slot)]);
          if (bound[s] <= ub)
            keep[s] = 1;
          else
            std::vector<std::uint32_t>().swap(cur[s].cells);
        });
    const std::uint64_t epilogue_t0 = fans_out ? engine_now_ns() : 0;
    if (gov != nullptr && gov->stopped()) break;  // discard partial layer

    // Serial epilogue: publish survivors in rank order and re-pack the
    // layer (surviving-mask index + packed payload vector).
    std::vector<PrefixTable> nxt;
    std::vector<util::Mask> nxt_dense;
    std::uint64_t cur_resident = 0;
    std::uint64_t layer_lb_min = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < cand.size(); ++i) {
      OVO_CHECK(best_var[i] >= 0);
      if (keep[i] == 0) continue;
      const util::Mask K = spread_mask(cand[i], j_vars);
      result.best_last.emplace(K, best_var[i]);
      result.mincost.emplace(K, best_cost[i]);
      if (bound[i] < layer_lb_min) layer_lb_min = bound[i];
      cur_resident += cur[i].cells.size();
      nxt_dense.push_back(cand[i]);
      nxt.push_back(std::move(cur[i]));
    }
    OVO_CHECK_MSG(!nxt.empty(),
                  "fs_star: pruning incumbent below the true optimum");
    result.prune.states_generated += cand.size();
    result.prune.states_pruned += cand.size() - nxt.size();
    result.prune.states_dead += n_dead;
    result.prune.states_surviving += nxt.size();
    result.prune.dense_cells += layer_size * (pred_cells >> 1);
    result.prune.sparse_cells += cur_resident;
    result.certified_lower_bound = layer_lb_min;
    if (ops != nullptr) {
      for (OpCounter& shard : shards) {
        *ops += shard;
        shard.reset();
      }
      ops->observe_resident(prev_resident + cur_resident);
    }
    prev_resident = cur_resident;
    prev = std::move(nxt);
    prev_dense = std::move(nxt_dense);
    result.completed_layers = layer;
    if (gov != nullptr) gov->charge(layer_work);
    if (fans_out) serial_ns += engine_now_ns() - epilogue_t0;
    if (fence_due(plan, layer, stop_k)) {
      emit_fence_snapshot(plan, layer, prev_dense, prev, result, ops, gov);
      last_snapshot_layer = layer;
    }
  }

  // Trip snapshot, emitted BEFORE the final prune-ledger merge into
  // `ops`: fence-time ops never include the merge (it happens once, at
  // engine end), so a resumed run — which restores snapshot.ops and
  // result.prune, then merges at its own end — reproduces the
  // uninterrupted run's final totals exactly.
  if (plan.writes() && plan.opts->on_trip &&
      result.completed_layers < stop_k &&
      result.completed_layers != last_snapshot_layer)
    emit_fence_snapshot(plan, result.completed_layers, prev_dense, prev,
                        result, ops, gov);

  const std::uint64_t extract_t0 = threads > 1 ? engine_now_ns() : 0;
  for (std::size_t r = 0; r < prev.size(); ++r)
    result.tables.emplace(spread_mask(prev_dense[r], j_vars),
                          std::move(prev[r]));
  if (threads > 1) {
    serial_ns += engine_now_ns() - extract_t0;
    par::charge_barrier_wait(static_cast<std::uint64_t>(threads - 1) *
                             serial_ns);
  }
  if (ops != nullptr) ops->prune += result.prune;
  return result;
}

/// Bound-pruned pipelined engine: the dense task graph with per-state
/// prune gates.  The graph must be built before any prune decision
/// exists, so slots stay rank-indexed — but dead states never allocate
/// cells and pruned states free theirs inside the chunk body, so the
/// heap holds survivors only (the fully packed representation lives in
/// the barrier engine, which big memory-capped runs take anyway).  Each
/// layer's fence publishes survivors in rank order, tallies the prune
/// ledger and the chunks that held no surviving work, charges the
/// governor the layer's *actual* sparse work, and frees layer k-1.
///
/// Runs only without deterministic budget limits (see fs_star dispatch):
/// sparse admission needs the serial layer boundary the barrier engine
/// has.  Deadline/cancel budgets still work — per-chunk polls, DAG
/// drain, partial layers discarded.
FsStarResult fs_star_pruned_pipelined(const PrefixTable& base, util::Mask J,
                                      int stop_k, DiagramKind kind,
                                      OpCounter* ops, int threads,
                                      std::uint64_t grain, rt::Governor* gov,
                                      std::uint64_t ub,
                                      const CkptPlan& plan) {
  const int j_size = util::popcount(J);
  const std::vector<int> j_vars = util::bits_of(J);
  const auto& binom = util::BinomialTable::instance();

  FsStarResult result;
  result.prune.upper_bound = ub;
  result.mincost.emplace(util::Mask{0}, base.mincost());

  const util::Mask base_support = table_support(base) & J;
  const std::uint64_t final_cells =
      static_cast<std::uint64_t>(base.cells.size()) >> j_size;

  struct Layer {
    std::vector<util::Mask> dense;
    std::vector<PrefixTable> tables;
    std::vector<int> best_var;
    std::vector<std::uint64_t> best_cost;
    std::vector<std::uint64_t> bound;
    std::vector<std::uint8_t> status;
    std::uint64_t group_size = 1;
    std::uint64_t n_groups = 0;
    par::TaskGraph::TaskId first_group = 0;
  };
  std::vector<Layer> layers(static_cast<std::size_t>(stop_k) + 1);

  std::vector<PrefixTable> scratch(static_cast<std::size_t>(threads));
  std::vector<OpCounter> shards(static_cast<std::size_t>(threads));
  std::vector<BoundScratch> bounds(static_cast<std::size_t>(threads));

  // Resume-only here (writing runs take the barrier engine).  The seed
  // layer must be rank-indexed like every other layer of this engine, so
  // the snapshot's packed survivors are scattered back to their colex
  // slots; non-survivors keep empty tables and a kStatePruned gate.
  const FsStarSnapshot* resume = plan.resume();
  const int start_layer = resume != nullptr ? resume->layer : 0;
  std::uint64_t fence_prev_resident = 0;
  Layer& seed = layers[static_cast<std::size_t>(start_layer)];
  if (resume != nullptr) {
    apply_resume(result, *resume);
    const std::uint64_t seed_card =
        binom.choose(j_size, start_layer);
    seed.dense.reserve(static_cast<std::size_t>(seed_card));
    util::for_each_subset_of_size(j_size, start_layer, [&](util::Mask m) {
      seed.dense.push_back(m);
    });
    seed.tables.resize(static_cast<std::size_t>(seed_card));
    seed.status.assign(static_cast<std::size_t>(seed_card), kStatePruned);
    std::size_t si = 0;
    for (std::size_t r = 0; r < seed.dense.size(); ++r) {
      if (si < resume->dense.size() && resume->dense[si] == seed.dense[r]) {
        seed.tables[r] = resume->tables[si];
        seed.status[r] = kStateAlive;
        fence_prev_resident += seed.tables[r].cells.size();
        ++si;
      }
    }
    OVO_CHECK_MSG(si == resume->dense.size(),
                  "fs_star: snapshot survivor outside its layer");
  } else {
    seed.dense.push_back(util::Mask{0});
    seed.tables.push_back(base);
    seed.status.push_back(kStateAlive);
    result.certified_lower_bound =
        base.mincost() +
        completion_bound(base, J, base_support, final_cells, bounds[0]);
    fence_prev_resident = base.cells.size();
  }

  par::TaskGraph graph;
  for (int layer = start_layer + 1; layer <= stop_k; ++layer) {
    Layer& L = layers[static_cast<std::size_t>(layer)];
    Layer& P = layers[static_cast<std::size_t>(layer) - 1];
    const std::uint64_t layer_size = binom.choose(j_size, layer);
    L.dense.reserve(static_cast<std::size_t>(layer_size));
    util::for_each_subset_of_size(j_size, layer, [&](util::Mask m) {
      L.dense.push_back(m);
    });
    OVO_CHECK_MSG(L.dense.size() == layer_size,
                  "fs_star: layer enumeration incomplete");
    L.tables.resize(static_cast<std::size_t>(layer_size));
    L.best_var.assign(static_cast<std::size_t>(layer_size), -1);
    L.best_cost.resize(static_cast<std::size_t>(layer_size));
    L.bound.resize(static_cast<std::size_t>(layer_size));
    L.status.assign(static_cast<std::size_t>(layer_size), kStateDead);

    std::uint64_t group = (layer_size + kMaxGroupsPerLayer - 1) /
                          kMaxGroupsPerLayer;
    if (group < grain) group = grain;
    group = (group + grain - 1) / grain * grain;  // align chunk boundaries
    L.group_size = group;
    L.n_groups = (layer_size + group - 1) / group;

    auto body = [&layers, &scratch, &shards, &bounds, &j_vars, &binom, layer,
                 kind, ops, gov, ub, base_support, final_cells,
                 J](std::uint64_t rank, int slot) {
      if (gov != nullptr) gov->poll();  // cancel/deadline responsiveness
      Layer& cur = layers[static_cast<std::size_t>(layer)];
      Layer& pre = layers[static_cast<std::size_t>(layer) - 1];
      const std::size_t r = static_cast<std::size_t>(rank);
      OpCounter* shard =
          ops != nullptr ? &shards[static_cast<std::size_t>(slot)] : nullptr;
      best_last_for_subset_gated(cur.dense[r], pre.tables, pre.status,
                                 j_vars, kind, binom, shard,
                                 scratch[static_cast<std::size_t>(slot)],
                                 cur.tables[r], &cur.best_var[r],
                                 &cur.best_cost[r]);
      if (cur.best_var[r] < 0) return;  // every predecessor pruned: dead
      const util::Mask rest = J & ~spread_mask(cur.dense[r], j_vars);
      cur.bound[r] =
          cur.best_cost[r] +
          completion_bound(cur.tables[r], rest, base_support, final_cells,
                           bounds[static_cast<std::size_t>(slot)]);
      if (cur.bound[r] <= ub) {
        cur.status[r] = kStateAlive;
      } else {
        cur.status[r] = kStatePruned;
        std::vector<std::uint32_t>().swap(cur.tables[r].cells);
      }
    };

    // Same sparse-enough dependency structure as the dense engine: a
    // group waits for every previous-layer group holding one of its
    // predecessors.  Prune fates are not known at build time, so edges
    // are conservative; a dead group body costs one status sweep.
    std::vector<std::uint32_t> stamp(
        layer >= start_layer + 2 ? static_cast<std::size_t>(P.n_groups) : 0,
        std::numeric_limits<std::uint32_t>::max());
    for (std::uint64_t g = 0; g < L.n_groups; ++g) {
      const std::uint64_t lo = g * group;
      const std::uint64_t hi =
          lo + group < layer_size ? lo + group : layer_size;
      const par::TaskGraph::TaskId id = graph.add_range(lo, hi, grain, body);
      graph.set_label(id, "fs.group", "layer",
                      static_cast<std::uint64_t>(layer), "group", g);
      if (g == 0) L.first_group = id;
      if (layer < start_layer + 2) continue;
      for (std::uint64_t r = lo; r < hi; ++r) {
        util::for_each_bit(L.dense[static_cast<std::size_t>(r)], [&](int b) {
          const util::Mask pd =
              L.dense[static_cast<std::size_t>(r)] & ~(util::Mask{1} << b);
          const std::uint64_t pg = binom.rank(pd) / P.group_size;
          if (stamp[static_cast<std::size_t>(pg)] !=
              static_cast<std::uint32_t>(g)) {
            stamp[static_cast<std::size_t>(pg)] =
                static_cast<std::uint32_t>(g);
            graph.add_edge(
                P.first_group + static_cast<par::TaskGraph::TaskId>(pg), id);
          }
        });
      }
    }

    // Layer fence: publish survivors in rank order, tally the ledger and
    // the all-dead chunks, charge the actual sparse work, free layer-1.
    const par::TaskGraph::TaskId fence_id = graph.seq_epoch(
        [&result, &layers, &fence_prev_resident, &j_vars, &binom,
                     layer, layer_size, grain, pred_cells =
                         static_cast<std::uint64_t>(base.cells.size()) >>
                         (layer - 1),
                     ops, gov](int) {
      Layer& cur = layers[static_cast<std::size_t>(layer)];
      Layer& pre = layers[static_cast<std::size_t>(layer) - 1];
      std::uint64_t cur_resident = 0;
      std::uint64_t n_alive = 0, n_pruned = 0, n_dead = 0, n_comp = 0;
      std::uint64_t layer_lb_min = std::numeric_limits<std::uint64_t>::max();
      for (std::uint64_t r = 0; r < layer_size; ++r) {
        const std::size_t i = static_cast<std::size_t>(r);
        switch (cur.status[i]) {
          case kStateAlive: {
            const util::Mask K = spread_mask(cur.dense[i], j_vars);
            result.best_last.emplace(K, cur.best_var[i]);
            result.mincost.emplace(K, cur.best_cost[i]);
            if (cur.bound[i] < layer_lb_min) layer_lb_min = cur.bound[i];
            cur_resident += cur.tables[i].cells.size();
            ++n_alive;
            break;
          }
          case kStatePruned:
            ++n_pruned;
            break;
          default:
            ++n_dead;
            break;
        }
        // Actual compaction work this state cost: one predecessor-cells
        // sweep per surviving predecessor (dead states cost none).
        if (cur.status[i] != kStateDead) {
          util::for_each_bit(cur.dense[i], [&](int b) {
            const util::Mask pd = cur.dense[i] & ~(util::Mask{1} << b);
            if (pre.status[static_cast<std::size_t>(binom.rank(pd))] ==
                kStateAlive)
              ++n_comp;
          });
        }
      }
      OVO_CHECK_MSG(n_alive > 0,
                    "fs_star: pruning incumbent below the true optimum");
      result.prune.states_generated += n_alive + n_pruned;
      result.prune.states_pruned += n_pruned;
      result.prune.states_dead += n_dead;
      result.prune.states_surviving += n_alive;
      result.prune.dense_cells += layer_size * (pred_cells >> 1);
      result.prune.sparse_cells += cur_resident;
      result.certified_lower_bound = layer_lb_min;
      if (ops != nullptr)
        ops->observe_resident(fence_prev_resident + cur_resident);
      fence_prev_resident = cur_resident;
      result.completed_layers = layer;
      if (gov != nullptr) gov->charge(n_comp * pred_cells);
      // Chunks whose whole range was dead retired without compacting
      // anything — the scheduling overhead sparsity leaves behind.
      std::uint64_t skipped_chunks = 0;
      for (std::uint64_t g = 0; g < cur.n_groups; ++g) {
        const std::uint64_t glo = g * cur.group_size;
        const std::uint64_t ghi = glo + cur.group_size < layer_size
                                      ? glo + cur.group_size
                                      : layer_size;
        for (std::uint64_t lo = glo; lo < ghi; lo += grain) {
          const std::uint64_t hi = lo + grain < ghi ? lo + grain : ghi;
          bool any_work = false;
          for (std::uint64_t r = lo; r < hi && !any_work; ++r)
            any_work = cur.status[static_cast<std::size_t>(r)] != kStateDead;
          if (!any_work) ++skipped_chunks;
        }
      }
      if (skipped_chunks > 0) par::charge_pruned_chunks(skipped_chunks);
      // Every reader of layer-1 (this layer's subsets) has completed.
      std::vector<PrefixTable>().swap(
          layers[static_cast<std::size_t>(layer) - 1].tables);
    });
    graph.set_label(fence_id, "fs.fence", "layer",
                    static_cast<std::uint64_t>(layer));
  }

  graph.run(threads, gov != nullptr ? gov->stop_flag() : nullptr);
  const std::uint64_t extract_t0 = engine_now_ns();

  if (ops != nullptr)
    for (OpCounter& shard : shards) *ops += shard;

  Layer& last = layers[static_cast<std::size_t>(result.completed_layers)];
  for (std::size_t r = 0; r < last.tables.size(); ++r) {
    if (last.status[r] != kStateAlive) continue;  // pruned/dead slot
    result.tables.emplace(spread_mask(last.dense[r], j_vars),
                          std::move(last.tables[r]));
  }
  par::charge_barrier_wait(static_cast<std::uint64_t>(threads - 1) *
                           (engine_now_ns() - extract_t0));
  if (ops != nullptr) ops->prune += result.prune;
  return result;
}

}  // namespace

namespace {

/// Closed-form total compaction work of a dense full-depth run: each
/// layer-k state costs k compactions over base_cells >> (k-1) predecessor
/// cells.  Used by the small-n serial fallback — below this threshold the
/// whole DP is cheaper than the fan-out it would buy (BENCH_fs.json shows
/// speedup < 0.5 for n <= 6 on this structure).
std::uint64_t dense_dp_work(int j_size, std::uint64_t base_cells,
                            int stop_k) {
  const auto& binom = util::BinomialTable::instance();
  std::uint64_t total = 0;
  for (int k = 1; k <= stop_k; ++k)
    total += binom.choose(j_size, k) * static_cast<std::uint64_t>(k) *
             (base_cells >> (k - 1));
  return total;
}

constexpr std::uint64_t kSerialFallbackWork = std::uint64_t{1} << 13;

/// Self-seed incumbent: the chain cost of placing J's variables in
/// ascending bit order on top of `base` — one real completion, so always
/// an admissible upper bound.  Counted into `ops` like any other chain
/// evaluation; not governor-charged (it replaces work the caller's
/// heuristic seeding would otherwise have spent).
std::uint64_t ascending_chain_bound(const PrefixTable& base, util::Mask J,
                                    DiagramKind kind, OpCounter* ops) {
  PrefixTable cur = base;
  PrefixTable nxt;
  util::for_each_bit(J, [&](int v) {
    compact_into(nxt, cur, v, kind, ops);
    std::swap(cur, nxt);
  });
  return cur.mincost();
}

}  // namespace

FsStarResult fs_star(const PrefixTable& base, util::Mask J, int stop_k,
                     DiagramKind kind, OpCounter* ops,
                     const par::ExecPolicy& exec, rt::Governor* gov,
                     std::uint64_t prune_upper_bound,
                     const FsCheckpointOptions* ckpt) {
  OVO_CHECK_MSG((base.vars & J) == 0, "fs_star: J overlaps prefix I");
  OVO_CHECK_MSG(util::is_subset(J, util::full_mask(base.n)),
                "fs_star: J outside variable universe");
  const int j_size = util::popcount(J);
  OVO_CHECK_MSG(stop_k >= 0 && stop_k <= j_size, "fs_star: bad stop layer");

  int threads = par::ThreadPool::clamp_threads(exec.resolved_threads());
  // Per-subset work is exponential in the free-variable count, so the
  // default chunk is a single subset.
  const std::uint64_t grain = exec.grain != 0 ? exec.grain : 1;

  // Small-n serial fallback: when the whole DP's closed-form work is
  // below the fan-out's break-even, or no layer even fills one chunk,
  // run serially — same engines, same results, no pool round-trip.
  if (threads > 1 && stop_k > 0) {
    const auto& binom = util::BinomialTable::instance();
    std::uint64_t widest = 0;
    for (int k = 1; k <= stop_k; ++k)
      if (binom.choose(j_size, k) > widest) widest = binom.choose(j_size, k);
    if (dense_dp_work(j_size, base.cells.size(), stop_k) <
            kSerialFallbackWork ||
        widest <= grain)
      threads = 1;
  }

  // Bound pruning applies only to full-block runs: stop-early callers
  // (partition search over block boundaries) require a table for *every*
  // stop-layer subset, which pruning deliberately violates.
  const bool prune = exec.prune == par::PruneMode::kBounds &&
                     stop_k == j_size && j_size > 0;

  // Checkpoint plan: fingerprint the run, validate a resume snapshot
  // against it (a mismatch is the *caller's* instance error, so it is a
  // typed CheckpointError, not an OVO_CHECK), and restore the fence
  // ledgers once, at this serial point — every later charge and admit
  // then replays the uninterrupted run's decisions bit for bit.
  CkptPlan plan;
  if (ckpt != nullptr && ckpt->active()) {
    plan.opts = ckpt;
    plan.num_terminals = base.num_terminals;
    plan.fp = fs_fingerprint(
        base, J, stop_k, kind,
        prune ? par::PruneMode::kBounds : par::PruneMode::kOff);
    if (ckpt->resume != nullptr) {
      if (!(ckpt->resume->fingerprint == plan.fp))
        throw rt::CheckpointError(
            rt::CheckpointErrorKind::kWrongInstance,
            "checkpoint: snapshot fingerprint does not match this run "
            "(different function, block, stop layer, kind, or prune mode)");
      if (ops != nullptr) *ops += ckpt->resume->ops;
      if (gov != nullptr) gov->restore_work(ckpt->resume->work_charged);
    }
  }
  const FsStarSnapshot* resume = plan.resume();

  if (prune) {
    // A resume snapshot carries the *effective* incumbent of the original
    // run (post self-seed), so resuming neither re-seeds nor re-runs the
    // ascending chain — bounds and ops replay identically.
    const std::uint64_t ub =
        resume != nullptr
            ? resume->prune_upper_bound
            : (prune_upper_bound != 0
                   ? prune_upper_bound
                   : ascending_chain_bound(base, J, kind, ops));
    plan.prune_ub = ub;
    // Sparse admission counts exist only at serial layer boundaries, so
    // deterministic budget limits force the barrier engine (see
    // Budget::deterministic_limits); deadline/cancel-only budgets keep
    // their per-chunk polling on either engine.  Snapshot-writing runs
    // also need the barrier engine: only its fences hold a merged,
    // fence-consistent ledger (the pipelined engine merges shards once,
    // after the DAG drains).
    const bool may_pipeline =
        exec.pipeline && threads > 1 && !plan.writes() &&
        !(gov != nullptr && gov->budget().deterministic_limits());
    if (may_pipeline)
      return fs_star_pruned_pipelined(base, J, stop_k, kind, ops, threads,
                                      grain, gov, ub, plan);
    return fs_star_pruned_barrier(base, J, stop_k, kind, ops, threads,
                                  grain, gov, ub, plan);
  }

  if (exec.pipeline && threads > 1 && stop_k > 0 && !plan.writes())
    return fs_star_pipelined(base, J, stop_k, kind, ops, threads, grain,
                             gov, plan);
  return fs_star_barrier(base, J, stop_k, kind, ops, threads, grain, gov,
                         plan);
}

PrefixTable fs_star_full(const PrefixTable& base, util::Mask J,
                         DiagramKind kind, OpCounter* ops,
                         std::vector<int>* block_order_bottom_up,
                         const par::ExecPolicy& exec,
                         std::uint64_t prune_upper_bound,
                         const FsCheckpointOptions* ckpt) {
  FsStarResult r = fs_star(base, J, util::popcount(J), kind, ops, exec,
                           nullptr, prune_upper_bound, ckpt);
  if (block_order_bottom_up != nullptr)
    *block_order_bottom_up = reconstruct_block_order(r, J);
  auto it = r.tables.find(J);
  OVO_CHECK(it != r.tables.end());
  return std::move(it->second);
}

std::vector<int> reconstruct_block_order(const FsStarResult& r,
                                         util::Mask J) {
  std::vector<int> top_down;
  util::Mask K = J;
  while (K != 0) {
    const auto it = r.best_last.find(K);
    OVO_CHECK_MSG(it != r.best_last.end(),
                  "reconstruct_block_order: missing back-pointer");
    top_down.push_back(it->second);
    K &= ~(util::Mask{1} << it->second);
  }
  return {top_down.rbegin(), top_down.rend()};  // bottom-up
}

}  // namespace ovo::core
