#include "core/fs_star.hpp"

#include <atomic>
#include <limits>
#include <utility>

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::core {

namespace {

/// Expands a dense subset of J's bit positions into a variable mask.
util::Mask spread_mask(util::Mask dense, const std::vector<int>& j_vars) {
  util::Mask K = 0;
  util::for_each_bit(dense, [&](int b) {
    K |= util::Mask{1} << j_vars[static_cast<std::size_t>(b)];
  });
  return K;
}

}  // namespace

FsStarResult fs_star(const PrefixTable& base, util::Mask J, int stop_k,
                     DiagramKind kind, OpCounter* ops,
                     const par::ExecPolicy& exec, rt::Governor* gov) {
  OVO_CHECK_MSG((base.vars & J) == 0, "fs_star: J overlaps prefix I");
  OVO_CHECK_MSG(util::is_subset(J, util::full_mask(base.n)),
                "fs_star: J outside variable universe");
  const int j_size = util::popcount(J);
  OVO_CHECK_MSG(stop_k >= 0 && stop_k <= j_size, "fs_star: bad stop layer");

  const std::vector<int> j_vars = util::bits_of(J);
  const auto& binom = util::BinomialTable::instance();

  const int threads =
      par::ThreadPool::clamp_threads(exec.resolved_threads());
  // Per-subset work is exponential in the free-variable count, so the
  // default chunk is a single subset.
  const std::uint64_t grain = exec.grain != 0 ? exec.grain : 1;
  par::ThreadPool& pool = par::ThreadPool::shared();

  FsStarResult result;
  result.mincost.emplace(util::Mask{0}, base.mincost());

  // Layer k holds one PrefixTable per k-subset of J, at the subset's
  // colex rank (over dense positions into j_vars).  Layer 0 is the base.
  std::vector<PrefixTable> prev;
  prev.push_back(base);
  std::vector<util::Mask> prev_dense{util::Mask{0}};

  // Per-thread-slot state: scratch tables so the inner loop's candidate
  // compaction reuses one buffer per thread, and OpCounter shards merged
  // after each layer (exact: all fields commute).
  std::vector<PrefixTable> scratch(static_cast<std::size_t>(threads));
  std::vector<OpCounter> shards(static_cast<std::size_t>(threads));

  const std::atomic<bool>* stop_flag =
      gov != nullptr ? gov->stop_flag() : nullptr;
  std::uint64_t prev_resident = base.cells.size();
  std::uint64_t layer_work = 0;
  for (int layer = 1; layer <= stop_k; ++layer) {
    const std::uint64_t layer_size =
        binom.choose(j_size, layer);
    if (gov != nullptr) {
      // Deterministic pre-admission: the whole layer's cost is known in
      // closed form, so the trip decision is independent of thread count
      // and made before any allocation.  Both layers are resident while
      // the next one is built (Remark 1).
      const std::uint64_t pred_cells =
          static_cast<std::uint64_t>(base.cells.size()) >> (layer - 1);
      layer_work =
          layer_size * static_cast<std::uint64_t>(layer) * pred_cells;
      const std::uint64_t resident =
          prev_resident + layer_size * (pred_cells >> 1);
      if (!gov->admit_nodes(resident) ||
          !gov->admit_bytes(resident * sizeof(base.cells[0])) ||
          !gov->admit_work(layer_work))
        break;
    }
    // Gosper enumeration yields masks in increasing numeric order, which
    // for fixed popcount IS colex rank order; the one-time size check
    // below replaces the seed's per-(subset, variable) hash-find checks.
    std::vector<util::Mask> dense;
    dense.reserve(static_cast<std::size_t>(layer_size));
    util::for_each_subset_of_size(j_size, layer, [&](util::Mask m) {
      dense.push_back(m);
    });
    OVO_CHECK_MSG(dense.size() == layer_size,
                  "fs_star: layer enumeration incomplete");

    std::vector<PrefixTable> cur(static_cast<std::size_t>(layer_size));
    std::vector<int> best_var(static_cast<std::size_t>(layer_size), -1);
    std::vector<std::uint64_t> best_cost(
        static_cast<std::size_t>(layer_size));

    pool.parallel_for(0, layer_size, grain, threads, stop_flag,
                      [&](std::uint64_t rank, int slot) {
      if (gov != nullptr) gov->poll();  // cancel/deadline responsiveness
      const util::Mask d = dense[static_cast<std::size_t>(rank)];
      OpCounter* shard =
          ops != nullptr ? &shards[static_cast<std::size_t>(slot)] : nullptr;
      PrefixTable& cand = scratch[static_cast<std::size_t>(slot)];
      PrefixTable& best = cur[static_cast<std::size_t>(rank)];
      std::uint64_t bc = std::numeric_limits<std::uint64_t>::max();
      int bv = -1;
      util::for_each_bit(d, [&](int b) {
        // Predecessor = this subset minus one element, found at its colex
        // rank in the previous layer — an O(layer) table-driven
        // computation in place of the seed's hash find.
        const util::Mask pd = d & ~(util::Mask{1} << b);
        const std::uint64_t pred = binom.rank(pd);
        OVO_DCHECK(pred < prev.size() &&
                   prev_dense[static_cast<std::size_t>(pred)] == pd);
        compact_into(cand, prev[static_cast<std::size_t>(pred)],
                     j_vars[static_cast<std::size_t>(b)], kind, shard);
        const std::uint64_t cost = cand.mincost();
        if (cost < bc) {
          bc = cost;
          bv = j_vars[static_cast<std::size_t>(b)];
          std::swap(best, cand);
        }
      });
      best_var[static_cast<std::size_t>(rank)] = bv;
      best_cost[static_cast<std::size_t>(rank)] = bc;
    });
    if (gov != nullptr && gov->stopped()) break;  // discard partial layer

    // Serial epilogue per layer: publish back-pointers/costs in rank
    // order (identical to the seed's enumeration order) and account for
    // residency.  Remark 1: both layers are resident while the next one
    // is built.
    std::uint64_t cur_resident = 0;
    for (std::uint64_t r = 0; r < layer_size; ++r) {
      OVO_CHECK(best_var[static_cast<std::size_t>(r)] >= 0);
      const util::Mask K =
          spread_mask(dense[static_cast<std::size_t>(r)], j_vars);
      result.best_last.emplace(K, best_var[static_cast<std::size_t>(r)]);
      result.mincost.emplace(K, best_cost[static_cast<std::size_t>(r)]);
      cur_resident += cur[static_cast<std::size_t>(r)].cells.size();
    }
    if (ops != nullptr) {
      for (OpCounter& shard : shards) {
        *ops += shard;
        shard.reset();
      }
      ops->observe_resident(prev_resident + cur_resident);
    }
    prev_resident = cur_resident;
    prev = std::move(cur);
    prev_dense = std::move(dense);
    result.completed_layers = layer;
    if (gov != nullptr) gov->charge(layer_work);
  }

  for (std::size_t r = 0; r < prev.size(); ++r)
    result.tables.emplace(spread_mask(prev_dense[r], j_vars),
                          std::move(prev[r]));
  return result;
}

PrefixTable fs_star_full(const PrefixTable& base, util::Mask J,
                         DiagramKind kind, OpCounter* ops,
                         std::vector<int>* block_order_bottom_up,
                         const par::ExecPolicy& exec) {
  FsStarResult r = fs_star(base, J, util::popcount(J), kind, ops, exec);
  if (block_order_bottom_up != nullptr)
    *block_order_bottom_up = reconstruct_block_order(r, J);
  auto it = r.tables.find(J);
  OVO_CHECK(it != r.tables.end());
  return std::move(it->second);
}

std::vector<int> reconstruct_block_order(const FsStarResult& r,
                                         util::Mask J) {
  std::vector<int> top_down;
  util::Mask K = J;
  while (K != 0) {
    const auto it = r.best_last.find(K);
    OVO_CHECK_MSG(it != r.best_last.end(),
                  "reconstruct_block_order: missing back-pointer");
    top_down.push_back(it->second);
    K &= ~(util::Mask{1} << it->second);
  }
  return {top_down.rbegin(), top_down.rend()};  // bottom-up
}

}  // namespace ovo::core
