#pragma once
// Public entry points for exact decision-diagram minimization — the paper's
// algorithm FS (Theorem 5) specialized per diagram kind, plus order-cost
// evaluation used by baselines and verification.

#include <cstdint>
#include <vector>

#include "core/prefix_table.hpp"
#include "parallel/exec_policy.hpp"
#include "tt/truth_table.hpp"

namespace ovo::core {

struct MinimizeResult {
  /// Optimal variable reading order, root first: order_root_first[0] is the
  /// variable read first (the paper's x_{pi[n]}).
  std::vector<int> order_root_first;

  /// Internal (non-terminal) node count of the minimum diagram,
  /// MINCOST_{[n]}. The paper's figures count terminals too: add
  /// 2 for BDD/ZDD, the number of distinct values for MTBDD.
  std::uint64_t min_internal_nodes = 0;

  /// Work performed, in table cells processed (Theorem 5: O*(3^n)).
  OpCounter ops;
};

/// Exact minimum OBDD ordering by the Friedman–Supowit DP; O*(3^n) time and
/// space in the number of variables of `f`.  `exec` fans the per-layer
/// subset sweep out over the ovo::par pool; the default is serial, and
/// results are identical for every thread count.
MinimizeResult fs_minimize(const tt::TruthTable& f,
                           DiagramKind kind = DiagramKind::kBdd,
                           const par::ExecPolicy& exec = {});

/// Exact minimum ZDD ordering (Appendix D adaptation).
inline MinimizeResult fs_minimize_zdd(const tt::TruthTable& f,
                                      const par::ExecPolicy& exec = {}) {
  return fs_minimize(f, DiagramKind::kZdd, exec);
}

/// Exact minimum MTBDD ordering for a multi-valued function given as a
/// value table of size 2^n (Remark 2).
MinimizeResult fs_minimize_mtbdd(const std::vector<std::int64_t>& values,
                                 int n, const par::ExecPolicy& exec = {});

/// Internal node count of the diagram for `f` under a full reading order
/// (root first), computed by a single chain of table compactions; O(2^n).
/// This is the exact size oracle used by the heuristic baselines.
std::uint64_t diagram_size_for_order(const tt::TruthTable& f,
                                     const std::vector<int>& order_root_first,
                                     DiagramKind kind = DiagramKind::kBdd,
                                     OpCounter* ops = nullptr);

/// MTBDD variant of diagram_size_for_order.
std::uint64_t diagram_size_for_order_values(
    const std::vector<std::int64_t>& values, int n,
    const std::vector<int>& order_root_first, OpCounter* ops = nullptr);

/// Per-level widths (the paper's Cost_{pi[j]} profile, bottom-up: entry 0
/// is the lowest level) under a full reading order.
std::vector<std::uint64_t> level_profile_for_order(
    const tt::TruthTable& f, const std::vector<int>& order_root_first,
    DiagramKind kind = DiagramKind::kBdd);

}  // namespace ovo::core
