#pragma once
// Public entry points for exact decision-diagram minimization — the paper's
// algorithm FS (Theorem 5) specialized per diagram kind, plus order-cost
// evaluation used by baselines and verification.

#include <cstdint>
#include <vector>

#include "core/fs_checkpoint.hpp"
#include "core/prefix_table.hpp"
#include "parallel/exec_policy.hpp"
#include "tt/truth_table.hpp"

namespace ovo::core {

struct MinimizeResult {
  /// Optimal variable reading order, root first: order_root_first[0] is the
  /// variable read first (the paper's x_{pi[n]}).
  std::vector<int> order_root_first;

  /// Internal (non-terminal) node count of the minimum diagram,
  /// MINCOST_{[n]}. The paper's figures count terminals too: add
  /// 2 for BDD/ZDD, the number of distinct values for MTBDD.
  std::uint64_t min_internal_nodes = 0;

  /// Work performed, in table cells processed (Theorem 5: O*(3^n)).
  OpCounter ops;
};

/// Exact minimum OBDD ordering by the Friedman–Supowit DP; O*(3^n) time and
/// space in the number of variables of `f`.  `exec` fans the per-layer
/// subset sweep out over the ovo::par pool; the default is serial, and
/// results are identical for every thread count.  With exec.prune ==
/// PruneMode::kBounds, `prune_upper_bound` seeds the DP's pruning
/// incumbent (0 self-seeds; see fs_star) — the result is still exact and
/// bit-identical to the dense run.  `ckpt` enables durable
/// checkpoint/resume of the DP (see fs_star / fs_checkpoint.hpp).
MinimizeResult fs_minimize(const tt::TruthTable& f,
                           DiagramKind kind = DiagramKind::kBdd,
                           const par::ExecPolicy& exec = {},
                           std::uint64_t prune_upper_bound = 0,
                           const FsCheckpointOptions* ckpt = nullptr);

/// Exact minimum ZDD ordering (Appendix D adaptation).
inline MinimizeResult fs_minimize_zdd(const tt::TruthTable& f,
                                      const par::ExecPolicy& exec = {}) {
  return fs_minimize(f, DiagramKind::kZdd, exec);
}

/// Exact minimum MTBDD ordering for a multi-valued function given as a
/// value table of size 2^n (Remark 2).
MinimizeResult fs_minimize_mtbdd(const std::vector<std::int64_t>& values,
                                 int n, const par::ExecPolicy& exec = {});

/// Sentinel returned by governed size evaluations hard-stopped mid-chain.
/// Larger than any real size, so an aborted candidate is never selected.
inline constexpr std::uint64_t kAbortedSize = ~std::uint64_t{0};

/// Internal node count of the diagram for `f` under a full reading order
/// (root first), computed by a single chain of table compactions; O(2^n).
/// This is the exact size oracle used by the heuristic baselines.
/// A non-null `gov` is checked between compactions for hard stops
/// (cancel / wall deadline); an aborted evaluation returns kAbortedSize.
/// Work is NOT charged here — batch callers pre-admit the closed-form
/// chain cost (2^{n+1} - 2 cells per evaluation) to stay deterministic.
std::uint64_t diagram_size_for_order(const tt::TruthTable& f,
                                     const std::vector<int>& order_root_first,
                                     DiagramKind kind = DiagramKind::kBdd,
                                     OpCounter* ops = nullptr,
                                     const rt::Governor* gov = nullptr);

/// diagram_size_for_order starting from a prebuilt TABLE_{emptyset}
/// (`base` is copied into `scratch_cur`, never mutated) and ping-ponging
/// between the two caller-provided scratch tables, so a caller that
/// evaluates many orders against one function allocates nothing once the
/// scratch capacity covers one chain.  This is the primitive under
/// reorder::CostOracle.
std::uint64_t diagram_size_from_base(const PrefixTable& base,
                                     const std::vector<int>& order_root_first,
                                     DiagramKind kind,
                                     PrefixTable& scratch_cur,
                                     PrefixTable& scratch_next,
                                     OpCounter* ops = nullptr,
                                     const rt::Governor* gov = nullptr);

/// MTBDD variant of diagram_size_for_order.
std::uint64_t diagram_size_for_order_values(
    const std::vector<std::int64_t>& values, int n,
    const std::vector<int>& order_root_first, OpCounter* ops = nullptr,
    const rt::Governor* gov = nullptr);

/// Work units one full-chain size evaluation costs (cells read by the n
/// compactions: 2^n + 2^{n-1} + ... + 2 = 2^{n+1} - 2).
inline std::uint64_t chain_eval_cost(int n) {
  return (std::uint64_t{2} << n) - 2;
}

/// Per-level widths (the paper's Cost_{pi[j]} profile, bottom-up: entry 0
/// is the lowest level) under a full reading order.
std::vector<std::uint64_t> level_profile_for_order(
    const tt::TruthTable& f, const std::vector<int>& order_root_first,
    DiagramKind kind = DiagramKind::kBdd);

}  // namespace ovo::core
