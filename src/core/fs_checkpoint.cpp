#include "core/fs_checkpoint.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::core {

namespace {

using rt::ByteReader;
using rt::ByteWriter;
using rt::CheckpointError;
using rt::CheckpointErrorKind;

[[noreturn]] void malformed(const char* what) {
  throw CheckpointError(CheckpointErrorKind::kMalformed, what);
}

/// FNV-1a over a little-endian integer of `bytes` bytes.
void fnv_int(std::uint64_t& h, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 1099511628211ull;
  }
}

std::uint64_t base_content_hash(const PrefixTable& base) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  fnv_int(h, static_cast<std::uint64_t>(base.n), 4);
  fnv_int(h, base.vars, 8);
  fnv_int(h, base.num_terminals, 4);
  fnv_int(h, base.next_id, 4);
  for (const std::uint32_t cell : base.cells) fnv_int(h, cell, 4);
  return h;
}

void encode_prune_stats(ByteWriter& w, const PruneStats& p) {
  w.u64(p.upper_bound);
  w.u64(p.states_generated);
  w.u64(p.states_pruned);
  w.u64(p.states_dead);
  w.u64(p.states_surviving);
  w.u64(p.dense_cells);
  w.u64(p.sparse_cells);
}

PruneStats decode_prune_stats(ByteReader& r) {
  PruneStats p;
  p.upper_bound = r.u64();
  p.states_generated = r.u64();
  p.states_pruned = r.u64();
  p.states_dead = r.u64();
  p.states_surviving = r.u64();
  p.dense_cells = r.u64();
  p.sparse_cells = r.u64();
  return p;
}

void encode_ops(ByteWriter& w, const OpCounter& o) {
  w.u64(o.table_cells);
  w.u64(o.compactions);
  w.u64(o.peak_cells);
  w.u64(o.dedup.lookups);
  w.u64(o.dedup.hits);
  w.u64(o.dedup.inserts);
  w.u64(o.dedup.resizes);
  w.u64(o.dedup.probes);
  for (int i = 0; i < 8; ++i) w.u64(o.dedup.probe_hist[i]);
  encode_prune_stats(w, o.prune);
}

OpCounter decode_ops(ByteReader& r) {
  OpCounter o;
  o.table_cells = r.u64();
  o.compactions = r.u64();
  o.peak_cells = r.u64();
  o.dedup.lookups = r.u64();
  o.dedup.hits = r.u64();
  o.dedup.inserts = r.u64();
  o.dedup.resizes = r.u64();
  o.dedup.probes = r.u64();
  for (int i = 0; i < 8; ++i) o.dedup.probe_hist[i] = r.u64();
  o.prune = decode_prune_stats(r);
  return o;
}

/// The v2 unified-ledger section, derived from the fence's legacy
/// counters.  Encoding always recomputes it from those fields — there is
/// no second accumulation path that could drift — and decoding rebuilds
/// the same derivation from the decoded fields to cross-validate the
/// stored section.
obs::Ledger fence_ledger(const OpCounter& ops, const PruneStats& prune,
                         const FsSeedStats& seed,
                         std::uint64_t work_charged,
                         std::uint64_t prune_upper_bound) {
  obs::Ledger l;
  ops.to_ledger(l);
  prune.to_ledger(l);
  seed.to_ledger(l);
  l.record(obs::Metric::kRtWorkCharged, work_charged);
  l.record(obs::Metric::kFsPruneUpperBound, prune_upper_bound);
  return l;
}

void encode_ledger(ByteWriter& w, const obs::Ledger& l) {
  const auto& slots = l.slots();
  std::uint32_t nonzero = 0;
  for (const std::uint64_t v : slots)
    if (v != 0) ++nonzero;
  w.u32(nonzero);
  // (metric id, slot bits) pairs in ascending metric order: identical
  // ledgers always encode to identical bytes.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == 0) continue;
    w.u32(static_cast<std::uint32_t>(i));
    w.u64(slots[i]);
  }
}

obs::Ledger decode_ledger(ByteReader& r) {
  obs::Ledger l;
  const std::uint32_t nonzero = r.u32();
  if (nonzero > obs::kMetricCount)
    malformed("ledger section has more entries than the metric registry");
  std::uint32_t prev = 0;
  bool first = true;
  for (std::uint32_t i = 0; i < nonzero; ++i) {
    const std::uint32_t id = r.u32();
    if (id >= obs::kMetricCount)
      malformed("ledger metric id outside the registry");
    if (!first && id <= prev)
      malformed("ledger metric ids not strictly ascending");
    first = false;
    prev = id;
    const std::uint64_t bits = r.u64();
    if (bits == 0) malformed("ledger section stores a zero slot");
    l.set(static_cast<obs::Metric>(id), bits);
  }
  return l;
}

util::Mask spread_dense(util::Mask dense, const std::vector<int>& j_vars) {
  util::Mask K = 0;
  util::for_each_bit(dense, [&](int b) {
    K |= util::Mask{1} << j_vars[static_cast<std::size_t>(b)];
  });
  return K;
}

}  // namespace

FsFingerprint fs_fingerprint(const PrefixTable& base, util::Mask J,
                             int stop_k, DiagramKind kind,
                             par::PruneMode prune) {
  FsFingerprint fp;
  fp.base_hash = base_content_hash(base);
  fp.n = static_cast<std::uint32_t>(base.n);
  fp.prefix_vars = base.vars;
  fp.block = J;
  fp.stop_k = static_cast<std::uint32_t>(stop_k);
  fp.kind = static_cast<std::uint8_t>(kind);
  fp.prune = static_cast<std::uint8_t>(prune);
  return fp;
}

std::vector<std::uint8_t> encode_snapshot(const FsSnapshotView& view) {
  OVO_CHECK(view.fingerprint != nullptr && view.dense != nullptr &&
            view.tables != nullptr && view.best_last != nullptr &&
            view.mincost != nullptr && view.prune != nullptr);
  OVO_CHECK(view.dense->size() == view.tables->size());
  ByteWriter w;
  const FsFingerprint& fp = *view.fingerprint;
  w.u64(fp.base_hash);
  w.u32(fp.n);
  w.u64(fp.prefix_vars);
  w.u64(fp.block);
  w.u32(fp.stop_k);
  w.u8(fp.kind);
  w.u8(fp.prune);
  w.u32(view.num_terminals);
  w.u32(static_cast<std::uint32_t>(view.layer));
  w.u64(view.certified_lower_bound);
  w.u64(view.work_charged);
  w.u64(view.prune_upper_bound);
  encode_prune_stats(w, *view.prune);
  static const OpCounter kZeroOps{};
  encode_ops(w, view.ops != nullptr ? *view.ops : kZeroOps);
  w.u64(view.rng_seed);
  static const std::string kEmpty;
  w.str(view.seed_name != nullptr ? *view.seed_name : kEmpty);
  if (view.seed_order != nullptr) {
    w.u64(view.seed_order->size());
    for (const int v : *view.seed_order)
      w.u32(static_cast<std::uint32_t>(v));
  } else {
    w.u64(0);
  }
  static const FsSeedStats kZeroSeed{};
  const FsSeedStats& ss =
      view.seed_stats != nullptr ? *view.seed_stats : kZeroSeed;
  w.u64(ss.queries);
  w.u64(ss.evals);
  w.u64(ss.memo_hits);
  encode_ops(w, ss.ops);

  // Layer tables, already in colex (ascending-mask) order in the engines.
  w.u64(view.dense->size());
  for (std::size_t i = 0; i < view.dense->size(); ++i) {
    const PrefixTable& t = (*view.tables)[i];
    w.u64((*view.dense)[i]);
    w.u32(t.next_id);
    w.u64(t.cells.size());
    for (const std::uint32_t cell : t.cells) w.u32(cell);
  }

  // Map entries sorted by mask: deterministic bytes regardless of the
  // unordered_map's iteration order.
  std::vector<std::pair<util::Mask, int>> bl(view.best_last->begin(),
                                             view.best_last->end());
  std::sort(bl.begin(), bl.end());
  w.u64(bl.size());
  for (const auto& [mask, var] : bl) {
    w.u64(mask);
    w.u32(static_cast<std::uint32_t>(var));
  }
  std::vector<std::pair<util::Mask, std::uint64_t>> mc(view.mincost->begin(),
                                                       view.mincost->end());
  std::sort(mc.begin(), mc.end());
  w.u64(mc.size());
  for (const auto& [mask, cost] : mc) {
    w.u64(mask);
    w.u64(cost);
  }

  // v2: the unified obs ledger for this fence.  Recomputed from the
  // fields above rather than passed in, so payload bytes can never carry
  // a ledger that disagrees with the counters it summarizes.
  encode_ledger(w, fence_ledger(view.ops != nullptr ? *view.ops : kZeroOps,
                                *view.prune, ss, view.work_charged,
                                view.prune_upper_bound));
  return w.take();
}

FsStarSnapshot decode_snapshot(const std::uint8_t* data, std::size_t len) {
  ByteReader r(data, len);
  FsStarSnapshot s;
  FsFingerprint& fp = s.fingerprint;
  fp.base_hash = r.u64();
  fp.n = r.u32();
  fp.prefix_vars = r.u64();
  fp.block = r.u64();
  fp.stop_k = r.u32();
  fp.kind = r.u8();
  fp.prune = r.u8();
  if (fp.n < 1 || fp.n > 64) malformed("fingerprint n outside [1, 64]");
  const util::Mask universe = util::full_mask(static_cast<int>(fp.n));
  if ((fp.prefix_vars & ~universe) != 0)
    malformed("fingerprint prefix outside the variable universe");
  if ((fp.block & ~universe) != 0)
    malformed("fingerprint block outside the variable universe");
  if ((fp.prefix_vars & fp.block) != 0)
    malformed("fingerprint block overlaps the prefix");
  const int j_size = util::popcount(fp.block);
  if (fp.stop_k > static_cast<std::uint32_t>(j_size))
    malformed("fingerprint stop layer exceeds the block size");
  if (fp.kind > 2) malformed("fingerprint diagram kind out of range");
  if (fp.prune > 1) malformed("fingerprint prune mode out of range");

  s.num_terminals = r.u32();
  if (s.num_terminals < 1) malformed("num_terminals must be >= 1");
  const std::uint32_t layer = r.u32();
  if (layer > fp.stop_k) malformed("snapshot layer exceeds the stop layer");
  s.layer = static_cast<int>(layer);
  s.certified_lower_bound = r.u64();
  s.work_charged = r.u64();
  s.prune_upper_bound = r.u64();
  s.prune = decode_prune_stats(r);
  s.ops = decode_ops(r);
  s.rng_seed = r.u64();
  s.seed_name = r.str();
  const std::uint64_t seed_len = r.array_count(4);
  if (seed_len > 64) malformed("seed order longer than 64 variables");
  s.seed_order.reserve(static_cast<std::size_t>(seed_len));
  for (std::uint64_t i = 0; i < seed_len; ++i) {
    const std::uint32_t v = r.u32();
    if (v >= fp.n) malformed("seed order variable out of range");
    s.seed_order.push_back(static_cast<int>(v));
  }
  s.seed_stats.queries = r.u64();
  s.seed_stats.evals = r.u64();
  s.seed_stats.memo_hits = r.u64();
  s.seed_stats.ops = decode_ops(r);

  const auto& binom = util::BinomialTable::instance();
  const std::uint64_t layer_card =
      binom.choose(j_size, static_cast<int>(layer));
  const std::vector<int> j_vars = util::bits_of(fp.block);
  const int free_count =
      static_cast<int>(fp.n) - util::popcount(fp.prefix_vars);
  if (static_cast<int>(layer) > free_count)
    malformed("snapshot layer exceeds the base's free variables");
  const std::uint64_t expected_cells =
      std::uint64_t{1} << (free_count - static_cast<int>(layer));

  const std::uint64_t n_tables = r.array_count(8 + 4 + 8);
  // A dense snapshot must carry the *whole* layer; a pruned one carries
  // at least one survivor (an empty layer would have tripped the
  // incumbent-below-optimum check before any fence).
  if (fp.prune == 0 && n_tables != layer_card)
    malformed("dense snapshot does not cover its whole layer");
  if (n_tables == 0 || n_tables > layer_card)
    malformed("snapshot table count outside the layer's cardinality");
  s.dense.reserve(static_cast<std::size_t>(n_tables));
  s.tables.reserve(static_cast<std::size_t>(n_tables));
  const util::Mask dense_universe = util::full_mask(j_size);
  for (std::uint64_t i = 0; i < n_tables; ++i) {
    const util::Mask d = r.u64();
    if ((d & ~dense_universe) != 0)
      malformed("layer mask outside the block's dense universe");
    if (util::popcount(d) != static_cast<int>(layer))
      malformed("layer mask cardinality disagrees with the layer");
    if (!s.dense.empty() && d <= s.dense.back())
      malformed("layer masks not strictly ascending");
    PrefixTable t;
    t.n = static_cast<int>(fp.n);
    t.vars = fp.prefix_vars | spread_dense(d, j_vars);
    t.num_terminals = s.num_terminals;
    t.next_id = r.u32();
    if (t.next_id < t.num_terminals)
      malformed("table next_id below its terminal count");
    const std::uint64_t n_cells = r.array_count(4);
    if (n_cells != expected_cells)
      malformed("table cell count disagrees with the fingerprint");
    t.cells.reserve(static_cast<std::size_t>(n_cells));
    for (std::uint64_t c = 0; c < n_cells; ++c) {
      const std::uint32_t cell = r.u32();
      if (cell >= t.next_id) malformed("table cell id out of range");
      t.cells.push_back(cell);
    }
    s.dense.push_back(d);
    s.tables.push_back(std::move(t));
  }

  const std::uint64_t n_bl = r.array_count(8 + 4);
  s.best_last.reserve(static_cast<std::size_t>(n_bl));
  for (std::uint64_t i = 0; i < n_bl; ++i) {
    const util::Mask mask = r.u64();
    const std::uint32_t var = r.u32();
    if (mask == 0 || (mask & ~fp.block) != 0)
      malformed("best-last mask outside the block");
    if (!s.best_last.empty() && mask <= s.best_last.back().first)
      malformed("best-last masks not strictly ascending");
    if (var >= fp.n || (mask & (util::Mask{1} << var)) == 0)
      malformed("best-last variable not a member of its mask");
    s.best_last.emplace_back(mask, static_cast<int>(var));
  }

  const std::uint64_t n_mc = r.array_count(8 + 8);
  s.mincost.reserve(static_cast<std::size_t>(n_mc));
  for (std::uint64_t i = 0; i < n_mc; ++i) {
    const util::Mask mask = r.u64();
    const std::uint64_t cost = r.u64();
    if ((mask & ~fp.block) != 0) malformed("mincost mask outside the block");
    if (!s.mincost.empty() && mask <= s.mincost.back().first)
      malformed("mincost masks not strictly ascending");
    s.mincost.emplace_back(mask, cost);
  }

  // v2 unified-ledger section.  The same derivation that produced it at
  // encode time must reproduce it from the legacy fields decoded above —
  // any divergence means the payload was tampered with or mis-written.
  s.ledger = decode_ledger(r);
  const obs::Ledger expected = fence_ledger(
      s.ops, s.prune, s.seed_stats, s.work_charged, s.prune_upper_bound);
  if (!(s.ledger == expected))
    malformed("ledger section disagrees with the snapshot's counters");

  if (!r.done()) malformed("trailing bytes after the snapshot payload");
  return s;
}

void save_snapshot(const std::string& path,
                   const std::vector<std::uint8_t>& payload) {
  rt::save_checkpoint(path, kFsSnapshotVersion, payload);
}

FsStarSnapshot load_snapshot(const std::string& path) {
  const rt::CheckpointData data =
      rt::load_checkpoint(path, kFsSnapshotVersion, kFsSnapshotVersion);
  return decode_snapshot(data.payload.data(), data.payload.size());
}

}  // namespace ovo::core
