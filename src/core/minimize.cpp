#include "core/minimize.hpp"

#include <algorithm>

#include "core/fs_star.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::core {

namespace {

MinimizeResult minimize_from_base(const PrefixTable& base, DiagramKind kind,
                                  const par::ExecPolicy& exec,
                                  std::uint64_t prune_upper_bound = 0,
                                  const FsCheckpointOptions* ckpt = nullptr) {
  MinimizeResult out;
  const util::Mask all = util::full_mask(base.n);
  std::vector<int> bottom_up;
  const PrefixTable final_table =
      fs_star_full(base, all, kind, &out.ops, &bottom_up, exec,
                   prune_upper_bound, ckpt);
  out.min_internal_nodes = final_table.mincost();
  out.order_root_first.assign(bottom_up.rbegin(), bottom_up.rend());
  return out;
}

}  // namespace

MinimizeResult fs_minimize(const tt::TruthTable& f, DiagramKind kind,
                           const par::ExecPolicy& exec,
                           std::uint64_t prune_upper_bound,
                           const FsCheckpointOptions* ckpt) {
  OVO_CHECK_MSG(kind != DiagramKind::kMtbdd,
                "fs_minimize: use fs_minimize_mtbdd for value tables");
  return minimize_from_base(initial_table(f), kind, exec, prune_upper_bound,
                            ckpt);
}

MinimizeResult fs_minimize_mtbdd(const std::vector<std::int64_t>& values,
                                 int n, const par::ExecPolicy& exec) {
  return minimize_from_base(initial_table_values(values, n),
                            DiagramKind::kMtbdd, exec);
}

namespace {

std::uint64_t chain_size_impl(const PrefixTable& base,
                              const std::vector<int>& order_root_first,
                              DiagramKind kind, PrefixTable& table,
                              PrefixTable& next, OpCounter* ops,
                              std::vector<std::uint64_t>* profile,
                              const rt::Governor* gov) {
  OVO_CHECK_MSG(static_cast<int>(order_root_first.size()) == base.n,
                "order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order_root_first),
                "order not a permutation");
  if (profile != nullptr) profile->assign(order_root_first.size(), 0);
  // Copy the base into the scratch table, reusing its cells capacity.
  table.n = base.n;
  table.vars = base.vars;
  table.num_terminals = base.num_terminals;
  table.next_id = base.next_id;
  table.cells.assign(base.cells.begin(), base.cells.end());
  // Compact bottom-up (last-read variable first), ping-ponging between
  // two tables so each step reuses the other's cells buffer instead of
  // allocating a fresh table per compaction.
  for (std::size_t j = order_root_first.size(); j-- > 0;) {
    if (gov != nullptr && gov->stopped()) return kAbortedSize;
    const std::uint64_t before = table.mincost();
    compact_into(next, table, order_root_first[j], kind, ops);
    std::swap(table, next);
    if (profile != nullptr)
      (*profile)[order_root_first.size() - 1 - j] = table.mincost() - before;
  }
  return table.mincost();
}

std::uint64_t chain_size(const PrefixTable& base,
                         const std::vector<int>& order_root_first,
                         DiagramKind kind, OpCounter* ops,
                         std::vector<std::uint64_t>* profile,
                         const rt::Governor* gov = nullptr) {
  PrefixTable cur, next;
  return chain_size_impl(base, order_root_first, kind, cur, next, ops,
                         profile, gov);
}

}  // namespace

std::uint64_t diagram_size_from_base(const PrefixTable& base,
                                     const std::vector<int>& order_root_first,
                                     DiagramKind kind,
                                     PrefixTable& scratch_cur,
                                     PrefixTable& scratch_next,
                                     OpCounter* ops,
                                     const rt::Governor* gov) {
  return chain_size_impl(base, order_root_first, kind, scratch_cur,
                         scratch_next, ops, nullptr, gov);
}

std::uint64_t diagram_size_for_order(const tt::TruthTable& f,
                                     const std::vector<int>& order_root_first,
                                     DiagramKind kind, OpCounter* ops,
                                     const rt::Governor* gov) {
  return chain_size(initial_table(f), order_root_first, kind, ops, nullptr,
                    gov);
}

std::uint64_t diagram_size_for_order_values(
    const std::vector<std::int64_t>& values, int n,
    const std::vector<int>& order_root_first, OpCounter* ops,
    const rt::Governor* gov) {
  return chain_size(initial_table_values(values, n), order_root_first,
                    DiagramKind::kMtbdd, ops, nullptr, gov);
}

std::vector<std::uint64_t> level_profile_for_order(
    const tt::TruthTable& f, const std::vector<int>& order_root_first,
    DiagramKind kind) {
  std::vector<std::uint64_t> profile;
  chain_size(initial_table(f), order_root_first, kind, nullptr, &profile);
  return profile;
}

}  // namespace ovo::core
