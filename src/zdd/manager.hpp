#pragma once
// Zero-suppressed Binary Decision Diagram (ZDD) package [Min93].
//
// Same arena/canonicity design as bdd::Manager, but with Minato's
// zero-suppression rule: a node whose 1-edge points to the false terminal
// is removed (replaced by its 0-child).  A skipped level on a path means
// "this variable must be 0".  ZDDs canonically represent families of sets
// (the satisfying assignments viewed as subsets of the variable set) and
// are the paper's second minimization target (Remark 2 / Appendix D).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"
#include "util/check.hpp"

namespace ovo::zdd {

using NodeId = std::uint32_t;

inline constexpr NodeId kEmpty = 0;  ///< false terminal: the empty family {}
inline constexpr NodeId kUnit = 1;   ///< true terminal: the family { {} }

struct Node {
  std::int32_t level;
  NodeId lo = kEmpty;
  NodeId hi = kEmpty;
};

class Manager {
 public:
  explicit Manager(int num_vars);
  Manager(int num_vars, std::vector<int> order);

  int num_vars() const { return n_; }
  const std::vector<int>& order() const { return order_; }
  int level_of_var(int var) const {
    OVO_CHECK(var >= 0 && var < n_);
    return var_to_level_[static_cast<std::size_t>(var)];
  }
  int var_at_level(int level) const {
    OVO_CHECK(level >= 0 && level < n_);
    return order_[static_cast<std::size_t>(level)];
  }

  bool is_terminal(NodeId id) const { return id <= kUnit; }
  const Node& node(NodeId id) const {
    OVO_DCHECK(id < pool_.size());
    return pool_[id];
  }
  std::size_t pool_size() const { return pool_.size(); }

  /// Reduced unique node; applies the zero-suppression rule (hi == kEmpty
  /// => lo) and hash consing.
  NodeId make(int level, NodeId lo, NodeId hi);

  /// Canonical ZDD of the characteristic function `t` under this ordering.
  NodeId from_truth_table(const tt::TruthTable& t);

  /// ZDD of an explicit family of sets (each set a variable mask).
  NodeId from_family(const std::vector<util::Mask>& sets);

  /// The family containing exactly one set.
  NodeId single_set(util::Mask set);

  // --- family algebra [Min93] ------------------------------------------------
  NodeId family_union(NodeId p, NodeId q);
  NodeId family_intersection(NodeId p, NodeId q);
  NodeId family_difference(NodeId p, NodeId q);
  /// Minato's cofactor operators: subset0 = members not containing var;
  /// subset1 = members containing var, with var factored out (removed),
  /// i.e. { A \ {var} : A ∈ f, var ∈ A }.
  NodeId subset0(NodeId f, int var);
  NodeId subset1(NodeId f, int var);
  /// Toggles membership of var in every set.
  NodeId change(NodeId f, int var);

  // --- queries ---------------------------------------------------------------
  bool eval(NodeId f, std::uint64_t assignment) const;
  tt::TruthTable to_truth_table(NodeId f) const;

  /// Number of sets in the family (= satisfying assignments).
  std::uint64_t count(NodeId f) const;

  /// All member sets, ascending by mask value. Intended for small families.
  std::vector<util::Mask> enumerate(NodeId f) const;

  /// Non-terminal node count reachable from f.
  std::uint64_t size(NodeId f) const;

  std::vector<std::uint64_t> level_widths(NodeId f) const;

  std::string to_dot(NodeId f, const std::string& name = "zdd") const;

 private:
  struct PairHash {
    std::size_t operator()(std::uint64_t k) const {
      k ^= k >> 33;
      k *= 0xff51afd7ed558ccdull;
      k ^= k >> 33;
      return static_cast<std::size_t>(k);
    }
  };

  int n_;
  std::vector<int> order_;
  std::vector<int> var_to_level_;
  std::vector<Node> pool_;
  std::vector<std::unordered_map<std::uint64_t, NodeId, PairHash>> unique_;
  std::unordered_map<std::uint64_t, NodeId, PairHash> op_cache_;
};

}  // namespace ovo::zdd
