#pragma once
// Zero-suppressed Binary Decision Diagram (ZDD) package [Min93].
//
// Same arena/canonicity design as bdd::Manager, but with Minato's
// zero-suppression rule: a node whose 1-edge points to the false terminal
// is removed (replaced by its 0-child).  A skipped level on a path means
// "this variable must be 0".  ZDDs canonically represent families of sets
// (the satisfying assignments viewed as subsets of the variable set) and
// are the paper's second minimization target (Remark 2 / Appendix D).
//
// Storage lives in the shared ovo::ds node-store layer (arena, per-level
// open-addressed unique tables, bounded op cache); see docs/INTERNALS.md.

#include <cstdint>
#include <string>
#include <vector>

#include "ds/computed_cache.hpp"
#include "ds/diagram_store.hpp"
#include "tt/truth_table.hpp"
#include "util/check.hpp"

namespace ovo::zdd {

using NodeId = std::uint32_t;

inline constexpr NodeId kEmpty = 0;  ///< false terminal: the empty family {}
inline constexpr NodeId kUnit = 1;   ///< true terminal: the family { {} }

struct Node {
  std::int32_t level;
  NodeId lo = kEmpty;
  NodeId hi = kEmpty;
};

class Manager : public ds::DiagramStoreBase<Manager> {
  using Base = ds::DiagramStoreBase<Manager>;
  friend Base;

 public:
  explicit Manager(int num_vars);
  Manager(int num_vars, std::vector<int> order);

  bool is_terminal(NodeId id) const { return id <= kUnit; }
  Node node(NodeId id) const {
    return Node{arena_.level(id), arena_.lo(id), arena_.hi(id)};
  }

  struct Stats {
    std::size_t pool_nodes = 0;
    std::size_t unique_entries = 0;
    std::size_t cache_entries = 0;  ///< live op-cache entries
    ds::TableStats unique;
    ds::CacheStats cache;

    /// See bdd::Manager::Stats::to_ledger — same ds.* metric slots.
    void to_ledger(obs::Ledger& l) const {
      l.record(obs::Metric::kDsPoolNodes, pool_nodes);
      l.record(obs::Metric::kDsUniqueEntries, unique_entries);
      l.record(obs::Metric::kDsCacheEntries, cache_entries);
      unique.to_ledger(l);
      cache.to_ledger(l);
    }
  };
  Stats stats() const;

  /// Reduced unique node; applies the zero-suppression rule (hi == kEmpty
  /// => lo) and hash consing.
  NodeId make(int level, NodeId lo, NodeId hi) {
    return make_node(level, lo, hi);
  }

  /// Canonical ZDD of the characteristic function `t` under this ordering.
  NodeId from_truth_table(const tt::TruthTable& t);

  /// ZDD of an explicit family of sets (each set a variable mask).
  NodeId from_family(const std::vector<util::Mask>& sets);

  /// The family containing exactly one set.
  NodeId single_set(util::Mask set);

  // --- family algebra [Min93] ------------------------------------------------
  NodeId family_union(NodeId p, NodeId q);
  NodeId family_intersection(NodeId p, NodeId q);
  NodeId family_difference(NodeId p, NodeId q);
  /// Minato's cofactor operators: subset0 = members not containing var;
  /// subset1 = members containing var, with var factored out (removed),
  /// i.e. { A \ {var} : A ∈ f, var ∈ A }.
  NodeId subset0(NodeId f, int var);
  NodeId subset1(NodeId f, int var);
  /// Toggles membership of var in every set.
  NodeId change(NodeId f, int var);

  // --- queries ---------------------------------------------------------------
  bool eval(NodeId f, std::uint64_t assignment) const;
  tt::TruthTable to_truth_table(NodeId f) const;

  /// Number of sets in the family (= satisfying assignments).
  std::uint64_t count(NodeId f) const;

  /// All member sets, ascending by mask value. Intended for small families.
  std::vector<util::Mask> enumerate(NodeId f) const;

  // size(f) and level_widths(f) are inherited from ds::DiagramStoreBase.

  std::string to_dot(NodeId f, const std::string& name = "zdd") const;

 private:
  /// Zero-suppression: a suppressed 1-edge collapses to the 0-child.
  static bool reduce_edge(NodeId lo, NodeId hi, NodeId* out) {
    if (hi == kEmpty) {
      *out = lo;
      return true;
    }
    return false;
  }

  ds::ComputedCache op_cache_;
};

}  // namespace ovo::zdd
