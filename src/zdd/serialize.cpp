#include "zdd/serialize.hpp"

#include <sstream>
#include <vector>

#include "ds/unique_table.hpp"
#include "util/check.hpp"

namespace ovo::zdd {

std::string save_zdd(const Manager& m, NodeId root) {
  ds::UniqueTable index;
  index.insert(kEmpty, 0);
  index.insert(kUnit, 1);
  std::vector<NodeId> ordered;
  auto rec = [&](auto&& self, NodeId u) -> void {
    if (index.find(u) != nullptr) return;
    const Node un = m.node(u);
    self(self, un.lo);
    self(self, un.hi);
    index.insert(u, static_cast<std::uint32_t>(2 + ordered.size()));
    ordered.push_back(u);
  };
  rec(rec, root);

  std::ostringstream os;
  os << "ovo-zdd 1\n";
  os << "n " << m.num_vars() << "\n";
  os << "order";
  for (const int v : m.order()) os << ' ' << v;
  os << "\n";
  os << "nodes " << ordered.size() << "\n";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const Node un = m.node(ordered[i]);
    os << (2 + i) << ' ' << un.level << ' ' << *index.find(un.lo) << ' '
       << *index.find(un.hi) << "\n";
  }
  os << "root " << *index.find(root) << "\n";
  return os.str();
}

LoadedZdd load_zdd(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  int version = 0;
  OVO_CHECK_MSG((is >> word >> version) && word == "ovo-zdd" && version == 1,
                "load_zdd: bad header");
  int n = 0;
  OVO_CHECK_MSG((is >> word >> n) && word == "n" && n >= 0,
                "load_zdd: bad variable count");
  OVO_CHECK_MSG((is >> word) && word == "order", "load_zdd: missing order");
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int& v : order)
    OVO_CHECK_MSG(static_cast<bool>(is >> v), "load_zdd: truncated order");
  std::size_t count = 0;
  OVO_CHECK_MSG((is >> word >> count) && word == "nodes",
                "load_zdd: missing node count");

  LoadedZdd out{Manager(n, order), kEmpty};
  std::vector<NodeId> id_map{kEmpty, kUnit};
  id_map.reserve(count + 2);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t idx = 0;
    int level = 0;
    std::size_t lo = 0, hi = 0;
    OVO_CHECK_MSG(static_cast<bool>(is >> idx >> level >> lo >> hi),
                  "load_zdd: truncated node table");
    OVO_CHECK_MSG(idx == 2 + i, "load_zdd: node indices must be dense");
    OVO_CHECK_MSG(lo < id_map.size() && hi < id_map.size(),
                  "load_zdd: dangling child reference");
    id_map.push_back(out.manager.make(level, id_map[lo], id_map[hi]));
  }
  std::size_t root_idx = 0;
  OVO_CHECK_MSG((is >> word >> root_idx) && word == "root",
                "load_zdd: missing root");
  OVO_CHECK_MSG(root_idx < id_map.size(), "load_zdd: dangling root");
  out.root = id_map[root_idx];
  return out;
}

}  // namespace ovo::zdd
