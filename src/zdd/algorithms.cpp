#include "zdd/algorithms.hpp"

#include <limits>

#include "ds/hash.hpp"
#include "ds/unique_table.hpp"
#include "util/check.hpp"

namespace ovo::zdd {

namespace {

// Recursion memos keyed on the (p, q) operand pair.  Distinct keys never
// recurse back into themselves (operands only get deeper), so each key is
// computed and inserted exactly once.
using Memo = ds::UniqueTable;

std::uint64_t key(NodeId p, NodeId q) { return ds::pack_pair(p, q); }

NodeId join_rec(Manager& m, NodeId p, NodeId q, Memo& memo) {
  if (p == kEmpty || q == kEmpty) return kEmpty;
  if (p == kUnit) return q;
  if (q == kUnit) return p;
  if (p > q) std::swap(p, q);  // commutative
  if (const std::uint32_t* hit = memo.find(key(p, q))) return *hit;
  const Node& pn = m.node(p);
  const Node& qn = m.node(q);
  NodeId out;
  if (pn.level < qn.level) {
    out = m.make(pn.level, join_rec(m, pn.lo, q, memo),
                 join_rec(m, pn.hi, q, memo));
  } else if (pn.level > qn.level) {
    out = m.make(qn.level, join_rec(m, p, qn.lo, memo),
                 join_rec(m, p, qn.hi, memo));
  } else {
    const NodeId hi = m.family_union(
        m.family_union(join_rec(m, pn.hi, qn.hi, memo),
                       join_rec(m, pn.hi, qn.lo, memo)),
        join_rec(m, pn.lo, qn.hi, memo));
    out = m.make(pn.level, join_rec(m, pn.lo, qn.lo, memo), hi);
  }
  memo.insert(key(p, q), out);
  return out;
}

NodeId meet_rec(Manager& m, NodeId p, NodeId q, Memo& memo) {
  if (p == kEmpty || q == kEmpty) return kEmpty;
  if (p == kUnit || q == kUnit) return kUnit;
  if (p > q) std::swap(p, q);
  if (const std::uint32_t* hit = memo.find(key(p, q))) return *hit;
  const Node& pn = m.node(p);
  const Node& qn = m.node(q);
  NodeId out;
  if (pn.level < qn.level) {
    out = meet_rec(m, m.family_union(pn.lo, pn.hi), q, memo);
  } else if (pn.level > qn.level) {
    out = meet_rec(m, p, m.family_union(qn.lo, qn.hi), memo);
  } else {
    const NodeId lo = m.family_union(
        m.family_union(meet_rec(m, pn.lo, qn.lo, memo),
                       meet_rec(m, pn.lo, qn.hi, memo)),
        meet_rec(m, pn.hi, qn.lo, memo));
    out = m.make(pn.level, lo, meet_rec(m, pn.hi, qn.hi, memo));
  }
  memo.insert(key(p, q), out);
  return out;
}

NodeId nonsubsets_rec(Manager& m, NodeId p, NodeId q, Memo& memo);
NodeId nonsupersets_rec(Manager& m, NodeId p, NodeId q, Memo& memo);

NodeId nonsubsets_rec(Manager& m, NodeId p, NodeId q, Memo& memo) {
  if (q == kEmpty) return p;
  if (p == kEmpty || p == kUnit) return kEmpty;  // empty set ⊆ any B ∈ q
  if (p == q) return kEmpty;
  if (const std::uint32_t* hit = memo.find(key(p, q))) return *hit;
  const Node& pn = m.node(p);
  NodeId out;
  if (q == kUnit) {
    // Only ∅ is a subset of ∅; p's node members all contain a variable.
    // Members of pn.lo must still be checked against {∅} recursively.
    out = m.make(pn.level, nonsubsets_rec(m, pn.lo, kUnit, memo), pn.hi);
  } else {
    const Node& qn = m.node(q);
    if (pn.level < qn.level) {
      // Members containing var(pn.level) cannot be subsets of any B ∈ q.
      out = m.make(pn.level, nonsubsets_rec(m, pn.lo, q, memo), pn.hi);
    } else if (pn.level > qn.level) {
      out = nonsubsets_rec(m, p, m.family_union(qn.lo, qn.hi), memo);
    } else {
      out = m.make(pn.level,
                   nonsubsets_rec(m, pn.lo,
                                  m.family_union(qn.lo, qn.hi), memo),
                   nonsubsets_rec(m, pn.hi, qn.hi, memo));
    }
  }
  memo.insert(key(p, q), out);
  return out;
}

NodeId nonsupersets_rec(Manager& m, NodeId p, NodeId q, Memo& memo) {
  if (q == kEmpty) return p;
  if (q == kUnit || p == kEmpty) return kEmpty;  // ∅ ⊆ every member of p
  if (p == q) return kEmpty;
  if (const std::uint32_t* hit = memo.find(key(p, q))) return *hit;
  NodeId out;
  if (p == kUnit) {
    // A = ∅ is a superset only of ∅, and q does not contain ∅ at this
    // point only if every path... q may still contain ∅ through lo-chains.
    NodeId walk = q;
    while (!m.is_terminal(walk)) walk = m.node(walk).lo;
    out = walk == kUnit ? kEmpty : kUnit;
  } else {
    const Node& pn = m.node(p);
    const Node& qn = m.node(q);
    if (pn.level < qn.level) {
      out = m.make(pn.level, nonsupersets_rec(m, pn.lo, q, memo),
                   nonsupersets_rec(m, pn.hi, q, memo));
    } else if (pn.level > qn.level) {
      // No member of p contains var(qn.level): members B containing it
      // can never be subsets; only qn.lo matters.
      out = nonsupersets_rec(m, p, qn.lo, memo);
    } else {
      const NodeId hi =
          m.family_intersection(nonsupersets_rec(m, pn.hi, qn.lo, memo),
                                nonsupersets_rec(m, pn.hi, qn.hi, memo));
      out = m.make(pn.level, nonsupersets_rec(m, pn.lo, qn.lo, memo), hi);
    }
  }
  memo.insert(key(p, q), out);
  return out;
}

NodeId maximal_rec(Manager& m, NodeId p, Memo& memo, Memo& ns_memo) {
  if (m.is_terminal(p)) return p;
  if (const std::uint32_t* hit = memo.find(key(p, 0))) return *hit;
  const Node& pn = m.node(p);
  const NodeId hi = maximal_rec(m, pn.hi, memo, ns_memo);
  const NodeId lo = nonsubsets_rec(
      m, maximal_rec(m, pn.lo, memo, ns_memo), pn.hi, ns_memo);
  const NodeId out = m.make(pn.level, lo, hi);
  memo.insert(key(p, 0), out);
  return out;
}

NodeId minimal_rec(Manager& m, NodeId p, Memo& memo, Memo& ns_memo) {
  if (m.is_terminal(p)) return p;
  if (const std::uint32_t* hit = memo.find(key(p, 0))) return *hit;
  const Node& pn = m.node(p);
  const NodeId lo = minimal_rec(m, pn.lo, memo, ns_memo);
  const NodeId hi = nonsupersets_rec(
      m, minimal_rec(m, pn.hi, memo, ns_memo), pn.lo, ns_memo);
  const NodeId out = m.make(pn.level, lo, hi);
  memo.insert(key(p, 0), out);
  return out;
}

}  // namespace

NodeId family_join(Manager& m, NodeId p, NodeId q) {
  Memo memo;
  return join_rec(m, p, q, memo);
}

NodeId family_meet(Manager& m, NodeId p, NodeId q) {
  Memo memo;
  return meet_rec(m, p, q, memo);
}

NodeId maximal_sets(Manager& m, NodeId p) {
  Memo memo, ns;
  return maximal_rec(m, p, memo, ns);
}

NodeId minimal_sets(Manager& m, NodeId p) {
  Memo memo, ns;
  return minimal_rec(m, p, memo, ns);
}

NodeId nonsupersets(Manager& m, NodeId p, NodeId q) {
  Memo memo;
  return nonsupersets_rec(m, p, q, memo);
}

NodeId nonsubsets(Manager& m, NodeId p, NodeId q) {
  Memo memo;
  return nonsubsets_rec(m, p, q, memo);
}

std::optional<WeightedSet> min_weight_set(const Manager& m, NodeId p,
                                          const std::vector<double>& weight) {
  OVO_CHECK_MSG(static_cast<int>(weight.size()) == m.num_vars(),
                "min_weight_set: weight arity mismatch");
  if (p == kEmpty) return std::nullopt;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> memo_set(m.pool_size(), 0);
  std::vector<double> memo(m.pool_size(), 0.0);
  auto best = [&](auto&& self, NodeId u) -> double {
    if (u == kEmpty) return kInf;
    if (u == kUnit) return 0.0;
    if (memo_set[u]) return memo[u];
    const Node un = m.node(u);
    const double w =
        weight[static_cast<std::size_t>(m.var_at_level(un.level))];
    const double b = std::min(self(self, un.lo), w + self(self, un.hi));
    memo_set[u] = 1;
    memo[u] = b;
    return b;
  };
  WeightedSet out;
  out.weight = best(best, p);
  NodeId u = p;
  while (u != kUnit) {
    const Node& un = m.node(u);
    const int var = m.var_at_level(un.level);
    const double w = weight[static_cast<std::size_t>(var)];
    if (w + best(best, un.hi) < best(best, un.lo)) {
      out.set |= util::Mask{1} << var;
      u = un.hi;
    } else {
      u = un.lo;
    }
  }
  return out;
}

}  // namespace ovo::zdd
