#include "zdd/manager.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "ds/hash.hpp"

namespace ovo::zdd {

namespace {
// Op tag goes in the cache's 32-bit word; (p, q) pack into the 64-bit word.
enum OpTag : std::uint32_t { kUnion = 1, kIntersect = 2, kDiff = 3 };
}  // namespace

Manager::Manager(int num_vars) : Manager(num_vars, [num_vars] {
  std::vector<int> id(static_cast<std::size_t>(num_vars));
  std::iota(id.begin(), id.end(), 0);
  return id;
}()) {}

Manager::Manager(int num_vars, std::vector<int> order)
    : Base(num_vars, std::move(order), tt::TruthTable::kMaxVars,
           "zdd::Manager") {
  arena_.push(n_, kEmpty, kEmpty);
  arena_.push(n_, kUnit, kUnit);
}

Manager::Stats Manager::stats() const {
  const ds::StoreStats base = store_stats();
  Stats s;
  s.pool_nodes = base.pool_nodes;
  s.unique_entries = base.unique_entries;
  s.cache_entries = op_cache_.live_entries();
  s.unique = base.unique;
  s.cache = op_cache_.stats();
  return s;
}

NodeId Manager::from_truth_table(const tt::TruthTable& t) {
  OVO_CHECK_MSG(t.num_vars() == n_, "zdd: arity mismatch");
  if (n_ == 0) return t.get(0) ? kUnit : kEmpty;
  reserve_for_table_build(t.size());
  std::vector<NodeId> cells(t.size());
  for (std::uint64_t a = 0; a < t.size(); ++a) {
    std::uint64_t assignment = 0;
    for (int j = 0; j < n_; ++j)
      assignment |= ((a >> j) & 1u) << order_[static_cast<std::size_t>(j)];
    cells[a] = t.get(assignment) ? kUnit : kEmpty;
  }
  for (int level = n_ - 1; level >= 0; --level) {
    const std::uint64_t half = std::uint64_t{1} << level;
    std::vector<NodeId> next(half);
    for (std::uint64_t a = 0; a < half; ++a)
      next[a] = make(level, cells[a], cells[a | half]);
    cells = std::move(next);
  }
  return cells[0];
}

NodeId Manager::single_set(util::Mask set) {
  OVO_CHECK(util::is_subset(set, util::full_mask(n_)));
  // Build bottom-up over the member variables' levels (descending level).
  std::vector<int> levels;
  util::for_each_bit(set, [&](int v) { levels.push_back(level_of_var(v)); });
  std::sort(levels.begin(), levels.end(), std::greater<int>());
  NodeId f = kUnit;
  for (int level : levels) f = make(level, kEmpty, f);
  return f;
}

NodeId Manager::from_family(const std::vector<util::Mask>& sets) {
  NodeId f = kEmpty;
  for (const util::Mask s : sets) f = family_union(f, single_set(s));
  return f;
}

NodeId Manager::family_union(NodeId p, NodeId q) {
  if (p == kEmpty) return q;
  if (q == kEmpty || p == q) return p;
  const std::uint64_t key = ds::pack_pair(std::min(p, q), std::max(p, q));
  if (const auto cached = op_cache_.lookup(key, kUnion)) return *cached;
  const std::int32_t pl = arena_.level(p);
  const std::int32_t ql = arena_.level(q);
  NodeId out;
  if (pl < ql) {
    out = make(pl, family_union(arena_.lo(p), q), arena_.hi(p));
  } else if (pl > ql) {
    out = make(ql, family_union(p, arena_.lo(q)), arena_.hi(q));
  } else {
    out = make(pl, family_union(arena_.lo(p), arena_.lo(q)),
               family_union(arena_.hi(p), arena_.hi(q)));
  }
  op_cache_.store(key, kUnion, out);
  return out;
}

NodeId Manager::family_intersection(NodeId p, NodeId q) {
  if (p == kEmpty || q == kEmpty) return kEmpty;
  if (p == q) return p;
  const std::uint64_t key = ds::pack_pair(std::min(p, q), std::max(p, q));
  if (const auto cached = op_cache_.lookup(key, kIntersect)) return *cached;
  const std::int32_t pl = arena_.level(p);
  const std::int32_t ql = arena_.level(q);
  NodeId out;
  if (pl < ql) {
    out = family_intersection(arena_.lo(p), q);
  } else if (pl > ql) {
    out = family_intersection(p, arena_.lo(q));
  } else {
    out = make(pl, family_intersection(arena_.lo(p), arena_.lo(q)),
               family_intersection(arena_.hi(p), arena_.hi(q)));
  }
  op_cache_.store(key, kIntersect, out);
  return out;
}

NodeId Manager::family_difference(NodeId p, NodeId q) {
  if (p == kEmpty || p == q) return kEmpty;
  if (q == kEmpty) return p;
  const std::uint64_t key = ds::pack_pair(p, q);
  if (const auto cached = op_cache_.lookup(key, kDiff)) return *cached;
  const std::int32_t pl = arena_.level(p);
  const std::int32_t ql = arena_.level(q);
  NodeId out;
  if (pl < ql) {
    out = make(pl, family_difference(arena_.lo(p), q), arena_.hi(p));
  } else if (pl > ql) {
    out = family_difference(p, arena_.lo(q));
  } else {
    out = make(pl, family_difference(arena_.lo(p), arena_.lo(q)),
               family_difference(arena_.hi(p), arena_.hi(q)));
  }
  op_cache_.store(key, kDiff, out);
  return out;
}

NodeId Manager::subset0(NodeId f, int var) {
  const int level = level_of_var(var);
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    const std::int32_t ul = arena_.level(u);
    if (ul > level) return u;
    if (ul == level) return arena_.lo(u);
    return make(ul, self(self, arena_.lo(u)), self(self, arena_.hi(u)));
  };
  return rec(rec, f);
}

NodeId Manager::subset1(NodeId f, int var) {
  const int level = level_of_var(var);
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    const std::int32_t ul = arena_.level(u);
    if (ul > level) return kEmpty;
    if (ul == level) return arena_.hi(u);
    return make(ul, self(self, arena_.lo(u)), self(self, arena_.hi(u)));
  };
  return rec(rec, f);
}

NodeId Manager::change(NodeId f, int var) {
  const int level = level_of_var(var);
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    const std::int32_t ul = arena_.level(u);
    if (ul > level) return make(level, kEmpty, u);
    if (ul == level) return make(level, arena_.hi(u), arena_.lo(u));
    return make(ul, self(self, arena_.lo(u)), self(self, arena_.hi(u)));
  };
  return rec(rec, f);
}

bool Manager::eval(NodeId f, std::uint64_t assignment) const {
  int level = 0;
  while (!is_terminal(f)) {
    const std::int32_t fl = arena_.level(f);
    for (int l = level; l < fl; ++l)
      if ((assignment >> order_[static_cast<std::size_t>(l)]) & 1u)
        return false;  // skipped level with a 1 assignment: suppressed zero
    const int var = order_[static_cast<std::size_t>(fl)];
    f = ((assignment >> var) & 1u) ? arena_.hi(f) : arena_.lo(f);
    level = fl + 1;
  }
  if (f == kEmpty) return false;
  for (int l = level; l < n_; ++l)
    if ((assignment >> order_[static_cast<std::size_t>(l)]) & 1u) return false;
  return true;
}

tt::TruthTable Manager::to_truth_table(NodeId f) const {
  return tt::TruthTable::tabulate(
      n_, [&](std::uint64_t a) { return eval(f, a); });
}

std::uint64_t Manager::count(NodeId f) const {
  constexpr std::uint64_t kUnset = ~std::uint64_t{0};
  std::vector<std::uint64_t> memo(arena_.size(), kUnset);
  auto rec = [&](auto&& self, NodeId u) -> std::uint64_t {
    if (u == kEmpty) return 0;
    if (u == kUnit) return 1;
    if (memo[u] != kUnset) return memo[u];
    const std::uint64_t c = self(self, arena_.lo(u)) + self(self, arena_.hi(u));
    memo[u] = c;
    return c;
  };
  return rec(rec, f);
}

std::vector<util::Mask> Manager::enumerate(NodeId f) const {
  std::vector<util::Mask> out;
  auto rec = [&](auto&& self, NodeId u, util::Mask acc) -> void {
    if (u == kEmpty) return;
    if (u == kUnit) {
      out.push_back(acc);
      return;
    }
    const int var = order_[static_cast<std::size_t>(arena_.level(u))];
    self(self, arena_.lo(u), acc);
    self(self, arena_.hi(u), acc | (util::Mask{1} << var));
  };
  rec(rec, f, 0);
  std::sort(out.begin(), out.end());
  return out;
}

std::string Manager::to_dot(NodeId f, const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n  rankdir=TB;\n";
  os << "  node_0 [label=\"0\", shape=box];\n";
  os << "  node_1 [label=\"1\", shape=box];\n";
  std::vector<NodeId> stack{f};
  std::vector<std::uint8_t> seen(arena_.size(), 0);
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (is_terminal(u) || seen[u]) continue;
    seen[u] = 1;
    const Node un = node(u);
    os << "  node_" << u << " [label=\"x"
       << order_[static_cast<std::size_t>(un.level)] + 1
       << "\", shape=circle];\n";
    os << "  node_" << u << " -> node_" << un.lo << " [style=dotted];\n";
    os << "  node_" << u << " -> node_" << un.hi << " [style=solid];\n";
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  os << "}\n";
  return os.str();
}

}  // namespace ovo::zdd
