#include "zdd/manager.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/combinatorics.hpp"

namespace ovo::zdd {

namespace {
enum OpTag : std::uint64_t { kUnion = 1, kIntersect = 2, kDiff = 3 };

std::uint64_t cache_key(std::uint64_t tag, NodeId p, NodeId q) {
  OVO_DCHECK(p < (1u << 30) && q < (1u << 30));
  return (tag << 60) | (std::uint64_t{p} << 30) | q;
}
}  // namespace

Manager::Manager(int num_vars) : Manager(num_vars, [num_vars] {
  std::vector<int> id(static_cast<std::size_t>(num_vars));
  std::iota(id.begin(), id.end(), 0);
  return id;
}()) {}

Manager::Manager(int num_vars, std::vector<int> order)
    : n_(num_vars), order_(std::move(order)) {
  OVO_CHECK_MSG(num_vars >= 0 && num_vars <= tt::TruthTable::kMaxVars,
                "zdd::Manager: num_vars out of range");
  OVO_CHECK_MSG(static_cast<int>(order_.size()) == n_,
                "zdd::Manager: order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order_),
                "zdd::Manager: order not a permutation");
  var_to_level_ = util::inverse_permutation(order_);
  pool_.push_back(Node{n_, kEmpty, kEmpty});
  pool_.push_back(Node{n_, kUnit, kUnit});
  unique_.resize(static_cast<std::size_t>(n_));
}

NodeId Manager::make(int level, NodeId lo, NodeId hi) {
  OVO_CHECK(level >= 0 && level < n_);
  OVO_DCHECK(pool_[lo].level > level && pool_[hi].level > level);
  if (hi == kEmpty) return lo;  // zero-suppression rule
  auto& table = unique_[static_cast<std::size_t>(level)];
  const std::uint64_t key = (std::uint64_t{lo} << 32) | hi;
  if (const auto it = table.find(key); it != table.end()) return it->second;
  const NodeId id = static_cast<NodeId>(pool_.size());
  pool_.push_back(Node{level, lo, hi});
  table.emplace(key, id);
  return id;
}

NodeId Manager::from_truth_table(const tt::TruthTable& t) {
  OVO_CHECK_MSG(t.num_vars() == n_, "zdd: arity mismatch");
  if (n_ == 0) return t.get(0) ? kUnit : kEmpty;
  std::vector<NodeId> cells(t.size());
  for (std::uint64_t a = 0; a < t.size(); ++a) {
    std::uint64_t assignment = 0;
    for (int j = 0; j < n_; ++j)
      assignment |= ((a >> j) & 1u) << order_[static_cast<std::size_t>(j)];
    cells[a] = t.get(assignment) ? kUnit : kEmpty;
  }
  for (int level = n_ - 1; level >= 0; --level) {
    const std::uint64_t half = std::uint64_t{1} << level;
    std::vector<NodeId> next(half);
    for (std::uint64_t a = 0; a < half; ++a)
      next[a] = make(level, cells[a], cells[a | half]);
    cells = std::move(next);
  }
  return cells[0];
}

NodeId Manager::single_set(util::Mask set) {
  OVO_CHECK(util::is_subset(set, util::full_mask(n_)));
  // Build bottom-up over the member variables' levels (descending level).
  std::vector<int> levels;
  util::for_each_bit(set, [&](int v) { levels.push_back(level_of_var(v)); });
  std::sort(levels.begin(), levels.end(), std::greater<int>());
  NodeId f = kUnit;
  for (int level : levels) f = make(level, kEmpty, f);
  return f;
}

NodeId Manager::from_family(const std::vector<util::Mask>& sets) {
  NodeId f = kEmpty;
  for (const util::Mask s : sets) f = family_union(f, single_set(s));
  return f;
}

NodeId Manager::family_union(NodeId p, NodeId q) {
  if (p == kEmpty) return q;
  if (q == kEmpty || p == q) return p;
  const std::uint64_t key =
      cache_key(kUnion, std::min(p, q), std::max(p, q));
  if (const auto it = op_cache_.find(key); it != op_cache_.end())
    return it->second;
  const Node& pn = pool_[p];
  const Node& qn = pool_[q];
  NodeId out;
  if (pn.level < qn.level) {
    out = make(pn.level, family_union(pn.lo, q), pn.hi);
  } else if (pn.level > qn.level) {
    out = make(qn.level, family_union(p, qn.lo), qn.hi);
  } else {
    out = make(pn.level, family_union(pn.lo, qn.lo),
               family_union(pn.hi, qn.hi));
  }
  op_cache_.emplace(key, out);
  return out;
}

NodeId Manager::family_intersection(NodeId p, NodeId q) {
  if (p == kEmpty || q == kEmpty) return kEmpty;
  if (p == q) return p;
  const std::uint64_t key =
      cache_key(kIntersect, std::min(p, q), std::max(p, q));
  if (const auto it = op_cache_.find(key); it != op_cache_.end())
    return it->second;
  const Node& pn = pool_[p];
  const Node& qn = pool_[q];
  NodeId out;
  if (pn.level < qn.level) {
    out = family_intersection(pn.lo, q);
  } else if (pn.level > qn.level) {
    out = family_intersection(p, qn.lo);
  } else {
    out = make(pn.level, family_intersection(pn.lo, qn.lo),
               family_intersection(pn.hi, qn.hi));
  }
  op_cache_.emplace(key, out);
  return out;
}

NodeId Manager::family_difference(NodeId p, NodeId q) {
  if (p == kEmpty || p == q) return kEmpty;
  if (q == kEmpty) return p;
  const std::uint64_t key = cache_key(kDiff, p, q);
  if (const auto it = op_cache_.find(key); it != op_cache_.end())
    return it->second;
  const Node& pn = pool_[p];
  const Node& qn = pool_[q];
  NodeId out;
  if (pn.level < qn.level) {
    out = make(pn.level, family_difference(pn.lo, q), pn.hi);
  } else if (pn.level > qn.level) {
    out = family_difference(p, qn.lo);
  } else {
    out = make(pn.level, family_difference(pn.lo, qn.lo),
               family_difference(pn.hi, qn.hi));
  }
  op_cache_.emplace(key, out);
  return out;
}

NodeId Manager::subset0(NodeId f, int var) {
  const int level = level_of_var(var);
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    const Node& un = pool_[u];
    if (un.level > level) return u;
    if (un.level == level) return un.lo;
    return make(un.level, self(self, un.lo), self(self, un.hi));
  };
  return rec(rec, f);
}

NodeId Manager::subset1(NodeId f, int var) {
  const int level = level_of_var(var);
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    const Node& un = pool_[u];
    if (un.level > level) return kEmpty;
    if (un.level == level) return un.hi;
    return make(un.level, self(self, un.lo), self(self, un.hi));
  };
  return rec(rec, f);
}

NodeId Manager::change(NodeId f, int var) {
  const int level = level_of_var(var);
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    const Node& un = pool_[u];
    if (un.level > level) return make(level, kEmpty, u);
    if (un.level == level) return make(level, un.hi, un.lo);
    return make(un.level, self(self, un.lo), self(self, un.hi));
  };
  return rec(rec, f);
}

bool Manager::eval(NodeId f, std::uint64_t assignment) const {
  int level = 0;
  while (!is_terminal(f)) {
    const Node& fn = pool_[f];
    for (int l = level; l < fn.level; ++l)
      if ((assignment >> order_[static_cast<std::size_t>(l)]) & 1u)
        return false;  // skipped level with a 1 assignment: suppressed zero
    const int var = order_[static_cast<std::size_t>(fn.level)];
    f = ((assignment >> var) & 1u) ? fn.hi : fn.lo;
    level = fn.level + 1;
  }
  if (f == kEmpty) return false;
  for (int l = level; l < n_; ++l)
    if ((assignment >> order_[static_cast<std::size_t>(l)]) & 1u) return false;
  return true;
}

tt::TruthTable Manager::to_truth_table(NodeId f) const {
  return tt::TruthTable::tabulate(
      n_, [&](std::uint64_t a) { return eval(f, a); });
}

std::uint64_t Manager::count(NodeId f) const {
  std::unordered_map<NodeId, std::uint64_t> memo;
  auto rec = [&](auto&& self, NodeId u) -> std::uint64_t {
    if (u == kEmpty) return 0;
    if (u == kUnit) return 1;
    if (const auto it = memo.find(u); it != memo.end()) return it->second;
    const Node& un = pool_[u];
    const std::uint64_t c = self(self, un.lo) + self(self, un.hi);
    memo.emplace(u, c);
    return c;
  };
  return rec(rec, f);
}

std::vector<util::Mask> Manager::enumerate(NodeId f) const {
  std::vector<util::Mask> out;
  auto rec = [&](auto&& self, NodeId u, util::Mask acc) -> void {
    if (u == kEmpty) return;
    if (u == kUnit) {
      out.push_back(acc);
      return;
    }
    const Node& un = pool_[u];
    const int var = order_[static_cast<std::size_t>(un.level)];
    self(self, un.lo, acc);
    self(self, un.hi, acc | (util::Mask{1} << var));
  };
  rec(rec, f, 0);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t Manager::size(NodeId f) const {
  std::uint64_t total = 0;
  for (const std::uint64_t w : level_widths(f)) total += w;
  return total;
}

std::vector<std::uint64_t> Manager::level_widths(NodeId f) const {
  std::vector<std::uint64_t> widths(static_cast<std::size_t>(n_), 0);
  std::vector<NodeId> stack;
  std::unordered_map<NodeId, bool> seen;
  if (!is_terminal(f)) stack.push_back(f);
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (seen.count(u)) continue;
    seen.emplace(u, true);
    const Node& un = pool_[u];
    ++widths[static_cast<std::size_t>(un.level)];
    if (!is_terminal(un.lo)) stack.push_back(un.lo);
    if (!is_terminal(un.hi)) stack.push_back(un.hi);
  }
  return widths;
}

std::string Manager::to_dot(NodeId f, const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n  rankdir=TB;\n";
  os << "  node_0 [label=\"0\", shape=box];\n";
  os << "  node_1 [label=\"1\", shape=box];\n";
  std::vector<NodeId> stack{f};
  std::unordered_map<NodeId, bool> seen;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (is_terminal(u) || seen.count(u)) continue;
    seen.emplace(u, true);
    const Node& un = pool_[u];
    os << "  node_" << u << " [label=\"x"
       << order_[static_cast<std::size_t>(un.level)] + 1
       << "\", shape=circle];\n";
    os << "  node_" << u << " -> node_" << un.lo << " [style=dotted];\n";
    os << "  node_" << u << " -> node_" << un.hi << " [style=solid];\n";
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  os << "}\n";
  return os.str();
}

}  // namespace ovo::zdd
