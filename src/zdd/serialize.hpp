#pragma once
// Text serialization of ZDDs (format mirrors bdd/serialize.hpp with an
// `ovo-zdd` header; loaded diagrams are re-interned through make(), so
// they are zero-suppressed-canonical by construction).

#include <cstdint>
#include <string>
#include <vector>

#include "zdd/manager.hpp"

namespace ovo::zdd {

std::string save_zdd(const Manager& m, NodeId root);

struct LoadedZdd {
  Manager manager;
  NodeId root;
};

LoadedZdd load_zdd(const std::string& text);

/// Compact binary form (tag 'Z', version 1); decode mirrors
/// bdd/serialize.hpp's load_bdd_binary — every read bounds-checked via
/// rt::ByteReader, structural violations typed as
/// rt::CheckpointError(kMalformed) or util::CheckError.
std::vector<std::uint8_t> save_zdd_binary(const Manager& m, NodeId root);
LoadedZdd load_zdd_binary(const std::uint8_t* data, std::size_t len);

}  // namespace ovo::zdd
