#pragma once
// Text serialization of ZDDs (format mirrors bdd/serialize.hpp with an
// `ovo-zdd` header; loaded diagrams are re-interned through make(), so
// they are zero-suppressed-canonical by construction).

#include <string>

#include "zdd/manager.hpp"

namespace ovo::zdd {

std::string save_zdd(const Manager& m, NodeId root);

struct LoadedZdd {
  Manager manager;
  NodeId root;
};

LoadedZdd load_zdd(const std::string& text);

}  // namespace ovo::zdd
