#pragma once
// Minato's extended family algebra over ZDDs — the operator set that makes
// ZDDs the tool of choice for combinatorial enumeration (the application
// domain the paper's abstract highlights for its ZDD variant).
//
// Families are sets of subsets of the variable universe; all operators
// are recursive with memoization over the canonical node ids.

#include <cstdint>
#include <optional>
#include <vector>

#include "zdd/manager.hpp"

namespace ovo::zdd {

/// Join (aka cross union): { A ∪ B : A ∈ p, B ∈ q }.
NodeId family_join(Manager& m, NodeId p, NodeId q);

/// Meet (aka cross intersection): { A ∩ B : A ∈ p, B ∈ q }.
NodeId family_meet(Manager& m, NodeId p, NodeId q);

/// Members of p that are maximal (no proper superset inside p).
NodeId maximal_sets(Manager& m, NodeId p);

/// Members of p that are minimal (no proper subset inside p).
NodeId minimal_sets(Manager& m, NodeId p);

/// Members of p that are NOT a superset of any member of q.
/// (Classic use: prune candidate solutions hitting a forbidden pattern.)
NodeId nonsupersets(Manager& m, NodeId p, NodeId q);

/// Members of p that are NOT a subset of any member of q.
NodeId nonsubsets(Manager& m, NodeId p, NodeId q);

/// Minimum total weight over the family (weights per variable, may be
/// negative); nullopt for the empty family.
struct WeightedSet {
  util::Mask set = 0;
  double weight = 0.0;
};
std::optional<WeightedSet> min_weight_set(const Manager& m, NodeId p,
                                          const std::vector<double>& weight);

}  // namespace ovo::zdd
