#include "util/combinatorics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace ovo::util {

double binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double r = 1.0;
  for (int i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i);
    r /= static_cast<double>(i);
  }
  return r;
}

std::uint64_t binomial_u64(int n, int k) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  // 128-bit intermediates: r * num can exceed 64 bits even when the final
  // result fits (e.g. binom(62, 31)), so guarding the multiply in 64 bits
  // would reject representable values.  Only the running quotient — which
  // is itself a binomial coefficient, hence the tightest possible bound —
  // is required to fit.
  unsigned __int128 r = 1;
  for (int i = 1; i <= k; ++i) {
    // r * (n-k+i) / i is always integral at this point.
    r = r * static_cast<unsigned>(n - k + i) / static_cast<unsigned>(i);
    OVO_CHECK_MSG(r <= std::numeric_limits<std::uint64_t>::max(),
                  "binomial_u64 overflow");
  }
  return static_cast<std::uint64_t>(r);
}

double binary_entropy(double d) {
  OVO_CHECK(d >= 0.0 && d <= 1.0);
  if (d == 0.0 || d == 1.0) return 0.0;
  return -d * std::log2(d) - (1.0 - d) * std::log2(1.0 - d);
}

double entropy_bound(int n, int k) {
  OVO_CHECK(n >= 0 && k >= 0 && k <= n);
  if (n == 0) return 1.0;
  return std::exp2(n * binary_entropy(static_cast<double>(k) / n));
}

std::uint64_t combination_rank(Mask m) {
  std::uint64_t rank = 0;
  int i = 1;  // how many elements seen so far
  for_each_bit(m, [&](int b) {
    rank += binomial_u64(b, i);
    ++i;
  });
  return rank;
}

Mask combination_unrank(int n, int k, std::uint64_t rank) {
  OVO_CHECK(k >= 0 && k <= n);
  Mask m = 0;
  for (int i = k; i >= 1; --i) {
    // Largest b with binom(b, i) <= rank.
    int b = i - 1;
    while (b + 1 < n && binomial_u64(b + 1, i) <= rank) ++b;
    OVO_CHECK_MSG(b < n, "combination_unrank: rank out of range");
    m |= Mask{1} << b;
    rank -= binomial_u64(b, i);
    n = b;  // subsequent elements must be below b
  }
  OVO_CHECK_MSG(rank == 0, "combination_unrank: rank out of range");
  return m;
}

BinomialTable::BinomialTable() {
  for (int n = 0; n <= kMaxN; ++n) {
    c_[n][0] = 1;
    for (int k = 1; k <= n; ++k)
      c_[n][k] = c_[n - 1][k - 1] + (k <= n - 1 ? c_[n - 1][k] : 0);
    for (int k = n + 1; k <= kMaxN; ++k) c_[n][k] = 0;
  }
}

Mask BinomialTable::unrank(int n, int k, std::uint64_t rank) const {
  OVO_CHECK(k >= 0 && k <= n && n <= kMaxN);
  Mask m = 0;
  for (int i = k; i >= 1; --i) {
    int b = i - 1;
    while (b + 1 < n && choose(b + 1, i) <= rank) ++b;
    OVO_CHECK_MSG(b < n, "BinomialTable::unrank: rank out of range");
    m |= Mask{1} << b;
    rank -= choose(b, i);
    n = b;
  }
  OVO_CHECK_MSG(rank == 0, "BinomialTable::unrank: rank out of range");
  return m;
}

const BinomialTable& BinomialTable::instance() {
  static const BinomialTable table;
  return table;
}

double factorial(int n) {
  double r = 1.0;
  for (int i = 2; i <= n; ++i) r *= i;
  return r;
}

std::vector<std::vector<int>> all_permutations(int n) {
  OVO_CHECK_MSG(n >= 0 && n <= 10, "all_permutations: n too large");
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  std::vector<std::vector<int>> out;
  do {
    out.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return out;
}

std::vector<int> permutation_unrank(int n, std::uint64_t rank) {
  std::vector<int> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<std::uint64_t> fact(static_cast<std::size_t>(n) + 1, 1);
  for (int i = 1; i <= n; ++i)
    fact[static_cast<std::size_t>(i)] =
        fact[static_cast<std::size_t>(i) - 1] * static_cast<std::uint64_t>(i);
  OVO_CHECK_MSG(rank < fact[static_cast<std::size_t>(n)],
                "permutation_unrank: rank out of range");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = n; i >= 1; --i) {
    const std::uint64_t f = fact[static_cast<std::size_t>(i) - 1];
    const std::size_t idx = static_cast<std::size_t>(rank / f);
    rank %= f;
    out.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return out;
}

std::vector<int> inverse_permutation(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const int v = perm[i];
    OVO_CHECK(v >= 0 && static_cast<std::size_t>(v) < perm.size());
    inv[static_cast<std::size_t>(v)] = static_cast<int>(i);
  }
  return inv;
}

bool is_permutation(const std::vector<int>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (int v : perm) {
    if (v < 0 || static_cast<std::size_t>(v) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace ovo::util
