#pragma once
// Bit-manipulation utilities for subset-indexed dynamic programming.
//
// Subsets of [n] = {1, ..., n} (the paper's variable index set) are encoded
// as 64-bit masks where bit (i-1) represents element i.  All subset
// enumeration needed by the Friedman–Supowit DP (fixed-cardinality sweeps,
// subset-of-mask sweeps) lives here.

#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ovo::util {

using Mask = std::uint64_t;

/// Number of set bits.
inline int popcount(Mask m) { return std::popcount(m); }

/// Index (0-based) of the lowest set bit. Precondition: m != 0.
inline int lowest_bit(Mask m) {
  OVO_DCHECK(m != 0);
  return std::countr_zero(m);
}

/// Mask with the n lowest bits set (n in [0, 64]).
inline Mask full_mask(int n) {
  OVO_DCHECK(n >= 0 && n <= 64);
  return n >= 64 ? ~Mask{0} : ((Mask{1} << n) - 1);
}

/// True if `sub` is a subset of `super`.
inline bool is_subset(Mask sub, Mask super) { return (sub & ~super) == 0; }

/// Gosper's hack: next mask with the same popcount, in increasing numeric
/// order. Returns 0 when the sequence within `full_mask(n)` is exhausted
/// (callers must bound iteration themselves).
inline Mask next_same_popcount(Mask m) {
  OVO_DCHECK(m != 0);
  const Mask c = m & (~m + 1);  // lowest set bit
  const Mask r = m + c;
  return (((r ^ m) >> 2) / c) | r;
}

/// Enumerate all masks of cardinality k within universe [0, n).
/// Calls fn(mask) for each, in increasing numeric order.
template <typename Fn>
void for_each_subset_of_size(int n, int k, Fn&& fn) {
  OVO_DCHECK(n >= 0 && n <= 63);
  OVO_DCHECK(k >= 0 && k <= n);
  if (k == 0) {
    fn(Mask{0});
    return;
  }
  const Mask limit = full_mask(n);
  Mask m = full_mask(k);
  while (m <= limit) {
    fn(m);
    if (m == 0) break;
    const Mask next = next_same_popcount(m);
    if (next <= m) break;  // overflow wrapped
    m = next;
  }
}

/// Enumerate all subsets of `super` (including 0 and super itself).
template <typename Fn>
void for_each_subset_of(Mask super, Fn&& fn) {
  Mask sub = super;
  while (true) {
    fn(sub);
    if (sub == 0) break;
    sub = (sub - 1) & super;
  }
}

/// Enumerate the individual set bits of m as 0-based positions.
template <typename Fn>
void for_each_bit(Mask m, Fn&& fn) {
  while (m != 0) {
    const int b = std::countr_zero(m);
    fn(b);
    m &= m - 1;
  }
}

/// The 0-based positions of set bits, ascending.
inline std::vector<int> bits_of(Mask m) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(popcount(m)));
  for_each_bit(m, [&](int b) { out.push_back(b); });
  return out;
}

/// Mask from a list of 0-based bit positions.
inline Mask mask_of(const std::vector<int>& bits) {
  Mask m = 0;
  for (int b : bits) {
    OVO_DCHECK(b >= 0 && b < 64);
    m |= Mask{1} << b;
  }
  return m;
}

/// PDEP-style bit scatter: distributes the low popcount(mask) bits of
/// `value` into the set-bit positions of `mask` (ascending).  Used to index
/// truth-table cells by assignments to a variable subset.
inline std::uint64_t scatter_bits(std::uint64_t value, Mask mask) {
  std::uint64_t out = 0;
  int src = 0;
  while (mask != 0) {
    const int b = std::countr_zero(mask);
    out |= ((value >> src) & 1u) << b;
    ++src;
    mask &= mask - 1;
  }
  return out;
}

/// Inverse of scatter_bits: gathers bits of `value` at set positions of
/// `mask` into a dense low-order field (ascending).
inline std::uint64_t gather_bits(std::uint64_t value, Mask mask) {
  std::uint64_t out = 0;
  int dst = 0;
  while (mask != 0) {
    const int b = std::countr_zero(mask);
    out |= ((value >> b) & 1u) << dst;
    ++dst;
    mask &= mask - 1;
  }
  return out;
}

}  // namespace ovo::util
