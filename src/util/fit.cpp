#include "util/fit.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ovo::util {

ExponentFit fit_exponent(const std::vector<int>& n,
                         const std::vector<double>& y) {
  OVO_CHECK(n.size() == y.size());
  OVO_CHECK_MSG(n.size() >= 2, "fit_exponent needs >= 2 samples");
  const double m = static_cast<double>(n.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n.size(); ++i) {
    OVO_CHECK_MSG(y[i] > 0.0, "fit_exponent: y must be positive");
    const double x = static_cast<double>(n[i]);
    const double ly = std::log2(y[i]);
    sx += x;
    sy += ly;
    sxx += x * x;
    sxy += x * ly;
  }
  const double denom = m * sxx - sx * sx;
  OVO_CHECK_MSG(denom != 0.0, "fit_exponent: degenerate n values");
  ExponentFit fit;
  fit.log2_coeff = (m * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.log2_coeff * sx) / m;
  fit.base = std::exp2(fit.log2_coeff);

  // R^2 on the log scale.
  const double mean_y = sy / m;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double ly = std::log2(y[i]);
    const double pred =
        fit.intercept + fit.log2_coeff * static_cast<double>(n[i]);
    ss_tot += (ly - mean_y) * (ly - mean_y);
    ss_res += (ly - pred) * (ly - pred);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace ovo::util
