#pragma once
// Lightweight invariant checking used across the library.
//
// OVO_CHECK is active in all build types: it guards conditions whose failure
// indicates misuse of a public API or a violated algorithmic invariant, and
// throws ovo::util::CheckError so callers (and tests) can observe it.
// OVO_DCHECK compiles away in NDEBUG builds and is used on hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ovo::util {

/// Exception thrown when a checked invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace ovo::util

#define OVO_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) ::ovo::util::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define OVO_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond))                                                      \
      ::ovo::util::check_failed(#cond, __FILE__, __LINE__, (msg));    \
  } while (0)

#ifdef NDEBUG
#define OVO_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define OVO_DCHECK(cond) OVO_CHECK(cond)
#endif
