#pragma once
// Combinatorial helpers used by the complexity analysis and the DP:
// binomial coefficients, binary entropy (and the bound
// binom(n,k) <= 2^{n H(k/n)} from Sec. 2.1 of the paper), combination
// ranking, and permutation utilities.

#include <cstdint>
#include <vector>

#include "util/bits.hpp"

namespace ovo::util {

/// binom(n, k) as a double (exact for the ranges used here, n <= 64).
double binomial(int n, int k);

/// binom(n, k) as an exact unsigned 64-bit value; throws CheckError iff
/// the *result* does not fit in 64 bits (intermediates are computed in
/// 128 bits, so every representable value — all n <= 67, and larger n
/// with small enough k — is returned exactly).
std::uint64_t binomial_u64(int n, int k);

/// Binary entropy H(d) = -d log2 d - (1-d) log2 (1-d); H(0) = H(1) = 0.
/// Precondition: d in [0, 1].
double binary_entropy(double d);

/// The paper's Sec. 2.1 bound: 2^{n H(k/n)} (an upper bound on binom(n,k)).
double entropy_bound(int n, int k);

/// Colexicographic rank of a k-subset mask among all k-subsets of [0, n).
/// rank is in [0, binom(n,k)).  Colex order of subsets coincides with the
/// numeric order of their masks, so Gosper-style enumeration
/// (for_each_subset_of_size) visits subsets exactly in rank order — the
/// property the rank-indexed DP layers rely on.
std::uint64_t combination_rank(Mask m);

/// Inverse of combination_rank: the k-subset of rank `rank` (colex order).
Mask combination_unrank(int n, int k, std::uint64_t rank);

/// Dense Pascal triangle for O(1) binomial lookups and O(k) colex
/// (un)ranking — the replacement for hashing in the Friedman–Supowit DP
/// inner loop, where every (subset, variable) pair needs the rank of a
/// predecessor subset.  All entries for n <= 64 fit in 64 bits.
class BinomialTable {
 public:
  static constexpr int kMaxN = 64;

  BinomialTable();

  std::uint64_t choose(int n, int k) const {
    // Hard check, not OVO_DCHECK: an out-of-range n reads past the end of
    // c_ in release builds, so malformed callers must throw, not corrupt.
    OVO_CHECK_MSG(n >= 0 && n <= kMaxN, "BinomialTable::choose: n > kMaxN");
    if (k < 0 || k > n) return 0;
    return c_[n][k];
  }

  /// Colex rank of a subset mask; same value as combination_rank but
  /// table-driven (no per-term multiply loop, no overflow checks).
  std::uint64_t rank(Mask m) const {
    std::uint64_t r = 0;
    int i = 1;
    for_each_bit(m, [&](int b) {
      r += choose(b, i);
      ++i;
    });
    return r;
  }

  /// Inverse of rank over k-subsets of [0, n): same value as
  /// combination_unrank.
  Mask unrank(int n, int k, std::uint64_t rank) const;

  /// Shared immutable instance (thread-safe; construction is cheap).
  static const BinomialTable& instance();

 private:
  std::uint64_t c_[kMaxN + 1][kMaxN + 1];
};

/// n! as a double.
double factorial(int n);

/// All permutations of {0,...,n-1}; intended for small n (n <= 8 or so).
std::vector<std::vector<int>> all_permutations(int n);

/// Lehmer-code unranking: the `rank`-th permutation of {0,...,n-1} in
/// lexicographic order. rank in [0, n!).
std::vector<int> permutation_unrank(int n, std::uint64_t rank);

/// Inverse permutation: out[perm[i]] = i.
std::vector<int> inverse_permutation(const std::vector<int>& perm);

/// True if `perm` is a permutation of {0,...,n-1}.
bool is_permutation(const std::vector<int>& perm);

}  // namespace ovo::util
