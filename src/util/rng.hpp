#pragma once
// Deterministic, fast RNG (xoshiro256**) so tests and benchmarks are
// reproducible across platforms without depending on libstdc++'s
// distribution implementations.

#include <cstdint>

namespace ovo::util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      w = z ^ (z >> 31);
    }
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire-style rejection-free-enough reduction; bias is negligible for
    // the bounds used in this library (all << 2^64).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  bool coin() { return (operator()() & 1u) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ovo::util
