#pragma once
// Exponential-growth fitting for the scaling benchmarks: given samples
// (n_i, y_i) with y ~ c * base^n, estimate `base` by least squares on
// log2(y) = log2(c) + n log2(base).

#include <vector>

namespace ovo::util {

struct ExponentFit {
  double base = 0.0;       ///< estimated growth base (e.g. ~3.0 for FS)
  double log2_coeff = 0.0; ///< slope: log2(base)
  double intercept = 0.0;  ///< log2(c)
  double r_squared = 0.0;  ///< goodness of fit on the log scale
};

/// Fit y ~ c * base^n. All y must be > 0 and at least two samples given.
ExponentFit fit_exponent(const std::vector<int>& n,
                         const std::vector<double>& y);

}  // namespace ovo::util
