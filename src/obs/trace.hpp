#pragma once
// ovo::obs — trace spans with Chrome trace-event export.
//
// A Span is a scoped RAII timing record: name, category, an explicit
// thread slot (the scheduler's worker index, NOT an opaque OS thread id,
// so traces are comparable across runs), steady-clock timestamps relative
// to the enable() epoch, and up to two named integer args (layer, chunk,
// pruned count, Grover iterate count, …).  Spans land in per-thread-slot
// buffers — no lock on the hot path — and write_trace_json() renders them
// as Chrome `trace_event` complete events ("ph":"X"), loadable in
// chrome://tracing or Perfetto (see EXPERIMENTS.md for a walkthrough).
//
// Two off switches, both zero-cost:
//   - runtime: tracing is collected only between enable() and disable();
//     when disabled a span start is one relaxed atomic load.
//   - compile time: build with -DOVO_TRACE=OFF (OVO_TRACE_ENABLED=0) and
//     the macros expand to nothing — no obs::trace symbols are referenced
//     at all (verify.sh checks this with nm on a -DOVO_TRACE=OFF build).
//
// Instrument with the macros, not the classes:
//
//   OVO_TRACE_SPAN("fs.chunk", "sched", slot);
//   OVO_TRACE_SPAN_ARGS("fs.group", "fs", slot, "layer", k, "chunk", c);
//
// `name` and `category` must be string literals (or otherwise outlive the
// trace session); they are stored as pointers.

#ifndef OVO_TRACE_ENABLED
#define OVO_TRACE_ENABLED 1
#endif

#include <cstdint>
#include <string>

namespace ovo::obs {

#if OVO_TRACE_ENABLED

/// Collection state for the whole process.  Thread slots index fixed
/// per-slot buffers; slot -1 means "the calling (serial/main) thread".
namespace trace {

/// Starts collecting; timestamps are nanoseconds since this call.
/// Clears any previously collected events.
void enable(int max_slots = 64);
/// Stops collecting (buffered events are kept until enable() clears
/// them).
void disable();
/// One relaxed load; the macro guards everything else behind it.
bool enabled();

/// Number of events currently buffered (all slots).
std::size_t event_count();

/// Renders every buffered event as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}), events sorted by (tid, ts) so per-thread
/// timestamps are monotone in file order.
std::string to_json();

/// to_json() written atomically to `path` (temp + rename); returns false
/// on I/O failure.
bool write_json(const std::string& path);

/// Internal: records one complete event.  Args with a null key are
/// omitted.  Called by Span's destructor only when enabled() held at
/// construction.
void record(const char* name, const char* category, int slot,
            std::uint64_t start_ns, std::uint64_t end_ns, const char* akey,
            std::uint64_t aval, const char* bkey, std::uint64_t bval);

/// Internal: nanoseconds since the enable() epoch.
std::uint64_t now_ns();

}  // namespace trace

/// Scoped span; see the macros below.  Copying is disabled — a span is
/// the lifetime of the timed region.
class Span {
 public:
  Span(const char* name, const char* category, int slot,
       const char* akey = nullptr, std::uint64_t aval = 0,
       const char* bkey = nullptr, std::uint64_t bval = 0)
      : name_(name), category_(category), slot_(slot), akey_(akey),
        aval_(aval), bkey_(bkey), bval_(bval),
        live_(trace::enabled()) {
    if (live_) start_ns_ = trace::now_ns();
  }
  ~Span() {
    if (live_)
      trace::record(name_, category_, slot_, start_ns_, trace::now_ns(),
                    akey_, aval_, bkey_, bval_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  int slot_;
  const char* akey_;
  std::uint64_t aval_;
  const char* bkey_;
  std::uint64_t bval_;
  bool live_;
  std::uint64_t start_ns_ = 0;
};

#define OVO_TRACE_CONCAT2(a, b) a##b
#define OVO_TRACE_CONCAT(a, b) OVO_TRACE_CONCAT2(a, b)

#define OVO_TRACE_SPAN(name, category, slot)                   \
  ::ovo::obs::Span OVO_TRACE_CONCAT(ovo_trace_span_, __LINE__)( \
      name, category, slot)
#define OVO_TRACE_SPAN_ARGS(name, category, slot, akey, aval, bkey, bval) \
  ::ovo::obs::Span OVO_TRACE_CONCAT(ovo_trace_span_, __LINE__)(           \
      name, category, slot, akey,                                         \
      static_cast<std::uint64_t>(aval), bkey,                             \
      static_cast<std::uint64_t>(bval))

#else  // !OVO_TRACE_ENABLED — every macro compiles to nothing.

#define OVO_TRACE_SPAN(name, category, slot) \
  do {                                       \
  } while (false)
#define OVO_TRACE_SPAN_ARGS(name, category, slot, akey, aval, bkey, bval) \
  do {                                                                    \
  } while (false)

#endif  // OVO_TRACE_ENABLED

}  // namespace ovo::obs
