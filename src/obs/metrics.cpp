#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#ifndef OVO_GIT_DESCRIBE
#define OVO_GIT_DESCRIBE "unknown"
#endif
#ifndef OVO_BUILD_TYPE
#define OVO_BUILD_TYPE "unknown"
#endif

namespace ovo::obs {

Registry& Registry::global() {
  static Registry g;
  return g;
}

void Registry::merge(const Ledger& l) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const std::uint64_t bits = l.slots()[i];
    if (bits == 0) continue;
    const Metric m = static_cast<Metric>(i);
    if (agg(m) == Agg::kSumF64)
      record_f64(m, slot_to_f64(bits));
    else
      record(m, bits);
  }
}

Ledger Registry::snapshot() const {
  Ledger out;
  for (std::size_t i = 0; i < kMetricCount; ++i)
    out.set(static_cast<Metric>(i),
            v_[i].load(std::memory_order_relaxed));
  return out;
}

namespace {

void appendf(std::string& s, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  s += buf;
}

}  // namespace

void append_json_u64(std::string& s, const char* key, std::uint64_t v) {
  appendf(s, ",\"%s\":%" PRIu64, key, v);
}

void append_json_f64(std::string& s, const char* key, double v) {
  appendf(s, ",\"%s\":%.4f", key, v);
}

void append_json_str(std::string& s, const char* key, const char* v) {
  appendf(s, ",\"%s\":\"%s\"", key, v);
}

void append_metric_json(std::string& s, const Ledger& l, Metric m) {
  if (agg(m) == Agg::kSumF64)
    append_json_f64(s, json_key(m), l.get_f64(m));
  else
    append_json_u64(s, json_key(m), l.get(m));
}

void append_metrics_json(std::string& s, const Ledger& l,
                         std::initializer_list<Metric> ms) {
  for (const Metric m : ms) append_metric_json(s, l, m);
}

void append_counters_json(std::string& s, const Ledger& l) {
  append_metrics_json(s, l,
                      {Metric::kOracleQueries, Metric::kOracleEvals,
                       Metric::kOracleMemoHits, Metric::kFsTableCells});
  // The bound-pruning ledger appears only when pruning actually ran
  // (same liveness rule as core::PruneStats::states_enumerated()).
  const std::uint64_t enumerated =
      l.get(Metric::kFsPruneGenerated) + l.get(Metric::kFsPruneDead);
  if (enumerated > 0) {
    append_metrics_json(s, l,
                        {Metric::kFsPruneUpperBound, Metric::kFsPruneGenerated,
                         Metric::kFsPrunePruned, Metric::kFsPruneDead,
                         Metric::kFsPruneSurviving});
    const double ratio = static_cast<double>(l.get(Metric::kFsPrunePruned) +
                                             l.get(Metric::kFsPruneDead)) /
                         static_cast<double>(enumerated);
    append_json_f64(s, "prune_ratio", ratio);
    append_metrics_json(
        s, l, {Metric::kFsPruneDenseCells, Metric::kFsPruneSparseCells});
  }
}

void append_run_info_json(std::string& s, int threads) {
  append_json_u64(s, "schema_version", kSchemaVersion);
  append_json_str(s, "git", build_git_describe());
  append_json_str(s, "build", build_type());
  append_json_u64(s, "threads",
                  threads < 0 ? 0 : static_cast<std::uint64_t>(threads));
}

const char* build_git_describe() { return OVO_GIT_DESCRIBE; }
const char* build_type() { return OVO_BUILD_TYPE; }

}  // namespace ovo::obs
