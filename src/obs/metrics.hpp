#pragma once
// ovo::obs — the unified telemetry substrate (counter/ledger registry).
//
// Every counter the repo accounts with — prefix-table cells read by
// compactions, unique-table probes, oracle memo hits, scheduler barrier
// waits, quantum oracle queries — is one *metric* in a single constexpr
// registry: a typed, hierarchical ID (`ds.unique.probes`,
// `fs.prune.pruned`, `oracle.memo_hits`, `sched.barrier_wait_ns`,
// `quantum.queries`, …) with a declared aggregation policy (sum, max, or
// float sum) and a canonical JSON key.  A Ledger is one flat slot array
// over that registry; merging two ledgers applies each metric's policy
// slot by slot, so merges are associative, commutative (per policy), and
// bit-identical regardless of shard order or thread count.
//
// The legacy per-subsystem stats structs (ds::TableStats,
// core::OpCounter, reorder::OracleStats, par::SchedStats, …) survive as
// *views* over this registry: their fields keep their names and zero-cost
// hot-path increments, but their merge operators and JSON emission are
// defined by round-tripping through a Ledger, so the registry's per-metric
// policy is the single source of truth for how counters combine and what
// they are called.  See docs/INTERNALS.md, "Telemetry & tracing".
//
// Layering: obs sits between util and everything else (it depends on
// nothing but the standard library), so ds, rt, parallel, core, reorder,
// and quantum can all view their counters through it.

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

namespace ovo::obs {

/// Version of the unified counter schema (metric set + JSON key names).
/// Bump when a metric is renamed, removed, or re-keyed; emitted as
/// "schema_version" in every JSON artifact.
inline constexpr std::uint32_t kSchemaVersion = 1;

/// How two values of one metric combine under Ledger::merge.
enum class Agg : std::uint8_t {
  kSum,     ///< counters: values add
  kMax,     ///< peaks / high-water marks / incumbent bounds: larger wins
  kSumF64,  ///< float counters: slots hold double bit patterns, values add
};

/// The metric registry: X(enum_id, "dotted.name", "json_key", Agg).
/// Dotted names are the hierarchical IDs (namespace table in
/// docs/INTERNALS.md); JSON keys are the canonical field names every
/// emitter (CLI --json, both scaling benches) must use — they are defined
/// here ONCE so the artifacts cannot drift from one another.
#define OVO_OBS_METRICS(X)                                                   \
  /* ds: unique-table / dedup kernel (ds::TableStats) */                     \
  X(kDsUniqueLookups, "ds.unique.lookups", "ds_unique_lookups", kSum)        \
  X(kDsUniqueHits, "ds.unique.hits", "ds_unique_hits", kSum)                 \
  X(kDsUniqueInserts, "ds.unique.inserts", "ds_unique_inserts", kSum)        \
  X(kDsUniqueResizes, "ds.unique.resizes", "ds_unique_resizes", kSum)        \
  X(kDsUniqueProbes, "ds.unique.probes", "ds_unique_probes", kSum)           \
  X(kDsUniqueProbeHist0, "ds.unique.probe_hist.1", "ds_unique_probe_hist_1", \
    kSum)                                                                    \
  X(kDsUniqueProbeHist1, "ds.unique.probe_hist.2", "ds_unique_probe_hist_2", \
    kSum)                                                                    \
  X(kDsUniqueProbeHist2, "ds.unique.probe_hist.3", "ds_unique_probe_hist_3", \
    kSum)                                                                    \
  X(kDsUniqueProbeHist3, "ds.unique.probe_hist.4", "ds_unique_probe_hist_4", \
    kSum)                                                                    \
  X(kDsUniqueProbeHist4, "ds.unique.probe_hist.8", "ds_unique_probe_hist_8", \
    kSum)                                                                    \
  X(kDsUniqueProbeHist5, "ds.unique.probe_hist.16",                          \
    "ds_unique_probe_hist_16", kSum)                                         \
  X(kDsUniqueProbeHist6, "ds.unique.probe_hist.32",                          \
    "ds_unique_probe_hist_32", kSum)                                         \
  X(kDsUniqueProbeHist7, "ds.unique.probe_hist.over32",                      \
    "ds_unique_probe_hist_over32", kSum)                                     \
  /* ds: computed caches (ds::CacheStats) */                                 \
  X(kDsCacheLookups, "ds.cache.lookups", "ds_cache_lookups", kSum)           \
  X(kDsCacheHits, "ds.cache.hits", "ds_cache_hits", kSum)                    \
  X(kDsCacheStores, "ds.cache.stores", "ds_cache_stores", kSum)              \
  X(kDsCacheEvictions, "ds.cache.evictions", "ds_cache_evictions", kSum)     \
  X(kDsCacheResizes, "ds.cache.resizes", "ds_cache_resizes", kSum)           \
  X(kDsCacheInvalidations, "ds.cache.invalidations",                         \
    "ds_cache_invalidations", kSum)                                          \
  /* ds: manager residency gauges (bdd/zdd/mtbdd Manager::Stats) */          \
  X(kDsPoolNodes, "ds.pool_nodes", "pool_nodes", kMax)                       \
  X(kDsUniqueEntries, "ds.unique_entries", "unique_entries", kMax)           \
  X(kDsCacheEntries, "ds.cache_entries", "cache_entries", kMax)              \
  X(kDsTerminalEntries, "ds.terminal_entries", "terminal_entries", kMax)     \
  /* fs: the DP / compaction work ledger (core::OpCounter) */                \
  X(kFsTableCells, "fs.table_cells", "table_cells", kSum)                    \
  X(kFsCompactions, "fs.compactions", "compactions", kSum)                   \
  X(kFsPeakCells, "fs.peak_cells", "peak_cells", kMax)                       \
  /* fs.prune: the bound-pruned DP ledger (core::PruneStats) */              \
  X(kFsPruneUpperBound, "fs.prune.upper_bound", "prune_upper_bound", kMax)   \
  X(kFsPruneGenerated, "fs.prune.generated", "states_generated", kSum)       \
  X(kFsPrunePruned, "fs.prune.pruned", "states_pruned", kSum)                \
  X(kFsPruneDead, "fs.prune.dead", "states_dead", kSum)                      \
  X(kFsPruneSurviving, "fs.prune.surviving", "states_surviving", kSum)       \
  X(kFsPruneDenseCells, "fs.prune.dense_cells", "dense_cells", kSum)         \
  X(kFsPruneSparseCells, "fs.prune.sparse_cells", "sparse_cells", kSum)      \
  /* fs.seed: the heuristic stage that seeded the pruning incumbent */       \
  X(kFsSeedQueries, "fs.seed.queries", "seed_queries", kSum)                 \
  X(kFsSeedEvals, "fs.seed.evals", "seed_evals", kSum)                       \
  X(kFsSeedMemoHits, "fs.seed.memo_hits", "seed_memo_hits", kSum)            \
  X(kFsSeedTableCells, "fs.seed.table_cells", "seed_table_cells", kSum)      \
  /* oracle: the unified reorder cost oracle (reorder::OracleStats) */       \
  X(kOracleQueries, "oracle.queries", "oracle_queries", kSum)                \
  X(kOracleEvals, "oracle.evals", "oracle_evals", kSum)                      \
  X(kOracleMemoHits, "oracle.memo_hits", "oracle_memo_hits", kSum)           \
  X(kOracleMinFindCalls, "oracle.min_find_calls", "min_find_calls", kSum)    \
  X(kOracleMinFindQueries, "oracle.min_find_queries", "min_find_queries",    \
    kSumF64)                                                                 \
  /* sched: the task-graph scheduler (par::SchedStats) */                    \
  X(kSchedGraphs, "sched.graphs", "sched_graphs", kSum)                      \
  X(kSchedTasks, "sched.tasks", "sched_tasks", kSum)                         \
  X(kSchedChunks, "sched.chunks", "sched_chunks", kSum)                      \
  X(kSchedReadyHwm, "sched.ready_hwm", "sched_ready_hwm", kMax)              \
  X(kSchedOverlapTasks, "sched.overlap_tasks", "sched_overlap_tasks", kSum)  \
  X(kSchedOverlapNs, "sched.overlap_ns", "sched_overlap_ns", kSum)           \
  X(kSchedBarrierWaitNs, "sched.barrier_wait_ns", "sched_barrier_wait_ns",   \
    kSum)                                                                    \
  X(kSchedPrunedChunks, "sched.pruned_chunks", "sched_pruned_chunks", kSum)  \
  /* rt: the resource governor (rt::RunStats) */                             \
  X(kRtWorkCharged, "rt.work_charged", "work_units", kSum)                   \
  X(kRtCheckpoints, "rt.checkpoints", "rt_checkpoints", kSum)                \
  X(kRtPeakNodes, "rt.peak_nodes", "peak_nodes", kMax)                       \
  X(kRtPeakBytes, "rt.peak_bytes", "peak_bytes", kMax)                       \
  /* quantum: the quantum query ledger */                                    \
  X(kQuantumGroverQueries, "quantum.grover_queries", "grover_queries",       \
    kSum)                                                                    \
  X(kQuantumMeasurements, "quantum.measurements", "grover_measurements",     \
    kSum)                                                                    \
  X(kQuantumQueries, "quantum.queries", "quantum_queries", kSumF64)          \
  X(kQuantumMinFindRounds, "quantum.min_find_rounds", "min_find_rounds",     \
    kSum)                                                                    \
  /* rt.fault: the fault-injection framework (appended last so every     */  \
  /* pre-existing metric id stays stable for serialized ledgers)         */  \
  X(kRtFaultEvents, "rt.fault_events", "rt_fault_events", kSum)              \
  X(kRtFaultsInjected, "rt.faults_injected", "rt_faults_injected", kSum)

enum class Metric : std::uint16_t {
#define OVO_OBS_ENUM(id, name, key, agg) id,
  OVO_OBS_METRICS(OVO_OBS_ENUM)
#undef OVO_OBS_ENUM
      kCount
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(Metric::kCount);

struct MetricInfo {
  const char* name;      ///< hierarchical dotted ID
  const char* json_key;  ///< canonical JSON field name
  Agg agg;               ///< merge policy
};

inline constexpr std::array<MetricInfo, kMetricCount> kMetricInfo = {{
#define OVO_OBS_INFO(id, name, key, agg) MetricInfo{name, key, Agg::agg},
    OVO_OBS_METRICS(OVO_OBS_INFO)
#undef OVO_OBS_INFO
}};

constexpr const MetricInfo& info(Metric m) {
  return kMetricInfo[static_cast<std::size_t>(m)];
}
constexpr const char* metric_name(Metric m) { return info(m).name; }
constexpr const char* json_key(Metric m) { return info(m).json_key; }
constexpr Agg agg(Metric m) { return info(m).agg; }

/// memcpy-based bit_cast (the header targets C++20 but stays footloose
/// about <bit> availability on older standard libraries).
inline double slot_to_f64(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}
inline std::uint64_t f64_to_slot(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

/// One flat value array over the registry.  A zeroed ledger is the
/// identity of merge() for every aggregation policy (0 bits == 0.0).
class Ledger {
 public:
  std::uint64_t get(Metric m) const { return v_[idx(m)]; }
  void set(Metric m, std::uint64_t v) { v_[idx(m)] = v; }
  void add(Metric m, std::uint64_t v) { v_[idx(m)] += v; }
  void max(Metric m, std::uint64_t v) {
    if (v > v_[idx(m)]) v_[idx(m)] = v;
  }

  double get_f64(Metric m) const { return slot_to_f64(v_[idx(m)]); }
  void set_f64(Metric m, double d) { v_[idx(m)] = f64_to_slot(d); }
  void add_f64(Metric m, double d) { set_f64(m, get_f64(m) + d); }

  /// Records `v` under the metric's own policy (sum adds, max maxes).
  void record(Metric m, std::uint64_t v) {
    switch (agg(m)) {
      case Agg::kSum:
        add(m, v);
        break;
      case Agg::kMax:
        max(m, v);
        break;
      case Agg::kSumF64:
        add_f64(m, static_cast<double>(v));
        break;
    }
  }

  /// Merges `o` into this ledger, metric by metric, under each metric's
  /// declared policy.  This is THE merge — every legacy stats struct's
  /// operator+= round-trips through it, so shard merges are policy-pure
  /// and deterministic in any order (sums and maxes commute; float sums
  /// are combined in call order, which every caller keeps ascending by
  /// slot).
  Ledger& merge(const Ledger& o) {
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      switch (kMetricInfo[i].agg) {
        case Agg::kSum:
          v_[i] += o.v_[i];
          break;
        case Agg::kMax:
          if (o.v_[i] > v_[i]) v_[i] = o.v_[i];
          break;
        case Agg::kSumF64:
          v_[i] = f64_to_slot(slot_to_f64(v_[i]) + slot_to_f64(o.v_[i]));
          break;
      }
    }
    return *this;
  }

  bool operator==(const Ledger&) const = default;

  /// Serialization view: the raw slot bits, indexed by Metric value.
  const std::array<std::uint64_t, kMetricCount>& slots() const { return v_; }

 private:
  static constexpr std::size_t idx(Metric m) {
    return static_cast<std::size_t>(m);
  }
  std::array<std::uint64_t, kMetricCount> v_{};
};

/// Per-slot ledger shards for parallel regions: each worker writes its
/// own shard, and merged() folds them in ascending slot order — the one
/// deterministic order every thread count reproduces.
class ShardedLedger {
 public:
  explicit ShardedLedger(int slots) : shards_(static_cast<std::size_t>(
                                          slots > 0 ? slots : 1)) {}

  Ledger& shard(int slot) { return shards_[static_cast<std::size_t>(slot)]; }
  const Ledger& shard(int slot) const {
    return shards_[static_cast<std::size_t>(slot)];
  }
  int slots() const { return static_cast<int>(shards_.size()); }

  Ledger merged() const {
    Ledger total;
    for (const Ledger& s : shards_) total.merge(s);
    return total;
  }

 private:
  std::vector<Ledger> shards_;
};

/// Process-wide monotone counter registry (relaxed atomics).  The
/// scheduler totals behind par::sched_stats() and the governor's work
/// charges live here; benches diff two snapshots around a run they want
/// to attribute.
class Registry {
 public:
  static Registry& global();

  /// Records `v` under the metric's declared policy (atomic).
  void record(Metric m, std::uint64_t v) {
    std::atomic<std::uint64_t>& slot = v_[static_cast<std::size_t>(m)];
    switch (agg(m)) {
      case Agg::kSum:
        slot.fetch_add(v, std::memory_order_relaxed);
        break;
      case Agg::kMax: {
        std::uint64_t cur = slot.load(std::memory_order_relaxed);
        while (v > cur && !slot.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
        break;
      }
      case Agg::kSumF64:
        record_f64(m, static_cast<double>(v));
        break;
    }
  }

  /// Float-sum metrics only: CAS-adds `d` to the slot's double value.
  void record_f64(Metric m, double d) {
    std::atomic<std::uint64_t>& slot = v_[static_cast<std::size_t>(m)];
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(
        cur, f64_to_slot(slot_to_f64(cur) + d),
        std::memory_order_relaxed)) {
    }
  }

  /// Folds a whole ledger into the registry (one atomic op per nonzero
  /// slot).
  void merge(const Ledger& l);

  /// Consistent-enough snapshot of the totals (each slot individually
  /// atomic).
  Ledger snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kMetricCount> v_{};
};

// ---------------------------------------------------------------------------
// The shared JSON serializer: every machine-readable artifact (CLI --json,
// BENCH_fs.json, BENCH_quantum.json) renders registry counters through
// these helpers, so a field's key exists in exactly one place.

void append_json_u64(std::string& s, const char* key, std::uint64_t v);
void append_json_f64(std::string& s, const char* key, double v);
void append_json_str(std::string& s, const char* key, const char* v);

/// Appends `,"<json_key>":<value>` for one metric.
void append_metric_json(std::string& s, const Ledger& l, Metric m);

/// Appends the metrics in `ms`, in order.
void append_metrics_json(std::string& s, const Ledger& l,
                         std::initializer_list<Metric> ms);

/// The canonical unified-counter block shared by the CLI and both scaling
/// benches: oracle queries/evals/memo-hits plus the DP work ledger
/// (table_cells), and — when the prune ledger is live (generated + dead
/// > 0) — the full bound-pruning block including the derived
/// "prune_ratio".
void append_counters_json(std::string& s, const Ledger& l);

/// Run-context block: `,"schema_version":N,"git":"...","build":"...",
/// "threads":N`.  Same fields in every artifact (satellite of the obs
/// refactor: artifacts must be attributable to a build).
void append_run_info_json(std::string& s, int threads);

/// Build provenance baked in at configure time (git describe, build
/// type); "unknown" when not built through CMake.
const char* build_git_describe();
const char* build_type();

}  // namespace ovo::obs
