#include "obs/trace.hpp"

#if OVO_TRACE_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <vector>

namespace ovo::obs::trace {

namespace {

struct Event {
  const char* name;
  const char* category;
  int tid;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  const char* akey;
  std::uint64_t aval;
  const char* bkey;
  std::uint64_t bval;
};

/// One buffer per thread slot.  A slot is owned by one worker at a time,
/// so its mutex is effectively uncontended; it exists for the main
/// thread's serial spans and for to_json() racing a live region.
struct SlotBuffer {
  std::mutex mu;
  std::vector<Event> events;
};

struct State {
  std::atomic<bool> enabled{false};
  std::chrono::steady_clock::time_point epoch{};
  std::vector<SlotBuffer> slots;
  std::mutex mu;  // guards slots resize (enable/disable/to_json)
};

State& state() {
  static State s;
  return s;
}

}  // namespace

void enable(int max_slots) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (max_slots < 1) max_slots = 1;
  s.slots.clear();
  s.slots = std::vector<SlotBuffer>(static_cast<std::size_t>(max_slots) + 1);
  s.epoch = std::chrono::steady_clock::now();
  s.enabled.store(true, std::memory_order_release);
}

void disable() { state().enabled.store(false, std::memory_order_release); }

bool enabled() { return state().enabled.load(std::memory_order_relaxed); }

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state().epoch)
          .count());
}

void record(const char* name, const char* category, int slot,
            std::uint64_t start_ns, std::uint64_t end_ns, const char* akey,
            std::uint64_t aval, const char* bkey, std::uint64_t bval) {
  State& s = state();
  if (s.slots.empty()) return;
  const int tid = slot < 0 ? 0 : slot + 1;
  const std::size_t idx =
      std::min(static_cast<std::size_t>(tid), s.slots.size() - 1);
  SlotBuffer& buf = s.slots[idx];
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(
      Event{name, category, tid, start_ns, end_ns, akey, aval, bkey, bval});
}

std::size_t event_count() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (SlotBuffer& b : s.slots) {
    std::lock_guard<std::mutex> bl(b.mu);
    n += b.events.size();
  }
  return n;
}

std::string to_json() {
  State& s = state();
  std::vector<Event> all;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (SlotBuffer& b : s.slots) {
      std::lock_guard<std::mutex> bl(b.mu);
      all.insert(all.end(), b.events.begin(), b.events.end());
    }
  }
  // Chrome readers expect per-thread monotone timestamps; RAII span
  // *end* order reverses nesting, so sort by (tid, start, longest
  // first) to restore parent-before-child file order.
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.end_ns > b.end_ns;
  });
  std::string out = "{\"traceEvents\":[";
  char buf[512];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Event& e = all[i];
    // ts/dur are microseconds in the trace-event format; keep ns
    // precision with a fractional part.
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%d,\"ts\":%" PRIu64 ".%03u,"
                  "\"dur\":%" PRIu64 ".%03u",
                  i == 0 ? "" : ",", e.name, e.category, e.tid,
                  e.start_ns / 1000,
                  static_cast<unsigned>(e.start_ns % 1000),
                  (e.end_ns - e.start_ns) / 1000,
                  static_cast<unsigned>((e.end_ns - e.start_ns) % 1000));
    out += buf;
    if (e.akey != nullptr || e.bkey != nullptr) {
      out += ",\"args\":{";
      bool first = true;
      if (e.akey != nullptr) {
        std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, e.akey, e.aval);
        out += buf;
        first = false;
      }
      if (e.bkey != nullptr) {
        std::snprintf(buf, sizeof buf, "%s\"%s\":%" PRIu64,
                      first ? "" : ",", e.bkey, e.bval);
        out += buf;
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool write_json(const std::string& path) {
  const std::string text = to_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace ovo::obs::trace

#endif  // OVO_TRACE_ENABLED
