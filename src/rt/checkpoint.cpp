#include "rt/checkpoint.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "rt/fault.hpp"
#include "rt/file_ops.hpp"

namespace ovo::rt {

namespace {

constexpr char kMagic[8] = {'O', 'V', 'O', 'C', 'K', 'P', 'T', '\0'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;

[[noreturn]] void io_error(const std::string& what) {
  throw CheckpointError(CheckpointErrorKind::kIo,
                        what + ": " + std::strerror(errno));
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// ---------------------------------------------------------------------------
// Hooked FileOps wrappers.  Every primary-path filesystem operation fires
// its fault site first; an injected fault simulates EIO without touching
// the backend, so the call site's normal error handling carries it out as
// CheckpointError(kIo).  Cleanup operations (the unlink/close performed
// while already unwinding from an error) deliberately bypass the hooks and
// ignore failures: the original typed error must surface, and unwinding
// must never throw again.

int hooked_open_write(FileOps& fs, const char* path) {
  if (fault_fileop_hook(FaultSite::kFileOpen)) {
    errno = EIO;
    return -1;
  }
  return fs.open_write(path);
}

int hooked_open_read(FileOps& fs, const char* path) {
  if (fault_fileop_hook(FaultSite::kFileOpen)) {
    errno = EIO;
    return -1;
  }
  return fs.open_read(path);
}

::ssize_t hooked_write(FileOps& fs, int fd, const void* data,
                       std::size_t len) {
  if (fault_fileop_hook(FaultSite::kFileWrite)) {
    errno = EIO;
    return -1;
  }
  return fs.write(fd, data, len);
}

::ssize_t hooked_read(FileOps& fs, int fd, void* buf, std::size_t len) {
  if (fault_fileop_hook(FaultSite::kFileRead)) {
    errno = EIO;
    return -1;
  }
  return fs.read(fd, buf, len);
}

int hooked_fsync(FileOps& fs, int fd) {
  if (fault_fileop_hook(FaultSite::kFileFsync)) {
    errno = EIO;
    return -1;
  }
  return fs.fsync(fd);
}

/// The fd is really closed either way (leaving it open on an injected
/// failure would leak it); injection only overrides the reported result,
/// matching POSIX close() whose fd state is gone even on error.
int hooked_close(FileOps& fs, int fd) {
  int rc = fs.close(fd);
  if (fault_fileop_hook(FaultSite::kFileClose)) {
    errno = EIO;
    rc = -1;
  }
  return rc;
}

int hooked_rename(FileOps& fs, const char* from, const char* to) {
  if (fault_fileop_hook(FaultSite::kFileRename)) {
    errno = EIO;
    return -1;
  }
  return fs.rename(from, to);
}

/// Error-path cleanup: drop the temp file and its fd without firing hooks
/// and without caring about the result — the caller is about to throw the
/// real error.
void discard_tmp(FileOps& fs, int fd, const std::string& tmp) {
  if (fd >= 0) fs.close(fd);
  fs.unlink(tmp.c_str());
}

}  // namespace

const char* checkpoint_error_name(CheckpointErrorKind kind) {
  switch (kind) {
    case CheckpointErrorKind::kIo:
      return "checkpoint io error";
    case CheckpointErrorKind::kTruncated:
      return "checkpoint truncated";
    case CheckpointErrorKind::kBadMagic:
      return "checkpoint bad magic";
    case CheckpointErrorKind::kVersionSkew:
      return "checkpoint version skew";
    case CheckpointErrorKind::kBadLength:
      return "checkpoint bad length";
    case CheckpointErrorKind::kCrcMismatch:
      return "checkpoint crc mismatch";
    case CheckpointErrorKind::kMalformed:
      return "checkpoint malformed";
    case CheckpointErrorKind::kWrongInstance:
      return "checkpoint wrong instance";
  }
  return "checkpoint error";
}

std::uint32_t crc32(const void* data, std::size_t len) {
  // Table-driven CRC-32 (IEEE 802.3 reflected polynomial); the table is
  // built once on first use.
  struct CrcTable {
    std::uint32_t v[256];
  };
  static const CrcTable table = [] {
    CrcTable t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t.v[i] = c;
    }
    return t;
  }();
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table.v[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::bytes(const void* data, std::size_t len) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

void ByteReader::need(std::size_t n) {
  if (len_ - pos_ < n)
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "payload field runs past the end of the data");
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (remaining() < n)
    throw CheckpointError(CheckpointErrorKind::kBadLength,
                          "string length exceeds remaining payload");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::uint64_t ByteReader::array_count(std::size_t elem_size) {
  const std::uint64_t count = u64();
  // Validate before any allocation: a corrupt count must not drive a
  // multi-gigabyte reserve.
  if (elem_size != 0 &&
      count > static_cast<std::uint64_t>(remaining()) / elem_size)
    throw CheckpointError(CheckpointErrorKind::kBadLength,
                          "array count exceeds remaining payload");
  return count;
}

void write_file_atomic(const std::string& path, const void* data,
                       std::size_t len) {
  FileOps& fs = file_ops();
  const std::string tmp = path + ".tmp";
  const int fd = hooked_open_write(fs, tmp.c_str());
  if (fd < 0) io_error("open '" + tmp + "'");
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < len) {
    const ::ssize_t w = hooked_write(fs, fd, p + off, len - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      discard_tmp(fs, fd, tmp);
      io_error("write '" + tmp + "'");
    }
    off += static_cast<std::size_t>(w);
  }
  if (hooked_fsync(fs, fd) != 0) {
    discard_tmp(fs, fd, tmp);
    io_error("fsync '" + tmp + "'");
  }
  if (hooked_close(fs, fd) != 0) {
    discard_tmp(fs, -1, tmp);
    io_error("close '" + tmp + "'");
  }
  if (hooked_rename(fs, tmp.c_str(), path.c_str()) != 0) {
    discard_tmp(fs, -1, tmp);
    io_error("rename '" + tmp + "' -> '" + path + "'");
  }
  // Make the rename itself durable.  A failure here is not fatal to
  // correctness (the rename is already atomic for readers), so ignore it
  // — but still fire the fsync site so crash simulation can cut here.
  if (!fault_fileop_hook(FaultSite::kFileFsync))
    fs.fsync_dir(dir_of(path).c_str());
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  FileOps& fs = file_ops();
  const int fd = hooked_open_read(fs, path.c_str());
  if (fd < 0) io_error("open '" + path + "'");
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ::ssize_t r = hooked_read(fs, fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      fs.close(fd);
      io_error("read '" + path + "'");
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  // A close failure after a complete read cannot invalidate the bytes
  // already in memory; report nothing (the fd really is closed).
  hooked_close(fs, fd);
  return out;
}

void save_checkpoint(const std::string& path, std::uint32_t version,
                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> framed(kHeaderSize + payload.size());
  std::memcpy(framed.data(), kMagic, sizeof(kMagic));
  put_u32(framed.data() + 8, version);
  put_u64(framed.data() + 12, payload.size());
  put_u32(framed.data() + 20, crc32(payload.data(), payload.size()));
  if (!payload.empty())
    std::memcpy(framed.data() + kHeaderSize, payload.data(), payload.size());
  write_file_atomic(path, framed.data(), framed.size());
}

CheckpointData parse_checkpoint(const std::uint8_t* data, std::size_t len,
                                std::uint32_t min_version,
                                std::uint32_t max_version) {
  if (len < kHeaderSize)
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "data shorter than the checkpoint header");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
    throw CheckpointError(CheckpointErrorKind::kBadMagic,
                          "data does not start with the checkpoint magic");
  CheckpointData out;
  out.version = get_u32(data + 8);
  if (out.version < min_version || out.version > max_version)
    throw CheckpointError(
        CheckpointErrorKind::kVersionSkew,
        "payload version " + std::to_string(out.version) +
            " outside supported [" + std::to_string(min_version) + ", " +
            std::to_string(max_version) + "]");
  const std::uint64_t declared = get_u64(data + 12);
  const std::uint64_t actual =
      static_cast<std::uint64_t>(len) - kHeaderSize;
  // The length field must match the bytes present exactly: an oversized
  // field means truncation-or-corruption, an undersized one means trailing
  // garbage — both are rejected rather than guessed at.
  if (declared != actual)
    throw CheckpointError(CheckpointErrorKind::kBadLength,
                          "declared payload length " +
                              std::to_string(declared) + " != " +
                              std::to_string(actual) + " bytes present");
  const std::uint32_t stored_crc = get_u32(data + 20);
  const std::uint32_t computed =
      crc32(data + kHeaderSize, static_cast<std::size_t>(actual));
  if (stored_crc != computed)
    throw CheckpointError(CheckpointErrorKind::kCrcMismatch,
                          "payload bytes fail the stored CRC-32");
  out.payload.assign(data + kHeaderSize, data + len);
  return out;
}

CheckpointData load_checkpoint(const std::string& path,
                               std::uint32_t min_version,
                               std::uint32_t max_version) {
  const std::vector<std::uint8_t> framed = read_file(path);
  try {
    return parse_checkpoint(framed.data(), framed.size(), min_version,
                            max_version);
  } catch (const CheckpointError& e) {
    if (e.kind() == CheckpointErrorKind::kBadMagic)
      throw CheckpointError(CheckpointErrorKind::kBadMagic,
                            "'" + path + "' is not a checkpoint file");
    throw;
  }
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)) {
  // All content buffers in memory (g++ defines _GNU_SOURCE, so the POSIX
  // memstream is always available); nothing touches the filesystem until
  // commit(), which funnels through write_file_atomic — so every real
  // syscall of the artifact write is hookable and crash-cuttable, and an
  // uncommitted writer leaves zero on-disk state.
  file_ = open_memstream(&buf_, &len_);
  if (file_ == nullptr) io_error("open_memstream for '" + path_ + "'");
}

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
  std::free(buf_);
}

void AtomicFileWriter::commit() {
  if (file_ == nullptr) return;
  const int rc = std::fclose(file_);  // flushes the stream into buf_/len_
  file_ = nullptr;
  if (rc != 0) io_error("flush buffered artifact for '" + path_ + "'");
  write_file_atomic(path_, buf_, len_);
}

}  // namespace ovo::rt
