#pragma once
// Injectable filesystem seam (ovo::rt) — every syscall the checkpoint
// layer performs goes through one FileOps instance, so tests can swap in
// a simulator that fails any single operation (fault_fileop_hook) or
// cuts the run at any syscall boundary (rt::SimFs crash simulation:
// short write, failed fsync, crash-after-rename) and then prove the
// crash-safety invariant mechanically: after any cut, the target path
// holds exactly one valid snapshot — old or new, never a torn one.
//
// The interface mirrors POSIX deliberately: negative return values (or
// nonzero for the int-returning calls) mean failure with errno set, so
// the call sites in checkpoint.cpp keep their original error handling
// whether the backend is the real kernel or a simulator.

#include <cstddef>
#include <sys/types.h>

namespace ovo::rt {

/// Abstract filesystem operations.  The default backend
/// (real_file_ops()) forwards to the kernel; rt::SimFs is the in-memory
/// crash simulator.
class FileOps {
 public:
  virtual ~FileOps() = default;

  /// O_WRONLY | O_CREAT | O_TRUNC, mode 0644.  Returns fd or -1.
  virtual int open_write(const char* path) = 0;
  /// O_RDONLY.  Returns fd or -1.
  virtual int open_read(const char* path) = 0;
  virtual ::ssize_t write(int fd, const void* data, std::size_t len) = 0;
  virtual ::ssize_t read(int fd, void* buf, std::size_t len) = 0;
  virtual int fsync(int fd) = 0;
  virtual int close(int fd) = 0;
  virtual int rename(const char* from, const char* to) = 0;
  virtual int unlink(const char* path) = 0;
  /// fsync of the directory containing `path` (durability of a rename).
  virtual int fsync_dir(const char* path) = 0;
};

/// The kernel-backed implementation.
FileOps& real_file_ops();

/// The currently installed backend (real_file_ops() unless a
/// ScopedFileOps is active).
FileOps& file_ops();

/// Installs `ops` process-wide for its scope.  Not reentrant for
/// simplicity (one simulator at a time); nesting throws
/// util::CheckError via the installer.
class ScopedFileOps {
 public:
  explicit ScopedFileOps(FileOps& ops);
  ~ScopedFileOps();
  ScopedFileOps(const ScopedFileOps&) = delete;
  ScopedFileOps& operator=(const ScopedFileOps&) = delete;

 private:
  FileOps* prev_;
};

}  // namespace ovo::rt
