#include "rt/file_ops.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "util/check.hpp"

namespace ovo::rt {

namespace {

class RealFileOps final : public FileOps {
 public:
  int open_write(const char* path) override {
    return ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  int open_read(const char* path) override {
    return ::open(path, O_RDONLY);
  }
  ::ssize_t write(int fd, const void* data, std::size_t len) override {
    return ::write(fd, data, len);
  }
  ::ssize_t read(int fd, void* buf, std::size_t len) override {
    return ::read(fd, buf, len);
  }
  int fsync(int fd) override { return ::fsync(fd); }
  int close(int fd) override { return ::close(fd); }
  int rename(const char* from, const char* to) override {
    return ::rename(from, to);
  }
  int unlink(const char* path) override { return ::unlink(path); }
  int fsync_dir(const char* path) override {
    const int dfd = ::open(path, O_RDONLY);
    if (dfd < 0) return -1;
    const int rc = ::fsync(dfd);
    ::close(dfd);
    return rc;
  }
};

std::atomic<FileOps*> g_ops{nullptr};

}  // namespace

FileOps& real_file_ops() {
  static RealFileOps real;
  return real;
}

FileOps& file_ops() {
  FileOps* ops = g_ops.load(std::memory_order_acquire);
  return ops != nullptr ? *ops : real_file_ops();
}

ScopedFileOps::ScopedFileOps(FileOps& ops) : prev_(nullptr) {
  FileOps* expected = nullptr;
  OVO_CHECK_MSG(g_ops.compare_exchange_strong(expected, &ops,
                                              std::memory_order_acq_rel),
                "ScopedFileOps: a FileOps backend is already installed");
}

ScopedFileOps::~ScopedFileOps() {
  g_ops.store(prev_, std::memory_order_release);
}

}  // namespace ovo::rt
