#pragma once
// In-memory crash-simulating filesystem (ovo::rt) — the FileOps backend
// that proves the checkpoint layer's crash-safety invariant mechanically.
//
// The model: every operation the checkpoint layer performs is one
// numbered event.  A CutPlan names one event as the crash point.  Events
// before the cut apply normally; the cut event itself either applies a
// *torn prefix* (a write that only got `torn_bytes` onto the platter
// before power loss) or applies nothing at all, and then throws
// SimFs::CrashCut to abort the run the way a real crash aborts a process
// — no unwind-side cleanup gets to repair anything, because after the
// cut the image is FROZEN: every further operation is a successful no-op.
// That freeze is load-bearing twice over — in-process destructors (e.g.
// AtomicFileWriter's unlink-on-unwind) cannot mutate the crash image,
// and they cannot throw during unwind either.
//
// A test then thaw()s the instance and re-runs the scenario with
// --resume semantics against the crashed image.  Enumerating the cut
// over every event index — and torn writes over several prefix lengths —
// covers crash-before, crash-during (short write), and crash-after
// (including crash-after-rename) for every syscall the writer performs.
//
// rename() is atomic in this model, exactly like POSIX rename on a
// journaling filesystem: the destination flips from old content to new
// in one event.  fsync is a no-op (writes are modeled as instantly
// durable; the *failure* of an fsync is the fault framework's job, and
// the crash-at-fsync case is covered by cutting at its event index).

#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rt/file_ops.hpp"

namespace ovo::rt {

class SimFs final : public FileOps {
 public:
  /// Crash plan: cut at the `at_op`-th operation (1-based; 0 = never).
  /// When the cut lands on a write, `torn_bytes` of the attempted chunk
  /// reach the file first; for any other operation nothing applies.
  struct CutPlan {
    std::uint64_t at_op = 0;
    std::size_t torn_bytes = 0;
  };

  /// Thrown at the cut point.  Not a std::runtime_error on purpose:
  /// generic `catch (const std::exception&)` recovery paths in scenario
  /// code should not mistake a simulated power loss for a handleable
  /// error (tests catch it by exact type).
  class CrashCut : public std::exception {
   public:
    const char* what() const noexcept override {
      return "SimFs: simulated crash cut";
    }
  };

  SimFs();
  explicit SimFs(CutPlan cut);

  // -- test-side inspection / seeding (never counted as operations) ----
  void put(const std::string& path, std::vector<std::uint8_t> bytes);
  bool exists(const std::string& path) const;
  std::vector<std::uint8_t> get(const std::string& path) const;
  std::vector<std::string> list() const;
  std::uint64_t ops_seen() const;
  bool crashed() const;

  /// Clears the frozen state (and disarms the cut) so a resume run can
  /// execute against the crashed image.
  void thaw();

  /// Caps the bytes a single write() accepts, returning a short count —
  /// forcing the caller's write loop to issue multiple syscalls so the
  /// cut enumeration can land between them.  0 means unlimited.
  void set_max_write_bytes(std::size_t n) { max_write_bytes_ = n; }

  // -- FileOps ---------------------------------------------------------
  int open_write(const char* path) override;
  int open_read(const char* path) override;
  ::ssize_t write(int fd, const void* data, std::size_t len) override;
  ::ssize_t read(int fd, void* buf, std::size_t len) override;
  int fsync(int fd) override;
  int close(int fd) override;
  int rename(const char* from, const char* to) override;
  int unlink(const char* path) override;
  int fsync_dir(const char* path) override;

 private:
  struct Handle {
    std::string path;
    std::size_t off = 0;
    bool writable = false;
  };

  /// Counts the operation and throws CrashCut when it is the cut point
  /// (the caller applies any torn prefix *before* calling this for
  /// writes).  Returns false when the image is frozen — the caller must
  /// then succeed as a no-op.
  bool alive_op();

  CutPlan cut_;
  bool crashed_ = false;
  std::uint64_t ops_ = 0;
  std::size_t max_write_bytes_ = 0;
  int next_fd_ = 1000;
  std::map<std::string, std::vector<std::uint8_t>> files_;
  std::map<int, Handle> fds_;
  mutable std::mutex mu_;
};

}  // namespace ovo::rt
