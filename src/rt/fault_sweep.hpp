#pragma once
// Exhaustive fault-sweep driver (ovo::rt) — turns "this scenario
// survives one injected fault" into "this scenario survives EVERY
// injectable fault".  For each requested site the driver first runs the
// scenario once under an empty plan to count the events the site
// observes, then re-runs it failing event 1, 2, ..., N at that site.
// Each injected run must end in one of exactly two ways:
//
//   * the scenario completes — the injection was absorbed (a governor
//     poll turned into a clean cancelled Outcome, or the failed
//     operation sat on an already-forgiving path), or
//   * a *typed* failure propagates: std::bad_alloc (kAlloc),
//     rt::FaultInjected (kTaskDispatch), or rt::CheckpointError (the
//     kFile* sites).
//
// Anything else — util::CheckError, a raw std::exception, a deadlock, a
// leak under ASan — escapes the driver and fails the test, which is the
// point: the sweep proves each failure point unwinds cleanly, and the
// scenario's own post-run invariant checks (no temp file left, snapshot
// still valid) are free to throw whatever they like since the driver
// only absorbs the typed set above.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rt/fault.hpp"

namespace ovo::rt {

/// One injected run's result.
struct SweepOutcome {
  FaultSite site = FaultSite::kAlloc;
  std::uint64_t nth = 0;        ///< which event at `site` was failed
  bool injected = false;        ///< the Nth event actually occurred
  bool completed = false;       ///< scenario returned (fault absorbed)
  std::string error;            ///< what() of the typed failure, else ""
};

struct SweepReport {
  std::vector<SweepOutcome> outcomes;
  std::uint64_t runs = 0;              ///< injected runs executed
  std::uint64_t completions = 0;       ///< runs where the scenario returned
  std::uint64_t typed_failures = 0;    ///< runs ending in a typed error
  /// Probe-run event count per site index (0 for sites not swept).
  std::array<std::uint64_t, kFaultSiteCount> events{};
};

struct SweepOptions {
  /// Fail every stride-th event instead of every event (1 = exhaustive).
  /// For scenarios with tens of thousands of events at one site this
  /// bounds the sweep while still crossing every phase of the run.
  std::uint64_t stride = 1;
  /// Hard cap on injected runs per site (0 = no cap).  When the cap
  /// bites, the swept indices are spread evenly over [1, N] rather than
  /// truncated at the front, so the tail of the scenario stays covered.
  std::uint64_t max_runs_per_site = 0;
};

/// Runs `scenario` once per (site, nth) pair as described above.  The
/// scenario must be re-runnable from scratch — the driver installs a
/// fresh ScopedFaultPlan around every invocation.
SweepReport fault_sweep(const std::vector<FaultSite>& sites,
                        const std::function<void()>& scenario,
                        const SweepOptions& options = {});

}  // namespace ovo::rt
