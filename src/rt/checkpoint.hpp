#pragma once
// Durable checkpoint framing (ovo::rt) — the container format under every
// snapshot the solver stack persists.
//
// The exact Friedman–Supowit DP is O*(3^n): at n = 13+ a run holds
// minutes-to-hours of irreplaceable layer state, and the governor
// (budget.hpp) can only degrade a run it is alive to observe.  A durable
// snapshot lets a production service preempt, migrate, or crash a run and
// resume it bit-identically.  This header owns the *container*: framing,
// integrity, and atomic replacement.  What goes inside a payload is the
// producer's business (core/fs_checkpoint.hpp for the DP state).
//
// On-disk layout (all integers little-endian):
//
//   [ 8 bytes ] magic "OVOCKPT\0"
//   [ u32     ] payload format version
//   [ u64     ] payload length in bytes (must equal file size - 24)
//   [ u32     ] CRC-32 (IEEE) of the payload bytes
//   [ ...     ] payload
//
// Load-side robustness is half the feature: every malformed input — a
// short read, a flipped bit, a version from the future, a length field
// pointing past the file — must surface as a typed CheckpointError, never
// as UB or a silent wrong result.  ByteReader bounds-checks every access,
// so payload decoders built on it inherit that guarantee; anything the
// CRC happens to pass must still be semantically validated by the
// decoder (kMalformed / kWrongInstance).
//
// Writes are crash-atomic: payload to `path + ".tmp"`, fsync, rename over
// `path`, fsync the directory.  A reader never observes a half-written
// snapshot — it sees the old file or the new one.

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace ovo::rt {

/// Why a checkpoint could not be read (or written).  Every failure mode
/// in the torture corpus maps to exactly one kind.
enum class CheckpointErrorKind : std::uint8_t {
  kIo = 1,            ///< open/read/write/fsync/rename failed
  kTruncated,         ///< file (or a field) ends before its declared size
  kBadMagic,          ///< leading bytes are not the checkpoint magic
  kVersionSkew,       ///< payload version outside the supported range
  kBadLength,         ///< a length field disagrees with the bytes present
  kCrcMismatch,       ///< payload bytes fail the stored CRC-32
  kMalformed,         ///< framing valid, payload semantically inconsistent
  kWrongInstance,     ///< snapshot fingerprint does not match this run
};

const char* checkpoint_error_name(CheckpointErrorKind kind);

/// Typed checkpoint failure.  Catchable above std::exception so callers
/// (the CLI, the resume paths) can distinguish "corrupt snapshot" from
/// "bug" and report the kind.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(checkpoint_error_name(kind)) + ": " +
                           what),
        kind_(kind) {}
  CheckpointErrorKind kind() const { return kind_; }

 private:
  CheckpointErrorKind kind_;
};

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `len` bytes.
std::uint32_t crc32(const void* data, std::size_t len);

/// Little-endian append-only payload builder.  Produced bytes are a pure
/// function of the appended values (no map-iteration or pointer order
/// leaks in), so identical state encodes to identical bytes — which makes
/// snapshot files diffable and CRC-stable across runs.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(const void* data, std::size_t len);
  /// u32 length prefix + raw bytes.
  void str(const std::string& s);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer.  Every
/// read past the end throws CheckpointError(kTruncated); array counts are
/// validated against the bytes actually remaining *before* any allocation
/// (kBadLength), so an oversized length field cannot drive an OOM.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::string str();

  /// Validates `count * elem_size <= remaining` and returns count.
  std::uint64_t array_count(std::size_t elem_size);

  std::size_t remaining() const { return len_ - pos_; }
  bool done() const { return pos_ == len_; }

 private:
  void need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Writes `len` bytes to `path` crash-atomically: temp file in the same
/// directory, fsync, rename, directory fsync.  Throws
/// CheckpointError(kIo) on any failure (the temp file is removed).
void write_file_atomic(const std::string& path, const void* data,
                       std::size_t len);

/// Whole-file read; throws CheckpointError(kIo) when the file cannot be
/// opened or read.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Frames `payload` (magic/version/length/CRC header) and writes it
/// atomically to `path`.
void save_checkpoint(const std::string& path, std::uint32_t version,
                     const std::vector<std::uint8_t>& payload);

struct CheckpointData {
  std::uint32_t version = 0;
  std::vector<std::uint8_t> payload;
};

/// Validates an in-memory framed checkpoint image: magic, version within
/// [min_version, max_version], exact length, CRC.  Every violation is a
/// typed CheckpointError; the returned payload is byte-verified.  This
/// is the pure decode half of load_checkpoint (and the fuzz frontier's
/// entry point — it must hold against arbitrary bytes).
CheckpointData parse_checkpoint(const std::uint8_t* data, std::size_t len,
                                std::uint32_t min_version,
                                std::uint32_t max_version);

/// Reads `path` and parse_checkpoint()s it.
CheckpointData load_checkpoint(const std::string& path,
                               std::uint32_t min_version,
                               std::uint32_t max_version);

/// Streaming atomic writer for text artifacts (the benches' JSON files):
/// exposes a FILE* that buffers in memory, and commit() persists the
/// whole artifact through write_file_atomic (temp file, fsync, rename —
/// every syscall through the rt::FileOps seam with fault-site hooks).
/// Without commit() the destructor discards the buffer; on any commit
/// failure the temp file is unlinked — an interrupted or failed writer
/// never leaves a half-written artifact under the real name, and never
/// leaks its `.tmp`.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  std::FILE* stream() { return file_; }
  void commit();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;  ///< open_memstream over buf_/len_
  char* buf_ = nullptr;
  std::size_t len_ = 0;
};

}  // namespace ovo::rt
