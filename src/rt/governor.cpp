#include "rt/budget.hpp"

#include "obs/metrics.hpp"
#include "rt/fault.hpp"

namespace ovo::rt {

namespace {

/// Every governed charge is mirrored into the process-global obs
/// registry: the governor's own work_ atomic stays the decision ledger
/// (budget math must not see another run's work), the registry is the
/// telemetry total benches and traces read.
void mirror(obs::Metric m, std::uint64_t v) {
  obs::Registry::global().record(m, v);
}

}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kComplete:
      return "complete";
    case Outcome::kDeadline:
      return "deadline";
    case Outcome::kNodeLimit:
      return "node_limit";
    case Outcome::kMemLimit:
      return "mem_limit";
    case Outcome::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Governor::Governor(const Budget& budget)
    : budget_(budget), start_(std::chrono::steady_clock::now()) {}

void Governor::note(Outcome o) {
  std::uint8_t expected = 0;
  soft_outcome_.compare_exchange_strong(expected,
                                        static_cast<std::uint8_t>(o),
                                        std::memory_order_relaxed);
}

void Governor::stop(Outcome o) {
  std::uint8_t expected = 0;
  hard_outcome_.compare_exchange_strong(expected,
                                        static_cast<std::uint8_t>(o),
                                        std::memory_order_relaxed);
  stop_.store(true, std::memory_order_relaxed);
}

bool Governor::over_deadline() {
  if (budget_.deadline_ms == 0) return false;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
             .count() >= static_cast<long long>(budget_.deadline_ms);
}

bool Governor::poll() {
  const std::uint64_t cp =
      checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
  mirror(obs::Metric::kRtCheckpoints, 1);
  if (fault_checkpoint_hook() ||
      (budget_.cancel != nullptr && budget_.cancel->cancelled())) {
    stop(Outcome::kCancelled);
    return true;
  }
  const std::uint64_t interval =
      budget_.check_interval == 0 ? 1 : budget_.check_interval;
  if (budget_.deadline_ms != 0 && cp % interval == 0 && over_deadline())
    stop(Outcome::kDeadline);
  return stopped();
}

void Governor::restore_work(std::uint64_t units) {
  work_.fetch_add(units, std::memory_order_relaxed);
  mirror(obs::Metric::kRtWorkCharged, units);
}

bool Governor::admit_work(std::uint64_t upcoming) {
  if (poll()) return false;
  if (budget_.work_limit != 0 &&
      work_.load(std::memory_order_relaxed) + upcoming >
          budget_.work_limit) {
    note(Outcome::kDeadline);
    return false;
  }
  return true;
}

std::uint64_t Governor::admit_charge_batch(std::uint64_t per_item,
                                           std::uint64_t count) {
  if (poll()) return 0;
  std::uint64_t admitted = count;
  if (budget_.work_limit != 0 && per_item != 0) {
    const std::uint64_t spent = work_.load(std::memory_order_relaxed);
    const std::uint64_t remaining =
        budget_.work_limit > spent ? budget_.work_limit - spent : 0;
    const std::uint64_t fit = remaining / per_item;
    if (fit < count) {
      admitted = fit;
      note(Outcome::kDeadline);
    }
  }
  work_.fetch_add(admitted * per_item, std::memory_order_relaxed);
  mirror(obs::Metric::kRtWorkCharged, admitted * per_item);
  return admitted;
}

bool Governor::admit_nodes(std::uint64_t nodes) {
  std::uint64_t peak = peak_nodes_.load(std::memory_order_relaxed);
  while (nodes > peak && !peak_nodes_.compare_exchange_weak(
                             peak, nodes, std::memory_order_relaxed)) {
  }
  mirror(obs::Metric::kRtPeakNodes, nodes);
  if (stopped()) return false;
  if (budget_.node_limit != 0 && nodes > budget_.node_limit) {
    note(Outcome::kNodeLimit);
    return false;
  }
  return true;
}

bool Governor::admit_bytes(std::uint64_t bytes) {
  std::uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (bytes > peak && !peak_bytes_.compare_exchange_weak(
                             peak, bytes, std::memory_order_relaxed)) {
  }
  mirror(obs::Metric::kRtPeakBytes, bytes);
  if (stopped()) return false;
  if (budget_.bytes_limit != 0 && bytes > budget_.bytes_limit) {
    note(Outcome::kMemLimit);
    return false;
  }
  return true;
}

bool Governor::charge(std::uint64_t units) {
  const std::uint64_t total =
      work_.fetch_add(units, std::memory_order_relaxed) + units;
  mirror(obs::Metric::kRtWorkCharged, units);
  if (poll()) return false;
  if (budget_.work_limit != 0 && total > budget_.work_limit) {
    note(Outcome::kDeadline);
    return false;
  }
  return true;
}

Outcome Governor::outcome() const {
  const std::uint8_t hard = hard_outcome_.load(std::memory_order_relaxed);
  if (hard != 0) return static_cast<Outcome>(hard);
  const std::uint8_t soft = soft_outcome_.load(std::memory_order_relaxed);
  if (soft != 0) return static_cast<Outcome>(soft);
  return Outcome::kComplete;
}

RunStats Governor::stats() const {
  RunStats s;
  s.work_units = work_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.peak_nodes = peak_nodes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  s.elapsed_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  return s;
}

}  // namespace ovo::rt
