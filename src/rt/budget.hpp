#pragma once
// Resource governance (ovo::rt) — budgets, cooperative cancellation, and
// per-run accounting for every long-running path in the solver stack.
//
// The exact Friedman–Supowit DP is Θ(3^n) time and Θ(2^n·n) memory, so a
// production deployment must be able to bound a run and still get a valid
// (if suboptimal) answer back.  The model:
//
//  * A Budget declares limits; a Governor enforces them for one run.
//  * Deterministic limits (work_limit in checked work units, node_limit,
//    bytes_limit) are decided only at serial checkpoints — DP layer
//    epilogues, candidate-batch boundaries in the reorder heuristics,
//    Grover iterations, BnB state expansions — so a budget-tripped run
//    produces the same answer for every thread count.  One work unit is
//    one prefix-table cell read by a compaction (amplitudes processed,
//    for the quantum paths).
//  * Non-deterministic stops (wall-clock deadline, CancelToken) flip a
//    sticky stop flag that thread-pool regions watch at chunk
//    boundaries; partially built layers/batches are discarded, so the
//    returned best-so-far value is always internally consistent — only
//    *where* the run stopped varies.
//  * An unbudgeted run passes a null Governor everywhere: the hot paths
//    contain a single null-pointer test per checkpoint and no atomics.
//
// A refused admit_*() call is a *soft* trip: the stage that asked must
// degrade (stop deepening, return best-so-far), but later stages may
// keep spending whatever budget remains — that is how minimize_auto()'s
// exact → sift → random-restart ladder shares one budget.  Cancellation
// and wall-deadline expiry are *hard* stops: every subsequent admit/poll
// fails and pool workers drain cooperatively.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace ovo::rt {

/// Why a governed run ended.
enum class Outcome : std::uint8_t {
  kComplete = 0,   ///< ran to completion; result is exact/terminal
  kDeadline = 1,   ///< work_limit or wall-clock deadline exhausted
  kNodeLimit = 2,  ///< predicted resident cells exceeded node_limit
  kMemLimit = 3,   ///< predicted resident bytes exceeded bytes_limit
  kCancelled = 4,  ///< CancelToken tripped (or injected via FaultPlan)
};

const char* outcome_name(Outcome o);

/// Shared cancellation flag; one token may be watched by many governors.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Declarative limits for one governed run.  Zero means unlimited.
struct Budget {
  /// Checked work units (deterministic "time"): prefix-table cells read
  /// by compactions / amplitudes processed by statevector sweeps.
  std::uint64_t work_limit = 0;
  /// Wall-clock deadline in milliseconds (non-deterministic).
  std::uint64_t deadline_ms = 0;
  /// Peak resident prefix-table cells / diagram nodes.
  std::uint64_t node_limit = 0;
  /// Peak resident bytes (approximated as cells * sizeof(cell)).
  std::uint64_t bytes_limit = 0;
  /// Checkpoints between wall-clock reads (poll/charge calls).
  std::uint64_t check_interval = 1024;
  /// Optional external cancellation; not owned.
  CancelToken* cancel = nullptr;

  bool unlimited() const {
    return work_limit == 0 && deadline_ms == 0 && node_limit == 0 &&
           bytes_limit == 0 && cancel == nullptr;
  }

  /// True iff any *deterministic* limit is set (work/nodes/bytes — the
  /// ones decided by serial admit_*() calls).  Engines whose admission
  /// inputs are only known as a run unfolds (the bound-pruned FS* DP's
  /// sparse layer counts) must route to their serially-admitting variant
  /// when this holds; deadline/cancel-only budgets need no admission and
  /// may take any engine.
  bool deterministic_limits() const {
    return work_limit != 0 || node_limit != 0 || bytes_limit != 0;
  }

  static Budget with_work_limit(std::uint64_t units) {
    Budget b;
    b.work_limit = units;
    return b;
  }
};

/// Accounting for one governed run.  A view over the obs registry's
/// rt.* metrics (the governor also mirrors every charge into the
/// process-global registry; see Governor).
struct RunStats {
  std::uint64_t work_units = 0;   ///< total charged work
  std::uint64_t checkpoints = 0;  ///< charge() + poll() calls
  std::uint64_t peak_nodes = 0;   ///< largest admitted node footprint
  std::uint64_t peak_bytes = 0;   ///< largest admitted byte footprint
  double elapsed_seconds = 0.0;

  /// Accumulates this struct into `l` under the rt.* metric IDs
  /// (elapsed_seconds is wall clock, not a counter; it stays out).
  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kRtWorkCharged, work_units);
    l.record(obs::Metric::kRtCheckpoints, checkpoints);
    l.record(obs::Metric::kRtPeakNodes, peak_nodes);
    l.record(obs::Metric::kRtPeakBytes, peak_bytes);
  }
  void from_ledger(const obs::Ledger& l) {
    work_units = l.get(obs::Metric::kRtWorkCharged);
    checkpoints = l.get(obs::Metric::kRtCheckpoints);
    peak_nodes = l.get(obs::Metric::kRtPeakNodes);
    peak_bytes = l.get(obs::Metric::kRtPeakBytes);
  }
};

/// A governed result: the best-so-far value plus why the run stopped.
template <typename T>
struct Result {
  T value{};
  Outcome outcome = Outcome::kComplete;
  RunStats stats;

  bool complete() const { return outcome == Outcome::kComplete; }
};

/// Enforces one Budget for one run.  Thread-safe: parallel chunk bodies
/// may poll() and charge() concurrently; admit_*() decisions that must
/// be deterministic are the caller's responsibility to make at serial
/// program points.
class Governor {
 public:
  explicit Governor(const Budget& budget);
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  const Budget& budget() const { return budget_; }

  /// Deterministic pre-check: true iff `upcoming` more work units fit in
  /// work_limit and no hard stop has occurred.  Refusal notes kDeadline
  /// but does not hard-stop (later, cheaper stages may still run).
  bool admit_work(std::uint64_t upcoming);

  /// Deterministic batch admission for homogeneous candidate batches:
  /// returns how many of `count` items costing `per_item` work units
  /// each still fit in the work budget, and charges the admitted total.
  /// Call only at serial program points (the decision must not race).
  /// Returns 0 when hard-stopped; notes kDeadline on truncation.
  std::uint64_t admit_charge_batch(std::uint64_t per_item,
                                   std::uint64_t count);

  /// Deterministic pre-check against node_limit (refusal → kNodeLimit).
  bool admit_nodes(std::uint64_t nodes);

  /// Deterministic pre-check against bytes_limit (refusal → kMemLimit).
  bool admit_bytes(std::uint64_t bytes);

  /// Adds `units` of completed work and runs a checkpoint (periodic
  /// wall-clock read, cancel poll, fault hook).  Returns false once the
  /// budget is exhausted or a hard stop occurred.  Callers that batch
  /// work behind admit_work() never see a mid-batch refusal.
  bool charge(std::uint64_t units);

  /// Cheap checkpoint without charging: polls the cancel token, the
  /// fault plan, and (every check_interval calls) the wall clock.
  /// Returns true iff hard-stopped.  Safe to call from parallel bodies.
  bool poll();

  /// Credits work a *previous* run already performed (a resumed
  /// checkpoint's ledger) without running a checkpoint, so every
  /// subsequent admit/charge decision matches the uninterrupted run
  /// bit for bit.  Call once, at a serial point, before the resumed
  /// engine starts.
  void restore_work(std::uint64_t units);

  /// True once a hard stop (cancel / wall deadline) has been recorded.
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  /// Stop flag for thread-pool regions; workers watch it at chunk
  /// boundaries and drain cooperatively when it flips.
  const std::atomic<bool>* stop_flag() const { return &stop_; }

  /// Records a hard stop with reason `o` (first reason wins).
  void stop(Outcome o);

  /// Hard-stop reason if any, else the first soft refusal, else
  /// kComplete.
  Outcome outcome() const;

  RunStats stats() const;

 private:
  bool over_deadline();
  void note(Outcome o);  ///< records a soft refusal (first wins)

  const Budget budget_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint8_t> hard_outcome_{0};  ///< 0 = none
  std::atomic<std::uint8_t> soft_outcome_{0};  ///< 0 = none
  std::atomic<std::uint64_t> work_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> peak_nodes_{0};
  std::atomic<std::uint64_t> peak_bytes_{0};
};

}  // namespace ovo::rt
