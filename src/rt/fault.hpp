#pragma once
// Deterministic fault-site framework for robustness tests and chaos
// sweeps.  Every injectable failure point in the stack is a typed
// FaultSite: node-store allocation events, governor polls, task-graph
// chunk dispatch, and each filesystem operation inside the checkpoint
// writer (open/read/write/fsync/rename/close/unlink — the rt::FileOps
// seam).  A FaultSchedule says *which* events fail — "the Nth event at
// site K" for exhaustive sweeps, or seeded probabilistic injection for
// randomized soak runs — and a ScopedFaultPlan installs it process-wide
// for its scope.  The sweep driver (rt/fault_sweep.hpp) re-runs a
// scenario failing event 1..N at a site so tests can prove every single
// failure point unwinds cleanly: typed error or typed rt::Outcome, no
// leak under ASan, no deadlock under TSan, no partial on-disk state.
//
// Cost when no plan is installed: one relaxed atomic pointer load per
// *event* (unique-table rehash, arena growth, governor poll, chunk
// dispatch, file syscall), never per node — the hooks sit at the same
// granularity as the failures they simulate.
//
// What an injection does depends on the site:
//   * kAlloc          — fault_alloc_hook throws std::bad_alloc before any
//                       state changes (strong guarantee at the site).
//   * kGovPoll        — fault_checkpoint_hook trips the schedule's
//                       CancelToken and reports a hard stop, exactly like
//                       an external cancellation.
//   * kTaskDispatch   — fault_dispatch_hook throws FaultInjected before
//                       the chunk body runs; the scheduler's
//                       first-exception-wins drain carries it out.
//   * kFile*          — fault_fileop_hook returns true and the FileOps
//                       call site fails with EIO semantics, surfacing as
//                       CheckpointError(kIo) from the checkpoint layer.

#include <array>
#include <cstdint>
#include <stdexcept>

#include "util/check.hpp"

namespace ovo::rt {

class CancelToken;

/// Every injectable failure point in the stack.  Keep
/// fault_site_name()'s table in sync.
enum class FaultSite : std::uint8_t {
  kAlloc = 0,     ///< node-store allocation event (rehash / arena growth)
  kGovPoll,       ///< governor poll checkpoint
  kTaskDispatch,  ///< task-graph chunk dispatch (before the body runs)
  kFileOpen,      ///< FileOps::open_write / open_read
  kFileRead,      ///< FileOps::read
  kFileWrite,     ///< FileOps::write
  kFileFsync,     ///< FileOps::fsync (and fsync_dir)
  kFileRename,    ///< FileOps::rename
  kFileClose,     ///< FileOps::close
  kFileUnlink,    ///< FileOps::unlink
  kCount
};

inline constexpr std::size_t kFaultSiteCount =
    static_cast<std::size_t>(FaultSite::kCount);

/// Stable lowercase identifier ("alloc", "gov_poll", "file_write", ...);
/// the CLI's --fault-fileop flag and chaos.sh parse these.
const char* fault_site_name(FaultSite site);

/// Inverse of fault_site_name; returns false when `name` is unknown.
bool parse_fault_site(const char* name, FaultSite* out);

/// Thrown by injection at sites whose contract is "the operation throws"
/// (task dispatch; also usable by custom scenarios).  Deliberately NOT a
/// util::CheckError: an injected fault is a simulated environment
/// failure, not a violated invariant.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(FaultSite site)
      : std::runtime_error(std::string("injected fault at site ") +
                           fault_site_name(site)),
        site_(site) {}
  FaultSite site() const { return site_; }

 private:
  FaultSite site_;
};

/// Installing a second ScopedFaultPlan while one is active is a hard,
/// typed error (it derives from util::CheckError so legacy catch sites
/// keep working).  Plans are process-wide; nesting them would make every
/// counter and fail-at decision ambiguous.
class FaultNestingError : public util::CheckError {
 public:
  explicit FaultNestingError(const std::string& what)
      : util::CheckError(what) {}
};

/// Declarative fault schedule.  Event counts are 1-based and counted per
/// site from plan installation; zero disables the corresponding entry.
struct FaultSchedule {
  /// fail_at[site] = N: inject at the Nth event observed at `site`.
  std::array<std::uint64_t, kFaultSiteCount> fail_at{};

  /// Seeded probabilistic injection: every event at a site whose bit is
  /// set in `prob_mask` fails independently with probability
  /// `probability`, decided by a splitmix64 hash of (seed, site, event
  /// index) — bit-reproducible for a given seed and event order.
  double probability = 0.0;
  std::uint64_t seed = 0;
  std::uint32_t prob_mask = 0;

  /// Trip `cancel` at the Nth governor poll and keep reporting the stop
  /// from then on (legacy FaultPlan::cancel_at_checkpoint semantics —
  /// unlike fail_at, the trip is sticky at the hook level).
  std::uint64_t cancel_at_poll = 0;
  CancelToken* cancel = nullptr;  ///< token tripped by poll-site faults

  static constexpr std::uint32_t site_bit(FaultSite s) {
    return std::uint32_t{1} << static_cast<unsigned>(s);
  }
  FaultSchedule& fail_nth(FaultSite site, std::uint64_t nth) {
    fail_at[static_cast<std::size_t>(site)] = nth;
    return *this;
  }
};

/// Legacy single-fault plan, kept as a shim over FaultSchedule so the
/// original call sites (fail the Nth allocation, cancel at the Nth
/// governor checkpoint) read as before.
struct FaultPlan {
  std::uint64_t fail_alloc_at = 0;
  std::uint64_t cancel_at_checkpoint = 0;
  CancelToken* cancel = nullptr;

  FaultSchedule to_schedule() const {
    FaultSchedule s;
    s.fail_at[static_cast<std::size_t>(FaultSite::kAlloc)] = fail_alloc_at;
    s.cancel_at_poll = cancel_at_checkpoint;
    s.cancel = cancel;
    return s;
  }
};

/// Installs a FaultSchedule process-wide for its scope (all counters
/// start at zero on installation).  Only one plan may be active at a
/// time; nesting throws FaultNestingError.  On uninstall the totals are
/// folded into the obs registry (rt.fault_events / rt.faults_injected).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultSchedule& schedule);
  explicit ScopedFaultPlan(const FaultPlan& plan)
      : ScopedFaultPlan(plan.to_schedule()) {}
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  /// Events observed at `site` while this plan was installed.
  std::uint64_t events_seen(FaultSite site) const;
  /// Faults actually injected at `site`.
  std::uint64_t injected(FaultSite site) const;
  /// Totals across all sites.
  std::uint64_t total_events() const;
  std::uint64_t total_injected() const;

  /// Legacy accessors.
  std::uint64_t allocations_seen() const {
    return events_seen(FaultSite::kAlloc);
  }
  std::uint64_t checkpoints_seen() const {
    return events_seen(FaultSite::kGovPoll);
  }

  struct State;  ///< implementation detail, defined in fault.cpp

 private:
  State* state_;
};

/// Called by the node stores at every allocation event; throws
/// std::bad_alloc when the installed schedule says this one fails.
void fault_alloc_hook();

/// Called by Governor::poll at every checkpoint; returns true (and
/// cancels the schedule's token) when the installed schedule trips here.
bool fault_checkpoint_hook();

/// Called by the task-graph scheduler before each chunk body; throws
/// FaultInjected(kTaskDispatch) when the installed schedule says so.
void fault_dispatch_hook();

/// Called by the FileOps call sites before each filesystem operation;
/// returns true when the operation should fail (the caller simulates an
/// EIO-style failure).  `site` must be one of the kFile* sites.
bool fault_fileop_hook(FaultSite site);

}  // namespace ovo::rt
