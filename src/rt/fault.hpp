#pragma once
// Fault injection for robustness tests.  A FaultPlan makes the Nth
// node-store allocation fail (std::bad_alloc) or trips a CancelToken at
// the Nth governor checkpoint, so tests can prove that every layer of
// the stack unwinds cleanly, leaks nothing under ASan, and deadlocks
// nowhere under TSan.
//
// Cost when no plan is installed: one relaxed atomic pointer load per
// *allocation event* (unique-table rehash / arena growth), never per
// node — the hooks sit at the same granularity as the allocations they
// simulate failing.

#include <cstdint>

namespace ovo::rt {

class CancelToken;

/// Declarative fault schedule.  Counts are 1-based; zero disables the
/// corresponding fault.
struct FaultPlan {
  /// Fail the Nth tracked allocation (unique-table rehash or arena
  /// buffer growth) with std::bad_alloc.
  std::uint64_t fail_alloc_at = 0;
  /// Cancel this token at the Nth governor checkpoint.
  std::uint64_t cancel_at_checkpoint = 0;
  CancelToken* cancel = nullptr;  ///< token tripped by the above
};

/// Installs a FaultPlan process-wide for its scope (counters start at
/// zero on installation).  Not reentrant: one active plan at a time.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  /// Allocation events observed while this plan was installed.
  std::uint64_t allocations_seen() const;
  /// Checkpoints observed while this plan was installed.
  std::uint64_t checkpoints_seen() const;

  struct State;  ///< implementation detail, defined in fault.cpp

 private:
  State* state_;
};

/// Called by the node stores at every allocation event; throws
/// std::bad_alloc when the installed plan says this one fails.
void fault_alloc_hook();

/// Called by Governor::poll at every checkpoint; returns true (and
/// cancels the plan's token) when the installed plan trips here.
bool fault_checkpoint_hook();

}  // namespace ovo::rt
