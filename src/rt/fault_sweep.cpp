#include "rt/fault_sweep.hpp"

#include <new>

#include "rt/checkpoint.hpp"

namespace ovo::rt {

namespace {

/// The strided event indices to fail at a site with N probe events,
/// evenly resampled down to the per-site cap when one is set.
std::vector<std::uint64_t> sweep_indices(std::uint64_t n_events,
                                         const SweepOptions& options) {
  std::vector<std::uint64_t> nths;
  const std::uint64_t stride = options.stride == 0 ? 1 : options.stride;
  for (std::uint64_t n = 1; n <= n_events; n += stride) nths.push_back(n);
  const std::uint64_t cap = options.max_runs_per_site;
  if (cap == 0 || nths.size() <= cap) return nths;
  std::vector<std::uint64_t> picked;
  picked.reserve(static_cast<std::size_t>(cap));
  for (std::uint64_t k = 0; k < cap; ++k) {
    const std::size_t pos =
        cap == 1 ? 0
                 : static_cast<std::size_t>((nths.size() - 1) * k / (cap - 1));
    if (picked.empty() || picked.back() != nths[pos])
      picked.push_back(nths[pos]);
  }
  return picked;
}

}  // namespace

SweepReport fault_sweep(const std::vector<FaultSite>& sites,
                        const std::function<void()>& scenario,
                        const SweepOptions& options) {
  SweepReport report;
  {
    // Probe run: empty schedule, counters only.  A scenario that cannot
    // complete cleanly with no faults installed is broken — let whatever
    // it throws escape.
    ScopedFaultPlan probe{FaultSchedule{}};
    scenario();
    for (const FaultSite site : sites)
      report.events[static_cast<std::size_t>(site)] = probe.events_seen(site);
  }
  for (const FaultSite site : sites) {
    const std::uint64_t n_events =
        report.events[static_cast<std::size_t>(site)];
    for (const std::uint64_t nth : sweep_indices(n_events, options)) {
      FaultSchedule schedule;
      schedule.fail_nth(site, nth);
      ScopedFaultPlan plan{schedule};
      SweepOutcome outcome;
      outcome.site = site;
      outcome.nth = nth;
      try {
        scenario();
        outcome.completed = true;
      } catch (const FaultInjected& e) {
        outcome.error = e.what();
      } catch (const CheckpointError& e) {
        outcome.error = e.what();
      } catch (const std::bad_alloc&) {
        outcome.error = "std::bad_alloc";
      }
      outcome.injected = plan.injected(site) > 0;
      ++report.runs;
      if (outcome.completed)
        ++report.completions;
      else
        ++report.typed_failures;
      report.outcomes.push_back(std::move(outcome));
    }
  }
  return report;
}

}  // namespace ovo::rt
