#include "rt/sim_fs.hpp"

#include <cerrno>
#include <cstring>

namespace ovo::rt {

SimFs::SimFs() : cut_() {}

SimFs::SimFs(CutPlan cut) : cut_(cut) {}

void SimFs::put(const std::string& path, std::vector<std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(bytes);
}

bool SimFs::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

std::vector<std::uint8_t> SimFs::get(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = files_.find(path);
  return it != files_.end() ? it->second : std::vector<std::uint8_t>{};
}

std::vector<std::string> SimFs::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, bytes] : files_) out.push_back(path);
  return out;
}

std::uint64_t SimFs::ops_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool SimFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void SimFs::thaw() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
  cut_.at_op = 0;
  fds_.clear();
}

// Counts the operation; throws CrashCut at the cut point; returns false
// when frozen (the caller succeeds as a no-op).  Callers hold mu_.
bool SimFs::alive_op() {
  if (crashed_) return false;
  const std::uint64_t n = ++ops_;
  if (cut_.at_op != 0 && n == cut_.at_op) {
    crashed_ = true;
    throw CrashCut();
  }
  return true;
}

int SimFs::open_write(const char* path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_op()) return next_fd_++;  // frozen: fake fd, never tracked
  const int fd = next_fd_++;
  files_[path].clear();  // O_CREAT | O_TRUNC
  fds_[fd] = Handle{path, 0, true};
  return fd;
}

int SimFs::open_read(const char* path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_op()) return next_fd_++;
  if (files_.count(path) == 0) {
    errno = ENOENT;
    return -1;
  }
  const int fd = next_fd_++;
  fds_[fd] = Handle{path, 0, false};
  return fd;
}

::ssize_t SimFs::write(int fd, const void* data, std::size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return static_cast<::ssize_t>(len);  // frozen no-op
  const std::uint64_t n = ++ops_;
  const auto it = fds_.find(fd);
  if (it == fds_.end() || !it->second.writable) {
    errno = EBADF;
    return -1;
  }
  // Short-write modeling: accept at most max_write_bytes_ per call so
  // the caller's write loop issues several syscalls — each its own
  // event the cut enumeration can land on.
  std::size_t take = len;
  if (max_write_bytes_ != 0 && take > max_write_bytes_)
    take = max_write_bytes_;
  if (cut_.at_op != 0 && n == cut_.at_op) {
    // Torn write: only the first torn_bytes of this chunk reached the
    // file before the power died.
    take = cut_.torn_bytes < take ? cut_.torn_bytes : take;
    crashed_ = true;
  }
  Handle& h = it->second;
  std::vector<std::uint8_t>& f = files_[h.path];
  if (h.off + take > f.size()) f.resize(h.off + take);
  // take == 0 (a fully torn write) must skip memcpy: an empty vector's
  // data() may be null, and memcpy's pointer args are declared nonnull.
  if (take != 0) std::memcpy(f.data() + h.off, data, take);
  h.off += take;
  if (crashed_) throw CrashCut();
  return static_cast<::ssize_t>(take);
}

::ssize_t SimFs::read(int fd, void* buf, std::size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_op()) return 0;  // frozen: EOF
  const auto it = fds_.find(fd);
  if (it == fds_.end()) {
    errno = EBADF;
    return -1;
  }
  Handle& h = it->second;
  const auto fit = files_.find(h.path);
  if (fit == files_.end()) {
    errno = EIO;
    return -1;
  }
  const std::vector<std::uint8_t>& f = fit->second;
  if (h.off >= f.size()) return 0;
  const std::size_t take = len < f.size() - h.off ? len : f.size() - h.off;
  std::memcpy(buf, f.data() + h.off, take);
  h.off += take;
  return static_cast<::ssize_t>(take);
}

int SimFs::fsync(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_op()) return 0;
  if (fds_.count(fd) == 0) {
    errno = EBADF;
    return -1;
  }
  return 0;  // writes are modeled as instantly durable
}

int SimFs::close(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_op()) return 0;
  const auto it = fds_.find(fd);
  if (it == fds_.end()) {
    errno = EBADF;
    return -1;
  }
  fds_.erase(it);
  return 0;
}

int SimFs::rename(const char* from, const char* to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_op()) return 0;
  const auto it = files_.find(from);
  if (it == files_.end()) {
    errno = ENOENT;
    return -1;
  }
  // Atomic replace, POSIX-style: the destination flips in one event.
  files_[to] = std::move(it->second);
  files_.erase(it);
  return 0;
}

int SimFs::unlink(const char* path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_op()) return 0;
  if (files_.erase(path) == 0) {
    errno = ENOENT;
    return -1;
  }
  return 0;
}

int SimFs::fsync_dir(const char* /*path*/) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_op()) return 0;
  return 0;
}

}  // namespace ovo::rt
