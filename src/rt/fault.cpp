#include "rt/fault.hpp"

#include <atomic>
#include <new>

#include "obs/metrics.hpp"
#include "rt/budget.hpp"

namespace ovo::rt {

namespace {

constexpr const char* kSiteNames[kFaultSiteCount] = {
    "alloc",      "gov_poll",    "task_dispatch", "file_open",
    "file_read",  "file_write",  "file_fsync",    "file_rename",
    "file_close", "file_unlink",
};

/// splitmix64 finalizer — the per-event coin for probabilistic
/// injection.  Pure function of (seed, site, event index), so a given
/// schedule injects the identical event set on every run.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  const auto i = static_cast<std::size_t>(site);
  return i < kFaultSiteCount ? kSiteNames[i] : "unknown";
}

bool parse_fault_site(const char* name, FaultSite* out) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const char* a = kSiteNames[i];
    const char* b = name;
    while (*a != '\0' && *a == *b) {
      ++a;
      ++b;
    }
    if (*a == '\0' && *b == '\0') {
      *out = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

struct ScopedFaultPlan::State {
  FaultSchedule schedule;
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> events{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected{};
};

namespace {

std::atomic<ScopedFaultPlan::State*> g_fault{nullptr};

/// Counts one event at `site` and decides whether it is the one the
/// schedule fails.  The caller applies the site's failure contract.
bool fault_event(ScopedFaultPlan::State* s, FaultSite site) {
  const auto i = static_cast<std::size_t>(site);
  const std::uint64_t n =
      s->events[i].fetch_add(1, std::memory_order_relaxed) + 1;
  bool inject = s->schedule.fail_at[i] != 0 && n == s->schedule.fail_at[i];
  if (!inject && s->schedule.probability > 0.0 &&
      (s->schedule.prob_mask & FaultSchedule::site_bit(site)) != 0) {
    const std::uint64_t h =
        mix(s->schedule.seed ^
            (static_cast<std::uint64_t>(i) << 56) ^ n);
    inject = static_cast<double>(h >> 11) * 0x1.0p-53 <
             s->schedule.probability;
  }
  if (inject) s->injected[i].fetch_add(1, std::memory_order_relaxed);
  return inject;
}

}  // namespace

ScopedFaultPlan::ScopedFaultPlan(const FaultSchedule& schedule)
    : state_(new State{}) {
  state_->schedule = schedule;
  State* expected = nullptr;
  const bool installed = g_fault.compare_exchange_strong(
      expected, state_, std::memory_order_acq_rel);
  if (!installed) {
    delete state_;
    state_ = nullptr;
    throw FaultNestingError(
        "ScopedFaultPlan: a fault plan is already installed in this "
        "process; plans are process-wide and must not nest");
  }
}

ScopedFaultPlan::~ScopedFaultPlan() {
  g_fault.store(nullptr, std::memory_order_release);
  // Fold the observation totals into the obs registry so chaos sweeps
  // and fault-injected runs are visible in every telemetry artifact.
  const std::uint64_t events = total_events();
  const std::uint64_t faults = total_injected();
  if (events != 0)
    obs::Registry::global().record(obs::Metric::kRtFaultEvents, events);
  if (faults != 0)
    obs::Registry::global().record(obs::Metric::kRtFaultsInjected, faults);
  delete state_;
}

std::uint64_t ScopedFaultPlan::events_seen(FaultSite site) const {
  return state_->events[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t ScopedFaultPlan::injected(FaultSite site) const {
  return state_->injected[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t ScopedFaultPlan::total_events() const {
  std::uint64_t sum = 0;
  for (const auto& e : state_->events)
    sum += e.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t ScopedFaultPlan::total_injected() const {
  std::uint64_t sum = 0;
  for (const auto& e : state_->injected)
    sum += e.load(std::memory_order_relaxed);
  return sum;
}

void fault_alloc_hook() {
  ScopedFaultPlan::State* s = g_fault.load(std::memory_order_acquire);
  if (s == nullptr) return;
  if (fault_event(s, FaultSite::kAlloc)) throw std::bad_alloc();
}

bool fault_checkpoint_hook() {
  ScopedFaultPlan::State* s = g_fault.load(std::memory_order_acquire);
  if (s == nullptr) return false;
  bool trip = fault_event(s, FaultSite::kGovPoll);
  // Legacy sticky trip: every poll at or past cancel_at_poll reports the
  // stop (the governor latches it anyway; >= keeps the old contract).
  const std::uint64_t n = s->events[static_cast<std::size_t>(
                                        FaultSite::kGovPoll)]
                              .load(std::memory_order_relaxed);
  if (s->schedule.cancel_at_poll != 0 && n >= s->schedule.cancel_at_poll)
    trip = true;
  if (trip && s->schedule.cancel != nullptr) s->schedule.cancel->cancel();
  return trip;
}

void fault_dispatch_hook() {
  ScopedFaultPlan::State* s = g_fault.load(std::memory_order_acquire);
  if (s == nullptr) return;
  if (fault_event(s, FaultSite::kTaskDispatch))
    throw FaultInjected(FaultSite::kTaskDispatch);
}

bool fault_fileop_hook(FaultSite site) {
  ScopedFaultPlan::State* s = g_fault.load(std::memory_order_acquire);
  if (s == nullptr) return false;
  return fault_event(s, site);
}

}  // namespace ovo::rt
