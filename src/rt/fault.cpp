#include "rt/fault.hpp"

#include <atomic>
#include <new>

#include "rt/budget.hpp"
#include "util/check.hpp"

namespace ovo::rt {

struct ScopedFaultPlan::State {
  FaultPlan plan;
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> checkpoints{0};
};

namespace {
std::atomic<ScopedFaultPlan::State*> g_fault{nullptr};
}  // namespace

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan& plan)
    : state_(new State{}) {
  state_->plan = plan;
  State* expected = nullptr;
  const bool installed =
      g_fault.compare_exchange_strong(expected, state_,
                                      std::memory_order_acq_rel);
  if (!installed) {
    delete state_;
    state_ = nullptr;
    OVO_CHECK_MSG(false, "a FaultPlan is already installed");
  }
}

ScopedFaultPlan::~ScopedFaultPlan() {
  g_fault.store(nullptr, std::memory_order_release);
  delete state_;
}

std::uint64_t ScopedFaultPlan::allocations_seen() const {
  return state_->allocations.load(std::memory_order_relaxed);
}

std::uint64_t ScopedFaultPlan::checkpoints_seen() const {
  return state_->checkpoints.load(std::memory_order_relaxed);
}

void fault_alloc_hook() {
  ScopedFaultPlan::State* s = g_fault.load(std::memory_order_acquire);
  if (s == nullptr) return;
  const std::uint64_t n =
      s->allocations.fetch_add(1, std::memory_order_relaxed) + 1;
  if (s->plan.fail_alloc_at != 0 && n == s->plan.fail_alloc_at)
    throw std::bad_alloc();
}

bool fault_checkpoint_hook() {
  ScopedFaultPlan::State* s = g_fault.load(std::memory_order_acquire);
  if (s == nullptr) return false;
  const std::uint64_t n =
      s->checkpoints.fetch_add(1, std::memory_order_relaxed) + 1;
  if (s->plan.cancel_at_checkpoint != 0 &&
      n >= s->plan.cancel_at_checkpoint) {
    if (s->plan.cancel != nullptr) s->plan.cancel->cancel();
    return true;
  }
  return false;
}

}  // namespace ovo::rt
