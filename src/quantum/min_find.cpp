#include "quantum/min_find.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "quantum/grover.hpp"
#include "util/check.hpp"

namespace ovo::quantum {

AccountingMinimumFinder::AccountingMinimumFinder(double log_inv_eps,
                                                 double failure_rate,
                                                 std::uint64_t seed)
    : log_inv_eps_(std::max(1.0, log_inv_eps)),
      failure_rate_(failure_rate),
      rng_(seed) {
  OVO_CHECK(failure_rate >= 0.0 && failure_rate < 1.0);
}

MinOutcome AccountingMinimumFinder::find_min(
    const std::vector<std::int64_t>& values) {
  OVO_CHECK_MSG(!values.empty(), "find_min: empty value array");
  MinOutcome out;
  std::size_t argmin = 0;
  for (std::size_t i = 1; i < values.size(); ++i)
    if (values[i] < values[argmin]) argmin = i;
  out.best_index = argmin;
  out.quantum_queries =
      std::sqrt(static_cast<double>(values.size())) * log_inv_eps_;
  obs::Registry::global().record_f64(obs::Metric::kQuantumQueries,
                                     out.quantum_queries);
  if (failure_rate_ > 0.0 && values.size() > 1 &&
      rng_.uniform() < failure_rate_) {
    // DH failure mode: the answer is some candidate that is not the
    // minimum (still a valid prefix/ordering, just suboptimal).
    std::size_t other = rng_.below(values.size());
    if (other == argmin) other = (other + 1) % values.size();
    out.best_index = other;
    out.failed = true;
  }
  return out;
}

GroverMinimumFinder::GroverMinimumFinder(int rounds, std::uint64_t seed,
                                         const par::ExecPolicy& exec)
    : rounds_(rounds), rng_(seed), exec_(exec) {
  OVO_CHECK(rounds >= 1);
}

MinOutcome GroverMinimumFinder::find_min(
    const std::vector<std::int64_t>& values) {
  OVO_CHECK_MSG(!values.empty(), "find_min: empty value array");
  const MinFindResult r = durr_hoyer_min(values, rng_, rounds_, exec_);
  MinOutcome out;
  out.best_index = r.best_index;
  out.quantum_queries = static_cast<double>(r.oracle_queries);
  obs::Registry::global().record_f64(obs::Metric::kQuantumQueries,
                                     out.quantum_queries);
  obs::Registry::global().record(obs::Metric::kQuantumMinFindRounds,
                                 r.rounds);
  const std::int64_t true_min =
      *std::min_element(values.begin(), values.end());
  out.failed = values[r.best_index] != true_min;
  return out;
}

}  // namespace ovo::quantum
