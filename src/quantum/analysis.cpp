#include "quantum/analysis.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::quantum {

double fs_total_cells(int n) {
  OVO_CHECK(n >= 1);
  double total = 0.0;
  for (int k = 1; k <= n; ++k) {
    // C(n,k) subsets, k candidate last-variables each, each compaction
    // reads the predecessor table of 2^{n-k+1} cells.
    total += util::binomial(n, k) * k * std::exp2(n - k + 1);
  }
  return total;
}

double brute_force_total_cells(int n) {
  OVO_CHECK(n >= 1);
  // Each of n! orders is one chain: 2^n + 2^{n-1} + ... + 2 < 2^{n+1}.
  return util::factorial(n) * (std::exp2(n + 1) - 2.0);
}

double fs_peak_cells(int n) {
  OVO_CHECK(n >= 1);
  double peak = 0.0;
  for (int k = 1; k <= n; ++k) {
    const double resident = util::binomial(n, k - 1) * std::exp2(n - k + 1) +
                            util::binomial(n, k) * std::exp2(n - k);
    peak = std::max(peak, resident);
  }
  return peak;
}

double fs_star_cells(int n, int prefix, int block) {
  OVO_CHECK(prefix >= 0 && block >= 0 && prefix + block <= n);
  double total = 0.0;
  for (int j = 1; j <= block; ++j)
    total += util::binomial(block, j) * j * std::exp2(n - prefix - j + 1);
  return total;
}

PredictedCost opt_obdd_predicted_cells(int n,
                                       const std::vector<int>& boundaries,
                                       double log_inv_eps) {
  OVO_CHECK(!boundaries.empty());
  PredictedCost out;
  const int k1 = boundaries.front();
  // Preprocess runs FS* on the whole variable set but stops at layer k1.
  out.preprocess_cells = 0.0;
  for (int j = 1; j <= k1; ++j)
    out.preprocess_cells += util::binomial(n, j) * j * std::exp2(n - j + 1);

  // Stage recurrence (Eq. 6): L_{j+1} = sqrt(C(k_{j+1}, k_j)) *
  // (L_j + extension cost from k_j to k_{j+1}), with k_{m+1} = n.
  double L = 1.0;  // L_1 = O*(1): a QRAM lookup
  std::vector<int> ks = boundaries;
  ks.push_back(n);
  for (std::size_t j = 0; j + 1 < ks.size(); ++j) {
    const int lo = ks[j];
    const int hi = ks[j + 1];
    const double cands = util::binomial(hi, lo);
    const double ext = fs_star_cells(n, lo, hi - lo);
    L = std::sqrt(cands) * log_inv_eps * (L + ext);
  }
  out.quantum_cells = L;
  out.total = out.preprocess_cells + out.quantum_cells;
  return out;
}

}  // namespace ovo::quantum
