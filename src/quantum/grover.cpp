#include "quantum/grover.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quantum/statevector.hpp"
#include "util/check.hpp"

namespace ovo::quantum {

namespace {

int qubits_for(std::uint64_t space) {
  int q = 0;
  while ((std::uint64_t{1} << q) < space) ++q;
  return q;
}

}  // namespace

std::optional<std::uint64_t> grover_search(
    std::uint64_t space, const std::function<bool(std::uint64_t)>& marked,
    util::Xoshiro256& rng, GroverStats* stats, const par::ExecPolicy& exec,
    rt::Governor* gov) {
  OVO_CHECK(space >= 1);
  const int q = qubits_for(space);
  Statevector psi(q);
  psi.set_exec_policy(exec);
  psi.set_governor(gov);
  const auto oracle = [&](std::uint64_t x) { return x < space && marked(x); };

  // BBHT: grow the iteration-count ceiling geometrically.
  const double lambda = 6.0 / 5.0;
  double m = 1.0;
  const double sqrt_dim = std::sqrt(static_cast<double>(psi.dimension()));
  // Total budget ~ 9 sqrt(N): past this, declare "no solution found".
  const std::uint64_t budget =
      9 * static_cast<std::uint64_t>(std::ceil(sqrt_dim)) + 9;
  std::uint64_t used = 0;
  while (used <= budget) {
    const std::uint64_t j =
        rng.below(static_cast<std::uint64_t>(std::ceil(m)));
    // One run sweeps the full amplitude vector ~3 times per iteration
    // (oracle + diffusion's reduce and write-back) plus once for the
    // measurement; admitting it whole, after the schedule draw, keeps the
    // RNG stream a deterministic prefix under a fixed work budget.
    if (gov != nullptr) {
      const std::uint64_t run_cost = (3 * j + 1) * psi.dimension();
      if (gov->stopped() || !gov->admit_work(run_cost)) return std::nullopt;
      gov->charge(run_cost);
    }
    OVO_TRACE_SPAN_ARGS("grover.run", "quantum", 0, "iterations", j,
                        "qubits", q);
    psi.reset_uniform();
    for (std::uint64_t i = 0; i < j; ++i) {
      psi.apply_phase_oracle(oracle);
      psi.apply_diffusion();
      if (gov != nullptr && gov->stopped()) return std::nullopt;
    }
    // Each run costs its Grover iterations plus the classical verification
    // of the measured candidate (counted as one query so the budget always
    // advances — j may be 0 when the schedule ceiling is 1).
    used += j + 1;
    obs::Registry::global().record(obs::Metric::kQuantumGroverQueries,
                                   j + 1);
    obs::Registry::global().record(obs::Metric::kQuantumMeasurements, 1);
    if (stats != nullptr) {
      stats->oracle_queries += j + 1;
      ++stats->measurements;
    }
    const std::uint64_t x = psi.measure(rng);
    if (oracle(x)) return x;  // classical verification of the measurement
    m = std::min(lambda * m, sqrt_dim);
  }
  return std::nullopt;
}

MinFindResult durr_hoyer_min(const std::vector<std::int64_t>& values,
                             util::Xoshiro256& rng, int rounds,
                             const par::ExecPolicy& exec, rt::Governor* gov) {
  OVO_CHECK_MSG(!values.empty(), "durr_hoyer_min: empty value array");
  OVO_CHECK(rounds >= 1);
  const std::uint64_t n = values.size();
  MinFindResult out;
  bool have_best = false;

  for (int r = 0; r < rounds; ++r) {
    // Once the governor has recorded any non-complete outcome (soft
    // refusal or hard stop), further boosting rounds would be cut short
    // anyway — stop with the best index seen so far.
    if (gov != nullptr && gov->outcome() != rt::Outcome::kComplete) break;
    ++out.rounds;
    // DH threshold descent, starting from a uniformly random index.
    std::uint64_t threshold_idx = rng.below(n);
    while (true) {
      GroverStats stats;
      const std::int64_t threshold = values[threshold_idx];
      const auto better = [&](std::uint64_t x) {
        return values[x] < threshold;
      };
      const auto hit = grover_search(n, better, rng, &stats, exec, gov);
      out.oracle_queries += stats.oracle_queries;
      if (!hit.has_value()) break;  // probably at the minimum (or budget)
      threshold_idx = *hit;
    }
    if (!have_best ||
        values[threshold_idx] < values[out.best_index]) {
      out.best_index = threshold_idx;
      have_best = true;
    }
  }
  return out;
}

}  // namespace ovo::quantum
