#pragma once
// Grover search with an unknown number of marked items (the BBHT schedule)
// and Dürr–Høyer quantum minimum finding on top of it — the Lemma 6
// primitive of the paper, executed on the amplitude-level simulator so that
// query counts and failure statistics are the real ones.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "parallel/exec_policy.hpp"
#include "util/rng.hpp"

namespace ovo::quantum {

struct GroverStats {
  std::uint64_t oracle_queries = 0;   ///< Grover iterations performed
  std::uint64_t measurements = 0;     ///< verification measurements
};

/// Searches for any x in [0, space) with marked(x), using the
/// Boyer–Brassard–Høyer–Tapp schedule for an unknown number of solutions.
/// Returns nullopt if the iteration budget is exhausted without a verified
/// hit (possible both when no solution exists and, with small probability,
/// when one does).
std::optional<std::uint64_t> grover_search(
    std::uint64_t space, const std::function<bool(std::uint64_t)>& marked,
    util::Xoshiro256& rng, GroverStats* stats = nullptr,
    const par::ExecPolicy& exec = {});

struct MinFindResult {
  std::size_t best_index = 0;
  std::uint64_t oracle_queries = 0;
  std::uint64_t rounds = 0;
};

/// Dürr–Høyer minimum finding over an explicit value array, boosted by
/// independent repetition: each round runs the DH threshold descent; the
/// final answer is the best index seen across `rounds` rounds, so the
/// failure probability decays exponentially in `rounds` (the
/// log(1/epsilon) factor of Lemma 6).
MinFindResult durr_hoyer_min(const std::vector<std::int64_t>& values,
                             util::Xoshiro256& rng, int rounds = 3,
                             const par::ExecPolicy& exec = {});

}  // namespace ovo::quantum
