#pragma once
// Grover search with an unknown number of marked items (the BBHT schedule)
// and Dürr–Høyer quantum minimum finding on top of it — the Lemma 6
// primitive of the paper, executed on the amplitude-level simulator so that
// query counts and failure statistics are the real ones.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/exec_policy.hpp"
#include "rt/budget.hpp"
#include "util/rng.hpp"

namespace ovo::quantum {

struct GroverStats {
  std::uint64_t oracle_queries = 0;   ///< Grover iterations performed
  std::uint64_t measurements = 0;     ///< verification measurements

  /// View over the obs registry's quantum.* metrics.
  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kQuantumGroverQueries, oracle_queries);
    l.record(obs::Metric::kQuantumMeasurements, measurements);
  }
  void from_ledger(const obs::Ledger& l) {
    oracle_queries = l.get(obs::Metric::kQuantumGroverQueries);
    measurements = l.get(obs::Metric::kQuantumMeasurements);
  }
};

/// Searches for any x in [0, space) with marked(x), using the
/// Boyer–Brassard–Høyer–Tapp schedule for an unknown number of solutions.
/// Returns nullopt if the iteration budget is exhausted without a verified
/// hit (possible both when no solution exists and, with small probability,
/// when one does).
///
/// When governed, each BBHT run is admitted as a whole — (j+1) Grover
/// iterations at 3·dimension amplitude-cells each — at a serial program
/// point after the schedule draw, so the RNG stream consumed under a fixed
/// work budget is thread-count-independent.  A refused run or a hard stop
/// returns nullopt (no verified hit), and the statevector's mutating
/// sweeps drain at chunk boundaries on hard stops.
std::optional<std::uint64_t> grover_search(
    std::uint64_t space, const std::function<bool(std::uint64_t)>& marked,
    util::Xoshiro256& rng, GroverStats* stats = nullptr,
    const par::ExecPolicy& exec = {}, rt::Governor* gov = nullptr);

struct MinFindResult {
  std::size_t best_index = 0;
  std::uint64_t oracle_queries = 0;
  std::uint64_t rounds = 0;
};

/// Dürr–Høyer minimum finding over an explicit value array, boosted by
/// independent repetition: each round runs the DH threshold descent; the
/// final answer is the best index seen across `rounds` rounds, so the
/// failure probability decays exponentially in `rounds` (the
/// log(1/epsilon) factor of Lemma 6).
///
/// When governed, the descent degrades gracefully: a budget-refused
/// search looks like an exhausted one (descent stops at the current
/// threshold), later rounds are skipped once the governor reports any
/// non-complete outcome, and the returned index is always the best
/// candidate actually inspected.
MinFindResult durr_hoyer_min(const std::vector<std::int64_t>& values,
                             util::Xoshiro256& rng, int rounds = 3,
                             const par::ExecPolicy& exec = {},
                             rt::Governor* gov = nullptr);

}  // namespace ovo::quantum
