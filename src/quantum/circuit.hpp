#pragma once
// Gate-level quantum circuits executed on the statevector simulator.
// This closes the gap between the operator-level Grover implementation
// (grover.cpp applies the oracle/diffusion operators directly) and a
// physically meaningful circuit: the diffusion operator is compiled to
// the textbook H/X/MCZ sandwich, and tests verify the two agree up to
// global phase — so the query counts reported by the simulator are the
// counts of an actual circuit.

#include <cstdint>
#include <functional>
#include <vector>

#include "quantum/statevector.hpp"

namespace ovo::quantum {

enum class QGate { kH, kX, kZ, kCZ, kMCZ, kPhaseOracle };

struct QGateInst {
  QGate gate = QGate::kH;
  int a = -1;                 ///< target / first qubit
  int b = -1;                 ///< second qubit for kCZ
  std::uint64_t mask = 0;     ///< control mask for kMCZ
  /// kPhaseOracle: a black-box phase flip (the quantum-search oracle);
  /// kept as a labeled black box exactly as the query model treats it.
  std::function<bool(std::uint64_t)> marked;
};

class QCircuit {
 public:
  explicit QCircuit(int qubits);

  int qubits() const { return qubits_; }
  std::size_t size() const { return gates_.size(); }

  QCircuit& h(int q);
  QCircuit& x(int q);
  QCircuit& z(int q);
  QCircuit& cz(int a, int b);
  QCircuit& mcz(std::uint64_t mask);
  QCircuit& oracle(std::function<bool(std::uint64_t)> marked);

  /// Appends the textbook Grover diffusion: H^n X^n MCZ(all) X^n H^n
  /// (equal to -(2|s><s| - I); the global sign is unobservable).
  QCircuit& grover_diffusion();

  /// Appends `iterations` Grover rounds for the given oracle.
  QCircuit& grover_rounds(std::function<bool(std::uint64_t)> marked,
                          int iterations);

  /// Runs the circuit on `psi`. Returns the number of oracle invocations.
  std::uint64_t run(Statevector& psi) const;

 private:
  int qubits_;
  std::vector<QGateInst> gates_;
};

}  // namespace ovo::quantum
