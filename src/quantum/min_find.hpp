#pragma once
// The Lemma 6 primitive as used by the OptOBDD algorithms: find the index
// of the minimum of an (expensive-to-evaluate) value array.
//
// Two interchangeable implementations:
//
//  * AccountingMinimumFinder — returns the exact argmin and *charges* the
//    theoretical quantum query count O(sqrt(N) log(1/eps)); optionally
//    injects the algorithm's failure mode (a non-minimal index) at a
//    configurable rate, exercising Theorem 1's "always a valid OBDD, not
//    minimum with small probability" guarantee.
//
//  * GroverMinimumFinder — runs Dürr–Høyer on the statevector simulator;
//    queries and failures are the real quantum statistics.  Practical for
//    candidate sets up to a few thousand.
//
// Classically, both must look at every value (the values are computed by
// the caller); the quantum query count is the quantity of interest for the
// complexity reproduction.

#include <cstdint>
#include <vector>

#include "parallel/exec_policy.hpp"
#include "util/rng.hpp"

namespace ovo::quantum {

struct MinOutcome {
  std::size_t best_index = 0;
  /// Queries a quantum computer would have spent on this call.
  double quantum_queries = 0.0;
  /// True when failure injection / real DH failure returned a non-minimum.
  bool failed = false;
};

class MinimumFinder {
 public:
  virtual ~MinimumFinder() = default;
  virtual MinOutcome find_min(const std::vector<std::int64_t>& values) = 0;
};

class AccountingMinimumFinder final : public MinimumFinder {
 public:
  /// `log_inv_eps` is the Lemma 6 log(1/epsilon) factor (the paper picks
  /// eps = 2^{-poly(n)}; callers typically pass n). `failure_rate` > 0
  /// injects DH-style failures for robustness experiments.
  explicit AccountingMinimumFinder(double log_inv_eps = 1.0,
                                   double failure_rate = 0.0,
                                   std::uint64_t seed = 1);

  MinOutcome find_min(const std::vector<std::int64_t>& values) override;

 private:
  double log_inv_eps_;
  double failure_rate_;
  util::Xoshiro256 rng_;
};

class GroverMinimumFinder final : public MinimumFinder {
 public:
  /// `exec` parallelizes the underlying statevector sweeps; serial by
  /// default (queries and failure statistics are exec-independent — only
  /// wall time changes).
  explicit GroverMinimumFinder(int rounds = 3, std::uint64_t seed = 1,
                               const par::ExecPolicy& exec = {});

  MinOutcome find_min(const std::vector<std::int64_t>& values) override;

 private:
  int rounds_;
  util::Xoshiro256 rng_;
  par::ExecPolicy exec_;
};

}  // namespace ovo::quantum
