#pragma once
// Numerical optimization of the division-point fractions alpha — the
// machinery behind the paper's Tables 1 and 2 and its headline constants.
//
// Notation (paper Sec. 3.2 / Sec. 4.1), with c = log2(gamma_sub) the
// exponent base of the block-extension subroutine (gamma_sub = 3 for FS*):
//
//   g_c(x, y) = (1 - y) + (y - x) * c
//   f_c(x, y) = (y / 2) * H(x / y) + g_c(x, y)
//
// The optimal alphas satisfy the balance system
//   1 - alpha_1 + H(alpha_1) = f_c(alpha_k, 1)            (Eq. 8 / 14)
//   f_c(alpha_{j-1}, alpha_j) = g_c(alpha_j, alpha_{j+1})  (Eq. 9 / 15)
// with alpha_{k+1} = 1, and the resulting time exponent is
//   log2(gamma_k) = 1 - alpha_1 + H(alpha_1).

#include <vector>

namespace ovo::quantum {

struct ChainSolution {
  double gamma = 0.0;          ///< resulting growth base (2^{1-a1+H(a1)})
  std::vector<double> alphas;  ///< optimal alpha_1..alpha_k
};

/// The f and g balance functions (exposed for tests).
double balance_g(double x, double y, double c);
double balance_f(double x, double y, double c);

/// gamma_0: the Sec. 3.1 bound *without* the classical preprocess
/// (single division point, no precomputed layer): 2.98581...
double gamma_no_preprocess();

/// Solves the k-point system for a subroutine with base `gamma_sub`
/// (Table 1 uses gamma_sub = 3). Throws util::CheckError if the solver
/// cannot bracket a root.
ChainSolution solve_alphas(int k, double gamma_sub = 3.0);

/// The Sec. 4.2 composition tower: starting from gamma_sub = 3, repeatedly
/// solve the k-point system and feed the resulting gamma back in as the
/// subroutine base.  Returns one entry per iteration (Table 2's rows).
std::vector<ChainSolution> composition_tower(int k, int iterations);

}  // namespace ovo::quantum
