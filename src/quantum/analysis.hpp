#pragma once
// Closed-form evaluation of the paper's cost recurrences with exact
// binomials — the predicted operation counts that the scaling benchmarks
// plot next to the measured ones.
//
//   * FS (Theorem 5):  sum_k C(n,k) * k * 2^{n-k+1}  ~ O*(3^n)
//   * brute force:     n! * 2^{n+1}                  ~ O*(n! 2^n)
//   * OptOBDD (Eqs. 5-7): preprocess + the sqrt-weighted stage recurrence.

#include <vector>

namespace ovo::quantum {

/// Table cells processed by the full FS dynamic program on n variables
/// (every subset I, every last-variable candidate, table size 2^{n-|I|+1}).
double fs_total_cells(int n);

/// Table cells processed by brute force over all n! orders (each order is
/// one chain of compactions costing ~2^{n+1} cells).
double brute_force_total_cells(int n);

/// Peak table cells simultaneously resident in the FS DP (Remark 1: space
/// is of the same order as time): max over layers k of the two adjacent
/// layers' total table sizes C(n,k-1) 2^{n-k+1} + C(n,k) 2^{n-k}.
double fs_peak_cells(int n);

/// Cells processed by FS* extending a prefix of size `prefix` by a block of
/// size `block` on an n-variable function (Lemma 8).
double fs_star_cells(int n, int prefix, int block);

struct PredictedCost {
  double preprocess_cells = 0.0;
  double quantum_cells = 0.0;  ///< the L_{k+1} term
  double total = 0.0;
};

/// Evaluates the Theorem 10 recurrence for realized integer boundaries
/// k_1 <= ... <= k_m on n variables. `log_inv_eps` is the Lemma 6
/// repetition factor applied to each sqrt(N) (the paper hides it in O*).
PredictedCost opt_obdd_predicted_cells(int n,
                                       const std::vector<int>& boundaries,
                                       double log_inv_eps = 1.0);

}  // namespace ovo::quantum
