#include "quantum/params.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::quantum {

namespace {

constexpr double kInvalid = std::numeric_limits<double>::quiet_NaN();

double entropy(double d) {
  if (d <= 0.0 || d >= 1.0) return 0.0;
  return -d * std::log2(d) - (1.0 - d) * std::log2(1.0 - d);
}

/// Forward-chains the alpha sequence from (a1, a2): Eq. (9) solved for
/// alpha_{j+1} (g_c is linear in its second argument).  The chain is a
/// shooting problem and numerically unstable (deviations in a2 amplify at
/// every step), so instead of returning NaN on failure we classify *how*
/// it failed, which gives bisection a usable sign on the whole interval:
///   sign < 0: the sequence stopped increasing (undershoot — the landing
///             value would fall below 1);
///   sign > 0: some alpha_j reached 1 early (overshoot);
///   sign = 0: chain completed; `landing` holds alpha_{k+1}.
struct ChainShot {
  int sign = 0;
  double landing = kInvalid;
  std::vector<double> a;  ///< a[1..k] valid when sign == 0
};

ChainShot chain(double a1, double a2, int k, double c) {
  ChainShot shot;
  shot.a.assign(static_cast<std::size_t>(k) + 2, kInvalid);
  shot.a[1] = a1;
  shot.a[2] = a2;
  if (!(a2 > a1)) {
    shot.sign = -1;
    return shot;
  }
  for (int j = 2; j <= k; ++j) {
    const double prev = shot.a[static_cast<std::size_t>(j) - 1];
    const double cur = shot.a[static_cast<std::size_t>(j)];
    if (cur >= 1.0) {
      shot.sign = 1;
      return shot;
    }
    const double F = balance_f(prev, cur, c);
    const double next = (F - 1.0 + c * cur) / (c - 1.0);
    if (!(next > cur)) {
      shot.sign = -1;
      return shot;
    }
    shot.a[static_cast<std::size_t>(j) + 1] = next;
  }
  shot.landing = shot.a[static_cast<std::size_t>(k) + 1];
  return shot;
}

/// Bisection on fn over [lo, hi]; requires a sign change.
template <typename Fn>
double bisect(Fn&& fn, double lo, double hi, int iters = 200) {
  double flo = fn(lo);
  OVO_CHECK_MSG(std::isfinite(flo), "bisect: invalid bracket");
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = fn(mid);
    if (!std::isfinite(fm) || (flo < 0) == (fm < 0)) {
      lo = mid;
      if (std::isfinite(fm)) flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Scans [lo, hi] for a sign change of fn and bisects it.
template <typename Fn>
double find_root(Fn&& fn, double lo, double hi, int samples = 400) {
  double prev_x = kInvalid;
  double prev_f = kInvalid;
  for (int i = 0; i <= samples; ++i) {
    const double x = lo + (hi - lo) * i / samples;
    const double fx = fn(x);
    if (!std::isfinite(fx)) {
      prev_x = kInvalid;
      continue;
    }
    if (std::isfinite(prev_f) && (prev_f < 0) != (fx < 0))
      return bisect(fn, prev_x, x);
    prev_x = x;
    prev_f = fx;
  }
  OVO_CHECK_MSG(false, "find_root: no sign change found");
  return kInvalid;
}

}  // namespace

double balance_g(double x, double y, double c) {
  return (1.0 - y) + (y - x) * c;
}

double balance_f(double x, double y, double c) {
  return 0.5 * y * entropy(x / y) + balance_g(x, y, c);
}

double gamma_no_preprocess() {
  // Sec. 3.1 without preprocess: balance (1-a) + a c = (1-a) c, then the
  // exponent is H(a)/2 + (1-a) + a c, with c = log2 3.
  const double c = std::log2(3.0);
  const double a = (c - 1.0) / (2.0 * c - 1.0);
  const double exponent = 0.5 * entropy(a) + (1.0 - a) + a * c;
  return std::exp2(exponent);
}

ChainSolution solve_alphas(int k, double gamma_sub) {
  OVO_CHECK_MSG(k >= 1, "solve_alphas: k must be >= 1");
  OVO_CHECK_MSG(gamma_sub > 2.0, "solve_alphas: gamma_sub must exceed 2");
  const double c = std::log2(gamma_sub);

  if (k == 1) {
    // Single equation: 1 - a + H(a) = f_c(a, 1).
    const double a1 = find_root(
        [&](double a) {
          return (1.0 - a + entropy(a)) - balance_f(a, 1.0, c);
        },
        1e-4, 0.4999);
    ChainSolution s;
    s.alphas = {a1};
    s.gamma = std::exp2(1.0 - a1 + entropy(a1));
    return s;
  }

  // Two-dimensional system in (a1, a2): the chain must land on
  // alpha_{k+1} = 1, and Eq. (8) must hold for the resulting alpha_k.
  // The inner problem (find a2 given a1) is a shooting problem solved by
  // sign-aware bisection: the landing value is monotone increasing in a2,
  // and ChainShot classifies early failures with the correct sign, so the
  // bracket never needs finite samples.
  const auto shoot = [&](double a1, double a2) -> double {
    const ChainShot s = chain(a1, a2, k, c);
    if (s.sign != 0) return s.sign > 0 ? 1.0 : -1.0;
    return s.landing - 1.0;
  };
  const auto a2_for = [&](double a1) {
    double lo = a1 * (1.0 + 1e-15);
    double hi = 1.0;
    OVO_CHECK_MSG(shoot(a1, lo) < 0.0 && shoot(a1, hi) > 0.0,
                  "solve_alphas: inner bracket has no sign change");
    for (int i = 0; i < 200; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (shoot(a1, mid) < 0.0)
        lo = mid;
      else
        hi = mid;
    }
    return 0.5 * (lo + hi);
  };
  const double a1 = find_root(
      [&](double a1_cand) -> double {
        double a2;
        try {
          a2 = a2_for(a1_cand);
        } catch (const util::CheckError&) {
          return kInvalid;
        }
        const ChainShot s = chain(a1_cand, a2, k, c);
        if (s.sign != 0) return kInvalid;
        const double ak = s.a[static_cast<std::size_t>(k)];
        return (1.0 - a1_cand + entropy(a1_cand)) - balance_f(ak, 1.0, c);
      },
      1e-3, 0.3333);

  const double a2 = a2_for(a1);
  const ChainShot s_final = chain(a1, a2, k, c);
  OVO_CHECK_MSG(s_final.sign == 0, "solve_alphas: final chain invalid");
  ChainSolution s;
  s.alphas.assign(s_final.a.begin() + 1, s_final.a.begin() + 1 + k);
  s.gamma = std::exp2(1.0 - a1 + entropy(a1));
  return s;
}

std::vector<ChainSolution> composition_tower(int k, int iterations) {
  OVO_CHECK(iterations >= 1);
  std::vector<ChainSolution> rows;
  double gamma = 3.0;
  for (int i = 0; i < iterations; ++i) {
    ChainSolution s = solve_alphas(k, gamma);
    gamma = s.gamma;
    rows.push_back(std::move(s));
  }
  return rows;
}

}  // namespace ovo::quantum
