#include "quantum/opt_obdd.hpp"

#include <algorithm>
#include <cmath>

#include "core/multi_output.hpp"
#include "util/check.hpp"

namespace ovo::quantum {

namespace {

using core::DiagramKind;
using core::OpCounter;
using core::PrefixTable;
using util::Mask;

/// A block extension subroutine: produce FS(<chain, J>) from FS(<chain>),
/// reporting the block's within-J order (bottom-up) — FS* for plain
/// OptOBDD, a nested OptOBDD* for towers (the paper's Gamma).
using Extender = std::function<PrefixTable(
    const PrefixTable& base, Mask J, std::vector<int>* block_order)>;

struct Partial {
  PrefixTable table;
  std::vector<int> order_bottom_up;
  /// Estimated quantum work (table cells) to produce this partial result:
  /// sqrt(N)-weighted candidate costs per the paper's recurrence.
  double quantum_cost = 0.0;
};

/// One OptOBDD*(k, alpha) instance over block J starting from `base`
/// (paper Appendix D, OptOBDD_Gamma). Boundaries are computed from |J|.
class OptObddInstance {
 public:
  OptObddInstance(DiagramKind kind, std::vector<int> boundaries,
                  MinimumFinder& finder, Extender extend, OpCounter& ops,
                  QuantumStats& stats, bool use_preprocess,
                  const par::ExecPolicy& exec)
      : kind_(kind),
        boundaries_(std::move(boundaries)),
        finder_(finder),
        extend_(std::move(extend)),
        ops_(ops),
        stats_(stats),
        use_preprocess_(use_preprocess),
        exec_(exec) {}

  Partial run(const PrefixTable& base, Mask J) {
    OVO_CHECK(!boundaries_.empty());
    base_ = &base;
    double preprocess_cost = 0.0;
    if (use_preprocess_) {
      // Preprocess (pseudocode line 4): FS* up to the first boundary. Its
      // cost is paid classically, once.
      const std::uint64_t pre_cells = ops_.table_cells;
      preprocess_ =
          core::fs_star(base, J, boundaries_.front(), kind_, &ops_, exec_);
      preprocess_cost = static_cast<double>(ops_.table_cells - pre_cells);
    }
    Partial top =
        divide_and_conquer(J, static_cast<int>(boundaries_.size()) + 1);
    top.quantum_cost += preprocess_cost;
    return top;
  }

 private:
  Partial divide_and_conquer(Mask L, int t) {
    if (t == 1) {
      Partial p;
      if (use_preprocess_) {
        p.table = preprocess_.tables.at(L);
        p.order_bottom_up = reconstruct_prefix_order(L);
      } else {
        // gamma_0 regime: recompute FS of the leaf prefix on the fly; its
        // cost is incurred inside the quantum search.
        const std::uint64_t before = ops_.table_cells;
        p.table = core::fs_star_full(*base_, L, kind_, &ops_,
                                     &p.order_bottom_up, exec_);
        p.quantum_cost = static_cast<double>(ops_.table_cells - before);
      }
      return p;
    }
    const int target = boundaries_[static_cast<std::size_t>(t - 2)];
    // Enumerate candidate subsets K ⊆ L with |K| = target.
    const std::vector<int> l_vars = util::bits_of(L);
    std::vector<Mask> candidates;
    util::for_each_subset_of_size(static_cast<int>(l_vars.size()), target,
                                  [&](Mask dense) {
      Mask K = 0;
      util::for_each_bit(dense, [&](int b) {
        K |= Mask{1} << l_vars[static_cast<std::size_t>(b)];
      });
      candidates.push_back(K);
    });
    OVO_CHECK(!candidates.empty());

    // Evaluate MINCOST(<..., K, L\K>) for every candidate — the work a
    // quantum computer performs in superposition.
    std::vector<Partial> partials;
    partials.reserve(candidates.size());
    std::vector<std::int64_t> values;
    values.reserve(candidates.size());
    double candidate_cost_sum = 0.0;
    for (const Mask K : candidates) {
      Partial sub = divide_and_conquer(K, t - 1);
      std::vector<int> ext_order;
      const std::uint64_t ext_cells_before = ops_.table_cells;
      PrefixTable ext = extend_(sub.table, L & ~K, &ext_order);
      candidate_cost_sum +=
          sub.quantum_cost +
          static_cast<double>(ops_.table_cells - ext_cells_before);
      sub.table = std::move(ext);
      sub.order_bottom_up.insert(sub.order_bottom_up.end(),
                                 ext_order.begin(), ext_order.end());
      values.push_back(static_cast<std::int64_t>(sub.table.mincost()));
      partials.push_back(std::move(sub));
    }
    stats_.candidates_evaluated += candidates.size();

    const MinOutcome outcome = finder_.find_min(values);
    stats_.quantum_queries += outcome.quantum_queries;
    ++stats_.min_find_calls;
    if (outcome.failed) ++stats_.min_find_failures;
    Partial winner = std::move(partials[outcome.best_index]);
    // Paper recurrence L_{t} = sqrt(N) * (avg per-candidate cost): each
    // quantum query re-runs one candidate evaluation.
    winner.quantum_cost = outcome.quantum_queries *
                          (candidate_cost_sum /
                           static_cast<double>(candidates.size()));
    return winner;
  }

  /// Order of a precomputed prefix K (t = 1): walk the preprocess DP
  /// back-pointers from K down to the empty set.
  std::vector<int> reconstruct_prefix_order(Mask K) const {
    std::vector<int> top_down;
    while (K != 0) {
      const auto it = preprocess_.best_last.find(K);
      OVO_CHECK_MSG(it != preprocess_.best_last.end(),
                    "OptOBDD: missing preprocess back-pointer");
      top_down.push_back(it->second);
      K &= ~(Mask{1} << it->second);
    }
    return {top_down.rbegin(), top_down.rend()};
  }

  DiagramKind kind_;
  std::vector<int> boundaries_;
  MinimumFinder& finder_;
  Extender extend_;
  OpCounter& ops_;
  QuantumStats& stats_;
  bool use_preprocess_;
  par::ExecPolicy exec_;
  const PrefixTable* base_ = nullptr;
  core::FsStarResult preprocess_;
};

/// Runs one OptOBDD* instance (fresh, since preprocess state is per block).
Partial run_instance(const PrefixTable& base, Mask J, DiagramKind kind,
                     const std::vector<double>& alphas,
                     MinimumFinder& finder, const Extender& extend,
                     OpCounter& ops, QuantumStats& stats,
                     bool use_preprocess = true,
                     const par::ExecPolicy& exec = {}) {
  const std::vector<int> boundaries =
      realize_boundaries(alphas, util::popcount(J));
  OptObddInstance inst(kind, boundaries, finder, extend, ops, stats,
                       use_preprocess, exec);
  return inst.run(base, J);
}

/// Adds a finished run's accounting to the caller's unified OracleStats
/// (each candidate evaluated in simulated superposition is one query
/// answered by one actual evaluation; the simulation's table cells are
/// the ops ledger; the finder's query counts go to the min_find mirror).
void mirror_oracle_stats(const OptObddResult& result,
                         reorder::OracleStats* os) {
  if (os == nullptr) return;
  os->queries += result.quantum.candidates_evaluated;
  os->evals += result.quantum.candidates_evaluated;
  os->ops += result.classical_ops;
  os->min_find_calls +=
      static_cast<std::uint64_t>(result.quantum.min_find_calls);
  os->min_find_queries += result.quantum.quantum_queries;
}

}  // namespace

std::vector<int> realize_boundaries(const std::vector<double>& alphas,
                                    int block_size) {
  OVO_CHECK_MSG(!alphas.empty(), "OptOBDD: need at least one alpha");
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    OVO_CHECK_MSG(alphas[i] > 0.0 && alphas[i] < 1.0,
                  "OptOBDD: alphas must lie in (0,1)");
    if (i > 0)
      OVO_CHECK_MSG(alphas[i] >= alphas[i - 1],
                    "OptOBDD: alphas must be non-decreasing");
  }
  std::vector<int> out;
  out.reserve(alphas.size());
  int prev = 0;
  for (const double a : alphas) {
    int k = static_cast<int>(std::lround(a * block_size));
    k = std::clamp(k, prev, std::max(0, block_size - 1));
    out.push_back(k);
    prev = k;
  }
  return out;
}

OptObddResult opt_obdd_minimize(const tt::TruthTable& f,
                                const OptObddOptions& options) {
  OVO_CHECK_MSG(options.finder != nullptr, "OptOBDD: finder required");
  OptObddResult result;
  result.boundaries = realize_boundaries(options.alphas, f.num_vars());

  const PrefixTable base = core::initial_table(f);
  const Mask all = util::full_mask(f.num_vars());

  // Plain OptOBDD: the extension subroutine is the deterministic FS*.
  const Extender fs_extender = [&](const PrefixTable& b, Mask J,
                                   std::vector<int>* order) {
    return core::fs_star_full(b, J, options.kind, &result.classical_ops,
                              order, options.exec);
  };

  Partial top =
      run_instance(base, all, options.kind, options.alphas, *options.finder,
                   fs_extender, result.classical_ops, result.quantum,
                   options.use_preprocess, options.exec);
  result.min_internal_nodes = top.table.mincost();
  result.quantum.quantum_charged_cells = top.quantum_cost;
  result.order_root_first.assign(top.order_bottom_up.rbegin(),
                                 top.order_bottom_up.rend());
  mirror_oracle_stats(result, options.oracle_stats);
  return result;
}

OptObddResult opt_obdd_minimize_shared(
    const std::vector<tt::TruthTable>& outputs,
    const OptObddOptions& options) {
  OVO_CHECK_MSG(options.finder != nullptr, "OptOBDD: finder required");
  OptObddResult result;
  int n = 0;
  const PrefixTable base = core::shared_initial_table(outputs, &n);
  result.boundaries = realize_boundaries(options.alphas, n);
  const Mask x_vars = util::full_mask(n);

  const Extender fs_extender = [&](const PrefixTable& b, Mask J,
                                   std::vector<int>* order) {
    return core::fs_star_full(b, J, options.kind, &result.classical_ops,
                              order, options.exec);
  };
  Partial top = run_instance(base, x_vars, options.kind, options.alphas,
                             *options.finder, fs_extender,
                             result.classical_ops, result.quantum,
                             options.use_preprocess, options.exec);
  result.min_internal_nodes = top.table.mincost();
  result.quantum.quantum_charged_cells = top.quantum_cost;
  result.order_root_first.assign(top.order_bottom_up.rbegin(),
                                 top.order_bottom_up.rend());
  mirror_oracle_stats(result, options.oracle_stats);
  return result;
}

OptObddResult tower_minimize(const tt::TruthTable& f,
                             const TowerOptions& options) {
  OVO_CHECK_MSG(options.finder != nullptr, "tower: finder required");
  OVO_CHECK_MSG(!options.alpha_levels.empty(), "tower: need >= 1 level");
  OptObddResult result;
  result.boundaries =
      realize_boundaries(options.alpha_levels.back(), f.num_vars());

  const PrefixTable base = core::initial_table(f);
  const Mask all = util::full_mask(f.num_vars());

  // Gamma_0 = FS*; Gamma_{i+1} = OptOBDD*_{Gamma_i}(alpha_levels[i]).
  Extender gamma = [&](const PrefixTable& b, Mask J,
                       std::vector<int>* order) {
    return core::fs_star_full(b, J, options.kind, &result.classical_ops,
                              order, options.exec);
  };
  for (std::size_t lvl = 0; lvl + 1 < options.alpha_levels.size(); ++lvl) {
    const std::vector<double>& alphas = options.alpha_levels[lvl];
    const Extender inner = gamma;
    gamma = [&, alphas, inner](const PrefixTable& b, Mask J,
                               std::vector<int>* order) {
      if (util::popcount(J) <= 1) {
        // Degenerate block: divide-and-conquer adds nothing; extend
        // directly with the inner subroutine.
        return inner(b, J, order);
      }
      Partial p = run_instance(b, J, options.kind, alphas, *options.finder,
                               inner, result.classical_ops, result.quantum,
                               /*use_preprocess=*/true, options.exec);
      if (order != nullptr) *order = p.order_bottom_up;
      return std::move(p.table);
    };
  }

  Partial top = run_instance(base, all, options.kind,
                             options.alpha_levels.back(), *options.finder,
                             gamma, result.classical_ops, result.quantum,
                             /*use_preprocess=*/true, options.exec);
  result.min_internal_nodes = top.table.mincost();
  // Tower accounting note: nested instances contribute their *classical*
  // simulation cost to the extension measurements, so this is an upper
  // bound on the charged quantum work.
  result.quantum.quantum_charged_cells = top.quantum_cost;
  result.order_root_first.assign(top.order_bottom_up.rbegin(),
                                 top.order_bottom_up.rend());
  return result;
}

}  // namespace ovo::quantum
