#pragma once
// The paper's quantum algorithms, simulated:
//
//  * OptOBDD(k, alpha)        — Sec. 3 divide-and-conquer (Theorem 10):
//    split the ordering at boundaries k_1 < ... < k_m (fractions alpha of
//    n), quantum-minimum-find the best variable subset at each boundary,
//    and run FS* between boundaries.
//
//  * OptOBDD*_Gamma(k, alpha) — Sec. 4 composition (Theorem 13): the same
//    divide-and-conquer, but the block-extension subroutine Gamma is itself
//    an OptOBDD* instance instead of FS*; towers of these drive the bound
//    from 2.83728^n down to 2.77286^n.
//
// The quantum minimum finding is a MinimumFinder (accounting model or
// amplitude-level Dürr–Høyer; see min_find.hpp).  The simulation evaluates
// every candidate classically (that is what simulating quantum search
// costs); the returned query counts are what a quantum computer would
// spend, which is the quantity the complexity claims are about.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "parallel/exec_policy.hpp"
#include "quantum/min_find.hpp"
#include "reorder/eval_context.hpp"
#include "tt/truth_table.hpp"

namespace ovo::quantum {

struct QuantumStats {
  double quantum_queries = 0.0;  ///< total charged/actual oracle queries
  int min_find_calls = 0;
  int min_find_failures = 0;     ///< calls that returned a non-minimum
  std::uint64_t candidates_evaluated = 0;
  /// Estimated table cells a quantum computer would process: the paper's
  /// recurrence L_{j+1} = sqrt(N) (L_j + extension cost), evaluated with
  /// the *measured* per-candidate costs and the finder's actual query
  /// counts, plus the classical preprocess cost. This is the number to
  /// compare against classical_ops.table_cells (FS processes ~3^n cells;
  /// this should grow like gamma^n).
  double quantum_charged_cells = 0.0;
};

struct OptObddResult {
  std::vector<int> order_root_first;
  std::uint64_t min_internal_nodes = 0;
  core::OpCounter classical_ops;  ///< simulation work in table cells
  QuantumStats quantum;
  std::vector<int> boundaries;    ///< realized k_1..k_m for the top call
};

struct OptObddOptions {
  core::DiagramKind kind = core::DiagramKind::kBdd;
  /// Division-point fractions 0 < alpha_1 < ... < alpha_m < 1 (Theorem 10's
  /// alpha vector). Boundaries are round(alpha_j * n), clamped monotone.
  std::vector<double> alphas;
  MinimumFinder* finder = nullptr;  ///< required; non-owning
  /// Sec. 3.1 ablation: with the classical preprocess (default, the
  /// gamma_1 = 2.97625 regime and better) the first-boundary prefixes are
  /// precomputed once; without it (the gamma_0 = 2.98581 regime) each
  /// leaf recomputes FS of its prefix inside the quantum search.
  bool use_preprocess = true;
  /// Execution policy forwarded to every FS* invocation (preprocess and
  /// block extensions); serial by default.
  par::ExecPolicy exec;
  /// Optional unified-counter mirror: on return, the run's candidate
  /// evaluations, classical simulation cells, and minimum-finder query
  /// accounting are added here in the shared OracleStats vocabulary.
  /// QuantumStats is unaffected; this is a second view, not a move.
  reorder::OracleStats* oracle_stats = nullptr;
};

/// OptOBDD(k, alpha) on a truth table (Theorem 10 when finder errors are
/// negligible: output equals FS's minimum).
OptObddResult opt_obdd_minimize(const tt::TruthTable& f,
                                const OptObddOptions& options);

/// OptOBDD over a shared multi-rooted diagram (selector-variable
/// reduction, see core/multi_output.hpp): the quantum algorithm applies
/// unchanged because the selector variables simply stay in the free part
/// of every prefix table.
OptObddResult opt_obdd_minimize_shared(
    const std::vector<tt::TruthTable>& outputs,
    const OptObddOptions& options);

/// Multi-level composition tower (Sec. 4.2): alpha_levels.front() is the
/// innermost OptOBDD*_{FS*} instance, each subsequent level wraps the
/// previous as its Gamma subroutine; the last level is the algorithm run
/// on the full problem.
struct TowerOptions {
  core::DiagramKind kind = core::DiagramKind::kBdd;
  std::vector<std::vector<double>> alpha_levels;
  MinimumFinder* finder = nullptr;
  /// Execution policy forwarded to every FS* invocation; serial by default.
  par::ExecPolicy exec;
};

OptObddResult tower_minimize(const tt::TruthTable& f,
                             const TowerOptions& options);

/// The realized integer division points for a block of `block_size`
/// variables (exposed for tests/benches).
std::vector<int> realize_boundaries(const std::vector<double>& alphas,
                                    int block_size);

}  // namespace ovo::quantum
