#pragma once
// Minimal amplitude-level quantum statevector simulator — the "quantum
// computer" substrate (QRAM model substitution, see DESIGN.md).  It
// implements exactly the two operators Grover's algorithm needs:
//
//   * a phase oracle  O_f |x> = (-1)^{f(x)} |x>, and
//   * the diffusion operator  D = 2|s><s| - I  (inversion about the mean),
//
// plus projective measurement in the computational basis.  Applying the
// operators directly to the amplitude vector is unitarily identical to the
// standard gate decompositions, so query counts and success probabilities
// are exact.

#include <atomic>
#include <complex>
#include <cstdint>
#include <vector>

#include "parallel/exec_policy.hpp"
#include "parallel/thread_pool.hpp"
#include "rt/budget.hpp"
#include "util/rng.hpp"

namespace ovo::quantum {

class Statevector {
 public:
  /// Uniform superposition over 2^qubits basis states.
  explicit Statevector(int qubits);

  int qubits() const { return qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << qubits_; }

  /// Fans the amplitude sweeps (oracle, diffusion, probabilities, norms)
  /// out as one-node regions on the ovo::par task-graph scheduler.
  /// Serial by default.  Amplitude chunks are fixed-size (kAmpGrain) and
  /// reduction partials are folded in chunk order, so results do not
  /// depend on which thread ran which chunk.
  void set_exec_policy(const par::ExecPolicy& exec) { exec_ = exec; }
  const par::ExecPolicy& exec_policy() const { return exec_; }

  /// Attaches a governor whose hard-stop flag the *state-mutating* sweeps
  /// (oracle, diffusion, mcz) watch at chunk boundaries.  A sweep cut
  /// short leaves the amplitudes indeterminate — callers observe
  /// `gov->stopped()` and discard the state (Grover re-prepares it anyway).
  /// Read-only reductions are not cut (they are cheap and their result
  /// would otherwise be silently wrong).  Null detaches.
  void set_governor(const rt::Governor* gov) { gov_ = gov; }

  /// Resets to the uniform superposition.
  void reset_uniform();

  /// Phase oracle: flips the sign of every basis state x with marked(x).
  /// Each basis state touches only its own amplitude, so the sweep fans
  /// out over the pool without synchronization.
  template <typename Pred>
  void apply_phase_oracle(Pred&& marked) {
    par::ThreadPool::shared().parallel_for(
        std::uint64_t{0}, amps_.size(), kAmpGrain, exec_.resolved_threads(),
        stop_flag(), [&](std::uint64_t x, int) {
          if (marked(x)) amps_[x] = -amps_[x];
        });
  }

  /// Grover diffusion (inversion about the mean).
  void apply_diffusion();

  // --- elementary gates (for the gate-level circuit layer) -----------------

  /// Hadamard on qubit q.
  void apply_h(int q);
  /// Pauli-X on qubit q.
  void apply_x(int q);
  /// Pauli-Z on qubit q.
  void apply_z(int q);
  /// Controlled-Z between two qubits.
  void apply_cz(int a, int b);
  /// Multi-controlled Z: flips the phase of basis states where all qubits
  /// in `mask` are 1 (mask must be non-empty).
  void apply_mcz(std::uint64_t mask);

  /// Sets the state to the basis state |x> (used as circuit input).
  void set_basis_state(std::uint64_t x);

  /// Fidelity-style comparison ignoring global phase:
  /// |<this|other>| ~ 1.
  double overlap_magnitude(const Statevector& other) const;

  /// Probability that a measurement yields a state satisfying pred.
  template <typename Pred>
  double probability_of(Pred&& pred) const {
    return par::ThreadPool::shared().parallel_reduce(
        std::uint64_t{0}, amps_.size(), kAmpGrain, exec_.resolved_threads(),
        0.0,
        [&](std::uint64_t b, std::uint64_t e) {
          double p = 0.0;
          for (std::uint64_t x = b; x < e; ++x)
            if (pred(x)) p += std::norm(amps_[x]);
          return p;
        },
        [](double a, double b) { return a + b; });
  }

  /// Squared L2 norm (should stay 1 up to rounding; tests check this).
  double norm_squared() const;

  /// Projective measurement of all qubits; does not collapse the state
  /// (callers reset before reuse, matching Grover's restart structure).
  std::uint64_t measure(util::Xoshiro256& rng) const;

  const std::vector<std::complex<double>>& amplitudes() const {
    return amps_;
  }

 private:
  /// Amplitudes per pool chunk; sized so chunk bookkeeping is negligible
  /// next to the sweep itself, and fixed (not thread-count-derived) so the
  /// chunk boundaries — and hence every reduction's fold order — are the
  /// same for all thread counts > 1.
  static constexpr std::uint64_t kAmpGrain = 4096;

  const std::atomic<bool>* stop_flag() const {
    return gov_ != nullptr ? gov_->stop_flag() : nullptr;
  }

  int qubits_;
  std::vector<std::complex<double>> amps_;
  par::ExecPolicy exec_;
  const rt::Governor* gov_ = nullptr;
};

}  // namespace ovo::quantum
