#pragma once
// Minimal amplitude-level quantum statevector simulator — the "quantum
// computer" substrate (QRAM model substitution, see DESIGN.md).  It
// implements exactly the two operators Grover's algorithm needs:
//
//   * a phase oracle  O_f |x> = (-1)^{f(x)} |x>, and
//   * the diffusion operator  D = 2|s><s| - I  (inversion about the mean),
//
// plus projective measurement in the computational basis.  Applying the
// operators directly to the amplitude vector is unitarily identical to the
// standard gate decompositions, so query counts and success probabilities
// are exact.

#include <complex>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ovo::quantum {

class Statevector {
 public:
  /// Uniform superposition over 2^qubits basis states.
  explicit Statevector(int qubits);

  int qubits() const { return qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << qubits_; }

  /// Resets to the uniform superposition.
  void reset_uniform();

  /// Phase oracle: flips the sign of every basis state x with marked(x).
  template <typename Pred>
  void apply_phase_oracle(Pred&& marked) {
    for (std::uint64_t x = 0; x < amps_.size(); ++x)
      if (marked(x)) amps_[x] = -amps_[x];
  }

  /// Grover diffusion (inversion about the mean).
  void apply_diffusion();

  // --- elementary gates (for the gate-level circuit layer) -----------------

  /// Hadamard on qubit q.
  void apply_h(int q);
  /// Pauli-X on qubit q.
  void apply_x(int q);
  /// Pauli-Z on qubit q.
  void apply_z(int q);
  /// Controlled-Z between two qubits.
  void apply_cz(int a, int b);
  /// Multi-controlled Z: flips the phase of basis states where all qubits
  /// in `mask` are 1 (mask must be non-empty).
  void apply_mcz(std::uint64_t mask);

  /// Sets the state to the basis state |x> (used as circuit input).
  void set_basis_state(std::uint64_t x);

  /// Fidelity-style comparison ignoring global phase:
  /// |<this|other>| ~ 1.
  double overlap_magnitude(const Statevector& other) const;

  /// Probability that a measurement yields a state satisfying pred.
  template <typename Pred>
  double probability_of(Pred&& pred) const {
    double p = 0.0;
    for (std::uint64_t x = 0; x < amps_.size(); ++x)
      if (pred(x)) p += std::norm(amps_[x]);
    return p;
  }

  /// Squared L2 norm (should stay 1 up to rounding; tests check this).
  double norm_squared() const;

  /// Projective measurement of all qubits; does not collapse the state
  /// (callers reset before reuse, matching Grover's restart structure).
  std::uint64_t measure(util::Xoshiro256& rng) const;

  const std::vector<std::complex<double>>& amplitudes() const {
    return amps_;
  }

 private:
  int qubits_;
  std::vector<std::complex<double>> amps_;
};

}  // namespace ovo::quantum
