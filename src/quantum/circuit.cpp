#include "quantum/circuit.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ovo::quantum {

QCircuit::QCircuit(int qubits) : qubits_(qubits) {
  OVO_CHECK_MSG(qubits >= 1 && qubits <= 24, "QCircuit: qubit count");
}

QCircuit& QCircuit::h(int q) {
  OVO_CHECK(q >= 0 && q < qubits_);
  gates_.push_back(QGateInst{QGate::kH, q, -1, 0, nullptr});
  return *this;
}

QCircuit& QCircuit::x(int q) {
  OVO_CHECK(q >= 0 && q < qubits_);
  gates_.push_back(QGateInst{QGate::kX, q, -1, 0, nullptr});
  return *this;
}

QCircuit& QCircuit::z(int q) {
  OVO_CHECK(q >= 0 && q < qubits_);
  gates_.push_back(QGateInst{QGate::kZ, q, -1, 0, nullptr});
  return *this;
}

QCircuit& QCircuit::cz(int a, int b) {
  OVO_CHECK(a >= 0 && a < qubits_ && b >= 0 && b < qubits_ && a != b);
  gates_.push_back(QGateInst{QGate::kCZ, a, b, 0, nullptr});
  return *this;
}

QCircuit& QCircuit::mcz(std::uint64_t mask) {
  OVO_CHECK_MSG(mask != 0 && (mask >> qubits_) == 0, "mcz: bad mask");
  gates_.push_back(QGateInst{QGate::kMCZ, -1, -1, mask, nullptr});
  return *this;
}

QCircuit& QCircuit::oracle(std::function<bool(std::uint64_t)> marked) {
  OVO_CHECK(marked != nullptr);
  gates_.push_back(
      QGateInst{QGate::kPhaseOracle, -1, -1, 0, std::move(marked)});
  return *this;
}

QCircuit& QCircuit::grover_diffusion() {
  for (int q = 0; q < qubits_; ++q) h(q);
  for (int q = 0; q < qubits_; ++q) x(q);
  mcz(util::full_mask(qubits_));
  for (int q = 0; q < qubits_; ++q) x(q);
  for (int q = 0; q < qubits_; ++q) h(q);
  return *this;
}

QCircuit& QCircuit::grover_rounds(
    std::function<bool(std::uint64_t)> marked, int iterations) {
  OVO_CHECK(iterations >= 0);
  for (int i = 0; i < iterations; ++i) {
    oracle(marked);
    grover_diffusion();
  }
  return *this;
}

std::uint64_t QCircuit::run(Statevector& psi) const {
  OVO_CHECK_MSG(psi.qubits() == qubits_, "run: qubit count mismatch");
  std::uint64_t oracle_calls = 0;
  for (const QGateInst& g : gates_) {
    switch (g.gate) {
      case QGate::kH:
        psi.apply_h(g.a);
        break;
      case QGate::kX:
        psi.apply_x(g.a);
        break;
      case QGate::kZ:
        psi.apply_z(g.a);
        break;
      case QGate::kCZ:
        psi.apply_cz(g.a, g.b);
        break;
      case QGate::kMCZ:
        psi.apply_mcz(g.mask);
        break;
      case QGate::kPhaseOracle:
        psi.apply_phase_oracle(g.marked);
        ++oracle_calls;
        break;
    }
  }
  return oracle_calls;
}

}  // namespace ovo::quantum
