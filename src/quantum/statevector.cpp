#include "quantum/statevector.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ovo::quantum {

Statevector::Statevector(int qubits) : qubits_(qubits) {
  OVO_CHECK_MSG(qubits >= 0 && qubits <= 24,
                "Statevector: qubit count out of range");
  amps_.resize(std::uint64_t{1} << qubits);
  reset_uniform();
}

void Statevector::reset_uniform() {
  const double a = 1.0 / std::sqrt(static_cast<double>(amps_.size()));
  for (auto& amp : amps_) amp = a;
}

void Statevector::apply_diffusion() {
  par::ThreadPool& pool = par::ThreadPool::shared();
  const int threads = exec_.resolved_threads();
  std::complex<double> mean = pool.parallel_reduce(
      std::uint64_t{0}, amps_.size(), kAmpGrain, threads,
      std::complex<double>{0.0, 0.0},
      [&](std::uint64_t b, std::uint64_t e) {
        std::complex<double> s{0.0, 0.0};
        for (std::uint64_t x = b; x < e; ++x) s += amps_[x];
        return s;
      },
      [](std::complex<double> a, std::complex<double> b) { return a + b; });
  mean /= static_cast<double>(amps_.size());
  pool.parallel_for(std::uint64_t{0}, amps_.size(), kAmpGrain, threads,
                    stop_flag(), [&](std::uint64_t x, int) {
                      amps_[x] = 2.0 * mean - amps_[x];
                    });
}

void Statevector::apply_h(int q) {
  OVO_CHECK(q >= 0 && q < qubits_);
  const std::uint64_t bit = std::uint64_t{1} << q;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  for (std::uint64_t x = 0; x < amps_.size(); ++x) {
    if (x & bit) continue;
    const std::complex<double> a0 = amps_[x];
    const std::complex<double> a1 = amps_[x | bit];
    amps_[x] = (a0 + a1) * inv_sqrt2;
    amps_[x | bit] = (a0 - a1) * inv_sqrt2;
  }
}

void Statevector::apply_x(int q) {
  OVO_CHECK(q >= 0 && q < qubits_);
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::uint64_t x = 0; x < amps_.size(); ++x)
    if ((x & bit) == 0) std::swap(amps_[x], amps_[x | bit]);
}

void Statevector::apply_z(int q) {
  OVO_CHECK(q >= 0 && q < qubits_);
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::uint64_t x = 0; x < amps_.size(); ++x)
    if (x & bit) amps_[x] = -amps_[x];
}

void Statevector::apply_cz(int a, int b) {
  OVO_CHECK(a >= 0 && a < qubits_ && b >= 0 && b < qubits_ && a != b);
  apply_mcz((std::uint64_t{1} << a) | (std::uint64_t{1} << b));
}

void Statevector::apply_mcz(std::uint64_t mask) {
  OVO_CHECK_MSG(mask != 0 && (mask >> qubits_) == 0,
                "apply_mcz: bad control mask");
  par::ThreadPool::shared().parallel_for(
      std::uint64_t{0}, amps_.size(), kAmpGrain, exec_.resolved_threads(),
      stop_flag(), [&](std::uint64_t x, int) {
        if ((x & mask) == mask) amps_[x] = -amps_[x];
      });
}

void Statevector::set_basis_state(std::uint64_t x) {
  OVO_CHECK(x < amps_.size());
  for (auto& amp : amps_) amp = 0.0;
  amps_[x] = 1.0;
}

double Statevector::overlap_magnitude(const Statevector& other) const {
  OVO_CHECK(qubits_ == other.qubits_);
  const std::complex<double> dot = par::ThreadPool::shared().parallel_reduce(
      std::uint64_t{0}, amps_.size(), kAmpGrain, exec_.resolved_threads(),
      std::complex<double>{0.0, 0.0},
      [&](std::uint64_t b, std::uint64_t e) {
        std::complex<double> s{0.0, 0.0};
        for (std::uint64_t x = b; x < e; ++x)
          s += std::conj(amps_[x]) * other.amps_[x];
        return s;
      },
      [](std::complex<double> a, std::complex<double> b) { return a + b; });
  return std::abs(dot);
}

double Statevector::norm_squared() const {
  return par::ThreadPool::shared().parallel_reduce(
      std::uint64_t{0}, amps_.size(), kAmpGrain, exec_.resolved_threads(),
      0.0,
      [&](std::uint64_t b, std::uint64_t e) {
        double s = 0.0;
        for (std::uint64_t x = b; x < e; ++x) s += std::norm(amps_[x]);
        return s;
      },
      [](double a, double b) { return a + b; });
}

std::uint64_t Statevector::measure(util::Xoshiro256& rng) const {
  const double r = rng.uniform() * norm_squared();
  double acc = 0.0;
  for (std::uint64_t x = 0; x < amps_.size(); ++x) {
    acc += std::norm(amps_[x]);
    if (r < acc) return x;
  }
  return amps_.size() - 1;  // numerical edge: return the last state
}

}  // namespace ovo::quantum
