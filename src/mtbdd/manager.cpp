#include "mtbdd/manager.hpp"

#include <numeric>
#include <sstream>

namespace ovo::mtbdd {

Manager::Manager(int num_vars) : Manager(num_vars, [num_vars] {
  std::vector<int> id(static_cast<std::size_t>(num_vars));
  std::iota(id.begin(), id.end(), 0);
  return id;
}()) {}

Manager::Manager(int num_vars, std::vector<int> order)
    : Base(num_vars, std::move(order), 26, "mtbdd::Manager") {}

Manager::Stats Manager::stats() const {
  const ds::StoreStats base = store_stats();
  Stats s;
  s.pool_nodes = base.pool_nodes;
  s.unique_entries = base.unique_entries;
  s.terminal_entries = terminals_.size();
  s.unique = base.unique;
  return s;
}

NodeId Manager::terminal(Value v) {
  const std::uint64_t key = static_cast<std::uint64_t>(v);
  const auto [id, inserted] =
      terminals_.find_or_insert(key, static_cast<NodeId>(arena_.size()));
  if (inserted) {
    arena_.push(n_, id, id);
    values_.push_back(v);
  }
  return id;
}

NodeId Manager::from_value_table(const std::vector<Value>& values) {
  OVO_CHECK_MSG(values.size() == (std::uint64_t{1} << n_),
                "from_value_table: size must be 2^n");
  if (n_ == 0) return terminal(values[0]);
  reserve_for_table_build(values.size());
  std::vector<NodeId> cells(values.size());
  for (std::uint64_t a = 0; a < values.size(); ++a) {
    std::uint64_t assignment = 0;
    for (int j = 0; j < n_; ++j)
      assignment |= ((a >> j) & 1u) << order_[static_cast<std::size_t>(j)];
    cells[a] = terminal(values[assignment]);
  }
  for (int level = n_ - 1; level >= 0; --level) {
    const std::uint64_t half = std::uint64_t{1} << level;
    std::vector<NodeId> next(half);
    for (std::uint64_t a = 0; a < half; ++a)
      next[a] = make(level, cells[a], cells[a | half]);
    cells = std::move(next);
  }
  return cells[0];
}

Value Manager::eval(NodeId f, std::uint64_t assignment) const {
  while (!is_terminal(f)) {
    const int var = order_[static_cast<std::size_t>(arena_.level(f))];
    f = ((assignment >> var) & 1u) ? arena_.hi(f) : arena_.lo(f);
  }
  return values_[f];
}

std::vector<Value> Manager::to_value_table(NodeId f) const {
  std::vector<Value> out(std::uint64_t{1} << n_);
  for (std::uint64_t a = 0; a < out.size(); ++a) out[a] = eval(f, a);
  return out;
}

std::string Manager::to_dot(NodeId f, const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n  rankdir=TB;\n";
  std::vector<NodeId> stack{f};
  std::vector<std::uint8_t> seen(arena_.size(), 0);
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (seen[u]) continue;
    seen[u] = 1;
    if (is_terminal(u)) {
      os << "  node_" << u << " [label=\"" << values_[u] << "\", shape=box];\n";
      continue;
    }
    const Node un = node(u);
    os << "  node_" << u << " [label=\"x"
       << order_[static_cast<std::size_t>(un.level)] + 1
       << "\", shape=circle];\n";
    os << "  node_" << u << " -> node_" << un.lo << " [style=dotted];\n";
    os << "  node_" << u << " -> node_" << un.hi << " [style=solid];\n";
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  os << "}\n";
  return os.str();
}

}  // namespace ovo::mtbdd
