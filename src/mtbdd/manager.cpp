#include "mtbdd/manager.hpp"

#include <numeric>
#include <sstream>

#include "util/combinatorics.hpp"

namespace ovo::mtbdd {

Manager::Manager(int num_vars) : Manager(num_vars, [num_vars] {
  std::vector<int> id(static_cast<std::size_t>(num_vars));
  std::iota(id.begin(), id.end(), 0);
  return id;
}()) {}

Manager::Manager(int num_vars, std::vector<int> order)
    : n_(num_vars), order_(std::move(order)) {
  OVO_CHECK_MSG(num_vars >= 0 && num_vars <= 26,
                "mtbdd::Manager: num_vars out of range");
  OVO_CHECK_MSG(static_cast<int>(order_.size()) == n_,
                "mtbdd::Manager: order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order_),
                "mtbdd::Manager: order not a permutation");
  var_to_level_ = util::inverse_permutation(order_);
  unique_.resize(static_cast<std::size_t>(n_));
}

NodeId Manager::terminal(Value v) {
  if (const auto it = terminals_.find(v); it != terminals_.end())
    return it->second;
  const NodeId id = static_cast<NodeId>(pool_.size());
  pool_.push_back(Node{n_, id, id, v});
  terminals_.emplace(v, id);
  return id;
}

NodeId Manager::make(int level, NodeId lo, NodeId hi) {
  OVO_CHECK(level >= 0 && level < n_);
  OVO_DCHECK(pool_[lo].level > level && pool_[hi].level > level);
  if (lo == hi) return lo;
  auto& table = unique_[static_cast<std::size_t>(level)];
  const std::uint64_t key = (std::uint64_t{lo} << 32) | hi;
  if (const auto it = table.find(key); it != table.end()) return it->second;
  const NodeId id = static_cast<NodeId>(pool_.size());
  pool_.push_back(Node{level, lo, hi, 0});
  table.emplace(key, id);
  return id;
}

NodeId Manager::from_value_table(const std::vector<Value>& values) {
  OVO_CHECK_MSG(values.size() == (std::uint64_t{1} << n_),
                "from_value_table: size must be 2^n");
  if (n_ == 0) return terminal(values[0]);
  std::vector<NodeId> cells(values.size());
  for (std::uint64_t a = 0; a < values.size(); ++a) {
    std::uint64_t assignment = 0;
    for (int j = 0; j < n_; ++j)
      assignment |= ((a >> j) & 1u) << order_[static_cast<std::size_t>(j)];
    cells[a] = terminal(values[assignment]);
  }
  for (int level = n_ - 1; level >= 0; --level) {
    const std::uint64_t half = std::uint64_t{1} << level;
    std::vector<NodeId> next(half);
    for (std::uint64_t a = 0; a < half; ++a)
      next[a] = make(level, cells[a], cells[a | half]);
    cells = std::move(next);
  }
  return cells[0];
}

Value Manager::eval(NodeId f, std::uint64_t assignment) const {
  while (!is_terminal(f)) {
    const Node& fn = pool_[f];
    const int var = order_[static_cast<std::size_t>(fn.level)];
    f = ((assignment >> var) & 1u) ? fn.hi : fn.lo;
  }
  return pool_[f].value;
}

std::vector<Value> Manager::to_value_table(NodeId f) const {
  std::vector<Value> out(std::uint64_t{1} << n_);
  for (std::uint64_t a = 0; a < out.size(); ++a) out[a] = eval(f, a);
  return out;
}

std::uint64_t Manager::size(NodeId f) const {
  std::uint64_t total = 0;
  for (const std::uint64_t w : level_widths(f)) total += w;
  return total;
}

std::vector<std::uint64_t> Manager::level_widths(NodeId f) const {
  std::vector<std::uint64_t> widths(static_cast<std::size_t>(n_), 0);
  std::vector<NodeId> stack;
  std::unordered_map<NodeId, bool> seen;
  if (!is_terminal(f)) stack.push_back(f);
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (seen.count(u)) continue;
    seen.emplace(u, true);
    const Node& un = pool_[u];
    ++widths[static_cast<std::size_t>(un.level)];
    if (!is_terminal(un.lo)) stack.push_back(un.lo);
    if (!is_terminal(un.hi)) stack.push_back(un.hi);
  }
  return widths;
}

std::string Manager::to_dot(NodeId f, const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n  rankdir=TB;\n";
  std::vector<NodeId> stack{f};
  std::unordered_map<NodeId, bool> seen;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (seen.count(u)) continue;
    seen.emplace(u, true);
    const Node& un = pool_[u];
    if (is_terminal(u)) {
      os << "  node_" << u << " [label=\"" << un.value << "\", shape=box];\n";
      continue;
    }
    os << "  node_" << u << " [label=\"x"
       << order_[static_cast<std::size_t>(un.level)] + 1
       << "\", shape=circle];\n";
    os << "  node_" << u << " -> node_" << un.lo << " [style=dotted];\n";
    os << "  node_" << u << " -> node_" << un.hi << " [style=solid];\n";
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  os << "}\n";
  return os.str();
}

}  // namespace ovo::mtbdd
