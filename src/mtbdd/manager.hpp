#pragma once
// Multi-terminal BDD (MTBDD / ADD) package for functions
// f: {0,1}^n -> Z (Remark 2 of the paper: the FS machinery minimizes these
// with the truth table replaced by a value table).
//
// Terminals are interned per distinct value; internal nodes follow the BDD
// reduction rules (lo == hi merged, hash consing).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ovo::mtbdd {

using NodeId = std::uint32_t;
using Value = std::int64_t;

struct Node {
  std::int32_t level;   ///< n for terminals
  NodeId lo = 0;
  NodeId hi = 0;
  Value value = 0;      ///< meaningful for terminals only
};

class Manager {
 public:
  explicit Manager(int num_vars);
  Manager(int num_vars, std::vector<int> order);

  int num_vars() const { return n_; }
  const std::vector<int>& order() const { return order_; }
  int level_of_var(int var) const {
    OVO_CHECK(var >= 0 && var < n_);
    return var_to_level_[static_cast<std::size_t>(var)];
  }

  bool is_terminal(NodeId id) const { return pool_[id].level == n_; }
  const Node& node(NodeId id) const {
    OVO_DCHECK(id < pool_.size());
    return pool_[id];
  }

  /// Interned terminal for `v`.
  NodeId terminal(Value v);

  /// Number of distinct terminal values created so far.
  std::size_t num_terminals() const { return terminals_.size(); }

  /// Reduced unique internal node.
  NodeId make(int level, NodeId lo, NodeId hi);

  /// Builds the MTBDD of the value table `values` (size 2^n, cell a =
  /// f(assignment a), assignment bit i = variable i).
  NodeId from_value_table(const std::vector<Value>& values);

  /// Pointwise combination h(a) = op(f(a), g(a)).
  template <typename Op>
  NodeId apply(NodeId f, NodeId g, Op&& op) {
    std::unordered_map<std::uint64_t, NodeId> memo;
    return apply_rec(f, g, op, memo);
  }

  Value eval(NodeId f, std::uint64_t assignment) const;

  std::vector<Value> to_value_table(NodeId f) const;

  /// Non-terminal nodes reachable from f.
  std::uint64_t size(NodeId f) const;

  std::vector<std::uint64_t> level_widths(NodeId f) const;

  std::string to_dot(NodeId f, const std::string& name = "mtbdd") const;

 private:
  struct PairHash {
    std::size_t operator()(std::uint64_t k) const {
      k ^= k >> 33;
      k *= 0xff51afd7ed558ccdull;
      k ^= k >> 33;
      return static_cast<std::size_t>(k);
    }
  };

  template <typename Op>
  NodeId apply_rec(NodeId f, NodeId g, Op&& op,
                   std::unordered_map<std::uint64_t, NodeId>& memo) {
    if (is_terminal(f) && is_terminal(g))
      return terminal(op(pool_[f].value, pool_[g].value));
    const std::uint64_t key = (std::uint64_t{f} << 32) | g;
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    const int level = std::min(pool_[f].level, pool_[g].level);
    const auto cof = [&](NodeId u, bool hi_branch) {
      const Node& un = pool_[u];
      if (un.level != level) return u;
      return hi_branch ? un.hi : un.lo;
    };
    const NodeId lo = apply_rec(cof(f, false), cof(g, false), op, memo);
    const NodeId hi = apply_rec(cof(f, true), cof(g, true), op, memo);
    const NodeId out = make(level, lo, hi);
    memo.emplace(key, out);
    return out;
  }

  int n_;
  std::vector<int> order_;
  std::vector<int> var_to_level_;
  std::vector<Node> pool_;
  std::unordered_map<Value, NodeId> terminals_;
  std::vector<std::unordered_map<std::uint64_t, NodeId, PairHash>> unique_;
};

}  // namespace ovo::mtbdd
