#pragma once
// Multi-terminal BDD (MTBDD / ADD) package for functions
// f: {0,1}^n -> Z (Remark 2 of the paper: the FS machinery minimizes these
// with the truth table replaced by a value table).
//
// Terminals are interned per distinct value; internal nodes follow the BDD
// reduction rules (lo == hi merged, hash consing).  Storage lives in the
// shared ovo::ds node-store layer; the per-terminal value column is a
// parallel vector kept in sync through the base's node-creation hook.
// See docs/INTERNALS.md.

#include <cstdint>
#include <string>
#include <vector>

#include "ds/diagram_store.hpp"
#include "ds/hash.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace ovo::mtbdd {

using NodeId = std::uint32_t;
using Value = std::int64_t;

struct Node {
  std::int32_t level;   ///< n for terminals
  NodeId lo = 0;
  NodeId hi = 0;
  Value value = 0;      ///< meaningful for terminals only
};

class Manager : public ds::DiagramStoreBase<Manager> {
  using Base = ds::DiagramStoreBase<Manager>;
  friend Base;

 public:
  explicit Manager(int num_vars);
  Manager(int num_vars, std::vector<int> order);

  bool is_terminal(NodeId id) const { return arena_.level(id) == n_; }
  Node node(NodeId id) const {
    return Node{arena_.level(id), arena_.lo(id), arena_.hi(id), values_[id]};
  }

  struct Stats {
    std::size_t pool_nodes = 0;
    std::size_t unique_entries = 0;
    std::size_t terminal_entries = 0;  ///< distinct interned values
    ds::TableStats unique;

    /// See bdd::Manager::Stats::to_ledger — same ds.* metric slots.
    void to_ledger(obs::Ledger& l) const {
      l.record(obs::Metric::kDsPoolNodes, pool_nodes);
      l.record(obs::Metric::kDsUniqueEntries, unique_entries);
      l.record(obs::Metric::kDsTerminalEntries, terminal_entries);
      unique.to_ledger(l);
    }
  };
  Stats stats() const;

  /// Interned terminal for `v`.
  NodeId terminal(Value v);

  /// Number of distinct terminal values created so far.
  std::size_t num_terminals() const { return terminals_.size(); }

  /// Reduced unique internal node.
  NodeId make(int level, NodeId lo, NodeId hi) {
    return make_node(level, lo, hi);
  }

  /// Builds the MTBDD of the value table `values` (size 2^n, cell a =
  /// f(assignment a), assignment bit i = variable i).
  NodeId from_value_table(const std::vector<Value>& values);

  /// Pointwise combination h(a) = op(f(a), g(a)).
  template <typename Op>
  NodeId apply(NodeId f, NodeId g, Op&& op) {
    ds::UniqueTable memo;
    return apply_rec(f, g, op, memo);
  }

  Value eval(NodeId f, std::uint64_t assignment) const;

  std::vector<Value> to_value_table(NodeId f) const;

  // size(f) and level_widths(f) are inherited from ds::DiagramStoreBase.

  std::string to_dot(NodeId f, const std::string& name = "mtbdd") const;

 private:
  /// BDD reduction rule (a); terminal interning is separate (terminal()).
  static bool reduce_edge(NodeId lo, NodeId hi, NodeId* out) {
    if (lo == hi) {
      *out = lo;
      return true;
    }
    return false;
  }

  /// Base hook: keeps the value column aligned with the arena.
  void on_node_created(NodeId) { values_.push_back(0); }

  template <typename Op>
  NodeId apply_rec(NodeId f, NodeId g, Op&& op, ds::UniqueTable& memo) {
    if (is_terminal(f) && is_terminal(g))
      return terminal(op(values_[f], values_[g]));
    const std::uint64_t key = ds::pack_pair(f, g);
    if (const std::uint32_t* hit = memo.find(key)) return *hit;
    const int level = std::min(arena_.level(f), arena_.level(g));
    const auto cof = [&](NodeId u, bool hi_branch) {
      if (arena_.level(u) != level) return u;
      return hi_branch ? arena_.hi(u) : arena_.lo(u);
    };
    const NodeId lo = apply_rec(cof(f, false), cof(g, false), op, memo);
    const NodeId hi = apply_rec(cof(f, true), cof(g, true), op, memo);
    const NodeId out = make(level, lo, hi);
    memo.insert(key, out);
    return out;
  }

  /// Terminal value column, parallel to the arena (0 for internal nodes).
  std::vector<Value> values_;
  /// Interns values: key = the value's bit pattern, entry = terminal id.
  ds::UniqueTable terminals_;
};

}  // namespace ovo::mtbdd
