#pragma once
// Apply-based BDD construction: builds diagrams directly from symbolic
// representations (expressions, DNF/CNF, gate-level circuits) via ITE,
// without materializing a 2^n truth table.  This is how BDD packages are
// used in practice for functions with many variables; the truth-table path
// (Manager::from_truth_table) remains the reference for cross-checks and
// for the ordering DP, which is inherently exponential anyway.

#include "bdd/manager.hpp"
#include "tt/circuit.hpp"
#include "tt/expr.hpp"
#include "tt/normal_forms.hpp"
#include "tt/pla.hpp"

namespace ovo::bdd {

/// Builds the BDD of an expression tree bottom-up with ITE.
NodeId build_from_expr(Manager& m, const tt::Expr& e);

/// Builds the BDD of a DNF (OR of ANDs of literals).
NodeId build_from_dnf(Manager& m, const tt::Dnf& d);

/// Builds the BDD of a CNF (AND of ORs of literals).
NodeId build_from_cnf(Manager& m, const tt::Cnf& c);

/// Builds the BDD of a circuit output by symbolic simulation (one BDD per
/// signal, in topological order).
NodeId build_from_circuit(Manager& m, const tt::Circuit& ckt);

/// Builds one BDD per PLA output (shared node pool).
std::vector<NodeId> build_from_pla(Manager& m, const tt::Pla& pla);

}  // namespace ovo::bdd
