#include "bdd/dynamic_reorder.hpp"

#include "util/check.hpp"

namespace ovo::bdd {

std::size_t swap_adjacent_levels(Manager& m, int level) {
  return m.swap_adjacent_levels(level);
}

void move_level(Manager& m, int from_level, int to_level) {
  OVO_CHECK(from_level >= 0 && from_level < m.num_vars());
  OVO_CHECK(to_level >= 0 && to_level < m.num_vars());
  while (from_level < to_level) {
    m.swap_adjacent_levels(from_level);
    ++from_level;
  }
  while (from_level > to_level) {
    m.swap_adjacent_levels(from_level - 1);
    --from_level;
  }
}

std::uint64_t shared_reachable_size(const Manager& m,
                                    const std::vector<NodeId>& roots) {
  // Dense seen-bitvector over the arena: this runs once per sift swap, so
  // it must not allocate per-node like a hash set would.
  std::vector<std::uint8_t> seen(m.pool_size(), 0);
  std::uint64_t count = 0;
  std::vector<NodeId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (m.is_terminal(u) || seen[u]) continue;
    seen[u] = 1;
    ++count;
    const Node un = m.node(u);
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  return count;
}

SiftResult sift_in_place(Manager& m, const std::vector<NodeId>& roots,
                         int max_passes) {
  const int n = m.num_vars();
  SiftResult r;
  r.initial_nodes = shared_reachable_size(m, roots);
  r.final_nodes = r.initial_nodes;
  if (n < 2) return r;

  for (int pass = 0; pass < max_passes; ++pass) {
    ++r.passes;
    bool improved = false;
    for (int var = 0; var < n; ++var) {
      const int start = m.level_of_var(var);
      std::uint64_t best_size = shared_reachable_size(m, roots);
      int best_level = start;
      // Sweep down to the bottom...
      for (int l = start; l + 1 < n; ++l) {
        m.swap_adjacent_levels(l);
        ++r.swaps;
        const std::uint64_t s = shared_reachable_size(m, roots);
        if (s < best_size) {
          best_size = s;
          best_level = l + 1;
        }
      }
      // ...then up to the top...
      for (int l = n - 1; l > 0; --l) {
        m.swap_adjacent_levels(l - 1);
        ++r.swaps;
        const std::uint64_t s = shared_reachable_size(m, roots);
        if (s < best_size) {
          best_size = s;
          best_level = l - 1;
        }
      }
      // ...and settle at the best level seen.
      move_level(m, 0, best_level);
      r.swaps += static_cast<std::uint64_t>(best_level);
      const std::uint64_t settled = shared_reachable_size(m, roots);
      if (settled < r.final_nodes) {
        r.final_nodes = settled;
        improved = true;
      }
    }
    if (!improved) break;
  }
  r.final_nodes = shared_reachable_size(m, roots);
  return r;
}

}  // namespace ovo::bdd
