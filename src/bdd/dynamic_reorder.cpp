#include "bdd/dynamic_reorder.hpp"

#include <atomic>
#include <memory>

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace ovo::bdd {

namespace {

/// Arenas below this size scan serially: the BFS frontier machinery and
/// atomic claims cost more than the walk they would parallelize.
constexpr std::size_t kParallelScanThreshold = std::size_t{1} << 14;

}  // namespace

std::size_t swap_adjacent_levels(Manager& m, int level) {
  return m.swap_adjacent_levels(level);
}

void move_level(Manager& m, int from_level, int to_level) {
  OVO_CHECK(from_level >= 0 && from_level < m.num_vars());
  OVO_CHECK(to_level >= 0 && to_level < m.num_vars());
  while (from_level < to_level) {
    m.swap_adjacent_levels(from_level);
    ++from_level;
  }
  while (from_level > to_level) {
    m.swap_adjacent_levels(from_level - 1);
    --from_level;
  }
}

std::uint64_t shared_reachable_size(const Manager& m,
                                    const std::vector<NodeId>& roots) {
  // Dense seen-bitvector over the arena: this runs once per sift swap, so
  // it must not allocate per-node like a hash set would.
  std::vector<std::uint8_t> seen(m.pool_size(), 0);
  std::uint64_t count = 0;
  std::vector<NodeId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (m.is_terminal(u) || seen[u]) continue;
    seen[u] = 1;
    ++count;
    const Node un = m.node(u);
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  return count;
}

std::uint64_t shared_reachable_size(const Manager& m,
                                    const std::vector<NodeId>& roots,
                                    const par::ExecPolicy& exec) {
  const int threads = exec.resolved_threads();
  if (threads <= 1 || m.pool_size() < kParallelScanThreshold)
    return shared_reachable_size(m, roots);

  // Level-synchronous frontier BFS.  A node joins the next frontier only
  // if its claim byte flips 0 -> 1, so every node is counted exactly once
  // no matter which thread reaches it first; the count is the size of a
  // fixed set and therefore thread-count-independent.
  const std::unique_ptr<std::atomic<std::uint8_t>[]> claimed(
      new std::atomic<std::uint8_t>[m.pool_size()]());
  std::vector<NodeId> frontier;
  for (const NodeId u : roots)
    if (!m.is_terminal(u) &&
        claimed[u].exchange(1, std::memory_order_relaxed) == 0)
      frontier.push_back(u);
  std::uint64_t count = frontier.size();

  const int slots = par::ThreadPool::clamp_threads(threads);
  std::vector<std::vector<NodeId>> next(static_cast<std::size_t>(slots));
  while (!frontier.empty()) {
    const std::uint64_t grain =
        frontier.size() / (static_cast<std::uint64_t>(threads) * 4) + 1;
    par::ThreadPool::shared().parallel_for(
        std::uint64_t{0}, frontier.size(), grain, threads,
        [&](std::uint64_t i, int slot) {
          const Node un = m.node(frontier[static_cast<std::size_t>(i)]);
          for (const NodeId c : {un.lo, un.hi}) {
            if (m.is_terminal(c)) continue;
            if (claimed[c].exchange(1, std::memory_order_relaxed) == 0)
              next[static_cast<std::size_t>(slot)].push_back(c);
          }
        });
    frontier.clear();
    for (std::vector<NodeId>& v : next) {
      count += v.size();
      frontier.insert(frontier.end(), v.begin(), v.end());
      v.clear();
    }
  }
  return count;
}

SiftResult sift_in_place(Manager& m, const std::vector<NodeId>& roots,
                         int max_passes) {
  return sift_in_place(m, roots, max_passes, reorder::EvalContext{});
}

SiftResult sift_in_place(Manager& m, const std::vector<NodeId>& roots,
                         int max_passes, const reorder::EvalContext& ctx) {
  const int n = m.num_vars();
  rt::Governor* gov = ctx.gov;
  const auto scan = [&]() {
    const std::uint64_t s = shared_reachable_size(m, roots, ctx.exec);
    if (ctx.stats != nullptr) {
      ++ctx.stats->queries;
      ++ctx.stats->evals;
      ctx.stats->ops.table_cells += s;
    }
    return s;
  };
  SiftResult r;
  r.initial_nodes = scan();
  r.final_nodes = r.initial_nodes;
  if (n < 2) return r;

  bool out_of_budget = false;
  for (int pass = 0; pass < max_passes && !out_of_budget; ++pass) {
    ++r.passes;
    bool improved = false;
    for (int var = 0; var < n; ++var) {
      const int start = m.level_of_var(var);
      std::uint64_t best_size = scan();
      int best_level = start;
      if (gov != nullptr) {
        // Admit the whole sweep (~2n swaps, each rescanning the live
        // DAG) at this serial point, so a work-limit trip always lands
        // between variables regardless of thread count.
        const std::uint64_t sweep_cost =
            2 * static_cast<std::uint64_t>(n) * best_size;
        if (gov->stopped() || !gov->admit_work(sweep_cost)) {
          out_of_budget = true;
          break;
        }
        gov->charge(sweep_cost);
      }
      bool hard_stop = false;
      int cur = start;
      // Sweep down to the bottom...
      for (int l = start; l + 1 < n; ++l) {
        m.swap_adjacent_levels(l);
        cur = l + 1;
        ++r.swaps;
        const std::uint64_t s = scan();
        if (s < best_size) {
          best_size = s;
          best_level = l + 1;
        }
        if (gov != nullptr && gov->poll()) {
          hard_stop = true;
          break;
        }
      }
      // ...then up to the top...
      if (!hard_stop) {
        for (int l = n - 1; l > 0; --l) {
          m.swap_adjacent_levels(l - 1);
          cur = l - 1;
          ++r.swaps;
          const std::uint64_t s = scan();
          if (s < best_size) {
            best_size = s;
            best_level = l - 1;
          }
          if (gov != nullptr && gov->poll()) {
            hard_stop = true;
            break;
          }
        }
      }
      // ...and settle at the best level seen — even on a hard stop, so
      // an interrupted sift still leaves the best arrangement found.
      move_level(m, cur, best_level);
      r.swaps += static_cast<std::uint64_t>(
          cur > best_level ? cur - best_level : best_level - cur);
      const std::uint64_t settled = scan();
      if (settled < r.final_nodes) {
        r.final_nodes = settled;
        improved = true;
      }
      if (hard_stop) {
        out_of_budget = true;
        break;
      }
    }
    if (!improved) break;
  }
  r.complete = !out_of_budget;
  r.final_nodes = scan();
  return r;
}

}  // namespace ovo::bdd
