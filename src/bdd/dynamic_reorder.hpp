#pragma once
// In-place dynamic variable reordering — adjacent level swaps and Rudell
// sifting executed directly on the shared DAG, the mechanism real BDD
// packages (CUDD et al.) use while the paper's algorithms provide the
// exact targets to judge it against.
//
// Key property: node ids remain valid across swaps.  A swap rewrites the
// two affected levels in place; a node's id keeps denoting the same
// Boolean function afterwards (only its label/children change).  This is
// sound without reference counting because, at a swap of levels (l, l+1):
//   * distinct functions stay distinct, so rewritten nodes can never
//     collide with kept nodes in the unique table (see dynamic_reorder.cpp
//     for the argument), and
//   * a node labeled x with distinct cofactors still depends on x after
//     the swap, so the lo == hi degenerate merge cannot arise.
// Superseded nodes become garbage in the arena (consistent with the
// package's no-GC policy).

#include <cstdint>
#include <vector>

#include "bdd/manager.hpp"
#include "parallel/exec_policy.hpp"
#include "reorder/eval_context.hpp"

namespace ovo::bdd {

/// Swaps the variables at `level` and `level + 1` in place.  All existing
/// NodeIds continue to denote the same functions.  Returns the number of
/// nodes created by the swap.
std::size_t swap_adjacent_levels(Manager& m, int level);

/// Moves the variable currently at `from_level` to `to_level` by a
/// sequence of adjacent swaps.
void move_level(Manager& m, int from_level, int to_level);

struct SiftResult {
  std::uint64_t initial_nodes = 0;
  std::uint64_t final_nodes = 0;
  std::uint64_t swaps = 0;
  int passes = 0;
  /// False iff a governor stopped the sift early; the manager is then
  /// left in a consistent state at the best level reached so far.
  bool complete = true;
};

/// Rudell sifting on the live DAG: repeatedly moves each variable to its
/// locally best level, measuring the union of nodes reachable from
/// `roots` after every swap; stops at a fixpoint or `max_passes`.
/// Root ids stay valid and keep denoting the same functions.
SiftResult sift_in_place(Manager& m, const std::vector<NodeId>& roots,
                         int max_passes = 4);

/// Governed/parallel sifting.  ctx.gov budgets the search: one
/// variable's sweep (~2n swaps, each followed by a reachability scan
/// over the live DAG) is admitted as a unit at the serial per-variable
/// point, so a work-limit trip lands between sweeps and the result is
/// identical at every thread count; a hard stop (deadline, cancel) is
/// polled per swap and still settles the in-flight variable at its best
/// level, keeping the DAG consistent.  ctx.exec parallelizes the
/// reachability scans on pools large enough to amortize the fan-out.
/// ctx.stats, when non-null, receives one query/eval plus the scanned
/// live size per reachability measurement.  The default context
/// reproduces the legacy overload exactly.
SiftResult sift_in_place(Manager& m, const std::vector<NodeId>& roots,
                         int max_passes, const reorder::EvalContext& ctx);

/// Union of non-terminal nodes reachable from all roots (the live size a
/// multi-root application cares about).
std::uint64_t shared_reachable_size(const Manager& m,
                                    const std::vector<NodeId>& roots);

/// As above, fanned out on the task-graph scheduler as a frontier BFS
/// (one region per level) with atomic node claiming when `exec` asks
/// for threads and the arena is large enough to amortize dispatch; the
/// count is the size of a fixed set, so it is identical at every
/// thread count.
std::uint64_t shared_reachable_size(const Manager& m,
                                    const std::vector<NodeId>& roots,
                                    const par::ExecPolicy& exec);

}  // namespace ovo::bdd
