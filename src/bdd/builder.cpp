#include "bdd/builder.hpp"

#include "util/check.hpp"

namespace ovo::bdd {

NodeId build_from_expr(Manager& m, const tt::Expr& e) {
  switch (e.op) {
    case tt::ExprOp::kVar:
      OVO_CHECK_MSG(e.var < m.num_vars(),
                    "build_from_expr: variable outside manager");
      return m.var_node(e.var);
    case tt::ExprOp::kConst:
      return m.constant(e.value);
    case tt::ExprOp::kNot:
      return m.apply_not(build_from_expr(m, *e.lhs));
    case tt::ExprOp::kAnd:
      return m.apply_and(build_from_expr(m, *e.lhs),
                         build_from_expr(m, *e.rhs));
    case tt::ExprOp::kOr:
      return m.apply_or(build_from_expr(m, *e.lhs),
                        build_from_expr(m, *e.rhs));
    case tt::ExprOp::kXor:
      return m.apply_xor(build_from_expr(m, *e.lhs),
                         build_from_expr(m, *e.rhs));
  }
  OVO_CHECK(false);
  return kFalse;
}

namespace {

NodeId literal_node(Manager& m, const tt::Literal& lit) {
  OVO_CHECK_MSG(lit.var < m.num_vars(),
                "builder: literal variable outside manager");
  return m.literal(lit.var, lit.positive);
}

}  // namespace

NodeId build_from_dnf(Manager& m, const tt::Dnf& d) {
  NodeId acc = kFalse;
  for (const tt::Clause& term : d.terms) {
    NodeId t = kTrue;
    for (const tt::Literal& lit : term) t = m.apply_and(t, literal_node(m, lit));
    acc = m.apply_or(acc, t);
  }
  return acc;
}

NodeId build_from_cnf(Manager& m, const tt::Cnf& c) {
  NodeId acc = kTrue;
  for (const tt::Clause& clause : c.clauses) {
    NodeId t = kFalse;
    for (const tt::Literal& lit : clause)
      t = m.apply_or(t, literal_node(m, lit));
    acc = m.apply_and(acc, t);
  }
  return acc;
}

NodeId build_from_circuit(Manager& m, const tt::Circuit& ckt) {
  OVO_CHECK_MSG(ckt.num_inputs() <= m.num_vars(),
                "build_from_circuit: manager has too few variables");
  // Symbolic simulation: one BDD per signal, gates in topological order.
  std::vector<NodeId> signal(
      static_cast<std::size_t>(ckt.num_inputs() + ckt.num_gates()));
  for (int i = 0; i < ckt.num_inputs(); ++i)
    signal[static_cast<std::size_t>(i)] = m.var_node(i);
  for (int g = 0; g < ckt.num_gates(); ++g) {
    const tt::Gate& gate = ckt.gate(g);
    const NodeId a = signal[static_cast<std::size_t>(gate.a)];
    const NodeId b =
        gate.b >= 0 ? signal[static_cast<std::size_t>(gate.b)] : kFalse;
    NodeId out = kFalse;
    switch (gate.op) {
      case tt::GateOp::kAnd:  out = m.apply_and(a, b); break;
      case tt::GateOp::kOr:   out = m.apply_or(a, b); break;
      case tt::GateOp::kXor:  out = m.apply_xor(a, b); break;
      case tt::GateOp::kNand: out = m.apply_not(m.apply_and(a, b)); break;
      case tt::GateOp::kNor:  out = m.apply_not(m.apply_or(a, b)); break;
      case tt::GateOp::kXnor: out = m.apply_xnor(a, b); break;
      case tt::GateOp::kNot:  out = m.apply_not(a); break;
      case tt::GateOp::kBuf:  out = a; break;
    }
    signal[static_cast<std::size_t>(ckt.num_inputs() + g)] = out;
  }
  return signal[static_cast<std::size_t>(ckt.output())];
}

std::vector<NodeId> build_from_pla(Manager& m, const tt::Pla& pla) {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(pla.num_outputs));
  for (int o = 0; o < pla.num_outputs; ++o)
    out.push_back(build_from_dnf(m, pla.output_dnf(o)));
  return out;
}

}  // namespace ovo::bdd
