#pragma once
// Query algorithms over ROBDDs beyond the Manager's core operations:
// model enumeration, uniform model sampling, weighted optimization over
// the onset, and density/probability computation.  These are the standard
// library surface downstream users of a BDD package expect.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bdd/manager.hpp"
#include "util/rng.hpp"

namespace ovo::bdd {

/// Calls fn(assignment) for every satisfying assignment of f, in
/// increasing numeric order.  Intended for small onsets; returns the
/// number of models visited. If fn returns false, enumeration stops early.
std::uint64_t for_each_model(const Manager& m, NodeId f,
                             const std::function<bool(std::uint64_t)>& fn);

/// All satisfying assignments (ascending). Guarded against onsets larger
/// than `limit` (throws CheckError).
std::vector<std::uint64_t> all_models(const Manager& m, NodeId f,
                                      std::uint64_t limit = 1u << 20);

/// Uniform random satisfying assignment, drawn by weighted descent over
/// model counts. Returns nullopt if f is unsatisfiable.
std::optional<std::uint64_t> sample_model(const Manager& m, NodeId f,
                                          util::Xoshiro256& rng);

/// Minimizes sum of weight[v] over variables assigned 1, over all
/// satisfying assignments (a shortest-path sweep over the DAG; weights
/// may be negative). Returns nullopt if f is unsatisfiable.
struct WeightedModel {
  std::uint64_t assignment = 0;
  double weight = 0.0;
};
std::optional<WeightedModel> min_weight_model(
    const Manager& m, NodeId f, const std::vector<double>& weight);

/// Fraction of the 2^n inputs on which f is true.
double density(const Manager& m, NodeId f);

/// Prime-implicant-style shortest cube: a smallest partial assignment
/// (as var mask + values) forcing f to true; nullopt if unsatisfiable.
struct Cube {
  util::Mask care = 0;    ///< variables fixed by the cube
  std::uint64_t values = 0;  ///< their values (within care positions)
  int literals() const { return util::popcount(care); }
};
std::optional<Cube> shortest_cube(const Manager& m, NodeId f);

}  // namespace ovo::bdd
