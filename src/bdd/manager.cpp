#include "bdd/manager.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/combinatorics.hpp"

namespace ovo::bdd {

Manager::Manager(int num_vars) : Manager(num_vars, [num_vars] {
  std::vector<int> id(static_cast<std::size_t>(num_vars));
  std::iota(id.begin(), id.end(), 0);
  return id;
}()) {}

Manager::Manager(int num_vars, std::vector<int> order)
    : n_(num_vars), order_(std::move(order)) {
  // Truth-table conversion is limited to tt::TruthTable::kMaxVars, but
  // apply-based construction works up to 63 variables (satcount shifts).
  OVO_CHECK_MSG(num_vars >= 0 && num_vars <= 63,
                "Manager: num_vars out of range");
  OVO_CHECK_MSG(static_cast<int>(order_.size()) == n_,
                "Manager: order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order_), "Manager: order not a permutation");
  var_to_level_ = util::inverse_permutation(order_);
  pool_.push_back(Node{n_, kFalse, kFalse});  // id 0: false terminal
  pool_.push_back(Node{n_, kTrue, kTrue});    // id 1: true terminal
  unique_.resize(static_cast<std::size_t>(n_));
}

NodeId Manager::var_node(int var) { return literal(var, true); }

NodeId Manager::literal(int var, bool positive) {
  const int level = level_of_var(var);
  return positive ? make(level, kFalse, kTrue) : make(level, kTrue, kFalse);
}

NodeId Manager::make(int level, NodeId lo, NodeId hi) {
  OVO_CHECK(level >= 0 && level < n_);
  OVO_DCHECK(lo < pool_.size() && hi < pool_.size());
  OVO_DCHECK(pool_[lo].level > level && pool_[hi].level > level);
  if (lo == hi) return lo;  // reduction rule (a)
  auto& table = unique_[static_cast<std::size_t>(level)];
  const std::uint64_t key = (std::uint64_t{lo} << 32) | hi;
  const auto it = table.find(key);
  if (it != table.end()) return it->second;  // rule (b): hash consing
  const NodeId id = static_cast<NodeId>(pool_.size());
  pool_.push_back(Node{level, lo, hi});
  table.emplace(key, id);
  return id;
}

NodeId Manager::from_truth_table(const tt::TruthTable& t) {
  OVO_CHECK_MSG(t.num_vars() == n_, "from_truth_table: arity mismatch");
  if (n_ == 0) return t.get(0) ? kTrue : kFalse;

  // cells[i] = node for the subfunction under the i-th assignment to the
  // not-yet-processed variables order_[0..p], packed densely (bit j of i is
  // the value of order_[j]).
  std::vector<NodeId> cells(t.size());
  for (std::uint64_t a = 0; a < t.size(); ++a) {
    // Map the dense index (per order_) to the truth-table assignment.
    std::uint64_t assignment = 0;
    for (int j = 0; j < n_; ++j)
      assignment |= ((a >> j) & 1u) << order_[static_cast<std::size_t>(j)];
    cells[a] = t.get(assignment) ? kTrue : kFalse;
  }
  // Compact bottom-up: process the last-read level first.
  for (int level = n_ - 1; level >= 0; --level) {
    const std::uint64_t half = std::uint64_t{1} << level;
    std::vector<NodeId> next(half);
    for (std::uint64_t a = 0; a < half; ++a)
      next[a] = make(level, cells[a], cells[a | half]);
    cells = std::move(next);
  }
  return cells[0];
}

Manager::Stats Manager::stats() const {
  Stats s;
  s.pool_nodes = pool_.size();
  for (const auto& table : unique_) s.unique_entries += table.size();
  s.cache_entries = ite_cache_.size();
  return s;
}

std::size_t Manager::collect_garbage(std::vector<NodeId>* roots) {
  OVO_CHECK(roots != nullptr);
  std::vector<Node> new_pool;
  new_pool.push_back(Node{n_, kFalse, kFalse});
  new_pool.push_back(Node{n_, kTrue, kTrue});
  std::vector<std::unordered_map<std::uint64_t, NodeId, PairHash>>
      new_unique(static_cast<std::size_t>(n_));
  std::unordered_map<NodeId, NodeId> remap{{kFalse, kFalse},
                                           {kTrue, kTrue}};
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    if (const auto it = remap.find(u); it != remap.end()) return it->second;
    const Node& un = pool_[u];
    const NodeId lo = self(self, un.lo);
    const NodeId hi = self(self, un.hi);
    const NodeId id = static_cast<NodeId>(new_pool.size());
    new_pool.push_back(Node{un.level, lo, hi});
    new_unique[static_cast<std::size_t>(un.level)].emplace(
        (std::uint64_t{lo} << 32) | hi, id);
    remap.emplace(u, id);
    return id;
  };
  for (NodeId& root : *roots) root = rec(rec, root);
  const std::size_t dropped = pool_.size() - new_pool.size();
  pool_ = std::move(new_pool);
  unique_ = std::move(new_unique);
  ite_cache_.clear();
  return dropped;
}

std::size_t Manager::swap_adjacent_levels(int level) {
  OVO_CHECK_MSG(level >= 0 && level + 1 < n_,
                "swap_adjacent_levels: level out of range");
  const int upper = level;      // holds variable x before, y after
  const int lower = level + 1;  // holds variable y before, x after

  // Snapshot the two affected level populations (pool may grow below).
  std::vector<NodeId> xs, ys;
  std::unordered_map<NodeId, bool> is_y;
  for (NodeId id = 2; id < pool_.size(); ++id) {
    if (pool_[id].level == upper) xs.push_back(id);
    if (pool_[id].level == lower) {
      ys.push_back(id);
      is_y.emplace(id, true);
    }
  }

  unique_[static_cast<std::size_t>(upper)].clear();
  unique_[static_cast<std::size_t>(lower)].clear();
  ite_cache_.clear();  // cached results reference the old level geometry

  // y nodes keep their identity and children; they migrate to the upper
  // level. Distinct canonical nodes stay distinct, so re-registration
  // cannot collide.
  for (const NodeId y : ys) {
    pool_[y].level = upper;
    const std::uint64_t key =
        (std::uint64_t{pool_[y].lo} << 32) | pool_[y].hi;
    unique_[static_cast<std::size_t>(upper)].emplace(key, y);
  }

  const std::size_t before = pool_.size();
  // Phase 1: x nodes independent of y migrate down unchanged. This must
  // happen before any rewrite: a rewrite's make(lower, ...) could
  // otherwise create a fresh node with the same (lo, hi) as a
  // not-yet-migrated x node, breaking canonicity.
  for (const NodeId x : xs) {
    const NodeId lo = pool_[x].lo;
    const NodeId hi = pool_[x].hi;
    if (is_y.count(lo) != 0 || is_y.count(hi) != 0) continue;
    pool_[x].level = lower;
    const std::uint64_t key = (std::uint64_t{lo} << 32) | hi;
    unique_[static_cast<std::size_t>(lower)].emplace(key, x);
  }
  // Phase 2: x nodes depending on y are rewritten in place as y nodes.
  for (const NodeId x : xs) {
    const NodeId lo = pool_[x].lo;
    const NodeId hi = pool_[x].hi;
    const bool lo_y = is_y.count(lo) != 0;
    const bool hi_y = is_y.count(hi) != 0;
    if (!lo_y && !hi_y) continue;  // migrated in phase 1
    // Cofactors f_{x y}.
    const NodeId f00 = lo_y ? pool_[lo].lo : lo;
    const NodeId f01 = lo_y ? pool_[lo].hi : lo;
    const NodeId f10 = hi_y ? pool_[hi].lo : hi;
    const NodeId f11 = hi_y ? pool_[hi].hi : hi;
    // New children select on x below the new top variable y. make() may
    // reuse migrated x nodes or create fresh ones (and may grow the pool,
    // so re-fetch pool_[x] afterwards).
    const NodeId new_lo = make(lower, f00, f10);
    const NodeId new_hi = make(lower, f01, f11);
    // A node with distinct cofactors on y keeps depending on y: the
    // rewritten children can never be equal.
    OVO_CHECK(new_lo != new_hi);
    Node& xn = pool_[x];
    xn.lo = new_lo;
    xn.hi = new_hi;
    xn.level = upper;  // now labeled y
    const std::uint64_t key = (std::uint64_t{new_lo} << 32) | new_hi;
    unique_[static_cast<std::size_t>(upper)].emplace(key, x);
  }

  std::swap(order_[static_cast<std::size_t>(upper)],
            order_[static_cast<std::size_t>(lower)]);
  var_to_level_ = util::inverse_permutation(order_);
  return pool_.size() - before;
}

int Manager::top_level(NodeId f, NodeId g, NodeId h) const {
  return std::min({pool_[f].level, pool_[g].level, pool_[h].level});
}

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  // Terminal rules.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  const TripleKey key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end())
    return it->second;
  const int level = top_level(f, g, h);
  const auto cof = [&](NodeId u, bool hi_branch) {
    const Node& un = pool_[u];
    if (un.level != level) return u;
    return hi_branch ? un.hi : un.lo;
  };
  const NodeId lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const NodeId hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const NodeId out = make(level, lo, hi);
  ite_cache_.emplace(key, out);
  return out;
}

NodeId Manager::restrict_rec(NodeId f, int level, bool val,
                             std::unordered_map<NodeId, NodeId>& memo) {
  const Node& fn = pool_[f];
  if (fn.level > level) return f;  // below the restricted level or terminal
  if (const auto it = memo.find(f); it != memo.end()) return it->second;
  NodeId out;
  if (fn.level == level) {
    out = val ? fn.hi : fn.lo;
  } else {
    const NodeId lo = restrict_rec(fn.lo, level, val, memo);
    const NodeId hi = restrict_rec(fn.hi, level, val, memo);
    out = make(fn.level, lo, hi);
  }
  memo.emplace(f, out);
  return out;
}

NodeId Manager::restrict_var(NodeId f, int var, bool val) {
  std::unordered_map<NodeId, NodeId> memo;
  return restrict_rec(f, level_of_var(var), val, memo);
}

NodeId Manager::exists(NodeId f, int var) {
  return apply_or(restrict_var(f, var, false), restrict_var(f, var, true));
}

NodeId Manager::forall(NodeId f, int var) {
  return apply_and(restrict_var(f, var, false), restrict_var(f, var, true));
}

NodeId Manager::compose(NodeId f, int var, NodeId g) {
  return ite(g, restrict_var(f, var, true), restrict_var(f, var, false));
}

bool Manager::eval(NodeId f, std::uint64_t assignment) const {
  while (!is_terminal(f)) {
    const Node& fn = pool_[f];
    const int var = order_[static_cast<std::size_t>(fn.level)];
    f = ((assignment >> var) & 1u) ? fn.hi : fn.lo;
  }
  return f == kTrue;
}

tt::TruthTable Manager::to_truth_table(NodeId f) const {
  OVO_CHECK_MSG(n_ <= tt::TruthTable::kMaxVars,
                "to_truth_table: too many variables to tabulate");
  return tt::TruthTable::tabulate(
      n_, [&](std::uint64_t a) { return eval(f, a); });
}

std::uint64_t Manager::satcount(NodeId f) const {
  std::unordered_map<NodeId, std::uint64_t> memo;
  // count(u) = satisfying assignments over levels [level(u), n).
  auto rec = [&](auto&& self, NodeId u) -> std::uint64_t {
    if (u == kFalse) return 0;
    if (u == kTrue) return 1;
    if (const auto it = memo.find(u); it != memo.end()) return it->second;
    const Node& un = pool_[u];
    const auto weight = [&](NodeId child) -> std::uint64_t {
      const int child_level = pool_[child].level;
      return self(self, child)
             << (child_level - un.level - 1);  // skipped levels double count
    };
    const std::uint64_t c = weight(un.lo) + weight(un.hi);
    memo.emplace(u, c);
    return c;
  };
  if (f == kFalse) return 0;
  const int top = pool_[f].level;
  return rec(rec, f) << top;
}

std::uint64_t Manager::size(NodeId f) const {
  std::uint64_t total = 0;
  for (const std::uint64_t w : level_widths(f)) total += w;
  return total;
}

std::vector<std::uint64_t> Manager::level_widths(NodeId f) const {
  std::vector<std::uint64_t> widths(static_cast<std::size_t>(n_), 0);
  std::vector<NodeId> stack;
  std::unordered_map<NodeId, bool> seen;
  if (!is_terminal(f)) stack.push_back(f);
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (seen.count(u)) continue;
    seen.emplace(u, true);
    const Node& un = pool_[u];
    ++widths[static_cast<std::size_t>(un.level)];
    if (!is_terminal(un.lo)) stack.push_back(un.lo);
    if (!is_terminal(un.hi)) stack.push_back(un.hi);
  }
  return widths;
}

util::Mask Manager::support(NodeId f) const {
  util::Mask m = 0;
  std::vector<NodeId> stack{f};
  std::unordered_map<NodeId, bool> seen;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (is_terminal(u) || seen.count(u)) continue;
    seen.emplace(u, true);
    const Node& un = pool_[u];
    m |= util::Mask{1} << order_[static_cast<std::size_t>(un.level)];
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  return m;
}

bool Manager::find_sat_assignment(NodeId f, std::uint64_t* assignment) const {
  OVO_CHECK(assignment != nullptr);
  if (f == kFalse) return false;
  std::uint64_t a = 0;
  while (!is_terminal(f)) {
    const Node& fn = pool_[f];
    const int var = order_[static_cast<std::size_t>(fn.level)];
    if (fn.lo != kFalse) {
      f = fn.lo;
    } else {
      a |= std::uint64_t{1} << var;
      f = fn.hi;
    }
  }
  OVO_CHECK(f == kTrue);
  *assignment = a;
  return true;
}

std::string Manager::to_dot(NodeId f, const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  rankdir=TB;\n";
  os << "  node_0 [label=\"F\", shape=box];\n";
  os << "  node_1 [label=\"T\", shape=box];\n";
  std::vector<NodeId> stack{f};
  std::unordered_map<NodeId, bool> seen;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (is_terminal(u) || seen.count(u)) continue;
    seen.emplace(u, true);
    const Node& un = pool_[u];
    os << "  node_" << u << " [label=\"x"
       << order_[static_cast<std::size_t>(un.level)] + 1 << "\", shape=circle];\n";
    os << "  node_" << u << " -> node_" << un.lo << " [style=dotted];\n";
    os << "  node_" << u << " -> node_" << un.hi << " [style=solid];\n";
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  os << "}\n";
  return os.str();
}

bool structurally_equal(const Manager& ma, NodeId a, const Manager& mb,
                        NodeId b) {
  std::unordered_map<std::uint64_t, bool> memo;
  auto rec = [&](auto&& self, NodeId x, NodeId y) -> bool {
    if (ma.is_terminal(x) || mb.is_terminal(y)) return x == y;
    const std::uint64_t key = (std::uint64_t{x} << 32) | y;
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    const Node& xn = ma.node(x);
    const Node& yn = mb.node(y);
    bool eq = ma.var_at_level(xn.level) == mb.var_at_level(yn.level) &&
              self(self, xn.lo, yn.lo) && self(self, xn.hi, yn.hi);
    memo.emplace(key, eq);
    return eq;
  };
  return rec(rec, a, b);
}

}  // namespace ovo::bdd
