#include "bdd/manager.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "ds/hash.hpp"

namespace ovo::bdd {

Manager::Manager(int num_vars) : Manager(num_vars, [num_vars] {
  std::vector<int> id(static_cast<std::size_t>(num_vars));
  std::iota(id.begin(), id.end(), 0);
  return id;
}()) {}

// Truth-table conversion is limited to tt::TruthTable::kMaxVars, but
// apply-based construction works up to 63 variables (satcount shifts).
Manager::Manager(int num_vars, std::vector<int> order)
    : Base(num_vars, std::move(order), 63, "Manager") {
  arena_.push(n_, kFalse, kFalse);  // id 0: false terminal
  arena_.push(n_, kTrue, kTrue);    // id 1: true terminal
}

NodeId Manager::var_node(int var) { return literal(var, true); }

NodeId Manager::literal(int var, bool positive) {
  const int level = level_of_var(var);
  return positive ? make(level, kFalse, kTrue) : make(level, kTrue, kFalse);
}

NodeId Manager::from_truth_table(const tt::TruthTable& t) {
  OVO_CHECK_MSG(t.num_vars() == n_, "from_truth_table: arity mismatch");
  if (n_ == 0) return t.get(0) ? kTrue : kFalse;
  reserve_for_table_build(t.size());

  // cells[i] = node for the subfunction under the i-th assignment to the
  // not-yet-processed variables order_[0..p], packed densely (bit j of i is
  // the value of order_[j]).
  std::vector<NodeId> cells(t.size());
  for (std::uint64_t a = 0; a < t.size(); ++a) {
    // Map the dense index (per order_) to the truth-table assignment.
    std::uint64_t assignment = 0;
    for (int j = 0; j < n_; ++j)
      assignment |= ((a >> j) & 1u) << order_[static_cast<std::size_t>(j)];
    cells[a] = t.get(assignment) ? kTrue : kFalse;
  }
  // Compact bottom-up: process the last-read level first.
  for (int level = n_ - 1; level >= 0; --level) {
    const std::uint64_t half = std::uint64_t{1} << level;
    std::vector<NodeId> next(half);
    for (std::uint64_t a = 0; a < half; ++a)
      next[a] = make(level, cells[a], cells[a | half]);
    cells = std::move(next);
  }
  return cells[0];
}

Manager::Stats Manager::stats() const {
  const ds::StoreStats base = store_stats();
  Stats s;
  s.pool_nodes = base.pool_nodes;
  s.unique_entries = base.unique_entries;
  s.cache_entries = ite_cache_.live_entries();
  s.unique = base.unique;
  s.cache = ite_cache_.stats();
  return s;
}

std::size_t Manager::swap_adjacent_levels(int level) {
  OVO_CHECK_MSG(level >= 0 && level + 1 < n_,
                "swap_adjacent_levels: level out of range");
  const int upper = level;      // holds variable x before, y after
  const int lower = level + 1;  // holds variable y before, x after

  // Snapshot the two affected level populations (pool may grow below).
  std::vector<NodeId> xs, ys;
  for (NodeId id = 2; id < arena_.size(); ++id) {
    if (arena_.level(id) == upper) xs.push_back(id);
    if (arena_.level(id) == lower) ys.push_back(id);
  }

  unique_[static_cast<std::size_t>(upper)].clear();
  unique_[static_cast<std::size_t>(lower)].clear();
  ite_cache_.invalidate_all();  // cached results reference the old geometry

  // y nodes keep their identity and children; they migrate to the upper
  // level. Distinct canonical nodes stay distinct, so re-registration
  // cannot collide. After this, a child of an x node is a y node iff it
  // sits at `upper` (children of x are never x nodes, and everything
  // deeper stays strictly below `lower`).
  for (const NodeId y : ys) {
    arena_.set_level(y, upper);
    unique_[static_cast<std::size_t>(upper)].insert(
        ds::pack_pair(arena_.lo(y), arena_.hi(y)), y);
  }

  const std::size_t before = arena_.size();
  // Phase 1: x nodes independent of y migrate down unchanged. This must
  // happen before any rewrite: a rewrite's make(lower, ...) could
  // otherwise create a fresh node with the same (lo, hi) as a
  // not-yet-migrated x node, breaking canonicity.
  for (const NodeId x : xs) {
    const NodeId lo = arena_.lo(x);
    const NodeId hi = arena_.hi(x);
    if (arena_.level(lo) == upper || arena_.level(hi) == upper) continue;
    arena_.set_level(x, lower);
    unique_[static_cast<std::size_t>(lower)].insert(ds::pack_pair(lo, hi), x);
  }
  // Phase 2: x nodes depending on y are rewritten in place as y nodes.
  for (const NodeId x : xs) {
    if (arena_.level(x) == lower) continue;  // migrated in phase 1
    const NodeId lo = arena_.lo(x);
    const NodeId hi = arena_.hi(x);
    const bool lo_y = arena_.level(lo) == upper;
    const bool hi_y = arena_.level(hi) == upper;
    // Cofactors f_{x y}.
    const NodeId f00 = lo_y ? arena_.lo(lo) : lo;
    const NodeId f01 = lo_y ? arena_.hi(lo) : lo;
    const NodeId f10 = hi_y ? arena_.lo(hi) : hi;
    const NodeId f11 = hi_y ? arena_.hi(hi) : hi;
    // New children select on x below the new top variable y. make() may
    // reuse migrated x nodes or create fresh ones.
    const NodeId new_lo = make(lower, f00, f10);
    const NodeId new_hi = make(lower, f01, f11);
    // A node with distinct cofactors on y keeps depending on y: the
    // rewritten children can never be equal.
    OVO_CHECK(new_lo != new_hi);
    arena_.set_children(x, new_lo, new_hi);
    arena_.set_level(x, upper);  // now labeled y
    unique_[static_cast<std::size_t>(upper)].insert(
        ds::pack_pair(new_lo, new_hi), x);
  }

  std::swap(order_[static_cast<std::size_t>(upper)],
            order_[static_cast<std::size_t>(lower)]);
  var_to_level_ = util::inverse_permutation(order_);
  return arena_.size() - before;
}

int Manager::top_level(NodeId f, NodeId g, NodeId h) const {
  return std::min({arena_.level(f), arena_.level(g), arena_.level(h)});
}

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  // Terminal rules.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  const std::uint64_t key_fg = ds::pack_pair(f, g);
  if (const auto cached = ite_cache_.lookup(key_fg, h)) return *cached;
  const int level = top_level(f, g, h);
  const auto cof = [&](NodeId u, bool hi_branch) {
    if (arena_.level(u) != level) return u;
    return hi_branch ? arena_.hi(u) : arena_.lo(u);
  };
  const NodeId lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const NodeId hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const NodeId out = make(level, lo, hi);
  ite_cache_.store(key_fg, h, out);
  return out;
}

NodeId Manager::restrict_rec(NodeId f, int level, bool val,
                             ds::UniqueTable& memo) {
  const std::int32_t f_level = arena_.level(f);
  if (f_level > level) return f;  // below the restricted level or terminal
  if (const std::uint32_t* hit = memo.find(f)) return *hit;
  NodeId out;
  if (f_level == level) {
    out = val ? arena_.hi(f) : arena_.lo(f);
  } else {
    const NodeId lo = restrict_rec(arena_.lo(f), level, val, memo);
    const NodeId hi = restrict_rec(arena_.hi(f), level, val, memo);
    out = make(f_level, lo, hi);
  }
  memo.insert(f, out);
  return out;
}

NodeId Manager::restrict_var(NodeId f, int var, bool val) {
  ds::UniqueTable memo;
  return restrict_rec(f, level_of_var(var), val, memo);
}

NodeId Manager::exists(NodeId f, int var) {
  return apply_or(restrict_var(f, var, false), restrict_var(f, var, true));
}

NodeId Manager::forall(NodeId f, int var) {
  return apply_and(restrict_var(f, var, false), restrict_var(f, var, true));
}

NodeId Manager::compose(NodeId f, int var, NodeId g) {
  return ite(g, restrict_var(f, var, true), restrict_var(f, var, false));
}

bool Manager::eval(NodeId f, std::uint64_t assignment) const {
  while (!is_terminal(f)) {
    const int var = order_[static_cast<std::size_t>(arena_.level(f))];
    f = ((assignment >> var) & 1u) ? arena_.hi(f) : arena_.lo(f);
  }
  return f == kTrue;
}

tt::TruthTable Manager::to_truth_table(NodeId f) const {
  OVO_CHECK_MSG(n_ <= tt::TruthTable::kMaxVars,
                "to_truth_table: too many variables to tabulate");
  return tt::TruthTable::tabulate(
      n_, [&](std::uint64_t a) { return eval(f, a); });
}

std::uint64_t Manager::satcount(NodeId f) const {
  constexpr std::uint64_t kUnset = ~std::uint64_t{0};
  std::vector<std::uint64_t> memo(arena_.size(), kUnset);
  // count(u) = satisfying assignments over levels [level(u), n).
  auto rec = [&](auto&& self, NodeId u) -> std::uint64_t {
    if (u == kFalse) return 0;
    if (u == kTrue) return 1;
    if (memo[u] != kUnset) return memo[u];
    const std::int32_t u_level = arena_.level(u);
    const auto weight = [&](NodeId child) -> std::uint64_t {
      const std::int32_t child_level = arena_.level(child);
      return self(self, child)
             << (child_level - u_level - 1);  // skipped levels double count
    };
    const std::uint64_t c = weight(arena_.lo(u)) + weight(arena_.hi(u));
    memo[u] = c;
    return c;
  };
  if (f == kFalse) return 0;
  const std::int32_t top = arena_.level(f);
  return rec(rec, f) << top;
}

util::Mask Manager::support(NodeId f) const {
  util::Mask m = 0;
  std::vector<NodeId> stack{f};
  std::vector<std::uint8_t> seen(arena_.size(), 0);
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (is_terminal(u) || seen[u]) continue;
    seen[u] = 1;
    m |= util::Mask{1} << order_[static_cast<std::size_t>(arena_.level(u))];
    stack.push_back(arena_.lo(u));
    stack.push_back(arena_.hi(u));
  }
  return m;
}

bool Manager::find_sat_assignment(NodeId f, std::uint64_t* assignment) const {
  OVO_CHECK(assignment != nullptr);
  if (f == kFalse) return false;
  std::uint64_t a = 0;
  while (!is_terminal(f)) {
    const int var = order_[static_cast<std::size_t>(arena_.level(f))];
    if (arena_.lo(f) != kFalse) {
      f = arena_.lo(f);
    } else {
      a |= std::uint64_t{1} << var;
      f = arena_.hi(f);
    }
  }
  OVO_CHECK(f == kTrue);
  *assignment = a;
  return true;
}

std::string Manager::to_dot(NodeId f, const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  rankdir=TB;\n";
  os << "  node_0 [label=\"F\", shape=box];\n";
  os << "  node_1 [label=\"T\", shape=box];\n";
  std::vector<NodeId> stack{f};
  std::vector<std::uint8_t> seen(arena_.size(), 0);
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (is_terminal(u) || seen[u]) continue;
    seen[u] = 1;
    const Node un = node(u);
    os << "  node_" << u << " [label=\"x"
       << order_[static_cast<std::size_t>(un.level)] + 1 << "\", shape=circle];\n";
    os << "  node_" << u << " -> node_" << un.lo << " [style=dotted];\n";
    os << "  node_" << u << " -> node_" << un.hi << " [style=solid];\n";
    stack.push_back(un.lo);
    stack.push_back(un.hi);
  }
  os << "}\n";
  return os.str();
}

bool structurally_equal(const Manager& ma, NodeId a, const Manager& mb,
                        NodeId b) {
  // Memo values: 1 = isomorphic, 0 = not.
  ds::UniqueTable memo;
  auto rec = [&](auto&& self, NodeId x, NodeId y) -> bool {
    if (ma.is_terminal(x) || mb.is_terminal(y)) return x == y;
    const std::uint64_t key = ds::pack_pair(x, y);
    if (const std::uint32_t* hit = memo.find(key)) return *hit != 0;
    const Node xn = ma.node(x);
    const Node yn = mb.node(y);
    bool eq = ma.var_at_level(xn.level) == mb.var_at_level(yn.level) &&
              self(self, xn.lo, yn.lo) && self(self, xn.hi, yn.hi);
    memo.insert(key, eq ? 1u : 0u);
    return eq;
  };
  return rec(rec, a, b);
}

}  // namespace ovo::bdd
