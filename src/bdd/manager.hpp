#pragma once
// Reduced Ordered Binary Decision Diagram (ROBDD) package.
//
// A Manager owns a node pool for one fixed variable ordering (the paper's
// pi).  Levels are numbered top-down: level 0 is read first (the root
// level), level n-1 last; `order()[l]` is the 0-based variable read at
// level l.  Note the paper numbers levels bottom-up (its level n is the
// root); conversions happen in ovo::core.
//
// Nodes are referenced by NodeId.  Ids 0 and 1 are the false/true
// terminals.  All diagrams in one manager are fully reduced and share
// structure, so two NodeIds are equal iff they represent the same function
// (canonicity).  Nodes are never freed (arena style); managers are cheap
// to create per task, which is how the ordering search uses them.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"
#include "util/check.hpp"

namespace ovo::bdd {

using NodeId = std::uint32_t;

inline constexpr NodeId kFalse = 0;
inline constexpr NodeId kTrue = 1;

struct Node {
  std::int32_t level;  ///< top-down level; terminals use level = n
  NodeId lo = kFalse;  ///< 0-edge destination
  NodeId hi = kFalse;  ///< 1-edge destination
};

class Manager {
 public:
  /// Identity ordering: variable i at level i.
  explicit Manager(int num_vars);

  /// `order[l]` = variable read at level l (a permutation of 0..n-1).
  Manager(int num_vars, std::vector<int> order);

  int num_vars() const { return n_; }
  const std::vector<int>& order() const { return order_; }

  /// Level of variable v in this manager's ordering.
  int level_of_var(int var) const {
    OVO_CHECK(var >= 0 && var < n_);
    return var_to_level_[static_cast<std::size_t>(var)];
  }
  /// Variable at level l.
  int var_at_level(int level) const {
    OVO_CHECK(level >= 0 && level < n_);
    return order_[static_cast<std::size_t>(level)];
  }

  bool is_terminal(NodeId id) const { return id <= kTrue; }
  const Node& node(NodeId id) const {
    OVO_DCHECK(id < pool_.size());
    return pool_[id];
  }

  /// Total nodes ever created (including the two terminals).
  std::size_t pool_size() const { return pool_.size(); }

  struct Stats {
    std::size_t pool_nodes = 0;      ///< arena size incl. terminals
    std::size_t unique_entries = 0;  ///< hash-consing table entries
    std::size_t cache_entries = 0;   ///< ITE computed-table entries
  };
  Stats stats() const;

  /// Garbage-collects the arena: drops every node unreachable from
  /// `roots`, renumbers the survivors densely, rebuilds the unique
  /// tables, and clears the operation cache.  Each entry of `roots` is
  /// rewritten to its new id; all other NodeIds become invalid.  Returns
  /// the number of nodes discarded.  (The main source of garbage is
  /// dynamic reordering.)
  std::size_t collect_garbage(std::vector<NodeId>* roots);

  // --- construction -------------------------------------------------------

  NodeId constant(bool v) const { return v ? kTrue : kFalse; }

  /// The single-variable function x_var.
  NodeId var_node(int var);

  /// The literal x_var or !x_var.
  NodeId literal(int var, bool positive);

  /// Reduced unique node with the given children at `level`; applies
  /// reduction rule (a) (lo == hi) and hash-consing (rule (b)).
  /// Children must live at strictly greater levels.
  NodeId make(int level, NodeId lo, NodeId hi);

  /// Builds the ROBDD of a truth table under this manager's ordering by
  /// bottom-up table compaction; O(2^n) time.
  NodeId from_truth_table(const tt::TruthTable& t);

  /// In-place swap of the variables at `level` and `level + 1` (dynamic
  /// reordering primitive). Every existing NodeId keeps denoting the same
  /// Boolean function; superseded nodes become arena garbage. Returns the
  /// number of nodes created. See bdd/dynamic_reorder.hpp for the sifting
  /// driver built on top.
  std::size_t swap_adjacent_levels(int level);

  // --- Boolean operations --------------------------------------------------

  /// If-then-else: the workhorse; all binary ops route through it.
  NodeId ite(NodeId f, NodeId g, NodeId h);

  NodeId apply_not(NodeId f) { return ite(f, kFalse, kTrue); }
  NodeId apply_and(NodeId f, NodeId g) { return ite(f, g, kFalse); }
  NodeId apply_or(NodeId f, NodeId g) { return ite(f, kTrue, g); }
  NodeId apply_xor(NodeId f, NodeId g) { return ite(f, apply_not(g), g); }
  NodeId apply_xnor(NodeId f, NodeId g) { return apply_not(apply_xor(f, g)); }
  NodeId apply_implies(NodeId f, NodeId g) { return ite(f, g, kTrue); }

  /// f with x_var fixed to val.
  NodeId restrict_var(NodeId f, int var, bool val);

  /// Existential / universal quantification of one variable.
  NodeId exists(NodeId f, int var);
  NodeId forall(NodeId f, int var);

  /// Functional composition: f with x_var replaced by g.
  NodeId compose(NodeId f, int var, NodeId g);

  // --- queries --------------------------------------------------------------

  bool eval(NodeId f, std::uint64_t assignment) const;

  tt::TruthTable to_truth_table(NodeId f) const;

  /// Number of satisfying assignments over all n variables.
  std::uint64_t satcount(NodeId f) const;

  /// Non-terminal nodes reachable from f (the paper's OBDD size counts
  /// non-terminals; add 2 for the paper's |B(f, pi)| including terminals).
  std::uint64_t size(NodeId f) const;

  /// Nodes per level reachable from f — the paper's Cost profile, indexed
  /// top-down by level.
  std::vector<std::uint64_t> level_widths(NodeId f) const;

  /// Variables f depends on, as a mask.
  util::Mask support(NodeId f) const;

  /// One satisfying assignment, if any. Returns false if f == kFalse.
  bool find_sat_assignment(NodeId f, std::uint64_t* assignment) const;

  /// Graphviz rendering for debugging / documentation.
  std::string to_dot(NodeId f, const std::string& name = "bdd") const;

 private:
  struct PairHash {
    std::size_t operator()(std::uint64_t k) const {
      k ^= k >> 33;
      k *= 0xff51afd7ed558ccdull;
      k ^= k >> 33;
      return static_cast<std::size_t>(k);
    }
  };
  struct TripleKey {
    NodeId f, g, h;
    bool operator==(const TripleKey&) const = default;
  };
  struct TripleHash {
    std::size_t operator()(const TripleKey& k) const {
      std::uint64_t x = (std::uint64_t{k.f} << 32) ^ (std::uint64_t{k.g} << 16) ^
                        k.h;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };

  int top_level(NodeId f, NodeId g, NodeId h) const;

  NodeId restrict_rec(NodeId f, int level, bool val,
                      std::unordered_map<NodeId, NodeId>& memo);

  int n_;
  std::vector<int> order_;
  std::vector<int> var_to_level_;
  std::vector<Node> pool_;
  /// Per-level unique tables keyed by (lo, hi).
  std::vector<std::unordered_map<std::uint64_t, NodeId, PairHash>> unique_;
  std::unordered_map<TripleKey, NodeId, TripleHash> ite_cache_;
};

/// Structural isomorphism across managers (levels must carry the same
/// variables). Used by tests to compare diagrams built under the same
/// ordering by different construction paths.
bool structurally_equal(const Manager& ma, NodeId a, const Manager& mb,
                        NodeId b);

}  // namespace ovo::bdd
