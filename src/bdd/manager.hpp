#pragma once
// Reduced Ordered Binary Decision Diagram (ROBDD) package.
//
// A Manager owns a node pool for one fixed variable ordering (the paper's
// pi).  Levels are numbered top-down: level 0 is read first (the root
// level), level n-1 last; `order()[l]` is the 0-based variable read at
// level l.  Note the paper numbers levels bottom-up (its level n is the
// root); conversions happen in ovo::core.
//
// Nodes are referenced by NodeId.  Ids 0 and 1 are the false/true
// terminals.  All diagrams in one manager are fully reduced and share
// structure, so two NodeIds are equal iff they represent the same function
// (canonicity).  Nodes are never freed (arena style); managers are cheap
// to create per task, which is how the ordering search uses them.
//
// Storage lives in the shared ovo::ds node-store layer
// (ds::DiagramStoreBase): a struct-of-arrays node arena, per-level
// open-addressed unique tables, and a bounded generation-evicting ITE
// computed table.  Only the BDD reduction rule (a) and the Boolean
// operations live here.  See docs/INTERNALS.md for the layer's layout,
// eviction policy, and counters.

#include <cstdint>
#include <string>
#include <vector>

#include "ds/computed_cache.hpp"
#include "ds/diagram_store.hpp"
#include "tt/truth_table.hpp"
#include "util/check.hpp"

namespace ovo::bdd {

using NodeId = std::uint32_t;

inline constexpr NodeId kFalse = 0;
inline constexpr NodeId kTrue = 1;

struct Node {
  std::int32_t level;  ///< top-down level; terminals use level = n
  NodeId lo = kFalse;  ///< 0-edge destination
  NodeId hi = kFalse;  ///< 1-edge destination
};

class Manager : public ds::DiagramStoreBase<Manager> {
  using Base = ds::DiagramStoreBase<Manager>;
  friend Base;

 public:
  /// Identity ordering: variable i at level i.
  explicit Manager(int num_vars);

  /// `order[l]` = variable read at level l (a permutation of 0..n-1).
  Manager(int num_vars, std::vector<int> order);

  bool is_terminal(NodeId id) const { return id <= kTrue; }
  Node node(NodeId id) const {
    return Node{arena_.level(id), arena_.lo(id), arena_.hi(id)};
  }

  struct Stats {
    std::size_t pool_nodes = 0;      ///< arena size incl. terminals
    std::size_t unique_entries = 0;  ///< hash-consing table entries
    std::size_t cache_entries = 0;   ///< live ITE computed-table entries
    ds::TableStats unique;           ///< unique-table probe/hit counters
    ds::CacheStats cache;            ///< ITE computed-table counters

    /// Accumulates this snapshot into `l`: the residency gauges land on
    /// the ds.* kMax metrics, the nested table/cache counters on their
    /// own ds.unique.* / ds.cache.* slots.
    void to_ledger(obs::Ledger& l) const {
      l.record(obs::Metric::kDsPoolNodes, pool_nodes);
      l.record(obs::Metric::kDsUniqueEntries, unique_entries);
      l.record(obs::Metric::kDsCacheEntries, cache_entries);
      unique.to_ledger(l);
      cache.to_ledger(l);
    }
  };
  Stats stats() const;

  /// Garbage-collects the arena: drops every node unreachable from
  /// `roots`, renumbers the survivors densely, rebuilds the unique
  /// tables, and invalidates the operation cache.  Each entry of `roots`
  /// is rewritten to its new id; all other NodeIds become invalid.
  /// Returns the number of nodes discarded.  (The main source of garbage
  /// is dynamic reordering.)
  std::size_t collect_garbage(std::vector<NodeId>* roots) {
    return gc_two_terminals(roots);
  }

  // --- construction -------------------------------------------------------

  NodeId constant(bool v) const { return v ? kTrue : kFalse; }

  /// The single-variable function x_var.
  NodeId var_node(int var);

  /// The literal x_var or !x_var.
  NodeId literal(int var, bool positive);

  /// Reduced unique node with the given children at `level`; applies
  /// reduction rule (a) (lo == hi) and hash-consing (rule (b)).
  /// Children must live at strictly greater levels.
  NodeId make(int level, NodeId lo, NodeId hi) {
    return make_node(level, lo, hi);
  }

  /// Builds the ROBDD of a truth table under this manager's ordering by
  /// bottom-up table compaction; O(2^n) time.
  NodeId from_truth_table(const tt::TruthTable& t);

  /// In-place swap of the variables at `level` and `level + 1` (dynamic
  /// reordering primitive). Every existing NodeId keeps denoting the same
  /// Boolean function; superseded nodes become arena garbage. Returns the
  /// number of nodes created. See bdd/dynamic_reorder.hpp for the sifting
  /// driver built on top.
  std::size_t swap_adjacent_levels(int level);

  // --- Boolean operations --------------------------------------------------

  /// If-then-else: the workhorse; all binary ops route through it.
  NodeId ite(NodeId f, NodeId g, NodeId h);

  NodeId apply_not(NodeId f) { return ite(f, kFalse, kTrue); }
  NodeId apply_and(NodeId f, NodeId g) { return ite(f, g, kFalse); }
  NodeId apply_or(NodeId f, NodeId g) { return ite(f, kTrue, g); }
  NodeId apply_xor(NodeId f, NodeId g) { return ite(f, apply_not(g), g); }
  NodeId apply_xnor(NodeId f, NodeId g) { return apply_not(apply_xor(f, g)); }
  NodeId apply_implies(NodeId f, NodeId g) { return ite(f, g, kTrue); }

  /// f with x_var fixed to val.
  NodeId restrict_var(NodeId f, int var, bool val);

  /// Existential / universal quantification of one variable.
  NodeId exists(NodeId f, int var);
  NodeId forall(NodeId f, int var);

  /// Functional composition: f with x_var replaced by g.
  NodeId compose(NodeId f, int var, NodeId g);

  // --- queries --------------------------------------------------------------

  bool eval(NodeId f, std::uint64_t assignment) const;

  tt::TruthTable to_truth_table(NodeId f) const;

  /// Number of satisfying assignments over all n variables.
  std::uint64_t satcount(NodeId f) const;

  // size(f) and level_widths(f) — the paper's OBDD size and Cost profile —
  // are inherited from ds::DiagramStoreBase.

  /// Variables f depends on, as a mask.
  util::Mask support(NodeId f) const;

  /// One satisfying assignment, if any. Returns false if f == kFalse.
  bool find_sat_assignment(NodeId f, std::uint64_t* assignment) const;

  /// Graphviz rendering for debugging / documentation.
  std::string to_dot(NodeId f, const std::string& name = "bdd") const;

 private:
  /// Reduction rule (a): equal children collapse to the child.
  static bool reduce_edge(NodeId lo, NodeId hi, NodeId* out) {
    if (lo == hi) {
      *out = lo;
      return true;
    }
    return false;
  }

  /// Base hook: swaps and GC renumbering make cached ids stale.
  void on_garbage_collected() { ite_cache_.invalidate_all(); }

  int top_level(NodeId f, NodeId g, NodeId h) const;

  NodeId restrict_rec(NodeId f, int level, bool val, ds::UniqueTable& memo);

  ds::ComputedCache ite_cache_;
};

/// Structural isomorphism across managers (levels must carry the same
/// variables). Used by tests to compare diagrams built under the same
/// ordering by different construction paths.
bool structurally_equal(const Manager& ma, NodeId a, const Manager& mb,
                        NodeId b);

}  // namespace ovo::bdd
