#pragma once
// Cross-manager diagram transfer: rebuilds a function under a different
// variable ordering symbolically (via ITE in the destination manager),
// without materializing a truth table — the order-migration primitive a
// BDD package needs once orders are being optimized.
//
// Cost is O(|src diagram| * |dst diagram|) in the worst case (the classic
// bound for reordering by transfer), which is exactly why the paper's
// exact ordering algorithms matter: you want to migrate once, to the
// right order.

#include "bdd/manager.hpp"

namespace ovo::bdd {

/// Rebuilds `f` (a diagram in `src`) inside `dst` (same variable universe,
/// any ordering). Returns the canonical root in `dst`.
NodeId transfer(const Manager& src, NodeId f, Manager& dst);

}  // namespace ovo::bdd
