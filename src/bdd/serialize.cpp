#include "bdd/serialize.hpp"

#include <sstream>
#include <vector>

#include "ds/unique_table.hpp"
#include "rt/checkpoint.hpp"
#include "util/check.hpp"

namespace ovo::bdd {

namespace {

/// Dense renumbering by DFS post-order so children precede parents:
/// terminals map to 0/1, non-terminals to 2.. in emission order.
std::vector<NodeId> post_order(const Manager& m, NodeId root,
                               ds::UniqueTable* index) {
  index->insert(kFalse, 0);
  index->insert(kTrue, 1);
  std::vector<NodeId> ordered;  // non-terminals in emission order
  auto rec = [&](auto&& self, NodeId u) -> void {
    if (index->find(u) != nullptr) return;
    const Node un = m.node(u);
    self(self, un.lo);
    self(self, un.hi);
    index->insert(u, static_cast<std::uint32_t>(2 + ordered.size()));
    ordered.push_back(u);
  };
  rec(rec, root);
  return ordered;
}

}  // namespace

std::string save_bdd(const Manager& m, NodeId root) {
  ds::UniqueTable index;
  const std::vector<NodeId> ordered = post_order(m, root, &index);

  std::ostringstream os;
  os << "ovo-bdd 1\n";
  os << "n " << m.num_vars() << "\n";
  os << "order";
  for (const int v : m.order()) os << ' ' << v;
  os << "\n";
  os << "nodes " << ordered.size() << "\n";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const Node un = m.node(ordered[i]);
    os << (2 + i) << ' ' << un.level << ' ' << *index.find(un.lo) << ' '
       << *index.find(un.hi) << "\n";
  }
  os << "root " << *index.find(root) << "\n";
  return os.str();
}

LoadedBdd load_bdd(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  int version = 0;
  OVO_CHECK_MSG((is >> word >> version) && word == "ovo-bdd" && version == 1,
                "load_bdd: bad header");
  int n = 0;
  // Bound n before the order vector exists: Manager would reject n > 63
  // anyway, but a fuzzer-supplied n must not drive the allocation below.
  OVO_CHECK_MSG((is >> word >> n) && word == "n" && n >= 0 && n <= 63,
                "load_bdd: bad variable count");
  OVO_CHECK_MSG((is >> word) && word == "order", "load_bdd: missing order");
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int& v : order) OVO_CHECK_MSG(static_cast<bool>(is >> v),
                                     "load_bdd: truncated order");
  std::size_t count = 0;
  OVO_CHECK_MSG((is >> word >> count) && word == "nodes",
                "load_bdd: missing node count");
  // Every node line needs >= 8 characters ("2 0 0 1\n"), so a count the
  // input cannot possibly back is rejected before any growth.
  OVO_CHECK_MSG(count <= text.size() / 8,
                "load_bdd: node count exceeds input size");

  LoadedBdd out{Manager(n, order), kFalse};
  std::vector<NodeId> id_map{kFalse, kTrue};
  id_map.reserve(count + 2);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t idx = 0;
    int level = 0;
    std::size_t lo = 0, hi = 0;
    OVO_CHECK_MSG(static_cast<bool>(is >> idx >> level >> lo >> hi),
                  "load_bdd: truncated node table");
    OVO_CHECK_MSG(idx == 2 + i, "load_bdd: node indices must be dense");
    OVO_CHECK_MSG(lo < id_map.size() && hi < id_map.size(),
                  "load_bdd: dangling child reference");
    // make_node only OVO_DCHECKs the ordering invariant, so the loader
    // must enforce it on untrusted input (children strictly deeper).
    OVO_CHECK_MSG(level >= 0 &&
                      level < out.manager.node(id_map[lo]).level &&
                      level < out.manager.node(id_map[hi]).level,
                  "load_bdd: node level not above its children");
    id_map.push_back(out.manager.make(level, id_map[lo], id_map[hi]));
  }
  std::size_t root_idx = 0;
  OVO_CHECK_MSG((is >> word >> root_idx) && word == "root",
                "load_bdd: missing root");
  OVO_CHECK_MSG(root_idx < id_map.size(), "load_bdd: dangling root");
  out.root = id_map[root_idx];
  return out;
}

std::vector<std::uint8_t> save_bdd_binary(const Manager& m, NodeId root) {
  ds::UniqueTable index;
  const std::vector<NodeId> ordered = post_order(m, root, &index);

  rt::ByteWriter w;
  w.u8('B');
  w.u8(1);  // format version
  w.u32(static_cast<std::uint32_t>(m.num_vars()));
  for (const int v : m.order()) w.u8(static_cast<std::uint8_t>(v));
  w.u64(ordered.size());
  for (const NodeId u : ordered) {
    const Node un = m.node(u);
    w.u8(static_cast<std::uint8_t>(un.level));
    w.u32(*index.find(un.lo));
    w.u32(*index.find(un.hi));
  }
  w.u32(*index.find(root));
  return w.take();
}

LoadedBdd load_bdd_binary(const std::uint8_t* data, std::size_t len) {
  using rt::CheckpointError;
  using rt::CheckpointErrorKind;
  const auto malformed = [](const char* what) {
    throw CheckpointError(CheckpointErrorKind::kMalformed,
                          std::string("load_bdd_binary: ") + what);
  };
  rt::ByteReader r(data, len);
  if (r.u8() != 'B') malformed("wrong diagram tag");
  if (r.u8() != 1) malformed("unsupported format version");
  const std::uint32_t n = r.u32();
  if (n > 63) malformed("variable count exceeds 63");
  std::vector<int> order(n);
  std::uint64_t seen = 0;
  for (int& v : order) {
    const std::uint8_t raw = r.u8();
    if (raw >= n || ((seen >> raw) & 1) != 0)
      malformed("order is not a permutation");
    seen |= std::uint64_t{1} << raw;
    v = raw;
  }
  // array_count bounds count * 9 (u8 level + two u32 children) against
  // the bytes actually remaining before anything is reserved.
  const std::uint64_t count = r.array_count(9);
  LoadedBdd out{Manager(static_cast<int>(n), std::move(order)), kFalse};
  std::vector<NodeId> id_map{kFalse, kTrue};
  id_map.reserve(static_cast<std::size_t>(count) + 2);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t level = r.u8();
    const std::uint32_t lo = r.u32();
    const std::uint32_t hi = r.u32();
    if (level >= n) malformed("node level out of range");
    if (lo >= id_map.size() || hi >= id_map.size())
      malformed("dangling child reference");
    if (level >= out.manager.node(id_map[lo]).level ||
        level >= out.manager.node(id_map[hi]).level)
      malformed("node level not above its children");
    // make() re-interns, so a loaded diagram is reduced and canonical by
    // construction, same as the text path.
    id_map.push_back(out.manager.make(static_cast<int>(level), id_map[lo],
                                      id_map[hi]));
  }
  const std::uint32_t root_idx = r.u32();
  if (root_idx >= id_map.size()) malformed("dangling root");
  if (!r.done()) malformed("trailing bytes after root");
  out.root = id_map[root_idx];
  return out;
}

}  // namespace ovo::bdd
