#include "bdd/serialize.hpp"

#include <sstream>
#include <vector>

#include "ds/unique_table.hpp"
#include "util/check.hpp"

namespace ovo::bdd {

std::string save_bdd(const Manager& m, NodeId root) {
  // Dense renumbering by DFS post-order so children precede parents.
  ds::UniqueTable index;
  index.insert(kFalse, 0);
  index.insert(kTrue, 1);
  std::vector<NodeId> ordered;  // non-terminals in emission order
  auto rec = [&](auto&& self, NodeId u) -> void {
    if (index.find(u) != nullptr) return;
    const Node un = m.node(u);
    self(self, un.lo);
    self(self, un.hi);
    index.insert(u, static_cast<std::uint32_t>(2 + ordered.size()));
    ordered.push_back(u);
  };
  rec(rec, root);

  std::ostringstream os;
  os << "ovo-bdd 1\n";
  os << "n " << m.num_vars() << "\n";
  os << "order";
  for (const int v : m.order()) os << ' ' << v;
  os << "\n";
  os << "nodes " << ordered.size() << "\n";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const Node un = m.node(ordered[i]);
    os << (2 + i) << ' ' << un.level << ' ' << *index.find(un.lo) << ' '
       << *index.find(un.hi) << "\n";
  }
  os << "root " << *index.find(root) << "\n";
  return os.str();
}

LoadedBdd load_bdd(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  int version = 0;
  OVO_CHECK_MSG((is >> word >> version) && word == "ovo-bdd" && version == 1,
                "load_bdd: bad header");
  int n = 0;
  OVO_CHECK_MSG((is >> word >> n) && word == "n" && n >= 0,
                "load_bdd: bad variable count");
  OVO_CHECK_MSG((is >> word) && word == "order", "load_bdd: missing order");
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int& v : order) OVO_CHECK_MSG(static_cast<bool>(is >> v),
                                     "load_bdd: truncated order");
  std::size_t count = 0;
  OVO_CHECK_MSG((is >> word >> count) && word == "nodes",
                "load_bdd: missing node count");

  LoadedBdd out{Manager(n, order), kFalse};
  std::vector<NodeId> id_map{kFalse, kTrue};
  id_map.reserve(count + 2);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t idx = 0;
    int level = 0;
    std::size_t lo = 0, hi = 0;
    OVO_CHECK_MSG(static_cast<bool>(is >> idx >> level >> lo >> hi),
                  "load_bdd: truncated node table");
    OVO_CHECK_MSG(idx == 2 + i, "load_bdd: node indices must be dense");
    OVO_CHECK_MSG(lo < id_map.size() && hi < id_map.size(),
                  "load_bdd: dangling child reference");
    id_map.push_back(out.manager.make(level, id_map[lo], id_map[hi]));
  }
  std::size_t root_idx = 0;
  OVO_CHECK_MSG((is >> word >> root_idx) && word == "root",
                "load_bdd: missing root");
  OVO_CHECK_MSG(root_idx < id_map.size(), "load_bdd: dangling root");
  out.root = id_map[root_idx];
  return out;
}

}  // namespace ovo::bdd
