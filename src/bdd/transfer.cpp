#include "bdd/transfer.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace ovo::bdd {

NodeId transfer(const Manager& src, NodeId f, Manager& dst) {
  OVO_CHECK_MSG(src.num_vars() == dst.num_vars(),
                "transfer: variable universes differ");
  std::unordered_map<NodeId, NodeId> memo;
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    if (src.is_terminal(u)) return u;  // terminal ids coincide
    if (const auto it = memo.find(u); it != memo.end()) return it->second;
    const Node& un = src.node(u);
    const int var = src.var_at_level(un.level);
    // Shannon expansion re-interpreted in the destination ordering.
    const NodeId out = dst.ite(dst.var_node(var), self(self, un.hi),
                               self(self, un.lo));
    memo.emplace(u, out);
    return out;
  };
  return rec(rec, f);
}

}  // namespace ovo::bdd
