#include "bdd/transfer.hpp"

#include "ds/unique_table.hpp"
#include "util/check.hpp"

namespace ovo::bdd {

NodeId transfer(const Manager& src, NodeId f, Manager& dst) {
  OVO_CHECK_MSG(src.num_vars() == dst.num_vars(),
                "transfer: variable universes differ");
  ds::UniqueTable memo;
  auto rec = [&](auto&& self, NodeId u) -> NodeId {
    if (src.is_terminal(u)) return u;  // terminal ids coincide
    if (const std::uint32_t* hit = memo.find(u)) return *hit;
    const Node un = src.node(u);
    const int var = src.var_at_level(un.level);
    // Shannon expansion re-interpreted in the destination ordering.
    const NodeId out = dst.ite(dst.var_node(var), self(self, un.hi),
                               self(self, un.lo));
    memo.insert(u, out);
    return out;
  };
  return rec(rec, f);
}

}  // namespace ovo::bdd
