#include "bdd/algorithms.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace ovo::bdd {

namespace {

/// Models of u over levels [level(u), n), memoized densely over the arena.
class ModelCounter {
 public:
  explicit ModelCounter(const Manager& m)
      : m_(m), memo_(m.pool_size(), kUnset) {}

  std::uint64_t count(NodeId u) {
    if (u == kFalse) return 0;
    if (u == kTrue) return 1;
    if (memo_[u] != kUnset) return memo_[u];
    const Node un = m_.node(u);
    const std::uint64_t c = below(un.lo, un.level) + below(un.hi, un.level);
    memo_[u] = c;
    return c;
  }

  /// Models of child `v` counted over levels (parent_level, n).
  std::uint64_t below(NodeId v, int parent_level) {
    const int child_level = m_.node(v).level;
    return count(v) << (child_level - parent_level - 1);
  }

 private:
  static constexpr std::uint64_t kUnset = ~std::uint64_t{0};
  const Manager& m_;
  std::vector<std::uint64_t> memo_;
};

}  // namespace

std::uint64_t for_each_model(const Manager& m, NodeId f,
                             const std::function<bool(std::uint64_t)>& fn) {
  const std::vector<std::uint64_t> models = all_models(m, f);
  std::uint64_t visited = 0;
  for (const std::uint64_t a : models) {
    ++visited;
    if (!fn(a)) break;
  }
  return visited;
}

std::vector<std::uint64_t> all_models(const Manager& m, NodeId f,
                                      std::uint64_t limit) {
  OVO_CHECK_MSG(m.satcount(f) <= limit,
                "all_models: onset exceeds the enumeration limit");
  std::vector<std::uint64_t> out;
  const int n = m.num_vars();
  auto rec = [&](auto&& self, NodeId u, int level,
                 std::uint64_t acc) -> void {
    if (u == kFalse) return;
    if (level == n) {
      out.push_back(acc);
      return;
    }
    const int var = m.var_at_level(level);
    const Node& un = m.node(u);
    if (m.is_terminal(u) || un.level > level) {
      // Free variable at this level: both values extend every model.
      self(self, u, level + 1, acc);
      self(self, u, level + 1, acc | (std::uint64_t{1} << var));
    } else {
      self(self, un.lo, level + 1, acc);
      self(self, un.hi, level + 1, acc | (std::uint64_t{1} << var));
    }
  };
  rec(rec, f, 0, 0);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::uint64_t> sample_model(const Manager& m, NodeId f,
                                          util::Xoshiro256& rng) {
  if (f == kFalse) return std::nullopt;
  ModelCounter counter(m);
  std::uint64_t acc = 0;
  NodeId u = f;
  const int n = m.num_vars();
  for (int level = 0; level < n; ++level) {
    const int var = m.var_at_level(level);
    const Node& un = m.node(u);
    if (m.is_terminal(u) || un.level > level) {
      if (rng.coin()) acc |= std::uint64_t{1} << var;  // free variable
      continue;
    }
    const std::uint64_t c0 = counter.below(un.lo, level);
    const std::uint64_t c1 = counter.below(un.hi, level);
    OVO_DCHECK(c0 + c1 > 0);
    if (rng.below(c0 + c1) < c0) {
      u = un.lo;
    } else {
      acc |= std::uint64_t{1} << var;
      u = un.hi;
    }
  }
  OVO_CHECK(u == kTrue);
  return acc;
}

std::optional<WeightedModel> min_weight_model(
    const Manager& m, NodeId f, const std::vector<double>& weight) {
  const int n = m.num_vars();
  OVO_CHECK_MSG(static_cast<int>(weight.size()) == n,
                "min_weight_model: weight vector arity mismatch");
  if (f == kFalse) return std::nullopt;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Contribution of freely-choosable levels in (from, to): pick each
  // variable's cheaper polarity.
  const auto free_gain = [&](int from, int to) {
    double g = 0.0;
    for (int l = from + 1; l < to; ++l)
      g += std::min(0.0, weight[static_cast<std::size_t>(m.var_at_level(l))]);
    return g;
  };

  std::vector<std::uint8_t> memo_set(m.pool_size(), 0);
  std::vector<double> memo(m.pool_size(), 0.0);
  auto best = [&](auto&& self, NodeId u) -> double {
    if (u == kFalse) return kInf;
    if (u == kTrue) return 0.0;
    if (memo_set[u]) return memo[u];
    const Node un = m.node(u);
    const double w =
        weight[static_cast<std::size_t>(m.var_at_level(un.level))];
    const double via_lo =
        self(self, un.lo) + free_gain(un.level, m.node(un.lo).level);
    const double via_hi =
        self(self, un.hi) + free_gain(un.level, m.node(un.hi).level) + w;
    const double b = std::min(via_lo, via_hi);
    memo_set[u] = 1;
    memo[u] = b;
    return b;
  };
  const double total =
      best(best, f) + free_gain(-1, m.node(f).level);
  if (total == kInf) return std::nullopt;

  // Reconstruct one optimal assignment by re-descending.
  WeightedModel out;
  out.weight = total;
  NodeId u = f;
  for (int level = 0; level < n; ++level) {
    const int var = m.var_at_level(level);
    const double w = weight[static_cast<std::size_t>(var)];
    const Node& un = m.node(u);
    if (m.is_terminal(u) || un.level > level) {
      if (w < 0.0) out.assignment |= std::uint64_t{1} << var;
      continue;
    }
    const double via_lo =
        best(best, un.lo) + free_gain(un.level, m.node(un.lo).level);
    const double via_hi =
        best(best, un.hi) + free_gain(un.level, m.node(un.hi).level) + w;
    if (via_hi < via_lo) {
      out.assignment |= std::uint64_t{1} << var;
      u = un.hi;
    } else {
      u = un.lo;
    }
  }
  return out;
}

double density(const Manager& m, NodeId f) {
  return static_cast<double>(m.satcount(f)) /
         static_cast<double>(std::uint64_t{1} << m.num_vars());
}

std::optional<Cube> shortest_cube(const Manager& m, NodeId f) {
  if (f == kFalse) return std::nullopt;
  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  constexpr int kUnset = -1;
  std::vector<int> memo(m.pool_size(), kUnset);
  auto depth = [&](auto&& self, NodeId u) -> int {
    if (u == kFalse) return kInf;
    if (u == kTrue) return 0;
    if (memo[u] != kUnset) return memo[u];
    const Node un = m.node(u);
    const int d = 1 + std::min(self(self, un.lo), self(self, un.hi));
    memo[u] = d;
    return d;
  };
  (void)depth(depth, f);

  Cube cube;
  NodeId u = f;
  while (u != kTrue) {
    const Node& un = m.node(u);
    const int var = m.var_at_level(un.level);
    const int d_lo = depth(depth, un.lo);
    const int d_hi = depth(depth, un.hi);
    cube.care |= util::Mask{1} << var;
    if (d_hi < d_lo) {
      cube.values |= std::uint64_t{1} << var;
      u = un.hi;
    } else {
      u = un.lo;
    }
  }
  return cube;
}

}  // namespace ovo::bdd
