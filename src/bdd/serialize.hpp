#pragma once
// Text serialization of ROBDDs: a small versioned format that survives
// round-trips across processes.  Node ids are compacted to a dense
// post-order numbering on save; load re-interns them through make(), so a
// loaded diagram is reduced and canonical by construction.
//
//   ovo-bdd 1
//   n <num_vars>
//   order <v0> <v1> ... (root level first)
//   nodes <count>
//   <idx> <level> <lo> <hi>     (idx dense from 2; 0/1 are terminals)
//   root <idx>

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/manager.hpp"

namespace ovo::bdd {

/// Serializes the diagram rooted at `root`.
std::string save_bdd(const Manager& m, NodeId root);

struct LoadedBdd {
  Manager manager;
  NodeId root;
};

/// Parses a diagram saved by save_bdd. Throws util::CheckError on
/// malformed input (bad header, dangling references, level violations).
LoadedBdd load_bdd(const std::string& text);

/// Compact binary form of the same diagram (tag 'B', version 1, dense
/// post-order node table).  The decoder goes through the checkpoint
/// layer's bounds-checked rt::ByteReader, so every field read is
/// length-validated before any allocation; structural violations throw
/// rt::CheckpointError(kMalformed) and level-ordering violations surface
/// as util::CheckError from make() — both typed, fuzz-safe failures.
std::vector<std::uint8_t> save_bdd_binary(const Manager& m, NodeId root);
LoadedBdd load_bdd_binary(const std::uint8_t* data, std::size_t len);

}  // namespace ovo::bdd
