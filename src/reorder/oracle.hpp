#pragma once
// The shared order-cost oracle: every classical ordering search evaluates
// candidate reading orders through one CostOracle, which owns
//
//  * the base prefix table TABLE_{emptyset} (built once per function),
//  * the compact_into ping-pong scratch buffers (no allocation per
//    evaluation once their capacity covers one chain),
//  * an order-keyed memo cache (ovo::ds::ComputedCache) so repeated
//    candidates across sift passes, windows, restarts, and ladder stages
//    are evaluated once, and
//  * the unified OracleStats counters.
//
// Determinism and budget contract: memoization never changes results or
// governor accounting.  A memo hit returns exactly the size a fresh
// evaluation would have computed (keys are lossless, see below), and the
// governor is charged per *query* — identically to the pre-oracle code —
// so a governed run trips at the same point whether or not the cache is
// warm.  Memoization only skips the computation.
//
// Memo keying: an order is packed into ceil(log2 n) bits per variable,
// root first, into the cache's 96-bit (uint64, uint32) key.  The packing
// is injective and the cache compares full keys, so a hit is never a
// collision.  For n where the packed order exceeds 96 bits (n >= 20 —
// beyond any practical chain evaluation) the memo silently disables and
// every query evaluates.

#include <cstdint>
#include <vector>

#include "core/minimize.hpp"
#include "core/prefix_table.hpp"
#include "ds/computed_cache.hpp"
#include "reorder/eval_context.hpp"
#include "rt/budget.hpp"
#include "tt/truth_table.hpp"

namespace ovo::reorder {

class CostOracle {
 public:
  /// Oracle over a truth table (BDD or ZDD chain evaluation).
  CostOracle(const tt::TruthTable& f, core::DiagramKind kind);

  /// Oracle over an MTBDD value table of size 2^n.
  CostOracle(const std::vector<std::int64_t>& values, int n);

  CostOracle(const CostOracle&) = delete;
  CostOracle& operator=(const CostOracle&) = delete;

  int num_vars() const { return base_.n; }
  core::DiagramKind kind() const { return kind_; }

  /// TABLE_{emptyset}, shared with callers that run their own chains
  /// (brute force, BnB, the FS* DP) against the same function.
  const core::PrefixTable& base() const { return base_; }

  /// Work units one full-chain evaluation costs (2^{n+1} - 2 cells).
  std::uint64_t chain_eval_cost() const {
    return core::chain_eval_cost(base_.n);
  }

  bool memo_enabled() const { return bits_per_var_ > 0; }

  /// Internal node count of the diagram under `order_root_first`.
  /// A non-null `gov` is polled for hard stops: a stopped query returns
  /// core::kAbortedSize (never memoized).  Work is NOT charged here —
  /// callers admit/charge at their serial program points, exactly as
  /// before the oracle existed.
  std::uint64_t size_for_order(const std::vector<int>& order_root_first,
                               const rt::Governor* gov = nullptr);

  /// Batch evaluation of candidate orders, fanned out as a one-node
  /// region on the task-graph scheduler, preserving the pre-oracle
  /// semantics bit for bit: with ctx.gov the batch is first
  /// truncated — serially — to the prefix the remaining work budget
  /// admits (chain_eval_cost() units per candidate, charged whether or
  /// not the candidate later hits the memo), then memo hits are resolved
  /// serially and only the misses fan out (one candidate per chunk by
  /// default).  Entries not admitted or hard-stopped mid-chain hold
  /// core::kAbortedSize, which no selection scan can pick as a best.
  std::vector<std::uint64_t> sizes_for_orders(
      const std::vector<std::vector<int>>& candidates,
      const EvalContext& ctx);

  OracleStats& stats() { return stats_; }
  const OracleStats& stats() const { return stats_; }

 private:
  /// Packs an order into the memo key; false when the memo is disabled.
  bool pack_key(const std::vector<int>& order, std::uint64_t* a,
                std::uint32_t* b) const;

  core::DiagramKind kind_;
  core::PrefixTable base_;
  int bits_per_var_ = 0;  ///< 0 = memo disabled (packed order > 96 bits)
  ds::ComputedCache memo_;
  core::PrefixTable scratch_cur_, scratch_next_;
  OracleStats stats_;
};

}  // namespace ovo::reorder
