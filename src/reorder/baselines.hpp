#pragma once
// Baseline ordering searches the paper compares against (explicitly or
// implicitly):
//   * brute force over all n! orderings — the paper's trivial O*(n! 2^n)
//     bound;
//   * Rudell-style sifting and window permutation — the classic heuristics
//     whose optimization quality exact methods are meant to judge
//     (paper Sec. 1.1, citing [MT98, Sec. 9.2.2]);
//   * random restarts.
// All evaluate candidate orders with the exact O(2^n) chain-compaction
// size oracle (core::diagram_size_for_order).

#include <cstdint>
#include <vector>

#include "core/prefix_table.hpp"
#include "parallel/exec_policy.hpp"
#include "reorder/oracle.hpp"
#include "rt/budget.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {

struct OrderSearchResult {
  std::vector<int> order_root_first;
  std::uint64_t internal_nodes = 0;
  std::uint64_t orders_evaluated = 0;
  /// Brute force also reports the pessimal ordering's size (the spread
  /// that motivates the whole problem — cf. the paper's Fig. 1).
  std::uint64_t worst_internal_nodes = 0;
};

/// Exhaustive search over all n! reading orders. Guarded to n <= 10.
/// `exec` fans the permutation sweep over the ovo::par pool (chunked by
/// lexicographic rank); the result is the first lexicographic minimizer
/// for every thread count.
OrderSearchResult brute_force_minimize(
    const tt::TruthTable& f, core::DiagramKind kind = core::DiagramKind::kBdd,
    const par::ExecPolicy& exec = {});

/// Oracle-based primary implementation: chains run against oracle.base()
/// with per-chunk scratch buffers (the memo is bypassed — all n! orders
/// are distinct), and the sweep's work is recorded in oracle.stats().
OrderSearchResult brute_force_minimize(CostOracle& oracle,
                                       const EvalContext& ctx = {});

/// Rudell sifting: repeatedly move each variable to its locally best
/// position, until a fixpoint or `max_passes`.  `exec` parallelizes the
/// per-position size evaluations; the chosen position (first best, ties to
/// the smallest index) is thread-count-independent.
///
/// A non-null `gov` budgets the search: every candidate batch is
/// deterministically truncated to what the remaining work budget admits
/// (core::chain_eval_cost(n) units per candidate, decided serially before
/// the batch fans out), so a budget-tripped run stops at the same point
/// for every thread count and returns the best order found so far —
/// always a valid permutation at least as good as the initial one.
OrderSearchResult sift(const tt::TruthTable& f,
                       std::vector<int> initial_order_root_first,
                       core::DiagramKind kind = core::DiagramKind::kBdd,
                       int max_passes = 8,
                       const par::ExecPolicy& exec = {},
                       rt::Governor* gov = nullptr);

/// Oracle-based primary implementation; candidate batches go through
/// oracle.sizes_for_orders (memoized), policy/budget through ctx.
OrderSearchResult sift(CostOracle& oracle,
                       std::vector<int> initial_order_root_first,
                       int max_passes = 8, const EvalContext& ctx = {});

/// Window permutation: exhaustively permute every window of `window`
/// adjacent levels, sliding left to right, until a fixpoint.  `exec`
/// parallelizes the per-window candidate evaluations deterministically.
/// `gov` budgets the search exactly as in sift().
OrderSearchResult window_permute(const tt::TruthTable& f,
                                 std::vector<int> initial_order_root_first,
                                 int window,
                                 core::DiagramKind kind =
                                     core::DiagramKind::kBdd,
                                 int max_passes = 8,
                                 const par::ExecPolicy& exec = {},
                                 rt::Governor* gov = nullptr);

/// Oracle-based primary implementation of window_permute.
OrderSearchResult window_permute(CostOracle& oracle,
                                 std::vector<int> initial_order_root_first,
                                 int window, int max_passes = 8,
                                 const EvalContext& ctx = {});

/// Best of `restarts` uniformly random orderings.  Orders are drawn from
/// `rng` serially (the stream is identical to the serial implementation);
/// only their size evaluations fan out over the pool.  `gov` budgets the
/// evaluations as in sift(); if the budget admits none, the result has an
/// empty order and internal_nodes == core::kAbortedSize — callers with a
/// prior incumbent keep it.
OrderSearchResult random_restart(const tt::TruthTable& f, int restarts,
                                 util::Xoshiro256& rng,
                                 core::DiagramKind kind =
                                     core::DiagramKind::kBdd,
                                 const par::ExecPolicy& exec = {},
                                 rt::Governor* gov = nullptr);

/// Oracle-based primary implementation of random_restart.  `rng` stays an
/// explicit parameter: the draw stream is part of the determinism
/// contract (ladder stages pass a seeded stream; ctx.seed is only used
/// by the strategy registry to construct one).
OrderSearchResult random_restart(CostOracle& oracle, int restarts,
                                 util::Xoshiro256& rng,
                                 const EvalContext& ctx = {});

}  // namespace ovo::reorder
