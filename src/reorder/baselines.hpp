#pragma once
// Baseline ordering searches the paper compares against (explicitly or
// implicitly):
//   * brute force over all n! orderings — the paper's trivial O*(n! 2^n)
//     bound;
//   * Rudell-style sifting and window permutation — the classic heuristics
//     whose optimization quality exact methods are meant to judge
//     (paper Sec. 1.1, citing [MT98, Sec. 9.2.2]);
//   * random restarts.
// All evaluate candidate orders with the exact O(2^n) chain-compaction
// size oracle (core::diagram_size_for_order).

#include <cstdint>
#include <vector>

#include "core/prefix_table.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {

struct OrderSearchResult {
  std::vector<int> order_root_first;
  std::uint64_t internal_nodes = 0;
  std::uint64_t orders_evaluated = 0;
  /// Brute force also reports the pessimal ordering's size (the spread
  /// that motivates the whole problem — cf. the paper's Fig. 1).
  std::uint64_t worst_internal_nodes = 0;
};

/// Exhaustive search over all n! reading orders. Guarded to n <= 10.
OrderSearchResult brute_force_minimize(
    const tt::TruthTable& f, core::DiagramKind kind = core::DiagramKind::kBdd);

/// Rudell sifting: repeatedly move each variable to its locally best
/// position, until a fixpoint or `max_passes`.
OrderSearchResult sift(const tt::TruthTable& f,
                       std::vector<int> initial_order_root_first,
                       core::DiagramKind kind = core::DiagramKind::kBdd,
                       int max_passes = 8);

/// Window permutation: exhaustively permute every window of `window`
/// adjacent levels, sliding left to right, until a fixpoint.
OrderSearchResult window_permute(const tt::TruthTable& f,
                                 std::vector<int> initial_order_root_first,
                                 int window,
                                 core::DiagramKind kind =
                                     core::DiagramKind::kBdd,
                                 int max_passes = 8);

/// Best of `restarts` uniformly random orderings.
OrderSearchResult random_restart(const tt::TruthTable& f, int restarts,
                                 util::Xoshiro256& rng,
                                 core::DiagramKind kind =
                                     core::DiagramKind::kBdd);

}  // namespace ovo::reorder
