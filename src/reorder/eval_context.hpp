#pragma once
// The single way execution policy, budget, and seed reach an ordering
// algorithm, plus the unified cost-oracle counters every algorithm
// reports through.  Header-only on purpose: the bdd and quantum layers
// use these types without linking ovo_reorder (only ovo_rt, for the
// Governor the context points at).

#include <cstdint>

#include "core/prefix_table.hpp"
#include "obs/metrics.hpp"
#include "parallel/exec_policy.hpp"
#include "rt/budget.hpp"

namespace ovo::reorder {

/// Unified per-search statistics, replacing the per-algorithm
/// orders_evaluated / chain-cost counters.  Every size query an algorithm
/// makes is either answered from the memo (memo_hits) or actually
/// evaluated (evals); queries == memo_hits + evals always holds, and
/// evals < queries is the observable proof that memoization is live.
struct OracleStats {
  std::uint64_t queries = 0;    ///< size queries answered
  std::uint64_t evals = 0;      ///< chain evaluations actually performed
  std::uint64_t memo_hits = 0;  ///< queries served from the memo cache
  /// Table cells processed by the evaluations (the paper's work measure);
  /// also collects DP/compaction work for the non-chain engines.
  core::OpCounter ops;
  /// Quantum minimum-finding mirror: calls made and the queries a quantum
  /// computer would have spent, so classical and Grover-simulated paths
  /// count their oracle queries in the same ledger.
  std::uint64_t min_find_calls = 0;
  double min_find_queries = 0.0;

  /// Accumulates this struct into `l` under oracle.* (plus the nested
  /// OpCounter's fs.* / ds.unique.* / fs.prune.* slots).
  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kOracleQueries, queries);
    l.record(obs::Metric::kOracleEvals, evals);
    l.record(obs::Metric::kOracleMemoHits, memo_hits);
    l.record(obs::Metric::kOracleMinFindCalls, min_find_calls);
    l.add_f64(obs::Metric::kOracleMinFindQueries, min_find_queries);
    ops.to_ledger(l);
  }
  void from_ledger(const obs::Ledger& l) {
    queries = l.get(obs::Metric::kOracleQueries);
    evals = l.get(obs::Metric::kOracleEvals);
    memo_hits = l.get(obs::Metric::kOracleMemoHits);
    min_find_calls = l.get(obs::Metric::kOracleMinFindCalls);
    min_find_queries = l.get_f64(obs::Metric::kOracleMinFindQueries);
    ops.from_ledger(l);
  }

  /// Shard merge under the registry's policies (all oracle.* metrics
  /// are sums; the nested ops ledger maxes its peaks).
  OracleStats& operator+=(const OracleStats& o) {
    obs::Ledger mine, theirs;
    to_ledger(mine);
    o.to_ledger(theirs);
    from_ledger(mine.merge(theirs));
    return *this;
  }
};

/// Everything an ordering algorithm needs from its caller.  Defaults
/// reproduce the ungoverned serial path exactly: no governor, one thread,
/// the library's canonical seed.
struct EvalContext {
  par::ExecPolicy exec{};
  /// Budget enforcement; nullptr = unlimited.  Not owned.
  rt::Governor* gov = nullptr;
  /// Seed for stochastic strategies (annealing, restarts).
  std::uint64_t seed = 0x5eed5eed5eedull;
  /// Optional external counter sink for algorithms that run without a
  /// CostOracle of their own (dynamic sifting, the quantum layer).
  OracleStats* stats = nullptr;
};

}  // namespace ovo::reorder
