#pragma once
// Name-keyed strategy registry — one front door for every variable-
// ordering minimizer in the library: the classical reorder searches, the
// exact engines (FS DP, branch-and-bound, the governed minimize_auto
// ladder), in-place dynamic sifting on the live DAG, and the simulated
// quantum OptOBDD.  The CLI's --strategy flag, the benches, and the
// tests all resolve algorithms here, so adding a minimizer is one
// registry entry — not a new flag plumbed through every consumer.
//
// Every strategy reports through the same StrategyResult: the order
// found, its exact size, whether optimality was proven, the governed
// outcome, and the unified OracleStats counters (size queries, actual
// chain evaluations, memo hits, table cells — plus the quantum
// minimum-finder mirror).

#include <cstdint>
#include <string>
#include <vector>

#include "core/fs_checkpoint.hpp"
#include "core/prefix_table.hpp"
#include "reorder/eval_context.hpp"
#include "rt/budget.hpp"
#include "tt/truth_table.hpp"

namespace ovo::reorder {

/// Per-strategy tuning knobs; each field is read only by the strategies
/// it names.  Policy, budget, and threading come from EvalContext, not
/// from here.
struct StrategyOptions {
  core::DiagramKind kind = core::DiagramKind::kBdd;
  /// Block width for `window` and `exact-window`.
  int window = 3;
  /// Pass cap for the fixpoint heuristics (`sift`, `window`,
  /// `exact-window`, `dynamic`) and the `auto` ladder's sifting stage.
  int max_passes = 8;
  /// Random orders drawn by `restarts`.
  int restarts = 16;
  /// RNG seed for the stochastic strategies (`anneal`, `restarts`).
  std::uint64_t seed = 42;
  /// Division-point fractions for `quantum` (Theorem 10's alphas).
  std::vector<double> alphas = {0.27};
  /// Heuristic seeding the bound-pruned DP's incumbent for `fs` and
  /// `auto` when EvalContext.exec.prune == PruneMode::kBounds: "sift"
  /// (default), "window", "restarts", "anneal", or "none" (self-seed).
  /// Ignored when pruning is off.
  std::string prune_seed = "sift";
  /// Checkpoint/resume for the exact DP inside `fs` and `auto` (see
  /// core::FsCheckpointOptions); ignored by every other strategy.
  core::FsCheckpointOptions ckpt{};
};

struct StrategyResult {
  /// Always a valid permutation (root first), even on tight budgets.
  std::vector<int> order_root_first;
  /// Exact internal node count of the diagram under that order.
  std::uint64_t internal_nodes = 0;
  /// True iff the order is proven optimal for the requested kind.
  bool optimal = false;
  /// Certified lower bound on the optimal size: equals internal_nodes
  /// when optimal; on a tripped `auto` run, the deepest completed DP
  /// layer's proven bound; otherwise 0 (no certificate).
  std::uint64_t lower_bound = 0;
  /// Why the run ended (kComplete unless a governor intervened).
  rt::Outcome outcome = rt::Outcome::kComplete;
  /// Unified cost-oracle counters (see eval_context.hpp).
  OracleStats oracle;
  /// Governor accounting when ctx.gov was non-null.
  rt::RunStats run;
};

struct Strategy {
  const char* name;
  const char* description;
  StrategyResult (*run)(const tt::TruthTable& f,
                        const StrategyOptions& options,
                        const EvalContext& ctx);
};

/// All registered strategies, in presentation order (exact engines
/// first, then the heuristics, then the DAG/quantum paths).
const std::vector<Strategy>& strategies();

/// The registered strategy named `name`, or nullptr if unknown.
const Strategy* find_strategy(const std::string& name);

}  // namespace ovo::reorder
