#pragma once
// Branch-and-bound exact variable ordering — the other classical exact
// approach (best-first prefix search with admissible lower bounds and
// subset dominance, in the spirit of the FizZ/JANUS line of work).  It
// explores the same bottom-up prefix lattice as the FS dynamic program
// but depth-first, pruning with:
//
//   * dominance: reaching a prefix *set* with a cost no better than a
//     previously recorded chain is futile (Lemma 3 makes per-set costs
//     chain-invariant going forward);
//   * an admissible lower bound on the remaining upper part: with w
//     distinct non-terminal boundary subfunctions, the upper part needs
//     at least w - 1 nodes (a binary DAG hanging from one root with u
//     nodes has at most u + 1 edges leaving it), and — for BDDs/MTBDDs —
//     at least one node per remaining variable the residual still depends
//     on (not valid for ZDDs, where zero-suppression can elide a
//     depended-on variable's nodes).
//
// Worst case matches FS's O*(3^n); with a good initial incumbent
// (sifting) it typically expands a small fraction of the lattice.  Used
// as an independent exact cross-check of FS and as a baseline.

#include <cstdint>
#include <vector>

#include "core/prefix_table.hpp"
#include "parallel/exec_policy.hpp"
#include "reorder/oracle.hpp"
#include "rt/budget.hpp"
#include "tt/truth_table.hpp"

namespace ovo::reorder {

struct BnbResult {
  std::vector<int> order_root_first;
  std::uint64_t internal_nodes = 0;
  std::uint64_t states_expanded = 0;  ///< prefix states visited
  std::uint64_t states_pruned_bound = 0;
  std::uint64_t states_pruned_dominance = 0;
  /// False iff a governor stopped the search early; the result is then
  /// the best incumbent found, not a proven optimum.
  bool complete = true;
};

/// Exact minimization by branch and bound. `initial_upper_bound` is an
/// incumbent size (e.g. from sifting); pass UINT64_MAX to start cold.
/// `exec` parallelizes per-node child generation (one compaction per free
/// variable) on states large enough to amortize dispatch; the DFS itself
/// — and therefore every statistic — is unchanged by the thread count.
///
/// A non-null `gov` budgets the search: each state's child-generation
/// cost (free variables × table cells) is admitted and charged at the
/// serial DFS entry, so a work-limit trip cuts the search at the same
/// state for every thread count.  A cold-started governed run first
/// seeds a greedy-descent incumbent (charged outside the budget, the
/// price of guaranteeing *some* valid answer), so the result always
/// carries a valid ordering; `complete` reports whether the optimum was
/// proven.
BnbResult branch_and_bound_minimize(
    const tt::TruthTable& f,
    core::DiagramKind kind = core::DiagramKind::kBdd,
    std::uint64_t initial_upper_bound = ~std::uint64_t{0},
    const par::ExecPolicy& exec = {}, rt::Governor* gov = nullptr);

/// Oracle-based primary implementation: the search runs from
/// oracle.base() (no second TABLE_{emptyset} build) and records its
/// compaction work — child generation, free variables × table cells per
/// expanded state — into oracle.stats().ops, the same ledger the chain
/// evaluators use.
BnbResult branch_and_bound_minimize(
    CostOracle& oracle,
    std::uint64_t initial_upper_bound = ~std::uint64_t{0},
    const EvalContext& ctx = {});

/// The admissible lower bound used by the search (exposed for tests):
/// minimum extra nodes any completion of prefix state `t` must add.
std::uint64_t bnb_lower_bound(const core::PrefixTable& t,
                              core::DiagramKind kind);

}  // namespace ovo::reorder
