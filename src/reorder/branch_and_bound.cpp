#include "reorder/branch_and_bound.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace ovo::reorder {

namespace {

using core::DiagramKind;
using core::PrefixTable;

/// Number of distinct non-terminal boundary subfunctions of `t`.
std::uint64_t boundary_width(const PrefixTable& t) {
  std::unordered_set<std::uint32_t> distinct;
  for (const std::uint32_t c : t.cells)
    if (c >= t.num_terminals) distinct.insert(c);
  return distinct.size();
}

/// True if the residual function-set still depends on free variable v.
bool residual_depends_on(const PrefixTable& t, int v) {
  const util::Mask free = t.free_mask();
  const int pos = util::popcount(free & ((util::Mask{1} << v) - 1));
  const std::uint64_t step = std::uint64_t{1} << pos;
  for (std::uint64_t b = 0; b < t.cells.size(); ++b) {
    if ((b & step) != 0) continue;
    if (t.cells[b] != t.cells[b | step]) return true;
  }
  return false;
}

class Search {
 public:
  /// States below this cell count expand serially: deep in the search the
  /// tables are tiny and dispatch would dominate the compactions.
  static constexpr std::uint64_t kParallelCellThreshold = 1ull << 12;

  Search(DiagramKind kind, std::uint64_t upper, const par::ExecPolicy& exec,
         rt::Governor* gov, core::OpCounter* ops = nullptr)
      : kind_(kind), best_(upper), exec_(exec), gov_(gov), ops_(ops) {}

  void run(const PrefixTable& root, BnbResult* out) {
    chain_.clear();
    dfs(root);
    out->internal_nodes = best_;
    out->order_root_first.assign(best_chain_.rbegin(), best_chain_.rend());
    out->states_expanded = expanded_;
    out->states_pruned_bound = pruned_bound_;
    out->states_pruned_dominance = pruned_dominance_;
    out->complete = !tripped_;
  }

  bool found() const { return !best_chain_.empty(); }

 private:
  void dfs(const PrefixTable& state) {
    ++expanded_;
    if (state.free_count() == 0) {
      if (state.mincost() < best_ || best_chain_.empty()) {
        best_ = state.mincost();
        best_chain_ = chain_;
      }
      return;
    }
    if (gov_ != nullptr) {
      // The DFS entry is a serial program point, so admitting this
      // state's child-generation cost here makes the trip state-exact
      // and thread-count-independent.
      const std::uint64_t gen_cost =
          static_cast<std::uint64_t>(state.free_count()) *
          state.cells.size();
      if (gov_->stopped() || !gov_->admit_work(gen_cost)) {
        tripped_ = true;
        return;
      }
      gov_->charge(gen_cost);
    }
    // Generate children (one per free variable), cheapest width first so
    // good incumbents appear early.  The compactions are independent, each
    // writing its own slot, so they fan out over the pool on states big
    // enough to amortize dispatch; the sort sees the same sequence either
    // way, so the visit order is thread-count-independent.
    struct Child {
      int var;
      PrefixTable table;
    };
    const std::vector<int> free_vars = util::bits_of(state.free_mask());
    std::vector<Child> children(free_vars.size());
    const int threads = state.cells.size() >= kParallelCellThreshold
                            ? exec_.resolved_threads()
                            : 1;
    par::ThreadPool::shared().parallel_for(
        std::uint64_t{0}, free_vars.size(), std::uint64_t{1}, threads,
        [&](std::uint64_t i, int) {
          const int v = free_vars[static_cast<std::size_t>(i)];
          children[static_cast<std::size_t>(i)] =
              Child{v, core::compact(state, v, kind_)};
        });
    if (ops_ != nullptr) {
      // Recorded serially after the fan-out (one compaction over the
      // state's cells per free variable), so the ledger is identical at
      // every thread count.
      ops_->table_cells += free_vars.size() * state.cells.size();
      ops_->compactions += free_vars.size();
    }
    std::sort(children.begin(), children.end(),
              [](const Child& a, const Child& b) {
                return a.table.mincost() < b.table.mincost();
              });
    for (Child& c : children) {
      if (tripped_) return;  // unwind without exploring further siblings
      const std::uint64_t cost = c.table.mincost();
      // Until an incumbent *order* exists the bound may stem from an
      // external estimate that some optimal chain meets with equality, so
      // prune strictly; afterwards prune ties too.
      const std::uint64_t projected = cost + bnb_lower_bound(c.table, kind_);
      if (best_chain_.empty() ? projected > best_ : projected >= best_) {
        ++pruned_bound_;
        continue;
      }
      const auto [it, inserted] = seen_.emplace(c.table.vars, cost);
      if (!inserted) {
        if (it->second <= cost) {
          ++pruned_dominance_;
          continue;
        }
        it->second = cost;
      }
      chain_.push_back(c.var);
      dfs(c.table);
      chain_.pop_back();
    }
  }

  DiagramKind kind_;
  std::uint64_t best_;
  par::ExecPolicy exec_;
  rt::Governor* gov_ = nullptr;
  core::OpCounter* ops_ = nullptr;
  bool tripped_ = false;
  std::vector<int> chain_;        // bottom-up insertion order so far
  std::vector<int> best_chain_;
  std::unordered_map<util::Mask, std::uint64_t> seen_;
  std::uint64_t expanded_ = 0;
  std::uint64_t pruned_bound_ = 0;
  std::uint64_t pruned_dominance_ = 0;
};

/// Greedy descent (min child mincost, ties to the first free variable):
/// the incumbent a governed cold start falls back on.  Returns the chain
/// bottom-up and the final table's mincost.
std::uint64_t greedy_descent(const PrefixTable& root, DiagramKind kind,
                             std::vector<int>* chain_bottom_up) {
  PrefixTable t = root;
  PrefixTable cand, best_child;
  chain_bottom_up->clear();
  while (t.free_count() > 0) {
    std::uint64_t best_cost = ~std::uint64_t{0};
    int best_var = -1;
    util::for_each_bit(t.free_mask(), [&](int v) {
      compact_into(cand, t, v, kind);
      if (cand.mincost() < best_cost) {
        best_cost = cand.mincost();
        best_var = v;
        std::swap(best_child, cand);
      }
    });
    chain_bottom_up->push_back(best_var);
    std::swap(t, best_child);
  }
  return t.mincost();
}

/// Shared driver: greedy incumbent for governed cold starts, then the
/// DFS itself.  `ops`, when non-null, receives the child-generation
/// compaction work (the oracle entry points it at its ledger; the legacy
/// truth-table entry keeps PR-era behavior and passes nullptr).
BnbResult bnb_run(const PrefixTable& root, DiagramKind kind,
                  std::uint64_t initial_upper_bound,
                  const par::ExecPolicy& exec, rt::Governor* gov,
                  core::OpCounter* ops) {
  // A governed cold start seeds a greedy incumbent first, so even an
  // immediately tripped search has a valid ordering to return.
  std::vector<int> greedy_chain;
  std::uint64_t greedy_cost = ~std::uint64_t{0};
  if (gov != nullptr && initial_upper_bound == ~std::uint64_t{0}) {
    greedy_cost = greedy_descent(root, kind, &greedy_chain);
    initial_upper_bound = greedy_cost;
  }

  BnbResult out;
  Search search(kind, initial_upper_bound, exec, gov, ops);
  search.run(root, &out);
  if (!search.found() && !greedy_chain.empty()) {
    // The search never reached a leaf better than the greedy incumbent
    // (tripped early, or proved it unbeatable): fall back to it.
    out.internal_nodes = greedy_cost;
    out.order_root_first.assign(greedy_chain.rbegin(), greedy_chain.rend());
  }
  OVO_CHECK_MSG(!out.order_root_first.empty(),
                "branch_and_bound: initial upper bound excluded all "
                "solutions");
  return out;
}

}  // namespace

std::uint64_t bnb_lower_bound(const PrefixTable& t, DiagramKind kind) {
  // A binary DAG hanging from one root with u internal nodes has at most
  // u + 1 edges leaving it (2u edges minus >= u-1 needed for internal
  // connectivity), so reaching w distinct boundary nodes needs
  // u >= w - 1. At w <= 1 the boundary node can itself be the root: 0.
  const std::uint64_t w = boundary_width(t);
  std::uint64_t bound = w > 0 ? w - 1 : 0;
  if (kind != DiagramKind::kZdd) {
    std::uint64_t dependent = 0;
    util::for_each_bit(t.free_mask(), [&](int v) {
      if (residual_depends_on(t, v)) ++dependent;
    });
    bound = std::max(bound, dependent);
  }
  return bound;
}

BnbResult branch_and_bound_minimize(const tt::TruthTable& f,
                                    DiagramKind kind,
                                    std::uint64_t initial_upper_bound,
                                    const par::ExecPolicy& exec,
                                    rt::Governor* gov) {
  OVO_CHECK_MSG(f.num_vars() >= 1, "branch_and_bound: need >= 1 variable");
  const PrefixTable root = core::initial_table(f);
  return bnb_run(root, kind, initial_upper_bound, exec, gov,
                 /*ops=*/nullptr);
}

BnbResult branch_and_bound_minimize(CostOracle& oracle,
                                    std::uint64_t initial_upper_bound,
                                    const EvalContext& ctx) {
  return bnb_run(oracle.base(), oracle.kind(), initial_upper_bound,
                 ctx.exec, ctx.gov, &oracle.stats().ops);
}

}  // namespace ovo::reorder
