#include "reorder/strategy.hpp"

#include <numeric>
#include <utility>

#include "bdd/dynamic_reorder.hpp"
#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "quantum/min_find.hpp"
#include "quantum/opt_obdd.hpp"
#include "reorder/annealing.hpp"
#include "reorder/baselines.hpp"
#include "reorder/branch_and_bound.hpp"
#include "reorder/exact_window.hpp"
#include "reorder/minimize_auto.hpp"
#include "reorder/oracle.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {

namespace {

std::vector<int> identity_order(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

/// Stamps the governed outcome/accounting and the trivial optimality
/// certificate; every strategy (except `auto`, which has its own
/// partial-DP bound) ends here.
void finish(StrategyResult* r, const EvalContext& ctx) {
  if (r->optimal) r->lower_bound = r->internal_nodes;
  if (ctx.gov != nullptr) {
    r->outcome = ctx.gov->outcome();
    r->run = ctx.gov->stats();
  }
}

StrategyResult run_fs(const tt::TruthTable& f, const StrategyOptions& o,
                      const EvalContext& ctx) {
  StrategyResult r;
  // Bound-pruned runs seed the incumbent from the configured cheap
  // heuristic; ungoverned like the DP itself (budgets are `auto`'s job).
  // A resumed run skips seeding — the snapshot carries the effective
  // incumbent and the original seed's provenance.
  core::FsCheckpointOptions ckpt = o.ckpt;
  std::uint64_t prune_ub = 0;
  if (o.ckpt.resume != nullptr) {
    const core::FsSeedStats& ss = o.ckpt.resume->seed_stats;
    ckpt.seed_order = o.ckpt.resume->seed_order;
    ckpt.rng_seed = o.ckpt.resume->rng_seed;
    ckpt.seed_name = o.ckpt.resume->seed_name;
    ckpt.seed_stats = ss;
    // Report the skipped seed stage's ledger as if it had run.
    r.oracle.queries = ss.queries;
    r.oracle.evals = ss.evals;
    r.oracle.memo_hits = ss.memo_hits;
    r.oracle.ops = ss.ops;
  } else if (ctx.exec.prune == par::PruneMode::kBounds &&
             o.prune_seed != "none") {
    CostOracle oracle(f, o.kind);
    EvalContext seed_ctx;
    seed_ctx.exec = ctx.exec;
    const PruneSeedResult seeded =
        seed_prune_bound(oracle, o.prune_seed, o.max_passes, o.restarts,
                         o.seed, seed_ctx);
    prune_ub = seeded.upper_bound;
    ckpt.seed_order = seeded.order_root_first;
    ckpt.rng_seed = o.seed;
    ckpt.seed_name = o.prune_seed;
    r.oracle = oracle.stats();
    ckpt.seed_stats.queries = r.oracle.queries;
    ckpt.seed_stats.evals = r.oracle.evals;
    ckpt.seed_stats.memo_hits = r.oracle.memo_hits;
    ckpt.seed_stats.ops = r.oracle.ops;
  }
  // The plain DP has no graceful degradation; `auto` is the governed
  // exact path.  A budget on ctx is ignored here by design.
  core::MinimizeResult m =
      core::fs_minimize(f, o.kind, ctx.exec, prune_ub,
                        ckpt.active() ? &ckpt : nullptr);
  r.order_root_first = std::move(m.order_root_first);
  r.internal_nodes = m.min_internal_nodes;
  r.optimal = true;
  r.oracle.ops += m.ops;
  finish(&r, ctx);
  return r;
}

StrategyResult run_auto(const tt::TruthTable& f, const StrategyOptions& o,
                        const EvalContext& ctx) {
  AutoMinimizeOptions ao;
  ao.kind = o.kind;
  ao.sift_max_passes = o.max_passes;
  ao.prune_seed = o.prune_seed;
  ao.exec = ctx.exec;
  ao.ckpt = o.ckpt;
  const rt::Result<AutoMinimizeResult> res =
      ctx.gov != nullptr ? minimize_auto(f, *ctx.gov, ao)
                         : minimize_auto(f, rt::Budget{}, ao);
  StrategyResult r;
  r.order_root_first = res.value.order_root_first;
  r.internal_nodes = res.value.internal_nodes;
  r.optimal = res.value.optimal;
  r.lower_bound = res.value.lower_bound;
  r.outcome = res.outcome;
  r.oracle = res.value.oracle;
  r.oracle.ops += res.value.ops;  // DP + salvage work joins the ledger
  r.run = res.stats;
  return r;
}

StrategyResult run_bnb(const tt::TruthTable& f, const StrategyOptions& o,
                       const EvalContext& ctx) {
  CostOracle oracle(f, o.kind);
  const BnbResult b =
      branch_and_bound_minimize(oracle, ~std::uint64_t{0}, ctx);
  StrategyResult r;
  r.order_root_first = b.order_root_first;
  r.internal_nodes = b.internal_nodes;
  r.optimal = b.complete;
  r.oracle = oracle.stats();
  finish(&r, ctx);
  return r;
}

StrategyResult run_brute(const tt::TruthTable& f, const StrategyOptions& o,
                         const EvalContext& ctx) {
  CostOracle oracle(f, o.kind);
  const OrderSearchResult b = brute_force_minimize(oracle, ctx);
  StrategyResult r;
  r.order_root_first = b.order_root_first;
  r.internal_nodes = b.internal_nodes;
  r.optimal = true;
  r.oracle = oracle.stats();
  finish(&r, ctx);
  return r;
}

StrategyResult run_sift(const tt::TruthTable& f, const StrategyOptions& o,
                        const EvalContext& ctx) {
  CostOracle oracle(f, o.kind);
  const OrderSearchResult s =
      sift(oracle, identity_order(f.num_vars()), o.max_passes, ctx);
  StrategyResult r;
  r.order_root_first = s.order_root_first;
  r.internal_nodes = s.internal_nodes;
  r.oracle = oracle.stats();
  finish(&r, ctx);
  return r;
}

StrategyResult run_window(const tt::TruthTable& f, const StrategyOptions& o,
                          const EvalContext& ctx) {
  CostOracle oracle(f, o.kind);
  const OrderSearchResult s = window_permute(
      oracle, identity_order(f.num_vars()), o.window, o.max_passes, ctx);
  StrategyResult r;
  r.order_root_first = s.order_root_first;
  r.internal_nodes = s.internal_nodes;
  r.oracle = oracle.stats();
  finish(&r, ctx);
  return r;
}

StrategyResult run_exact_window(const tt::TruthTable& f,
                                const StrategyOptions& o,
                                const EvalContext& ctx) {
  CostOracle oracle(f, o.kind);
  const ExactWindowResult s = exact_window(
      oracle, identity_order(f.num_vars()), o.window, o.max_passes, ctx);
  StrategyResult r;
  r.order_root_first = s.order_root_first;
  r.internal_nodes = s.internal_nodes;
  r.oracle = oracle.stats();
  r.oracle.ops += s.ops;  // window DP/compaction work joins the ledger
  finish(&r, ctx);
  return r;
}

StrategyResult run_anneal(const tt::TruthTable& f, const StrategyOptions& o,
                          const EvalContext& ctx) {
  CostOracle oracle(f, o.kind);
  util::Xoshiro256 rng(o.seed);
  const AnnealResult s = simulated_annealing(
      oracle, identity_order(f.num_vars()), AnnealOptions{}, rng, ctx);
  StrategyResult r;
  r.order_root_first = s.order_root_first;
  r.internal_nodes = s.internal_nodes;
  r.oracle = oracle.stats();
  finish(&r, ctx);
  return r;
}

StrategyResult run_restarts(const tt::TruthTable& f,
                            const StrategyOptions& o,
                            const EvalContext& ctx) {
  CostOracle oracle(f, o.kind);
  util::Xoshiro256 rng(o.seed);
  const OrderSearchResult s = random_restart(oracle, o.restarts, rng, ctx);
  StrategyResult r;
  r.order_root_first = s.order_root_first;
  r.internal_nodes = s.internal_nodes;
  r.oracle = oracle.stats();
  finish(&r, ctx);
  return r;
}

StrategyResult run_dynamic(const tt::TruthTable& f,
                           const StrategyOptions& o,
                           const EvalContext& ctx) {
  OVO_CHECK_MSG(o.kind == core::DiagramKind::kBdd,
                "strategy dynamic: only BDDs have a live-DAG manager");
  bdd::Manager m(f.num_vars());
  const bdd::NodeId root = m.from_truth_table(f);
  StrategyResult r;
  EvalContext inner = ctx;
  inner.stats = &r.oracle;
  const bdd::SiftResult s =
      bdd::sift_in_place(m, {root}, o.max_passes, inner);
  r.order_root_first = m.order();
  r.internal_nodes = s.final_nodes;
  finish(&r, ctx);
  return r;
}

StrategyResult run_quantum(const tt::TruthTable& f,
                           const StrategyOptions& o,
                           const EvalContext& ctx) {
  quantum::AccountingMinimumFinder finder(
      static_cast<double>(f.num_vars()));
  StrategyResult r;
  quantum::OptObddOptions qo;
  qo.kind = o.kind;
  qo.alphas = o.alphas;
  qo.finder = &finder;
  qo.exec = ctx.exec;
  qo.oracle_stats = &r.oracle;
  const quantum::OptObddResult res = quantum::opt_obdd_minimize(f, qo);
  r.order_root_first = res.order_root_first;
  r.internal_nodes = res.min_internal_nodes;
  // The accounting finder returns the exact argmin unless failure
  // injection fired, so a failure-free run's order is FS-optimal.
  r.optimal = res.quantum.min_find_failures == 0;
  finish(&r, ctx);
  return r;
}

}  // namespace

const std::vector<Strategy>& strategies() {
  static const std::vector<Strategy> kStrategies = {
      {"fs", "exact Friedman-Supowit dynamic program (Theorem 5)", run_fs},
      {"auto", "governed FS ladder: exact DP, salvage, sift, restarts",
       run_auto},
      {"bnb", "exact branch-and-bound prefix search with pruning", run_bnb},
      {"brute", "exhaustive sweep over all n! orders (n <= 10)", run_brute},
      {"sift", "Rudell sifting from the identity order", run_sift},
      {"window", "sliding window permutation heuristic", run_window},
      {"exact-window", "windowed exact FS* blocks to a fixpoint",
       run_exact_window},
      {"anneal", "simulated annealing over random transpositions",
       run_anneal},
      {"restarts", "best of N uniformly random orders", run_restarts},
      {"dynamic", "in-place Rudell sifting on the live shared DAG",
       run_dynamic},
      {"quantum", "simulated OptOBDD divide-and-conquer (Theorem 10)",
       run_quantum},
  };
  return kStrategies;
}

const Strategy* find_strategy(const std::string& name) {
  for (const Strategy& s : strategies())
    if (name == s.name) return &s;
  return nullptr;
}

}  // namespace ovo::reorder
