#include "reorder/minimize_auto.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/fs_star.hpp"
#include "reorder/annealing.hpp"
#include "reorder/baselines.hpp"
#include "reorder/oracle.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {

namespace {

/// Completes a partial DP chain upward: repeatedly compacts the free
/// variable with the smallest resulting width (ties to the smallest
/// variable index).  Deterministic, and cheap relative to the DP —
/// O(n^2 · |cells|) — so it is not charged against the budget: it is the
/// fixed cost of guaranteeing *some* valid answer.
void greedy_complete(core::PrefixTable& t, core::DiagramKind kind,
                     std::vector<int>* order_bottom_up,
                     core::OpCounter* ops) {
  while (t.free_count() > 0) {
    std::uint64_t best_width = ~std::uint64_t{0};
    int best_var = -1;
    util::for_each_bit(t.free_mask(), [&](int v) {
      const std::uint64_t w = core::compaction_width(t, v, kind, ops);
      if (w < best_width) {
        best_width = w;
        best_var = v;
      }
    });
    t = core::compact(t, best_var, kind, ops);
    order_bottom_up->push_back(best_var);
  }
}

}  // namespace

PruneSeedResult seed_prune_bound(CostOracle& oracle, const std::string& seed,
                                 int max_passes, int restarts,
                                 std::uint64_t rng_seed,
                                 const EvalContext& ctx) {
  PruneSeedResult out;
  if (seed == "none") return out;
  std::vector<int> identity(static_cast<std::size_t>(oracle.base().n));
  std::iota(identity.begin(), identity.end(), 0);
  if (seed == "anneal") {
    util::Xoshiro256 rng(rng_seed);
    const AnnealResult a =
        simulated_annealing(oracle, identity, AnnealOptions{}, rng, ctx);
    out.order_root_first = a.order_root_first;
    out.upper_bound = a.internal_nodes;
    return out;
  }
  OrderSearchResult r;
  if (seed == "sift") {
    r = sift(oracle, identity, max_passes, ctx);
  } else if (seed == "window") {
    r = window_permute(oracle, identity, /*window=*/3, max_passes, ctx);
  } else if (seed == "restarts") {
    util::Xoshiro256 rng(rng_seed);
    r = random_restart(oracle, restarts, rng, ctx);
  } else {
    OVO_CHECK_MSG(false, "seed_prune_bound: unknown seed strategy");
  }
  out.order_root_first = r.order_root_first;
  out.upper_bound = r.internal_nodes;
  return out;
}

rt::Result<AutoMinimizeResult> minimize_auto(
    const tt::TruthTable& f, const rt::Budget& budget,
    const AutoMinimizeOptions& options) {
  rt::Governor gov(budget);
  return minimize_auto(f, gov, options);
}

rt::Result<AutoMinimizeResult> minimize_auto(
    const tt::TruthTable& f, rt::Governor& gov,
    const AutoMinimizeOptions& options) {
  const int n = f.num_vars();
  OVO_CHECK_MSG(n >= 1, "minimize_auto: need >= 1 variable");
  OVO_CHECK_MSG(options.kind != core::DiagramKind::kMtbdd,
                "minimize_auto: value tables not supported here");

  rt::Result<AutoMinimizeResult> out;
  AutoMinimizeResult& v = out.value;
  const par::SchedStats sched_before = par::sched_stats();

  // One oracle for the whole ladder: its TABLE_{emptyset} feeds the DP,
  // and the heuristic stages share its memo, so an order sifting already
  // evaluated costs the restarts stage a lookup, not a chain.
  CostOracle oracle(f, options.kind);
  EvalContext ctx;
  ctx.exec = options.exec;
  ctx.gov = &gov;

  // Stage 0 (pruned mode only): seed the DP's pruning incumbent by
  // running the configured cheap heuristic through the shared governed
  // oracle.  Its order is also a salvage candidate, and its evaluations
  // land in the memo the later heuristic stages reuse.  A resumed run
  // skips the stage entirely: the snapshot carries the seed order and
  // the effective incumbent (and the governor is credited the original
  // run's charges inside fs_star), so the replay stays bit-identical.
  PruneSeedResult seeded;
  const core::FsStarSnapshot* resume = options.ckpt.resume;
  if (resume != nullptr) {
    seeded.order_root_first = resume->seed_order;
    seeded.upper_bound = resume->prune_upper_bound;
  } else if (options.exec.prune == par::PruneMode::kBounds) {
    seeded = seed_prune_bound(oracle, options.prune_seed,
                              options.sift_max_passes, options.restarts,
                              options.restart_seed, ctx);
  }

  // Snapshots written from here carry the seed provenance, so a future
  // resume can skip stage 0 yet keep the seed order as a salvage
  // candidate.  A resumed writing run propagates the original
  // provenance.
  core::FsCheckpointOptions ckpt = options.ckpt;
  if (resume != nullptr) {
    ckpt.seed_order = resume->seed_order;
    ckpt.rng_seed = resume->rng_seed;
    ckpt.seed_name = resume->seed_name;
    ckpt.seed_stats = resume->seed_stats;
  } else if (options.exec.prune == par::PruneMode::kBounds) {
    ckpt.seed_order = seeded.order_root_first;
    ckpt.rng_seed = options.restart_seed;
    ckpt.seed_name = options.prune_seed;
    const OracleStats after_seed = oracle.stats();
    ckpt.seed_stats.queries = after_seed.queries;
    ckpt.seed_stats.evals = after_seed.evals;
    ckpt.seed_stats.memo_hits = after_seed.memo_hits;
    ckpt.seed_stats.ops = after_seed.ops;
  }

  // The skipped seed stage's counters still belong in the reported
  // ledger: with them restored, a resumed run's totals equal the
  // uninterrupted run's.
  const auto restore_seed_ledger = [&](OracleStats* st) {
    if (resume == nullptr) return;
    st->queries += resume->seed_stats.queries;
    st->evals += resume->seed_stats.evals;
    st->memo_hits += resume->seed_stats.memo_hits;
    st->ops += resume->seed_stats.ops;
  };

  // Stage 1: the exact DP, layer-admitted against the budget.
  const util::Mask all = util::full_mask(n);
  core::FsStarResult dp =
      core::fs_star(oracle.base(), all, n, options.kind, &v.ops,
                    options.exec, &gov, seeded.upper_bound,
                    ckpt.active() ? &ckpt : nullptr);
  v.dp_layers_completed = dp.completed_layers;

  if (dp.completed_layers == n) {
    const std::vector<int> bottom_up = core::reconstruct_block_order(dp, all);
    v.order_root_first.assign(bottom_up.rbegin(), bottom_up.rend());
    v.internal_nodes = dp.tables.at(all).mincost();
    v.lower_bound = v.internal_nodes;
    v.optimal = true;
    v.oracle = oracle.stats();
    restore_seed_ledger(&v.oracle);
    v.sched = par::sched_stats() - sched_before;
    out.outcome = rt::Outcome::kComplete;
    out.stats = gov.stats();
    return out;
  }

  // Stage 2: salvage the deepest completed layer.  The cheapest subset
  // (ties to the numerically smallest mask, for determinism) seeds the
  // fallback, and its cost over the layer is a proven lower bound: any
  // complete order's bottom block of this size costs at least this much.
  // In pruned mode the layer holds *surviving* states only, but the
  // bound stands — the optimal order's bottom-k state always survives
  // with its true cost — and the DP's certified completion-aware bound
  // can only tighten it.
  util::Mask seed_mask = 0;
  std::uint64_t seed_cost = ~std::uint64_t{0};
  std::uint64_t layer_min = ~std::uint64_t{0};
  for (const auto& [mask, table] : dp.tables) {
    const std::uint64_t cost = table.mincost();
    layer_min = std::min(layer_min, cost);
    if (cost < seed_cost || (cost == seed_cost && mask < seed_mask)) {
      seed_cost = cost;
      seed_mask = mask;
    }
  }
  v.lower_bound = std::max(layer_min, dp.certified_lower_bound);

  std::vector<int> bottom_up =
      dp.completed_layers > 0
          ? core::reconstruct_block_order(dp, seed_mask)
          : std::vector<int>{};
  core::PrefixTable table = std::move(dp.tables.at(seed_mask));
  greedy_complete(table, options.kind, &bottom_up, &v.ops);
  v.order_root_first.assign(bottom_up.rbegin(), bottom_up.rend());
  v.internal_nodes = table.mincost();

  // The prune-seed order is itself a salvage candidate: a tripped pruned
  // run should never return worse than the heuristic that seeded it.
  if (!seeded.order_root_first.empty() &&
      seeded.upper_bound < v.internal_nodes) {
    v.order_root_first = seeded.order_root_first;
    v.internal_nodes = seeded.upper_bound;
  }

  // Stage 3: sifting from the salvaged order, on the remaining budget.
  const OrderSearchResult sifted =
      sift(oracle, v.order_root_first, options.sift_max_passes, ctx);
  if (sifted.internal_nodes < v.internal_nodes) {
    v.order_root_first = sifted.order_root_first;
    v.internal_nodes = sifted.internal_nodes;
  }

  // Stage 4: random restarts with whatever is left.
  if (options.restarts > 0 && !gov.stopped()) {
    util::Xoshiro256 rng(options.restart_seed);
    const OrderSearchResult rr =
        random_restart(oracle, options.restarts, rng, ctx);
    if (rr.internal_nodes < v.internal_nodes) {
      v.order_root_first = rr.order_root_first;
      v.internal_nodes = rr.internal_nodes;
    }
  }

  v.oracle = oracle.stats();
  restore_seed_ledger(&v.oracle);
  v.sched = par::sched_stats() - sched_before;
  out.outcome = gov.outcome();
  out.stats = gov.stats();
  return out;
}

}  // namespace ovo::reorder
