#pragma once
// Hybrid exact/heuristic reordering — the use case the paper's Sec. 1.1
// quotes from [MT98, Sec. 9.2.2]: "apply such (exact) methods at least to
// parts of the OBDDs within a heuristics procedure".
//
// exact_window slides a window of `window` adjacent levels over the
// ordering and replaces each window's arrangement with the *exact*
// optimum computed by the FS* dynamic program on that block (O*(3^w) per
// window instead of w! chain evaluations — Lemma 3 guarantees the levels
// outside the window are unaffected).  Iterates to a fixpoint.

#include <cstdint>
#include <vector>

#include "core/prefix_table.hpp"
#include "reorder/oracle.hpp"
#include "rt/budget.hpp"
#include "tt/truth_table.hpp"

namespace ovo::reorder {

struct ExactWindowResult {
  std::vector<int> order_root_first;
  std::uint64_t internal_nodes = 0;
  int passes = 0;
  std::uint64_t windows_optimized = 0;
  /// False iff a governor stopped the optimization early; the order is
  /// then the best reached so far (always valid).
  bool complete = true;
  core::OpCounter ops;
};

/// Optimizes `initial_order` (root first) with exact windows of size
/// `window` (2..16), until a full pass makes no improvement or
/// `max_passes` is reached.  A non-null `gov` charges every chain
/// compaction and lets the per-window FS* DP pre-admit its layers; a
/// window whose DP cannot complete under the remaining budget is skipped
/// and the search stops, keeping the incumbent order.
ExactWindowResult exact_window(const tt::TruthTable& f,
                               std::vector<int> initial_order, int window,
                               core::DiagramKind kind =
                                   core::DiagramKind::kBdd,
                               int max_passes = 8,
                               rt::Governor* gov = nullptr);

/// Oracle-based primary implementation: the initial full-chain evaluation
/// goes through the (memoized) oracle and the per-window setup chains
/// start from oracle.base(); the windowed FS* runs use ctx.exec.  The
/// window DP/compaction work stays in ExactWindowResult::ops.
ExactWindowResult exact_window(CostOracle& oracle,
                               std::vector<int> initial_order, int window,
                               int max_passes = 8,
                               const EvalContext& ctx = {});

}  // namespace ovo::reorder
