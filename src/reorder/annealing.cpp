#include "reorder/annealing.hpp"

#include <cmath>
#include <utility>

#include "core/minimize.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::reorder {

AnnealResult simulated_annealing(const tt::TruthTable& f,
                                 std::vector<int> order,
                                 const AnnealOptions& options,
                                 util::Xoshiro256& rng) {
  const int n = f.num_vars();
  OVO_CHECK_MSG(static_cast<int>(order.size()) == n,
                "annealing: order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order), "annealing: not a permutation");
  OVO_CHECK(options.initial_temperature > 0.0);
  OVO_CHECK(options.cooling > 0.0 && options.cooling < 1.0);

  AnnealResult r;
  std::uint64_t current =
      core::diagram_size_for_order(f, order, options.kind);
  ++r.orders_evaluated;
  r.internal_nodes = current;
  r.order_root_first = order;

  double temperature = options.initial_temperature;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (int move = 0; move < options.moves_per_epoch; ++move) {
      if (n < 2) break;
      const std::size_t i = rng.below(static_cast<std::uint64_t>(n));
      std::size_t j = rng.below(static_cast<std::uint64_t>(n));
      if (i == j) j = (j + 1) % static_cast<std::size_t>(n);
      std::swap(order[i], order[j]);
      const std::uint64_t cand =
          core::diagram_size_for_order(f, order, options.kind);
      ++r.orders_evaluated;
      const double delta = static_cast<double>(cand) -
                           static_cast<double>(current);
      const bool accept =
          delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature);
      if (accept) {
        current = cand;
        ++r.moves_accepted;
        if (current < r.internal_nodes) {
          r.internal_nodes = current;
          r.order_root_first = order;
        }
      } else {
        std::swap(order[i], order[j]);  // revert
      }
    }
    temperature *= options.cooling;
  }
  return r;
}

}  // namespace ovo::reorder
