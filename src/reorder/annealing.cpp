#include "reorder/annealing.hpp"

#include <cmath>
#include <utility>

#include "core/minimize.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::reorder {

AnnealResult simulated_annealing(CostOracle& oracle, std::vector<int> order,
                                 const AnnealOptions& options,
                                 util::Xoshiro256& rng,
                                 const EvalContext& ctx) {
  const int n = oracle.num_vars();
  OVO_CHECK_MSG(static_cast<int>(order.size()) == n,
                "annealing: order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order), "annealing: not a permutation");
  OVO_CHECK(options.initial_temperature > 0.0);
  OVO_CHECK(options.cooling > 0.0 && options.cooling < 1.0);
  rt::Governor* gov = ctx.gov;

  AnnealResult r;
  if (gov != nullptr) gov->charge(oracle.chain_eval_cost());
  std::uint64_t current = oracle.size_for_order(order);
  ++r.orders_evaluated;
  r.internal_nodes = current;
  r.order_root_first = order;

  bool out_of_budget = false;
  double temperature = options.initial_temperature;
  for (int epoch = 0; epoch < options.epochs && !out_of_budget; ++epoch) {
    for (int move = 0; move < options.moves_per_epoch; ++move) {
      if (n < 2) break;
      // Admit the move's evaluation before drawing it, so the RNG
      // stream of a budget-tripped run is a prefix of the unbudgeted
      // one and the stopping move is deterministic.  The charge happens
      // whether or not the candidate then hits the memo — memoization
      // must not change governed outcomes.
      if (gov != nullptr && (gov->stopped() ||
                             !gov->admit_work(oracle.chain_eval_cost()))) {
        out_of_budget = true;
        break;
      }
      if (gov != nullptr) gov->charge(oracle.chain_eval_cost());
      const std::size_t i = rng.below(static_cast<std::uint64_t>(n));
      std::size_t j = rng.below(static_cast<std::uint64_t>(n));
      if (i == j) j = (j + 1) % static_cast<std::size_t>(n);
      std::swap(order[i], order[j]);
      const std::uint64_t cand = oracle.size_for_order(order, gov);
      if (cand == core::kAbortedSize) {  // hard stop mid-chain
        std::swap(order[i], order[j]);
        out_of_budget = true;
        break;
      }
      ++r.orders_evaluated;
      const double delta = static_cast<double>(cand) -
                           static_cast<double>(current);
      const bool accept =
          delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature);
      if (accept) {
        current = cand;
        ++r.moves_accepted;
        if (current < r.internal_nodes) {
          r.internal_nodes = current;
          r.order_root_first = order;
        }
      } else {
        std::swap(order[i], order[j]);  // revert
      }
    }
    temperature *= options.cooling;
  }
  return r;
}

AnnealResult simulated_annealing(const tt::TruthTable& f,
                                 std::vector<int> order,
                                 const AnnealOptions& options,
                                 util::Xoshiro256& rng, rt::Governor* gov) {
  CostOracle oracle(f, options.kind);
  EvalContext ctx;
  ctx.gov = gov;
  return simulated_annealing(oracle, std::move(order), options, rng, ctx);
}

}  // namespace ovo::reorder
