#include "reorder/oracle.hpp"

#include <limits>

#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace ovo::reorder {

namespace {

/// Bits needed to store one variable index of an n-variable order
/// (minimum 1, so n == 1 still gets a nonempty key).
int bits_for(int n) {
  int bits = 1;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

CostOracle::CostOracle(const tt::TruthTable& f, core::DiagramKind kind)
    : kind_(kind), base_(core::initial_table(f)) {
  OVO_CHECK_MSG(kind != core::DiagramKind::kMtbdd,
                "CostOracle: use the value-table constructor for MTBDDs");
  const int bits = bits_for(base_.n);
  if (base_.n * bits <= 96) bits_per_var_ = bits;
}

CostOracle::CostOracle(const std::vector<std::int64_t>& values, int n)
    : kind_(core::DiagramKind::kMtbdd),
      base_(core::initial_table_values(values, n)) {
  const int bits = bits_for(base_.n);
  if (base_.n * bits <= 96) bits_per_var_ = bits;
}

bool CostOracle::pack_key(const std::vector<int>& order, std::uint64_t* a,
                          std::uint32_t* b) const {
  if (bits_per_var_ == 0) return false;
  unsigned __int128 acc = 0;
  for (const int v : order)
    acc = (acc << bits_per_var_) | static_cast<unsigned>(v);
  *a = static_cast<std::uint64_t>(acc);
  *b = static_cast<std::uint32_t>(acc >> 64);
  return true;
}

std::uint64_t CostOracle::size_for_order(
    const std::vector<int>& order_root_first, const rt::Governor* gov) {
  if (gov != nullptr && gov->stopped()) return core::kAbortedSize;
  ++stats_.queries;
  std::uint64_t a = 0;
  std::uint32_t b = 0;
  const bool keyed = pack_key(order_root_first, &a, &b);
  if (keyed) {
    if (const auto hit = memo_.lookup(a, b)) {
      ++stats_.memo_hits;
      return *hit;
    }
  }
  OVO_TRACE_SPAN_ARGS("oracle.eval", "oracle", 0, "vars",
                      base_.n, nullptr, 0);
  const std::uint64_t s = core::diagram_size_from_base(
      base_, order_root_first, kind_, scratch_cur_, scratch_next_,
      &stats_.ops, gov);
  if (s == core::kAbortedSize) return s;  // hard stop: do not memoize
  ++stats_.evals;
  if (keyed && s <= std::numeric_limits<std::uint32_t>::max())
    memo_.store(a, b, static_cast<std::uint32_t>(s));
  return s;
}

std::vector<std::uint64_t> CostOracle::sizes_for_orders(
    const std::vector<std::vector<int>>& candidates, const EvalContext& ctx) {
  std::vector<std::uint64_t> sizes(candidates.size(), core::kAbortedSize);
  std::uint64_t count = candidates.size();
  rt::Governor* gov = ctx.gov;
  if (gov != nullptr)
    count = gov->admit_charge_batch(chain_eval_cost(), count);

  // Serial memo pre-pass over the admitted prefix: resolve hits, collect
  // miss indices.  Serial so the hit/miss split — and therefore which
  // chains actually run — is identical for every thread count.
  std::vector<std::uint64_t> misses;
  for (std::uint64_t i = 0; i < count; ++i) {
    ++stats_.queries;
    std::uint64_t a = 0;
    std::uint32_t b = 0;
    if (pack_key(candidates[static_cast<std::size_t>(i)], &a, &b)) {
      if (const auto hit = memo_.lookup(a, b)) {
        sizes[static_cast<std::size_t>(i)] = *hit;
        ++stats_.memo_hits;
        continue;
      }
    }
    misses.push_back(i);
  }

  // Fan the misses out, one candidate per chunk by default; per-slot
  // scratch tables and OpCounter shards, merged commutatively.
  struct Scratch {
    core::PrefixTable cur, next;
    core::OpCounter ops;
  };
  const int threads = ctx.exec.resolved_threads();
  const std::uint64_t grain = ctx.exec.grain != 0 ? ctx.exec.grain : 1;
  std::vector<Scratch> scratch(
      static_cast<std::size_t>(par::ThreadPool::clamp_threads(threads)));
  par::ThreadPool::shared().parallel_for(
      std::uint64_t{0}, misses.size(), grain, threads,
      gov != nullptr ? gov->stop_flag() : nullptr,
      [&](std::uint64_t j, int slot) {
        OVO_TRACE_SPAN_ARGS("oracle.eval", "oracle", slot, "candidate",
                            misses[static_cast<std::size_t>(j)], nullptr, 0);
        Scratch& sc = scratch[static_cast<std::size_t>(slot)];
        const std::size_t i =
            static_cast<std::size_t>(misses[static_cast<std::size_t>(j)]);
        sizes[i] = core::diagram_size_from_base(base_, candidates[i], kind_,
                                                sc.cur, sc.next, &sc.ops, gov);
      });
  for (const Scratch& sc : scratch) stats_.ops += sc.ops;

  // Serial store pass: count and memoize the evaluations that completed.
  for (const std::uint64_t j : misses) {
    const std::size_t i = static_cast<std::size_t>(j);
    if (sizes[i] == core::kAbortedSize) continue;
    ++stats_.evals;
    std::uint64_t a = 0;
    std::uint32_t b = 0;
    if (pack_key(candidates[i], &a, &b) &&
        sizes[i] <= std::numeric_limits<std::uint32_t>::max())
      memo_.store(a, b, static_cast<std::uint32_t>(sizes[i]));
  }
  return sizes;
}

}  // namespace ovo::reorder
