#include "reorder/baselines.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/minimize.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::reorder {

namespace {

/// Candidates actually evaluated (or memo-resolved) in a batch.
std::uint64_t evaluated_count(const std::vector<std::uint64_t>& sizes) {
  std::uint64_t c = 0;
  for (const std::uint64_t s : sizes)
    if (s != core::kAbortedSize) ++c;
  return c;
}

}  // namespace

OrderSearchResult brute_force_minimize(CostOracle& oracle,
                                       const EvalContext& ctx) {
  const int n = oracle.num_vars();
  OVO_CHECK_MSG(n >= 1 && n <= 10, "brute_force_minimize: n must be in [1,10]");
  std::uint64_t total = 1;
  for (int i = 2; i <= n; ++i) total *= static_cast<std::uint64_t>(i);

  // Chunked by lexicographic rank: each chunk unranks its first
  // permutation and advances with next_permutation.  Strict-< folds (both
  // inside a chunk and across chunks, which combine in rank order) keep
  // the first lexicographic minimizer, matching the serial sweep exactly.
  // The memo is bypassed — all n! orders are distinct — but every chunk
  // shares the oracle's base table and keeps its own scratch pair.
  struct ChunkBest {
    std::uint64_t best_rank = 0;
    std::uint64_t best_size = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t worst_size = 0;
    core::OpCounter ops;
  };
  const std::uint64_t grain = ctx.exec.grain != 0 ? ctx.exec.grain : 1024;
  const ChunkBest agg = par::ThreadPool::shared().parallel_reduce(
      std::uint64_t{0}, total, grain, ctx.exec.resolved_threads(),
      ChunkBest{},
      [&](std::uint64_t b, std::uint64_t e) {
        ChunkBest c;
        core::PrefixTable cur, next;
        std::vector<int> order = util::permutation_unrank(n, b);
        for (std::uint64_t r = b; r < e; ++r) {
          const std::uint64_t s = core::diagram_size_from_base(
              oracle.base(), order, oracle.kind(), cur, next, &c.ops);
          if (s < c.best_size) {
            c.best_size = s;
            c.best_rank = r;
          }
          c.worst_size = std::max(c.worst_size, s);
          std::next_permutation(order.begin(), order.end());
        }
        return c;
      },
      [](ChunkBest a, ChunkBest b) {
        if (b.best_size < a.best_size) {
          a.best_size = b.best_size;
          a.best_rank = b.best_rank;
        }
        a.worst_size = std::max(a.worst_size, b.worst_size);
        a.ops += b.ops;
        return a;
      });

  oracle.stats().queries += total;
  oracle.stats().evals += total;
  oracle.stats().ops += agg.ops;

  OrderSearchResult best;
  best.orders_evaluated = total;
  best.internal_nodes = agg.best_size;
  best.worst_internal_nodes = agg.worst_size;
  best.order_root_first = util::permutation_unrank(n, agg.best_rank);
  return best;
}

OrderSearchResult brute_force_minimize(const tt::TruthTable& f,
                                       core::DiagramKind kind,
                                       const par::ExecPolicy& exec) {
  CostOracle oracle(f, kind);
  EvalContext ctx;
  ctx.exec = exec;
  return brute_force_minimize(oracle, ctx);
}

OrderSearchResult sift(CostOracle& oracle, std::vector<int> order,
                       int max_passes, const EvalContext& ctx) {
  const int n = oracle.num_vars();
  OVO_CHECK_MSG(static_cast<int>(order.size()) == n, "sift: order length");
  OVO_CHECK_MSG(util::is_permutation(order), "sift: not a permutation");
  rt::Governor* gov = ctx.gov;
  OrderSearchResult r;
  // The initial evaluation is charged but never skipped: a governed sift
  // must know its incumbent's size to improve on it.
  if (gov != nullptr) gov->charge(oracle.chain_eval_cost());
  r.internal_nodes = oracle.size_for_order(order);
  ++r.orders_evaluated;
  bool out_of_budget = false;
  for (int pass = 0; pass < max_passes && !out_of_budget; ++pass) {
    bool improved = false;
    for (int v = 0; v < n; ++v) {
      // Current position of variable v.
      const auto it = std::find(order.begin(), order.end(), v);
      std::size_t pos = static_cast<std::size_t>(it - order.begin());
      std::vector<int> work = order;
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(pos));
      // Evaluate every insertion position in parallel, then pick the best
      // in ascending position order (first best wins, as serially).
      std::vector<std::vector<int>> cands;
      cands.reserve(work.size() + 1);
      for (std::size_t p = 0; p <= work.size(); ++p) {
        std::vector<int> cand = work;
        cand.insert(cand.begin() + static_cast<std::ptrdiff_t>(p), v);
        cands.push_back(std::move(cand));
      }
      const std::vector<std::uint64_t> sizes =
          oracle.sizes_for_orders(cands, ctx);
      const std::uint64_t evaluated = evaluated_count(sizes);
      r.orders_evaluated += evaluated;
      std::size_t best_pos = pos;
      std::uint64_t best_size = r.internal_nodes;
      for (std::size_t p = 0; p < sizes.size(); ++p) {
        if (sizes[p] < best_size) {
          best_size = sizes[p];
          best_pos = p;
        }
      }
      if (best_size < r.internal_nodes) {
        work.insert(work.begin() + static_cast<std::ptrdiff_t>(best_pos), v);
        order = std::move(work);
        r.internal_nodes = best_size;
        improved = true;
      }
      if (gov != nullptr && (gov->stopped() || evaluated < sizes.size())) {
        out_of_budget = true;  // keep the incumbent found so far
        break;
      }
    }
    if (!improved) break;
  }
  r.order_root_first = std::move(order);
  return r;
}

OrderSearchResult sift(const tt::TruthTable& f,
                       std::vector<int> order,
                       core::DiagramKind kind, int max_passes,
                       const par::ExecPolicy& exec, rt::Governor* gov) {
  CostOracle oracle(f, kind);
  EvalContext ctx;
  ctx.exec = exec;
  ctx.gov = gov;
  return sift(oracle, std::move(order), max_passes, ctx);
}

OrderSearchResult window_permute(CostOracle& oracle, std::vector<int> order,
                                 int window, int max_passes,
                                 const EvalContext& ctx) {
  const int n = oracle.num_vars();
  OVO_CHECK_MSG(static_cast<int>(order.size()) == n, "window: order length");
  OVO_CHECK_MSG(util::is_permutation(order), "window: not a permutation");
  OVO_CHECK_MSG(window >= 2 && window <= 5, "window: size must be in [2,5]");
  rt::Governor* gov = ctx.gov;
  OrderSearchResult r;
  if (gov != nullptr) gov->charge(oracle.chain_eval_cost());
  r.internal_nodes = oracle.size_for_order(order);
  ++r.orders_evaluated;
  if (window > n) window = n;
  bool out_of_budget = false;
  for (int pass = 0; pass < max_passes && !out_of_budget; ++pass) {
    bool improved = false;
    for (int s = 0; s + window <= n; ++s) {
      // Materialize the window's permutations in lexicographic order,
      // evaluate them in parallel, and scan serially (first best wins).
      std::vector<int> slot(order.begin() + s, order.begin() + s + window);
      std::sort(slot.begin(), slot.end());
      std::vector<std::vector<int>> slots;
      do {
        slots.push_back(slot);
      } while (std::next_permutation(slot.begin(), slot.end()));
      std::vector<std::vector<int>> cands;
      cands.reserve(slots.size());
      for (const std::vector<int>& sl : slots) {
        std::vector<int> cand = order;
        std::copy(sl.begin(), sl.end(), cand.begin() + s);
        cands.push_back(std::move(cand));
      }
      const std::vector<std::uint64_t> sizes =
          oracle.sizes_for_orders(cands, ctx);
      const std::uint64_t evaluated = evaluated_count(sizes);
      r.orders_evaluated += evaluated;
      std::vector<int> best_slot(order.begin() + s,
                                 order.begin() + s + window);
      std::uint64_t best_size = r.internal_nodes;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        if (sizes[i] < best_size) {
          best_size = sizes[i];
          best_slot = slots[i];
        }
      }
      if (best_size < r.internal_nodes) {
        std::copy(best_slot.begin(), best_slot.end(), order.begin() + s);
        r.internal_nodes = best_size;
        improved = true;
      }
      if (gov != nullptr && (gov->stopped() || evaluated < sizes.size())) {
        out_of_budget = true;
        break;
      }
    }
    if (!improved) break;
  }
  r.order_root_first = std::move(order);
  return r;
}

OrderSearchResult window_permute(const tt::TruthTable& f,
                                 std::vector<int> order, int window,
                                 core::DiagramKind kind, int max_passes,
                                 const par::ExecPolicy& exec,
                                 rt::Governor* gov) {
  CostOracle oracle(f, kind);
  EvalContext ctx;
  ctx.exec = exec;
  ctx.gov = gov;
  return window_permute(oracle, std::move(order), window, max_passes, ctx);
}

OrderSearchResult random_restart(CostOracle& oracle, int restarts,
                                 util::Xoshiro256& rng,
                                 const EvalContext& ctx) {
  const int n = oracle.num_vars();
  OrderSearchResult best;
  best.internal_nodes = std::numeric_limits<std::uint64_t>::max();
  // Draw the orders serially first — the RNG stream (carried shuffle
  // state included) is exactly the serial implementation's — then fan the
  // size evaluations out over the pool.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::vector<int>> cands;
  cands.reserve(static_cast<std::size_t>(restarts));
  for (int t = 0; t < restarts; ++t) {
    for (int i = n - 1; i > 0; --i)
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    cands.push_back(order);
  }
  const std::vector<std::uint64_t> sizes =
      oracle.sizes_for_orders(cands, ctx);
  best.orders_evaluated = evaluated_count(sizes);
  for (std::size_t t = 0; t < sizes.size(); ++t) {
    if (sizes[t] < best.internal_nodes) {
      best.internal_nodes = sizes[t];
      best.order_root_first = cands[t];
    }
  }
  return best;
}

OrderSearchResult random_restart(const tt::TruthTable& f, int restarts,
                                 util::Xoshiro256& rng,
                                 core::DiagramKind kind,
                                 const par::ExecPolicy& exec,
                                 rt::Governor* gov) {
  CostOracle oracle(f, kind);
  EvalContext ctx;
  ctx.exec = exec;
  ctx.gov = gov;
  return random_restart(oracle, restarts, rng, ctx);
}

}  // namespace ovo::reorder
