#include "reorder/baselines.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/minimize.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::reorder {

namespace {

std::uint64_t size_of(const tt::TruthTable& f, const std::vector<int>& order,
                      core::DiagramKind kind) {
  return core::diagram_size_for_order(f, order, kind);
}

}  // namespace

OrderSearchResult brute_force_minimize(const tt::TruthTable& f,
                                       core::DiagramKind kind) {
  const int n = f.num_vars();
  OVO_CHECK_MSG(n >= 1 && n <= 10, "brute_force_minimize: n must be in [1,10]");
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  OrderSearchResult best;
  best.internal_nodes = std::numeric_limits<std::uint64_t>::max();
  best.worst_internal_nodes = 0;
  do {
    const std::uint64_t s = size_of(f, order, kind);
    ++best.orders_evaluated;
    if (s < best.internal_nodes) {
      best.internal_nodes = s;
      best.order_root_first = order;
    }
    best.worst_internal_nodes = std::max(best.worst_internal_nodes, s);
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

OrderSearchResult sift(const tt::TruthTable& f,
                       std::vector<int> order,
                       core::DiagramKind kind, int max_passes) {
  const int n = f.num_vars();
  OVO_CHECK_MSG(static_cast<int>(order.size()) == n, "sift: order length");
  OVO_CHECK_MSG(util::is_permutation(order), "sift: not a permutation");
  OrderSearchResult r;
  r.internal_nodes = size_of(f, order, kind);
  ++r.orders_evaluated;
  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (int v = 0; v < n; ++v) {
      // Current position of variable v.
      const auto it = std::find(order.begin(), order.end(), v);
      std::size_t pos = static_cast<std::size_t>(it - order.begin());
      // Try every insertion position; keep the best.
      std::vector<int> work = order;
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(pos));
      std::size_t best_pos = pos;
      std::uint64_t best_size = r.internal_nodes;
      for (std::size_t p = 0; p <= work.size(); ++p) {
        std::vector<int> cand = work;
        cand.insert(cand.begin() + static_cast<std::ptrdiff_t>(p), v);
        const std::uint64_t s = size_of(f, cand, kind);
        ++r.orders_evaluated;
        if (s < best_size) {
          best_size = s;
          best_pos = p;
        }
      }
      if (best_size < r.internal_nodes) {
        work.insert(work.begin() + static_cast<std::ptrdiff_t>(best_pos), v);
        order = std::move(work);
        r.internal_nodes = best_size;
        improved = true;
      }
    }
    if (!improved) break;
  }
  r.order_root_first = std::move(order);
  return r;
}

OrderSearchResult window_permute(const tt::TruthTable& f,
                                 std::vector<int> order, int window,
                                 core::DiagramKind kind, int max_passes) {
  const int n = f.num_vars();
  OVO_CHECK_MSG(static_cast<int>(order.size()) == n, "window: order length");
  OVO_CHECK_MSG(util::is_permutation(order), "window: not a permutation");
  OVO_CHECK_MSG(window >= 2 && window <= 5, "window: size must be in [2,5]");
  OrderSearchResult r;
  r.internal_nodes = size_of(f, order, kind);
  ++r.orders_evaluated;
  if (window > n) window = n;
  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (int s = 0; s + window <= n; ++s) {
      std::vector<int> slot(order.begin() + s, order.begin() + s + window);
      std::sort(slot.begin(), slot.end());
      std::vector<int> best_slot(order.begin() + s,
                                 order.begin() + s + window);
      std::uint64_t best_size = r.internal_nodes;
      do {
        std::vector<int> cand = order;
        std::copy(slot.begin(), slot.end(), cand.begin() + s);
        const std::uint64_t sz = size_of(f, cand, kind);
        ++r.orders_evaluated;
        if (sz < best_size) {
          best_size = sz;
          best_slot = slot;
        }
      } while (std::next_permutation(slot.begin(), slot.end()));
      if (best_size < r.internal_nodes) {
        std::copy(best_slot.begin(), best_slot.end(), order.begin() + s);
        r.internal_nodes = best_size;
        improved = true;
      }
    }
    if (!improved) break;
  }
  r.order_root_first = std::move(order);
  return r;
}

OrderSearchResult random_restart(const tt::TruthTable& f, int restarts,
                                 util::Xoshiro256& rng,
                                 core::DiagramKind kind) {
  const int n = f.num_vars();
  OrderSearchResult best;
  best.internal_nodes = std::numeric_limits<std::uint64_t>::max();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int t = 0; t < restarts; ++t) {
    for (int i = n - 1; i > 0; --i)
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    const std::uint64_t s = size_of(f, order, kind);
    ++best.orders_evaluated;
    if (s < best.internal_nodes) {
      best.internal_nodes = s;
      best.order_root_first = order;
    }
  }
  return best;
}

}  // namespace ovo::reorder
