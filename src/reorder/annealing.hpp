#pragma once
// Simulated annealing over reading orders — the classic stochastic
// heuristic for BDD variable ordering (Bollig/Löbbing/Wegener-style
// neighborhood of transpositions), evaluated with the exact chain
// oracle.  Complements sifting/window as a baseline whose quality the
// exact algorithms judge.

#include <cstdint>
#include <vector>

#include "core/prefix_table.hpp"
#include "reorder/oracle.hpp"
#include "rt/budget.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace ovo::reorder {

struct AnnealOptions {
  double initial_temperature = 4.0;
  double cooling = 0.95;      ///< geometric per-epoch factor
  int epochs = 60;
  int moves_per_epoch = 20;   ///< proposed transpositions per epoch
  core::DiagramKind kind = core::DiagramKind::kBdd;
};

struct AnnealResult {
  std::vector<int> order_root_first;
  std::uint64_t internal_nodes = 0;
  std::uint64_t orders_evaluated = 0;
  std::uint64_t moves_accepted = 0;
};

/// Anneals from `initial_order` (root first). Deterministic given `rng`.
/// A non-null `gov` admits each move's evaluation cost before drawing it,
/// so a work-limited run stops after the same move for any thread count
/// and returns the best order seen so far.
AnnealResult simulated_annealing(const tt::TruthTable& f,
                                 std::vector<int> initial_order,
                                 const AnnealOptions& options,
                                 util::Xoshiro256& rng,
                                 rt::Governor* gov = nullptr);

/// Oracle-based primary implementation; the oracle's kind governs
/// (options.kind is ignored here).  Re-proposed orders — a rejected move
/// re-proposed later, or a revert-and-retry — hit the oracle's memo.
AnnealResult simulated_annealing(CostOracle& oracle,
                                 std::vector<int> initial_order,
                                 const AnnealOptions& options,
                                 util::Xoshiro256& rng,
                                 const EvalContext& ctx = {});

}  // namespace ovo::reorder
