#include "reorder/exact_window.hpp"

#include <algorithm>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::reorder {

ExactWindowResult exact_window(CostOracle& oracle, std::vector<int> order,
                               int window, int max_passes,
                               const EvalContext& ctx) {
  const int n = oracle.num_vars();
  OVO_CHECK_MSG(static_cast<int>(order.size()) == n,
                "exact_window: order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order),
                "exact_window: not a permutation");
  OVO_CHECK_MSG(window >= 2 && window <= 16, "exact_window: window in [2,16]");
  window = std::min(window, n);
  rt::Governor* gov = ctx.gov;

  ExactWindowResult r;
  if (gov != nullptr) gov->charge(oracle.chain_eval_cost());
  r.internal_nodes = oracle.size_for_order(order);

  bool out_of_budget = false;
  for (int pass = 0; pass < max_passes && !out_of_budget; ++pass) {
    ++r.passes;
    bool improved = false;
    for (int s = 0; s + window <= n; ++s) {
      // The setup chains below charge per compaction; the windowed FS*
      // run pre-admits each DP layer itself.  Either refusal aborts the
      // window before the order is touched, so the incumbent stays
      // consistent.
      if (gov != nullptr &&
          (gov->stopped() || !gov->admit_work(oracle.chain_eval_cost()))) {
        out_of_budget = true;
        break;
      }
      // Prefix table of the levels strictly below the window.
      core::PrefixTable base = oracle.base();
      for (int p = n - 1; p >= s + window; --p)
        base = core::compact(base, order[static_cast<std::size_t>(p)],
                             oracle.kind(), &r.ops, gov);
      // Cost of the current arrangement of the window.
      core::PrefixTable current = base;
      for (int p = s + window - 1; p >= s; --p)
        current = core::compact(current,
                                order[static_cast<std::size_t>(p)],
                                oracle.kind(), &r.ops, gov);
      // Exact optimum over the window's variable set (Lemma 3: levels
      // above the window are unaffected by the within-window order).
      util::Mask J = 0;
      for (int p = s; p < s + window; ++p)
        J |= util::Mask{1} << order[static_cast<std::size_t>(p)];
      core::FsStarResult dp = core::fs_star(base, J, window, oracle.kind(),
                                            &r.ops, ctx.exec, gov);
      if (dp.completed_layers < window) {
        out_of_budget = true;  // budget can no longer fit a window DP
        break;
      }
      std::vector<int> block_bottom_up = core::reconstruct_block_order(dp, J);
      const core::PrefixTable& best = dp.tables.at(J);
      ++r.windows_optimized;
      if (best.mincost() < current.mincost()) {
        for (int i = 0; i < window; ++i)
          order[static_cast<std::size_t>(s + i)] =
              block_bottom_up[static_cast<std::size_t>(window - 1 - i)];
        r.internal_nodes -= current.mincost() - best.mincost();
        improved = true;
      }
    }
    if (!improved) break;
  }
  r.complete = !out_of_budget;
#ifndef NDEBUG
  {
    // Verify the incremental bookkeeping against a fresh chain — outside
    // the oracle, so debug builds report the same stats as release ones.
    core::PrefixTable dcur, dnext;
    OVO_DCHECK(core::diagram_size_from_base(oracle.base(), order,
                                            oracle.kind(), dcur, dnext) ==
               r.internal_nodes);
  }
#endif
  r.order_root_first = std::move(order);
  return r;
}

ExactWindowResult exact_window(const tt::TruthTable& f,
                               std::vector<int> order, int window,
                               core::DiagramKind kind, int max_passes,
                               rt::Governor* gov) {
  CostOracle oracle(f, kind);
  EvalContext ctx;
  ctx.gov = gov;
  return exact_window(oracle, std::move(order), window, max_passes, ctx);
}

}  // namespace ovo::reorder
