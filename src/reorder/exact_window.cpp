#include "reorder/exact_window.hpp"

#include <algorithm>

#include "core/fs_star.hpp"
#include "core/minimize.hpp"
#include "util/check.hpp"
#include "util/combinatorics.hpp"

namespace ovo::reorder {

ExactWindowResult exact_window(const tt::TruthTable& f,
                               std::vector<int> order, int window,
                               core::DiagramKind kind, int max_passes) {
  const int n = f.num_vars();
  OVO_CHECK_MSG(static_cast<int>(order.size()) == n,
                "exact_window: order length mismatch");
  OVO_CHECK_MSG(util::is_permutation(order),
                "exact_window: not a permutation");
  OVO_CHECK_MSG(window >= 2 && window <= 16, "exact_window: window in [2,16]");
  window = std::min(window, n);

  ExactWindowResult r;
  r.internal_nodes = core::diagram_size_for_order(f, order, kind, &r.ops);

  for (int pass = 0; pass < max_passes; ++pass) {
    ++r.passes;
    bool improved = false;
    for (int s = 0; s + window <= n; ++s) {
      // Prefix table of the levels strictly below the window.
      core::PrefixTable base = core::initial_table(f);
      for (int p = n - 1; p >= s + window; --p)
        base = core::compact(base, order[static_cast<std::size_t>(p)], kind,
                             &r.ops);
      // Cost of the current arrangement of the window.
      core::PrefixTable current = base;
      for (int p = s + window - 1; p >= s; --p)
        current = core::compact(current,
                                order[static_cast<std::size_t>(p)], kind,
                                &r.ops);
      // Exact optimum over the window's variable set (Lemma 3: levels
      // above the window are unaffected by the within-window order).
      util::Mask J = 0;
      for (int p = s; p < s + window; ++p)
        J |= util::Mask{1} << order[static_cast<std::size_t>(p)];
      std::vector<int> block_bottom_up;
      const core::PrefixTable best =
          core::fs_star_full(base, J, kind, &r.ops, &block_bottom_up);
      ++r.windows_optimized;
      if (best.mincost() < current.mincost()) {
        for (int i = 0; i < window; ++i)
          order[static_cast<std::size_t>(s + i)] =
              block_bottom_up[static_cast<std::size_t>(window - 1 - i)];
        r.internal_nodes -= current.mincost() - best.mincost();
        improved = true;
      }
    }
    if (!improved) break;
  }
  OVO_DCHECK(core::diagram_size_for_order(f, order, kind) ==
             r.internal_nodes);
  r.order_root_first = std::move(order);
  return r;
}

}  // namespace ovo::reorder
